// Cores of naïve databases.
//
// The core of D is the smallest sub-instance hom-equivalent to D — the
// canonical representative of D's ⪯_owa-equivalence class (tableau
// minimization; cf. the paper's Section 4 duality, where minimizing the
// database *is* minimizing its canonical conjunctive query).

#ifndef INCDB_CORE_CORE_OF_H_
#define INCDB_CORE_CORE_OF_H_

#include "core/database.h"

namespace incdb {

/// Computes a core of `d`: a minimal sub-instance C ⊆ d with homomorphisms
/// both ways (so ⟦C⟧_owa = ⟦d⟧_owa). Unique up to isomorphism. Exponential
/// in the worst case (homomorphism checks), fine on tableau-sized inputs.
Database CoreOf(const Database& d);

/// True if no proper sub-instance of `d` is hom-equivalent to it.
bool IsCore(const Database& d);

}  // namespace incdb

#endif  // INCDB_CORE_CORE_OF_H_
