// Homomorphisms between naïve databases, and the search for them.
//
// A homomorphism h : D -> D' maps adom(D) to adom(D'), is the identity on
// constants, and maps every tuple of every relation of D into the same
// relation of D' (paper, Section 5.2). Variants:
//   * plain:        h(D) ⊆ D'
//   * strong onto:  h(D) = D'              (characterizes ⪯_cwa)
//   * onto:         h(adom(D)) = adom(D')  (characterizes the weak CWA order)
//
// The existence problem is NP-complete in general; we use backtracking with a
// most-constrained-first tuple order and per-relation candidate lists, which
// is fast on the instance shapes used in the paper (tableaux of queries,
// chase results, workload databases).

#ifndef INCDB_CORE_HOMOMORPHISM_H_
#define INCDB_CORE_HOMOMORPHISM_H_

#include <map>
#include <optional>
#include <string>

#include "core/database.h"

namespace incdb {

/// Which surjectivity condition a homomorphism must satisfy.
enum class HomKind {
  kPlain,       ///< h(D) ⊆ D'
  kStrongOnto,  ///< h(D) = D'
  kOnto,        ///< h(adom(D)) = adom(D')
};

/// A substitution of nulls by values (nulls map to nulls or constants;
/// constants are implicitly fixed).
class NullSubstitution {
 public:
  void Bind(NullId id, const Value& v) { map_[id] = v; }
  void Unbind(NullId id) { map_.erase(id); }
  bool IsBound(NullId id) const { return map_.count(id) > 0; }
  const Value& Lookup(NullId id) const;

  /// h(x): identity on constants and unbound nulls.
  Value Apply(const Value& v) const;
  Tuple Apply(const Tuple& t) const;
  Relation Apply(const Relation& r) const;
  Database Apply(const Database& d) const;

  const std::map<NullId, Value>& map() const { return map_; }
  std::string ToString() const;

 private:
  std::map<NullId, Value> map_;
};

/// Tuning knobs for the backtracking search (ablation bench A1 measures
/// their effect; defaults are what the library ships with).
struct HomSearchOptions {
  /// Order source tuples most-constrained-first (more constants first).
  bool most_constrained_first = true;
};

/// Searches for a homomorphism from `from` to `to` of the given kind.
/// Returns the witnessing substitution, or nullopt if none exists.
std::optional<NullSubstitution> FindHomomorphism(
    const Database& from, const Database& to, HomKind kind = HomKind::kPlain,
    const HomSearchOptions& options = {});

/// Convenience: existence tests.
bool HasHomomorphism(const Database& from, const Database& to);
bool HasStrongOntoHomomorphism(const Database& from, const Database& to);
bool HasOntoHomomorphism(const Database& from, const Database& to);

}  // namespace incdb

#endif  // INCDB_CORE_HOMOMORPHISM_H_
