// Tuple: an ordered sequence of Values (one row of a relation).

#ifndef INCDB_CORE_TUPLE_H_
#define INCDB_CORE_TUPLE_H_

#include <compare>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/value.h"

namespace incdb {

/// A database tuple. Comparison is lexicographic; hashing is order-sensitive.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// True if any component is a marked null.
  bool HasNull() const;

  /// The tuple restricted to the given column indices, in order.
  Tuple Project(const std::vector<size_t>& columns) const;

  /// Concatenation (this ++ other).
  Tuple Concat(const Tuple& other) const;

  bool operator==(const Tuple& o) const = default;
  std::strong_ordering operator<=>(const Tuple& o) const = default;

  /// "(1, 'a', _2)"
  std::string ToString() const;

  size_t Hash() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

/// Key of a tuple under a column list, hashed like a Tuple of the projected
/// values (without materializing the projection). Build-side indexes and
/// probe-side lookups must use this one function to agree.
size_t HashColumns(const Tuple& t, const std::vector<size_t>& cols);

/// True when a[a_cols[i]] == b[b_cols[i]] for every i (the column lists have
/// equal length).
bool ColumnsEqual(const Tuple& a, const std::vector<size_t>& a_cols,
                  const Tuple& b, const std::vector<size_t>& b_cols);

}  // namespace incdb

#endif  // INCDB_CORE_TUPLE_H_
