#include "core/schema.h"

#include "util/strings.h"

namespace incdb {

Status Schema::AddRelation(const std::string& name, size_t arity) {
  if (decls_.count(name) > 0) {
    return Status::InvalidArgument("relation already declared: " + name);
  }
  decls_[name] = RelationDecl{name, arity, {}};
  return Status::OK();
}

Status Schema::AddRelation(const std::string& name,
                           std::vector<std::string> attributes) {
  if (decls_.count(name) > 0) {
    return Status::InvalidArgument("relation already declared: " + name);
  }
  for (size_t i = 0; i < attributes.size(); ++i) {
    for (size_t j = i + 1; j < attributes.size(); ++j) {
      if (attributes[i] == attributes[j]) {
        return Status::InvalidArgument("duplicate attribute '" + attributes[i] +
                                       "' in relation " + name);
      }
    }
  }
  const size_t arity = attributes.size();
  decls_[name] = RelationDecl{name, arity, std::move(attributes)};
  return Status::OK();
}

bool Schema::HasRelation(const std::string& name) const {
  return decls_.count(name) > 0;
}

Result<size_t> Schema::Arity(const std::string& name) const {
  auto it = decls_.find(name);
  if (it == decls_.end()) {
    return Status::NotFound("relation not declared: " + name);
  }
  return it->second.arity;
}

Result<const RelationDecl*> Schema::Decl(const std::string& name) const {
  auto it = decls_.find(name);
  if (it == decls_.end()) {
    return Status::NotFound("relation not declared: " + name);
  }
  return &it->second;
}

Result<size_t> Schema::AttributeIndex(const std::string& name,
                                      const std::string& attr) const {
  auto it = decls_.find(name);
  if (it == decls_.end()) {
    return Status::NotFound("relation not declared: " + name);
  }
  const auto& attrs = it->second.attributes;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (EqualsIgnoreCase(attrs[i], attr)) return i;
  }
  return Status::NotFound("attribute '" + attr + "' not in relation " + name);
}

std::vector<std::string> Schema::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(decls_.size());
  for (const auto& [name, decl] : decls_) names.push_back(name);
  return names;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [name, decl] : decls_) {
    std::string s = name + "(";
    if (decl.attributes.empty()) {
      for (size_t i = 0; i < decl.arity; ++i) {
        if (i > 0) s += ", ";
        s += "#" + std::to_string(i);
      }
    } else {
      s += Join(decl.attributes, ", ");
    }
    s += ")";
    parts.push_back(s);
  }
  return Join(parts, "; ");
}

}  // namespace incdb
