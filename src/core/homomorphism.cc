#include "core/homomorphism.h"

#include <algorithm>
#include <vector>

#include "util/status.h"

namespace incdb {

const Value& NullSubstitution::Lookup(NullId id) const {
  auto it = map_.find(id);
  INCDB_CHECK_MSG(it != map_.end(), "null not bound by substitution");
  return it->second;
}

Value NullSubstitution::Apply(const Value& v) const {
  if (!v.is_null()) return v;
  auto it = map_.find(v.null_id());
  return it == map_.end() ? v : it->second;
}

Tuple NullSubstitution::Apply(const Tuple& t) const {
  std::vector<Value> out;
  out.reserve(t.arity());
  for (const Value& v : t.values()) out.push_back(Apply(v));
  return Tuple(std::move(out));
}

Relation NullSubstitution::Apply(const Relation& r) const {
  Relation out(r.arity());
  for (const Tuple& t : r.tuples()) out.Add(Apply(t));
  return out;
}

Database NullSubstitution::Apply(const Database& d) const {
  Database out(d.schema());
  for (const auto& [name, rel] : d.relations()) {
    *out.MutableRelation(name, rel.arity()) = Apply(rel);
  }
  return out;
}

std::string NullSubstitution::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const auto& [id, v] : map_) {
    if (!first) s += ", ";
    first = false;
    s += "_" + std::to_string(id) + " -> " + v.ToString();
  }
  s += "}";
  return s;
}

namespace {

class HomSearcher {
 public:
  HomSearcher(const Database& from, const Database& to, HomKind kind,
              const HomSearchOptions& options)
      : from_(from), to_(to), kind_(kind) {
    for (const auto& [name, rel] : from_.relations()) {
      for (const Tuple& t : rel.tuples()) items_.push_back({name, &t});
    }
    if (options.most_constrained_first) {
      // Tuples with more constants first: they prune candidate lists
      // hardest.
      std::stable_sort(items_.begin(), items_.end(),
                       [](const Item& a, const Item& b) {
                         return ConstCount(*a.tuple) > ConstCount(*b.tuple);
                       });
    }
  }

  std::optional<NullSubstitution> Search() {
    if (Rec(0)) return h_;
    return std::nullopt;
  }

 private:
  struct Item {
    std::string rel;
    const Tuple* tuple;
  };

  static size_t ConstCount(const Tuple& t) {
    size_t n = 0;
    for (const Value& v : t.values()) n += v.is_const();
    return n;
  }

  bool Accept() const {
    switch (kind_) {
      case HomKind::kPlain:
        return true;
      case HomKind::kStrongOnto:
        return h_.Apply(from_) == to_;
      case HomKind::kOnto: {
        // h(adom(from)) must cover adom(to).
        std::set<Value> image;
        for (const Value& v : from_.ActiveDomain()) image.insert(h_.Apply(v));
        for (const Value& v : to_.ActiveDomain()) {
          if (image.count(v) == 0) return false;
        }
        return true;
      }
    }
    return false;
  }

  bool Rec(size_t idx) {
    if (idx == items_.size()) return Accept();
    const Item& item = items_[idx];
    const Relation& target = to_.GetRelation(item.rel);
    for (const Tuple& cand : target.tuples()) {
      std::vector<NullId> bound;
      if (TryBind(*item.tuple, cand, &bound)) {
        if (Rec(idx + 1)) return true;
      }
      for (NullId id : bound) h_.Unbind(id);
    }
    return false;
  }

  bool TryBind(const Tuple& t, const Tuple& cand, std::vector<NullId>* bound) {
    if (t.arity() != cand.arity()) return false;
    for (size_t i = 0; i < t.arity(); ++i) {
      const Value& x = t[i];
      const Value& y = cand[i];
      if (x.is_const()) {
        if (x != y) return false;
      } else {
        const NullId id = x.null_id();
        if (h_.IsBound(id)) {
          if (h_.Lookup(id) != y) return false;
        } else {
          h_.Bind(id, y);
          bound->push_back(id);
        }
      }
    }
    return true;
  }

  const Database& from_;
  const Database& to_;
  HomKind kind_;
  std::vector<Item> items_;
  NullSubstitution h_;
};

}  // namespace

std::optional<NullSubstitution> FindHomomorphism(
    const Database& from, const Database& to, HomKind kind,
    const HomSearchOptions& options) {
  HomSearcher searcher(from, to, kind, options);
  return searcher.Search();
}

bool HasHomomorphism(const Database& from, const Database& to) {
  return FindHomomorphism(from, to, HomKind::kPlain).has_value();
}

bool HasStrongOntoHomomorphism(const Database& from, const Database& to) {
  return FindHomomorphism(from, to, HomKind::kStrongOnto).has_value();
}

bool HasOntoHomomorphism(const Database& from, const Database& to) {
  return FindHomomorphism(from, to, HomKind::kOnto).has_value();
}

}  // namespace incdb
