#include "core/core_of.h"

#include "core/homomorphism.h"

namespace incdb {
namespace {

// Tries to find a tuple whose removal keeps the instance hom-equivalent.
// Returns true and updates *d if one was removed.
bool RemoveOneRedundantTuple(Database* d) {
  for (const auto& [name, rel] : d->relations()) {
    for (const Tuple& t : rel.tuples()) {
      Database candidate;
      for (const auto& [name2, rel2] : d->relations()) {
        Relation* out = candidate.MutableRelation(name2, rel2.arity());
        for (const Tuple& t2 : rel2.tuples()) {
          if (name2 == name && t2 == t) continue;
          out->Add(t2);
        }
      }
      // candidate ⊆ d gives hom candidate → d for free; equivalence needs
      // d → candidate.
      if (HasHomomorphism(*d, candidate)) {
        *d = std::move(candidate);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Database CoreOf(const Database& d) {
  Database core = d;
  while (RemoveOneRedundantTuple(&core)) {
  }
  return core;
}

bool IsCore(const Database& d) {
  Database copy = d;
  return !RemoveOneRedundantTuple(&copy);
}

}  // namespace incdb
