#include "core/database.h"

#include <mutex>

#include "util/status.h"

namespace incdb {

namespace {
const Relation& EmptyRelation(size_t arity) {
  // Shared immutable empties, one per arity ever requested. Mutex-guarded:
  // concurrent readers (service sessions) may race to create an arity's
  // entry. Map node stability keeps returned references valid across later
  // insertions; the lazy caches are forced at creation so readers of the
  // shared empty never build them.
  static std::mutex* mu = new std::mutex;
  static std::map<size_t, Relation>* empties = new std::map<size_t, Relation>;
  std::lock_guard<std::mutex> lock(*mu);
  auto it = empties->find(arity);
  if (it == empties->end()) {
    it = empties->emplace(arity, Relation(arity)).first;
    it->second.tuples();
    it->second.HashIndex();
    it->second.Columnar();
    it->second.IsComplete();
  }
  return it->second;
}
}  // namespace

Relation* Database::MutableRelation(const std::string& name,
                                    size_t arity_hint) {
  auto it = relations_.find(name);
  if (it != relations_.end()) return &it->second;
  size_t arity = arity_hint;
  if (schema_.HasRelation(name)) {
    arity = *schema_.Arity(name);
  } else {
    (void)schema_.AddRelation(name, arity);
  }
  return &relations_.emplace(name, Relation(arity)).first->second;
}

const Relation& Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it != relations_.end()) return it->second;
  size_t arity = 0;
  if (schema_.HasRelation(name)) arity = *schema_.Arity(name);
  return EmptyRelation(arity);
}

void Database::AddTuple(const std::string& name, Tuple t) {
  const size_t arity = t.arity();
  MutableRelation(name, arity)->Add(std::move(t));
}

size_t Database::TupleCount() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

std::set<NullId> Database::Nulls() const {
  std::set<NullId> out;
  for (const auto& [name, rel] : relations_) {
    auto nulls = rel.Nulls();
    out.insert(nulls.begin(), nulls.end());
  }
  return out;
}

std::set<Value> Database::Constants() const {
  std::set<Value> out;
  for (const auto& [name, rel] : relations_) {
    auto consts = rel.Constants();
    out.insert(consts.begin(), consts.end());
  }
  return out;
}

std::set<Value> Database::ActiveDomain() const {
  std::set<Value> out = Constants();
  for (NullId id : Nulls()) out.insert(Value::Null(id));
  return out;
}

bool Database::IsComplete() const {
  for (const auto& [name, rel] : relations_) {
    if (!rel.IsComplete()) return false;
  }
  return true;
}

bool Database::IsCoddDatabase() const {
  std::map<NullId, int> counts;
  for (const auto& [name, rel] : relations_) {
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t.values()) {
        if (v.is_null() && ++counts[v.null_id()] > 1) return false;
      }
    }
  }
  return true;
}

Database Database::CompletePart() const {
  Database out(schema_);
  for (const auto& [name, rel] : relations_) {
    *out.MutableRelation(name, rel.arity()) = rel.CompletePart();
  }
  return out;
}

NullId Database::FreshNullId() const {
  auto nulls = Nulls();
  return nulls.empty() ? 0 : *nulls.rbegin() + 1;
}

bool Database::operator==(const Database& o) const {
  for (const auto& [name, rel] : relations_) {
    const Relation& other = o.GetRelation(name);
    // Empty relations compare equal regardless of declared arity.
    if (rel.empty() && other.empty()) continue;
    if (rel != other) return false;
  }
  for (const auto& [name, rel] : o.relations_) {
    if (relations_.count(name) == 0 && !rel.empty()) return false;
  }
  return true;
}

bool Database::IsSubinstanceOf(const Database& o) const {
  for (const auto& [name, rel] : relations_) {
    if (rel.empty()) continue;
    if (!rel.IsSubsetOf(o.GetRelation(name))) return false;
  }
  return true;
}

std::string Database::ToString() const {
  std::string s;
  for (const auto& [name, rel] : relations_) {
    s += name + " = " + rel.ToString() + "\n";
  }
  return s;
}

}  // namespace incdb
