// Schema: relation names with arities and optional attribute names.

#ifndef INCDB_CORE_SCHEMA_H_
#define INCDB_CORE_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace incdb {

/// Declaration of one relation symbol.
struct RelationDecl {
  std::string name;
  size_t arity = 0;
  /// Attribute names; empty, or exactly `arity` entries.
  std::vector<std::string> attributes;
};

/// A relational schema: a set of relation symbols with arities.
class Schema {
 public:
  Schema() = default;

  /// Adds a relation with positional attributes.
  Status AddRelation(const std::string& name, size_t arity);
  /// Adds a relation with named attributes (arity = attributes.size()).
  Status AddRelation(const std::string& name,
                     std::vector<std::string> attributes);

  bool HasRelation(const std::string& name) const;
  Result<size_t> Arity(const std::string& name) const;
  Result<const RelationDecl*> Decl(const std::string& name) const;

  /// Index of attribute `attr` in relation `name`.
  Result<size_t> AttributeIndex(const std::string& name,
                                const std::string& attr) const;

  /// Relation names in sorted order.
  std::vector<std::string> RelationNames() const;

  size_t size() const { return decls_.size(); }

  /// "R(a, b); S(x)"
  std::string ToString() const;

 private:
  std::map<std::string, RelationDecl> decls_;
};

}  // namespace incdb

#endif  // INCDB_CORE_SCHEMA_H_
