// Enumeration of possible worlds of an incomplete database.
//
// Under CWA, ⟦D⟧ = { v(D) } for valuations v of Null(D). The world space is
// infinite (Const is infinite), but for generic queries it suffices to let
// nulls range over the active constants plus k fresh constants, where k is
// the number of nulls: any world is isomorphic, over the constants of D and
// of the query, to one of the sampled worlds, and generic queries cannot
// distinguish isomorphic worlds. `WorldDomain` builds that finite domain.
//
// Under OWA the worlds also add arbitrary tuples; `ForEachWorldOwaBounded`
// enumerates v(D) extended with subsets of a caller-supplied candidate tuple
// pool (validation only — exact OWA certain answers for (U)CQs are computed
// via the tableau duality in logic/containment.h).
//
// The *Parallel drivers split the valuation space by the first null's
// assignment and enumerate the sub-spaces on the global thread pool
// (util/thread_pool.h). They visit exactly the same set of valuations as the
// serial functions, share one atomic max_worlds budget across all
// sub-spaces, and propagate an early exit (a callback returning false) to
// every worker.
//
// The *Gray drivers visit the same valuation set in mixed-radix reflected
// Gray-code order, so consecutive worlds differ in exactly one null's
// binding. The single-null step is reported as a ValuationDelta, which is
// what lets the delta-evaluation layer (engine/delta_eval.h) re-evaluate a
// plan incrementally instead of from scratch per world.

#ifndef INCDB_CORE_POSSIBLE_WORLDS_H_
#define INCDB_CORE_POSSIBLE_WORLDS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/valuation.h"
#include "util/status.h"

namespace incdb {

/// Options controlling world enumeration.
struct WorldEnumOptions {
  /// Number of fresh constants added beyond the active domain. If negative,
  /// defaults to the number of distinct nulls in the instance.
  int fresh_constants = -1;
  /// Extra constants that must be in the domain (e.g. constants mentioned by
  /// the query but absent from the instance).
  std::vector<Value> required_constants;
  /// Safety valve: abort enumeration after this many worlds. The parallel
  /// drivers charge all sub-spaces against one shared atomic budget, so the
  /// serial and parallel paths abort after the same number of callback
  /// invocations.
  uint64_t max_worlds = 50'000'000;
};

/// The finite constant domain used to instantiate nulls: Const(D) ∪ required
/// ∪ {k fresh integer constants}. Thread-compatible (pure function of its
/// arguments); O(|D| log |D|).
std::vector<Value> WorldDomain(const Database& d, const WorldEnumOptions& opts);

/// Number of CWA worlds |domain|^#nulls (saturating at UINT64_MAX).
/// Thread-compatible; O(|D| log |D| + #nulls).
uint64_t CountWorldsCwa(const Database& d, const WorldEnumOptions& opts);

/// Invokes `fn` on every valuation of Null(D) over the domain, on the
/// calling thread. Stops early if `fn` returns false. Returns
/// ResourceExhausted if max_worlds is hit. The Valuation passed to `fn` is
/// reused between invocations — copy it to keep it.
/// O(|domain|^#nulls · cost(fn)).
Status ForEachValuation(const Database& d, const WorldEnumOptions& opts,
                        const std::function<bool(const Valuation&)>& fn);

/// Invokes `fn` on every CWA world v(D), on the calling thread. Stops early
/// if `fn` returns false. O(|domain|^#nulls · (|D| + cost(fn))).
Status ForEachWorldCwa(const Database& d, const WorldEnumOptions& opts,
                       const std::function<bool(const Database&)>& fn);

/// ForEachWorldCwa variant that applies each valuation in place over one
/// reusable world buffer instead of materializing a fresh Database per
/// world: complete relations are shared copy-on-write once, and only the
/// null-carrying relations are rebuilt per world. Budget accounting and
/// early-exit behavior are bit-identical to the copying overload; the
/// Database reference passed to `fn` is reused between invocations — copy
/// what you need to keep.
Status ForEachWorldCwaScratch(const Database& d, const WorldEnumOptions& opts,
                              const std::function<bool(const Database&)>& fn);

/// The single-null difference between a Gray-chain world and its
/// predecessor: the valuation handed to the callback alongside this delta
/// rebinds exactly `null_id`, from `old_value` to `new_value`. The first
/// valuation of a chain has no predecessor: `has_delta` is false and the
/// remaining fields are meaningless.
struct ValuationDelta {
  bool has_delta = false;
  NullId null_id = 0;
  Value old_value;
  Value new_value;
};

/// ForEachValuation in mixed-radix reflected Gray-code order: visits exactly
/// the same set of valuations as ForEachValuation (each one once), but
/// consecutive valuations differ in a single null's binding, reported to
/// `fn` as a ValuationDelta (has_delta == false only on the very first
/// world). Budget and early-exit semantics are identical to
/// ForEachValuation: at most opts.max_worlds callback invocations, then
/// ResourceExhausted; `fn` returning false stops with OK.
Status ForEachValuationGray(
    const Database& d, const WorldEnumOptions& opts,
    const std::function<bool(const Valuation&, const ValuationDelta&)>& fn);

/// Parallel Gray driver. Like ForEachValuationParallel the space is split by
/// the first null's assignment into contiguous domain ranges, but each
/// worker runs ONE continuous Gray chain covering its whole range (the first
/// null is just another Gray digit, restricted to the range), so a worker
/// sees exactly one has_delta == false callback and per-chain state needs
/// rebuilding once per worker, not once per sub-space. Worker-index,
/// shared-budget, and early-exit semantics match ForEachValuationParallel.
Status ForEachValuationGrayParallel(
    const Database& d, const WorldEnumOptions& opts, int num_threads,
    const std::function<bool(const Valuation&, const ValuationDelta&,
                             size_t worker)>& fn);

/// Parallel ForEachValuation: the valuation space is split by the first
/// null's assignment into |domain| sub-spaces, enumerated on up to
/// `num_threads` workers (0 = hardware_concurrency; 1 falls back to the
/// serial driver on the calling thread).
///
/// `fn(v, worker)` receives a dense worker index < ParallelChunkCount(...):
/// invocations sharing a worker index are sequential, distinct indices run
/// concurrently, so `fn` may accumulate into per-worker state without locks
/// but must not touch shared mutable state. Returning false stops all
/// workers (early exit); enumeration still returns OK in that case. The set
/// of valuations visited (absent early exit) is exactly the serial one;
/// only the visiting order differs. Returns ResourceExhausted when the
/// shared budget hits opts.max_worlds — after exactly as many callback
/// invocations as the serial driver would have made.
Status ForEachValuationParallel(
    const Database& d, const WorldEnumOptions& opts, int num_threads,
    const std::function<bool(const Valuation&, size_t worker)>& fn);

/// Parallel ForEachWorldCwa; same contract as ForEachValuationParallel with
/// `fn` receiving the materialized world v(D) (worker-local, safe to move).
Status ForEachWorldCwaParallel(
    const Database& d, const WorldEnumOptions& opts, int num_threads,
    const std::function<bool(const Database&, size_t worker)>& fn);

/// The valuation drawn for sample `index` of the seeded stream (seed,
/// index): each null of `nulls` independently takes a uniform value of
/// `domain`. The randomness is a pure function of (seed, index) — NOT of a
/// shared generator state — which is what lets the Monte-Carlo sampler
/// (counting/sampler.h) partition a sample range across threads and still
/// produce bit-identical tallies at every thread count. `nulls` must be
/// sorted (callers pass Database::Nulls() flattened) and `domain` non-empty
/// when `nulls` is not. O(#nulls).
Valuation SampleValuationAt(const std::vector<NullId>& nulls,
                            const std::vector<Value>& domain, uint64_t seed,
                            uint64_t index);

/// Invokes `fn` on every v(D) ∪ E where E ranges over subsets of
/// `candidate_tuples` (pairs of relation name and tuple; tuples must be
/// complete). Validation-only approximation of ⟦D⟧_owa. Serial;
/// O(|domain|^#nulls · 2^|candidates| · (|D| + cost(fn))).
Status ForEachWorldOwaBounded(
    const Database& d, const WorldEnumOptions& opts,
    const std::vector<std::pair<std::string, Tuple>>& candidate_tuples,
    const std::function<bool(const Database&)>& fn);

}  // namespace incdb

#endif  // INCDB_CORE_POSSIBLE_WORLDS_H_
