// Enumeration of possible worlds of an incomplete database.
//
// Under CWA, ⟦D⟧ = { v(D) } for valuations v of Null(D). The world space is
// infinite (Const is infinite), but for generic queries it suffices to let
// nulls range over the active constants plus k fresh constants, where k is
// the number of nulls: any world is isomorphic, over the constants of D and
// of the query, to one of the sampled worlds, and generic queries cannot
// distinguish isomorphic worlds. `WorldDomain` builds that finite domain.
//
// Under OWA the worlds also add arbitrary tuples; `ForEachWorldOwaBounded`
// enumerates v(D) extended with subsets of a caller-supplied candidate tuple
// pool (validation only — exact OWA certain answers for (U)CQs are computed
// via the tableau duality in logic/containment.h).

#ifndef INCDB_CORE_POSSIBLE_WORLDS_H_
#define INCDB_CORE_POSSIBLE_WORLDS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/valuation.h"
#include "util/status.h"

namespace incdb {

/// Options controlling world enumeration.
struct WorldEnumOptions {
  /// Number of fresh constants added beyond the active domain. If negative,
  /// defaults to the number of distinct nulls in the instance.
  int fresh_constants = -1;
  /// Extra constants that must be in the domain (e.g. constants mentioned by
  /// the query but absent from the instance).
  std::vector<Value> required_constants;
  /// Safety valve: abort enumeration after this many worlds.
  uint64_t max_worlds = 50'000'000;
};

/// The finite constant domain used to instantiate nulls: Const(D) ∪ required
/// ∪ {k fresh integer constants}.
std::vector<Value> WorldDomain(const Database& d, const WorldEnumOptions& opts);

/// Number of CWA worlds |domain|^#nulls (saturating at UINT64_MAX).
uint64_t CountWorldsCwa(const Database& d, const WorldEnumOptions& opts);

/// Invokes `fn` on every valuation of Null(D) over the domain. Stops early if
/// `fn` returns false. Returns ResourceExhausted if max_worlds is hit.
Status ForEachValuation(const Database& d, const WorldEnumOptions& opts,
                        const std::function<bool(const Valuation&)>& fn);

/// Invokes `fn` on every CWA world v(D). Stops early if `fn` returns false.
Status ForEachWorldCwa(const Database& d, const WorldEnumOptions& opts,
                       const std::function<bool(const Database&)>& fn);

/// Invokes `fn` on every v(D) ∪ E where E ranges over subsets of
/// `candidate_tuples` (pairs of relation name and tuple; tuples must be
/// complete). Validation-only approximation of ⟦D⟧_owa.
Status ForEachWorldOwaBounded(
    const Database& d, const WorldEnumOptions& opts,
    const std::vector<std::pair<std::string, Tuple>>& candidate_tuples,
    const std::function<bool(const Database&)>& fn);

}  // namespace incdb

#endif  // INCDB_CORE_POSSIBLE_WORLDS_H_
