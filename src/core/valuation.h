// Valuation: a mapping v : Null -> Const, and the OWA/CWA/WCWA semantics of
// incomplete databases it induces (paper, Section 2).
//
//   ⟦D⟧_cwa  = { v(D)            | v a valuation }
//   ⟦D⟧_owa  = { D' ⊇ v(D)      | v a valuation }
//   ⟦D⟧_wcwa = { D' | v(D) ⊆ D' ⊆ adom(v(D))-closure }  (Reiter's weak CWA)

#ifndef INCDB_CORE_VALUATION_H_
#define INCDB_CORE_VALUATION_H_

#include <map>
#include <string>

#include "core/database.h"
#include "util/status.h"

namespace incdb {

/// Which possible-world semantics an incomplete database is read under.
enum class WorldSemantics {
  kOpenWorld,    ///< ⟦D⟧_owa: substitute nulls, then add arbitrary tuples
  kClosedWorld,  ///< ⟦D⟧_cwa: substitute nulls only
  kWeakClosedWorld,  ///< substitute, then add tuples over the active domain
};

const char* WorldSemanticsName(WorldSemantics s);

/// A (partial) mapping from marked nulls to constants.
class Valuation {
 public:
  Valuation() = default;

  /// Binds ⊥_id to constant `c`. `c` must be a constant.
  void Bind(NullId id, const Value& c);

  /// Removes the binding for ⊥_id (no-op if unbound).
  void Unbind(NullId id) { map_.erase(id); }

  bool IsBound(NullId id) const { return map_.count(id) > 0; }

  /// The image of ⊥_id; `id` must be bound.
  const Value& Lookup(NullId id) const;

  /// v(x): constants map to themselves; bound nulls to their constant;
  /// unbound nulls stay themselves (partial application).
  Value Apply(const Value& v) const;
  Tuple Apply(const Tuple& t) const;
  Relation Apply(const Relation& r) const;
  /// v(D): applies the valuation to every relation.
  Database Apply(const Database& d) const;

  /// True if the valuation binds every null of D (v(D) is then complete).
  bool IsTotalFor(const Database& d) const;

  size_t size() const { return map_.size(); }
  const std::map<NullId, Value>& map() const { return map_; }

  std::string ToString() const;

 private:
  std::map<NullId, Value> map_;
};

/// True iff `world` ∈ ⟦d⟧ under `semantics`, witnessed by some valuation.
/// `world` must be complete. Exponential in the number of *distinct* nulls
/// only through constraint propagation; in practice fast (used as ground
/// truth in tests).
bool IsPossibleWorld(const Database& d, const Database& world,
                     WorldSemantics semantics);

}  // namespace incdb

#endif  // INCDB_CORE_VALUATION_H_
