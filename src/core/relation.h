// Relation: a finite set of tuples over Const ∪ Null (a naïve table).
//
// Storage is a vector kept canonical (sorted, deduplicated) lazily: mutators
// mark the relation dirty and const accessors canonicalize on demand. This
// makes set-equality, subset tests and iteration deterministic while keeping
// bulk loads O(n log n).
//
// Membership is served by a lazily built hash-set index (expected O(1) per
// probe). The index is an immutable snapshot shared across copies and
// invalidated by mutation, so copying a relation never copies the index and
// repeated probes against a stable relation build it exactly once.

#ifndef INCDB_CORE_RELATION_H_
#define INCDB_CORE_RELATION_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/tuple.h"

namespace incdb {

/// A set of same-arity tuples; the unit of incomplete data (a naïve table).
class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// Builds a relation from tuples; all must have arity `arity`.
  Relation(size_t arity, std::vector<Tuple> tuples);

  size_t arity() const { return arity_; }

  /// Number of distinct tuples.
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Adds a tuple (set semantics — duplicates are absorbed).
  void Add(Tuple t);

  /// Adds all tuples of `other` (arities must match).
  void AddAll(const Relation& other);

  /// Membership test (expected O(1) via the hash index).
  bool Contains(const Tuple& t) const;

  /// The hash-set view of the tuples. Built on first use, cached until the
  /// next mutation; the returned reference is invalidated by mutation.
  const std::unordered_set<Tuple, TupleHash>& HashIndex() const;

  /// Canonical (sorted, deduplicated) tuple list.
  const std::vector<Tuple>& tuples() const;

  /// True if no tuple contains a null.
  bool IsComplete() const;

  /// True if every null occurring in the relation occurs exactly once
  /// (Codd table; models SQL's unmarked nulls).
  bool IsCoddTable() const;

  /// Nulls occurring anywhere in the relation.
  std::set<NullId> Nulls() const;

  /// Constants occurring anywhere in the relation.
  std::set<Value> Constants() const;

  /// The subset of tuples without nulls (D_cmpl in the paper).
  Relation CompletePart() const;

  bool operator==(const Relation& o) const;
  bool operator!=(const Relation& o) const { return !(*this == o); }

  /// True if every tuple of this relation is in `o`.
  bool IsSubsetOf(const Relation& o) const;

  /// "{(1, 2), (2, _0)}"
  std::string ToString() const;

 private:
  void EnsureCanonical() const;

  size_t arity_;
  mutable std::vector<Tuple> tuples_;
  mutable bool dirty_ = false;
  // Immutable membership snapshot; shared by copies, reset on mutation.
  mutable std::shared_ptr<const std::unordered_set<Tuple, TupleHash>> index_;
};

}  // namespace incdb

#endif  // INCDB_CORE_RELATION_H_
