// Relation: a finite set of tuples over Const ∪ Null (a naïve table).
//
// Storage is a vector kept canonical (sorted, deduplicated) lazily: mutators
// mark the relation dirty and const accessors canonicalize on demand. This
// makes set-equality, subset tests and iteration deterministic while keeping
// bulk loads O(n log n).
//
// Tuple storage is copy-on-write: copying a relation canonicalizes it once
// and then shares the underlying vector, so the per-world database copies of
// the enumeration drivers are O(1) for every relation no valuation changes.
// Storage reachable from more than one relation is always canonical; mutators
// clone before writing, so copies never observe each other's changes.
//
// Membership is served by a lazily built hash-set index (expected O(1) per
// probe). The index is an immutable snapshot shared across copies and
// invalidated by mutation, so copying a relation never copies the index and
// repeated probes against a stable relation build it exactly once. Column
// indexes (for equi-join and division probes against a pinned relation) are
// built explicitly via BuildColumnIndex and shared the same way.

#ifndef INCDB_CORE_RELATION_H_
#define INCDB_CORE_RELATION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/tuple.h"

namespace incdb {

class ColumnarRelation;

/// Hash index keyed by the values at a fixed column list: HashColumns(t,
/// cols) → row indices into tuples() whose columns hash there (collisions
/// included; confirm with ColumnsEqual).
using TupleRowIndex = std::unordered_map<size_t, std::vector<uint32_t>>;

/// A set of same-arity tuples; the unit of incomplete data (a naïve table).
class Relation {
 public:
  /// An empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// Builds a relation from tuples; all must have arity `arity`.
  Relation(size_t arity, std::vector<Tuple> tuples);

  // Copies share the (canonicalized) tuple storage and every cached index;
  // moves steal them. Mutating either side afterwards is safe (copy-on-
  // write) but, like all mutation, requires external synchronization.
  Relation(const Relation& o);
  Relation& operator=(const Relation& o);
  Relation(Relation&& o) noexcept;
  Relation& operator=(Relation&& o) noexcept;

  size_t arity() const { return arity_; }

  /// Number of distinct tuples.
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Adds a tuple (set semantics — duplicates are absorbed).
  void Add(Tuple t);

  /// Adds all tuples of `other` (arities must match).
  void AddAll(const Relation& other);

  /// Membership test (expected O(1) via the hash index).
  bool Contains(const Tuple& t) const;

  /// The hash-set view of the tuples. Built on first use, cached until the
  /// next mutation; the returned reference is invalidated by mutation.
  const std::unordered_set<Tuple, TupleHash>& HashIndex() const;

  /// Builds (or returns the cached) hash index keyed by the values at
  /// `cols`, with row ids into tuples(). Not thread-safe — call it on the
  /// owning thread before sharing the relation; afterwards FindColumnIndex
  /// is a read-only lookup safe under concurrent readers.
  const TupleRowIndex& BuildColumnIndex(const std::vector<size_t>& cols) const;

  /// The column index previously built for `cols`, or nullptr. Never builds.
  const TupleRowIndex* FindColumnIndex(const std::vector<size_t>& cols) const;

  /// The columnar (dictionary-encoded) form of this relation
  /// (core/columnar.h). Built on first use and cached exactly like
  /// HashIndex(): the snapshot is shared by copies and invalidated by
  /// mutation. Not thread-safe to build — force it on the owning thread
  /// before sharing the relation; the returned object is immutable and safe
  /// under concurrent readers.
  std::shared_ptr<const ColumnarRelation> Columnar() const;

  /// Canonical (sorted, deduplicated) tuple list.
  const std::vector<Tuple>& tuples() const;

  /// True if no tuple contains a null. Memoized (O(n) once per content);
  /// copies inherit the memo. Safe under concurrent readers.
  bool IsComplete() const;

  /// True if every null occurring in the relation occurs exactly once
  /// (Codd table; models SQL's unmarked nulls).
  bool IsCoddTable() const;

  /// Nulls occurring anywhere in the relation.
  std::set<NullId> Nulls() const;

  /// Constants occurring anywhere in the relation.
  std::set<Value> Constants() const;

  /// The subset of tuples without nulls (D_cmpl in the paper).
  Relation CompletePart() const;

  /// Bumped on every mutation; used (with IsComplete) to stamp cached
  /// evaluation results that depend on this relation's content.
  uint64_t version() const { return version_; }

  /// True when both relations share the same underlying tuple storage
  /// (copy-on-write aliasing; empty relations never share).
  bool SharesStorageWith(const Relation& o) const {
    return tuples_ != nullptr && tuples_ == o.tuples_;
  }

  bool operator==(const Relation& o) const;
  bool operator!=(const Relation& o) const { return !(*this == o); }

  /// True if every tuple of this relation is in `o`.
  bool IsSubsetOf(const Relation& o) const;

  /// "{(1, 2), (2, _0)}"
  std::string ToString() const;

 private:
  void EnsureCanonical() const;
  // Clones shared storage (and allocates empty storage) before a mutation.
  void EnsureUniqueStorage();
  static const std::vector<Tuple>& EmptyTuples();

  size_t arity_;
  // Shared copy-on-write tuple storage; null means "no tuples". Invariant:
  // storage reachable from more than one Relation is canonical.
  mutable std::shared_ptr<std::vector<Tuple>> tuples_;
  mutable bool dirty_ = false;
  // Immutable membership snapshot; shared by copies, reset on mutation.
  mutable std::shared_ptr<const std::unordered_set<Tuple, TupleHash>> index_;
  // Explicitly built column indexes (BuildColumnIndex); shared by copies,
  // reset on mutation. Row ids refer to the canonical tuple order.
  mutable std::shared_ptr<std::map<std::vector<size_t>, TupleRowIndex>>
      col_indexes_;
  // Cached columnar snapshot (Columnar()); shared by copies, reset on
  // mutation.
  mutable std::shared_ptr<const ColumnarRelation> columnar_;
  // Memoized IsComplete: -1 unknown, 0 has nulls, 1 complete. Atomic so
  // concurrent readers of a shared relation may race to fill it benignly
  // (both compute the same value).
  mutable std::atomic<int8_t> complete_{-1};
  uint64_t version_ = 0;
};

}  // namespace incdb

#endif  // INCDB_CORE_RELATION_H_
