#include "core/product.h"

#include <map>
#include <utility>

namespace incdb {

Database ProductDatabase(const Database& d1, const Database& d2) {
  Database out;
  // Pairing table: distinct non-diagonal pairs get fresh nulls.
  std::map<std::pair<Value, Value>, Value> pairing;
  NullId next_null = 0;
  auto pair_value = [&](const Value& a, const Value& b) -> Value {
    if (a == b && a.is_const()) return a;
    auto it = pairing.find({a, b});
    if (it != pairing.end()) return it->second;
    Value fresh = Value::Null(next_null++);
    pairing.emplace(std::make_pair(a, b), fresh);
    return fresh;
  };

  for (const auto& [name, rel1] : d1.relations()) {
    if (!d2.HasRelation(name)) continue;
    const Relation& rel2 = d2.GetRelation(name);
    if (rel1.arity() != rel2.arity()) continue;
    Relation* target = out.MutableRelation(name, rel1.arity());
    for (const Tuple& t1 : rel1.tuples()) {
      for (const Tuple& t2 : rel2.tuples()) {
        std::vector<Value> vals;
        vals.reserve(t1.arity());
        for (size_t i = 0; i < t1.arity(); ++i) {
          vals.push_back(pair_value(t1[i], t2[i]));
        }
        target->Add(Tuple(std::move(vals)));
      }
    }
  }
  return out;
}

Result<Database> ProductOf(const std::vector<Database>& dbs) {
  if (dbs.empty()) {
    return Status::InvalidArgument("ProductOf requires at least one database");
  }
  Database acc = dbs[0];
  for (size_t i = 1; i < dbs.size(); ++i) {
    acc = ProductDatabase(acc, dbs[i]);
  }
  return acc;
}

}  // namespace incdb
