#include "core/columnar.h"

#include <algorithm>
#include <utility>

#include "core/relation.h"
#include "util/status.h"

namespace incdb {

uint32_t ValueDict::Find(const Value& v) const {
  auto it = std::lower_bound(values.begin(), values.end(), v);
  if (it == values.end() || !(*it == v)) return kNotFound;
  return static_cast<uint32_t>(it - values.begin());
}

uint32_t ValueDict::LowerBound(const Value& v) const {
  return static_cast<uint32_t>(
      std::lower_bound(values.begin(), values.end(), v) - values.begin());
}

uint32_t ValueDict::UpperBound(const Value& v) const {
  return static_cast<uint32_t>(
      std::upper_bound(values.begin(), values.end(), v) - values.begin());
}

std::shared_ptr<const ValueDict> ValueDict::Build(std::vector<Value> cells) {
  auto dict = std::make_shared<ValueDict>();
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  dict->values = std::move(cells);
  dict->hashes.reserve(dict->values.size());
  for (const Value& v : dict->values) dict->hashes.push_back(v.Hash());
  // Nulls sort first; the first constant ends the null prefix.
  uint32_t null_end = 0;
  while (null_end < dict->values.size() &&
         dict->values[null_end].is_null()) {
    ++null_end;
  }
  dict->null_end = null_end;
  return dict;
}

DictMerge MergeDicts(const std::shared_ptr<const ValueDict>& a,
                     const std::shared_ptr<const ValueDict>& b) {
  DictMerge out;
  if (a == b) {
    out.dict = a;
    out.from_a.resize(a->size());
    for (uint32_t i = 0; i < a->size(); ++i) out.from_a[i] = i;
    out.from_b = out.from_a;
    return out;
  }
  auto merged = std::make_shared<ValueDict>();
  merged->values.reserve(a->size() + b->size());
  merged->hashes.reserve(a->size() + b->size());
  out.from_a.resize(a->size());
  out.from_b.resize(b->size());
  size_t i = 0;
  size_t j = 0;
  while (i < a->size() || j < b->size()) {
    const uint32_t code = static_cast<uint32_t>(merged->values.size());
    bool take_a = false;
    bool take_b = false;
    if (i < a->size() && j < b->size()) {
      const auto cmp = a->values[i] <=> b->values[j];
      take_a = cmp <= 0;
      take_b = cmp >= 0;
    } else {
      take_a = i < a->size();
      take_b = !take_a;
    }
    if (take_a) {
      merged->values.push_back(a->values[i]);
      merged->hashes.push_back(a->hashes[i]);
      out.from_a[i++] = code;
    }
    if (take_b) {
      if (!take_a) {
        merged->values.push_back(b->values[j]);
        merged->hashes.push_back(b->hashes[j]);
      }
      out.from_b[j++] = code;
    }
  }
  uint32_t null_end = 0;
  while (null_end < merged->values.size() &&
         merged->values[null_end].is_null()) {
    ++null_end;
  }
  merged->null_end = null_end;
  out.dict = std::move(merged);
  return out;
}

ColumnarRelation::ColumnarRelation(size_t arity, size_t rows,
                                   std::shared_ptr<const ValueDict> dict,
                                   std::vector<std::vector<uint32_t>> cols)
    : arity_(arity),
      rows_(rows),
      dict_(std::move(dict)),
      cols_(std::move(cols)) {
  INCDB_CHECK_MSG(cols_.size() == arity_, "column count != arity");
  null_bits_.resize(arity_);
  null_ids_.resize(arity_);
  const uint32_t null_end = dict_->null_end;
  const size_t words = (rows_ + 63) / 64;
  for (size_t c = 0; c < arity_; ++c) {
    INCDB_CHECK_MSG(cols_[c].size() == rows_, "ragged column");
    null_bits_[c].assign(words, 0);
    bool any = false;
    if (null_end > 0) {
      for (size_t row = 0; row < rows_; ++row) {
        if (cols_[c][row] < null_end) {
          null_bits_[c][row / 64] |= uint64_t{1} << (row % 64);
          any = true;
        }
      }
    }
    if (any) {
      null_ids_[c].resize(rows_, 0);
      for (size_t row = 0; row < rows_; ++row) {
        const uint32_t code = cols_[c][row];
        if (code < null_end) {
          null_ids_[c][row] = dict_->values[code].null_id();
        }
      }
    }
  }
}

std::shared_ptr<const ColumnarRelation> ColumnarRelation::FromRelation(
    const Relation& r) {
  const std::vector<Tuple>& rows = r.tuples();
  const size_t arity = r.arity();
  std::vector<Value> cells;
  cells.reserve(rows.size() * arity);
  for (const Tuple& t : rows) {
    for (const Value& v : t.values()) cells.push_back(v);
  }
  std::shared_ptr<const ValueDict> dict = ValueDict::Build(std::move(cells));
  std::vector<std::vector<uint32_t>> cols(arity);
  for (size_t c = 0; c < arity; ++c) {
    cols[c].reserve(rows.size());
    for (const Tuple& t : rows) cols[c].push_back(dict->Find(t[c]));
  }
  return std::make_shared<const ColumnarRelation>(
      arity, rows.size(), std::move(dict), std::move(cols));
}

Relation ColumnarRelation::ToRelation() const {
  std::vector<Tuple> out;
  out.reserve(rows_);
  for (size_t row = 0; row < rows_; ++row) {
    std::vector<Value> vals;
    vals.reserve(arity_);
    for (size_t c = 0; c < arity_; ++c) {
      vals.push_back(dict_->values[cols_[c][row]]);
    }
    out.emplace_back(std::move(vals));
  }
  return Relation(arity_, std::move(out));
}

bool ColumnarRelation::RowHasNull(size_t row) const {
  const size_t word = row / 64;
  const uint64_t bit = uint64_t{1} << (row % 64);
  for (size_t c = 0; c < arity_; ++c) {
    if (null_bits_[c][word] & bit) return true;
  }
  return false;
}

}  // namespace incdb
