// Columnar (dictionary-encoded) storage for relations.
//
// A ColumnarRelation is the column-major twin of a canonical Relation: every
// distinct value of the relation lives once in a sorted dictionary, and each
// column stores one 32-bit dictionary code per row. Because the dictionary
// is sorted by the total Value order, code order *is* value order within one
// relation — equality and order comparisons over a column become integer
// comparisons over a dense vector, which is what the batch-vectorized
// kernels in engine/vectorized.h iterate over. Rows follow the canonical
// tuple order of the source relation, so code rows are lexicographically
// sorted and deduplicated, and set operations run as sorted-run merges.
//
// Marked nulls get dedicated side structures per column:
//   * a null bitmap (one bit per row) answering "is this cell a null?"
//     without touching the dictionary, and
//   * a null-id column (dense NullId per row, 0 on constant cells),
//     materialized only for columns that actually contain nulls, so
//     valuation-style per-null processing never decodes Values.
// Nulls sort before all constants, so `code < dict().null_end` is an
// equivalent null test used inside comparison loops.
//
// Relation caches its ColumnarRelation exactly like HashIndex(): built on
// first use, shared structurally by copies (copy-on-write), invalidated by
// mutation. ColumnarRelation itself is immutable once built and therefore
// safe to share across threads.

#ifndef INCDB_CORE_COLUMNAR_H_
#define INCDB_CORE_COLUMNAR_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/tuple.h"

namespace incdb {

class Relation;

/// Sorted dictionary of the distinct values of one relation (or of one
/// intermediate batch result). `values` is strictly ascending in the total
/// Value order (nulls < ints < strings); `hashes[i] == values[i].Hash()` is
/// precomputed so value-hash probes never re-hash strings; `null_end` is the
/// number of leading entries that are marked nulls.
struct ValueDict {
  std::vector<Value> values;
  std::vector<size_t> hashes;
  uint32_t null_end = 0;

  static constexpr uint32_t kNotFound = std::numeric_limits<uint32_t>::max();

  size_t size() const { return values.size(); }

  /// Code of `v`, or kNotFound.
  uint32_t Find(const Value& v) const;
  /// First code whose value is >= v (== size() when none).
  uint32_t LowerBound(const Value& v) const;
  /// First code whose value is > v (== size() when none).
  uint32_t UpperBound(const Value& v) const;

  /// Builds the sorted dictionary of `cells` (consumed; need not be sorted
  /// or unique) with hashes and null_end filled in.
  static std::shared_ptr<const ValueDict> Build(std::vector<Value> cells);
};

/// Merge plan for comparing codes across two dictionaries: `dict` is the
/// sorted union, and `from_a[c]` / `from_b[c]` translate old codes into it.
/// The translations are order-preserving, so rows sorted under the old
/// dictionary stay sorted after remapping.
struct DictMerge {
  std::shared_ptr<const ValueDict> dict;
  std::vector<uint32_t> from_a;
  std::vector<uint32_t> from_b;
};

/// Merges two dictionaries (O(|a| + |b|) Value comparisons). When `a` and
/// `b` are the same object the translations are identities.
DictMerge MergeDicts(const std::shared_ptr<const ValueDict>& a,
                     const std::shared_ptr<const ValueDict>& b);

/// Column-major, dictionary-encoded snapshot of a relation. Immutable.
class ColumnarRelation {
 public:
  /// Encodes `cols` (one code vector per column, each `rows` long, rows in
  /// lexicographic code order and deduplicated) against `dict`. `rows` is
  /// explicit so 0-ary relations (which may hold the empty tuple) keep
  /// their row count. Null bitmaps and null-id columns are derived here.
  ColumnarRelation(size_t arity, size_t rows,
                   std::shared_ptr<const ValueDict> dict,
                   std::vector<std::vector<uint32_t>> cols);

  /// Builds the columnar form of `r` (canonicalizes `r` lazily). Prefer
  /// Relation::Columnar(), which caches the result on the relation.
  static std::shared_ptr<const ColumnarRelation> FromRelation(
      const Relation& r);

  /// Decodes back to a row-oriented Relation; round-trips bit-identically
  /// (rows are already canonical).
  Relation ToRelation() const;

  size_t arity() const { return arity_; }
  size_t rows() const { return rows_; }

  const ValueDict& dict() const { return *dict_; }
  const std::shared_ptr<const ValueDict>& dict_ptr() const { return dict_; }

  /// Codes of column `c`, one per row.
  const std::vector<uint32_t>& col(size_t c) const { return cols_[c]; }

  /// Null bitmap of column `c`: bit `row % 64` of word `row / 64` is set
  /// iff the cell is a marked null. ceil(rows/64) words.
  const std::vector<uint64_t>& null_bitmap(size_t c) const {
    return null_bits_[c];
  }

  /// True when column `c` contains at least one null.
  bool ColumnHasNulls(size_t c) const { return !null_ids_[c].empty(); }

  /// Null-id column of `c`: the NullId per row (0 on constant cells).
  /// Empty when the column has no nulls (see ColumnHasNulls).
  const std::vector<NullId>& null_ids(size_t c) const { return null_ids_[c]; }

  /// True when any cell of `row` is a marked null (bitmap lookup).
  bool RowHasNull(size_t row) const;

  /// The decoded value of one cell.
  const Value& ValueAt(size_t row, size_t c) const {
    return dict_->values[cols_[c][row]];
  }

 private:
  size_t arity_;
  size_t rows_;
  std::shared_ptr<const ValueDict> dict_;
  std::vector<std::vector<uint32_t>> cols_;
  std::vector<std::vector<uint64_t>> null_bits_;
  std::vector<std::vector<NullId>> null_ids_;
};

}  // namespace incdb

#endif  // INCDB_CORE_COLUMNAR_H_
