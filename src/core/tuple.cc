#include "core/tuple.h"

#include "util/status.h"

namespace incdb {

bool Tuple::HasNull() const {
  for (const Value& v : values_) {
    if (v.is_null()) return true;
  }
  return false;
}

Tuple Tuple::Project(const std::vector<size_t>& columns) const {
  std::vector<Value> out;
  out.reserve(columns.size());
  for (size_t c : columns) {
    INCDB_CHECK_MSG(c < values_.size(), "projection column out of range");
    out.push_back(values_[c]);
  }
  return Tuple(std::move(out));
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out = values_;
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

std::string Tuple::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) s += ", ";
    s += values_[i].ToString();
  }
  s += ")";
  return s;
}

size_t Tuple::Hash() const {
  size_t h = 0x345678;
  for (const Value& v : values_) {
    h = h * 1000003 ^ v.Hash();
  }
  return h ^ values_.size();
}

size_t HashColumns(const Tuple& t, const std::vector<size_t>& cols) {
  size_t h = 0x345678;
  for (size_t c : cols) {
    h = h * 1000003 ^ t[c].Hash();
  }
  return h ^ cols.size();
}

bool ColumnsEqual(const Tuple& a, const std::vector<size_t>& a_cols,
                  const Tuple& b, const std::vector<size_t>& b_cols) {
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (!(a[a_cols[i]] == b[b_cols[i]])) return false;
  }
  return true;
}

}  // namespace incdb
