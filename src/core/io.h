// Text serialization for databases — a human-editable dump format used by
// the shell's save/load commands and handy for test fixtures:
//
//   # comment
//   table Order(o_id, product)
//   1, 'widget'
//   2, _0          <- marked null ⊥_0
//
//   table Pay(p_id, order_id, amount)
//   10, _0, 100
//
// Values: integers, 'single-quoted strings' ('' escapes a quote), and _k
// for marked null ⊥_k. Blank lines and `#` comments are ignored. Nulls keep
// their identifiers, so shared marked nulls round-trip exactly.

#ifndef INCDB_CORE_IO_H_
#define INCDB_CORE_IO_H_

#include <string>

#include "core/database.h"
#include "util/status.h"

namespace incdb {

/// Serializes the database (schema + tuples) to the dump format.
std::string DumpDatabase(const Database& db);

/// Parses a dump back into a database. Errors carry 1-based line numbers.
Result<Database> LoadDatabase(const std::string& text);

}  // namespace incdb

#endif  // INCDB_CORE_IO_H_
