// Information orderings on incomplete databases (paper, Sections 5-6).
//
// The ordering x ⪯ y  ⇔  ⟦y⟧ ⊆ ⟦x⟧ ("y is more informative than x") has, for
// the relational semantics, the homomorphism characterizations of [32, 51]:
//
//   D ⪯_owa  D'  ⇔  ∃ homomorphism             h : D -> D'
//   D ⪯_cwa  D'  ⇔  ∃ strong onto homomorphism h : D -> D'
//   D ⪯_wcwa D'  ⇔  ∃ onto homomorphism        h : D -> D'
//
// `PrecedesSemantically` implements the definition directly by enumerating
// possible worlds over a finite domain — exponential, used as ground truth in
// property tests that validate the characterizations.

#ifndef INCDB_CORE_ORDERING_H_
#define INCDB_CORE_ORDERING_H_

#include <vector>

#include "core/database.h"
#include "core/homomorphism.h"
#include "core/valuation.h"

namespace incdb {

/// D ⪯ D' under the given semantics, via the homomorphism characterization.
bool Precedes(const Database& d, const Database& d2, WorldSemantics semantics);

bool PrecedesOwa(const Database& d, const Database& d2);
bool PrecedesCwa(const Database& d, const Database& d2);
bool PrecedesWcwa(const Database& d, const Database& d2);

/// Information equivalence: x ⪯ y and y ⪯ x (then ⟦x⟧ = ⟦y⟧).
bool InformationEquivalent(const Database& d, const Database& d2,
                           WorldSemantics semantics);

/// Ground-truth ordering check by the definition ⟦d2⟧ ⊆ ⟦d⟧, with worlds
/// enumerated over `domain` (for cwa; for owa, world containment is checked
/// by homomorphism on complete instances, which is exact). Exponential —
/// test-only.
bool PrecedesSemantically(const Database& d, const Database& d2,
                          WorldSemantics semantics,
                          const std::vector<Value>& domain);

}  // namespace incdb

#endif  // INCDB_CORE_ORDERING_H_
