#include "core/ordering.h"

#include "core/possible_worlds.h"

namespace incdb {

bool Precedes(const Database& d, const Database& d2,
              WorldSemantics semantics) {
  switch (semantics) {
    case WorldSemantics::kOpenWorld:
      return HasHomomorphism(d, d2);
    case WorldSemantics::kClosedWorld:
      return HasStrongOntoHomomorphism(d, d2);
    case WorldSemantics::kWeakClosedWorld:
      return HasOntoHomomorphism(d, d2);
  }
  return false;
}

bool PrecedesOwa(const Database& d, const Database& d2) {
  return Precedes(d, d2, WorldSemantics::kOpenWorld);
}

bool PrecedesCwa(const Database& d, const Database& d2) {
  return Precedes(d, d2, WorldSemantics::kClosedWorld);
}

bool PrecedesWcwa(const Database& d, const Database& d2) {
  return Precedes(d, d2, WorldSemantics::kWeakClosedWorld);
}

bool InformationEquivalent(const Database& d, const Database& d2,
                           WorldSemantics semantics) {
  return Precedes(d, d2, semantics) && Precedes(d2, d, semantics);
}

bool PrecedesSemantically(const Database& d, const Database& d2,
                          WorldSemantics semantics,
                          const std::vector<Value>& domain) {
  // ⟦d2⟧ ⊆ ⟦d⟧: every world of d2 must be a world of d. We enumerate d2's
  // worlds over the given domain. For OWA the ⊇-closure makes the world set
  // upward closed, so it suffices that every *minimal* world v(d2) is in
  // ⟦d⟧_owa, which IsPossibleWorld decides exactly.
  WorldEnumOptions opts;
  opts.fresh_constants = 0;
  opts.required_constants = domain;
  bool contained = true;
  Status st = ForEachWorldCwa(d2, opts, [&](const Database& world) {
    if (!IsPossibleWorld(d, world, semantics)) {
      contained = false;
      return false;
    }
    return true;
  });
  INCDB_CHECK_MSG(st.ok(), st.ToString());
  return contained;
}

}  // namespace incdb
