// Value: the atomic datum of incdb — a constant or a marked (naïve) null.
//
// The paper's data model (Section 2) populates databases from two countably
// infinite sets: Const (constants) and Null (marked nulls ⊥, ⊥', ⊥1, ...).
// We realize Const as 64-bit integers and strings, and Null as 32-bit null
// identifiers. A Codd/SQL null is a marked null that happens to occur exactly
// once in an instance.
//
// Values are totally ordered (nulls < ints < strings; each kind ordered
// naturally) so that relations can be kept canonical (sorted, deduplicated).
// The order on nulls is an implementation device only — no query semantics
// depends on comparing a null with `<`.

#ifndef INCDB_CORE_VALUE_H_
#define INCDB_CORE_VALUE_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace incdb {

/// Identifier of a marked null. ⊥_k is represented by NullId k.
using NullId = uint32_t;

/// A constant (int or string) or a marked null.
class Value {
 public:
  enum class Kind { kNull = 0, kInt = 1, kString = 2 };

  /// Default: the null ⊥_0 (a valid marked null).
  Value() : rep_(NullRep{0}) {}

  /// Creates an integer constant.
  static Value Int(int64_t v) { return Value(v); }
  /// Creates a string constant.
  static Value Str(std::string v) { return Value(std::move(v)); }
  /// Creates the marked null ⊥_id.
  static Value Null(NullId id) { return Value(NullRep{id}); }

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_string() const { return kind() == Kind::kString; }
  /// True for any constant (non-null) value.
  bool is_const() const { return !is_null(); }

  int64_t as_int() const { return std::get<int64_t>(rep_); }
  const std::string& as_str() const { return std::get<std::string>(rep_); }
  NullId null_id() const { return std::get<NullRep>(rep_).id; }

  bool operator==(const Value& o) const = default;
  std::strong_ordering operator<=>(const Value& o) const;

  /// Rendering: ints as-is, strings single-quoted, nulls as "_3" (⊥_3).
  std::string ToString() const;

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  struct NullRep {
    NullId id;
    bool operator==(const NullRep&) const = default;
    auto operator<=>(const NullRep&) const = default;
  };

  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(NullRep n) : rep_(n) {}

  std::variant<NullRep, int64_t, std::string> rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace incdb

#endif  // INCDB_CORE_VALUE_H_
