#include "core/possible_worlds.h"

#include <algorithm>
#include <atomic>

#include "util/random.h"
#include "util/thread_pool.h"

namespace incdb {

std::vector<Value> WorldDomain(const Database& d,
                               const WorldEnumOptions& opts) {
  std::set<Value> domain = d.Constants();
  for (const Value& v : opts.required_constants) {
    INCDB_CHECK_MSG(v.is_const(), "required constant must be a constant");
    domain.insert(v);
  }
  int fresh = opts.fresh_constants;
  if (fresh < 0) fresh = static_cast<int>(d.Nulls().size());
  // Fresh integers strictly above every integer constant in the domain.
  int64_t base = 0;
  for (const Value& v : domain) {
    if (v.is_int()) base = std::max(base, v.as_int());
  }
  for (int i = 1; i <= fresh; ++i) domain.insert(Value::Int(base + i));
  return std::vector<Value>(domain.begin(), domain.end());
}

uint64_t CountWorldsCwa(const Database& d, const WorldEnumOptions& opts) {
  const uint64_t domain_size = WorldDomain(d, opts).size();
  const size_t nulls = d.Nulls().size();
  uint64_t count = 1;
  for (size_t i = 0; i < nulls; ++i) {
    if (count > UINT64_MAX / std::max<uint64_t>(domain_size, 1)) {
      return UINT64_MAX;
    }
    count *= domain_size;
  }
  return count;
}

Status ForEachValuation(const Database& d, const WorldEnumOptions& opts,
                        const std::function<bool(const Valuation&)>& fn) {
  const std::vector<Value> domain = WorldDomain(d, opts);
  const std::set<NullId> null_set = d.Nulls();
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  if (nulls.empty()) {
    fn(Valuation());
    return Status::OK();
  }
  if (domain.empty()) {
    return Status::InvalidArgument("empty world domain with nulls present");
  }
  uint64_t emitted = 0;
  Valuation v;
  // Iterative odometer over domain^nulls.
  std::vector<size_t> idx(nulls.size(), 0);
  for (;;) {
    for (size_t i = 0; i < nulls.size(); ++i) v.Bind(nulls[i], domain[idx[i]]);
    if (++emitted > opts.max_worlds) {
      return Status::ResourceExhausted(
          "world enumeration exceeded max_worlds=" +
          std::to_string(opts.max_worlds));
    }
    if (!fn(v)) return Status::OK();
    // Advance odometer.
    size_t pos = 0;
    while (pos < idx.size() && ++idx[pos] == domain.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == idx.size()) break;
  }
  return Status::OK();
}

Status ForEachWorldCwa(const Database& d, const WorldEnumOptions& opts,
                       const std::function<bool(const Database&)>& fn) {
  return ForEachValuation(d, opts, [&](const Valuation& v) {
    return fn(v.Apply(d));
  });
}

Status ForEachWorldCwaScratch(const Database& d, const WorldEnumOptions& opts,
                              const std::function<bool(const Database&)>& fn) {
  // Complete relations never change under a valuation: the scratch world
  // shares their storage copy-on-write once, and only the null-carrying
  // relations are rebuilt per valuation.
  Database scratch = d;
  std::vector<std::pair<std::string, const Relation*>> incomplete;
  for (const auto& kv : d.relations()) {
    if (!kv.second.IsComplete()) incomplete.emplace_back(kv.first, &kv.second);
  }
  return ForEachValuation(d, opts, [&](const Valuation& v) {
    for (const auto& [name, base] : incomplete) {
      *scratch.MutableRelation(name, base->arity()) = v.Apply(*base);
    }
    return fn(scratch);
  });
}

namespace {

// One digit of a mixed-radix reflected Gray counter: `null` ranges over
// domain[offset .. offset + size).
struct GrayDigit {
  NullId null;
  size_t offset;
  size_t size;
};

// Runs one reflected mixed-radix Gray chain over `digits`: binds every
// digit's starting value into a valuation, emits it with has_delta == false,
// then advances one digit per step. The step rule is the standard reflected
// construction — advance the lowest digit whose direction keeps it in range;
// digits that would leave their range flip direction and pass the carry up —
// which visits every combination exactly once and changes exactly one digit
// per step. Stops when `emit` returns false or the space is exhausted.
void RunGrayChain(
    const std::vector<GrayDigit>& digits, const std::vector<Value>& domain,
    const std::function<bool(const Valuation&, const ValuationDelta&)>& emit) {
  Valuation v;
  std::vector<size_t> pos(digits.size(), 0);
  std::vector<int> dir(digits.size(), 1);
  for (const GrayDigit& g : digits) v.Bind(g.null, domain[g.offset]);
  if (!emit(v, ValuationDelta{})) return;
  for (;;) {
    size_t i = 0;
    for (; i < digits.size(); ++i) {
      const int64_t next = static_cast<int64_t>(pos[i]) + dir[i];
      if (next >= 0 && next < static_cast<int64_t>(digits[i].size)) {
        ValuationDelta delta;
        delta.has_delta = true;
        delta.null_id = digits[i].null;
        delta.old_value = domain[digits[i].offset + pos[i]];
        pos[i] = static_cast<size_t>(next);
        delta.new_value = domain[digits[i].offset + pos[i]];
        v.Bind(delta.null_id, delta.new_value);
        if (!emit(v, delta)) return;
        break;
      }
      dir[i] = -dir[i];  // reflect this digit; carry moves up
    }
    if (i == digits.size()) return;  // every digit reflected: done
  }
}

}  // namespace

Status ForEachValuationGray(
    const Database& d, const WorldEnumOptions& opts,
    const std::function<bool(const Valuation&, const ValuationDelta&)>& fn) {
  const std::vector<Value> domain = WorldDomain(d, opts);
  const std::set<NullId> null_set = d.Nulls();
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  if (nulls.empty()) {
    fn(Valuation(), ValuationDelta{});
    return Status::OK();
  }
  if (domain.empty()) {
    return Status::InvalidArgument("empty world domain with nulls present");
  }
  std::vector<GrayDigit> digits;
  digits.reserve(nulls.size());
  for (NullId n : nulls) digits.push_back(GrayDigit{n, 0, domain.size()});
  uint64_t emitted = 0;
  bool exhausted = false;
  RunGrayChain(digits, domain,
               [&](const Valuation& v, const ValuationDelta& delta) {
                 if (++emitted > opts.max_worlds) {
                   exhausted = true;
                   return false;
                 }
                 return fn(v, delta);
               });
  if (exhausted) {
    return Status::ResourceExhausted(
        "world enumeration exceeded max_worlds=" +
        std::to_string(opts.max_worlds));
  }
  return Status::OK();
}

Status ForEachValuationGrayParallel(
    const Database& d, const WorldEnumOptions& opts, int num_threads,
    const std::function<bool(const Valuation&, const ValuationDelta&,
                             size_t worker)>& fn) {
  const std::set<NullId> null_set = d.Nulls();
  if (ResolveNumThreads(num_threads) <= 1 || null_set.empty()) {
    return ForEachValuationGray(
        d, opts, [&](const Valuation& v, const ValuationDelta& delta) {
          return fn(v, delta, /*worker=*/0);
        });
  }
  const std::vector<Value> domain = WorldDomain(d, opts);
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  if (domain.empty()) {
    return Status::InvalidArgument("empty world domain with nulls present");
  }
  // Same pre-forcing as ForEachValuationParallel: workers (and caller
  // closures) only read immutable shared state.
  for (const auto& kv : d.relations()) {
    kv.second.tuples();
    kv.second.IsComplete();
  }

  std::atomic<uint64_t> emitted{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> exhausted{false};
  Status st = ParallelFor(
      num_threads, domain.size(), /*grain=*/1,
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        // One continuous Gray chain per chunk: the first null is the chain's
        // own digit restricted to domain[begin, end), so crossing from one
        // sub-space to the next is itself a single-null step.
        std::vector<GrayDigit> digits;
        digits.reserve(nulls.size());
        digits.push_back(GrayDigit{nulls[0], begin, end - begin});
        for (size_t i = 1; i < nulls.size(); ++i) {
          digits.push_back(GrayDigit{nulls[i], 0, domain.size()});
        }
        RunGrayChain(
            digits, domain,
            [&](const Valuation& v, const ValuationDelta& delta) {
              if (stop.load(std::memory_order_relaxed)) return false;
              if (emitted.fetch_add(1, std::memory_order_relaxed) >=
                  opts.max_worlds) {
                exhausted.store(true, std::memory_order_relaxed);
                stop.store(true, std::memory_order_relaxed);
                return false;
              }
              if (!fn(v, delta, chunk)) {
                stop.store(true, std::memory_order_relaxed);
                return false;
              }
              return true;
            });
        return Status::OK();
      });
  INCDB_RETURN_IF_ERROR(st);
  if (exhausted.load()) {
    return Status::ResourceExhausted(
        "world enumeration exceeded max_worlds=" +
        std::to_string(opts.max_worlds));
  }
  return Status::OK();
}

Status ForEachValuationParallel(
    const Database& d, const WorldEnumOptions& opts, int num_threads,
    const std::function<bool(const Valuation&, size_t worker)>& fn) {
  const std::set<NullId> null_set = d.Nulls();
  if (ResolveNumThreads(num_threads) <= 1 || null_set.empty()) {
    return ForEachValuation(
        d, opts, [&](const Valuation& v) { return fn(v, /*worker=*/0); });
  }
  const std::vector<Value> domain = WorldDomain(d, opts);
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  if (domain.empty()) {
    return Status::InvalidArgument("empty world domain with nulls present");
  }
  // Force the lazy canonical forms and completeness memos of the shared
  // instance on this thread: workers call v.Apply(d) (and callers' closures
  // typically read d too), which must see only immutable state. With the
  // memo warm, Apply's copy-on-write fast path for complete relations is a
  // pure read.
  for (const auto& kv : d.relations()) {
    kv.second.tuples();
    kv.second.IsComplete();
  }

  // One budget across all sub-spaces (the per-enumeration counter of the
  // serial driver would let k sub-spaces emit k·max_worlds worlds).
  std::atomic<uint64_t> emitted{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> exhausted{false};
  Status st = ParallelFor(
      num_threads, domain.size(), /*grain=*/1,
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        Valuation v;
        std::vector<size_t> idx(nulls.size(), 0);
        // Sub-space s: nulls[0] pinned to domain[s], odometer over the rest.
        for (size_t s = begin; s < end; ++s) {
          v.Bind(nulls[0], domain[s]);
          std::fill(idx.begin(), idx.end(), 0);
          for (;;) {
            if (stop.load(std::memory_order_relaxed)) return Status::OK();
            for (size_t i = 1; i < nulls.size(); ++i) {
              v.Bind(nulls[i], domain[idx[i]]);
            }
            if (emitted.fetch_add(1, std::memory_order_relaxed) >=
                opts.max_worlds) {
              exhausted.store(true, std::memory_order_relaxed);
              stop.store(true, std::memory_order_relaxed);
              return Status::OK();
            }
            if (!fn(v, chunk)) {
              stop.store(true, std::memory_order_relaxed);
              return Status::OK();
            }
            size_t pos = 1;
            while (pos < idx.size() && ++idx[pos] == domain.size()) {
              idx[pos] = 0;
              ++pos;
            }
            if (pos == idx.size()) break;
          }
        }
        return Status::OK();
      });
  INCDB_RETURN_IF_ERROR(st);
  if (exhausted.load()) {
    return Status::ResourceExhausted(
        "world enumeration exceeded max_worlds=" +
        std::to_string(opts.max_worlds));
  }
  return Status::OK();
}

Status ForEachWorldCwaParallel(
    const Database& d, const WorldEnumOptions& opts, int num_threads,
    const std::function<bool(const Database&, size_t worker)>& fn) {
  return ForEachValuationParallel(
      d, opts, num_threads,
      [&](const Valuation& v, size_t worker) { return fn(v.Apply(d), worker); });
}

Valuation SampleValuationAt(const std::vector<NullId>& nulls,
                            const std::vector<Value>& domain, uint64_t seed,
                            uint64_t index) {
  Valuation v;
  if (nulls.empty()) return v;
  INCDB_CHECK_MSG(!domain.empty(), "empty world domain with nulls present");
  // Decorrelate the per-sample streams: Rng's constructor SplitMix64-mixes
  // its seed, so a golden-ratio stride over the index is enough to give
  // every sample an independent-looking stream.
  Rng rng(seed + 0x9E3779B97F4A7C15ull * (index + 1));
  for (NullId id : nulls) {
    v.Bind(id, domain[rng.Uniform(domain.size())]);
  }
  return v;
}

Status ForEachWorldOwaBounded(
    const Database& d, const WorldEnumOptions& opts,
    const std::vector<std::pair<std::string, Tuple>>& candidate_tuples,
    const std::function<bool(const Database&)>& fn) {
  for (const auto& [name, t] : candidate_tuples) {
    INCDB_CHECK_MSG(!t.HasNull(), "candidate tuples must be complete");
  }
  if (candidate_tuples.size() > 24) {
    return Status::ResourceExhausted("too many candidate tuples (max 24)");
  }
  const uint64_t subsets = 1ull << candidate_tuples.size();
  bool stop = false;
  Status st = ForEachValuation(d, opts, [&](const Valuation& v) {
    Database base = v.Apply(d);
    for (uint64_t mask = 0; mask < subsets; ++mask) {
      Database world = base;
      for (size_t i = 0; i < candidate_tuples.size(); ++i) {
        if (mask & (1ull << i)) {
          world.AddTuple(candidate_tuples[i].first, candidate_tuples[i].second);
        }
      }
      if (!fn(world)) {
        stop = true;
        return false;
      }
    }
    return true;
  });
  (void)stop;
  return st;
}

}  // namespace incdb
