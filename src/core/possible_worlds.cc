#include "core/possible_worlds.h"

#include <algorithm>

namespace incdb {

std::vector<Value> WorldDomain(const Database& d,
                               const WorldEnumOptions& opts) {
  std::set<Value> domain = d.Constants();
  for (const Value& v : opts.required_constants) {
    INCDB_CHECK_MSG(v.is_const(), "required constant must be a constant");
    domain.insert(v);
  }
  int fresh = opts.fresh_constants;
  if (fresh < 0) fresh = static_cast<int>(d.Nulls().size());
  // Fresh integers strictly above every integer constant in the domain.
  int64_t base = 0;
  for (const Value& v : domain) {
    if (v.is_int()) base = std::max(base, v.as_int());
  }
  for (int i = 1; i <= fresh; ++i) domain.insert(Value::Int(base + i));
  return std::vector<Value>(domain.begin(), domain.end());
}

uint64_t CountWorldsCwa(const Database& d, const WorldEnumOptions& opts) {
  const uint64_t domain_size = WorldDomain(d, opts).size();
  const size_t nulls = d.Nulls().size();
  uint64_t count = 1;
  for (size_t i = 0; i < nulls; ++i) {
    if (count > UINT64_MAX / std::max<uint64_t>(domain_size, 1)) {
      return UINT64_MAX;
    }
    count *= domain_size;
  }
  return count;
}

Status ForEachValuation(const Database& d, const WorldEnumOptions& opts,
                        const std::function<bool(const Valuation&)>& fn) {
  const std::vector<Value> domain = WorldDomain(d, opts);
  const std::set<NullId> null_set = d.Nulls();
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  if (nulls.empty()) {
    fn(Valuation());
    return Status::OK();
  }
  if (domain.empty()) {
    return Status::InvalidArgument("empty world domain with nulls present");
  }
  uint64_t emitted = 0;
  Valuation v;
  // Iterative odometer over domain^nulls.
  std::vector<size_t> idx(nulls.size(), 0);
  for (;;) {
    for (size_t i = 0; i < nulls.size(); ++i) v.Bind(nulls[i], domain[idx[i]]);
    if (++emitted > opts.max_worlds) {
      return Status::ResourceExhausted(
          "world enumeration exceeded max_worlds=" +
          std::to_string(opts.max_worlds));
    }
    if (!fn(v)) return Status::OK();
    // Advance odometer.
    size_t pos = 0;
    while (pos < idx.size() && ++idx[pos] == domain.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == idx.size()) break;
  }
  return Status::OK();
}

Status ForEachWorldCwa(const Database& d, const WorldEnumOptions& opts,
                       const std::function<bool(const Database&)>& fn) {
  return ForEachValuation(d, opts, [&](const Valuation& v) {
    return fn(v.Apply(d));
  });
}

Status ForEachWorldOwaBounded(
    const Database& d, const WorldEnumOptions& opts,
    const std::vector<std::pair<std::string, Tuple>>& candidate_tuples,
    const std::function<bool(const Database&)>& fn) {
  for (const auto& [name, t] : candidate_tuples) {
    INCDB_CHECK_MSG(!t.HasNull(), "candidate tuples must be complete");
  }
  if (candidate_tuples.size() > 24) {
    return Status::ResourceExhausted("too many candidate tuples (max 24)");
  }
  const uint64_t subsets = 1ull << candidate_tuples.size();
  bool stop = false;
  Status st = ForEachValuation(d, opts, [&](const Valuation& v) {
    Database base = v.Apply(d);
    for (uint64_t mask = 0; mask < subsets; ++mask) {
      Database world = base;
      for (size_t i = 0; i < candidate_tuples.size(); ++i) {
        if (mask & (1ull << i)) {
          world.AddTuple(candidate_tuples[i].first, candidate_tuples[i].second);
        }
      }
      if (!fn(world)) {
        stop = true;
        return false;
      }
    }
    return true;
  });
  (void)stop;
  return st;
}

}  // namespace incdb
