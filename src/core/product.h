// Direct products of databases: the greatest lower bound under ⪯_owa.
//
// In the homomorphism preorder of relational structures, the categorical
// product D1 × D2 is the glb: it maps homomorphically into both factors (the
// projections), and any E with homomorphisms into both factors maps into the
// product. Diagonal pairs (c, c) of a constant are identified with c so the
// projections are identity on constants, making the product a naïve database
// again. This realizes the paper's `certainO` (Section 5.3, eq. (7)) for the
// OWA semantics of query answers.

#ifndef INCDB_CORE_PRODUCT_H_
#define INCDB_CORE_PRODUCT_H_

#include <vector>

#include "core/database.h"
#include "util/status.h"

namespace incdb {

/// The direct product D1 × D2. Relations present in only one factor come out
/// empty (the product of a set with the empty set is empty).
Database ProductDatabase(const Database& d1, const Database& d2);

/// Iterated product ∏ dbs; requires a nonempty list. With one element,
/// returns it unchanged.
Result<Database> ProductOf(const std::vector<Database>& dbs);

}  // namespace incdb

#endif  // INCDB_CORE_PRODUCT_H_
