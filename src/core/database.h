// Database: a named collection of relations (a naïve database instance).

#ifndef INCDB_CORE_DATABASE_H_
#define INCDB_CORE_DATABASE_H_

#include <map>
#include <set>
#include <string>

#include "core/relation.h"
#include "core/schema.h"

namespace incdb {

/// An incomplete relational instance over a schema: relation name -> Relation.
///
/// Instances need not mention every schema relation; missing relations are
/// empty. A database with no nulls is *complete* (an element of C in the
/// paper's ⟨D, C, ⟦·⟧⟩ triples).
class Database {
 public:
  Database() = default;
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  /// The relation named `name`; creates an empty one (arity from schema, or
  /// `arity_hint` if not declared) on first access via the mutable overload.
  Relation* MutableRelation(const std::string& name, size_t arity_hint = 0);
  /// Read access; returns an empty relation of the declared arity if absent.
  const Relation& GetRelation(const std::string& name) const;

  bool HasRelation(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// Adds one tuple to relation `name` (declares it in the schema if needed).
  void AddTuple(const std::string& name, Tuple t);

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  /// Total number of tuples across relations.
  size_t TupleCount() const;

  /// All nulls occurring in the instance (Null(D)).
  std::set<NullId> Nulls() const;

  /// All constants occurring in the instance (Const(D)).
  std::set<Value> Constants() const;

  /// Active domain: Const(D) ∪ Null(D), as Values.
  std::set<Value> ActiveDomain() const;

  /// True if no relation contains a null (D ∈ C).
  bool IsComplete() const;

  /// True if every null occurs at most once across the whole instance.
  bool IsCoddDatabase() const;

  /// The instance restricted to null-free tuples (D_cmpl).
  Database CompletePart() const;

  /// One NullId strictly greater than any null used in the instance.
  NullId FreshNullId() const;

  /// Set equality relation-by-relation (relations absent on one side must be
  /// empty on the other).
  bool operator==(const Database& o) const;
  bool operator!=(const Database& o) const { return !(*this == o); }

  /// True if every relation of this instance is a subset of `o`'s.
  bool IsSubinstanceOf(const Database& o) const;

  /// Multi-line rendering "R = {...}\nS = {...}".
  std::string ToString() const;

 private:
  Schema schema_;
  std::map<std::string, Relation> relations_;
};

}  // namespace incdb

#endif  // INCDB_CORE_DATABASE_H_
