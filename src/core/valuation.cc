#include "core/valuation.h"

#include <functional>
#include <vector>

namespace incdb {

const char* WorldSemanticsName(WorldSemantics s) {
  switch (s) {
    case WorldSemantics::kOpenWorld:
      return "owa";
    case WorldSemantics::kClosedWorld:
      return "cwa";
    case WorldSemantics::kWeakClosedWorld:
      return "wcwa";
  }
  return "?";
}

void Valuation::Bind(NullId id, const Value& c) {
  INCDB_CHECK_MSG(c.is_const(), "valuations map nulls to constants");
  map_[id] = c;
}

const Value& Valuation::Lookup(NullId id) const {
  auto it = map_.find(id);
  INCDB_CHECK_MSG(it != map_.end(), "null not bound by valuation");
  return it->second;
}

Value Valuation::Apply(const Value& v) const {
  if (!v.is_null()) return v;
  auto it = map_.find(v.null_id());
  return it == map_.end() ? v : it->second;
}

Tuple Valuation::Apply(const Tuple& t) const {
  std::vector<Value> out;
  out.reserve(t.arity());
  for (const Value& v : t.values()) out.push_back(Apply(v));
  return Tuple(std::move(out));
}

Relation Valuation::Apply(const Relation& r) const {
  // A valuation only substitutes for nulls, so a complete relation (or any
  // relation under the empty valuation) maps to itself; the returned copy
  // shares the tuple storage (copy-on-write) instead of rebuilding it. The
  // tuple set is identical either way.
  if (map_.empty() || r.IsComplete()) return r;
  Relation out(r.arity());
  for (const Tuple& t : r.tuples()) out.Add(Apply(t));
  return out;
}

Database Valuation::Apply(const Database& d) const {
  Database out(d.schema());
  for (const auto& [name, rel] : d.relations()) {
    *out.MutableRelation(name, rel.arity()) = Apply(rel);
  }
  return out;
}

bool Valuation::IsTotalFor(const Database& d) const {
  for (NullId id : d.Nulls()) {
    if (!IsBound(id)) return false;
  }
  return true;
}

std::string Valuation::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const auto& [id, v] : map_) {
    if (!first) s += ", ";
    first = false;
    s += "_" + std::to_string(id) + " -> " + v.ToString();
  }
  s += "}";
  return s;
}

namespace {

// Backtracking search for a valuation v with v(D) ⊆ world; if
// `require_equal`, additionally every world tuple must be hit (v(D) = world).
// Tuple-by-tuple assignment with consistency via the partial valuation.
class WorldMatcher {
 public:
  WorldMatcher(const Database& d, const Database& world, bool require_equal)
      : d_(d), world_(world), require_equal_(require_equal) {
    for (const auto& [name, rel] : d_.relations()) {
      for (const Tuple& t : rel.tuples()) {
        items_.push_back({name, &t});
      }
    }
  }

  bool Match() {
    if (!Search(0)) return false;
    if (!require_equal_) return true;
    // Check image covers world exactly: v(D) == world.
    Database image = v_.Apply(d_);
    return image == world_;
  }

 private:
  bool Search(size_t idx) {
    if (idx == items_.size()) {
      if (!require_equal_) return true;
      return v_.Apply(d_) == world_;
    }
    const auto& [name, t] = items_[idx];
    const Relation& target = world_.GetRelation(name);
    for (const Tuple& cand : target.tuples()) {
      std::vector<std::pair<NullId, Value>> bound;
      if (TryBind(*t, cand, &bound)) {
        if (Search(idx + 1)) return true;
      }
      for (const auto& [id, old] : bound) v_.Unbind(id);
    }
    return false;
  }

  bool TryBind(const Tuple& t, const Tuple& cand,
               std::vector<std::pair<NullId, Value>>* bound) {
    if (t.arity() != cand.arity()) return false;
    for (size_t i = 0; i < t.arity(); ++i) {
      const Value& x = t[i];
      const Value& y = cand[i];
      if (x.is_const()) {
        if (x != y) return false;
      } else {
        const NullId id = x.null_id();
        if (v_.IsBound(id)) {
          if (v_.Lookup(id) != y) return false;
        } else {
          v_.Bind(id, y);
          bound->push_back({id, y});
        }
      }
    }
    return true;
  }

  const Database& d_;
  const Database& world_;
  bool require_equal_;
  std::vector<std::pair<std::string, const Tuple*>> items_;
  Valuation v_;
};

}  // namespace

bool IsPossibleWorld(const Database& d, const Database& world,
                     WorldSemantics semantics) {
  INCDB_CHECK_MSG(world.IsComplete(), "world must be complete");
  switch (semantics) {
    case WorldSemantics::kClosedWorld: {
      WorldMatcher m(d, world, /*require_equal=*/true);
      return m.Match();
    }
    case WorldSemantics::kOpenWorld: {
      WorldMatcher m(d, world, /*require_equal=*/false);
      return m.Match();
    }
    case WorldSemantics::kWeakClosedWorld: {
      // v(D) ⊆ world and adom(world) ⊆ adom(v(D)).
      // Search over valuations: reuse subset matcher, then check adom.
      // We enumerate by requiring subset first; the adom condition is checked
      // against each successful valuation, so we need all matches. For
      // simplicity we re-run the matcher with an adom filter via callback.
      // Implemented as: try subset match; on success adom check; if it fails
      // we conservatively fall through to an exhaustive valuation search over
      // the world's active domain (exact but exponential in #nulls).
      WorldMatcher m(d, world, /*require_equal=*/false);
      if (!m.Match()) return false;
      // Exhaustive: all nulls range over adom(world).
      const std::set<NullId> null_set = d.Nulls();
      const std::vector<NullId> nulls(null_set.begin(), null_set.end());
      std::vector<Value> domain;
      for (const Value& v : world.Constants()) domain.push_back(v);
      if (nulls.empty()) {
        Database image = Valuation().Apply(d);
        if (!image.IsSubinstanceOf(world)) return false;
        auto ia = image.Constants();
        for (const Value& c : world.Constants()) {
          if (ia.count(c) == 0) return false;
        }
        return true;
      }
      std::function<bool(size_t, Valuation&)> rec = [&](size_t i,
                                                        Valuation& v) -> bool {
        if (i == nulls.size()) {
          Database image = v.Apply(d);
          if (!image.IsSubinstanceOf(world)) return false;
          auto ia = image.Constants();
          for (const Value& c : world.Constants()) {
            if (ia.count(c) == 0) return false;
          }
          return true;
        }
        for (const Value& c : domain) {
          v.Bind(nulls[i], c);
          if (rec(i + 1, v)) return true;
        }
        return false;
      };
      Valuation v;
      return rec(0, v);
    }
  }
  return false;
}

}  // namespace incdb
