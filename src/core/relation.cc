#include "core/relation.h"

#include <algorithm>
#include <map>

#include "util/status.h"

namespace incdb {

Relation::Relation(size_t arity, std::vector<Tuple> tuples)
    : arity_(arity), tuples_(std::move(tuples)), dirty_(true) {
  for (const Tuple& t : tuples_) {
    INCDB_CHECK_MSG(t.arity() == arity_, "tuple arity mismatch");
  }
}

void Relation::EnsureCanonical() const {
  if (!dirty_) return;
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
  dirty_ = false;
}

size_t Relation::size() const {
  EnsureCanonical();
  return tuples_.size();
}

void Relation::Add(Tuple t) {
  INCDB_CHECK_MSG(t.arity() == arity_, "tuple arity mismatch");
  tuples_.push_back(std::move(t));
  dirty_ = true;
  index_.reset();
}

void Relation::AddAll(const Relation& other) {
  INCDB_CHECK_MSG(other.arity() == arity_, "relation arity mismatch");
  for (const Tuple& t : other.tuples()) tuples_.push_back(t);
  dirty_ = true;
  index_.reset();
}

const std::unordered_set<Tuple, TupleHash>& Relation::HashIndex() const {
  if (index_ == nullptr) {
    // Built from the raw vector: duplicates collapse in the set, so the
    // index does not require (or trigger) canonicalization.
    auto idx = std::make_shared<std::unordered_set<Tuple, TupleHash>>();
    idx->reserve(tuples_.size());
    for (const Tuple& t : tuples_) idx->insert(t);
    index_ = std::move(idx);
  }
  return *index_;
}

bool Relation::Contains(const Tuple& t) const {
  return HashIndex().count(t) > 0;
}

const std::vector<Tuple>& Relation::tuples() const {
  EnsureCanonical();
  return tuples_;
}

bool Relation::IsComplete() const {
  for (const Tuple& t : tuples()) {
    if (t.HasNull()) return false;
  }
  return true;
}

bool Relation::IsCoddTable() const {
  std::map<NullId, int> counts;
  for (const Tuple& t : tuples()) {
    for (const Value& v : t.values()) {
      if (v.is_null() && ++counts[v.null_id()] > 1) return false;
    }
  }
  return true;
}

std::set<NullId> Relation::Nulls() const {
  std::set<NullId> out;
  for (const Tuple& t : tuples()) {
    for (const Value& v : t.values()) {
      if (v.is_null()) out.insert(v.null_id());
    }
  }
  return out;
}

std::set<Value> Relation::Constants() const {
  std::set<Value> out;
  for (const Tuple& t : tuples()) {
    for (const Value& v : t.values()) {
      if (v.is_const()) out.insert(v);
    }
  }
  return out;
}

Relation Relation::CompletePart() const {
  Relation out(arity_);
  for (const Tuple& t : tuples()) {
    if (!t.HasNull()) out.Add(t);
  }
  return out;
}

bool Relation::operator==(const Relation& o) const {
  if (arity_ != o.arity_) return false;
  return tuples() == o.tuples();
}

bool Relation::IsSubsetOf(const Relation& o) const {
  if (arity_ != o.arity_) return false;
  const auto& a = tuples();
  const auto& b = o.tuples();
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::string Relation::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const Tuple& t : tuples()) {
    if (!first) s += ", ";
    first = false;
    s += t.ToString();
  }
  s += "}";
  return s;
}

}  // namespace incdb
