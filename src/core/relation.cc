#include "core/relation.h"

#include <algorithm>
#include <utility>

#include "core/columnar.h"
#include "util/status.h"

namespace incdb {

Relation::Relation(size_t arity, std::vector<Tuple> tuples)
    : arity_(arity),
      tuples_(std::make_shared<std::vector<Tuple>>(std::move(tuples))),
      dirty_(true) {
  for (const Tuple& t : *tuples_) {
    INCDB_CHECK_MSG(t.arity() == arity_, "tuple arity mismatch");
  }
}

Relation::Relation(const Relation& o) : arity_(o.arity_) {
  // Shared storage must be canonical so either side can read it lazily
  // without writing; canonicalize while `o` still owns it uniquely.
  o.EnsureCanonical();
  tuples_ = o.tuples_;
  index_ = o.index_;
  col_indexes_ = o.col_indexes_;
  columnar_ = o.columnar_;
  complete_.store(o.complete_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  version_ = o.version_;
}

Relation& Relation::operator=(const Relation& o) {
  if (this == &o) return *this;
  o.EnsureCanonical();
  arity_ = o.arity_;
  tuples_ = o.tuples_;
  dirty_ = false;
  index_ = o.index_;
  col_indexes_ = o.col_indexes_;
  columnar_ = o.columnar_;
  complete_.store(o.complete_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  version_ = o.version_;
  return *this;
}

Relation::Relation(Relation&& o) noexcept
    : arity_(o.arity_),
      tuples_(std::move(o.tuples_)),
      dirty_(o.dirty_),
      index_(std::move(o.index_)),
      col_indexes_(std::move(o.col_indexes_)),
      columnar_(std::move(o.columnar_)),
      version_(o.version_) {
  complete_.store(o.complete_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  o.dirty_ = false;
  o.complete_.store(-1, std::memory_order_relaxed);
}

Relation& Relation::operator=(Relation&& o) noexcept {
  if (this == &o) return *this;
  arity_ = o.arity_;
  tuples_ = std::move(o.tuples_);
  dirty_ = o.dirty_;
  index_ = std::move(o.index_);
  col_indexes_ = std::move(o.col_indexes_);
  columnar_ = std::move(o.columnar_);
  complete_.store(o.complete_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  version_ = o.version_;
  o.dirty_ = false;
  o.complete_.store(-1, std::memory_order_relaxed);
  return *this;
}

const std::vector<Tuple>& Relation::EmptyTuples() {
  static const std::vector<Tuple> empty;
  return empty;
}

void Relation::EnsureCanonical() const {
  if (!dirty_) return;
  // dirty_ implies uniquely owned storage (mutators clone before writing),
  // so sorting in place cannot be observed through another relation.
  std::sort(tuples_->begin(), tuples_->end());
  tuples_->erase(std::unique(tuples_->begin(), tuples_->end()),
                 tuples_->end());
  dirty_ = false;
}

void Relation::EnsureUniqueStorage() {
  if (tuples_ == nullptr) {
    tuples_ = std::make_shared<std::vector<Tuple>>();
  } else if (tuples_.use_count() > 1) {
    tuples_ = std::make_shared<std::vector<Tuple>>(*tuples_);
  }
}

size_t Relation::size() const { return tuples().size(); }

void Relation::Add(Tuple t) {
  INCDB_CHECK_MSG(t.arity() == arity_, "tuple arity mismatch");
  EnsureUniqueStorage();
  if (t.HasNull()) {
    complete_.store(0, std::memory_order_relaxed);
  }
  // A null-free tuple cannot invalidate a positive memo; leave it.
  tuples_->push_back(std::move(t));
  dirty_ = true;
  index_.reset();
  col_indexes_.reset();
  columnar_.reset();
  ++version_;
}

void Relation::AddAll(const Relation& other) {
  INCDB_CHECK_MSG(other.arity() == arity_, "relation arity mismatch");
  const std::vector<Tuple>& src = other.tuples();  // canonicalizes other
  EnsureUniqueStorage();
  if (!other.IsComplete()) {
    complete_.store(0, std::memory_order_relaxed);
  }
  tuples_->reserve(tuples_->size() + src.size());
  for (const Tuple& t : src) tuples_->push_back(t);
  dirty_ = true;
  index_.reset();
  col_indexes_.reset();
  columnar_.reset();
  ++version_;
}

const std::unordered_set<Tuple, TupleHash>& Relation::HashIndex() const {
  if (index_ == nullptr) {
    // Built from the raw vector: duplicates collapse in the set, so the
    // index does not require (or trigger) canonicalization.
    auto idx = std::make_shared<std::unordered_set<Tuple, TupleHash>>();
    if (tuples_ != nullptr) {
      idx->reserve(tuples_->size());
      for (const Tuple& t : *tuples_) idx->insert(t);
    }
    index_ = std::move(idx);
  }
  return *index_;
}

const TupleRowIndex& Relation::BuildColumnIndex(
    const std::vector<size_t>& cols) const {
  // Row ids refer to the canonical order, so probes and tuples() agree.
  const std::vector<Tuple>& rows = tuples();
  if (col_indexes_ == nullptr) {
    col_indexes_ =
        std::make_shared<std::map<std::vector<size_t>, TupleRowIndex>>();
  }
  auto [it, inserted] = col_indexes_->try_emplace(cols);
  if (inserted) {
    it->second.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      it->second[HashColumns(rows[i], cols)].push_back(
          static_cast<uint32_t>(i));
    }
  }
  return it->second;
}

std::shared_ptr<const ColumnarRelation> Relation::Columnar() const {
  if (columnar_ == nullptr) {
    columnar_ = ColumnarRelation::FromRelation(*this);
  }
  return columnar_;
}

const TupleRowIndex* Relation::FindColumnIndex(
    const std::vector<size_t>& cols) const {
  if (col_indexes_ == nullptr) return nullptr;
  auto it = col_indexes_->find(cols);
  return it == col_indexes_->end() ? nullptr : &it->second;
}

bool Relation::Contains(const Tuple& t) const {
  return HashIndex().count(t) > 0;
}

const std::vector<Tuple>& Relation::tuples() const {
  if (tuples_ == nullptr) return EmptyTuples();
  EnsureCanonical();
  return *tuples_;
}

bool Relation::IsComplete() const {
  int8_t memo = complete_.load(std::memory_order_relaxed);
  if (memo < 0) {
    // Computed over the raw vector — duplicates and order are irrelevant.
    memo = 1;
    if (tuples_ != nullptr) {
      for (const Tuple& t : *tuples_) {
        if (t.HasNull()) {
          memo = 0;
          break;
        }
      }
    }
    complete_.store(memo, std::memory_order_relaxed);
  }
  return memo == 1;
}

bool Relation::IsCoddTable() const {
  std::map<NullId, int> counts;
  for (const Tuple& t : tuples()) {
    for (const Value& v : t.values()) {
      if (v.is_null() && ++counts[v.null_id()] > 1) return false;
    }
  }
  return true;
}

std::set<NullId> Relation::Nulls() const {
  std::set<NullId> out;
  for (const Tuple& t : tuples()) {
    for (const Value& v : t.values()) {
      if (v.is_null()) out.insert(v.null_id());
    }
  }
  return out;
}

std::set<Value> Relation::Constants() const {
  std::set<Value> out;
  for (const Tuple& t : tuples()) {
    for (const Value& v : t.values()) {
      if (v.is_const()) out.insert(v);
    }
  }
  return out;
}

Relation Relation::CompletePart() const {
  if (IsComplete()) return *this;  // share storage
  Relation out(arity_);
  for (const Tuple& t : tuples()) {
    if (!t.HasNull()) out.Add(t);
  }
  return out;
}

bool Relation::operator==(const Relation& o) const {
  if (arity_ != o.arity_) return false;
  return tuples() == o.tuples();
}

bool Relation::IsSubsetOf(const Relation& o) const {
  if (arity_ != o.arity_) return false;
  const auto& a = tuples();
  const auto& b = o.tuples();
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::string Relation::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const Tuple& t : tuples()) {
    if (!first) s += ", ";
    first = false;
    s += t.ToString();
  }
  s += "}";
  return s;
}

}  // namespace incdb
