#include "core/io.h"

#include <cctype>

#include "util/strings.h"

namespace incdb {
namespace {

void AppendValue(const Value& v, std::string* out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      *out += "_" + std::to_string(v.null_id());
      return;
    case Value::Kind::kInt:
      *out += std::to_string(v.as_int());
      return;
    case Value::Kind::kString: {
      *out += '\'';
      for (char c : v.as_str()) {
        *out += c;
        if (c == '\'') *out += '\'';  // '' escape
      }
      *out += '\'';
      return;
    }
  }
}

// Splits a data line into value tokens, honouring quotes.
Result<std::vector<std::string>> SplitValues(const std::string& line,
                                             size_t lineno) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quote = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\'') {
      in_quote = !in_quote;
      cur += c;
      continue;
    }
    if (c == ',' && !in_quote) {
      out.push_back(Trim(cur));
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (in_quote) {
    return Status::ParseError("unterminated string on line " +
                              std::to_string(lineno));
  }
  out.push_back(Trim(cur));
  return out;
}

Result<Value> ParseValue(const std::string& tok, size_t lineno) {
  if (tok.empty()) {
    return Status::ParseError("empty value on line " + std::to_string(lineno));
  }
  if (tok[0] == '_') {
    const std::string digits = tok.substr(1);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return Status::ParseError("bad null id '" + tok + "' on line " +
                                std::to_string(lineno));
    }
    return Value::Null(static_cast<NullId>(std::stoul(digits)));
  }
  if (tok.front() == '\'') {
    if (tok.size() < 2 || tok.back() != '\'') {
      return Status::ParseError("bad string literal on line " +
                                std::to_string(lineno));
    }
    std::string s;
    for (size_t i = 1; i + 1 < tok.size(); ++i) {
      if (tok[i] == '\'') {
        if (i + 2 >= tok.size() || tok[i + 1] != '\'') {
          return Status::ParseError("bad quote escape on line " +
                                    std::to_string(lineno));
        }
        s += '\'';
        ++i;
        continue;
      }
      s += tok[i];
    }
    return Value::Str(std::move(s));
  }
  // Integer.
  size_t start = tok[0] == '-' ? 1 : 0;
  if (start == tok.size() ||
      tok.find_first_not_of("0123456789", start) != std::string::npos) {
    return Status::ParseError("bad value '" + tok + "' on line " +
                              std::to_string(lineno));
  }
  return Value::Int(std::stoll(tok));
}

}  // namespace

std::string DumpDatabase(const Database& db) {
  std::string out = "# incdb dump\n";
  for (const auto& [name, rel] : db.relations()) {
    out += "table " + name + "(";
    auto decl = db.schema().Decl(name);
    if (decl.ok() && !(*decl)->attributes.empty()) {
      out += Join((*decl)->attributes, ", ");
    } else {
      std::vector<std::string> cols;
      for (size_t i = 0; i < rel.arity(); ++i) {
        cols.push_back("c" + std::to_string(i));
      }
      out += Join(cols, ", ");
    }
    out += ")\n";
    for (const Tuple& t : rel.tuples()) {
      std::string row;
      for (size_t i = 0; i < t.arity(); ++i) {
        if (i > 0) row += ", ";
        AppendValue(t[i], &row);
      }
      out += row + "\n";
    }
    out += "\n";
  }
  return out;
}

Result<Database> LoadDatabase(const std::string& text) {
  Database db;
  std::string current_table;
  size_t current_arity = 0;
  size_t lineno = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++lineno;
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("table ", 0) == 0) {
      const size_t paren = line.find('(');
      const size_t close = line.rfind(')');
      if (paren == std::string::npos || close == std::string::npos ||
          close < paren) {
        return Status::ParseError("bad table header on line " +
                                  std::to_string(lineno));
      }
      current_table = Trim(line.substr(6, paren - 6));
      if (current_table.empty()) {
        return Status::ParseError("missing table name on line " +
                                  std::to_string(lineno));
      }
      std::vector<std::string> attrs;
      for (const std::string& a :
           Split(line.substr(paren + 1, close - paren - 1), ',')) {
        const std::string t = Trim(a);
        if (!t.empty()) attrs.push_back(t);
      }
      current_arity = attrs.size();
      if (db.schema().HasRelation(current_table)) {
        return Status::ParseError("duplicate table '" + current_table +
                                  "' on line " + std::to_string(lineno));
      }
      INCDB_RETURN_IF_ERROR(
          db.mutable_schema()->AddRelation(current_table, attrs));
      db.MutableRelation(current_table, current_arity);
      continue;
    }
    if (current_table.empty()) {
      return Status::ParseError("data before any table header on line " +
                                std::to_string(lineno));
    }
    INCDB_ASSIGN_OR_RETURN(std::vector<std::string> toks,
                           SplitValues(line, lineno));
    if (toks.size() != current_arity) {
      return Status::ParseError(
          "expected " + std::to_string(current_arity) + " values on line " +
          std::to_string(lineno) + ", got " + std::to_string(toks.size()));
    }
    std::vector<Value> vals;
    vals.reserve(toks.size());
    for (const std::string& tok : toks) {
      INCDB_ASSIGN_OR_RETURN(Value v, ParseValue(tok, lineno));
      vals.push_back(std::move(v));
    }
    db.AddTuple(current_table, Tuple(std::move(vals)));
  }
  return db;
}

}  // namespace incdb
