#include "core/value.h"

namespace incdb {

std::strong_ordering Value::operator<=>(const Value& o) const {
  if (kind() != o.kind()) {
    return static_cast<int>(kind()) <=> static_cast<int>(o.kind());
  }
  switch (kind()) {
    case Kind::kNull:
      return null_id() <=> o.null_id();
    case Kind::kInt:
      return as_int() <=> o.as_int();
    case Kind::kString:
      return as_str().compare(o.as_str()) <=> 0;
  }
  return std::strong_ordering::equal;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "_" + std::to_string(null_id());
    case Kind::kInt:
      return std::to_string(as_int());
    case Kind::kString:
      return "'" + as_str() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  size_t h = 0;
  switch (kind()) {
    case Kind::kNull:
      h = std::hash<uint64_t>{}(0x9E3779B97F4A7C15ull ^ null_id());
      break;
    case Kind::kInt:
      h = std::hash<int64_t>{}(as_int());
      break;
    case Kind::kString:
      h = std::hash<std::string>{}(as_str());
      break;
  }
  return h * 3 + static_cast<size_t>(kind());
}

}  // namespace incdb
