#include "counting/sampler.h"

#include <algorithm>
#include <cmath>

#include "core/possible_worlds.h"
#include "util/thread_pool.h"

namespace incdb {

Interval WilsonInterval(uint64_t successes, uint64_t n, double z) {
  if (n == 0) return Interval{0.0, 1.0};
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  return Interval{std::max(0.0, center - half), std::min(1.0, center + half)};
}

Result<SampleTally> SampleTupleFrequencies(
    const std::vector<NullId>& nulls, const std::vector<Value>& domain,
    const SamplingOptions& opts,
    const std::function<Result<bool>(const Valuation& v,
                                     std::vector<Tuple>* world_tuples)>&
        per_sample,
    EvalStats* stats) {
  if (!nulls.empty() && domain.empty()) {
    return Status::InvalidArgument("empty world domain with nulls present");
  }
  if (opts.samples == 0) {
    return Status::InvalidArgument("sampling needs samples > 0");
  }

  const size_t n = static_cast<size_t>(opts.samples);
  // One chunk per worker's worth of samples; tallies accumulate per chunk
  // and merge below. Each sample's valuation depends only on (seed, index),
  // so the merged counts cannot depend on the chunking.
  const size_t grain = 64;
  const size_t num_chunks = ParallelChunkCount(opts.num_threads, n, grain);
  std::vector<SampleTally> tallies(num_chunks);
  Status status = ParallelFor(
      opts.num_threads, n, grain,
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        SampleTally& t = tallies[chunk];
        std::vector<Tuple> world;
        for (size_t i = begin; i < end; ++i) {
          const Valuation v = SampleValuationAt(nulls, domain, opts.seed, i);
          ++t.samples;
          world.clear();
          INCDB_ASSIGN_OR_RETURN(const bool admitted, per_sample(v, &world));
          if (!admitted) continue;
          ++t.effective;
          // Tally each distinct tuple once per sample (a world is a set).
          std::sort(world.begin(), world.end());
          world.erase(std::unique(world.begin(), world.end()), world.end());
          for (const Tuple& tup : world) ++t.hits[tup];
        }
        return Status::OK();
      });
  INCDB_RETURN_IF_ERROR(status);

  SampleTally out;
  for (const SampleTally& t : tallies) {
    out.samples += t.samples;
    out.effective += t.effective;
    for (const auto& [tup, c] : t.hits) out.hits[tup] += c;
  }
  if (stats != nullptr) stats->CountSamplesDrawn(out.samples);
  return out;
}

}  // namespace incdb
