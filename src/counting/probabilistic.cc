#include "counting/probabilistic.h"

#include <map>
#include <set>
#include <utility>

#include "algebra/eval.h"
#include "algebra/optimize.h"
#include "counting/world_count.h"
#include "ctables/ctable_algebra.h"

namespace incdb {
namespace {

Status CheckCwa(WorldSemantics semantics) {
  if (semantics != WorldSemantics::kClosedWorld) {
    return Status::Unsupported(
        "answer probabilities are defined over the CWA valuation measure; "
        "OWA/WCWA world sets carry no uniform distribution");
  }
  return Status::OK();
}

// Emits the thresholded relation and (optionally) the probability table
// from the canonical tuple → probability map.
Relation EmitAnswers(size_t arity,
                     const std::map<Tuple, TupleProbability>& table,
                     double threshold,
                     std::vector<TupleProbability>* probabilities) {
  Relation out(arity);
  if (probabilities != nullptr) probabilities->clear();
  for (const auto& [tuple, p] : table) {
    if (probabilities != nullptr) probabilities->push_back(p);
    if (p.probability >= threshold) out.Add(tuple);
  }
  return out;
}

}  // namespace

Result<Relation> CertainAnswersWithProbabilityEnum(
    const RAExprPtr& e, const Database& db, WorldSemantics semantics,
    const ProbabilisticOptions& popts, const WorldEnumOptions& wopts,
    const EvalOptions& options,
    std::vector<TupleProbability>* probabilities) {
  INCDB_RETURN_IF_ERROR(CheckCwa(semantics));
  INCDB_ASSIGN_OR_RETURN(const size_t arity, e->InferArity(db.schema()));
  RAExprPtr plan = e;
  if (options.optimize) plan = Optimize(plan, db);

  const std::set<NullId> null_set = db.Nulls();
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  const std::vector<Value> domain = WorldDomain(db, wopts);
  if (!nulls.empty() && domain.empty()) {
    return Status::InvalidArgument("empty world domain with nulls present");
  }

  // Per-world / per-sample evaluations must not re-optimize, and the
  // sampled path runs them concurrently, so they get no shared stats sink
  // and no nested parallelism.
  EvalOptions body = options;
  body.optimize = false;
  body.stats = nullptr;
  body.num_threads = 1;

  std::map<Tuple, TupleProbability> table;
  const uint64_t total = CountWorldsCwa(db, wopts);
  const bool exact = !popts.force_sampling && total != UINT64_MAX &&
                     total <= popts.max_exact_worlds &&
                     total <= wopts.max_worlds;
  if (exact) {
    EvalOptions serial_body = body;
    serial_body.stats = options.stats;  // exact path runs on this thread
    std::map<Tuple, uint64_t> hits;
    Status eval_status = Status::OK();
    INCDB_RETURN_IF_ERROR(
        ForEachWorldCwaScratch(db, wopts, [&](const Database& world) {
          Result<Relation> r = EvalNaive(plan, world, serial_body);
          if (!r.ok()) {
            eval_status = r.status();
            return false;
          }
          for (const Tuple& t : r->tuples()) ++hits[t];
          return true;
        }));
    INCDB_RETURN_IF_ERROR(eval_status);
    if (options.stats != nullptr) {
      options.stats->CountWorldsCounted(total);
      options.stats->CountExactCountHits(hits.size());
    }
    for (const auto& [tuple, count] : hits) {
      const double p =
          static_cast<double>(count) / static_cast<double>(total);
      table[tuple] = TupleProbability{tuple, p, p, p, /*exact=*/true};
    }
  } else {
    INCDB_ASSIGN_OR_RETURN(
        const SampleTally tally,
        SampleTupleFrequencies(
            nulls, domain, popts.sampling,
            [&](const Valuation& v,
                std::vector<Tuple>* world_tuples) -> Result<bool> {
              INCDB_ASSIGN_OR_RETURN(const Relation r,
                                     EvalNaive(plan, v.Apply(db), body));
              *world_tuples = r.tuples();
              return true;
            },
            options.stats));
    for (const auto& [tuple, count] : tally.hits) {
      const double p =
          static_cast<double>(count) / static_cast<double>(tally.effective);
      const Interval ci =
          WilsonInterval(count, tally.effective, popts.sampling.z);
      table[tuple] =
          TupleProbability{tuple, p, ci.low, ci.high, /*exact=*/false};
    }
  }
  return EmitAnswers(arity, table, popts.threshold, probabilities);
}

Result<Relation> CertainAnswersWithProbabilityCTable(
    const RAExprPtr& e, const Database& db, WorldSemantics semantics,
    const ProbabilisticOptions& popts, const WorldEnumOptions& wopts,
    const EvalOptions& options,
    std::vector<TupleProbability>* probabilities) {
  INCDB_RETURN_IF_ERROR(CheckCwa(semantics));
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());
  RAExprPtr plan = e;
  if (options.optimize) plan = Optimize(plan, db);

  const CDatabase cdb = CDatabase::FromDatabase(db);
  ConditionNormalizer norm;
  INCDB_ASSIGN_OR_RETURN(CTable result,
                         EvalOnCTables(plan, cdb, options, &norm));
  auto flush_norm_counters = [&]() {
    if (options.stats != nullptr) {
      options.stats->CountCondSimplified(norm.simplified());
      options.stats->CountUnsatPruned(norm.unsat_pruned());
    }
  };

  const std::set<NullId> null_set = db.Nulls();
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  const std::vector<Value> domain = WorldDomain(db, wopts);
  if (!nulls.empty() && domain.empty()) {
    flush_norm_counters();
    return Status::InvalidArgument("empty world domain with nulls present");
  }
  const uint64_t budget = wopts.max_worlds;

  const ConditionPtr global = norm.Normalize(result.global_condition());
  INCDB_ASSIGN_OR_RETURN(const bool global_sat,
                         SatisfiableOverDomain(global, domain, &norm, budget));
  if (!global_sat) {
    flush_norm_counters();
    return Status::InvalidArgument(
        "c-table global condition is unsatisfiable over the domain: the "
        "represented world set is empty");
  }

  // Candidates are exactly the possible tuples — the probability-> 0 set.
  INCDB_ASSIGN_OR_RETURN(
      const Relation candidates,
      PossibleAnswersFromCTable(result, domain, &norm, budget, options.stats));

  // The conditioning denominator: #satisfying(global). Usually `true`
  // (lifted naive databases), so this is the free-null fast path.
  bool exact_global = false;
  WorldCount global_count;
  if (!popts.force_sampling) {
    Result<WorldCount> g = CountSatisfyingValuations(
        global, nulls, domain, &norm, budget, options.stats);
    if (g.ok()) {
      global_count = *g;
      exact_global = global_count.fraction > 0.0;
    } else if (g.status().code() != StatusCode::kResourceExhausted) {
      flush_norm_counters();
      return g.status();
    }
  }

  std::map<Tuple, TupleProbability> table;
  // Candidates whose exact count blew the budget, with their pre-normalized
  // membership conditions (normalization is single-threaded; the sampling
  // pass below only calls the thread-safe EvalUnder on the shared nodes).
  std::vector<std::pair<Tuple, ConditionPtr>> sampled;
  for (const Tuple& cand : candidates.tuples()) {
    const ConditionPtr membership = norm.Normalize(Condition::And(
        global, TupleMembershipCondition(result, cand)));
    if (exact_global) {
      Result<WorldCount> wc = CountSatisfyingValuations(
          membership, nulls, domain, &norm, budget, options.stats);
      if (wc.ok()) {
        const double p = wc->fraction / global_count.fraction;
        table[cand] = TupleProbability{cand, p, p, p, /*exact=*/true};
        if (options.stats != nullptr) options.stats->CountExactCountHits(1);
        continue;
      }
      if (wc.status().code() != StatusCode::kResourceExhausted) {
        flush_norm_counters();
        return wc.status();
      }
    }
    sampled.emplace_back(cand, membership);
  }

  if (!sampled.empty()) {
    INCDB_ASSIGN_OR_RETURN(
        const SampleTally tally,
        SampleTupleFrequencies(
            nulls, domain, popts.sampling,
            [&](const Valuation& v,
                std::vector<Tuple>* world_tuples) -> Result<bool> {
              if (!global->EvalUnder(v)) return false;
              for (const auto& [cand, membership] : sampled) {
                // membership already conjoins global, so under an admitted
                // valuation it reduces to the D_t test.
                if (membership->EvalUnder(v)) world_tuples->push_back(cand);
              }
              return true;
            },
            options.stats));
    for (const auto& [cand, membership] : sampled) {
      const auto it = tally.hits.find(cand);
      // Match the enumeration driver: tuples never observed in an admitted
      // sample are not reported.
      if (it == tally.hits.end() || tally.effective == 0) continue;
      const double p = static_cast<double>(it->second) /
                       static_cast<double>(tally.effective);
      const Interval ci =
          WilsonInterval(it->second, tally.effective, popts.sampling.z);
      table[cand] =
          TupleProbability{cand, p, ci.low, ci.high, /*exact=*/false};
    }
  }

  flush_norm_counters();
  return EmitAnswers(result.arity(), table, popts.threshold, probabilities);
}

}  // namespace incdb
