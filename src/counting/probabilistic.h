// Probabilistic answers: per-tuple answer probabilities over the uniform
// valuation measure, exact where counting is tractable and Monte-Carlo
// sampled elsewhere (Arenas–Barceló–Monet).
//
// The measure: valuations of Null(D) into the enumeration domain
// (core/possible_worlds WorldDomain) are equally likely — |domain|^#nulls
// worlds. A tuple's probability is the fraction of valuations whose world
// contains it; probability 1.0 is exactly "certain", probability > 0
// exactly "possible". The new QueryEngine notion kCertainWithProbability
// returns the tuples whose probability reaches a threshold, alongside the
// full per-tuple probability/CI table.
//
// Two drivers mirror the Backend knob:
//
//  * CertainAnswersWithProbabilityEnum — when the world count fits the
//    exact gate, enumerate every world and count membership (exact
//    fractions, degenerate CI [p, p]); otherwise draw seeded valuation
//    samples, materialize each sampled world, evaluate the plan on it,
//    and tally (Wilson CIs).
//  * CertainAnswersWithProbabilityCTable — evaluate the plan ONCE on the
//    c-table representation; each candidate tuple's membership event
//    becomes a condition global ∧ D_t whose satisfying valuations are
//    counted exactly by independence factoring (counting/world_count.h)
//    where the budget allows, and sampled by evaluating the condition per
//    sampled valuation elsewhere. At 20+ nulls with independent
//    conditions this stays exact where enumeration is hopeless.
//
// Both drivers draw the same (seed, index)-derived valuation stream over
// the same domain, so their sampled tallies — and the full probability
// tables — are bit-identical at equal seeds (the strong-representation
// property, cross-checked by the differential oracle).

#ifndef INCDB_COUNTING_PROBABILISTIC_H_
#define INCDB_COUNTING_PROBABILISTIC_H_

#include <vector>

#include "algebra/ast.h"
#include "core/database.h"
#include "core/possible_worlds.h"
#include "core/valuation.h"
#include "counting/sampler.h"
#include "engine/stats.h"

namespace incdb {

/// Knobs for the probabilistic notion.
struct ProbabilisticOptions {
  /// Tuples with probability ≥ threshold form the answer relation. The
  /// default 1.0 makes the exact path reproduce certain answers; lower it
  /// for "certain with probability ≥ p".
  double threshold = 1.0;
  /// Monte-Carlo knobs for the sampled path (samples, seed, z,
  /// num_threads).
  SamplingOptions sampling;
  /// Skip the exact path even where it is affordable (benchmarking and
  /// sampled-vs-exact cross-checks).
  bool force_sampling = false;
  /// Exact gate of the enumeration driver: enumerate-and-count only when
  /// the world count is at most this (and at most max_worlds); sample
  /// otherwise. Separate from max_worlds because per-world plan evaluation
  /// is far costlier than one enumeration callback.
  uint64_t max_exact_worlds = 100'000;
};

/// One row of the probability table.
struct TupleProbability {
  Tuple tuple;
  /// P(tuple ∈ world), conditioned on the global condition where one
  /// exists. Exact fraction or Monte-Carlo estimate per `exact`.
  double probability = 0.0;
  /// Wilson interval at SamplingOptions::z; degenerate [p, p] when exact.
  double ci_low = 0.0;
  double ci_high = 1.0;
  /// True when the probability came from an exact count, false when
  /// estimated by sampling.
  bool exact = false;
};

/// Probabilistic answers on the enumeration backend. Only tuples with
/// non-zero observed probability are reported (the possible tuples on the
/// exact path; the sampled-in-some-world tuples otherwise), in canonical
/// tuple order. Returns the thresholded relation; the full table lands in
/// `probabilities` when non-null. CWA only (the valuation measure is a CWA
/// object): kUnsupported under OWA/WCWA. `options.stats` receives
/// worlds_counted / samples_drawn / exact_count_hits.
Result<Relation> CertainAnswersWithProbabilityEnum(
    const RAExprPtr& e, const Database& db, WorldSemantics semantics,
    const ProbabilisticOptions& popts, const WorldEnumOptions& wopts = {},
    const EvalOptions& options = {},
    std::vector<TupleProbability>* probabilities = nullptr);

/// Probabilistic answers on the c-table backend: one representation-level
/// evaluation, then per-candidate exact counting with sampling fallback.
/// Same contract and bit-identical sampled tallies as the Enum driver at
/// equal seeds; exact probabilities agree up to FP rounding. Fails
/// InvalidArgument when the result table's global condition is
/// unsatisfiable (empty world set).
Result<Relation> CertainAnswersWithProbabilityCTable(
    const RAExprPtr& e, const Database& db, WorldSemantics semantics,
    const ProbabilisticOptions& popts, const WorldEnumOptions& wopts = {},
    const EvalOptions& options = {},
    std::vector<TupleProbability>* probabilities = nullptr);

}  // namespace incdb

#endif  // INCDB_COUNTING_PROBABILISTIC_H_
