#include "counting/world_count.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "core/valuation.h"

namespace incdb {
namespace {

uint64_t MulSat(uint64_t a, uint64_t b, bool* saturated) {
  if (a == 0 || b == 0) return 0;
  if (a > UINT64_MAX / b) {
    *saturated = true;
    return UINT64_MAX;
  }
  return a * b;
}

uint64_t PowSat(uint64_t base, size_t exp, bool* saturated) {
  uint64_t out = 1;
  for (size_t i = 0; i < exp; ++i) out = MulSat(out, base, saturated);
  return out;
}

// Splices nested conjunctions into one operand list (the normalizer keeps
// AND flattened logically but stores it as binary nodes).
void FlattenAnd(const ConditionPtr& c, std::vector<ConditionPtr>* out) {
  if (c->kind() == Condition::Kind::kAnd) {
    FlattenAnd(c->left(), out);
    FlattenAnd(c->right(), out);
  } else {
    out->push_back(c);
  }
}

size_t Find(std::vector<size_t>* parent, size_t i) {
  while ((*parent)[i] != i) {
    (*parent)[i] = (*parent)[(*parent)[i]];
    i = (*parent)[i];
  }
  return i;
}

}  // namespace

Result<WorldCount> CountSatisfyingValuations(const ConditionPtr& c,
                                             const std::vector<NullId>& nulls,
                                             const std::vector<Value>& domain,
                                             ConditionNormalizer* norm,
                                             uint64_t budget,
                                             EvalStats* stats) {
  WorldCount out;
  const ConditionPtr nc = norm->Normalize(c);
  if (nc->IsFalse()) return out;  // fraction 0, count 0

  if (!nulls.empty() && domain.empty()) {
    return Status::InvalidArgument("empty world domain with nulls present");
  }
  const uint64_t dsize = domain.size();

  std::set<NullId> cond_null_set;
  nc->CollectNulls(&cond_null_set);
  INCDB_CHECK_MSG(
      std::includes(nulls.begin(), nulls.end(), cond_null_set.begin(),
                    cond_null_set.end()),
      "condition mentions a null outside the measure space");

  if (cond_null_set.empty()) {
    // Ground condition: every valuation agrees with it.
    const bool sat = nc->EvalUnder(Valuation());
    out.fraction = sat ? 1.0 : 0.0;
    out.count = sat ? PowSat(dsize, nulls.size(), &out.saturated) : 0;
    return out;
  }

  std::vector<ConditionPtr> ops;
  FlattenAnd(nc, &ops);

  // Union-find over operand indices: operands sharing a null land in one
  // component; components touch disjoint null sets, so counts multiply.
  std::vector<size_t> parent(ops.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::map<NullId, size_t> null_owner;
  std::vector<std::set<NullId>> op_nulls(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    ops[i]->CollectNulls(&op_nulls[i]);
    for (NullId id : op_nulls[i]) {
      auto [it, inserted] = null_owner.emplace(id, i);
      if (!inserted) parent[Find(&parent, i)] = Find(&parent, it->second);
    }
  }
  std::map<size_t, std::vector<size_t>> components;  // root -> operand ids
  for (size_t i = 0; i < ops.size(); ++i) {
    components[Find(&parent, i)].push_back(i);
  }

  // Nulls no operand mentions are free: |domain| choices each, all
  // satisfying.
  const size_t free_nulls = nulls.size() - cond_null_set.size();
  out.fraction = 1.0;
  out.count = PowSat(dsize, free_nulls, &out.saturated);

  uint64_t remaining = budget;
  for (const auto& [root, members] : components) {
    std::set<NullId> comp_null_set;
    for (size_t i : members) {
      comp_null_set.insert(op_nulls[i].begin(), op_nulls[i].end());
    }
    if (comp_null_set.empty()) {
      // Ground operand: the normalizer folds these to true/false, but stay
      // defensive — a false one zeroes the count.
      for (size_t i : members) {
        if (!ops[i]->EvalUnder(Valuation())) return WorldCount{};
      }
      continue;
    }
    const std::vector<NullId> comp_nulls(comp_null_set.begin(),
                                         comp_null_set.end());
    bool comp_saturated = false;
    const uint64_t total = PowSat(dsize, comp_nulls.size(), &comp_saturated);
    if (comp_saturated || total > remaining) {
      return Status::ResourceExhausted(
          "exact world counting needs " +
          (comp_saturated ? std::string("2^64+") : std::to_string(total)) +
          " component assignments with budget " + std::to_string(remaining) +
          " left; fall back to sampling");
    }
    remaining -= total;
    if (stats != nullptr) stats->CountWorldsCounted(total);

    // Odometer over domain^comp_nulls; count assignments satisfying every
    // member operand.
    uint64_t sat_count = 0;
    Valuation v;
    std::vector<size_t> idx(comp_nulls.size(), 0);
    for (;;) {
      for (size_t i = 0; i < comp_nulls.size(); ++i) {
        v.Bind(comp_nulls[i], domain[idx[i]]);
      }
      bool sat = true;
      for (size_t i : members) {
        if (!ops[i]->EvalUnder(v)) {
          sat = false;
          break;
        }
      }
      if (sat) ++sat_count;
      size_t pos = 0;
      while (pos < idx.size() && ++idx[pos] == domain.size()) {
        idx[pos] = 0;
        ++pos;
      }
      if (pos == idx.size()) break;
    }
    if (sat_count == 0) return WorldCount{};  // fraction 0, count 0
    out.fraction *= static_cast<double>(sat_count) / static_cast<double>(total);
    out.count = MulSat(out.count, sat_count, &out.saturated);
  }
  return out;
}

}  // namespace incdb
