// Uniform valuation sampling — the Monte-Carlo half of the probabilistic
// answer layer. Where exact counting (counting/world_count.h) exceeds its
// budget, tuple probabilities are estimated by drawing valuations uniformly
// from domain^nulls and tallying per-tuple membership, with Wilson score
// confidence intervals on the estimates.
//
// Determinism: sample i's valuation is a pure function of (seed, i)
// (core/possible_worlds SampleValuationAt), not of a shared generator
// state. The parallel driver partitions the sample range into ParallelFor's
// deterministic chunks and tallies per chunk, so the merged tallies — and
// therefore every probability and interval — are bit-identical at every
// thread count and across the enumeration/c-table backends, which evaluate
// membership differently but over the same valuation stream.
//
// Conditioning: a sample whose valuation falsifies the admission predicate
// (the result c-table's global condition) is drawn but not counted; the
// estimate divides by the admitted ("effective") samples, i.e. estimates
// P(t ∈ world | global).

#ifndef INCDB_COUNTING_SAMPLER_H_
#define INCDB_COUNTING_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/relation.h"
#include "core/valuation.h"
#include "engine/stats.h"
#include "util/status.h"

namespace incdb {

/// Knobs for one Monte-Carlo estimation pass.
struct SamplingOptions {
  /// Valuations drawn. More samples shrink the Wilson interval at the
  /// usual 1/√n rate (bench E2's SamplingSweep measures the curve).
  uint64_t samples = 10'000;
  /// Stream seed. Equal seeds reproduce tallies bit-identically — across
  /// runs, thread counts, and backends.
  uint64_t seed = 1;
  /// Critical value of the Wilson interval; 1.96 ≈ 95% coverage.
  double z = 1.96;
  /// Worker threads for the tally pass (0 = auto, 1 = serial). Answers are
  /// bit-identical at every setting.
  int num_threads = 0;
};

/// A confidence interval on a probability.
struct Interval {
  double low = 0.0;
  double high = 1.0;
};

/// Wilson score interval for `successes` out of `n` Bernoulli trials at
/// critical value `z`. Well-behaved at the extremes (never escapes [0, 1],
/// non-degenerate at p̂ ∈ {0, 1}); returns [0, 1] when n == 0.
Interval WilsonInterval(uint64_t successes, uint64_t n, double z);

/// The tallies of one sampling pass.
struct SampleTally {
  uint64_t samples = 0;    ///< valuations drawn
  uint64_t effective = 0;  ///< samples admitted by the conditioning event
  /// Per-tuple membership counts over the effective samples (canonically
  /// ordered; tuples never observed are absent).
  std::map<Tuple, uint64_t> hits;
};

/// Draws `opts.samples` valuations of `nulls` (sorted, the full database
/// null set) over `domain` and tallies tuple membership. Per sample,
/// `per_sample(v, world_tuples)` decides admission: it returns false to
/// reject the sample (conditioning event fails; `world_tuples` is then
/// ignored) or true after filling `world_tuples` with the tuples present in
/// the sampled world (duplicates are tallied once). `per_sample` runs
/// concurrently from distinct threads for distinct samples and must not
/// touch shared mutable state; the passed vector is a reusable per-thread
/// scratch buffer, cleared by the driver. `stats`, when non-null, receives
/// the draw count via CountSamplesDrawn. O(samples · cost(per_sample)).
Result<SampleTally> SampleTupleFrequencies(
    const std::vector<NullId>& nulls, const std::vector<Value>& domain,
    const SamplingOptions& opts,
    const std::function<Result<bool>(const Valuation& v,
                                     std::vector<Tuple>* world_tuples)>&
        per_sample,
    EvalStats* stats = nullptr);

}  // namespace incdb

#endif  // INCDB_COUNTING_SAMPLER_H_
