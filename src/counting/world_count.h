// Exact counting of satisfying valuations — the tractable half of the
// probabilistic answer layer (Arenas, Barceló, Monet: "Counting Problems
// over Incomplete Databases").
//
// The measure space is the uniform distribution over valuations of the
// database's nulls into the finite enumeration domain (core/possible_worlds
// WorldDomain) — |domain|^#nulls equally likely worlds. A tuple's
// probability is then #satisfying(global ∧ D_t) / #satisfying(global),
// with D_t the membership condition of ctables/ctable_algebra.h.
//
// Naïve counting enumerates |domain|^#nulls assignments, which is exactly
// the exponential this layer exists to avoid. CountSatisfyingValuations
// factors the problem first:
//
//  * nulls the condition never mentions are free — they multiply the count
//    by |domain|^#free and the fraction by 1;
//  * the top-level conjunction is split into connected components by
//    shared nulls (union-find): components touch disjoint null sets, so
//    their counts multiply. Per-null independence — the common case when
//    nulls don't co-occur in any condition — makes every component a
//    single-null enumeration of |domain| assignments;
//  * each component is counted by brute enumeration of its own null set
//    (|domain|^#component-nulls assignments), charged against `budget`.
//    A component that is coupled beyond the budget (e.g. a many-null OR
//    that no factoring splits) surfaces ResourceExhausted, which is the
//    signal to fall back to Monte-Carlo sampling (counting/sampler.h).
//
// Counts can overflow uint64 long before the fraction loses precision
// (24^20 ≈ 4·10^27), so the fraction is computed as a product of
// per-component fractions and the raw count saturates with an explicit
// flag rather than wrapping.

#ifndef INCDB_COUNTING_WORLD_COUNT_H_
#define INCDB_COUNTING_WORLD_COUNT_H_

#include <cstdint>
#include <vector>

#include "core/value.h"
#include "ctables/condition_norm.h"
#include "engine/stats.h"
#include "util/status.h"

namespace incdb {

/// Result of one exact count over the valuation space domain^nulls.
struct WorldCount {
  /// #satisfying / |domain|^#nulls, as a product of per-component
  /// fractions (exact up to FP rounding even when `count` saturates).
  double fraction = 0.0;
  /// #satisfying valuations, saturating at UINT64_MAX.
  uint64_t count = 0;
  /// True when `count` (or the world total) overflowed uint64 and
  /// saturated; `fraction` remains meaningful.
  bool saturated = false;
};

/// Number of valuations of `nulls` over `domain` satisfying `c`, computed
/// by independence factoring + per-component enumeration as described
/// above. `nulls` is the full measure space (every database null, sorted);
/// nulls of `c` must be a subset. Charges one `budget` unit per component
/// assignment enumerated and returns ResourceExhausted when the budget is
/// exceeded — the caller's cue to sample instead. `stats`, when non-null,
/// receives the assignments enumerated via CountWorldsCounted.
/// O(Σ_components |domain|^#component-nulls · |component|).
Result<WorldCount> CountSatisfyingValuations(const ConditionPtr& c,
                                             const std::vector<NullId>& nulls,
                                             const std::vector<Value>& domain,
                                             ConditionNormalizer* norm,
                                             uint64_t budget,
                                             EvalStats* stats = nullptr);

}  // namespace incdb

#endif  // INCDB_COUNTING_WORLD_COUNT_H_
