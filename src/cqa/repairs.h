// Consistent query answering over inconsistent databases.
//
// One of the paper's headline applications (Section 7): "in data
// integration, data exchange, and consistent query answering ... the
// standard semantics of query answering is based on certain answers". Here
// the possible worlds are the *repairs* of an FD-violating database — the
// ⊆-maximal consistent subinstances — and the consistent answers are the
// certain answers over them:
//
//   consistent(Q, D, Σ) = ⋂ { Q(R) | R a repair of D w.r.t. Σ }
//
// FD violations are pairwise conflicts, so repairs are exactly the maximal
// independent sets of the conflict graph; we enumerate them with
// Bron–Kerbosch over the complement. Exponential in the worst case (there
// can be exponentially many repairs), as theory demands.

#ifndef INCDB_CQA_REPAIRS_H_
#define INCDB_CQA_REPAIRS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algebra/ast.h"
#include "constraints/fd.h"
#include "core/database.h"

namespace incdb {

/// FD constraints per relation name.
using FdSet = std::map<std::string, std::vector<FunctionalDependency>>;

/// True if every relation satisfies its FDs (marked nulls compared
/// syntactically, i.e. naïve satisfaction).
Result<bool> IsConsistent(const Database& db, const FdSet& fds);

/// Number of conflicting tuple pairs across all relations.
Result<size_t> CountConflicts(const Database& db, const FdSet& fds);

/// Invokes `fn` on every repair (⊆-maximal consistent subinstance);
/// stops early if `fn` returns false. Errors if the enumeration exceeds
/// `max_repairs`.
Status ForEachRepair(const Database& db, const FdSet& fds,
                     const std::function<bool(const Database&)>& fn,
                     size_t max_repairs = 1'000'000);

/// Materializes all repairs (use for small inputs / tests).
Result<std::vector<Database>> AllRepairs(const Database& db, const FdSet& fds,
                                         size_t max_repairs = 100'000);

/// Consistent answers: ⋂ over repairs of the naïve evaluation of `q`.
Result<Relation> ConsistentAnswers(const RAExprPtr& q, const Database& db,
                                   const FdSet& fds,
                                   size_t max_repairs = 100'000);

}  // namespace incdb

#endif  // INCDB_CQA_REPAIRS_H_
