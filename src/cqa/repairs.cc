#include "cqa/repairs.h"

#include <algorithm>

#include "algebra/eval.h"

namespace incdb {
namespace {

// Flattened tuple reference and the pairwise conflict graph.
struct TupleRef {
  std::string relation;
  Tuple tuple;
};

struct ConflictGraph {
  std::vector<TupleRef> tuples;
  // Adjacency by index; conflicts are symmetric.
  std::vector<std::vector<size_t>> adj;
};

// Two tuples of the same relation conflict if they jointly violate an FD.
bool Conflicts(const Tuple& a, const Tuple& b,
               const std::vector<FunctionalDependency>& fds) {
  for (const FunctionalDependency& fd : fds) {
    bool lhs_eq = true;
    for (size_t c : fd.lhs) {
      if (a[c] != b[c]) {
        lhs_eq = false;
        break;
      }
    }
    if (!lhs_eq) continue;
    for (size_t c : fd.rhs) {
      if (a[c] != b[c]) return true;
    }
  }
  return false;
}

Result<ConflictGraph> BuildConflictGraph(const Database& db,
                                         const FdSet& fds) {
  ConflictGraph g;
  for (const auto& [name, rel] : db.relations()) {
    auto it = fds.find(name);
    const std::vector<FunctionalDependency>* rel_fds =
        it == fds.end() ? nullptr : &it->second;
    if (rel_fds != nullptr) {
      for (const FunctionalDependency& fd : *rel_fds) {
        for (size_t c : fd.lhs) {
          if (c >= rel.arity()) {
            return Status::InvalidArgument("FD column out of range for " +
                                           name);
          }
        }
        for (size_t c : fd.rhs) {
          if (c >= rel.arity()) {
            return Status::InvalidArgument("FD column out of range for " +
                                           name);
          }
        }
      }
    }
    const size_t first = g.tuples.size();
    for (const Tuple& t : rel.tuples()) {
      g.tuples.push_back({name, t});
    }
    g.adj.resize(g.tuples.size());
    if (rel_fds == nullptr) continue;
    for (size_t i = first; i < g.tuples.size(); ++i) {
      for (size_t j = i + 1; j < g.tuples.size(); ++j) {
        if (Conflicts(g.tuples[i].tuple, g.tuples[j].tuple, *rel_fds)) {
          g.adj[i].push_back(j);
          g.adj[j].push_back(i);
        }
      }
    }
  }
  return g;
}

// Enumerates maximal independent sets of the conflict graph via
// Bron–Kerbosch (with pivoting) on the complement: an independent set of G
// is a clique of Ḡ. We work directly with independence tests.
class MisEnumerator {
 public:
  MisEnumerator(const ConflictGraph& g, size_t max_results)
      : g_(g), max_results_(max_results) {
    adj_sets_.resize(g.tuples.size());
    for (size_t i = 0; i < g.adj.size(); ++i) {
      adj_sets_[i] = std::set<size_t>(g.adj[i].begin(), g.adj[i].end());
    }
  }

  Status Run(const std::function<bool(const std::vector<size_t>&)>& fn) {
    fn_ = &fn;
    std::vector<size_t> r;
    std::vector<size_t> p(g_.tuples.size());
    for (size_t i = 0; i < p.size(); ++i) p[i] = i;
    std::vector<size_t> x;
    stopped_ = false;
    INCDB_RETURN_IF_ERROR(Rec(&r, p, x));
    return Status::OK();
  }

 private:
  // Non-adjacent in conflict graph = adjacent in complement.
  bool CompAdjacent(size_t a, size_t b) const {
    return a != b && adj_sets_[a].count(b) == 0;
  }

  Status Rec(std::vector<size_t>* r, std::vector<size_t> p,
             std::vector<size_t> x) {
    if (stopped_) return Status::OK();
    if (p.empty() && x.empty()) {
      if (++emitted_ > max_results_) {
        return Status::ResourceExhausted("too many repairs to enumerate");
      }
      if (!(*fn_)(*r)) stopped_ = true;
      return Status::OK();
    }
    // Pivot: vertex of p ∪ x with most complement-neighbours in p.
    size_t pivot = SIZE_MAX;
    size_t best = 0;
    for (const auto& pool : {p, x}) {
      for (size_t u : pool) {
        size_t count = 0;
        for (size_t v : p) {
          if (CompAdjacent(u, v)) ++count;
        }
        if (pivot == SIZE_MAX || count > best) {
          pivot = u;
          best = count;
        }
      }
    }
    std::vector<size_t> candidates;
    for (size_t v : p) {
      if (pivot == SIZE_MAX || !CompAdjacent(pivot, v)) candidates.push_back(v);
    }
    for (size_t v : candidates) {
      r->push_back(v);
      std::vector<size_t> p2, x2;
      for (size_t u : p) {
        if (CompAdjacent(v, u)) p2.push_back(u);
      }
      for (size_t u : x) {
        if (CompAdjacent(v, u)) x2.push_back(u);
      }
      INCDB_RETURN_IF_ERROR(Rec(r, std::move(p2), std::move(x2)));
      r->pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
      if (stopped_) return Status::OK();
    }
    return Status::OK();
  }

  const ConflictGraph& g_;
  size_t max_results_;
  std::vector<std::set<size_t>> adj_sets_;
  const std::function<bool(const std::vector<size_t>&)>* fn_ = nullptr;
  size_t emitted_ = 0;
  bool stopped_ = false;
};

Database MaterializeRepair(const Database& db, const ConflictGraph& g,
                           const std::vector<size_t>& kept) {
  Database out(db.schema());
  // Declare all relations so empty ones stay typed.
  for (const auto& [name, rel] : db.relations()) {
    out.MutableRelation(name, rel.arity());
  }
  for (size_t idx : kept) {
    out.AddTuple(g.tuples[idx].relation, g.tuples[idx].tuple);
  }
  return out;
}

}  // namespace

Result<bool> IsConsistent(const Database& db, const FdSet& fds) {
  for (const auto& [name, rel_fds] : fds) {
    for (const FunctionalDependency& fd : rel_fds) {
      INCDB_ASSIGN_OR_RETURN(bool ok, SatisfiesFD(db.GetRelation(name), fd));
      if (!ok) return false;
    }
  }
  return true;
}

Result<size_t> CountConflicts(const Database& db, const FdSet& fds) {
  INCDB_ASSIGN_OR_RETURN(ConflictGraph g, BuildConflictGraph(db, fds));
  size_t edges = 0;
  for (const auto& ns : g.adj) edges += ns.size();
  return edges / 2;
}

Status ForEachRepair(const Database& db, const FdSet& fds,
                     const std::function<bool(const Database&)>& fn,
                     size_t max_repairs) {
  INCDB_ASSIGN_OR_RETURN(ConflictGraph g, BuildConflictGraph(db, fds));
  MisEnumerator mis(g, max_repairs);
  return mis.Run([&](const std::vector<size_t>& kept) {
    return fn(MaterializeRepair(db, g, kept));
  });
}

Result<std::vector<Database>> AllRepairs(const Database& db, const FdSet& fds,
                                         size_t max_repairs) {
  std::vector<Database> out;
  INCDB_RETURN_IF_ERROR(ForEachRepair(
      db, fds,
      [&](const Database& r) {
        out.push_back(r);
        return true;
      },
      max_repairs));
  return out;
}

Result<Relation> ConsistentAnswers(const RAExprPtr& q, const Database& db,
                                   const FdSet& fds, size_t max_repairs) {
  INCDB_ASSIGN_OR_RETURN(size_t arity, q->InferArity(db.schema()));
  Relation acc(arity);
  bool first = true;
  Status eval_error = Status::OK();
  INCDB_RETURN_IF_ERROR(ForEachRepair(
      db, fds,
      [&](const Database& repair) {
        auto ans = EvalNaive(q, repair);
        if (!ans.ok()) {
          eval_error = ans.status();
          return false;
        }
        if (first) {
          acc = *ans;
          first = false;
        } else {
          Relation next(arity);
          for (const Tuple& t : acc.tuples()) {
            if (ans->Contains(t)) next.Add(t);
          }
          acc = std::move(next);
        }
        return !acc.empty() || first;
      },
      max_repairs));
  INCDB_RETURN_IF_ERROR(eval_error);
  return acc;
}

}  // namespace incdb
