// Functional dependencies over incomplete relations (paper, Section 7,
// "Handling constraints"; classical treatment: Atzeni & Morfuni 1984,
// Levene & Loizou 1998).
//
// A constraint is a query, and the paper's program says its satisfaction
// should be defined through the semantics of incompleteness. For an FD
// X → Y over an incomplete relation D:
//
//   * possibly satisfied (weak):   some world of ⟦D⟧_cwa satisfies X → Y;
//   * certainly satisfied (strong): every world of ⟦D⟧_cwa satisfies it.
//
// We provide the classical syntactic checks and the world-semantics checks,
// plus the enumeration ground truth used by the property tests. The
// syntactic weak/strong notions coincide with the possible/certain
// world-semantics on Codd tables; on naïve tables (repeated nulls) the
// syntactic checks are sound approximations, and the exact notions are the
// world-based ones.

#ifndef INCDB_CONSTRAINTS_FD_H_
#define INCDB_CONSTRAINTS_FD_H_

#include <string>
#include <vector>

#include "core/possible_worlds.h"
#include "core/relation.h"
#include "util/status.h"

namespace incdb {

/// A functional dependency X → Y over column positions of a relation.
struct FunctionalDependency {
  std::vector<size_t> lhs;  ///< X
  std::vector<size_t> rhs;  ///< Y

  std::string ToString() const;
};

/// Standard FD satisfaction on a complete relation: any two tuples agreeing
/// on X agree on Y.
Result<bool> SatisfiesFD(const Relation& r, const FunctionalDependency& fd);

/// Syntactic *weak* satisfaction (Atzeni–Morfuni): no two tuples are both
/// "possibly X-equal" and "certainly Y-different" — i.e. some completion of
/// each pair is consistent with the FD. Sound for possibility on Codd
/// tables.
Result<bool> WeaklySatisfiesFD(const Relation& r,
                               const FunctionalDependency& fd);

/// Syntactic *strong* satisfaction: tuples that possibly agree on X must
/// certainly agree on Y (component-wise identical values, including the
/// same marked nulls). Sound for certainty.
Result<bool> StronglySatisfiesFD(const Relation& r,
                                 const FunctionalDependency& fd);

/// World-semantics ground truth: ∃ / ∀ world of ⟦r⟧_cwa satisfying the FD.
/// Exponential in the number of nulls — for tests and small data.
Result<bool> PossiblySatisfiesFD(const Relation& r,
                                 const FunctionalDependency& fd,
                                 const WorldEnumOptions& opts = {});
Result<bool> CertainlySatisfiesFD(const Relation& r,
                                  const FunctionalDependency& fd,
                                  const WorldEnumOptions& opts = {});

/// Closure of an attribute set under a set of FDs (Armstrong), on arbitrary
/// column positions. Used for key reasoning in design tasks.
std::vector<size_t> AttributeClosure(
    std::vector<size_t> attrs, const std::vector<FunctionalDependency>& fds);

/// True if `attrs` is a superkey of a relation with `arity` columns under
/// `fds`.
bool IsSuperkey(const std::vector<size_t>& attrs, size_t arity,
                const std::vector<FunctionalDependency>& fds);

/// FD implication: does `fds` logically imply `fd` (over complete
/// relations)? Decided via attribute closure.
bool ImpliesFD(const std::vector<FunctionalDependency>& fds,
               const FunctionalDependency& fd);

}  // namespace incdb

#endif  // INCDB_CONSTRAINTS_FD_H_
