#include "constraints/fd.h"

#include <algorithm>
#include <set>

#include "core/database.h"
#include "util/strings.h"

namespace incdb {
namespace {

Status ValidateFD(const Relation& r, const FunctionalDependency& fd) {
  for (size_t c : fd.lhs) {
    if (c >= r.arity()) {
      return Status::InvalidArgument("FD lhs column out of range");
    }
  }
  for (size_t c : fd.rhs) {
    if (c >= r.arity()) {
      return Status::InvalidArgument("FD rhs column out of range");
    }
  }
  return Status::OK();
}

// Components equal as values (including identical marked nulls).
bool CertainlyEqualOn(const Tuple& a, const Tuple& b,
                      const std::vector<size_t>& cols) {
  for (size_t c : cols) {
    if (a[c] != b[c]) return false;
  }
  return true;
}

// Some valuation can make the projections equal: componentwise, either
// equal already, or at least one side is a null. (Exact for Codd tables;
// for naïve tables this is the standard unification-free approximation —
// a shared null on both sides in the same column is fine since it is
// equal to itself.)
bool PossiblyEqualOn(const Tuple& a, const Tuple& b,
                     const std::vector<size_t>& cols) {
  for (size_t c : cols) {
    if (a[c].is_null() || b[c].is_null()) continue;
    if (a[c] != b[c]) return false;
  }
  return true;
}

}  // namespace

std::string FunctionalDependency::ToString() const {
  std::vector<std::string> l, r;
  for (size_t c : lhs) l.push_back("#" + std::to_string(c));
  for (size_t c : rhs) r.push_back("#" + std::to_string(c));
  return Join(l, ",") + " -> " + Join(r, ",");
}

Result<bool> SatisfiesFD(const Relation& r, const FunctionalDependency& fd) {
  INCDB_RETURN_IF_ERROR(ValidateFD(r, fd));
  const auto& ts = r.tuples();
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      if (CertainlyEqualOn(ts[i], ts[j], fd.lhs) &&
          !CertainlyEqualOn(ts[i], ts[j], fd.rhs)) {
        return false;
      }
    }
  }
  return true;
}

Result<bool> WeaklySatisfiesFD(const Relation& r,
                               const FunctionalDependency& fd) {
  INCDB_RETURN_IF_ERROR(ValidateFD(r, fd));
  const auto& ts = r.tuples();
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      // Violation pattern: the pair is certainly X-equal yet certainly
      // Y-different on constants (no completion can fix it).
      if (CertainlyEqualOn(ts[i], ts[j], fd.lhs) &&
          !PossiblyEqualOn(ts[i], ts[j], fd.rhs)) {
        return false;
      }
    }
  }
  return true;
}

Result<bool> StronglySatisfiesFD(const Relation& r,
                                 const FunctionalDependency& fd) {
  INCDB_RETURN_IF_ERROR(ValidateFD(r, fd));
  const auto& ts = r.tuples();
  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = i + 1; j < ts.size(); ++j) {
      if (PossiblyEqualOn(ts[i], ts[j], fd.lhs) &&
          !CertainlyEqualOn(ts[i], ts[j], fd.rhs)) {
        return false;
      }
    }
  }
  return true;
}

namespace {

Result<bool> WorldQuantifiedFD(const Relation& r,
                               const FunctionalDependency& fd,
                               const WorldEnumOptions& opts, bool exists) {
  INCDB_RETURN_IF_ERROR(ValidateFD(r, fd));
  Database db;
  *db.MutableRelation("R", r.arity()) = r;
  bool result = !exists;  // ∀: assume true; ∃: assume false
  Status inner = Status::OK();
  Status st = ForEachWorldCwa(db, opts, [&](const Database& w) {
    auto sat = SatisfiesFD(w.GetRelation("R"), fd);
    if (!sat.ok()) {
      inner = sat.status();
      return false;
    }
    if (exists && *sat) {
      result = true;
      return false;
    }
    if (!exists && !*sat) {
      result = false;
      return false;
    }
    return true;
  });
  INCDB_RETURN_IF_ERROR(inner);
  INCDB_RETURN_IF_ERROR(st);
  return result;
}

}  // namespace

Result<bool> PossiblySatisfiesFD(const Relation& r,
                                 const FunctionalDependency& fd,
                                 const WorldEnumOptions& opts) {
  return WorldQuantifiedFD(r, fd, opts, /*exists=*/true);
}

Result<bool> CertainlySatisfiesFD(const Relation& r,
                                  const FunctionalDependency& fd,
                                  const WorldEnumOptions& opts) {
  return WorldQuantifiedFD(r, fd, opts, /*exists=*/false);
}

std::vector<size_t> AttributeClosure(
    std::vector<size_t> attrs, const std::vector<FunctionalDependency>& fds) {
  std::set<size_t> closure(attrs.begin(), attrs.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds) {
      const bool applies = std::all_of(
          fd.lhs.begin(), fd.lhs.end(),
          [&](size_t c) { return closure.count(c) > 0; });
      if (!applies) continue;
      for (size_t c : fd.rhs) {
        if (closure.insert(c).second) changed = true;
      }
    }
  }
  return std::vector<size_t>(closure.begin(), closure.end());
}

bool IsSuperkey(const std::vector<size_t>& attrs, size_t arity,
                const std::vector<FunctionalDependency>& fds) {
  return AttributeClosure(attrs, fds).size() == arity;
}

bool ImpliesFD(const std::vector<FunctionalDependency>& fds,
               const FunctionalDependency& fd) {
  const std::vector<size_t> closure = AttributeClosure(fd.lhs, fds);
  const std::set<size_t> closure_set(closure.begin(), closure.end());
  return std::all_of(fd.rhs.begin(), fd.rhs.end(),
                     [&](size_t c) { return closure_set.count(c) > 0; });
}

}  // namespace incdb
