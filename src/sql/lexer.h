// SQL lexer.

#ifndef INCDB_SQL_LEXER_H_
#define INCDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace incdb {

/// Tokenizes a SQL string. Keywords are case-insensitive and surfaced
/// upper-cased; identifiers keep their original spelling. String literals
/// use single quotes with '' as the escape for a quote.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace incdb

#endif  // INCDB_SQL_LEXER_H_
