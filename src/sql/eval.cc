#include "sql/eval.h"

#include <functional>
#include <map>
#include <set>

#include "sql/parser.h"

namespace incdb {
namespace {

// A row in scope: alias + relation decl + tuple.
struct ScopeEntry {
  std::string alias;
  const RelationDecl* decl;
  const Tuple* tuple;
};

// Stack of rows visible to the condition being evaluated; inner-most last.
using Scope = std::vector<ScopeEntry>;

class Evaluator {
 public:
  Evaluator(const Database& db, SqlEvalMode mode) : db_(db), mode_(mode) {}

  Result<Relation> Query(const SqlQuery& q, const Scope& outer) {
    Relation out(0);
    bool first = true;
    for (const SqlSelect& sel : q.selects) {
      INCDB_ASSIGN_OR_RETURN(Relation r, Select(sel, outer));
      if (first) {
        out = std::move(r);
        first = false;
      } else {
        if (r.arity() != out.arity()) {
          return Status::InvalidArgument(
              "UNION members have different column counts");
        }
        out.AddAll(r);
      }
    }
    return out;
  }

 private:
  Result<Relation> Select(const SqlSelect& sel, const Scope& outer) {
    if (sel.HasAggregates() || !sel.group_by.empty()) {
      return SelectAggregate(sel, outer);
    }
    // Resolve FROM tables.
    std::vector<const RelationDecl*> decls;
    std::vector<const Relation*> rels;
    for (const SqlTableRef& ref : sel.from) {
      INCDB_ASSIGN_OR_RETURN(const RelationDecl* decl,
                             db_.schema().Decl(ref.table));
      if (decl->attributes.empty() && decl->arity > 0) {
        return Status::InvalidArgument(
            "relation " + ref.table +
            " has no attribute names; SQL access requires named attributes");
      }
      decls.push_back(decl);
      rels.push_back(&db_.GetRelation(ref.table));
    }

    // Output arity.
    size_t arity = 0;
    if (sel.select_star) {
      for (const RelationDecl* d : decls) arity += d->arity;
    } else {
      arity = sel.items.size();
    }
    Relation out(arity);

    // Nested-loop over the FROM product.
    Scope scope = outer;
    const size_t base = scope.size();
    scope.resize(base + sel.from.size());

    // kSqlMaybe keeps rows whose top-level condition is UNKNOWN; the other
    // modes (and all subqueries) keep TRUE rows. A maybe-query without a
    // WHERE clause keeps nothing (no row is in doubt).
    const bool maybe_here =
        mode_ == SqlEvalMode::kSqlMaybe && !in_subquery_;
    const TruthValue wanted =
        maybe_here ? TruthValue::kUnknown : TruthValue::kTrue;
    std::function<Status(size_t)> rec = [&](size_t idx) -> Status {
      if (idx == sel.from.size()) {
        if (sel.where != nullptr) {
          INCDB_ASSIGN_OR_RETURN(TruthValue tv, Cond(*sel.where, scope));
          if (tv != wanted) return Status::OK();
        } else if (maybe_here) {
          return Status::OK();
        }
        // Emit the row.
        std::vector<Value> vals;
        vals.reserve(arity);
        if (sel.select_star) {
          for (size_t i = base; i < scope.size(); ++i) {
            for (const Value& v : scope[i].tuple->values()) vals.push_back(v);
          }
        } else {
          for (const SqlSelectItem& item : sel.items) {
            INCDB_ASSIGN_OR_RETURN(Value v, Operand(item.operand, scope));
            vals.push_back(std::move(v));
          }
        }
        out.Add(Tuple(std::move(vals)));
        return Status::OK();
      }
      for (const Tuple& t : rels[idx]->tuples()) {
        scope[base + idx] =
            ScopeEntry{sel.from[idx].alias, decls[idx], &t};
        INCDB_RETURN_IF_ERROR(rec(idx + 1));
      }
      return Status::OK();
    };
    INCDB_RETURN_IF_ERROR(rec(0));
    return out;
  }

  // --- Aggregation ---
  //
  // SQL semantics: GROUP BY treats every NULL as the same group; aggregates
  // other than COUNT(*) ignore NULL inputs; aggregates over an empty group
  // yield NULL (COUNT yields 0). In naïve mode marked nulls keep their
  // identity in grouping and in MIN/MAX/COUNT; SUM/AVG over an unresolved
  // null is refused (kUnsupported) rather than silently wrong.

  Result<Relation> SelectAggregate(const SqlSelect& sel, const Scope& outer) {
    if (sel.select_star) {
      return Status::InvalidArgument("SELECT * cannot be combined with "
                                     "aggregates or GROUP BY");
    }
    // Every non-aggregate item must be a grouping column.
    for (const SqlSelectItem& item : sel.items) {
      if (item.is_aggregate()) continue;
      if (item.operand.kind != SqlOperand::Kind::kColumn) continue;
      bool grouped = false;
      for (const SqlOperand& g : sel.group_by) {
        if (EqualsIgnoreCaseAlias(g.column, item.operand.column) &&
            EqualsIgnoreCaseAlias(g.table, item.operand.table)) {
          grouped = true;
          break;
        }
      }
      if (!grouped) {
        return Status::InvalidArgument(
            "column " + item.operand.ToString() +
            " must appear in GROUP BY or inside an aggregate");
      }
    }

    // Materialize the surviving FROM×WHERE rows as (group key, item inputs).
    struct RowData {
      std::vector<Value> key;
      std::vector<Value> inputs;  // one slot per select item
    };
    std::vector<RowData> rows;
    INCDB_RETURN_IF_ERROR(CollectRows(sel, outer, &rows));

    // Group. SQL: one group for all nulls (they are indistinguishable);
    // naïve mode: marked nulls group by identity.
    auto canonical_key = [&](const std::vector<Value>& key) {
      std::vector<Value> out = key;
      if (mode_ == SqlEvalMode::kSql3VL) {
        for (Value& v : out) {
          if (v.is_null()) v = Value::Null(0);
        }
      }
      return out;
    };
    std::map<std::vector<Value>, std::vector<const RowData*>> groups;
    if (sel.group_by.empty()) {
      groups[{}] = {};  // global aggregate: one group, possibly empty
    }
    for (const RowData& row : rows) {
      groups[canonical_key(row.key)].push_back(&row);
    }

    Relation out(sel.items.size());
    for (const auto& [key, members] : groups) {
      std::vector<Value> vals;
      vals.reserve(sel.items.size());
      for (size_t i = 0; i < sel.items.size(); ++i) {
        const SqlSelectItem& item = sel.items[i];
        if (!item.is_aggregate()) {
          // Representative value (canonicalized with the key).
          if (members.empty()) {
            vals.push_back(Value::Null(0));
            continue;
          }
          Value v = members[0]->inputs[i];
          if (mode_ == SqlEvalMode::kSql3VL && v.is_null()) {
            v = Value::Null(0);
          }
          vals.push_back(std::move(v));
          continue;
        }
        INCDB_ASSIGN_OR_RETURN(Value v, ComputeAggregate(item, members, i));
        vals.push_back(std::move(v));
      }
      out.Add(Tuple(std::move(vals)));
    }
    return out;
  }

  template <typename RowPtrList>
  Result<Value> ComputeAggregate(const SqlSelectItem& item,
                                 const RowPtrList& members, size_t slot) {
    if (item.agg == AggFunc::kCountStar) {
      return Value::Int(static_cast<int64_t>(members.size()));
    }
    // Collect non-null inputs; SQL ignores nulls in all other aggregates.
    std::vector<Value> inputs;
    for (const auto* row : members) {
      const Value& v = row->inputs[slot];
      if (v.is_null()) {
        if (mode_ == SqlEvalMode::kNaive &&
            (item.agg == AggFunc::kSum || item.agg == AggFunc::kAvg ||
             item.agg == AggFunc::kMin || item.agg == AggFunc::kMax)) {
          return Status::Unsupported(
              "cannot aggregate over an unresolved marked null in naive "
              "mode: " +
              item.ToString());
        }
        continue;
      }
      inputs.push_back(v);
    }
    switch (item.agg) {
      case AggFunc::kCount:
        return Value::Int(static_cast<int64_t>(inputs.size()));
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        if (inputs.empty()) return Value::Null(0);
        int64_t sum = 0;
        for (const Value& v : inputs) {
          if (!v.is_int()) {
            return Status::InvalidArgument(
                std::string(AggFuncName(item.agg)) +
                " requires integer inputs");
          }
          sum += v.as_int();
        }
        if (item.agg == AggFunc::kSum) return Value::Int(sum);
        return Value::Int(sum / static_cast<int64_t>(inputs.size()));
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        if (inputs.empty()) return Value::Null(0);
        Value best = inputs[0];
        for (const Value& v : inputs) {
          if (item.agg == AggFunc::kMin ? v < best : best < v) best = v;
        }
        return best;
      }
      default:
        return Status::Internal("unexpected aggregate function");
    }
  }

  // Runs the FROM×WHERE loop collecting group keys and item inputs.
  template <typename RowVec>
  Status CollectRows(const SqlSelect& sel, const Scope& outer, RowVec* rows) {
    std::vector<const RelationDecl*> decls;
    std::vector<const Relation*> rels;
    for (const SqlTableRef& ref : sel.from) {
      INCDB_ASSIGN_OR_RETURN(const RelationDecl* decl,
                             db_.schema().Decl(ref.table));
      decls.push_back(decl);
      rels.push_back(&db_.GetRelation(ref.table));
    }
    Scope scope = outer;
    const size_t base = scope.size();
    scope.resize(base + sel.from.size());

    std::function<Status(size_t)> rec = [&](size_t idx) -> Status {
      if (idx == sel.from.size()) {
        if (sel.where != nullptr) {
          INCDB_ASSIGN_OR_RETURN(TruthValue tv, Cond(*sel.where, scope));
          if (tv != TruthValue::kTrue) return Status::OK();
        }
        typename RowVec::value_type row;
        for (const SqlOperand& g : sel.group_by) {
          INCDB_ASSIGN_OR_RETURN(Value v, Operand(g, scope));
          row.key.push_back(std::move(v));
        }
        for (const SqlSelectItem& item : sel.items) {
          if (item.agg == AggFunc::kCountStar) {
            row.inputs.push_back(Value::Int(0));  // placeholder
          } else {
            INCDB_ASSIGN_OR_RETURN(Value v, Operand(item.operand, scope));
            row.inputs.push_back(std::move(v));
          }
        }
        rows->push_back(std::move(row));
        return Status::OK();
      }
      for (const Tuple& t : rels[idx]->tuples()) {
        scope[base + idx] = ScopeEntry{sel.from[idx].alias, decls[idx], &t};
        INCDB_RETURN_IF_ERROR(rec(idx + 1));
      }
      return Status::OK();
    };
    return rec(0);
  }

  Result<Value> Operand(const SqlOperand& o, const Scope& scope) {
    if (o.kind == SqlOperand::Kind::kLiteral) return o.literal;
    // Resolve column: inner-most scope entry first; alias qualifier wins.
    for (auto it = scope.rbegin(); it != scope.rend(); ++it) {
      if (!o.table.empty() && !EqualsIgnoreCaseAlias(it->alias, o.table)) {
        continue;
      }
      const auto& attrs = it->decl->attributes;
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (EqualsIgnoreCaseAlias(attrs[i], o.column)) {
          return (*it->tuple)[i];
        }
      }
      if (!o.table.empty()) {
        return Status::NotFound("column " + o.column + " not in table " +
                                o.table);
      }
    }
    return Status::NotFound("unresolved column " + o.ToString());
  }

  static bool EqualsIgnoreCaseAlias(const std::string& a,
                                    const std::string& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(a[i])) !=
          std::tolower(static_cast<unsigned char>(b[i]))) {
        return false;
      }
    }
    return true;
  }

  Result<TruthValue> Compare(SqlCmpOp op, const Value& a, const Value& b) {
    if (mode_ != SqlEvalMode::kNaive && (a.is_null() || b.is_null())) {
      return TruthValue::kUnknown;
    }
    bool r = false;
    switch (op) {
      case SqlCmpOp::kEq:
        r = a == b;
        break;
      case SqlCmpOp::kNe:
        r = a != b;
        break;
      case SqlCmpOp::kLt:
        r = a < b;
        break;
      case SqlCmpOp::kLe:
        r = a <= b;
        break;
      case SqlCmpOp::kGt:
        r = a > b;
        break;
      case SqlCmpOp::kGe:
        r = a >= b;
        break;
    }
    return r ? TruthValue::kTrue : TruthValue::kFalse;
  }

  Result<TruthValue> Cond(const SqlCondition& c, const Scope& scope) {
    switch (c.kind) {
      case SqlCondition::Kind::kTrue:
        return TruthValue::kTrue;
      case SqlCondition::Kind::kCmp: {
        INCDB_ASSIGN_OR_RETURN(Value a, Operand(c.lhs, scope));
        INCDB_ASSIGN_OR_RETURN(Value b, Operand(c.rhs, scope));
        return Compare(c.op, a, b);
      }
      case SqlCondition::Kind::kAnd: {
        INCDB_ASSIGN_OR_RETURN(TruthValue a, Cond(*c.left, scope));
        if (a == TruthValue::kFalse) return TruthValue::kFalse;
        INCDB_ASSIGN_OR_RETURN(TruthValue b, Cond(*c.right, scope));
        return And3(a, b);
      }
      case SqlCondition::Kind::kOr: {
        INCDB_ASSIGN_OR_RETURN(TruthValue a, Cond(*c.left, scope));
        if (a == TruthValue::kTrue) return TruthValue::kTrue;
        INCDB_ASSIGN_OR_RETURN(TruthValue b, Cond(*c.right, scope));
        return Or3(a, b);
      }
      case SqlCondition::Kind::kNot: {
        INCDB_ASSIGN_OR_RETURN(TruthValue a, Cond(*c.left, scope));
        return Not3(a);
      }
      case SqlCondition::Kind::kIn: {
        INCDB_ASSIGN_OR_RETURN(Value x, Operand(c.lhs, scope));
        INCDB_ASSIGN_OR_RETURN(Relation sub, Subquery(*c.subquery, scope));
        if (sub.arity() != 1) {
          return Status::InvalidArgument(
              "IN subquery must return one column");
        }
        // x IN S: TRUE if some s compares TRUE; else UNKNOWN if some
        // comparison is UNKNOWN; else FALSE. NOT IN is the 3VL negation.
        TruthValue acc = TruthValue::kFalse;
        for (const Tuple& s : sub.tuples()) {
          INCDB_ASSIGN_OR_RETURN(TruthValue eq, Compare(SqlCmpOp::kEq, x, s[0]));
          acc = Or3(acc, eq);
          if (acc == TruthValue::kTrue) break;
        }
        return c.negated ? Not3(acc) : acc;
      }
      case SqlCondition::Kind::kExists: {
        INCDB_ASSIGN_OR_RETURN(Relation sub, Subquery(*c.subquery, scope));
        return sub.empty() ? TruthValue::kFalse : TruthValue::kTrue;
      }
      case SqlCondition::Kind::kIsNull: {
        INCDB_ASSIGN_OR_RETURN(Value x, Operand(c.lhs, scope));
        const bool is_null = x.is_null();
        return (is_null != c.negated) ? TruthValue::kTrue : TruthValue::kFalse;
      }
    }
    return Status::Internal("unknown SQL condition kind");
  }

  // Subquery evaluation with memoization of uncorrelated subqueries: a
  // subquery that evaluates successfully against the empty scope cannot
  // depend on outer rows, so its result is computed once per top-level
  // query instead of once per candidate row.
  Result<Relation> Subquery(const SqlQuery& q, const Scope& scope) {
    // Subqueries always use the TRUE filter, even in MAYBE mode.
    const bool saved = in_subquery_;
    in_subquery_ = true;
    auto restore = [&](Result<Relation> r) {
      in_subquery_ = saved;
      return r;
    };
    auto it = uncorrelated_cache_.find(&q);
    if (it != uncorrelated_cache_.end()) return restore(it->second);
    if (correlated_.count(&q) == 0) {
      auto without_outer = Query(q, Scope{});
      if (without_outer.ok()) {
        uncorrelated_cache_.emplace(&q, *without_outer);
        return restore(*std::move(without_outer));
      }
      correlated_.insert(&q);
    }
    return restore(Query(q, scope));
  }

  const Database& db_;
  SqlEvalMode mode_;
  bool in_subquery_ = false;
  std::map<const SqlQuery*, Relation> uncorrelated_cache_;
  std::set<const SqlQuery*> correlated_;
};

}  // namespace

Result<Relation> EvalSql(const SqlQuery& q, const Database& db,
                         SqlEvalMode mode) {
  Evaluator ev(db, mode);
  return ev.Query(q, Scope{});
}

Result<Relation> EvalSql(const std::string& sql, const Database& db,
                         SqlEvalMode mode) {
  INCDB_ASSIGN_OR_RETURN(SqlQuery q, ParseSql(sql));
  return EvalSql(q, db, mode);
}

}  // namespace incdb
