#include "sql/eval.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "sql/parser.h"

namespace incdb {
namespace {

// A row in scope: alias + relation decl + tuple.
struct ScopeEntry {
  std::string alias;
  const RelationDecl* decl;
  const Tuple* tuple;
};

// Stack of rows visible to the condition being evaluated; inner-most last.
using Scope = std::vector<ScopeEntry>;

bool EqualsIgnoreCaseAlias(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

// --- Conjunct pushdown planning ---------------------------------------------
//
// The FROM clause runs as a nested loop. Before running it we statically
// resolve the AND-spine comparisons of the WHERE clause against the final
// scope layout (outer rows, then one entry per FROM table; innermost entry
// and alias qualifier win — exactly the rules Operand applies at runtime). A
// comparison whose operands are all literals or resolved columns is checked
// as soon as its last column is bound, pruning the loop early; an equality
// between a column of the table being bound and an already-available value
// instead probes a per-column hash index so only matching tuples are
// enumerated at all. Pruning is conservative: surviving rows still evaluate
// the full WHERE at the leaf, so the kept rows (and their semantics) are
// identical to the unoptimized loop. In MAYBE mode rows are kept on UNKNOWN,
// so only FALSE comparisons prune and the equality index (which enumerates
// TRUE matches) is disabled.

// An operand resolved at plan time: a literal, or (scope index, column).
struct StaticOperand {
  bool is_literal = false;
  Value literal;
  size_t scope_index = 0;
  size_t col = 0;
};

// A comparison whose operands resolved statically, attached to the FROM
// depth at which it becomes evaluable.
struct PushedCmp {
  SqlCmpOp op = SqlCmpOp::kEq;
  StaticOperand lhs;
  StaticOperand rhs;
};

// An equality turned into an index probe: enumerate only the tuples of the
// table bound at this depth whose `col` equals the (already available)
// `other` operand.
struct EquiProbe {
  bool active = false;
  size_t col = 0;
  StaticOperand other;
};

struct FromPlan {
  std::vector<std::vector<PushedCmp>> checks;  // by FROM depth
  std::vector<EquiProbe> equi;                 // by FROM depth
};

void FlattenSqlAnd(const SqlCondition& c,
                   std::vector<const SqlCondition*>* out) {
  if (c.kind == SqlCondition::Kind::kAnd) {
    FlattenSqlAnd(*c.left, out);
    FlattenSqlAnd(*c.right, out);
    return;
  }
  out->push_back(&c);
}

// Mirror of Operand's runtime resolution against the final scope layout.
// Returns false when the operand is not statically resolvable (including the
// qualified-alias-without-column case, which errors at runtime) — such
// comparisons are left to the leaf WHERE evaluation.
bool ResolveStatic(const SqlOperand& o, const Scope& scope, size_t base,
                   const SqlSelect& sel,
                   const std::vector<const RelationDecl*>& decls,
                   StaticOperand* out) {
  if (o.kind == SqlOperand::Kind::kLiteral) {
    out->is_literal = true;
    out->literal = o.literal;
    return true;
  }
  if (o.kind != SqlOperand::Kind::kColumn) return false;
  for (size_t i = sel.from.size(); i-- > 0;) {
    if (!o.table.empty() &&
        !EqualsIgnoreCaseAlias(sel.from[i].alias, o.table)) {
      continue;
    }
    const auto& attrs = decls[i]->attributes;
    for (size_t c = 0; c < attrs.size(); ++c) {
      if (EqualsIgnoreCaseAlias(attrs[c], o.column)) {
        out->is_literal = false;
        out->scope_index = base + i;
        out->col = c;
        return true;
      }
    }
    if (!o.table.empty()) return false;
  }
  for (size_t i = base; i-- > 0;) {
    if (!o.table.empty() && !EqualsIgnoreCaseAlias(scope[i].alias, o.table)) {
      continue;
    }
    const auto& attrs = scope[i].decl->attributes;
    for (size_t c = 0; c < attrs.size(); ++c) {
      if (EqualsIgnoreCaseAlias(attrs[c], o.column)) {
        out->is_literal = false;
        out->scope_index = i;
        out->col = c;
        return true;
      }
    }
    if (!o.table.empty()) return false;
  }
  return false;
}

FromPlan PlanFrom(const SqlSelect& sel, const Scope& scope, size_t base,
                  const std::vector<const RelationDecl*>& decls,
                  bool allow_equi) {
  FromPlan plan;
  const size_t n = sel.from.size();
  plan.checks.resize(n);
  plan.equi.resize(n);
  if (n == 0 || sel.where == nullptr) return plan;

  std::vector<const SqlCondition*> conjuncts;
  FlattenSqlAnd(*sel.where, &conjuncts);
  for (const SqlCondition* c : conjuncts) {
    if (c->kind != SqlCondition::Kind::kCmp) continue;
    StaticOperand lhs, rhs;
    if (!ResolveStatic(c->lhs, scope, base, sel, decls, &lhs)) continue;
    if (!ResolveStatic(c->rhs, scope, base, sel, decls, &rhs)) continue;
    auto depth_of = [&](const StaticOperand& so) -> size_t {
      if (so.is_literal || so.scope_index < base) return 0;
      return so.scope_index - base;
    };
    auto bound_at = [&](const StaticOperand& so, size_t d) {
      return !so.is_literal && so.scope_index == base + d;
    };
    const size_t depth = std::max(depth_of(lhs), depth_of(rhs));
    if (allow_equi && c->op == SqlCmpOp::kEq && !plan.equi[depth].active) {
      const StaticOperand* here = nullptr;
      const StaticOperand* other = nullptr;
      if (bound_at(lhs, depth) && !bound_at(rhs, depth)) {
        here = &lhs;
        other = &rhs;
      } else if (bound_at(rhs, depth) && !bound_at(lhs, depth)) {
        here = &rhs;
        other = &lhs;
      }
      if (here != nullptr) {
        plan.equi[depth] = EquiProbe{true, here->col, *other};
        continue;
      }
    }
    plan.checks[depth].push_back(PushedCmp{c->op, lhs, rhs});
  }
  return plan;
}

Value StaticValue(const StaticOperand& so, const Scope& scope) {
  return so.is_literal ? so.literal : (*scope[so.scope_index].tuple)[so.col];
}

class Evaluator {
 public:
  Evaluator(const Database& db, SqlEvalMode mode, const EvalOptions& options)
      : db_(db), mode_(mode), options_(options), stats_(options.stats) {}

  Result<Relation> Query(const SqlQuery& q, const Scope& outer) {
    Relation out(0);
    bool first = true;
    for (const SqlSelect& sel : q.selects) {
      INCDB_ASSIGN_OR_RETURN(Relation r, Select(sel, outer));
      if (first) {
        out = std::move(r);
        first = false;
      } else {
        if (r.arity() != out.arity()) {
          return Status::InvalidArgument(
              "UNION members have different column counts");
        }
        out.AddAll(r);
      }
    }
    return out;
  }

 private:
  Result<Relation> Select(const SqlSelect& sel, const Scope& outer) {
    if (sel.HasAggregates() || !sel.group_by.empty()) {
      return SelectAggregate(sel, outer);
    }
    // Resolve FROM tables.
    std::vector<const RelationDecl*> decls;
    std::vector<const Relation*> rels;
    for (const SqlTableRef& ref : sel.from) {
      INCDB_ASSIGN_OR_RETURN(const RelationDecl* decl,
                             db_.schema().Decl(ref.table));
      if (decl->attributes.empty() && decl->arity > 0) {
        return Status::InvalidArgument(
            "relation " + ref.table +
            " has no attribute names; SQL access requires named attributes");
      }
      decls.push_back(decl);
      rels.push_back(&db_.GetRelation(ref.table));
    }

    // Output arity.
    size_t arity = 0;
    if (sel.select_star) {
      for (const RelationDecl* d : decls) arity += d->arity;
    } else {
      arity = sel.items.size();
    }
    Relation out(arity);

    OpScope block(stats_, EvalOp::kSqlBlock);
    uint64_t in = 0;
    for (const Relation* r : rels) in += r->size();
    block.CountIn(in);

    Scope scope = outer;
    const size_t base = scope.size();
    scope.resize(base + sel.from.size());

    // kSqlMaybe keeps rows whose top-level condition is UNKNOWN; the other
    // modes (and all subqueries) keep TRUE rows. A maybe-query without a
    // WHERE clause keeps nothing (no row is in doubt).
    const bool maybe_here =
        mode_ == SqlEvalMode::kSqlMaybe && !in_subquery_;
    const TruthValue wanted =
        maybe_here ? TruthValue::kUnknown : TruthValue::kTrue;
    auto leaf = [&]() -> Status {
      if (sel.where != nullptr) {
        INCDB_ASSIGN_OR_RETURN(TruthValue tv, Cond(*sel.where, scope));
        if (tv != wanted) return Status::OK();
      } else if (maybe_here) {
        return Status::OK();
      }
      // Emit the row.
      std::vector<Value> vals;
      vals.reserve(arity);
      if (sel.select_star) {
        for (size_t i = base; i < scope.size(); ++i) {
          for (const Value& v : scope[i].tuple->values()) vals.push_back(v);
        }
      } else {
        for (const SqlSelectItem& item : sel.items) {
          INCDB_ASSIGN_OR_RETURN(Value v, Operand(item.operand, scope));
          vals.push_back(std::move(v));
        }
      }
      out.Add(Tuple(std::move(vals)));
      return Status::OK();
    };
    INCDB_RETURN_IF_ERROR(
        EnumerateFrom(sel, decls, rels, &scope, base, maybe_here, &block,
                      leaf));
    block.CountOut(out.size());
    return out;
  }

  // Runs the FROM nested loop with pushdown pruning (see the planning block
  // above), invoking `leaf` with all rows bound. `maybe_here` selects
  // FALSE-only pruning.
  Status EnumerateFrom(const SqlSelect& sel,
                       const std::vector<const RelationDecl*>& decls,
                       const std::vector<const Relation*>& rels, Scope* scope,
                       size_t base, bool maybe_here,
                       OpScope* block,
                       const std::function<Status()>& leaf) {
    const size_t n = sel.from.size();
    FromPlan plan;
    if (options_.use_hash_kernels) {
      plan = PlanFrom(sel, *scope, base, decls, /*allow_equi=*/!maybe_here);
    } else {
      plan.checks.resize(n);
      plan.equi.resize(n);
    }
    uint64_t probes = 0;
    std::function<Status(size_t)> rec = [&](size_t idx) -> Status {
      if (idx == n) return leaf();
      auto descend = [&](const Tuple& t) -> Status {
        (*scope)[base + idx] = ScopeEntry{sel.from[idx].alias, decls[idx], &t};
        for (const PushedCmp& pc : plan.checks[idx]) {
          // Statically resolved operands cannot fail to evaluate.
          INCDB_ASSIGN_OR_RETURN(
              TruthValue tv, Compare(pc.op, StaticValue(pc.lhs, *scope),
                                     StaticValue(pc.rhs, *scope)));
          if (maybe_here ? tv == TruthValue::kFalse
                         : tv != TruthValue::kTrue) {
            return Status::OK();
          }
        }
        return rec(idx + 1);
      };
      if (plan.equi[idx].active) {
        const EquiProbe& ep = plan.equi[idx];
        const Value probe = StaticValue(ep.other, *scope);
        ++probes;
        // In 3VL a NULL probe never compares TRUE: no candidates at all.
        if (mode_ != SqlEvalMode::kNaive && probe.is_null()) {
          return Status::OK();
        }
        const ColumnIndex& index = ColumnIndexFor(rels[idx], ep.col);
        auto it = index.find(probe);
        if (it == index.end()) return Status::OK();
        for (const Tuple* t : it->second) INCDB_RETURN_IF_ERROR(descend(*t));
        return Status::OK();
      }
      for (const Tuple& t : rels[idx]->tuples()) {
        INCDB_RETURN_IF_ERROR(descend(t));
      }
      return Status::OK();
    };
    Status st = rec(0);
    block->CountProbes(probes);
    return st;
  }

  // --- Aggregation ---
  //
  // SQL semantics: GROUP BY treats every NULL as the same group; aggregates
  // other than COUNT(*) ignore NULL inputs; aggregates over an empty group
  // yield NULL (COUNT yields 0). In naïve mode marked nulls keep their
  // identity in grouping and in MIN/MAX/COUNT; SUM/AVG over an unresolved
  // null is refused (kUnsupported) rather than silently wrong.

  Result<Relation> SelectAggregate(const SqlSelect& sel, const Scope& outer) {
    if (sel.select_star) {
      return Status::InvalidArgument("SELECT * cannot be combined with "
                                     "aggregates or GROUP BY");
    }
    // Every non-aggregate item must be a grouping column.
    for (const SqlSelectItem& item : sel.items) {
      if (item.is_aggregate()) continue;
      if (item.operand.kind != SqlOperand::Kind::kColumn) continue;
      bool grouped = false;
      for (const SqlOperand& g : sel.group_by) {
        if (EqualsIgnoreCaseAlias(g.column, item.operand.column) &&
            EqualsIgnoreCaseAlias(g.table, item.operand.table)) {
          grouped = true;
          break;
        }
      }
      if (!grouped) {
        return Status::InvalidArgument(
            "column " + item.operand.ToString() +
            " must appear in GROUP BY or inside an aggregate");
      }
    }

    // Materialize the surviving FROM×WHERE rows as (group key, item inputs).
    struct RowData {
      std::vector<Value> key;
      std::vector<Value> inputs;  // one slot per select item
    };
    std::vector<RowData> rows;
    INCDB_RETURN_IF_ERROR(CollectRows(sel, outer, &rows));

    // Group. SQL: one group for all nulls (they are indistinguishable);
    // naïve mode: marked nulls group by identity.
    auto canonical_key = [&](const std::vector<Value>& key) {
      std::vector<Value> out = key;
      if (mode_ == SqlEvalMode::kSql3VL) {
        for (Value& v : out) {
          if (v.is_null()) v = Value::Null(0);
        }
      }
      return out;
    };
    std::map<std::vector<Value>, std::vector<const RowData*>> groups;
    if (sel.group_by.empty()) {
      groups[{}] = {};  // global aggregate: one group, possibly empty
    }
    for (const RowData& row : rows) {
      groups[canonical_key(row.key)].push_back(&row);
    }

    Relation out(sel.items.size());
    for (const auto& [key, members] : groups) {
      std::vector<Value> vals;
      vals.reserve(sel.items.size());
      for (size_t i = 0; i < sel.items.size(); ++i) {
        const SqlSelectItem& item = sel.items[i];
        if (!item.is_aggregate()) {
          // Representative value (canonicalized with the key).
          if (members.empty()) {
            vals.push_back(Value::Null(0));
            continue;
          }
          Value v = members[0]->inputs[i];
          if (mode_ == SqlEvalMode::kSql3VL && v.is_null()) {
            v = Value::Null(0);
          }
          vals.push_back(std::move(v));
          continue;
        }
        INCDB_ASSIGN_OR_RETURN(Value v, ComputeAggregate(item, members, i));
        vals.push_back(std::move(v));
      }
      out.Add(Tuple(std::move(vals)));
    }
    return out;
  }

  template <typename RowPtrList>
  Result<Value> ComputeAggregate(const SqlSelectItem& item,
                                 const RowPtrList& members, size_t slot) {
    if (item.agg == AggFunc::kCountStar) {
      return Value::Int(static_cast<int64_t>(members.size()));
    }
    // Collect non-null inputs; SQL ignores nulls in all other aggregates.
    std::vector<Value> inputs;
    for (const auto* row : members) {
      const Value& v = row->inputs[slot];
      if (v.is_null()) {
        if (mode_ == SqlEvalMode::kNaive &&
            (item.agg == AggFunc::kSum || item.agg == AggFunc::kAvg ||
             item.agg == AggFunc::kMin || item.agg == AggFunc::kMax)) {
          return Status::Unsupported(
              "cannot aggregate over an unresolved marked null in naive "
              "mode: " +
              item.ToString());
        }
        continue;
      }
      inputs.push_back(v);
    }
    switch (item.agg) {
      case AggFunc::kCount:
        return Value::Int(static_cast<int64_t>(inputs.size()));
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        if (inputs.empty()) return Value::Null(0);
        int64_t sum = 0;
        for (const Value& v : inputs) {
          if (!v.is_int()) {
            return Status::InvalidArgument(
                std::string(AggFuncName(item.agg)) +
                " requires integer inputs");
          }
          sum += v.as_int();
        }
        if (item.agg == AggFunc::kSum) return Value::Int(sum);
        return Value::Int(sum / static_cast<int64_t>(inputs.size()));
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        if (inputs.empty()) return Value::Null(0);
        Value best = inputs[0];
        for (const Value& v : inputs) {
          if (item.agg == AggFunc::kMin ? v < best : best < v) best = v;
        }
        return best;
      }
      default:
        return Status::Internal("unexpected aggregate function");
    }
  }

  // Runs the FROM×WHERE loop collecting group keys and item inputs.
  template <typename RowVec>
  Status CollectRows(const SqlSelect& sel, const Scope& outer, RowVec* rows) {
    std::vector<const RelationDecl*> decls;
    std::vector<const Relation*> rels;
    for (const SqlTableRef& ref : sel.from) {
      INCDB_ASSIGN_OR_RETURN(const RelationDecl* decl,
                             db_.schema().Decl(ref.table));
      decls.push_back(decl);
      rels.push_back(&db_.GetRelation(ref.table));
    }
    Scope scope = outer;
    const size_t base = scope.size();
    scope.resize(base + sel.from.size());

    OpScope block(stats_, EvalOp::kSqlBlock);
    uint64_t in = 0;
    for (const Relation* r : rels) in += r->size();
    block.CountIn(in);

    auto leaf = [&]() -> Status {
      if (sel.where != nullptr) {
        INCDB_ASSIGN_OR_RETURN(TruthValue tv, Cond(*sel.where, scope));
        if (tv != TruthValue::kTrue) return Status::OK();
      }
      typename RowVec::value_type row;
      for (const SqlOperand& g : sel.group_by) {
        INCDB_ASSIGN_OR_RETURN(Value v, Operand(g, scope));
        row.key.push_back(std::move(v));
      }
      for (const SqlSelectItem& item : sel.items) {
        if (item.agg == AggFunc::kCountStar) {
          row.inputs.push_back(Value::Int(0));  // placeholder
        } else {
          INCDB_ASSIGN_OR_RETURN(Value v, Operand(item.operand, scope));
          row.inputs.push_back(std::move(v));
        }
      }
      rows->push_back(std::move(row));
      return Status::OK();
    };
    INCDB_RETURN_IF_ERROR(EnumerateFrom(sel, decls, rels, &scope, base,
                                        /*maybe_here=*/false, &block, leaf));
    block.CountOut(rows->size());
    return Status::OK();
  }

  Result<Value> Operand(const SqlOperand& o, const Scope& scope) {
    if (o.kind == SqlOperand::Kind::kLiteral) return o.literal;
    // Resolve column: inner-most scope entry first; alias qualifier wins.
    for (auto it = scope.rbegin(); it != scope.rend(); ++it) {
      if (!o.table.empty() && !EqualsIgnoreCaseAlias(it->alias, o.table)) {
        continue;
      }
      const auto& attrs = it->decl->attributes;
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (EqualsIgnoreCaseAlias(attrs[i], o.column)) {
          return (*it->tuple)[i];
        }
      }
      if (!o.table.empty()) {
        return Status::NotFound("column " + o.column + " not in table " +
                                o.table);
      }
    }
    return Status::NotFound("unresolved column " + o.ToString());
  }

  Result<TruthValue> Compare(SqlCmpOp op, const Value& a, const Value& b) {
    if (mode_ != SqlEvalMode::kNaive && (a.is_null() || b.is_null())) {
      return TruthValue::kUnknown;
    }
    bool r = false;
    switch (op) {
      case SqlCmpOp::kEq:
        r = a == b;
        break;
      case SqlCmpOp::kNe:
        r = a != b;
        break;
      case SqlCmpOp::kLt:
        r = a < b;
        break;
      case SqlCmpOp::kLe:
        r = a <= b;
        break;
      case SqlCmpOp::kGt:
        r = a > b;
        break;
      case SqlCmpOp::kGe:
        r = a >= b;
        break;
    }
    return r ? TruthValue::kTrue : TruthValue::kFalse;
  }

  Result<TruthValue> Cond(const SqlCondition& c, const Scope& scope) {
    switch (c.kind) {
      case SqlCondition::Kind::kTrue:
        return TruthValue::kTrue;
      case SqlCondition::Kind::kCmp: {
        INCDB_ASSIGN_OR_RETURN(Value a, Operand(c.lhs, scope));
        INCDB_ASSIGN_OR_RETURN(Value b, Operand(c.rhs, scope));
        return Compare(c.op, a, b);
      }
      case SqlCondition::Kind::kAnd: {
        INCDB_ASSIGN_OR_RETURN(TruthValue a, Cond(*c.left, scope));
        if (a == TruthValue::kFalse) return TruthValue::kFalse;
        INCDB_ASSIGN_OR_RETURN(TruthValue b, Cond(*c.right, scope));
        return And3(a, b);
      }
      case SqlCondition::Kind::kOr: {
        INCDB_ASSIGN_OR_RETURN(TruthValue a, Cond(*c.left, scope));
        if (a == TruthValue::kTrue) return TruthValue::kTrue;
        INCDB_ASSIGN_OR_RETURN(TruthValue b, Cond(*c.right, scope));
        return Or3(a, b);
      }
      case SqlCondition::Kind::kNot: {
        INCDB_ASSIGN_OR_RETURN(TruthValue a, Cond(*c.left, scope));
        return Not3(a);
      }
      case SqlCondition::Kind::kIn: {
        INCDB_ASSIGN_OR_RETURN(Value x, Operand(c.lhs, scope));
        INCDB_ASSIGN_OR_RETURN(Relation sub, Subquery(*c.subquery, scope));
        if (sub.arity() != 1) {
          return Status::InvalidArgument(
              "IN subquery must return one column");
        }
        // x IN S: TRUE if some s compares TRUE; else UNKNOWN if some
        // comparison is UNKNOWN; else FALSE. NOT IN is the 3VL negation.
        TruthValue acc = TruthValue::kFalse;
        for (const Tuple& s : sub.tuples()) {
          INCDB_ASSIGN_OR_RETURN(TruthValue eq, Compare(SqlCmpOp::kEq, x, s[0]));
          acc = Or3(acc, eq);
          if (acc == TruthValue::kTrue) break;
        }
        return c.negated ? Not3(acc) : acc;
      }
      case SqlCondition::Kind::kExists: {
        INCDB_ASSIGN_OR_RETURN(Relation sub, Subquery(*c.subquery, scope));
        return sub.empty() ? TruthValue::kFalse : TruthValue::kTrue;
      }
      case SqlCondition::Kind::kIsNull: {
        INCDB_ASSIGN_OR_RETURN(Value x, Operand(c.lhs, scope));
        const bool is_null = x.is_null();
        return (is_null != c.negated) ? TruthValue::kTrue : TruthValue::kFalse;
      }
    }
    return Status::Internal("unknown SQL condition kind");
  }

  // Subquery evaluation with memoization of uncorrelated subqueries: a
  // subquery that evaluates successfully against the empty scope cannot
  // depend on outer rows, so its result is computed once per top-level
  // query instead of once per candidate row.
  Result<Relation> Subquery(const SqlQuery& q, const Scope& scope) {
    // Subqueries always use the TRUE filter, even in MAYBE mode.
    const bool saved = in_subquery_;
    in_subquery_ = true;
    auto restore = [&](Result<Relation> r) {
      in_subquery_ = saved;
      return r;
    };
    auto it = uncorrelated_cache_.find(&q);
    if (it != uncorrelated_cache_.end()) return restore(it->second);
    if (correlated_.count(&q) == 0) {
      auto without_outer = Query(q, Scope{});
      if (without_outer.ok()) {
        uncorrelated_cache_.emplace(&q, *without_outer);
        return restore(*std::move(without_outer));
      }
      correlated_.insert(&q);
    }
    return restore(Query(q, scope));
  }

  // A per-column hash index over a relation's canonical tuples, built once
  // per evaluator and shared by every probe (correlated subqueries re-probe
  // the same index for each outer row).
  using ColumnIndex =
      std::unordered_map<Value, std::vector<const Tuple*>, ValueHash>;

  const ColumnIndex& ColumnIndexFor(const Relation* rel, size_t col) {
    const auto key = std::make_pair(rel, col);
    auto it = column_indexes_.find(key);
    if (it != column_indexes_.end()) return it->second;
    ColumnIndex index;
    for (const Tuple& t : rel->tuples()) index[t[col]].push_back(&t);
    return column_indexes_.emplace(key, std::move(index)).first->second;
  }

  const Database& db_;
  SqlEvalMode mode_;
  EvalOptions options_;
  EvalStats* stats_;
  bool in_subquery_ = false;
  std::map<const SqlQuery*, Relation> uncorrelated_cache_;
  std::set<const SqlQuery*> correlated_;
  std::map<std::pair<const Relation*, size_t>, ColumnIndex> column_indexes_;
};

}  // namespace

Result<Relation> EvalSql(const SqlQuery& q, const Database& db,
                         SqlEvalMode mode, const EvalOptions& options) {
  Evaluator ev(db, mode, options);
  return ev.Query(q, Scope{});
}

Result<Relation> EvalSql(const SqlQuery& q, const Database& db,
                         SqlEvalMode mode) {
  return EvalSql(q, db, mode, EvalOptions{});
}

Result<Relation> EvalSql(const std::string& sql, const Database& db,
                         SqlEvalMode mode, const EvalOptions& options) {
  INCDB_ASSIGN_OR_RETURN(SqlQuery q, ParseSql(sql));
  return EvalSql(q, db, mode, options);
}

Result<Relation> EvalSql(const std::string& sql, const Database& db,
                         SqlEvalMode mode) {
  return EvalSql(sql, db, mode, EvalOptions{});
}

}  // namespace incdb
