// SQL tokens.

#ifndef INCDB_SQL_TOKEN_H_
#define INCDB_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace incdb {

enum class TokenType {
  kEof,
  kIdentifier,  ///< table / column names (case-preserved)
  kKeyword,     ///< upper-cased reserved word
  kInteger,
  kString,      ///< 'quoted'
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kEq,     ///< =
  kNe,     ///< <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     ///< identifier/keyword/string payload
  int64_t int_value = 0;
  size_t position = 0;  ///< byte offset in the input, for error messages

  std::string ToString() const;
};

/// True if `word` (upper-case) is a reserved keyword.
bool IsSqlKeyword(const std::string& upper);

}  // namespace incdb

#endif  // INCDB_SQL_TOKEN_H_
