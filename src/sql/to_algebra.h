// SQL → relational algebra translation.
//
// Bridges the two query layers: a translated query can be classified with
// algebra/classify.h (positive / RA_cwa / full RA), evaluated by the naïve
// evaluator, or shipped to the c-table engine for exact answer spaces.
//
// Supported: SELECT (no aggregates) over FROM products, WHERE conditions
// built from comparisons with AND/OR/NOT and IS [NOT] NULL, plus
// *uncorrelated* [NOT] IN / EXISTS subqueries appearing as top-level
// conjuncts (they become semi-/anti-joins). UNION of such blocks.
//
// The translation realizes the *naïve / marked-null* interpretation: its
// EvalNaive result matches EvalSql(..., kNaive) exactly (property-tested).
// SQL's 3VL quirks (NOT IN poisoning) are not reproduced by the algebra —
// that is the point: the algebra is the semantics you can reason about.

#ifndef INCDB_SQL_TO_ALGEBRA_H_
#define INCDB_SQL_TO_ALGEBRA_H_

#include "algebra/ast.h"
#include "algebra/classify.h"
#include "sql/ast.h"

namespace incdb {

/// Translates a parsed SQL query over `schema` to a relational algebra
/// expression. kUnsupported for constructs outside the fragment above.
Result<RAExprPtr> SqlToAlgebra(const SqlQuery& q, const Schema& schema);

/// Convenience: parse + translate + classify.
Result<QueryClass> ClassifySql(const std::string& sql, const Schema& schema);

}  // namespace incdb

#endif  // INCDB_SQL_TO_ALGEBRA_H_
