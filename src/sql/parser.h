// Recursive-descent parser for the supported SQL subset (see sql/ast.h).

#ifndef INCDB_SQL_PARSER_H_
#define INCDB_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace incdb {

/// Parses a SQL query string. Errors carry the byte offset of the offending
/// token.
Result<SqlQuery> ParseSql(const std::string& sql);

}  // namespace incdb

#endif  // INCDB_SQL_PARSER_H_
