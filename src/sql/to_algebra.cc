#include "sql/to_algebra.h"

#include <map>

#include "sql/parser.h"
#include "util/strings.h"

namespace incdb {
namespace {

// Positional layout of the FROM product: alias -> (first column, decl).
struct FromLayout {
  struct Entry {
    std::string alias;
    const RelationDecl* decl;
    size_t offset;
  };
  std::vector<Entry> entries;
  size_t total_arity = 0;

  // Resolves `op` to a column index in the product, innermost alias match.
  Result<size_t> Resolve(const SqlOperand& op) const {
    INCDB_CHECK(op.kind == SqlOperand::Kind::kColumn);
    for (const Entry& e : entries) {
      if (!op.table.empty() && !EqualsIgnoreCase(e.alias, op.table)) continue;
      const auto& attrs = e.decl->attributes;
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (EqualsIgnoreCase(attrs[i], op.column)) return e.offset + i;
      }
      if (!op.table.empty()) {
        return Status::NotFound("column " + op.column + " not in " +
                                op.table);
      }
    }
    return Status::NotFound("unresolved column " + op.ToString());
  }
};

Result<Term> OperandToTerm(const SqlOperand& op, const FromLayout& layout) {
  if (op.kind == SqlOperand::Kind::kLiteral) return Term::Const(op.literal);
  INCDB_ASSIGN_OR_RETURN(size_t col, layout.Resolve(op));
  return Term::Column(col);
}

CmpOp ToCmpOp(SqlCmpOp op) {
  switch (op) {
    case SqlCmpOp::kEq:
      return CmpOp::kEq;
    case SqlCmpOp::kNe:
      return CmpOp::kNe;
    case SqlCmpOp::kLt:
      return CmpOp::kLt;
    case SqlCmpOp::kLe:
      return CmpOp::kLe;
    case SqlCmpOp::kGt:
      return CmpOp::kGt;
    case SqlCmpOp::kGe:
      return CmpOp::kGe;
  }
  return CmpOp::kEq;
}

// Translates a pure-predicate condition (no subqueries anywhere).
Result<PredicatePtr> ConditionToPredicate(const SqlCondition& c,
                                          const FromLayout& layout) {
  switch (c.kind) {
    case SqlCondition::Kind::kTrue:
      return Predicate::True();
    case SqlCondition::Kind::kCmp: {
      INCDB_ASSIGN_OR_RETURN(Term lhs, OperandToTerm(c.lhs, layout));
      INCDB_ASSIGN_OR_RETURN(Term rhs, OperandToTerm(c.rhs, layout));
      return Predicate::Cmp(ToCmpOp(c.op), std::move(lhs), std::move(rhs));
    }
    case SqlCondition::Kind::kAnd: {
      INCDB_ASSIGN_OR_RETURN(PredicatePtr a,
                             ConditionToPredicate(*c.left, layout));
      INCDB_ASSIGN_OR_RETURN(PredicatePtr b,
                             ConditionToPredicate(*c.right, layout));
      return Predicate::And(std::move(a), std::move(b));
    }
    case SqlCondition::Kind::kOr: {
      INCDB_ASSIGN_OR_RETURN(PredicatePtr a,
                             ConditionToPredicate(*c.left, layout));
      INCDB_ASSIGN_OR_RETURN(PredicatePtr b,
                             ConditionToPredicate(*c.right, layout));
      return Predicate::Or(std::move(a), std::move(b));
    }
    case SqlCondition::Kind::kNot: {
      INCDB_ASSIGN_OR_RETURN(PredicatePtr a,
                             ConditionToPredicate(*c.left, layout));
      return Predicate::Not(std::move(a));
    }
    case SqlCondition::Kind::kIsNull: {
      INCDB_ASSIGN_OR_RETURN(Term t, OperandToTerm(c.lhs, layout));
      PredicatePtr p = Predicate::IsNull(std::move(t));
      return c.negated ? Predicate::Not(std::move(p)) : p;
    }
    case SqlCondition::Kind::kIn:
    case SqlCondition::Kind::kExists:
      return Status::Unsupported(
          "subquery conditions must be top-level conjuncts to translate to "
          "algebra: " +
          c.ToString());
  }
  return Status::Internal("unknown condition kind");
}

// Splits a condition into its AND-chain conjuncts.
void SplitConjuncts(const SqlConditionPtr& c,
                    std::vector<const SqlCondition*>* out) {
  if (c == nullptr) return;
  if (c->kind == SqlCondition::Kind::kAnd) {
    SplitConjuncts(c->left, out);
    SplitConjuncts(c->right, out);
    return;
  }
  out->push_back(c.get());
}

Result<RAExprPtr> TranslateQuery(const SqlQuery& q, const Schema& schema);

Result<RAExprPtr> TranslateSelect(const SqlSelect& sel, const Schema& schema) {
  if (sel.HasAggregates() || !sel.group_by.empty()) {
    return Status::Unsupported(
        "aggregates / GROUP BY have no relational algebra translation");
  }

  // FROM product and layout.
  FromLayout layout;
  RAExprPtr expr;
  for (const SqlTableRef& ref : sel.from) {
    INCDB_ASSIGN_OR_RETURN(const RelationDecl* decl,
                           schema.Decl(ref.table));
    layout.entries.push_back({ref.alias, decl, layout.total_arity});
    layout.total_arity += decl->arity;
    RAExprPtr scan = RAExpr::Scan(ref.table);
    expr = expr == nullptr ? scan : RAExpr::Product(expr, scan);
  }
  if (expr == nullptr) {
    return Status::Unsupported("empty FROM clause");
  }

  // WHERE: split into predicate conjuncts and subquery conjuncts.
  std::vector<const SqlCondition*> conjuncts;
  SplitConjuncts(sel.where, &conjuncts);
  PredicatePtr pred = Predicate::True();
  struct SubJoin {
    const SqlCondition* cond;
  };
  std::vector<SubJoin> subjoins;
  for (const SqlCondition* c : conjuncts) {
    if (c->kind == SqlCondition::Kind::kIn ||
        c->kind == SqlCondition::Kind::kExists) {
      subjoins.push_back({c});
      continue;
    }
    INCDB_ASSIGN_OR_RETURN(PredicatePtr p, ConditionToPredicate(*c, layout));
    pred = Predicate::And(std::move(pred), std::move(p));
  }
  if (pred->kind() != Predicate::Kind::kTrue) {
    expr = RAExpr::Select(pred, expr);
  }

  // Outer columns to restore after each semi-/anti-join.
  std::vector<size_t> outer_cols(layout.total_arity);
  for (size_t i = 0; i < layout.total_arity; ++i) outer_cols[i] = i;

  for (const SubJoin& sj : subjoins) {
    const SqlCondition& c = *sj.cond;
    INCDB_ASSIGN_OR_RETURN(RAExprPtr sub, TranslateQuery(*c.subquery, schema));
    INCDB_ASSIGN_OR_RETURN(size_t sub_arity, sub->InferArity(schema));
    if (c.kind == SqlCondition::Kind::kIn) {
      if (sub_arity != 1) {
        return Status::InvalidArgument("IN subquery must have one column");
      }
      INCDB_ASSIGN_OR_RETURN(Term lhs, OperandToTerm(c.lhs, layout));
      // σ_{lhs = last}(outer × sub), projected back to the outer columns.
      RAExprPtr joined = RAExpr::Select(
          Predicate::Eq(lhs, Term::Column(layout.total_arity)),
          RAExpr::Product(expr, sub));
      RAExprPtr semi = RAExpr::Project(outer_cols, joined);
      if (c.negated) {
        expr = RAExpr::Diff(expr, semi);  // anti-join
      } else {
        expr = semi;
      }
    } else {  // EXISTS
      // Uncorrelated EXISTS: keep all outer rows iff the subquery is
      // nonempty — outer × sub projected back.
      RAExprPtr crossed = RAExpr::Product(expr, sub);
      expr = RAExpr::Project(outer_cols, crossed);
    }
  }

  // SELECT list projection.
  std::vector<size_t> cols;
  if (sel.select_star) {
    cols = outer_cols;
  } else {
    for (const SqlSelectItem& item : sel.items) {
      if (item.operand.kind == SqlOperand::Kind::kLiteral) {
        return Status::Unsupported(
            "literal select items have no algebra translation");
      }
      INCDB_ASSIGN_OR_RETURN(size_t col, layout.Resolve(item.operand));
      cols.push_back(col);
    }
  }
  return RAExpr::Project(cols, expr);
}

Result<RAExprPtr> TranslateQuery(const SqlQuery& q, const Schema& schema) {
  RAExprPtr acc;
  for (const SqlSelect& sel : q.selects) {
    INCDB_ASSIGN_OR_RETURN(RAExprPtr e, TranslateSelect(sel, schema));
    acc = acc == nullptr ? e : RAExpr::Union(acc, e);
  }
  if (acc == nullptr) return Status::InvalidArgument("empty query");
  return acc;
}

}  // namespace

Result<RAExprPtr> SqlToAlgebra(const SqlQuery& q, const Schema& schema) {
  INCDB_ASSIGN_OR_RETURN(RAExprPtr expr, TranslateQuery(q, schema));
  // Validate typing against the schema before handing it out.
  INCDB_RETURN_IF_ERROR(expr->InferArity(schema).status());
  return expr;
}

Result<QueryClass> ClassifySql(const std::string& sql, const Schema& schema) {
  INCDB_ASSIGN_OR_RETURN(SqlQuery q, ParseSql(sql));
  INCDB_ASSIGN_OR_RETURN(RAExprPtr expr, SqlToAlgebra(q, schema));
  return Classify(expr);
}

}  // namespace incdb
