// SQL evaluation over naïve databases, in two modes:
//
//  * kSql3VL — the SQL standard's three-valued logic: comparisons with NULL
//    are UNKNOWN; WHERE keeps TRUE rows only; x [NOT] IN (S) follows the
//    standard's quantified-comparison rules (one UNKNOWN poisons NOT IN);
//    EXISTS is two-valued. This reproduces the anomalies of the paper's
//    introduction on any SQL engine.
//  * kNaive — marked nulls are ordinary values; comparisons are syntactic.
//    This is the paper's naïve evaluation, the building block of correct
//    certain answers for positive queries.
//
// Set semantics throughout (every SELECT is DISTINCT). Correlated subqueries
// are supported: inner queries see the outer row's columns.

#ifndef INCDB_SQL_EVAL_H_
#define INCDB_SQL_EVAL_H_

#include "algebra/predicate.h"  // TruthValue
#include "core/database.h"
#include "engine/stats.h"
#include "sql/ast.h"

namespace incdb {

enum class SqlEvalMode {
  kSql3VL,    ///< WHERE keeps TRUE rows (the SQL standard)
  kNaive,     ///< marked nulls as values, two-valued
  kSqlMaybe,  ///< WHERE keeps UNKNOWN rows — Codd's MAYBE operator (1979):
              ///< together with kSql3VL it covers the possible answers
};

/// Evaluates a query; output columns follow the SELECT list (or the
/// concatenation of FROM-table columns for SELECT *). The evaluator pushes
/// statically-resolvable WHERE conjuncts into the FROM nested loop and
/// serves pushed equalities from per-column hash indexes (disable with
/// EvalOptions::use_hash_kernels = false); surviving rows still evaluate the
/// full WHERE clause, so the answer is identical either way.
Result<Relation> EvalSql(const SqlQuery& q, const Database& db,
                         SqlEvalMode mode, const EvalOptions& options);
Result<Relation> EvalSql(const SqlQuery& q, const Database& db,
                         SqlEvalMode mode);

/// Convenience: parse-and-evaluate.
Result<Relation> EvalSql(const std::string& sql, const Database& db,
                         SqlEvalMode mode, const EvalOptions& options);
Result<Relation> EvalSql(const std::string& sql, const Database& db,
                         SqlEvalMode mode);

}  // namespace incdb

#endif  // INCDB_SQL_EVAL_H_
