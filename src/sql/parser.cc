#include "sql/parser.h"

#include <map>

#include "sql/lexer.h"

namespace incdb {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlQuery> ParseQuery() {
    INCDB_ASSIGN_OR_RETURN(SqlQuery q, ParseQueryInner());
    if (!AtEof()) {
      return Error("unexpected trailing input");
    }
    return q;
  }

 private:
  Result<SqlQuery> ParseQueryInner() {
    SqlQuery q;
    INCDB_ASSIGN_OR_RETURN(SqlSelect first, ParseSelect());
    q.selects.push_back(std::move(first));
    while (AcceptKeyword("UNION")) {
      INCDB_ASSIGN_OR_RETURN(SqlSelect next, ParseSelect());
      q.selects.push_back(std::move(next));
    }
    return q;
  }

  Result<SqlSelect> ParseSelect() {
    SqlSelect sel;
    INCDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    sel.distinct = AcceptKeyword("DISTINCT");
    if (Accept(TokenType::kStar)) {
      sel.select_star = true;
    } else {
      for (;;) {
        INCDB_ASSIGN_OR_RETURN(SqlSelectItem item, ParseSelectItem());
        sel.items.push_back(std::move(item));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    INCDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    for (;;) {
      SqlTableRef ref;
      INCDB_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier("table name"));
      ref.alias = ref.table;
      (void)AcceptKeyword("AS");
      if (Peek().type == TokenType::kIdentifier) {
        ref.alias = Peek().text;
        Advance();
      }
      sel.from.push_back(std::move(ref));
      if (!Accept(TokenType::kComma)) break;
    }
    if (AcceptKeyword("WHERE")) {
      INCDB_ASSIGN_OR_RETURN(sel.where, ParseOr());
    }
    if (AcceptKeyword("GROUP")) {
      INCDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        INCDB_ASSIGN_OR_RETURN(SqlOperand col, ParseOperand());
        if (col.kind != SqlOperand::Kind::kColumn) {
          return Error("GROUP BY requires column references");
        }
        sel.group_by.push_back(std::move(col));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    return sel;
  }

  Result<SqlSelectItem> ParseSelectItem() {
    static const std::map<std::string, AggFunc> kAggs = {
        {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
        {"MIN", AggFunc::kMin},     {"MAX", AggFunc::kMax},
        {"AVG", AggFunc::kAvg},
    };
    if (Peek().type == TokenType::kKeyword && kAggs.count(Peek().text) > 0) {
      const AggFunc func = kAggs.at(Peek().text);
      Advance();
      INCDB_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      if (func == AggFunc::kCount && Accept(TokenType::kStar)) {
        INCDB_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        return SqlSelectItem::Aggregate(AggFunc::kCountStar, SqlOperand());
      }
      INCDB_ASSIGN_OR_RETURN(SqlOperand op, ParseOperand());
      INCDB_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return SqlSelectItem::Aggregate(func, std::move(op));
    }
    INCDB_ASSIGN_OR_RETURN(SqlOperand op, ParseOperand());
    return SqlSelectItem::Plain(std::move(op));
  }

  Result<SqlConditionPtr> ParseOr() {
    INCDB_ASSIGN_OR_RETURN(SqlConditionPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      INCDB_ASSIGN_OR_RETURN(SqlConditionPtr rhs, ParseAnd());
      auto node = std::make_shared<SqlCondition>();
      node->kind = SqlCondition::Kind::kOr;
      node->left = std::move(lhs);
      node->right = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<SqlConditionPtr> ParseAnd() {
    INCDB_ASSIGN_OR_RETURN(SqlConditionPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      INCDB_ASSIGN_OR_RETURN(SqlConditionPtr rhs, ParseNot());
      auto node = std::make_shared<SqlCondition>();
      node->kind = SqlCondition::Kind::kAnd;
      node->left = std::move(lhs);
      node->right = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<SqlConditionPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      INCDB_ASSIGN_OR_RETURN(SqlConditionPtr inner, ParseNot());
      auto node = std::make_shared<SqlCondition>();
      node->kind = SqlCondition::Kind::kNot;
      node->left = std::move(inner);
      return node;
    }
    return ParsePrimary();
  }

  Result<SqlConditionPtr> ParsePrimary() {
    if (PeekKeyword("EXISTS")) {
      Advance();
      INCDB_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      INCDB_ASSIGN_OR_RETURN(SqlQuery sub, ParseQueryInner());
      INCDB_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      auto node = std::make_shared<SqlCondition>();
      node->kind = SqlCondition::Kind::kExists;
      node->subquery = std::make_shared<SqlQuery>(std::move(sub));
      return node;
    }
    if (Peek().type == TokenType::kLParen) {
      // Either a parenthesized condition or nothing else starts with '(' in
      // condition position.
      Advance();
      INCDB_ASSIGN_OR_RETURN(SqlConditionPtr inner, ParseOr());
      INCDB_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return inner;
    }
    // operand (comparison | IN | IS NULL)
    INCDB_ASSIGN_OR_RETURN(SqlOperand lhs, ParseOperand());
    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      const bool negated = AcceptKeyword("NOT");
      INCDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto node = std::make_shared<SqlCondition>();
      node->kind = SqlCondition::Kind::kIsNull;
      node->lhs = std::move(lhs);
      node->negated = negated;
      return node;
    }
    // [NOT] IN (subquery)
    bool negated = false;
    if (PeekKeyword("NOT")) {
      // lookahead for IN
      if (PeekAt(1).type == TokenType::kKeyword && PeekAt(1).text == "IN") {
        Advance();
        negated = true;
      }
    }
    if (AcceptKeyword("IN")) {
      INCDB_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      INCDB_ASSIGN_OR_RETURN(SqlQuery sub, ParseQueryInner());
      INCDB_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      auto node = std::make_shared<SqlCondition>();
      node->kind = SqlCondition::Kind::kIn;
      node->lhs = std::move(lhs);
      node->negated = negated;
      node->subquery = std::make_shared<SqlQuery>(std::move(sub));
      return node;
    }
    if (negated) return Error("expected IN after NOT");
    // comparison
    SqlCmpOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = SqlCmpOp::kEq;
        break;
      case TokenType::kNe:
        op = SqlCmpOp::kNe;
        break;
      case TokenType::kLt:
        op = SqlCmpOp::kLt;
        break;
      case TokenType::kLe:
        op = SqlCmpOp::kLe;
        break;
      case TokenType::kGt:
        op = SqlCmpOp::kGt;
        break;
      case TokenType::kGe:
        op = SqlCmpOp::kGe;
        break;
      default:
        return Error("expected comparison, IN, or IS NULL");
    }
    Advance();
    INCDB_ASSIGN_OR_RETURN(SqlOperand rhs, ParseOperand());
    auto node = std::make_shared<SqlCondition>();
    node->kind = SqlCondition::Kind::kCmp;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<SqlOperand> ParseOperand() {
    const Token& t = Peek();
    if (t.type == TokenType::kInteger) {
      Advance();
      return SqlOperand::Literal(Value::Int(t.int_value));
    }
    if (t.type == TokenType::kString) {
      Advance();
      return SqlOperand::Literal(Value::Str(t.text));
    }
    if (t.type == TokenType::kIdentifier) {
      std::string first = t.text;
      Advance();
      if (Accept(TokenType::kDot)) {
        INCDB_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
        return SqlOperand::Column(std::move(first), std::move(col));
      }
      return SqlOperand::Column("", std::move(first));
    }
    return Error("expected operand (column, integer, or string)");
  }

  // --- token plumbing ---
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t off) const {
    const size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEof() const { return Peek().type == TokenType::kEof; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool Accept(TokenType t) {
    if (Peek().type == t) {
      Advance();
      return true;
    }
    return false;
  }
  bool PeekKeyword(const std::string& kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenType t) {
    if (Accept(t)) return Status::OK();
    return Error("unexpected token");
  }
  Status ExpectKeyword(const std::string& kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return Error("expected " + kw);
  }
  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type == TokenType::kIdentifier) {
      std::string s = Peek().text;
      Advance();
      return s;
    }
    return Error("expected " + what);
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().position) + " (near " +
                              Peek().ToString() + ")");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlQuery> ParseSql(const std::string& sql) {
  INCDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace incdb
