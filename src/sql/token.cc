#include "sql/token.h"

#include <set>

namespace incdb {

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kEof:
      return "<eof>";
    case TokenType::kIdentifier:
      return "ident:" + text;
    case TokenType::kKeyword:
      return "kw:" + text;
    case TokenType::kInteger:
      return "int:" + std::to_string(int_value);
    case TokenType::kString:
      return "str:'" + text + "'";
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kStar:
      return "*";
    case TokenType::kEq:
      return "=";
    case TokenType::kNe:
      return "<>";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
  }
  return "?";
}

bool IsSqlKeyword(const std::string& upper) {
  static const std::set<std::string> kKeywords = {
      "SELECT", "DISTINCT", "FROM", "WHERE", "AND",   "OR",  "NOT",
      "IN",     "EXISTS",   "IS",   "NULL",  "AS",    "UNION",
      "COUNT",  "SUM",      "MIN",  "MAX",   "AVG",   "GROUP", "BY",
  };
  return kKeywords.count(upper) > 0;
}

}  // namespace incdb
