#include "sql/ast.h"

#include "util/strings.h"

namespace incdb {

std::string SqlOperand::ToString() const {
  if (kind == Kind::kLiteral) return literal.ToString();
  if (table.empty()) return column;
  return table + "." + column;
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

std::string SqlSelectItem::ToString() const {
  if (agg == AggFunc::kNone) return operand.ToString();
  if (agg == AggFunc::kCountStar) return "COUNT(*)";
  return std::string(AggFuncName(agg)) + "(" + operand.ToString() + ")";
}

bool SqlSelect::HasAggregates() const {
  for (const SqlSelectItem& item : items) {
    if (item.is_aggregate()) return true;
  }
  return false;
}

const char* SqlCmpOpSymbol(SqlCmpOp op) {
  switch (op) {
    case SqlCmpOp::kEq:
      return "=";
    case SqlCmpOp::kNe:
      return "<>";
    case SqlCmpOp::kLt:
      return "<";
    case SqlCmpOp::kLe:
      return "<=";
    case SqlCmpOp::kGt:
      return ">";
    case SqlCmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string SqlCondition::ToString() const {
  switch (kind) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCmp:
      return lhs.ToString() + " " + SqlCmpOpSymbol(op) + " " + rhs.ToString();
    case Kind::kAnd:
      return "(" + left->ToString() + " AND " + right->ToString() + ")";
    case Kind::kOr:
      return "(" + left->ToString() + " OR " + right->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + left->ToString() + ")";
    case Kind::kIn:
      return lhs.ToString() + (negated ? " NOT IN (" : " IN (") +
             subquery->ToString() + ")";
    case Kind::kExists:
      return "EXISTS (" + subquery->ToString() + ")";
    case Kind::kIsNull:
      return lhs.ToString() + (negated ? " IS NOT NULL" : " IS NULL");
  }
  return "?";
}

std::string SqlTableRef::ToString() const {
  if (alias.empty() || alias == table) return table;
  return table + " " + alias;
}

std::string SqlSelect::ToString() const {
  std::string s = "SELECT ";
  if (distinct) s += "DISTINCT ";
  if (select_star) {
    s += "*";
  } else {
    std::vector<std::string> parts;
    for (const SqlSelectItem& o : items) parts.push_back(o.ToString());
    s += Join(parts, ", ");
  }
  s += " FROM ";
  std::vector<std::string> froms;
  for (const SqlTableRef& t : from) froms.push_back(t.ToString());
  s += Join(froms, ", ");
  if (where != nullptr) s += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    std::vector<std::string> gs;
    for (const SqlOperand& g : group_by) gs.push_back(g.ToString());
    s += " GROUP BY " + Join(gs, ", ");
  }
  return s;
}

std::string SqlQuery::ToString() const {
  std::vector<std::string> parts;
  for (const SqlSelect& sel : selects) parts.push_back(sel.ToString());
  return Join(parts, " UNION ");
}

}  // namespace incdb
