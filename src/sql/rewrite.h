// Certain-answer rewriting for SQL: the paper's "small, easily
// implementable change" (Sections 6 and 7).
//
// For positive queries (=, AND, OR, IN, EXISTS — no NOT, NOT IN, <>, order
// comparisons or IS NULL), certain answers equal the naïvely evaluated
// answer with null-carrying rows removed — equation (4). Operationally this
// is the original query with IS NOT NULL filters appended on the selected
// columns, evaluated with marked-null (naïve) equality.

#ifndef INCDB_SQL_REWRITE_H_
#define INCDB_SQL_REWRITE_H_

#include "sql/ast.h"
#include "sql/eval.h"

namespace incdb {

/// True if every SELECT block uses only positive conditions and no
/// negation-like constructs; such queries are UCQ-expressible and naïve
/// evaluation computes their certain answers under OWA and CWA.
bool IsPositiveSqlQuery(const SqlQuery& q);

/// Appends `item IS NOT NULL` for every selected column to each SELECT
/// block's WHERE clause. Requires explicit select lists (no SELECT *).
Result<SqlQuery> RewriteWithNotNullFilters(const SqlQuery& q);

/// Certain answers for a positive SQL query: naïve evaluation + null-row
/// filtering. kUnsupported for non-positive queries unless `force` is set
/// (forced results carry no guarantee — used to measure the gap).
Result<Relation> EvalSqlCertain(const SqlQuery& q, const Database& db,
                                bool force = false,
                                const EvalOptions& options = {});
Result<Relation> EvalSqlCertain(const std::string& sql, const Database& db,
                                bool force = false,
                                const EvalOptions& options = {});

}  // namespace incdb

#endif  // INCDB_SQL_REWRITE_H_
