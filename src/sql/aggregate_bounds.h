// Certain answers for aggregate queries over incomplete columns.
//
// An aggregate over a column with nulls has no single certain value; the
// right notion (following the paper's program of choosing answer semantics
// that represent knowledge faithfully) is an *interval*: the tightest
// [lo, hi] containing the aggregate's value in every possible world.
//
// Under CWA a null ranges over all of Const, so SUM/MIN/MAX/AVG bounds may
// be infinite; callers may supply a domain constraint [value_lo, value_hi]
// for null values (e.g. "amounts are between 0 and 10000"), which makes all
// bounds finite. COUNT(*) and COUNT(col) are exact: in every world the
// column is total, so both equal the row count — which exposes SQL's
// COUNT(col) (it ignores nulls) as an under-report with no world semantics.

#ifndef INCDB_SQL_AGGREGATE_BOUNDS_H_
#define INCDB_SQL_AGGREGATE_BOUNDS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/value.h"
#include "sql/ast.h"
#include "util/status.h"

namespace incdb {

/// The certain interval of an aggregate. Missing lo/hi = unbounded.
struct AggInterval {
  std::optional<int64_t> lo;
  std::optional<int64_t> hi;

  bool Contains(int64_t v) const {
    return (!lo || *lo <= v) && (!hi || v <= *hi);
  }
  bool IsExact() const { return lo && hi && *lo == *hi; }
  std::string ToString() const;
};

/// Optional constraint on the values a null may take.
struct NullDomain {
  std::optional<int64_t> value_lo;
  std::optional<int64_t> value_hi;
};

/// The tightest interval containing agg(column) over every CWA world of the
/// column. Integer columns only for kSum/kAvg/kMin/kMax (strings rejected);
/// any column for the COUNT variants. kAvg bounds are the floor-truncated
/// possible averages' range. Empty column: COUNT = [0,0], others are an
/// error (SQL's NULL has no integer interval).
Result<AggInterval> CertainAggregateInterval(
    const std::vector<Value>& column, AggFunc func,
    const NullDomain& domain = {});

}  // namespace incdb

#endif  // INCDB_SQL_AGGREGATE_BOUNDS_H_
