#include "sql/rewrite.h"

#include "sql/parser.h"

namespace incdb {
namespace {

bool IsPositiveCondition(const SqlCondition& c) {
  switch (c.kind) {
    case SqlCondition::Kind::kTrue:
      return true;
    case SqlCondition::Kind::kCmp:
      return c.op == SqlCmpOp::kEq;
    case SqlCondition::Kind::kAnd:
    case SqlCondition::Kind::kOr:
      return IsPositiveCondition(*c.left) && IsPositiveCondition(*c.right);
    case SqlCondition::Kind::kNot:
      return false;
    case SqlCondition::Kind::kIn:
      return !c.negated && IsPositiveSqlQuery(*c.subquery);
    case SqlCondition::Kind::kExists:
      return IsPositiveSqlQuery(*c.subquery);
    case SqlCondition::Kind::kIsNull:
      return false;
  }
  return false;
}

}  // namespace

bool IsPositiveSqlQuery(const SqlQuery& q) {
  for (const SqlSelect& sel : q.selects) {
    // Aggregates and grouping are outside the UCQ fragment: a COUNT or SUM
    // is not preserved under adding tuples / instantiating nulls.
    if (sel.HasAggregates() || !sel.group_by.empty()) return false;
    if (sel.where != nullptr && !IsPositiveCondition(*sel.where)) {
      return false;
    }
  }
  return true;
}

Result<SqlQuery> RewriteWithNotNullFilters(const SqlQuery& q) {
  SqlQuery out = q;
  for (SqlSelect& sel : out.selects) {
    if (sel.select_star) {
      return Status::Unsupported(
          "certain-answer rewriting requires an explicit select list");
    }
    SqlConditionPtr extra;
    for (const SqlSelectItem& sel_item : sel.items) {
      if (sel_item.is_aggregate()) continue;
      const SqlOperand& item = sel_item.operand;
      if (item.kind != SqlOperand::Kind::kColumn) continue;
      auto not_null = std::make_shared<SqlCondition>();
      not_null->kind = SqlCondition::Kind::kIsNull;
      not_null->lhs = item;
      not_null->negated = true;
      if (extra == nullptr) {
        extra = std::move(not_null);
      } else {
        auto conj = std::make_shared<SqlCondition>();
        conj->kind = SqlCondition::Kind::kAnd;
        conj->left = std::move(extra);
        conj->right = std::move(not_null);
        extra = std::move(conj);
      }
    }
    if (extra == nullptr) continue;
    if (sel.where == nullptr) {
      sel.where = std::move(extra);
    } else {
      auto conj = std::make_shared<SqlCondition>();
      conj->kind = SqlCondition::Kind::kAnd;
      conj->left = sel.where;
      conj->right = std::move(extra);
      sel.where = std::move(conj);
    }
  }
  return out;
}

Result<Relation> EvalSqlCertain(const SqlQuery& q, const Database& db,
                                bool force, const EvalOptions& options) {
  if (!force && !IsPositiveSqlQuery(q)) {
    return Status::Unsupported(
        "certain-answer evaluation requires a positive SQL query "
        "(no NOT / NOT IN / <> / order comparisons / IS NULL)");
  }
  INCDB_ASSIGN_OR_RETURN(Relation naive,
                         EvalSql(q, db, SqlEvalMode::kNaive, options));
  Relation out(naive.arity());
  for (const Tuple& t : naive.tuples()) {
    if (!t.HasNull()) out.Add(t);
  }
  return out;
}

Result<Relation> EvalSqlCertain(const std::string& sql, const Database& db,
                                bool force, const EvalOptions& options) {
  INCDB_ASSIGN_OR_RETURN(SqlQuery q, ParseSql(sql));
  return EvalSqlCertain(q, db, force, options);
}

}  // namespace incdb
