#include "sql/aggregate_bounds.h"

#include <algorithm>

namespace incdb {

std::string AggInterval::ToString() const {
  std::string s = "[";
  s += lo ? std::to_string(*lo) : "-inf";
  s += ", ";
  s += hi ? std::to_string(*hi) : "+inf";
  s += "]";
  return s;
}

Result<AggInterval> CertainAggregateInterval(const std::vector<Value>& column,
                                             AggFunc func,
                                             const NullDomain& domain) {
  const int64_t n = static_cast<int64_t>(column.size());
  int64_t null_count = 0;
  std::vector<int64_t> consts;
  for (const Value& v : column) {
    if (v.is_null()) {
      ++null_count;
      continue;
    }
    if (!v.is_int() && func != AggFunc::kCount &&
        func != AggFunc::kCountStar) {
      return Status::InvalidArgument(
          "aggregate bounds require integer values; got " + v.ToString());
    }
    if (v.is_int()) consts.push_back(v.as_int());
  }

  // The extremes of SUM/MIN/MAX/AVG over worlds are attained with every
  // null at its domain boundary (each aggregate is monotone in each null's
  // value), so repeated marked nulls need no special treatment.
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      // In every world the column is total: both COUNTs equal the row
      // count exactly.
      return AggInterval{n, n};
    case AggFunc::kSum: {
      if (n == 0) {
        return Status::InvalidArgument(
            "SUM over an empty column is NULL in SQL; no integer interval");
      }
      int64_t base = 0;
      for (int64_t c : consts) base += c;
      AggInterval out;
      if (null_count == 0) {
        out.lo = out.hi = base;
        return out;
      }
      if (domain.value_lo) out.lo = base + null_count * *domain.value_lo;
      if (domain.value_hi) out.hi = base + null_count * *domain.value_hi;
      return out;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (n == 0) {
        return Status::InvalidArgument(
            "MIN/MAX over an empty column is NULL in SQL; no interval");
      }
      const bool is_min = func == AggFunc::kMin;
      std::optional<int64_t> best_const;
      for (int64_t c : consts) {
        if (!best_const || (is_min ? c < *best_const : c > *best_const)) {
          best_const = c;
        }
      }
      AggInterval out;
      if (null_count == 0) {
        out.lo = out.hi = *best_const;
        return out;
      }
      if (is_min) {
        // Worst case: some null below everything; best case: all nulls at
        // their upper bound (the min is then capped by the constants).
        if (domain.value_lo) {
          out.lo = best_const ? std::min(*best_const, *domain.value_lo)
                              : *domain.value_lo;
        }
        if (best_const) {
          out.hi = domain.value_hi ? std::min(*best_const, *domain.value_hi)
                                   : *best_const;
        } else if (domain.value_hi) {
          out.hi = *domain.value_hi;
        }
      } else {
        if (domain.value_hi) {
          out.hi = best_const ? std::max(*best_const, *domain.value_hi)
                              : *domain.value_hi;
        }
        if (best_const) {
          out.lo = domain.value_lo ? std::max(*best_const, *domain.value_lo)
                                   : *best_const;
        } else if (domain.value_lo) {
          out.lo = *domain.value_lo;
        }
      }
      return out;
    }
    case AggFunc::kAvg: {
      if (n == 0) {
        return Status::InvalidArgument(
            "AVG over an empty column is NULL in SQL; no interval");
      }
      int64_t base = 0;
      for (int64_t c : consts) base += c;
      AggInterval out;
      if (null_count == 0) {
        out.lo = out.hi = base / n;
        return out;
      }
      if (domain.value_lo) out.lo = (base + null_count * *domain.value_lo) / n;
      if (domain.value_hi) out.hi = (base + null_count * *domain.value_hi) / n;
      return out;
    }
    case AggFunc::kNone:
      return Status::InvalidArgument("kNone is not an aggregate");
  }
  return Status::Internal("unknown aggregate function");
}

}  // namespace incdb
