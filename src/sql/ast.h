// SQL abstract syntax for the supported subset:
//
//   SELECT [DISTINCT] cols FROM t1 [a1], t2 [a2], ... [WHERE cond]
//   [UNION SELECT ...]
//
// with conditions built from comparisons, AND/OR/NOT, [NOT] IN (subquery),
// EXISTS (subquery), and IS [NOT] NULL. Subqueries may be correlated. The
// engine uses set semantics (every SELECT behaves as SELECT DISTINCT; the
// keyword is accepted for familiarity).

#ifndef INCDB_SQL_AST_H_
#define INCDB_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/value.h"

namespace incdb {

/// A scalar operand: column reference or literal.
struct SqlOperand {
  enum class Kind { kColumn, kLiteral };
  Kind kind = Kind::kColumn;
  std::string table;   ///< alias qualifier; empty if unqualified
  std::string column;  ///< column name, for kColumn
  Value literal;       ///< for kLiteral

  static SqlOperand Column(std::string table, std::string column) {
    SqlOperand o;
    o.kind = Kind::kColumn;
    o.table = std::move(table);
    o.column = std::move(column);
    return o;
  }
  static SqlOperand Literal(Value v) {
    SqlOperand o;
    o.kind = Kind::kLiteral;
    o.literal = std::move(v);
    return o;
  }

  std::string ToString() const;
};

/// Aggregate functions. SQL semantics: all except COUNT(*) ignore NULL
/// inputs; aggregates over an empty set yield NULL (COUNT yields 0).
enum class AggFunc {
  kNone,       ///< plain column/literal select item
  kCountStar,  ///< COUNT(*)
  kCount,      ///< COUNT(col) — non-null values only
  kSum,
  kMin,
  kMax,
  kAvg,        ///< integer average (SUM/COUNT, truncating)
};
const char* AggFuncName(AggFunc f);

/// One item of a SELECT list: a bare operand or an aggregate over one.
struct SqlSelectItem {
  AggFunc agg = AggFunc::kNone;
  SqlOperand operand;  ///< unused for COUNT(*)

  static SqlSelectItem Plain(SqlOperand op) {
    SqlSelectItem item;
    item.operand = std::move(op);
    return item;
  }
  static SqlSelectItem Aggregate(AggFunc f, SqlOperand op) {
    SqlSelectItem item;
    item.agg = f;
    item.operand = std::move(op);
    return item;
  }

  bool is_aggregate() const { return agg != AggFunc::kNone; }
  std::string ToString() const;
};

struct SqlQuery;
using SqlQueryPtr = std::shared_ptr<SqlQuery>;

struct SqlCondition;
using SqlConditionPtr = std::shared_ptr<SqlCondition>;

/// Comparison operator reuse from the algebra layer.
enum class SqlCmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* SqlCmpOpSymbol(SqlCmpOp op);

/// A WHERE-clause condition node.
struct SqlCondition {
  enum class Kind {
    kTrue,
    kCmp,      ///< lhs op rhs
    kAnd,
    kOr,
    kNot,
    kIn,       ///< lhs [NOT] IN (subquery)
    kExists,   ///< EXISTS (subquery)
    kIsNull,   ///< operand IS [NOT] NULL
  };

  Kind kind = Kind::kTrue;
  SqlCmpOp op = SqlCmpOp::kEq;
  SqlOperand lhs;
  SqlOperand rhs;
  SqlConditionPtr left;
  SqlConditionPtr right;
  SqlQueryPtr subquery;
  bool negated = false;  ///< for kIn / kIsNull

  std::string ToString() const;
};

/// One table in the FROM clause.
struct SqlTableRef {
  std::string table;
  std::string alias;  ///< defaults to the table name

  std::string ToString() const;
};

/// A single SELECT block.
struct SqlSelect {
  bool distinct = false;
  bool select_star = false;
  std::vector<SqlSelectItem> items;  ///< empty iff select_star
  std::vector<SqlTableRef> from;
  SqlConditionPtr where;             ///< may be null (no WHERE)
  std::vector<SqlOperand> group_by;  ///< empty = no grouping

  /// True if any select item is an aggregate.
  bool HasAggregates() const;

  std::string ToString() const;
};

/// A query: one or more SELECT blocks joined by UNION.
struct SqlQuery {
  std::vector<SqlSelect> selects;

  std::string ToString() const;
};

}  // namespace incdb

#endif  // INCDB_SQL_AST_H_
