#include "sql/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace incdb {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  auto make = [&](TokenType t, size_t pos) {
    Token tok;
    tok.type = t;
    tok.position = pos;
    return tok;
  };
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      Token tok = make(IsSqlKeyword(upper) ? TokenType::kKeyword
                                           : TokenType::kIdentifier,
                       start);
      tok.text = IsSqlKeyword(upper) ? upper : word;
      out.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      Token tok = make(TokenType::kInteger, start);
      tok.int_value = std::stoll(sql.substr(i, j - i));
      out.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += sql[j];
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token tok = make(TokenType::kString, start);
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      i = j;
      continue;
    }
    switch (c) {
      case ',':
        out.push_back(make(TokenType::kComma, start));
        ++i;
        break;
      case '.':
        out.push_back(make(TokenType::kDot, start));
        ++i;
        break;
      case '(':
        out.push_back(make(TokenType::kLParen, start));
        ++i;
        break;
      case ')':
        out.push_back(make(TokenType::kRParen, start));
        ++i;
        break;
      case '*':
        out.push_back(make(TokenType::kStar, start));
        ++i;
        break;
      case '=':
        out.push_back(make(TokenType::kEq, start));
        ++i;
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back(make(TokenType::kNe, start));
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '>') {
          out.push_back(make(TokenType::kNe, start));
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back(make(TokenType::kLe, start));
          i += 2;
        } else {
          out.push_back(make(TokenType::kLt, start));
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back(make(TokenType::kGe, start));
          i += 2;
        } else {
          out.push_back(make(TokenType::kGt, start));
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  out.push_back(make(TokenType::kEof, n));
  return out;
}

}  // namespace incdb
