#include "ctables/ctable.h"

namespace incdb {

void CTable::AddRow(Tuple t, ConditionPtr c) {
  INCDB_CHECK_MSG(t.arity() == arity_, "c-table row arity mismatch");
  rows_.push_back(CTableRow{std::move(t), std::move(c)});
}

CTable CTable::FromRelation(const Relation& r) {
  CTable out(r.arity());
  for (const Tuple& t : r.tuples()) out.AddRow(t, Condition::True());
  return out;
}

size_t CTable::TotalConditionSize() const {
  size_t n = global_->Size();
  for (const CTableRow& row : rows_) n += row.condition->Size();
  return n;
}

std::set<NullId> CTable::Nulls() const {
  std::set<NullId> out;
  for (const CTableRow& row : rows_) {
    for (const Value& v : row.tuple.values()) {
      if (v.is_null()) out.insert(v.null_id());
    }
    row.condition->CollectNulls(&out);
  }
  global_->CollectNulls(&out);
  return out;
}

std::set<Value> CTable::Constants() const {
  std::set<Value> out;
  for (const CTableRow& row : rows_) {
    for (const Value& v : row.tuple.values()) {
      if (v.is_const()) out.insert(v);
    }
    row.condition->CollectConstants(&out);
  }
  global_->CollectConstants(&out);
  return out;
}

Relation CTable::ApplyValuation(const Valuation& v, bool* global_ok) const {
  const bool ok = global_->EvalUnder(v);
  if (global_ok != nullptr) *global_ok = ok;
  Relation out(arity_);
  if (!ok) return out;
  for (const CTableRow& row : rows_) {
    if (row.condition->EvalUnder(v)) out.Add(v.Apply(row.tuple));
  }
  return out;
}

CTable CTable::Simplified() const {
  CTable out(arity_);
  out.SetGlobalCondition(global_);
  for (const CTableRow& row : rows_) {
    if (IsSatisfiable(Condition::And(global_, row.condition))) {
      out.AddRow(row.tuple, row.condition);
    }
  }
  return out;
}

std::string CTable::ToString() const {
  std::string s = "{\n";
  for (const CTableRow& row : rows_) {
    s += "  " + row.tuple.ToString() + " if " + row.condition->ToString() +
         "\n";
  }
  s += "} global: " + global_->ToString();
  return s;
}

CTable* CDatabase::MutableTable(const std::string& name, size_t arity_hint) {
  auto it = tables_.find(name);
  if (it != tables_.end()) return &it->second;
  size_t arity = arity_hint;
  if (schema_.HasRelation(name)) {
    arity = *schema_.Arity(name);
  } else {
    (void)schema_.AddRelation(name, arity);
  }
  return &tables_.emplace(name, CTable(arity)).first->second;
}

const CTable& CDatabase::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second;
  static std::map<size_t, CTable>* empties = new std::map<size_t, CTable>;
  size_t arity = 0;
  if (schema_.HasRelation(name)) arity = *schema_.Arity(name);
  auto eit = empties->find(arity);
  if (eit == empties->end()) {
    eit = empties->emplace(arity, CTable(arity)).first;
  }
  return eit->second;
}

CDatabase CDatabase::FromDatabase(const Database& d) {
  CDatabase out(d.schema());
  for (const auto& [name, rel] : d.relations()) {
    *out.MutableTable(name, rel.arity()) = CTable::FromRelation(rel);
  }
  return out;
}

std::set<NullId> CDatabase::Nulls() const {
  std::set<NullId> out;
  for (const auto& [name, t] : tables_) {
    auto n = t.Nulls();
    out.insert(n.begin(), n.end());
  }
  return out;
}

std::set<Value> CDatabase::Constants() const {
  std::set<Value> out;
  for (const auto& [name, t] : tables_) {
    auto c = t.Constants();
    out.insert(c.begin(), c.end());
  }
  return out;
}

Status CDatabase::ForEachWorld(const std::vector<Value>& domain,
                               const std::function<bool(const Database&)>& fn,
                               uint64_t max_worlds) const {
  const std::set<NullId> null_set = Nulls();
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  if (!nulls.empty() && domain.empty()) {
    return Status::InvalidArgument("empty domain with nulls present");
  }

  uint64_t emitted = 0;
  auto emit = [&](const Valuation& v) -> bool {
    // Build the world; global conditions act as filters per table. A world
    // exists only if every table's global condition holds.
    Database world;
    for (const auto& [name, table] : tables_) {
      bool ok = true;
      Relation rel = table.ApplyValuation(v, &ok);
      if (!ok) return true;  // valuation excluded; continue enumeration
      *world.MutableRelation(name, table.arity()) = std::move(rel);
    }
    ++emitted;
    return fn(world);
  };

  if (nulls.empty()) {
    emit(Valuation());
    return Status::OK();
  }

  std::vector<size_t> idx(nulls.size(), 0);
  uint64_t visited = 0;
  for (;;) {
    Valuation v;
    for (size_t i = 0; i < nulls.size(); ++i) v.Bind(nulls[i], domain[idx[i]]);
    if (++visited > max_worlds) {
      return Status::ResourceExhausted("c-table world enumeration too large");
    }
    if (!emit(v)) return Status::OK();
    size_t pos = 0;
    while (pos < idx.size() && ++idx[pos] == domain.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == idx.size()) break;
  }
  return Status::OK();
}

std::string CDatabase::ToString() const {
  std::string s;
  for (const auto& [name, t] : tables_) {
    s += name + " = " + t.ToString() + "\n";
  }
  return s;
}

}  // namespace incdb
