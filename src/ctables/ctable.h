// Conditional tables (c-tables): tuples guarded by equality conditions plus
// a global condition (paper, Section 2).
//
//   ⟦T⟧_cwa = { { v(t_i) | v ⊨ c_i } : valuations v with v ⊨ c_global }
//
// C-tables are a *strong* representation system for full relational algebra
// under CWA [Imieliński & Lipski 1984]: the algebra over c-tables in
// ctable_algebra.h satisfies ⟦Q(T)⟧ = Q(⟦T⟧).

#ifndef INCDB_CTABLES_CTABLE_H_
#define INCDB_CTABLES_CTABLE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "ctables/condition.h"
#include "util/status.h"

namespace incdb {

/// One row of a c-table: a tuple and the condition under which it exists.
struct CTableRow {
  Tuple tuple;
  ConditionPtr condition;
};

/// A conditional table.
class CTable {
 public:
  explicit CTable(size_t arity = 0)
      : arity_(arity), global_(Condition::True()) {}

  size_t arity() const { return arity_; }
  const std::vector<CTableRow>& rows() const { return rows_; }
  const ConditionPtr& global_condition() const { return global_; }

  void AddRow(Tuple t, ConditionPtr c);
  void SetGlobalCondition(ConditionPtr c) { global_ = std::move(c); }

  /// Lifts a naïve table: every row gets condition true.
  static CTable FromRelation(const Relation& r);

  /// Total condition-AST size across rows and the global condition
  /// (complexity metric for bench E5).
  size_t TotalConditionSize() const;

  /// Nulls appearing in tuples or conditions.
  std::set<NullId> Nulls() const;
  /// Constants appearing in tuples or conditions.
  std::set<Value> Constants() const;

  /// The world selected by a total valuation v (v must bind all nulls and
  /// satisfy the global condition for the world to be meaningful; if
  /// v ⊭ global, returns nullopt semantics via `ok=false`).
  Relation ApplyValuation(const Valuation& v, bool* global_ok = nullptr) const;

  /// Drops rows with unsatisfiable conditions; folds a false global
  /// condition into an empty world-set marker (global stays false).
  CTable Simplified() const;

  std::string ToString() const;

 private:
  size_t arity_;
  std::vector<CTableRow> rows_;
  ConditionPtr global_;
};

/// A database of c-tables sharing one space of nulls.
class CDatabase {
 public:
  CDatabase() = default;
  explicit CDatabase(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  CTable* MutableTable(const std::string& name, size_t arity_hint = 0);
  const CTable& GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  const std::map<std::string, CTable>& tables() const { return tables_; }

  /// Lifts a naïve database (all conditions true).
  static CDatabase FromDatabase(const Database& d);

  /// Nulls across all tables and conditions.
  std::set<NullId> Nulls() const;
  /// Constants across all tables and conditions.
  std::set<Value> Constants() const;

  /// Enumerates the worlds ⟦·⟧_cwa over `domain` (each null takes each
  /// domain value). `fn` returning false stops enumeration.
  Status ForEachWorld(const std::vector<Value>& domain,
                      const std::function<bool(const Database&)>& fn,
                      uint64_t max_worlds = 50'000'000) const;

  std::string ToString() const;

 private:
  Schema schema_;
  std::map<std::string, CTable> tables_;
};

}  // namespace incdb

#endif  // INCDB_CTABLES_CTABLE_H_
