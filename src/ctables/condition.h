// Conditions for conditional tables: Boolean combinations of equalities
// x = y with x, y ∈ Const ∪ Null (paper, Section 2).
//
// Factories perform local constant folding (5 = 5 ↦ true, true ∧ c ↦ c, …)
// so condition trees stay as small as the algebra allows. Satisfiability
// over the *infinite* constant domain is decided exactly by enumerating
// assignments of the condition's nulls into its constants plus one fresh
// constant per null — enough fresh values to realize every equality type.

#ifndef INCDB_CTABLES_CONDITION_H_
#define INCDB_CTABLES_CONDITION_H_

#include <memory>
#include <set>
#include <string>

#include "core/valuation.h"

namespace incdb {

class Condition;
using ConditionPtr = std::shared_ptr<const Condition>;

/// Immutable condition AST node.
class Condition {
 public:
  enum class Kind { kTrue, kFalse, kEq, kAnd, kOr, kNot };

  Kind kind() const { return kind_; }
  const Value& lhs() const { return lhs_; }
  const Value& rhs() const { return rhs_; }
  const ConditionPtr& left() const { return left_; }
  const ConditionPtr& right() const { return right_; }

  bool IsTrue() const { return kind_ == Kind::kTrue; }
  bool IsFalse() const { return kind_ == Kind::kFalse; }

  /// Number of AST nodes (condition-complexity metric for bench E5).
  size_t Size() const;

  /// Nulls mentioned anywhere in the condition.
  void CollectNulls(std::set<NullId>* out) const;
  /// Constants mentioned anywhere in the condition.
  void CollectConstants(std::set<Value>* out) const;

  /// Evaluates under a valuation that binds every null of the condition.
  bool EvalUnder(const Valuation& v) const;

  std::string ToString() const;

  // Factories (with folding).
  static ConditionPtr True();
  static ConditionPtr False();
  static ConditionPtr Eq(Value a, Value b);
  static ConditionPtr Neq(Value a, Value b);
  static ConditionPtr And(ConditionPtr a, ConditionPtr b);
  static ConditionPtr Or(ConditionPtr a, ConditionPtr b);
  static ConditionPtr Not(ConditionPtr a);

 private:
  explicit Condition(Kind kind) : kind_(kind) {}

  Kind kind_;
  Value lhs_;
  Value rhs_;
  ConditionPtr left_;
  ConditionPtr right_;
};

/// Exact satisfiability over the infinite constant domain. Exponential in
/// the number of distinct nulls in the condition.
bool IsSatisfiable(const ConditionPtr& c);

/// Logical implication: a ⊨ b (every satisfying valuation of a satisfies b).
bool Implies(const ConditionPtr& a, const ConditionPtr& b);

/// Logical equivalence.
bool Equivalent(const ConditionPtr& a, const ConditionPtr& b);

}  // namespace incdb

#endif  // INCDB_CTABLES_CONDITION_H_
