// Hash-indexed kernels over conditional tables.
//
// The PR-1 engine kernels made the naïve evaluator sub-quadratic by hashing
// relations on their equi-join columns; these kernels do the same for the
// Imieliński–Lipski operators, conjoining row conditions instead of
// enumerating worlds. JoinCT fuses σ_{keys ∧ residual}(l × r): right rows
// are bucketed by their (constant) key values, a left row with constant
// keys probes only its bucket plus the null-keyed rows, and every skipped
// pair is exactly one whose key-equality condition would have folded to
// `false` — so the result is semantically identical to the unfused
// SelectCT(ProductCT(l, r)) pipeline, with conditions normalized through
// the shared ConditionNormalizer.
//
// The fused path is only taken for residual predicates inside the c-table
// condition language (no order comparisons, no IS NULL): that keeps error
// behavior identical to the unfused pipeline, which converts the predicate
// on every pair.

#ifndef INCDB_CTABLES_CTABLE_KERNELS_H_
#define INCDB_CTABLES_CTABLE_KERNELS_H_

#include "algebra/predicate.h"
#include "ctables/condition_norm.h"
#include "ctables/ctable.h"
#include "engine/kernels.h"
#include "engine/stats.h"

namespace incdb {

/// True when `pred` (possibly null = no residual) stays inside the c-table
/// condition language on every tuple: only =, ≠, TRUE/FALSE under AND/OR/
/// NOT. Order comparisons and IS NULL are excluded — even on constants —
/// so a fused join can never succeed where the unfused pipeline errors.
bool ResidualSafeForCTableJoin(const Predicate* pred);

/// Fused hash equi-join σ_{keys ∧ residual}(l × r) over c-tables. `keys`
/// and `residual` come from SplitForEquiJoin; `residual` may be null and
/// must satisfy ResidualSafeForCTableJoin. Row conditions are conjoined
/// and normalized via `norm` (required); rows whose condition normalizes
/// to `false` are dropped. Probes counted = candidate pairs visited.
Result<CTable> JoinCT(const CTable& l, const CTable& r,
                      const std::vector<JoinKey>& keys,
                      const PredicatePtr& residual, ConditionNormalizer* norm,
                      EvalStats* stats = nullptr);

}  // namespace incdb

#endif  // INCDB_CTABLES_CTABLE_KERNELS_H_
