#include "ctables/cio.h"

#include <cctype>
#include <vector>

#include "util/strings.h"

namespace incdb {
namespace {

// Value rendering, identical to core/io.cc's dump syntax.
void AppendValue(const Value& v, std::string* out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      *out += "_" + std::to_string(v.null_id());
      return;
    case Value::Kind::kInt:
      *out += std::to_string(v.as_int());
      return;
    case Value::Kind::kString: {
      *out += '\'';
      for (char c : v.as_str()) {
        *out += c;
        if (c == '\'') *out += '\'';  // '' escape
      }
      *out += '\'';
      return;
    }
  }
}

Result<Value> ParseValueToken(const std::string& tok, size_t lineno) {
  const std::string where = " on line " + std::to_string(lineno);
  if (tok.empty()) return Status::ParseError("empty value" + where);
  if (tok[0] == '_') {
    const std::string digits = tok.substr(1);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return Status::ParseError("bad null id '" + tok + "'" + where);
    }
    return Value::Null(static_cast<NullId>(std::stoul(digits)));
  }
  if (tok.front() == '\'') {
    if (tok.size() < 2 || tok.back() != '\'') {
      return Status::ParseError("bad string literal" + where);
    }
    std::string s;
    for (size_t i = 1; i + 1 < tok.size(); ++i) {
      if (tok[i] == '\'') {
        if (i + 2 >= tok.size() || tok[i + 1] != '\'') {
          return Status::ParseError("bad quote escape" + where);
        }
        s += '\'';
        ++i;
        continue;
      }
      s += tok[i];
    }
    return Value::Str(std::move(s));
  }
  const size_t start = tok[0] == '-' ? 1 : 0;
  if (start == tok.size() ||
      tok.find_first_not_of("0123456789", start) != std::string::npos) {
    return Status::ParseError("bad value '" + tok + "'" + where);
  }
  return Value::Int(std::stoll(tok));
}

// ---- Condition parsing (the Condition::ToString() grammar) ----
//
// Tokens remember their 1-based column so parse errors can point at the
// offending token: "expected ')' in condition on line 4, column 12 (at
// 'foo')". `col_offset` shifts the columns when the condition text is a
// suffix of a longer line (a `global` header or a row's `:: cond` tail).

struct CondToken {
  std::string text;
  size_t col = 1;  // 1-based, within the condition text
};

struct CondParser {
  std::vector<CondToken> tokens;
  size_t pos = 0;
  size_t lineno;
  size_t col_offset;

  CondParser(size_t line, size_t col_offset)
      : lineno(line), col_offset(col_offset) {}

  std::string Where(size_t col) const {
    return " on line " + std::to_string(lineno) + ", column " +
           std::to_string(col_offset + col);
  }

  // Location of the current token (or of the end of the condition).
  std::string At() const {
    if (AtEnd()) {
      const size_t end = tokens.empty()
                             ? 1
                             : tokens.back().col + tokens.back().text.size();
      return Where(end) + " (at end of condition)";
    }
    return Where(tokens[pos].col) + " (at '" + tokens[pos].text + "')";
  }

  Status Tokenize(const std::string& text) {
    std::string cur;
    size_t cur_col = 1;
    bool in_quote = false;
    size_t quote_col = 1;
    auto flush = [&]() {
      if (!cur.empty()) {
        tokens.push_back({cur, cur_col});
        cur.clear();
      }
    };
    for (size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '\'') {
        if (!in_quote) quote_col = i + 1;
        in_quote = !in_quote;
        if (cur.empty()) cur_col = i + 1;
        cur += c;
        continue;
      }
      if (in_quote) {
        cur += c;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        flush();
        continue;
      }
      if (c == '(' || c == ')' || c == '~' || c == '&' || c == '|' ||
          c == '=') {
        flush();
        tokens.push_back({std::string(1, c), i + 1});
        continue;
      }
      if (cur.empty()) cur_col = i + 1;
      cur += c;
    }
    if (in_quote) {
      return Status::ParseError("unterminated string" + Where(quote_col));
    }
    flush();
    return Status::OK();
  }

  bool AtEnd() const { return pos >= tokens.size(); }
  const std::string& Peek() const { return tokens[pos].text; }

  Status Expect(const std::string& tok) {
    if (AtEnd() || tokens[pos].text != tok) {
      return Status::ParseError("expected '" + tok + "' in condition" + At());
    }
    ++pos;
    return Status::OK();
  }

  Result<ConditionPtr> ParseCond() {
    if (AtEnd()) return Status::ParseError("empty condition" + At());
    const std::string tok = tokens[pos].text;
    if (tok == "true") {
      ++pos;
      return Condition::True();
    }
    if (tok == "false") {
      ++pos;
      return Condition::False();
    }
    if (tok == "~") {
      ++pos;
      INCDB_RETURN_IF_ERROR(Expect("("));
      INCDB_ASSIGN_OR_RETURN(ConditionPtr inner, ParseCond());
      INCDB_RETURN_IF_ERROR(Expect(")"));
      return Condition::Not(std::move(inner));
    }
    if (tok == "(") {
      ++pos;
      INCDB_ASSIGN_OR_RETURN(ConditionPtr left, ParseCond());
      if (!AtEnd() && (Peek() == "&" || Peek() == "|")) {
        const bool is_and = Peek() == "&";
        ++pos;
        INCDB_ASSIGN_OR_RETURN(ConditionPtr right, ParseCond());
        INCDB_RETURN_IF_ERROR(Expect(")"));
        return is_and ? Condition::And(std::move(left), std::move(right))
                      : Condition::Or(std::move(left), std::move(right));
      }
      INCDB_RETURN_IF_ERROR(Expect(")"));
      return left;
    }
    // Equality: value = value.
    Result<Value> lhs = ParseValueToken(tok, lineno);
    if (!lhs.ok()) return Status::ParseError(ValueError(lhs.status()));
    ++pos;
    INCDB_RETURN_IF_ERROR(Expect("="));
    if (AtEnd()) return Status::ParseError("dangling '='" + At());
    Result<Value> rhs = ParseValueToken(tokens[pos].text, lineno);
    if (!rhs.ok()) return Status::ParseError(ValueError(rhs.status()));
    ++pos;
    return Condition::Eq(*std::move(lhs), *std::move(rhs));
  }

  // Re-anchors a ParseValueToken error (line-only) at the current token.
  std::string ValueError(const Status& st) const {
    const std::string msg = st.message();
    const size_t cut = msg.rfind(" on line ");
    return (cut == std::string::npos ? msg : msg.substr(0, cut)) + At();
  }
};

Result<ConditionPtr> ParseConditionLine(const std::string& text, size_t lineno,
                                        size_t col_offset = 0) {
  CondParser p(lineno, col_offset);
  INCDB_RETURN_IF_ERROR(p.Tokenize(text));
  INCDB_ASSIGN_OR_RETURN(ConditionPtr c, p.ParseCond());
  if (!p.AtEnd()) {
    return Status::ParseError("trailing tokens after condition" + p.At());
  }
  return c;
}

// Splits a row line at the first `::` outside quotes. Returns the condition
// part (empty if none) and truncates `line` to the tuple part. `*cond_col`
// receives the 0-based offset of the condition within the original line, so
// condition parse errors can report columns in line coordinates.
std::string SplitConditionSuffix(std::string* line, size_t* cond_col) {
  bool in_quote = false;
  for (size_t i = 0; i + 1 < line->size(); ++i) {
    const char c = (*line)[i];
    if (c == '\'') in_quote = !in_quote;
    if (!in_quote && c == ':' && (*line)[i + 1] == ':') {
      const std::string rest = line->substr(i + 2);
      const size_t lead = rest.find_first_not_of(" \t");
      *cond_col = i + 2 + (lead == std::string::npos ? 0 : lead);
      std::string cond = Trim(rest);
      *line = Trim(line->substr(0, i));
      return cond;
    }
  }
  return "";
}

Result<std::vector<Value>> ParseRowValues(const std::string& line,
                                          size_t arity, size_t lineno) {
  std::vector<std::string> toks;
  std::string cur;
  bool in_quote = false;
  for (char c : line) {
    if (c == '\'') {
      in_quote = !in_quote;
      cur += c;
      continue;
    }
    if (c == ',' && !in_quote) {
      toks.push_back(Trim(cur));
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (in_quote) {
    return Status::ParseError("unterminated string on line " +
                              std::to_string(lineno));
  }
  toks.push_back(Trim(cur));
  if (toks.size() != arity) {
    return Status::ParseError("expected " + std::to_string(arity) +
                              " values on line " + std::to_string(lineno) +
                              ", got " + std::to_string(toks.size()));
  }
  std::vector<Value> vals;
  vals.reserve(toks.size());
  for (const std::string& tok : toks) {
    INCDB_ASSIGN_OR_RETURN(Value v, ParseValueToken(tok, lineno));
    vals.push_back(std::move(v));
  }
  return vals;
}

}  // namespace

Result<ConditionPtr> ParseCondition(const std::string& text) {
  return ParseConditionLine(text, 1);
}

std::string DumpCDatabase(const CDatabase& db) {
  std::string out = "# incdb c-table dump\n";
  for (const auto& [name, table] : db.tables()) {
    out += "ctable " + name + "(";
    auto decl = db.schema().Decl(name);
    if (decl.ok() && !(*decl)->attributes.empty()) {
      out += Join((*decl)->attributes, ", ");
    } else {
      std::vector<std::string> cols;
      for (size_t i = 0; i < table.arity(); ++i) {
        cols.push_back("c" + std::to_string(i));
      }
      out += Join(cols, ", ");
    }
    out += ")\n";
    if (!table.global_condition()->IsTrue()) {
      out += "global " + table.global_condition()->ToString() + "\n";
    }
    for (const CTableRow& row : table.rows()) {
      std::string line;
      for (size_t i = 0; i < row.tuple.arity(); ++i) {
        if (i > 0) line += ", ";
        AppendValue(row.tuple[i], &line);
      }
      if (!row.condition->IsTrue()) {
        line += " :: " + row.condition->ToString();
      }
      out += line + "\n";
    }
    out += "\n";
  }
  return out;
}

Result<CDatabase> LoadCDatabase(const std::string& text) {
  CDatabase db;
  CTable* current = nullptr;
  bool saw_row = false;
  size_t lineno = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++lineno;
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("ctable ", 0) == 0) {
      const size_t paren = line.find('(');
      const size_t close = line.rfind(')');
      if (paren == std::string::npos || close == std::string::npos ||
          close < paren) {
        return Status::ParseError("bad ctable header on line " +
                                  std::to_string(lineno));
      }
      const std::string name = Trim(line.substr(7, paren - 7));
      if (name.empty()) {
        return Status::ParseError("missing ctable name on line " +
                                  std::to_string(lineno));
      }
      if (db.schema().HasRelation(name)) {
        return Status::ParseError("duplicate ctable '" + name + "' on line " +
                                  std::to_string(lineno));
      }
      std::vector<std::string> attrs;
      for (const std::string& a :
           Split(line.substr(paren + 1, close - paren - 1), ',')) {
        const std::string t = Trim(a);
        if (!t.empty()) attrs.push_back(t);
      }
      // Register the schema first so attribute names survive the round-trip.
      INCDB_RETURN_IF_ERROR(db.mutable_schema()->AddRelation(name, attrs));
      current = db.MutableTable(name, attrs.size());
      saw_row = false;
      continue;
    }
    if (current == nullptr) {
      return Status::ParseError("data before any ctable header on line " +
                                std::to_string(lineno));
    }
    if (line.rfind("global ", 0) == 0 || line == "global") {
      if (saw_row) {
        return Status::ParseError("global condition after rows on line " +
                                  std::to_string(lineno));
      }
      const std::string rest = line.size() > 6 ? line.substr(6) : "";
      const size_t lead = rest.find_first_not_of(" \t");
      INCDB_ASSIGN_OR_RETURN(
          ConditionPtr g,
          ParseConditionLine(Trim(rest), lineno,
                             6 + (lead == std::string::npos ? 0 : lead)));
      current->SetGlobalCondition(std::move(g));
      continue;
    }
    size_t cond_col = 0;
    const std::string cond_text = SplitConditionSuffix(&line, &cond_col);
    INCDB_ASSIGN_OR_RETURN(std::vector<Value> vals,
                           ParseRowValues(line, current->arity(), lineno));
    ConditionPtr cond = Condition::True();
    if (!cond_text.empty()) {
      INCDB_ASSIGN_OR_RETURN(cond,
                             ParseConditionLine(cond_text, lineno, cond_col));
    }
    current->AddRow(Tuple(std::move(vals)), std::move(cond));
    saw_row = true;
  }
  return db;
}

}  // namespace incdb
