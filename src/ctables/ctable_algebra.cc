#include "ctables/ctable_algebra.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "algebra/classify.h"
#include "algebra/optimize.h"
#include "ctables/ctable_kernels.h"

namespace incdb {
namespace {

// Right-side rows of a diff/intersect, bucketed so a complete (null-free)
// left tuple only visits the rows that can contribute a non-identity
// condition: the bucket holding its exact tuple, plus every null-carrying
// row. Candidates are replayed in original row order so the built condition
// chains are structurally identical to the full nested loop.
class RowIndex {
 public:
  explicit RowIndex(const CTable& r) {
    const auto& rows = r.rows();
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].tuple.HasNull()) {
        null_rows_.push_back(i);
      } else {
        complete_[rows[i].tuple].push_back(i);
      }
    }
  }

  // Row indices relevant for left tuple `t`, in increasing order.
  std::vector<size_t> CandidatesFor(const Tuple& t) const {
    static const std::vector<size_t> kNone;
    const std::vector<size_t>* exact = &kNone;
    auto it = complete_.find(t);
    if (it != complete_.end()) exact = &it->second;
    std::vector<size_t> out;
    out.reserve(exact->size() + null_rows_.size());
    std::merge(exact->begin(), exact->end(), null_rows_.begin(),
               null_rows_.end(), std::back_inserter(out));
    return out;
  }

 private:
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> complete_;
  std::vector<size_t> null_rows_;
};

}  // namespace

ConditionPtr TuplesEqualCondition(const Tuple& t, const Tuple& s) {
  INCDB_CHECK(t.arity() == s.arity());
  ConditionPtr acc = Condition::True();
  for (size_t i = 0; i < t.arity(); ++i) {
    acc = Condition::And(acc, Condition::Eq(t[i], s[i]));
  }
  return acc;
}

Result<ConditionPtr> PredicateToCondition(const PredicatePtr& pred,
                                          const Tuple& t) {
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
      return Condition::True();
    case Predicate::Kind::kFalse:
      return Condition::False();
    case Predicate::Kind::kCmp: {
      const Value& a = pred->lhs().Resolve(t);
      const Value& b = pred->rhs().Resolve(t);
      switch (pred->op()) {
        case CmpOp::kEq:
          return Condition::Eq(a, b);
        case CmpOp::kNe:
          return Condition::Neq(a, b);
        default: {
          if (a.is_const() && b.is_const()) {
            const bool holds = [&] {
              switch (pred->op()) {
                case CmpOp::kLt:
                  return a < b;
                case CmpOp::kLe:
                  return a <= b;
                case CmpOp::kGt:
                  return a > b;
                case CmpOp::kGe:
                  return a >= b;
                default:
                  return false;
              }
            }();
            return holds ? Condition::True() : Condition::False();
          }
          return Status::Unsupported(
              "order comparison on nulls is outside the c-table condition "
              "language: " +
              pred->ToString());
        }
      }
    }
    case Predicate::Kind::kIsNull:
      return Status::Unsupported(
          "IS NULL is not world-invariant and cannot appear in c-table "
          "conditions");
    case Predicate::Kind::kAnd: {
      INCDB_ASSIGN_OR_RETURN(ConditionPtr a,
                             PredicateToCondition(pred->left(), t));
      INCDB_ASSIGN_OR_RETURN(ConditionPtr b,
                             PredicateToCondition(pred->right(), t));
      return Condition::And(std::move(a), std::move(b));
    }
    case Predicate::Kind::kOr: {
      INCDB_ASSIGN_OR_RETURN(ConditionPtr a,
                             PredicateToCondition(pred->left(), t));
      INCDB_ASSIGN_OR_RETURN(ConditionPtr b,
                             PredicateToCondition(pred->right(), t));
      return Condition::Or(std::move(a), std::move(b));
    }
    case Predicate::Kind::kNot: {
      INCDB_ASSIGN_OR_RETURN(ConditionPtr a,
                             PredicateToCondition(pred->left(), t));
      return Condition::Not(std::move(a));
    }
  }
  return Status::Internal("unknown predicate kind");
}

Result<CTable> SelectCT(const PredicatePtr& pred, const CTable& in,
                        ConditionNormalizer* norm) {
  CTable out(in.arity());
  out.SetGlobalCondition(in.global_condition());
  for (const CTableRow& row : in.rows()) {
    INCDB_ASSIGN_OR_RETURN(ConditionPtr c, PredicateToCondition(pred, row.tuple));
    ConditionPtr combined = Condition::And(row.condition, std::move(c));
    if (norm != nullptr) combined = norm->Normalize(combined);
    if (!combined->IsFalse()) out.AddRow(row.tuple, std::move(combined));
  }
  return out;
}

CTable ProjectCT(const std::vector<size_t>& cols, const CTable& in) {
  CTable out(cols.size());
  out.SetGlobalCondition(in.global_condition());
  for (const CTableRow& row : in.rows()) {
    out.AddRow(row.tuple.Project(cols), row.condition);
  }
  return out;
}

CTable ProductCT(const CTable& l, const CTable& r, EvalStats* stats,
                 ConditionNormalizer* norm) {
  OpScope scope(stats, EvalOp::kCTableProduct);
  CTable out(l.arity() + r.arity());
  ConditionPtr global =
      Condition::And(l.global_condition(), r.global_condition());
  if (norm != nullptr) global = norm->Normalize(global);
  out.SetGlobalCondition(std::move(global));
  for (const CTableRow& a : l.rows()) {
    for (const CTableRow& b : r.rows()) {
      ConditionPtr c = Condition::And(a.condition, b.condition);
      if (norm != nullptr) c = norm->Normalize(c);
      if (!c->IsFalse()) out.AddRow(a.tuple.Concat(b.tuple), std::move(c));
    }
  }
  scope.CountIn(l.rows().size() + r.rows().size());
  scope.CountOut(out.rows().size());
  return out;
}

Result<CTable> UnionCT(const CTable& l, const CTable& r,
                       ConditionNormalizer* norm) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("c-table union arity mismatch");
  }
  CTable out(l.arity());
  ConditionPtr global =
      Condition::And(l.global_condition(), r.global_condition());
  if (norm != nullptr) global = norm->Normalize(global);
  out.SetGlobalCondition(std::move(global));
  for (const CTableRow& row : l.rows()) out.AddRow(row.tuple, row.condition);
  for (const CTableRow& row : r.rows()) out.AddRow(row.tuple, row.condition);
  return out;
}

Result<CTable> DiffCT(const CTable& l, const CTable& r, EvalStats* stats,
                      ConditionNormalizer* norm) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("c-table difference arity mismatch");
  }
  OpScope scope(stats, EvalOp::kCTableDiff);
  CTable out(l.arity());
  ConditionPtr global =
      Condition::And(l.global_condition(), r.global_condition());
  if (norm != nullptr) global = norm->Normalize(global);
  out.SetGlobalCondition(std::move(global));
  const RowIndex index(r);
  uint64_t probes = 0;
  for (const CTableRow& a : l.rows()) {
    ConditionPtr c = a.condition;
    auto fold = [&](const CTableRow& b) {
      // a survives only if b is absent or differs from a.
      c = Condition::And(
          c, Condition::Not(Condition::And(
                 b.condition, TuplesEqualCondition(a.tuple, b.tuple))));
      return !c->IsFalse();
    };
    if (a.tuple.HasNull()) {
      for (const CTableRow& b : r.rows()) {
        ++probes;
        if (!fold(b)) break;
      }
    } else {
      for (size_t i : index.CandidatesFor(a.tuple)) {
        ++probes;
        if (!fold(r.rows()[i])) break;
      }
    }
    if (norm != nullptr) c = norm->Normalize(c);
    if (!c->IsFalse()) out.AddRow(a.tuple, std::move(c));
  }
  scope.CountIn(l.rows().size() + r.rows().size());
  scope.CountProbes(probes);
  scope.CountOut(out.rows().size());
  return out;
}

Result<CTable> IntersectCT(const CTable& l, const CTable& r, EvalStats* stats,
                           ConditionNormalizer* norm) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("c-table intersection arity mismatch");
  }
  OpScope scope(stats, EvalOp::kCTableIntersect);
  CTable out(l.arity());
  ConditionPtr global =
      Condition::And(l.global_condition(), r.global_condition());
  if (norm != nullptr) global = norm->Normalize(global);
  out.SetGlobalCondition(std::move(global));
  const RowIndex index(r);
  uint64_t probes = 0;
  for (const CTableRow& a : l.rows()) {
    ConditionPtr any = Condition::False();
    auto fold = [&](const CTableRow& b) {
      any = Condition::Or(
          any, Condition::And(b.condition,
                              TuplesEqualCondition(a.tuple, b.tuple)));
      return !any->IsTrue();
    };
    if (a.tuple.HasNull()) {
      for (const CTableRow& b : r.rows()) {
        ++probes;
        if (!fold(b)) break;
      }
    } else {
      for (size_t i : index.CandidatesFor(a.tuple)) {
        ++probes;
        if (!fold(r.rows()[i])) break;
      }
    }
    ConditionPtr c = Condition::And(a.condition, std::move(any));
    if (norm != nullptr) c = norm->Normalize(c);
    if (!c->IsFalse()) out.AddRow(a.tuple, std::move(c));
  }
  scope.CountIn(l.rows().size() + r.rows().size());
  scope.CountProbes(probes);
  scope.CountOut(out.rows().size());
  return out;
}

namespace {

// Shared evaluator body. `norm == nullptr` is the legacy un-normalized
// pipeline (the reference semantics the normalizing path is tested
// against); with a normalizer the σ-over-× peephole may run the fused hash
// equi-join kernel.
Result<CTable> EvalCT(const RAExprPtr& e, const CDatabase& db,
                      const EvalOptions& options, ConditionNormalizer* norm) {
  EvalStats* stats = options.stats;
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());
  const RAExprPtr expanded = RAExpr::ExpandDivision(e, db.schema());

  std::function<Result<CTable>(const RAExprPtr&)> rec =
      [&](const RAExprPtr& e) -> Result<CTable> {
    switch (e->kind()) {
      case RAExpr::Kind::kScan:
        return db.GetTable(e->relation_name());
      case RAExpr::Kind::kConstRel:
        return CTable::FromRelation(e->literal());
      case RAExpr::Kind::kSelect: {
        if (norm != nullptr && options.use_hash_kernels &&
            e->left()->kind() == RAExpr::Kind::kProduct) {
          INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()->left()));
          INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->left()->right()));
          const JoinSplit split =
              SplitForEquiJoin(e->predicate(), l.arity());
          if (!split.keys.empty() &&
              ResidualSafeForCTableJoin(split.residual.get())) {
            return JoinCT(l, r, split.keys, split.residual, norm, stats);
          }
          CTable prod = ProductCT(l, r, stats, norm);
          return SelectCT(e->predicate(), prod, norm);
        }
        INCDB_ASSIGN_OR_RETURN(CTable in, rec(e->left()));
        return SelectCT(e->predicate(), in, norm);
      }
      case RAExpr::Kind::kProject: {
        INCDB_ASSIGN_OR_RETURN(CTable in, rec(e->left()));
        return ProjectCT(e->columns(), in);
      }
      case RAExpr::Kind::kProduct: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return ProductCT(l, r, stats, norm);
      }
      case RAExpr::Kind::kUnion: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return UnionCT(l, r, norm);
      }
      case RAExpr::Kind::kDiff: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return DiffCT(l, r, stats, norm);
      }
      case RAExpr::Kind::kIntersect: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return IntersectCT(l, r, stats, norm);
      }
      case RAExpr::Kind::kDivide:
        return Status::Internal("division should have been expanded");
      case RAExpr::Kind::kDelta: {
        CTable out(2);
        std::set<Value> adom = db.Constants();
        for (NullId id : db.Nulls()) adom.insert(Value::Null(id));
        for (const Value& v : adom) {
          out.AddRow(Tuple{v, v}, Condition::True());
        }
        return out;
      }
    }
    return Status::Internal("unknown RA node kind");
  };
  return rec(expanded);
}

}  // namespace

Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db,
                             const EvalOptions& options) {
  return EvalCT(e, db, options, nullptr);
}

Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db) {
  return EvalOnCTables(e, db, EvalOptions{});
}

Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db,
                             const EvalOptions& options,
                             ConditionNormalizer* norm) {
  INCDB_CHECK(norm != nullptr);
  return EvalCT(e, db, options, norm);
}

ConditionPtr TupleMembershipCondition(const CTable& t, const Tuple& cand) {
  ConditionPtr dt = Condition::False();
  for (const CTableRow& row : t.rows()) {
    dt = Condition::Or(
        std::move(dt),
        Condition::And(row.condition, TuplesEqualCondition(row.tuple, cand)));
  }
  return dt;
}

Result<Relation> CertainAnswersFromCTable(const CTable& t,
                                          const std::vector<Value>& domain,
                                          ConditionNormalizer* norm,
                                          uint64_t budget, EvalStats* stats) {
  OpScope scope(stats, EvalOp::kCTableExtract);
  scope.CountIn(t.rows().size());
  const ConditionPtr global = norm->Normalize(t.global_condition());

  const std::set<NullId> nulls = t.Nulls();
  if (!nulls.empty() && domain.empty()) {
    // No domain values to instantiate the nulls: the represented world set
    // is empty, exactly as enumeration would find (0 worlds → empty ⋂).
    return Relation(t.arity());
  }

  // One witness valuation of the global condition. Every certain tuple is
  // in every world, so the witness world's tuples are an exact candidate
  // superset — |rows| candidates instead of |domain|^#nulls worlds.
  Valuation v0;
  INCDB_ASSIGN_OR_RETURN(
      bool global_sat, SatisfiableOverDomain(global, domain, norm, budget, &v0));
  if (!global_sat) {
    return Status::InvalidArgument(
        "c-table global condition is unsatisfiable over the domain: the "
        "represented world set is empty");
  }
  for (NullId id : nulls) {
    if (!v0.IsBound(id)) v0.Bind(id, domain[0]);
  }
  bool global_ok = false;
  const Relation world0 = t.ApplyValuation(v0, &global_ok);
  INCDB_CHECK(global_ok);

  // Bucket rows by ground tuple so each candidate's disjunction D_t only
  // collects its exact-match rows plus the null-carrying rows.
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> ground;
  std::vector<size_t> null_rows;
  const auto& rows = t.rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].tuple.HasNull()) {
      null_rows.push_back(i);
    } else {
      ground[rows[i].tuple].push_back(i);
    }
  }

  uint64_t sat_checks = 0;
  Relation out(t.arity());
  for (const Tuple& cand : world0.tuples()) {
    // D_t = ⋁_rows (cond_r ∧ "tuple_r = cand"); cand is certain iff
    // global ∧ ¬D_t has no satisfying valuation over the domain.
    ConditionPtr dt = Condition::False();
    bool fast_true = false;
    const auto it = ground.find(cand);
    if (it != ground.end()) {
      for (size_t i : it->second) {
        ConditionPtr c = norm->Normalize(rows[i].condition);
        if (c->IsTrue()) {
          // An unconditional row carrying cand: present in every world.
          fast_true = true;
          break;
        }
        dt = Condition::Or(std::move(dt), std::move(c));
      }
    }
    if (fast_true) {
      out.Add(cand);
      continue;
    }
    for (size_t i : null_rows) {
      dt = Condition::Or(
          std::move(dt),
          Condition::And(rows[i].condition,
                         TuplesEqualCondition(rows[i].tuple, cand)));
    }
    ++sat_checks;
    INCDB_ASSIGN_OR_RETURN(
        bool escapes,
        SatisfiableOverDomain(
            Condition::And(global, Condition::Not(std::move(dt))), domain,
            norm, budget));
    if (!escapes) out.Add(cand);
  }
  scope.CountProbes(sat_checks);
  scope.CountOut(out.size());
  return out;
}

Result<Relation> PossibleAnswersFromCTable(const CTable& t,
                                           const std::vector<Value>& domain,
                                           ConditionNormalizer* norm,
                                           uint64_t budget, EvalStats* stats) {
  OpScope scope(stats, EvalOp::kCTableExtract);
  scope.CountIn(t.rows().size());
  const ConditionPtr global = norm->Normalize(t.global_condition());
  Relation out(t.arity());
  uint64_t sat_checks = 0;

  for (const CTableRow& row : t.rows()) {
    ConditionPtr base = norm->Normalize(
        Condition::And(global, row.condition));
    if (base->IsFalse()) continue;

    // Distinct nulls of the tuple, in order of appearance.
    std::vector<NullId> tuple_nulls;
    for (size_t i = 0; i < row.tuple.arity(); ++i) {
      const Value& v = row.tuple[i];
      if (v.is_null() &&
          std::find(tuple_nulls.begin(), tuple_nulls.end(), v.null_id()) ==
              tuple_nulls.end()) {
        tuple_nulls.push_back(v.null_id());
      }
    }
    if (!tuple_nulls.empty() && domain.empty()) continue;  // no worlds

    // DFS over groundings of the tuple's nulls; each branch substitutes
    // into the condition and prunes as soon as it normalizes to false. At
    // a leaf the remaining (non-tuple) nulls are checked for a satisfying
    // valuation — the leaf's grounding extends to a world iff one exists.
    Valuation binding;
    std::function<Result<bool>(size_t, const ConditionPtr&)> dfs =
        [&](size_t depth, const ConditionPtr& cond) -> Result<bool> {
      if (cond->IsFalse()) return true;
      if (depth == tuple_nulls.size()) {
        ++sat_checks;
        INCDB_ASSIGN_OR_RETURN(
            bool sat, SatisfiableOverDomain(cond, domain, norm, budget));
        if (sat) out.Add(binding.Apply(row.tuple));
        return true;
      }
      const NullId id = tuple_nulls[depth];
      for (const Value& v : domain) {
        binding.Bind(id, v);
        ConditionPtr sub =
            norm->Normalize(ConditionNormalizer::Substitute(cond, id, v));
        INCDB_RETURN_IF_ERROR(dfs(depth + 1, sub).status());
      }
      binding.Unbind(id);
      return true;
    };
    INCDB_RETURN_IF_ERROR(dfs(0, base).status());
  }
  scope.CountProbes(sat_checks);
  scope.CountOut(out.size());
  return out;
}

Result<Relation> CertainAnswersCTable(const RAExprPtr& e, const Database& db,
                                      WorldSemantics semantics,
                                      const WorldEnumOptions& opts,
                                      const EvalOptions& options) {
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());
  if (semantics == WorldSemantics::kOpenWorld ||
      semantics == WorldSemantics::kWeakClosedWorld) {
    // Same soundness guard as CertainAnswersEnum: only for monotone queries
    // does the CWA intersection equal the OWA/WCWA one.
    if (!IsPositive(e)) {
      return Status::Unsupported(
          "certain answers under owa/wcwa via c-tables require a positive "
          "(monotone) query; got " +
          std::string(QueryClassName(Classify(e))));
    }
  }
  RAExprPtr plan = e;
  if (options.optimize) plan = Optimize(plan, db);
  const CDatabase cdb = CDatabase::FromDatabase(db);
  ConditionNormalizer norm;
  INCDB_ASSIGN_OR_RETURN(CTable result,
                         EvalOnCTables(plan, cdb, options, &norm));
  auto answers = CertainAnswersFromCTable(result, WorldDomain(db, opts),
                                          &norm, opts.max_worlds,
                                          options.stats);
  if (options.stats != nullptr) {
    options.stats->CountCondSimplified(norm.simplified());
    options.stats->CountUnsatPruned(norm.unsat_pruned());
  }
  return answers;
}

Result<Relation> PossibleAnswersCTable(const RAExprPtr& e, const Database& db,
                                       const WorldEnumOptions& opts,
                                       const EvalOptions& options) {
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());
  RAExprPtr plan = e;
  if (options.optimize) plan = Optimize(plan, db);
  const CDatabase cdb = CDatabase::FromDatabase(db);
  ConditionNormalizer norm;
  INCDB_ASSIGN_OR_RETURN(CTable result,
                         EvalOnCTables(plan, cdb, options, &norm));
  auto answers = PossibleAnswersFromCTable(result, WorldDomain(db, opts),
                                           &norm, opts.max_worlds,
                                           options.stats);
  if (options.stats != nullptr) {
    options.stats->CountCondSimplified(norm.simplified());
    options.stats->CountUnsatPruned(norm.unsat_pruned());
  }
  return answers;
}

}  // namespace incdb
