#include "ctables/ctable_algebra.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

namespace incdb {
namespace {

// Right-side rows of a diff/intersect, bucketed so a complete (null-free)
// left tuple only visits the rows that can contribute a non-identity
// condition: the bucket holding its exact tuple, plus every null-carrying
// row. Candidates are replayed in original row order so the built condition
// chains are structurally identical to the full nested loop.
class RowIndex {
 public:
  explicit RowIndex(const CTable& r) {
    const auto& rows = r.rows();
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].tuple.HasNull()) {
        null_rows_.push_back(i);
      } else {
        complete_[rows[i].tuple].push_back(i);
      }
    }
  }

  // Row indices relevant for left tuple `t`, in increasing order.
  std::vector<size_t> CandidatesFor(const Tuple& t) const {
    static const std::vector<size_t> kNone;
    const std::vector<size_t>* exact = &kNone;
    auto it = complete_.find(t);
    if (it != complete_.end()) exact = &it->second;
    std::vector<size_t> out;
    out.reserve(exact->size() + null_rows_.size());
    std::merge(exact->begin(), exact->end(), null_rows_.begin(),
               null_rows_.end(), std::back_inserter(out));
    return out;
  }

 private:
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> complete_;
  std::vector<size_t> null_rows_;
};

}  // namespace

ConditionPtr TuplesEqualCondition(const Tuple& t, const Tuple& s) {
  INCDB_CHECK(t.arity() == s.arity());
  ConditionPtr acc = Condition::True();
  for (size_t i = 0; i < t.arity(); ++i) {
    acc = Condition::And(acc, Condition::Eq(t[i], s[i]));
  }
  return acc;
}

Result<ConditionPtr> PredicateToCondition(const PredicatePtr& pred,
                                          const Tuple& t) {
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
      return Condition::True();
    case Predicate::Kind::kFalse:
      return Condition::False();
    case Predicate::Kind::kCmp: {
      const Value& a = pred->lhs().Resolve(t);
      const Value& b = pred->rhs().Resolve(t);
      switch (pred->op()) {
        case CmpOp::kEq:
          return Condition::Eq(a, b);
        case CmpOp::kNe:
          return Condition::Neq(a, b);
        default: {
          if (a.is_const() && b.is_const()) {
            const bool holds = [&] {
              switch (pred->op()) {
                case CmpOp::kLt:
                  return a < b;
                case CmpOp::kLe:
                  return a <= b;
                case CmpOp::kGt:
                  return a > b;
                case CmpOp::kGe:
                  return a >= b;
                default:
                  return false;
              }
            }();
            return holds ? Condition::True() : Condition::False();
          }
          return Status::Unsupported(
              "order comparison on nulls is outside the c-table condition "
              "language: " +
              pred->ToString());
        }
      }
    }
    case Predicate::Kind::kIsNull:
      return Status::Unsupported(
          "IS NULL is not world-invariant and cannot appear in c-table "
          "conditions");
    case Predicate::Kind::kAnd: {
      INCDB_ASSIGN_OR_RETURN(ConditionPtr a,
                             PredicateToCondition(pred->left(), t));
      INCDB_ASSIGN_OR_RETURN(ConditionPtr b,
                             PredicateToCondition(pred->right(), t));
      return Condition::And(std::move(a), std::move(b));
    }
    case Predicate::Kind::kOr: {
      INCDB_ASSIGN_OR_RETURN(ConditionPtr a,
                             PredicateToCondition(pred->left(), t));
      INCDB_ASSIGN_OR_RETURN(ConditionPtr b,
                             PredicateToCondition(pred->right(), t));
      return Condition::Or(std::move(a), std::move(b));
    }
    case Predicate::Kind::kNot: {
      INCDB_ASSIGN_OR_RETURN(ConditionPtr a,
                             PredicateToCondition(pred->left(), t));
      return Condition::Not(std::move(a));
    }
  }
  return Status::Internal("unknown predicate kind");
}

Result<CTable> SelectCT(const PredicatePtr& pred, const CTable& in) {
  CTable out(in.arity());
  out.SetGlobalCondition(in.global_condition());
  for (const CTableRow& row : in.rows()) {
    INCDB_ASSIGN_OR_RETURN(ConditionPtr c, PredicateToCondition(pred, row.tuple));
    ConditionPtr combined = Condition::And(row.condition, std::move(c));
    if (!combined->IsFalse()) out.AddRow(row.tuple, std::move(combined));
  }
  return out;
}

CTable ProjectCT(const std::vector<size_t>& cols, const CTable& in) {
  CTable out(cols.size());
  out.SetGlobalCondition(in.global_condition());
  for (const CTableRow& row : in.rows()) {
    out.AddRow(row.tuple.Project(cols), row.condition);
  }
  return out;
}

CTable ProductCT(const CTable& l, const CTable& r, EvalStats* stats) {
  OpScope scope(stats, EvalOp::kCTableProduct);
  CTable out(l.arity() + r.arity());
  out.SetGlobalCondition(
      Condition::And(l.global_condition(), r.global_condition()));
  for (const CTableRow& a : l.rows()) {
    for (const CTableRow& b : r.rows()) {
      ConditionPtr c = Condition::And(a.condition, b.condition);
      if (!c->IsFalse()) out.AddRow(a.tuple.Concat(b.tuple), std::move(c));
    }
  }
  scope.CountIn(l.rows().size() + r.rows().size());
  scope.CountOut(out.rows().size());
  return out;
}

Result<CTable> UnionCT(const CTable& l, const CTable& r) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("c-table union arity mismatch");
  }
  CTable out(l.arity());
  out.SetGlobalCondition(
      Condition::And(l.global_condition(), r.global_condition()));
  for (const CTableRow& row : l.rows()) out.AddRow(row.tuple, row.condition);
  for (const CTableRow& row : r.rows()) out.AddRow(row.tuple, row.condition);
  return out;
}

Result<CTable> DiffCT(const CTable& l, const CTable& r, EvalStats* stats) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("c-table difference arity mismatch");
  }
  OpScope scope(stats, EvalOp::kCTableDiff);
  CTable out(l.arity());
  out.SetGlobalCondition(
      Condition::And(l.global_condition(), r.global_condition()));
  const RowIndex index(r);
  uint64_t probes = 0;
  for (const CTableRow& a : l.rows()) {
    ConditionPtr c = a.condition;
    auto fold = [&](const CTableRow& b) {
      // a survives only if b is absent or differs from a.
      c = Condition::And(
          c, Condition::Not(Condition::And(
                 b.condition, TuplesEqualCondition(a.tuple, b.tuple))));
      return !c->IsFalse();
    };
    if (a.tuple.HasNull()) {
      for (const CTableRow& b : r.rows()) {
        ++probes;
        if (!fold(b)) break;
      }
    } else {
      for (size_t i : index.CandidatesFor(a.tuple)) {
        ++probes;
        if (!fold(r.rows()[i])) break;
      }
    }
    if (!c->IsFalse()) out.AddRow(a.tuple, std::move(c));
  }
  scope.CountIn(l.rows().size() + r.rows().size());
  scope.CountProbes(probes);
  scope.CountOut(out.rows().size());
  return out;
}

Result<CTable> IntersectCT(const CTable& l, const CTable& r,
                           EvalStats* stats) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("c-table intersection arity mismatch");
  }
  OpScope scope(stats, EvalOp::kCTableIntersect);
  CTable out(l.arity());
  out.SetGlobalCondition(
      Condition::And(l.global_condition(), r.global_condition()));
  const RowIndex index(r);
  uint64_t probes = 0;
  for (const CTableRow& a : l.rows()) {
    ConditionPtr any = Condition::False();
    auto fold = [&](const CTableRow& b) {
      any = Condition::Or(
          any, Condition::And(b.condition,
                              TuplesEqualCondition(a.tuple, b.tuple)));
      return !any->IsTrue();
    };
    if (a.tuple.HasNull()) {
      for (const CTableRow& b : r.rows()) {
        ++probes;
        if (!fold(b)) break;
      }
    } else {
      for (size_t i : index.CandidatesFor(a.tuple)) {
        ++probes;
        if (!fold(r.rows()[i])) break;
      }
    }
    ConditionPtr c = Condition::And(a.condition, std::move(any));
    if (!c->IsFalse()) out.AddRow(a.tuple, std::move(c));
  }
  scope.CountIn(l.rows().size() + r.rows().size());
  scope.CountProbes(probes);
  scope.CountOut(out.rows().size());
  return out;
}

Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db,
                             const EvalOptions& options) {
  EvalStats* stats = options.stats;
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());
  const RAExprPtr expanded = RAExpr::ExpandDivision(e, db.schema());

  std::function<Result<CTable>(const RAExprPtr&)> rec =
      [&](const RAExprPtr& e) -> Result<CTable> {
    switch (e->kind()) {
      case RAExpr::Kind::kScan:
        return db.GetTable(e->relation_name());
      case RAExpr::Kind::kConstRel:
        return CTable::FromRelation(e->literal());
      case RAExpr::Kind::kSelect: {
        INCDB_ASSIGN_OR_RETURN(CTable in, rec(e->left()));
        return SelectCT(e->predicate(), in);
      }
      case RAExpr::Kind::kProject: {
        INCDB_ASSIGN_OR_RETURN(CTable in, rec(e->left()));
        return ProjectCT(e->columns(), in);
      }
      case RAExpr::Kind::kProduct: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return ProductCT(l, r, stats);
      }
      case RAExpr::Kind::kUnion: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return UnionCT(l, r);
      }
      case RAExpr::Kind::kDiff: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return DiffCT(l, r, stats);
      }
      case RAExpr::Kind::kIntersect: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return IntersectCT(l, r, stats);
      }
      case RAExpr::Kind::kDivide:
        return Status::Internal("division should have been expanded");
      case RAExpr::Kind::kDelta: {
        CTable out(2);
        std::set<Value> adom = db.Constants();
        for (NullId id : db.Nulls()) adom.insert(Value::Null(id));
        for (const Value& v : adom) {
          out.AddRow(Tuple{v, v}, Condition::True());
        }
        return out;
      }
    }
    return Status::Internal("unknown RA node kind");
  };
  return rec(expanded);
}

Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db) {
  return EvalOnCTables(e, db, EvalOptions{});
}

}  // namespace incdb
