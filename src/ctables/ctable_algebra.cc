#include "ctables/ctable_algebra.h"

namespace incdb {

ConditionPtr TuplesEqualCondition(const Tuple& t, const Tuple& s) {
  INCDB_CHECK(t.arity() == s.arity());
  ConditionPtr acc = Condition::True();
  for (size_t i = 0; i < t.arity(); ++i) {
    acc = Condition::And(acc, Condition::Eq(t[i], s[i]));
  }
  return acc;
}

Result<ConditionPtr> PredicateToCondition(const PredicatePtr& pred,
                                          const Tuple& t) {
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
      return Condition::True();
    case Predicate::Kind::kFalse:
      return Condition::False();
    case Predicate::Kind::kCmp: {
      const Value& a = pred->lhs().Resolve(t);
      const Value& b = pred->rhs().Resolve(t);
      switch (pred->op()) {
        case CmpOp::kEq:
          return Condition::Eq(a, b);
        case CmpOp::kNe:
          return Condition::Neq(a, b);
        default: {
          if (a.is_const() && b.is_const()) {
            const bool holds = [&] {
              switch (pred->op()) {
                case CmpOp::kLt:
                  return a < b;
                case CmpOp::kLe:
                  return a <= b;
                case CmpOp::kGt:
                  return a > b;
                case CmpOp::kGe:
                  return a >= b;
                default:
                  return false;
              }
            }();
            return holds ? Condition::True() : Condition::False();
          }
          return Status::Unsupported(
              "order comparison on nulls is outside the c-table condition "
              "language: " +
              pred->ToString());
        }
      }
    }
    case Predicate::Kind::kIsNull:
      return Status::Unsupported(
          "IS NULL is not world-invariant and cannot appear in c-table "
          "conditions");
    case Predicate::Kind::kAnd: {
      INCDB_ASSIGN_OR_RETURN(ConditionPtr a,
                             PredicateToCondition(pred->left(), t));
      INCDB_ASSIGN_OR_RETURN(ConditionPtr b,
                             PredicateToCondition(pred->right(), t));
      return Condition::And(std::move(a), std::move(b));
    }
    case Predicate::Kind::kOr: {
      INCDB_ASSIGN_OR_RETURN(ConditionPtr a,
                             PredicateToCondition(pred->left(), t));
      INCDB_ASSIGN_OR_RETURN(ConditionPtr b,
                             PredicateToCondition(pred->right(), t));
      return Condition::Or(std::move(a), std::move(b));
    }
    case Predicate::Kind::kNot: {
      INCDB_ASSIGN_OR_RETURN(ConditionPtr a,
                             PredicateToCondition(pred->left(), t));
      return Condition::Not(std::move(a));
    }
  }
  return Status::Internal("unknown predicate kind");
}

Result<CTable> SelectCT(const PredicatePtr& pred, const CTable& in) {
  CTable out(in.arity());
  out.SetGlobalCondition(in.global_condition());
  for (const CTableRow& row : in.rows()) {
    INCDB_ASSIGN_OR_RETURN(ConditionPtr c, PredicateToCondition(pred, row.tuple));
    ConditionPtr combined = Condition::And(row.condition, std::move(c));
    if (!combined->IsFalse()) out.AddRow(row.tuple, std::move(combined));
  }
  return out;
}

CTable ProjectCT(const std::vector<size_t>& cols, const CTable& in) {
  CTable out(cols.size());
  out.SetGlobalCondition(in.global_condition());
  for (const CTableRow& row : in.rows()) {
    out.AddRow(row.tuple.Project(cols), row.condition);
  }
  return out;
}

CTable ProductCT(const CTable& l, const CTable& r) {
  CTable out(l.arity() + r.arity());
  out.SetGlobalCondition(
      Condition::And(l.global_condition(), r.global_condition()));
  for (const CTableRow& a : l.rows()) {
    for (const CTableRow& b : r.rows()) {
      ConditionPtr c = Condition::And(a.condition, b.condition);
      if (!c->IsFalse()) out.AddRow(a.tuple.Concat(b.tuple), std::move(c));
    }
  }
  return out;
}

Result<CTable> UnionCT(const CTable& l, const CTable& r) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("c-table union arity mismatch");
  }
  CTable out(l.arity());
  out.SetGlobalCondition(
      Condition::And(l.global_condition(), r.global_condition()));
  for (const CTableRow& row : l.rows()) out.AddRow(row.tuple, row.condition);
  for (const CTableRow& row : r.rows()) out.AddRow(row.tuple, row.condition);
  return out;
}

Result<CTable> DiffCT(const CTable& l, const CTable& r) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("c-table difference arity mismatch");
  }
  CTable out(l.arity());
  out.SetGlobalCondition(
      Condition::And(l.global_condition(), r.global_condition()));
  for (const CTableRow& a : l.rows()) {
    ConditionPtr c = a.condition;
    for (const CTableRow& b : r.rows()) {
      // a survives only if b is absent or differs from a.
      c = Condition::And(
          c, Condition::Not(Condition::And(
                 b.condition, TuplesEqualCondition(a.tuple, b.tuple))));
      if (c->IsFalse()) break;
    }
    if (!c->IsFalse()) out.AddRow(a.tuple, std::move(c));
  }
  return out;
}

Result<CTable> IntersectCT(const CTable& l, const CTable& r) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("c-table intersection arity mismatch");
  }
  CTable out(l.arity());
  out.SetGlobalCondition(
      Condition::And(l.global_condition(), r.global_condition()));
  for (const CTableRow& a : l.rows()) {
    ConditionPtr any = Condition::False();
    for (const CTableRow& b : r.rows()) {
      any = Condition::Or(
          any, Condition::And(b.condition,
                              TuplesEqualCondition(a.tuple, b.tuple)));
      if (any->IsTrue()) break;
    }
    ConditionPtr c = Condition::And(a.condition, std::move(any));
    if (!c->IsFalse()) out.AddRow(a.tuple, std::move(c));
  }
  return out;
}

Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db) {
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());
  const RAExprPtr expanded = RAExpr::ExpandDivision(e, db.schema());

  std::function<Result<CTable>(const RAExprPtr&)> rec =
      [&](const RAExprPtr& e) -> Result<CTable> {
    switch (e->kind()) {
      case RAExpr::Kind::kScan:
        return db.GetTable(e->relation_name());
      case RAExpr::Kind::kConstRel:
        return CTable::FromRelation(e->literal());
      case RAExpr::Kind::kSelect: {
        INCDB_ASSIGN_OR_RETURN(CTable in, rec(e->left()));
        return SelectCT(e->predicate(), in);
      }
      case RAExpr::Kind::kProject: {
        INCDB_ASSIGN_OR_RETURN(CTable in, rec(e->left()));
        return ProjectCT(e->columns(), in);
      }
      case RAExpr::Kind::kProduct: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return ProductCT(l, r);
      }
      case RAExpr::Kind::kUnion: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return UnionCT(l, r);
      }
      case RAExpr::Kind::kDiff: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return DiffCT(l, r);
      }
      case RAExpr::Kind::kIntersect: {
        INCDB_ASSIGN_OR_RETURN(CTable l, rec(e->left()));
        INCDB_ASSIGN_OR_RETURN(CTable r, rec(e->right()));
        return IntersectCT(l, r);
      }
      case RAExpr::Kind::kDivide:
        return Status::Internal("division should have been expanded");
      case RAExpr::Kind::kDelta: {
        CTable out(2);
        std::set<Value> adom = db.Constants();
        for (NullId id : db.Nulls()) adom.insert(Value::Null(id));
        for (const Value& v : adom) {
          out.AddRow(Tuple{v, v}, Condition::True());
        }
        return out;
      }
    }
    return Status::Internal("unknown RA node kind");
  };
  return rec(expanded);
}

}  // namespace incdb
