#include "ctables/condition.h"

#include <functional>
#include <vector>

namespace incdb {

size_t Condition::Size() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kEq:
      return 1;
    case Kind::kNot:
      return 1 + left_->Size();
    case Kind::kAnd:
    case Kind::kOr:
      return 1 + left_->Size() + right_->Size();
  }
  return 1;
}

void Condition::CollectNulls(std::set<NullId>* out) const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kEq:
      if (lhs_.is_null()) out->insert(lhs_.null_id());
      if (rhs_.is_null()) out->insert(rhs_.null_id());
      return;
    case Kind::kNot:
      left_->CollectNulls(out);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->CollectNulls(out);
      right_->CollectNulls(out);
      return;
  }
}

void Condition::CollectConstants(std::set<Value>* out) const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kEq:
      if (lhs_.is_const()) out->insert(lhs_);
      if (rhs_.is_const()) out->insert(rhs_);
      return;
    case Kind::kNot:
      left_->CollectConstants(out);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->CollectConstants(out);
      right_->CollectConstants(out);
      return;
  }
}

bool Condition::EvalUnder(const Valuation& v) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kEq: {
      const Value a = v.Apply(lhs_);
      const Value b = v.Apply(rhs_);
      INCDB_CHECK_MSG(a.is_const() && b.is_const(),
                      "condition evaluated under a partial valuation");
      return a == b;
    }
    case Kind::kNot:
      return !left_->EvalUnder(v);
    case Kind::kAnd:
      return left_->EvalUnder(v) && right_->EvalUnder(v);
    case Kind::kOr:
      return left_->EvalUnder(v) || right_->EvalUnder(v);
  }
  return false;
}

std::string Condition::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kEq:
      return lhs_.ToString() + " = " + rhs_.ToString();
    case Kind::kNot:
      return "~(" + left_->ToString() + ")";
    case Kind::kAnd:
      return "(" + left_->ToString() + " & " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " | " + right_->ToString() + ")";
  }
  return "?";
}

ConditionPtr Condition::True() {
  static const ConditionPtr kTrue(new Condition(Kind::kTrue));
  return kTrue;
}

ConditionPtr Condition::False() {
  static const ConditionPtr kFalse(new Condition(Kind::kFalse));
  return kFalse;
}

ConditionPtr Condition::Eq(Value a, Value b) {
  if (a == b) return True();
  if (a.is_const() && b.is_const()) return False();  // distinct constants
  auto* c = new Condition(Kind::kEq);
  // Canonical order to aid structural sharing.
  if (b < a) std::swap(a, b);
  c->lhs_ = std::move(a);
  c->rhs_ = std::move(b);
  return ConditionPtr(c);
}

ConditionPtr Condition::Neq(Value a, Value b) {
  return Not(Eq(std::move(a), std::move(b)));
}

ConditionPtr Condition::And(ConditionPtr a, ConditionPtr b) {
  if (a->IsFalse() || b->IsFalse()) return False();
  if (a->IsTrue()) return b;
  if (b->IsTrue()) return a;
  auto* c = new Condition(Kind::kAnd);
  c->left_ = std::move(a);
  c->right_ = std::move(b);
  return ConditionPtr(c);
}

ConditionPtr Condition::Or(ConditionPtr a, ConditionPtr b) {
  if (a->IsTrue() || b->IsTrue()) return True();
  if (a->IsFalse()) return b;
  if (b->IsFalse()) return a;
  auto* c = new Condition(Kind::kOr);
  c->left_ = std::move(a);
  c->right_ = std::move(b);
  return ConditionPtr(c);
}

ConditionPtr Condition::Not(ConditionPtr a) {
  if (a->IsTrue()) return False();
  if (a->IsFalse()) return True();
  if (a->kind() == Kind::kNot) return a->left();  // ¬¬c ↦ c
  auto* c = new Condition(Kind::kNot);
  c->left_ = std::move(a);
  return ConditionPtr(c);
}

bool IsSatisfiable(const ConditionPtr& c) {
  if (c->IsTrue()) return true;
  if (c->IsFalse()) return false;
  std::set<NullId> null_set;
  c->CollectNulls(&null_set);
  std::set<Value> const_set;
  c->CollectConstants(&const_set);
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  std::vector<Value> domain(const_set.begin(), const_set.end());
  // One fresh constant per null suffices to realize any equality type.
  int64_t base = 0;
  for (const Value& v : domain) {
    if (v.is_int()) base = std::max(base, v.as_int());
  }
  for (size_t i = 1; i <= nulls.size(); ++i) {
    domain.push_back(Value::Int(base + static_cast<int64_t>(i)));
  }
  if (nulls.empty()) {
    return c->EvalUnder(Valuation());
  }
  std::function<bool(size_t, Valuation&)> rec = [&](size_t i,
                                                    Valuation& v) -> bool {
    if (i == nulls.size()) return c->EvalUnder(v);
    for (const Value& d : domain) {
      v.Bind(nulls[i], d);
      if (rec(i + 1, v)) return true;
    }
    return false;
  };
  Valuation v;
  return rec(0, v);
}

bool Implies(const ConditionPtr& a, const ConditionPtr& b) {
  return !IsSatisfiable(Condition::And(a, Condition::Not(b)));
}

bool Equivalent(const ConditionPtr& a, const ConditionPtr& b) {
  return Implies(a, b) && Implies(b, a);
}

}  // namespace incdb
