#include "ctables/ctable_kernels.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>
#include <vector>

#include "ctables/ctable_algebra.h"

namespace incdb {
namespace {

struct ValueVecHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t h = 0xcbf29ce484222325ull;
    for (const Value& v : vs) h = (h ^ v.Hash()) * 0x100000001b3ull;
    return h;
  }
};

}  // namespace

bool ResidualSafeForCTableJoin(const Predicate* pred) {
  if (pred == nullptr) return true;
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
    case Predicate::Kind::kFalse:
      return true;
    case Predicate::Kind::kCmp:
      return pred->op() == CmpOp::kEq || pred->op() == CmpOp::kNe;
    case Predicate::Kind::kIsNull:
      return false;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return ResidualSafeForCTableJoin(pred->left().get()) &&
             ResidualSafeForCTableJoin(pred->right().get());
    case Predicate::Kind::kNot:
      return ResidualSafeForCTableJoin(pred->left().get());
  }
  return false;
}

Result<CTable> JoinCT(const CTable& l, const CTable& r,
                      const std::vector<JoinKey>& keys,
                      const PredicatePtr& residual, ConditionNormalizer* norm,
                      EvalStats* stats) {
  OpScope scope(stats, EvalOp::kCTableJoin);
  CTable out(l.arity() + r.arity());
  out.SetGlobalCondition(norm->Normalize(
      Condition::And(l.global_condition(), r.global_condition())));

  // Bucket right rows whose key columns are all constants; rows with a null
  // in a key column can syntactically match any probe value and join with
  // every left row. Replayed via merge so candidate order — and therefore
  // the built condition chain — matches the nested loop.
  std::unordered_map<std::vector<Value>, std::vector<size_t>, ValueVecHash>
      buckets;
  std::vector<size_t> null_keyed;
  const auto& rrows = r.rows();
  for (size_t i = 0; i < rrows.size(); ++i) {
    std::vector<Value> key;
    key.reserve(keys.size());
    bool constant = true;
    for (const JoinKey& k : keys) {
      const Value& v = rrows[i].tuple[k.right_col];
      if (v.is_null()) {
        constant = false;
        break;
      }
      key.push_back(v);
    }
    if (constant) {
      buckets[std::move(key)].push_back(i);
    } else {
      null_keyed.push_back(i);
    }
  }

  uint64_t probes = 0;
  std::vector<size_t> candidates;
  std::vector<size_t> all_rows;
  for (const CTableRow& a : l.rows()) {
    candidates.clear();
    std::vector<Value> key;
    key.reserve(keys.size());
    bool constant = true;
    for (const JoinKey& k : keys) {
      const Value& v = a.tuple[k.left_col];
      if (v.is_null()) {
        constant = false;
        break;
      }
      key.push_back(v);
    }
    const std::vector<size_t>* cand = &candidates;
    if (!constant) {
      // Null in a probe key: every right row can match in some world.
      if (all_rows.empty() && !rrows.empty()) {
        all_rows.resize(rrows.size());
        for (size_t i = 0; i < rrows.size(); ++i) all_rows[i] = i;
      }
      cand = &all_rows;
    } else {
      static const std::vector<size_t> kNone;
      const std::vector<size_t>* exact = &kNone;
      auto it = buckets.find(key);
      if (it != buckets.end()) exact = &it->second;
      candidates.reserve(exact->size() + null_keyed.size());
      std::merge(exact->begin(), exact->end(), null_keyed.begin(),
                 null_keyed.end(), std::back_inserter(candidates));
    }
    for (size_t i : *cand) {
      ++probes;
      const CTableRow& b = rrows[i];
      ConditionPtr c = Condition::And(a.condition, b.condition);
      for (const JoinKey& k : keys) {
        c = Condition::And(
            c, Condition::Eq(a.tuple[k.left_col], b.tuple[k.right_col]));
        if (c->IsFalse()) break;
      }
      if (c->IsFalse()) continue;
      const Tuple joined = a.tuple.Concat(b.tuple);
      if (residual != nullptr) {
        INCDB_ASSIGN_OR_RETURN(ConditionPtr rc,
                               PredicateToCondition(residual, joined));
        c = Condition::And(std::move(c), std::move(rc));
      }
      c = norm->Normalize(c);
      if (!c->IsFalse()) out.AddRow(joined, std::move(c));
    }
  }
  scope.CountIn(l.rows().size() + r.rows().size());
  scope.CountProbes(probes);
  scope.CountOut(out.rows().size());
  return out;
}

}  // namespace incdb
