// Text serialization for c-table databases, extending the naïve dump format
// of core/io.h with a condition column and per-table global conditions:
//
//   # incdb c-table dump
//   ctable R0(c0, c1)
//   global ~(_0 = 1)
//   1, _0 :: _0 = 2
//   2, 3
//
// A row's condition follows `::`; omitted means `true`. The `global` line
// (optional, at most one per table, before any row) sets the table's global
// condition. Conditions use the rendering of Condition::ToString() —
// `true`, `false`, `v = v`, `~(c)`, `(c & c)`, `(c | c)` — with values in
// the core/io.h syntax (ints, 'strings', _k nulls), so shared marked nulls
// round-trip exactly and serialize→parse→serialize is the identity.

#ifndef INCDB_CTABLES_CIO_H_
#define INCDB_CTABLES_CIO_H_

#include <string>

#include "ctables/ctable.h"
#include "util/status.h"

namespace incdb {

/// Serializes a c-database (schema + conditioned rows) to the dump format.
std::string DumpCDatabase(const CDatabase& db);

/// Parses a dump back into a c-database. Errors carry 1-based line numbers.
Result<CDatabase> LoadCDatabase(const std::string& text);

/// Parses one condition in the Condition::ToString() syntax. Exposed for
/// tests and the fuzzing corpus loader. Parse errors carry the 1-based
/// line and column plus the offending token, e.g.
/// "expected ')' in condition on line 1, column 12 (at '&')".
Result<ConditionPtr> ParseCondition(const std::string& text);

}  // namespace incdb

#endif  // INCDB_CTABLES_CIO_H_
