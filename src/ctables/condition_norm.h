// Canonical condition normalization for the c-table-native pipeline.
//
// The Imieliński–Lipski operators grow row conditions multiplicatively
// (difference conjoins one negated clause per right row), and the factories
// in condition.h only fold locally. ConditionNormalizer rewrites a condition
// into a canonical flattened form and proves many of them UNSAT outright:
//
//  * negation normal form — ¬ appears only on equality literals;
//  * flattened AND/OR — nested conjunctions/disjunctions are spliced into
//    one operand list, deduplicated, and sorted into a canonical order;
//  * hash-consing — structurally identical subconditions are interned to
//    one shared node, so the same clause chain is normalized once no matter
//    how many rows share it, and equality of normal forms is pointer
//    equality;
//  * cheap UNSAT pruning — a union-find over the equality literals of each
//    conjunction merges values connected by positive equalities; a
//    conjunction is false as soon as one class holds two distinct constants
//    or a negated literal joins an already-merged pair. Redundant (implied)
//    equalities and trivially-true disequalities are dropped.
//
// Simplification is lazy: nothing is normalized until a row's condition is
// actually touched (built by a kernel, or tested during extraction), and the
// per-node memo makes re-normalizing shared structure free.
//
// The normalizer also hosts the exact finite-domain satisfiability search
// used by certain/possible-answer extraction: a backtracking solver that
// binds one null at a time, re-normalizing after each substitution so the
// union-find pruning cuts entire subtrees.
//
// One normalizer instance serves one evaluation; it is NOT thread-safe.

#ifndef INCDB_CTABLES_CONDITION_NORM_H_
#define INCDB_CTABLES_CONDITION_NORM_H_

#include <cstdint>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ctables/condition.h"
#include "util/status.h"

namespace incdb {

/// Canonicalizing, hash-consing condition simplifier with counters.
class ConditionNormalizer {
 public:
  ConditionNormalizer() = default;
  ConditionNormalizer(const ConditionNormalizer&) = delete;
  ConditionNormalizer& operator=(const ConditionNormalizer&) = delete;

  /// The canonical simplified form of `c`. Semantics-preserving: the result
  /// has exactly the satisfying valuations of `c` (property-tested by
  /// exhaustive valuation enumeration). Idempotent: Normalize(Normalize(c))
  /// returns the same node. Memoized per node, so repeated calls on shared
  /// structure are O(1).
  ConditionPtr Normalize(const ConditionPtr& c);

  /// c[id := v] with local folding (not normalized — callers that need the
  /// canonical form pass the result back through Normalize).
  static ConditionPtr Substitute(const ConditionPtr& c, NullId id,
                                 const Value& v);

  /// Conditions whose normal form is strictly smaller than the input.
  uint64_t simplified() const { return simplified_; }
  /// Conjunctions proven unsatisfiable by the union-find check (each
  /// collapse to `false` counts once, wherever it happens in the tree).
  uint64_t unsat_pruned() const { return unsat_pruned_; }
  /// Distinct interned nodes (shared-structure metric).
  size_t interned_nodes() const { return ids_.size(); }

 private:
  ConditionPtr NormalizeNnf(const Condition* c, bool negate);
  ConditionPtr MakeAnd(std::vector<ConditionPtr> ops);
  ConditionPtr MakeOr(std::vector<ConditionPtr> ops);
  ConditionPtr InternEq(const Value& a, const Value& b);
  ConditionPtr InternNot(const ConditionPtr& lit);
  ConditionPtr InternBinary(Condition::Kind kind, const ConditionPtr& l,
                            const ConditionPtr& r);
  size_t IdOf(const ConditionPtr& c);
  void Register(const ConditionPtr& c);
  void SortDedupe(std::vector<ConditionPtr>* ops);

  // NNF memo, one map per polarity. Normal forms map to themselves, which
  // is what makes Normalize idempotent and O(1) on already-normal input.
  std::unordered_map<const Condition*, ConditionPtr> memo_pos_;
  std::unordered_map<const Condition*, ConditionPtr> memo_neg_;
  // Interning tables: literals by value pair, composites by child identity
  // (children are interned first, so pointer equality is structural
  // equality).
  std::map<std::pair<Value, Value>, ConditionPtr> eq_interned_;
  std::unordered_map<const Condition*, ConditionPtr> not_interned_;
  std::map<std::tuple<int, const Condition*, const Condition*>, ConditionPtr>
      binary_interned_;
  // Canonical operand order: by first-interning sequence number.
  std::unordered_map<const Condition*, size_t> ids_;
  // Inputs passed to Normalize, kept alive so memo entries keyed on their
  // raw node pointers never dangle into recycled allocations.
  std::vector<ConditionPtr> roots_;

  uint64_t simplified_ = 0;
  uint64_t unsat_pruned_ = 0;
};

/// Exact satisfiability of `c` with every null ranging over `domain` (the
/// same finite domain possible-world enumeration uses, so certainty derived
/// from this check is bit-identical to enumeration). Backtracking search:
/// bind a null, substitute + re-normalize, recurse; the union-find pruning
/// inside Normalize kills contradictory branches without enumerating them.
///
/// `budget` bounds the number of branch steps (substitutions); exceeding it
/// returns ResourceExhausted, mirroring the enumeration drivers' max_worlds
/// valve. On success with `witness` non-null, a satisfying assignment for
/// the nulls of `c` is written there (nulls `c` does not constrain are left
/// unbound — any domain value satisfies).
Result<bool> SatisfiableOverDomain(const ConditionPtr& c,
                                   const std::vector<Value>& domain,
                                   ConditionNormalizer* norm,
                                   uint64_t budget = 50'000'000,
                                   Valuation* witness = nullptr);

}  // namespace incdb

#endif  // INCDB_CTABLES_CONDITION_NORM_H_
