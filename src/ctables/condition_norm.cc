#include "ctables/condition_norm.h"

#include <algorithm>
#include <set>
#include <tuple>

namespace incdb {
namespace {

// Union-find over the values of one conjunction's equality literals. Each
// class remembers at most one constant representative; merging two classes
// with distinct constants is the UNSAT signal.
class ValueUnionFind {
 public:
  // Returns false if the union proves the conjunction unsatisfiable.
  bool Union(const Value& a, const Value& b) {
    const int ra = Find(Id(a));
    const int rb = Find(Id(b));
    if (ra == rb) return true;
    const Value* ca = const_of_[ra];
    const Value* cb = const_of_[rb];
    if (ca != nullptr && cb != nullptr && !(*ca == *cb)) return false;
    parent_[ra] = rb;
    if (cb == nullptr) const_of_[rb] = ca;
    return true;
  }

  bool Connected(const Value& a, const Value& b) {
    return Find(Id(a)) == Find(Id(b));
  }

  // The constant a class is pinned to, or nullptr if none yet.
  const Value* ConstantOf(const Value& v) { return const_of_[Find(Id(v))]; }

 private:
  int Id(const Value& v) {
    auto [it, inserted] = ids_.emplace(v, static_cast<int>(parent_.size()));
    if (inserted) {
      parent_.push_back(it->second);
      const_of_.push_back(v.is_const() ? &it->first : nullptr);
    }
    return it->second;
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  std::map<Value, int> ids_;
  std::vector<int> parent_;
  std::vector<const Value*> const_of_;
};

// Appends `c`'s operand list, splicing the right-leaning chains MakeAnd /
// MakeOr build (their left operands are never the same kind, so one loop
// over right children recovers the full flattened list).
void Splice(Condition::Kind kind, const ConditionPtr& c,
            std::vector<ConditionPtr>* out) {
  ConditionPtr cur = c;
  while (cur->kind() == kind) {
    out->push_back(cur->left());
    cur = cur->right();
  }
  out->push_back(cur);
}

}  // namespace

size_t ConditionNormalizer::IdOf(const ConditionPtr& c) {
  const auto it = ids_.find(c.get());
  return it == ids_.end() ? 0 : it->second;
}

void ConditionNormalizer::Register(const ConditionPtr& c) {
  ids_.emplace(c.get(), ids_.size() + 1);
  // A normal form is its own normal form: seed both memo polarities so the
  // NNF pass short-circuits on nodes this normalizer built.
  memo_pos_.emplace(c.get(), c);
}

ConditionPtr ConditionNormalizer::InternEq(const Value& a, const Value& b) {
  ConditionPtr lit = Condition::Eq(a, b);
  if (lit->kind() != Condition::Kind::kEq) return lit;  // folded to T/F
  const auto key = std::make_pair(lit->lhs(), lit->rhs());
  auto it = eq_interned_.find(key);
  if (it != eq_interned_.end()) return it->second;
  eq_interned_.emplace(key, lit);
  Register(lit);
  return lit;
}

ConditionPtr ConditionNormalizer::InternNot(const ConditionPtr& lit) {
  auto it = not_interned_.find(lit.get());
  if (it != not_interned_.end()) return it->second;
  ConditionPtr n = Condition::Not(lit);
  not_interned_.emplace(lit.get(), n);
  Register(n);
  return n;
}

ConditionPtr ConditionNormalizer::InternBinary(Condition::Kind kind,
                                               const ConditionPtr& l,
                                               const ConditionPtr& r) {
  const auto key = std::make_tuple(static_cast<int>(kind), l.get(), r.get());
  auto it = binary_interned_.find(key);
  if (it != binary_interned_.end()) return it->second;
  ConditionPtr c = kind == Condition::Kind::kAnd ? Condition::And(l, r)
                                                 : Condition::Or(l, r);
  binary_interned_.emplace(key, c);
  Register(c);
  return c;
}

void ConditionNormalizer::SortDedupe(std::vector<ConditionPtr>* ops) {
  std::sort(ops->begin(), ops->end(),
            [this](const ConditionPtr& a, const ConditionPtr& b) {
              return IdOf(a) < IdOf(b);
            });
  ops->erase(std::unique(ops->begin(), ops->end(),
                         [](const ConditionPtr& a, const ConditionPtr& b) {
                           return a.get() == b.get();
                         }),
             ops->end());
}

ConditionPtr ConditionNormalizer::MakeAnd(std::vector<ConditionPtr> ops) {
  // Flatten nested conjunctions and fold the trivial operands.
  std::vector<ConditionPtr> flat;
  for (const ConditionPtr& op : ops) {
    if (op->IsFalse()) return Condition::False();
    if (op->IsTrue()) continue;
    Splice(Condition::Kind::kAnd, op, &flat);
  }
  if (flat.empty()) return Condition::True();
  SortDedupe(&flat);

  // Union-find pass over the equality literals at this level. Positive
  // literals merge classes; an already-merged positive literal is implied
  // and dropped. Negative literals contradict a merged pair, and are
  // implied (dropped) when both sides are pinned to distinct constants.
  ValueUnionFind uf;
  std::vector<ConditionPtr> kept;
  kept.reserve(flat.size());
  for (const ConditionPtr& op : flat) {
    if (op->kind() == Condition::Kind::kEq) {
      if (uf.Connected(op->lhs(), op->rhs())) continue;  // implied
      if (!uf.Union(op->lhs(), op->rhs())) {
        ++unsat_pruned_;
        return Condition::False();
      }
      kept.push_back(op);
    } else {
      kept.push_back(op);
    }
  }
  for (const ConditionPtr& op : kept) {
    if (op->kind() != Condition::Kind::kNot ||
        op->left()->kind() != Condition::Kind::kEq) {
      continue;
    }
    if (uf.Connected(op->left()->lhs(), op->left()->rhs())) {
      ++unsat_pruned_;
      return Condition::False();
    }
  }
  std::vector<ConditionPtr> final_ops;
  final_ops.reserve(kept.size());
  for (const ConditionPtr& op : kept) {
    if (op->kind() == Condition::Kind::kNot &&
        op->left()->kind() == Condition::Kind::kEq) {
      const Value* ca = uf.ConstantOf(op->left()->lhs());
      const Value* cb = uf.ConstantOf(op->left()->rhs());
      if (ca != nullptr && cb != nullptr && !(*ca == *cb)) {
        continue;  // sides forced to distinct constants: literal is true
      }
    }
    final_ops.push_back(op);
  }

  if (final_ops.empty()) return Condition::True();
  ConditionPtr acc = final_ops.back();
  for (size_t i = final_ops.size() - 1; i-- > 0;) {
    acc = InternBinary(Condition::Kind::kAnd, final_ops[i], acc);
  }
  return acc;
}

ConditionPtr ConditionNormalizer::MakeOr(std::vector<ConditionPtr> ops) {
  std::vector<ConditionPtr> flat;
  for (const ConditionPtr& op : ops) {
    if (op->IsTrue()) return Condition::True();
    if (op->IsFalse()) continue;
    Splice(Condition::Kind::kOr, op, &flat);
  }
  if (flat.empty()) return Condition::False();
  SortDedupe(&flat);

  // Complementary disjuncts (e and ¬e, pointer-identical after interning)
  // make the disjunction a tautology.
  std::set<const Condition*> present;
  for (const ConditionPtr& op : flat) present.insert(op.get());
  for (const ConditionPtr& op : flat) {
    if (op->kind() == Condition::Kind::kNot &&
        present.count(op->left().get()) > 0) {
      return Condition::True();
    }
  }

  if (flat.size() == 1) return flat[0];
  ConditionPtr acc = flat.back();
  for (size_t i = flat.size() - 1; i-- > 0;) {
    acc = InternBinary(Condition::Kind::kOr, flat[i], acc);
  }
  return acc;
}

ConditionPtr ConditionNormalizer::NormalizeNnf(const Condition* c,
                                               bool negate) {
  auto& memo = negate ? memo_neg_ : memo_pos_;
  const auto it = memo.find(c);
  if (it != memo.end()) return it->second;

  ConditionPtr result;
  switch (c->kind()) {
    case Condition::Kind::kTrue:
      result = negate ? Condition::False() : Condition::True();
      break;
    case Condition::Kind::kFalse:
      result = negate ? Condition::True() : Condition::False();
      break;
    case Condition::Kind::kEq: {
      ConditionPtr lit = InternEq(c->lhs(), c->rhs());
      if (negate) {
        result = lit->kind() == Condition::Kind::kEq
                     ? InternNot(lit)
                     : (lit->IsTrue() ? Condition::False()
                                      : Condition::True());
      } else {
        result = lit;
      }
      break;
    }
    case Condition::Kind::kNot:
      result = NormalizeNnf(c->left().get(), !negate);
      break;
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr: {
      const bool is_and = (c->kind() == Condition::Kind::kAnd) != negate;
      std::vector<ConditionPtr> ops;
      ops.push_back(NormalizeNnf(c->left().get(), negate));
      ops.push_back(NormalizeNnf(c->right().get(), negate));
      result = is_and ? MakeAnd(std::move(ops)) : MakeOr(std::move(ops));
      break;
    }
  }
  memo.emplace(c, result);
  return result;
}

ConditionPtr ConditionNormalizer::Normalize(const ConditionPtr& c) {
  const size_t before = c->Size();
  ConditionPtr result = NormalizeNnf(c.get(), /*negate=*/false);
  if (result->Size() < before) ++simplified_;
  // Keep the input node alive for the lifetime of the memo entry keyed on
  // its raw pointer (entries for temporaries would otherwise dangle).
  roots_.push_back(c);
  return result;
}

ConditionPtr ConditionNormalizer::Substitute(const ConditionPtr& c, NullId id,
                                             const Value& v) {
  switch (c->kind()) {
    case Condition::Kind::kTrue:
    case Condition::Kind::kFalse:
      return c;
    case Condition::Kind::kEq: {
      const bool hit_l = c->lhs().is_null() && c->lhs().null_id() == id;
      const bool hit_r = c->rhs().is_null() && c->rhs().null_id() == id;
      if (!hit_l && !hit_r) return c;
      return Condition::Eq(hit_l ? v : c->lhs(), hit_r ? v : c->rhs());
    }
    case Condition::Kind::kNot: {
      ConditionPtr l = Substitute(c->left(), id, v);
      return l.get() == c->left().get() ? c : Condition::Not(std::move(l));
    }
    case Condition::Kind::kAnd: {
      ConditionPtr l = Substitute(c->left(), id, v);
      ConditionPtr r = Substitute(c->right(), id, v);
      if (l.get() == c->left().get() && r.get() == c->right().get()) return c;
      return Condition::And(std::move(l), std::move(r));
    }
    case Condition::Kind::kOr: {
      ConditionPtr l = Substitute(c->left(), id, v);
      ConditionPtr r = Substitute(c->right(), id, v);
      if (l.get() == c->left().get() && r.get() == c->right().get()) return c;
      return Condition::Or(std::move(l), std::move(r));
    }
  }
  return c;  // unreachable
}

namespace {

// One backtracking search. Memoizes satisfiability per interned node — the
// domain is fixed for the whole search, so a node's answer never changes.
class DomainSat {
 public:
  DomainSat(const std::vector<Value>& domain, ConditionNormalizer* norm,
            uint64_t budget)
      : domain_(domain), norm_(norm), budget_(budget) {}

  Result<bool> Solve(const ConditionPtr& c, Valuation* witness) {
    return Rec(norm_->Normalize(c), witness);
  }

 private:
  Result<bool> Rec(const ConditionPtr& c, Valuation* witness) {
    if (c->IsTrue()) return true;
    if (c->IsFalse()) return false;
    if (witness == nullptr) {
      const auto it = memo_.find(c.get());
      if (it != memo_.end()) return it->second;
    }
    std::set<NullId> nulls;
    c->CollectNulls(&nulls);
    if (nulls.empty()) {
      // Ground but not folded to a literal cannot happen: every ground
      // equality folds in the Eq factory. Defensive answer via EvalUnder.
      return c->EvalUnder(Valuation());
    }
    const NullId pick = *nulls.begin();
    bool sat = false;
    for (const Value& v : domain_) {
      if (budget_ == 0) {
        return Status(StatusCode::kResourceExhausted,
                      "condition satisfiability budget exhausted");
      }
      --budget_;
      ConditionPtr sub =
          norm_->Normalize(ConditionNormalizer::Substitute(c, pick, v));
      auto r = Rec(sub, witness);
      if (!r.ok()) return r;
      if (*r) {
        if (witness != nullptr) witness->Bind(pick, v);
        sat = true;
        break;
      }
    }
    if (witness == nullptr) memo_.emplace(c.get(), sat);
    return sat;
  }

  const std::vector<Value>& domain_;
  ConditionNormalizer* norm_;
  uint64_t budget_;
  std::unordered_map<const Condition*, bool> memo_;
};

}  // namespace

Result<bool> SatisfiableOverDomain(const ConditionPtr& c,
                                   const std::vector<Value>& domain,
                                   ConditionNormalizer* norm, uint64_t budget,
                                   Valuation* witness) {
  if (domain.empty()) {
    // No domain values: satisfiable iff the condition has no nulls and
    // folds to true.
    ConditionPtr n = norm->Normalize(c);
    std::set<NullId> nulls;
    n->CollectNulls(&nulls);
    if (!nulls.empty()) return false;
    return n->IsTrue();
  }
  DomainSat solver(domain, norm, budget);
  return solver.Solve(c, witness);
}

}  // namespace incdb
