// The Imieliński–Lipski algebra on conditional tables: a strong
// representation system for full relational algebra under CWA.
//
// For every operator the result's worlds are exactly the operator applied to
// the input's worlds: ⟦Q(T)⟧_cwa = Q(⟦T⟧_cwa). The price is condition
// growth — difference multiplies each left row's condition by the negation
// of every right row (bench E5 measures this).
//
// Supported selection predicates: equalities/inequalities under AND/OR/NOT
// (order comparisons are admitted only when both operands resolve to
// constants — a condition on nulls with `<` is outside the equality-
// condition language of c-tables).

#ifndef INCDB_CTABLES_CTABLE_ALGEBRA_H_
#define INCDB_CTABLES_CTABLE_ALGEBRA_H_

#include "algebra/ast.h"
#include "ctables/ctable.h"
#include "engine/stats.h"

namespace incdb {

/// Evaluates a relational algebra expression over a c-table database.
/// Division is expanded to its σπ×− form first. Δ ranges over the active
/// domain (constants and nulls) of the c-database.
Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db,
                             const EvalOptions& options);
Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db);

/// Converts a selection predicate applied to a (possibly null-carrying)
/// tuple into a condition. Fails (kUnsupported) for order comparisons with
/// unresolved nulls and for IS NULL (which is not world-invariant).
Result<ConditionPtr> PredicateToCondition(const PredicatePtr& pred,
                                          const Tuple& t);

// Individual operators, exposed for tests. Difference and intersection hash
// the right side's null-free rows by tuple so a complete left row only pairs
// with its exact match plus the null-carrying rows; because the Condition
// factories constant-fold, the skipped pairs would have contributed identity
// conditions and the result is structurally unchanged.
Result<CTable> SelectCT(const PredicatePtr& pred, const CTable& in);
CTable ProjectCT(const std::vector<size_t>& cols, const CTable& in);
CTable ProductCT(const CTable& l, const CTable& r, EvalStats* stats = nullptr);
Result<CTable> UnionCT(const CTable& l, const CTable& r);
Result<CTable> DiffCT(const CTable& l, const CTable& r,
                      EvalStats* stats = nullptr);
Result<CTable> IntersectCT(const CTable& l, const CTable& r,
                           EvalStats* stats = nullptr);

/// Condition "t = s" componentwise.
ConditionPtr TuplesEqualCondition(const Tuple& t, const Tuple& s);

}  // namespace incdb

#endif  // INCDB_CTABLES_CTABLE_ALGEBRA_H_
