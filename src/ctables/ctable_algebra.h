// The Imieliński–Lipski algebra on conditional tables: a strong
// representation system for full relational algebra under CWA.
//
// For every operator the result's worlds are exactly the operator applied to
// the input's worlds: ⟦Q(T)⟧_cwa = Q(⟦T⟧_cwa). The price is condition
// growth — difference multiplies each left row's condition by the negation
// of every right row (bench E5 measures this).
//
// Supported selection predicates: equalities/inequalities under AND/OR/NOT
// (order comparisons are admitted only when both operands resolve to
// constants — a condition on nulls with `<` is outside the equality-
// condition language of c-tables).

#ifndef INCDB_CTABLES_CTABLE_ALGEBRA_H_
#define INCDB_CTABLES_CTABLE_ALGEBRA_H_

#include "algebra/ast.h"
#include "core/possible_worlds.h"
#include "ctables/condition_norm.h"
#include "ctables/ctable.h"
#include "engine/stats.h"

namespace incdb {

/// Evaluates a relational algebra expression over a c-table database.
/// Division is expanded to its σπ×− form first. Δ ranges over the active
/// domain (constants and nulls) of the c-database.
Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db,
                             const EvalOptions& options);
Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db);

/// The c-table-native pipeline's evaluator: same semantics as the overloads
/// above, but every produced row condition is lazily normalized/hash-consed
/// through `norm` (rows whose condition normalizes to `false` are dropped
/// outright), and when `options.use_hash_kernels` a σ-over-× peephole runs
/// the fused hash equi-join kernel (ctable_kernels.h) instead of
/// materializing the conditional cross product.
Result<CTable> EvalOnCTables(const RAExprPtr& e, const CDatabase& db,
                             const EvalOptions& options,
                             ConditionNormalizer* norm);

/// Converts a selection predicate applied to a (possibly null-carrying)
/// tuple into a condition. Fails (kUnsupported) for order comparisons with
/// unresolved nulls and for IS NULL (which is not world-invariant).
Result<ConditionPtr> PredicateToCondition(const PredicatePtr& pred,
                                          const Tuple& t);

// Individual operators, exposed for tests. Difference and intersection hash
// the right side's null-free rows by tuple so a complete left row only pairs
// with its exact match plus the null-carrying rows; because the Condition
// factories constant-fold, the skipped pairs would have contributed identity
// conditions and the result is structurally unchanged. When `norm` is
// non-null, result row conditions are normalized and rows proven `false`
// are dropped (semantics unchanged — those rows exist in no world).
Result<CTable> SelectCT(const PredicatePtr& pred, const CTable& in,
                        ConditionNormalizer* norm = nullptr);
CTable ProjectCT(const std::vector<size_t>& cols, const CTable& in);
CTable ProductCT(const CTable& l, const CTable& r, EvalStats* stats = nullptr,
                 ConditionNormalizer* norm = nullptr);
Result<CTable> UnionCT(const CTable& l, const CTable& r,
                       ConditionNormalizer* norm = nullptr);
Result<CTable> DiffCT(const CTable& l, const CTable& r,
                      EvalStats* stats = nullptr,
                      ConditionNormalizer* norm = nullptr);
Result<CTable> IntersectCT(const CTable& l, const CTable& r,
                           EvalStats* stats = nullptr,
                           ConditionNormalizer* norm = nullptr);

/// Condition "t = s" componentwise.
ConditionPtr TuplesEqualCondition(const Tuple& t, const Tuple& s);

/// D_t of the extraction equations: the condition under which the complete
/// tuple `cand` is a member of the world `t` represents under a valuation —
/// ⋁_rows (cond_r ∧ "tuple_r = cand"). The factories' constant folding drops
/// ground rows that cannot match, so the disjunction only carries the
/// candidate's exact-match rows plus the null-carrying rows. The counting
/// layer (counting/probabilistic.h) counts/samples satisfying valuations of
/// global ∧ D_t to turn membership into a probability.
ConditionPtr TupleMembershipCondition(const CTable& t, const Tuple& cand);

// ---------------------------------------------------------------------------
// Direct certain/possible-answer extraction (the c-table-native pipeline).
//
// Because c-tables are a strong representation system, the worlds of the
// result table T are exactly { Q(D') : D' ∈ ⟦D⟧_cwa }, so:
//
//   t is certain  ⟺  global(T) ∧ ¬D_t is unsatisfiable over the enumeration
//                    domain, where D_t = ⋁_rows (cond_r ∧ "tuple_r = t");
//   t is possible ⟺  some row's condition ∧ "tuple_r = t" is satisfiable.
//
// Satisfiability is decided over the same finite domain world enumeration
// uses (core/possible_worlds.h), which is what makes the answers
// bit-identical to CertainAnswersEnum / PossibleAnswersEnum — without ever
// materializing a world.
// ---------------------------------------------------------------------------

/// Certain answers of the result c-table `t` with nulls ranging over
/// `domain`. Candidates come from grounding `t` under one witness valuation
/// of the global condition (every certain tuple appears in that world), so
/// the cost is |rows| satisfiability checks, not |domain|^#nulls world
/// evaluations. Fails InvalidArgument when the global condition is
/// unsatisfiable over `domain` (the represented world set is empty, and
/// "certain" is undefined); ResourceExhausted when one satisfiability
/// search exceeds `budget` branch steps.
Result<Relation> CertainAnswersFromCTable(const CTable& t,
                                          const std::vector<Value>& domain,
                                          ConditionNormalizer* norm,
                                          uint64_t budget = 50'000'000,
                                          EvalStats* stats = nullptr);

/// Possible answers of `t` over `domain`: every grounding of every row's
/// tuple whose combined condition (global ∧ row ∧ bindings) is satisfiable.
/// Branches over tuple-null bindings are pruned as soon as the substituted
/// condition normalizes to `false`.
Result<Relation> PossibleAnswersFromCTable(const CTable& t,
                                           const std::vector<Value>& domain,
                                           ConditionNormalizer* norm,
                                           uint64_t budget = 50'000'000,
                                           EvalStats* stats = nullptr);

/// Certain answers computed representation-natively: lift `db` to c-tables,
/// run the (optimized, when options.optimize) plan through the normalizing
/// kernel evaluator, extract. Bit-identical to CertainAnswersEnum with the
/// same `opts` — including the OWA/WCWA positive-query guard — but never
/// enumerates worlds: databases whose |domain|^#nulls explodes past
/// opts.max_worlds stay answerable. opts.max_worlds is reused as the
/// per-check satisfiability branch budget; options.stats receives the
/// c-table operator counters plus cond_simplified / unsat_pruned.
Result<Relation> CertainAnswersCTable(const RAExprPtr& e, const Database& db,
                                      WorldSemantics semantics,
                                      const WorldEnumOptions& opts = {},
                                      const EvalOptions& options = {});

/// Possible answers, representation-natively. Bit-identical to
/// PossibleAnswersEnum with the same `opts`.
Result<Relation> PossibleAnswersCTable(const RAExprPtr& e, const Database& db,
                                       const WorldEnumOptions& opts = {},
                                       const EvalOptions& options = {});

}  // namespace incdb

#endif  // INCDB_CTABLES_CTABLE_ALGEBRA_H_
