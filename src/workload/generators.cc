#include "workload/generators.h"

#include <algorithm>
#include <set>

#include "util/status.h"

namespace incdb {

OrdersPaymentsWorkload MakeOrdersPayments(const OrdersPaymentsConfig& config) {
  Rng rng(config.seed);
  OrdersPaymentsWorkload w;

  Schema schema;
  INCDB_CHECK(schema.AddRelation("Order", {"o_id", "product"}).ok());
  INCDB_CHECK(schema.AddRelation("Pay", {"p_id", "order_id", "amount"}).ok());
  w.ground_truth = Database(schema);
  w.db = Database(schema);

  std::set<int64_t> paid;
  NullId next_null = 0;
  int64_t next_pid = 1;
  for (size_t i = 0; i < config.n_orders; ++i) {
    const int64_t oid = static_cast<int64_t>(i) + 1;
    const Value product = Value::Int(rng.UniformInt(1, 200));
    w.ground_truth.AddTuple("Order", Tuple{Value::Int(oid), product});
    w.db.AddTuple("Order", Tuple{Value::Int(oid), product});
    if (rng.Bernoulli(config.pay_fraction)) {
      paid.insert(oid);
      const Value pid = Value::Int(next_pid++);
      const Value amount = Value::Int(rng.UniformInt(10, 5000));
      w.ground_truth.AddTuple("Pay", Tuple{pid, Value::Int(oid), amount});
      // In the visible instance the order-id may be lost.
      const Value visible_oid = rng.Bernoulli(config.null_density)
                                    ? Value::Null(next_null++)
                                    : Value::Int(oid);
      w.db.AddTuple("Pay", Tuple{pid, visible_oid, amount});
    }
  }
  for (size_t i = 0; i < config.n_orders; ++i) {
    const int64_t oid = static_cast<int64_t>(i) + 1;
    if (paid.count(oid) == 0) w.truly_unpaid.push_back(oid);
  }
  return w;
}

Database MakeRandomDatabase(const RandomDbConfig& config) {
  Rng rng(config.seed);
  return MakeRandomDatabase(config, rng);
}

Database MakeRandomDatabase(const RandomDbConfig& config, Rng& rng) {
  Database db;
  NullId next_null = 0;
  std::vector<NullId> existing_nulls;
  for (size_t r = 0; r < config.arities.size(); ++r) {
    const std::string name = "R" + std::to_string(r);
    Relation* rel = db.MutableRelation(name, config.arities[r]);
    for (size_t row = 0; row < config.rows_per_relation; ++row) {
      std::vector<Value> vals;
      vals.reserve(config.arities[r]);
      for (size_t c = 0; c < config.arities[r]; ++c) {
        const bool nulls_capped =
            config.max_nulls > 0 && next_null >= config.max_nulls;
        const bool want_null =
            rng.Bernoulli(config.null_density) &&
            !(nulls_capped && (config.codd || existing_nulls.empty()));
        if (want_null) {
          // A Codd table never reuses a null; a naïve table reuses with
          // probability null_reuse (and always once the null cap is hit).
          const bool reuse =
              !config.codd && !existing_nulls.empty() &&
              (nulls_capped || rng.Bernoulli(config.null_reuse));
          if (reuse) {
            vals.push_back(Value::Null(
                existing_nulls[rng.Uniform(existing_nulls.size())]));
          } else {
            existing_nulls.push_back(next_null);
            vals.push_back(Value::Null(next_null++));
          }
        } else if (config.string_density > 0 &&
                   rng.Bernoulli(config.string_density)) {
          vals.push_back(Value::Str(
              "s" + std::to_string(rng.UniformInt(0, config.domain_size - 1))));
        } else {
          vals.push_back(Value::Int(rng.UniformInt(0, config.domain_size - 1)));
        }
      }
      rel->Add(Tuple(std::move(vals)));
    }
  }
  return db;
}

namespace {

// Random equality condition over the instance's nulls and small constants.
ConditionPtr RandomCondition(Rng& rng, const std::vector<NullId>& nulls,
                             int64_t domain_size, size_t depth) {
  auto leaf_value = [&]() -> Value {
    if (!nulls.empty() && rng.Bernoulli(0.6)) {
      return Value::Null(nulls[rng.Uniform(nulls.size())]);
    }
    return Value::Int(rng.UniformInt(0, domain_size - 1));
  };
  if (depth == 0 || rng.Bernoulli(0.5)) {
    ConditionPtr eq = Condition::Eq(leaf_value(), leaf_value());
    return rng.Bernoulli(0.3) ? Condition::Not(eq) : eq;
  }
  ConditionPtr l = RandomCondition(rng, nulls, domain_size, depth - 1);
  ConditionPtr r = RandomCondition(rng, nulls, domain_size, depth - 1);
  return rng.Bernoulli(0.5) ? Condition::And(std::move(l), std::move(r))
                            : Condition::Or(std::move(l), std::move(r));
}

}  // namespace

CDatabase MakeRandomCDatabase(const RandomCDbConfig& config) {
  Rng rng(config.base.seed);
  return MakeRandomCDatabase(config, rng);
}

CDatabase MakeRandomCDatabase(const RandomCDbConfig& config, Rng& rng) {
  const Database base = MakeRandomDatabase(config.base, rng);
  const std::set<NullId> null_set = base.Nulls();
  const std::vector<NullId> nulls(null_set.begin(), null_set.end());
  CDatabase out = CDatabase::FromDatabase(base);
  for (const auto& [name, rel] : base.relations()) {
    CTable* table = out.MutableTable(name, rel.arity());
    CTable conditioned(rel.arity());
    for (const CTableRow& row : table->rows()) {
      ConditionPtr c = Condition::True();
      if (rng.Bernoulli(config.condition_density)) {
        c = RandomCondition(rng, nulls, config.base.domain_size,
                            config.max_condition_depth);
      }
      conditioned.AddRow(row.tuple, std::move(c));
    }
    if (rng.Bernoulli(config.global_condition_p)) {
      conditioned.SetGlobalCondition(RandomCondition(
          rng, nulls, config.base.domain_size, config.max_condition_depth));
    }
    *table = std::move(conditioned);
  }
  return out;
}

Database MakeDivisionWorkload(const DivisionConfig& config) {
  Rng rng(config.seed);
  Schema schema;
  INCDB_CHECK(schema.AddRelation("Assign", {"employee", "project"}).ok());
  INCDB_CHECK(schema.AddRelation("Proj", {"project"}).ok());
  Database db(schema);
  for (size_t p = 0; p < config.n_projects; ++p) {
    db.AddTuple("Proj", Tuple{Value::Int(static_cast<int64_t>(p))});
  }
  for (size_t e = 0; e < config.n_employees; ++e) {
    const Value emp = Value::Int(static_cast<int64_t>(e));
    if (rng.Bernoulli(config.coverage)) {
      for (size_t p = 0; p < config.n_projects; ++p) {
        db.AddTuple("Assign", Tuple{emp, Value::Int(static_cast<int64_t>(p))});
      }
    } else {
      for (size_t p = 0; p < config.n_projects; ++p) {
        if (rng.Bernoulli(config.assign_density)) {
          db.AddTuple("Assign",
                      Tuple{emp, Value::Int(static_cast<int64_t>(p))});
        }
      }
    }
  }
  return db;
}

ConjunctiveQuery ChainCQ(size_t length, const std::string& relation) {
  ConjunctiveQuery q;
  for (size_t i = 0; i < length; ++i) {
    q.body.push_back(FoAtom{
        relation,
        {FoTerm::Var(static_cast<VarId>(i)),
         FoTerm::Var(static_cast<VarId>(i + 1))}});
  }
  return q;
}

ConjunctiveQuery StarCQ(size_t rays, const std::string& relation) {
  ConjunctiveQuery q;
  for (size_t i = 1; i <= rays; ++i) {
    q.body.push_back(FoAtom{
        relation,
        {FoTerm::Var(0), FoTerm::Var(static_cast<VarId>(i))}});
  }
  return q;
}

Database MakePathDatabase(size_t n, const std::string& relation) {
  Database db;
  Relation* rel = db.MutableRelation(relation, 2);
  for (size_t i = 0; i < n; ++i) {
    rel->Add(Tuple{Value::Int(static_cast<int64_t>(i)),
                   Value::Int(static_cast<int64_t>(i + 1))});
  }
  return db;
}

Database MakeRandomGraph(size_t n, size_t m, uint64_t seed,
                         const std::string& relation) {
  Rng rng(seed);
  Database db;
  Relation* rel = db.MutableRelation(relation, 2);
  for (size_t i = 0; i < m; ++i) {
    rel->Add(Tuple{Value::Int(static_cast<int64_t>(rng.Uniform(n))),
                   Value::Int(static_cast<int64_t>(rng.Uniform(n)))});
  }
  return db;
}

}  // namespace incdb
