#include "workload/generators.h"

#include <algorithm>
#include <set>

#include "util/status.h"

namespace incdb {

OrdersPaymentsWorkload MakeOrdersPayments(const OrdersPaymentsConfig& config) {
  Rng rng(config.seed);
  OrdersPaymentsWorkload w;

  Schema schema;
  INCDB_CHECK(schema.AddRelation("Order", {"o_id", "product"}).ok());
  INCDB_CHECK(schema.AddRelation("Pay", {"p_id", "order_id", "amount"}).ok());
  w.ground_truth = Database(schema);
  w.db = Database(schema);

  std::set<int64_t> paid;
  NullId next_null = 0;
  int64_t next_pid = 1;
  for (size_t i = 0; i < config.n_orders; ++i) {
    const int64_t oid = static_cast<int64_t>(i) + 1;
    const Value product = Value::Int(rng.UniformInt(1, 200));
    w.ground_truth.AddTuple("Order", Tuple{Value::Int(oid), product});
    w.db.AddTuple("Order", Tuple{Value::Int(oid), product});
    if (rng.Bernoulli(config.pay_fraction)) {
      paid.insert(oid);
      const Value pid = Value::Int(next_pid++);
      const Value amount = Value::Int(rng.UniformInt(10, 5000));
      w.ground_truth.AddTuple("Pay", Tuple{pid, Value::Int(oid), amount});
      // In the visible instance the order-id may be lost.
      const Value visible_oid = rng.Bernoulli(config.null_density)
                                    ? Value::Null(next_null++)
                                    : Value::Int(oid);
      w.db.AddTuple("Pay", Tuple{pid, visible_oid, amount});
    }
  }
  for (size_t i = 0; i < config.n_orders; ++i) {
    const int64_t oid = static_cast<int64_t>(i) + 1;
    if (paid.count(oid) == 0) w.truly_unpaid.push_back(oid);
  }
  return w;
}

Database MakeRandomDatabase(const RandomDbConfig& config) {
  Rng rng(config.seed);
  Database db;
  NullId next_null = 0;
  std::vector<NullId> existing_nulls;
  for (size_t r = 0; r < config.arities.size(); ++r) {
    const std::string name = "R" + std::to_string(r);
    Relation* rel = db.MutableRelation(name, config.arities[r]);
    for (size_t row = 0; row < config.rows_per_relation; ++row) {
      std::vector<Value> vals;
      vals.reserve(config.arities[r]);
      for (size_t c = 0; c < config.arities[r]; ++c) {
        if (rng.Bernoulli(config.null_density)) {
          if (!existing_nulls.empty() && rng.Bernoulli(config.null_reuse)) {
            vals.push_back(Value::Null(
                existing_nulls[rng.Uniform(existing_nulls.size())]));
          } else {
            existing_nulls.push_back(next_null);
            vals.push_back(Value::Null(next_null++));
          }
        } else {
          vals.push_back(Value::Int(rng.UniformInt(0, config.domain_size - 1)));
        }
      }
      rel->Add(Tuple(std::move(vals)));
    }
  }
  return db;
}

Database MakeDivisionWorkload(const DivisionConfig& config) {
  Rng rng(config.seed);
  Schema schema;
  INCDB_CHECK(schema.AddRelation("Assign", {"employee", "project"}).ok());
  INCDB_CHECK(schema.AddRelation("Proj", {"project"}).ok());
  Database db(schema);
  for (size_t p = 0; p < config.n_projects; ++p) {
    db.AddTuple("Proj", Tuple{Value::Int(static_cast<int64_t>(p))});
  }
  for (size_t e = 0; e < config.n_employees; ++e) {
    const Value emp = Value::Int(static_cast<int64_t>(e));
    if (rng.Bernoulli(config.coverage)) {
      for (size_t p = 0; p < config.n_projects; ++p) {
        db.AddTuple("Assign", Tuple{emp, Value::Int(static_cast<int64_t>(p))});
      }
    } else {
      for (size_t p = 0; p < config.n_projects; ++p) {
        if (rng.Bernoulli(config.assign_density)) {
          db.AddTuple("Assign",
                      Tuple{emp, Value::Int(static_cast<int64_t>(p))});
        }
      }
    }
  }
  return db;
}

ConjunctiveQuery ChainCQ(size_t length, const std::string& relation) {
  ConjunctiveQuery q;
  for (size_t i = 0; i < length; ++i) {
    q.body.push_back(FoAtom{
        relation,
        {FoTerm::Var(static_cast<VarId>(i)),
         FoTerm::Var(static_cast<VarId>(i + 1))}});
  }
  return q;
}

ConjunctiveQuery StarCQ(size_t rays, const std::string& relation) {
  ConjunctiveQuery q;
  for (size_t i = 1; i <= rays; ++i) {
    q.body.push_back(FoAtom{
        relation,
        {FoTerm::Var(0), FoTerm::Var(static_cast<VarId>(i))}});
  }
  return q;
}

Database MakePathDatabase(size_t n, const std::string& relation) {
  Database db;
  Relation* rel = db.MutableRelation(relation, 2);
  for (size_t i = 0; i < n; ++i) {
    rel->Add(Tuple{Value::Int(static_cast<int64_t>(i)),
                   Value::Int(static_cast<int64_t>(i + 1))});
  }
  return db;
}

Database MakeRandomGraph(size_t n, size_t m, uint64_t seed,
                         const std::string& relation) {
  Rng rng(seed);
  Database db;
  Relation* rel = db.MutableRelation(relation, 2);
  for (size_t i = 0; i < m; ++i) {
    rel->Add(Tuple{Value::Int(static_cast<int64_t>(rng.Uniform(n))),
                   Value::Int(static_cast<int64_t>(rng.Uniform(n)))});
  }
  return db;
}

}  // namespace incdb
