// Workload generators for tests, examples, and the bench harness.
//
// The orders/payments generator follows the paper's introduction example:
// Order(o_id, product), Pay(p_id, order_id, amount). Incompleteness is
// injected by replacing payment order-ids with fresh marked nulls, and the
// complete pre-injection world is kept as ground truth so experiments can
// measure what an evaluation scheme misses or fabricates.

#ifndef INCDB_WORKLOAD_GENERATORS_H_
#define INCDB_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "ctables/ctable.h"
#include "logic/cq.h"
#include "util/random.h"

namespace incdb {

/// Configuration of the orders/payments workload.
struct OrdersPaymentsConfig {
  size_t n_orders = 1000;
  /// Fraction of orders that received a payment in the true world.
  double pay_fraction = 0.8;
  /// Probability that a payment's order_id is replaced by a fresh null.
  double null_density = 0.1;
  uint64_t seed = 42;
};

/// Generated workload with ground truth.
struct OrdersPaymentsWorkload {
  Database db;            ///< incomplete instance (nulls in Pay.order_id)
  Database ground_truth;  ///< the complete world the nulls hide
  /// Order ids with no payment in the true world (the correct answer to the
  /// introduction's "unpaid orders" query).
  std::vector<int64_t> truly_unpaid;
};

OrdersPaymentsWorkload MakeOrdersPayments(const OrdersPaymentsConfig& config);

/// Configuration for random naïve databases.
struct RandomDbConfig {
  /// Arity of each generated relation; names are R0, R1, ....
  std::vector<size_t> arities = {2, 2};
  size_t rows_per_relation = 16;
  /// Constants are drawn uniformly from [0, domain_size).
  int64_t domain_size = 8;
  /// Per-cell probability of a null.
  double null_density = 0.2;
  /// Probability that a null cell reuses an existing marked null (shared
  /// marked nulls — the cases naïve tables can express but Codd tables
  /// cannot). Ignored when `codd` is set.
  double null_reuse = 0.3;
  /// Generate a Codd database: every null occurs exactly once (models SQL's
  /// unmarked NULL).
  bool codd = false;
  /// Probability that a constant cell is a string ("s<k>") instead of an int.
  double string_density = 0.0;
  /// Hard cap on distinct nulls across the instance (the fuzzing harness
  /// keeps this small so world enumeration stays tractable); 0 = unlimited.
  size_t max_nulls = 0;
  uint64_t seed = 1;
};

Database MakeRandomDatabase(const RandomDbConfig& config);
/// Deterministic variant drawing from an existing PRNG stream (`config.seed`
/// is ignored), so a fuzzing loop can derive many databases from one seed.
Database MakeRandomDatabase(const RandomDbConfig& config, Rng& rng);

/// Configuration for random conditional-table databases.
struct RandomCDbConfig {
  /// Shape of the underlying tuples (arities, rows, nulls, constants).
  RandomDbConfig base;
  /// Probability that a row carries a non-trivial condition.
  double condition_density = 0.5;
  /// Maximum depth of each row condition's AND/OR/NOT tree.
  size_t max_condition_depth = 2;
  /// Probability of a non-trivial global condition.
  double global_condition_p = 0.2;
};

/// A random c-database: random naïve tuples with random equality conditions
/// over the instance's nulls and small constants. Conditions go through the
/// folding factories, so rows may end with condition `true` (kept) or
/// `false` (kept too — Simplified() is the caller's choice).
CDatabase MakeRandomCDatabase(const RandomCDbConfig& config);
CDatabase MakeRandomCDatabase(const RandomCDbConfig& config, Rng& rng);

/// Division workload (bench E4): Emp(project, employee) and Proj(project).
/// Emp ÷ ... inverted: the classical query "employees assigned to every
/// project" is Assign(e, p) ÷ Proj(p). `coverage` controls the fraction of
/// employees assigned to all projects.
struct DivisionConfig {
  size_t n_employees = 1000;
  size_t n_projects = 10;
  double coverage = 0.2;  ///< fraction of employees covering every project
  double assign_density = 0.5;
  uint64_t seed = 7;
};

Database MakeDivisionWorkload(const DivisionConfig& config);

/// Boolean chain CQ: ∃x0..xk R(x0,x1) ∧ ... ∧ R(x_{k-1}, x_k).
ConjunctiveQuery ChainCQ(size_t length, const std::string& relation = "R");

/// Boolean star CQ: ∃c, x1..xk R(c, x1) ∧ ... ∧ R(c, xk).
ConjunctiveQuery StarCQ(size_t rays, const std::string& relation = "R");

/// A directed path of `n` edges in binary relation `relation`.
Database MakePathDatabase(size_t n, const std::string& relation = "R");

/// A random binary-relation graph with `n` nodes and `m` edges.
Database MakeRandomGraph(size_t n, size_t m, uint64_t seed,
                         const std::string& relation = "R");

}  // namespace incdb

#endif  // INCDB_WORKLOAD_GENERATORS_H_
