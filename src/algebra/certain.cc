#include "algebra/certain.h"

#include "algebra/eval.h"

namespace incdb {

Relation DropNullTuples(const Relation& r) {
  Relation out(r.arity());
  for (const Tuple& t : r.tuples()) {
    if (!t.HasNull()) out.Add(t);
  }
  return out;
}

Result<Relation> CertainAnswersNaive(const RAExprPtr& e, const Database& db,
                                     WorldSemantics semantics, bool force,
                                     const EvalOptions& options) {
  if (!force && !NaiveEvaluationWorks(e, semantics)) {
    return Status::Unsupported(
        std::string("naive evaluation has no certain-answer guarantee for a ") +
        QueryClassName(Classify(e)) + " query under " +
        WorldSemanticsName(semantics));
  }
  INCDB_ASSIGN_OR_RETURN(Relation naive, EvalNaive(e, db, options));
  return DropNullTuples(naive);
}

Result<Relation> CertainObjectNaive(const RAExprPtr& e, const Database& db,
                                    const EvalOptions& options) {
  return EvalNaive(e, db, options);
}

Result<Relation> CertainAnswersEnum(const RAExprPtr& e, const Database& db,
                                    WorldSemantics semantics,
                                    const WorldEnumOptions& opts,
                                    const EvalOptions& options) {
  INCDB_ASSIGN_OR_RETURN(size_t arity, e->InferArity(db.schema()));

  if (semantics == WorldSemantics::kOpenWorld ||
      semantics == WorldSemantics::kWeakClosedWorld) {
    // Sound only for monotone queries: the intersection over all worlds then
    // equals the intersection over the minimal worlds v(D).
    if (!IsPositive(e)) {
      return Status::Unsupported(
          "certain answers under owa/wcwa by enumeration require a positive "
          "(monotone) query; got " +
          std::string(QueryClassName(Classify(e))));
    }
  }

  bool first = true;
  Relation acc(arity);
  Status eval_error = Status::OK();
  Status st = ForEachWorldCwa(db, opts, [&](const Database& world) {
    auto ans = EvalComplete(e, world, options);
    if (!ans.ok()) {
      eval_error = ans.status();
      return false;
    }
    if (first) {
      acc = *ans;
      first = false;
    } else {
      Relation next(arity);
      for (const Tuple& t : acc.tuples()) {
        if (ans->Contains(t)) next.Add(t);
      }
      acc = std::move(next);
    }
    // Early exit: an empty intersection can only stay empty.
    return !acc.empty() || first;
  });
  INCDB_RETURN_IF_ERROR(eval_error);
  INCDB_RETURN_IF_ERROR(st);
  return acc;
}

Result<Relation> PossibleAnswersEnum(const RAExprPtr& e, const Database& db,
                                     const WorldEnumOptions& opts,
                                     const EvalOptions& options) {
  INCDB_ASSIGN_OR_RETURN(size_t arity, e->InferArity(db.schema()));
  Relation acc(arity);
  Status eval_error = Status::OK();
  Status st = ForEachWorldCwa(db, opts, [&](const Database& world) {
    auto ans = EvalComplete(e, world, options);
    if (!ans.ok()) {
      eval_error = ans.status();
      return false;
    }
    acc.AddAll(*ans);
    return true;
  });
  INCDB_RETURN_IF_ERROR(eval_error);
  INCDB_RETURN_IF_ERROR(st);
  return acc;
}

}  // namespace incdb
