#include "algebra/certain.h"

#include <vector>

#include "algebra/eval.h"
#include "algebra/optimize.h"
#include "engine/subplan_cache.h"
#include "util/thread_pool.h"

namespace incdb {
namespace {

// Per-worker accumulator for the parallel enumeration drivers. Each worker
// owns one slot (the parallel callbacks guarantee per-worker sequencing), so
// no slot ever needs a lock; only the final merge reads across slots.
struct WorkerAcc {
  Relation acc;
  bool first = true;
  EvalStats stats;
  Status error = Status::OK();
};

// Merges per-worker stats into the caller's sink in worker order and returns
// the lowest-worker evaluation error, if any.
Status MergeWorkerStats(std::vector<WorkerAcc>& workers,
                        const EvalOptions& options) {
  Status error = Status::OK();
  for (WorkerAcc& w : workers) {
    if (options.stats != nullptr) options.stats->Merge(w.stats);
    if (error.ok() && !w.error.ok()) error = w.error;
  }
  return error;
}

// Per-driver plan preparation: algebraic optimization (once, not per world)
// and world-invariant subplan caching. Guards and fragment checks run on the
// caller's original expression; both rewrites preserve answers exactly.
// `cached_subplans` receives the number of spliced subplan results — the
// drivers count that many cache hits for every world they evaluate.
Result<RAExprPtr> PrepareEnumPlan(const RAExprPtr& e, const Database& db,
                                  const EvalOptions& options,
                                  size_t* cached_subplans) {
  RAExprPtr plan = e;
  if (options.optimize) plan = Optimize(plan, db);
  if (options.cache_subplans && !db.Nulls().empty()) {
    INCDB_ASSIGN_OR_RETURN(PreparedPlan prep,
                           PrepareWorldInvariantPlan(plan, db, options));
    plan = prep.plan;
    *cached_subplans = prep.cached_subplans;
  }
  return plan;
}

}  // namespace

Relation DropNullTuples(const Relation& r) {
  Relation out(r.arity());
  for (const Tuple& t : r.tuples()) {
    if (!t.HasNull()) out.Add(t);
  }
  return out;
}

Result<Relation> CertainAnswersNaive(const RAExprPtr& e, const Database& db,
                                     WorldSemantics semantics, bool force,
                                     const EvalOptions& options) {
  if (!force && !NaiveEvaluationWorks(e, semantics)) {
    return Status::Unsupported(
        std::string("naive evaluation has no certain-answer guarantee for a ") +
        QueryClassName(Classify(e)) + " query under " +
        WorldSemanticsName(semantics));
  }
  INCDB_ASSIGN_OR_RETURN(Relation naive, EvalNaive(e, db, options));
  return DropNullTuples(naive);
}

Result<Relation> CertainObjectNaive(const RAExprPtr& e, const Database& db,
                                    const EvalOptions& options) {
  return EvalNaive(e, db, options);
}

Result<Relation> CertainAnswersEnum(const RAExprPtr& e, const Database& db,
                                    WorldSemantics semantics,
                                    const WorldEnumOptions& opts,
                                    const EvalOptions& options) {
  INCDB_ASSIGN_OR_RETURN(size_t arity, e->InferArity(db.schema()));

  if (semantics == WorldSemantics::kOpenWorld ||
      semantics == WorldSemantics::kWeakClosedWorld) {
    // Sound only for monotone queries: the intersection over all worlds then
    // equals the intersection over the minimal worlds v(D).
    if (!IsPositive(e)) {
      return Status::Unsupported(
          "certain answers under owa/wcwa by enumeration require a positive "
          "(monotone) query; got " +
          std::string(QueryClassName(Classify(e))));
    }
  }

  size_t cached_subplans = 0;
  INCDB_ASSIGN_OR_RETURN(RAExprPtr plan,
                         PrepareEnumPlan(e, db, options, &cached_subplans));

  if (ResolveNumThreads(options.num_threads) > 1 && !db.Nulls().empty()) {
    // Parallel driver: each worker intersects the answers of its own
    // sub-space; the final answer is the intersection of the per-worker
    // intersections, which equals the serial intersection over all worlds
    // (∩ is associative-commutative, and Relation is canonical, so the
    // result is bit-identical). Early exit: any empty worker intersection
    // forces the global answer empty, so it stops every worker.
    ForcePlanLiterals(plan);  // workers must only read literal lazy state
    std::vector<WorkerAcc> workers(ParallelChunkCount(
        options.num_threads, WorldDomain(db, opts).size(), /*grain=*/1));
    Status st = ForEachWorldCwaParallel(
        db, opts, options.num_threads,
        [&](const Database& world, size_t wi) {
          WorkerAcc& w = workers[wi];
          EvalOptions worker_options = options;
          worker_options.stats = &w.stats;
          auto ans = EvalComplete(plan, world, worker_options);
          if (!ans.ok()) {
            w.error = ans.status();
            return false;
          }
          w.stats.CountCacheHits(cached_subplans);
          if (w.first) {
            w.acc = *ans;
            w.first = false;
          } else {
            Relation next(arity);
            for (const Tuple& t : w.acc.tuples()) {
              if (ans->Contains(t)) next.Add(t);
            }
            w.acc = std::move(next);
          }
          return !w.acc.empty() || w.first;
        });
    INCDB_RETURN_IF_ERROR(MergeWorkerStats(workers, options));
    INCDB_RETURN_IF_ERROR(st);
    bool any = false;
    Relation acc(arity);
    for (WorkerAcc& w : workers) {
      if (w.first) continue;  // worker saw no world (stopped early / empty)
      if (!any) {
        acc = std::move(w.acc);
        any = true;
        continue;
      }
      Relation next(arity);
      for (const Tuple& t : acc.tuples()) {
        if (w.acc.Contains(t)) next.Add(t);
      }
      acc = std::move(next);
    }
    return acc;
  }

  bool first = true;
  Relation acc(arity);
  Status eval_error = Status::OK();
  Status st = ForEachWorldCwa(db, opts, [&](const Database& world) {
    auto ans = EvalComplete(plan, world, options);
    if (!ans.ok()) {
      eval_error = ans.status();
      return false;
    }
    if (options.stats != nullptr) options.stats->CountCacheHits(cached_subplans);
    if (first) {
      acc = *ans;
      first = false;
    } else {
      Relation next(arity);
      for (const Tuple& t : acc.tuples()) {
        if (ans->Contains(t)) next.Add(t);
      }
      acc = std::move(next);
    }
    // Early exit: an empty intersection can only stay empty.
    return !acc.empty() || first;
  });
  INCDB_RETURN_IF_ERROR(eval_error);
  INCDB_RETURN_IF_ERROR(st);
  return acc;
}

Result<Relation> PossibleAnswersEnum(const RAExprPtr& e, const Database& db,
                                     const WorldEnumOptions& opts,
                                     const EvalOptions& options) {
  INCDB_ASSIGN_OR_RETURN(size_t arity, e->InferArity(db.schema()));
  size_t cached_subplans = 0;
  INCDB_ASSIGN_OR_RETURN(RAExprPtr plan,
                         PrepareEnumPlan(e, db, options, &cached_subplans));
  if (ResolveNumThreads(options.num_threads) > 1 && !db.Nulls().empty()) {
    // Parallel driver: per-worker unions merged at the end. Union is
    // associative-commutative and Relation canonicalizes, so the merged
    // result is bit-identical to the serial union.
    ForcePlanLiterals(plan);  // workers must only read literal lazy state
    std::vector<WorkerAcc> workers(ParallelChunkCount(
        options.num_threads, WorldDomain(db, opts).size(), /*grain=*/1));
    for (WorkerAcc& w : workers) w.acc = Relation(arity);
    Status st = ForEachWorldCwaParallel(
        db, opts, options.num_threads,
        [&](const Database& world, size_t wi) {
          WorkerAcc& w = workers[wi];
          EvalOptions worker_options = options;
          worker_options.stats = &w.stats;
          auto ans = EvalComplete(plan, world, worker_options);
          if (!ans.ok()) {
            w.error = ans.status();
            return false;
          }
          w.stats.CountCacheHits(cached_subplans);
          w.acc.AddAll(*ans);
          return true;
        });
    INCDB_RETURN_IF_ERROR(MergeWorkerStats(workers, options));
    INCDB_RETURN_IF_ERROR(st);
    Relation acc(arity);
    for (WorkerAcc& w : workers) acc.AddAll(w.acc);
    return acc;
  }
  Relation acc(arity);
  Status eval_error = Status::OK();
  Status st = ForEachWorldCwa(db, opts, [&](const Database& world) {
    auto ans = EvalComplete(plan, world, options);
    if (!ans.ok()) {
      eval_error = ans.status();
      return false;
    }
    if (options.stats != nullptr) options.stats->CountCacheHits(cached_subplans);
    acc.AddAll(*ans);
    return true;
  });
  INCDB_RETURN_IF_ERROR(eval_error);
  INCDB_RETURN_IF_ERROR(st);
  return acc;
}

}  // namespace incdb
