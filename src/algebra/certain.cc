#include "algebra/certain.h"

#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "algebra/eval.h"
#include "algebra/optimize.h"
#include "engine/delta_eval.h"
#include "engine/subplan_cache.h"
#include "util/thread_pool.h"

namespace incdb {
namespace {

// Per-worker accumulator for the parallel enumeration drivers. Each worker
// owns one slot (the parallel callbacks guarantee per-worker sequencing), so
// no slot ever needs a lock; only the final merge reads across slots.
struct WorkerAcc {
  Relation acc;
  bool first = true;
  EvalStats stats;
  Status error = Status::OK();
};

// Merges per-worker stats into the caller's sink in worker order and returns
// the lowest-worker evaluation error, if any.
Status MergeWorkerStats(std::vector<WorkerAcc>& workers,
                        const EvalOptions& options) {
  Status error = Status::OK();
  for (WorkerAcc& w : workers) {
    if (options.stats != nullptr) options.stats->Merge(w.stats);
    if (error.ok() && !w.error.ok()) error = w.error;
  }
  return error;
}

// Per-driver plan preparation: algebraic optimization (once, not per world)
// and world-invariant subplan caching. Guards and fragment checks run on the
// caller's original expression; both rewrites preserve answers exactly.
// `cached_subplans` receives the number of spliced subplan results — the
// drivers count that many cache hits for every world they evaluate.
Result<RAExprPtr> PrepareEnumPlan(const RAExprPtr& e, const Database& db,
                                  const EvalOptions& options,
                                  size_t* cached_subplans) {
  RAExprPtr plan = e;
  if (options.optimize) plan = Optimize(plan, db);
  if (options.cache_subplans && !db.Nulls().empty()) {
    INCDB_ASSIGN_OR_RETURN(PreparedPlan prep,
                           PrepareWorldInvariantPlan(plan, db, options));
    plan = prep.plan;
    *cached_subplans = prep.cached_subplans;
  }
  return plan;
}

// True when the delta-evaluation path should drive enumeration for this
// plan: the knob is on, there is more than one world, and the plan compiles
// differentially (no Δ). The probe Build also forces the scanned relations'
// lazy state on the calling thread, which the parallel paths rely on.
bool DeltaEligible(const RAExprPtr& plan, const Database& db,
                   const EvalOptions& options) {
  if (!options.delta_eval || db.Nulls().empty()) return false;
  EvalOptions probe_options = options;
  probe_options.stats = nullptr;
  DeltaEvaluator probe;
  return probe.Build(plan, db, probe_options).ok();
}

// Per-worker state for the parallel delta drivers: each worker owns one
// DeltaEvaluator (built lazily on the worker's first callback, i.e. at its
// chain start) plus its partial answer.
struct DeltaWorker {
  std::unique_ptr<DeltaEvaluator> de;
  // Certain driver: the candidate tuples still present in every world the
  // worker has seen. Possible driver: unused (acc holds the union).
  std::unordered_set<Tuple, TupleHash> alive;
  Relation acc;
  bool started = false;
  EvalStats stats;
  Status error = Status::OK();
};

// Folds each worker's evaluator counters into its stats slot, merges the
// slots into the caller's sink in worker order, and returns the
// lowest-worker error, if any.
Status MergeDeltaWorkerStats(std::vector<DeltaWorker>& workers,
                             const EvalOptions& options) {
  Status error = Status::OK();
  for (DeltaWorker& w : workers) {
    if (w.de != nullptr) {
      w.stats.CountDeltaApplied(w.de->deltas_applied());
      w.stats.CountDeltaFallbacks(w.de->node_fallbacks());
    }
    if (options.stats != nullptr) options.stats->Merge(w.stats);
    if (error.ok() && !w.error.ok()) error = w.error;
  }
  return error;
}

}  // namespace

Relation DropNullTuples(const Relation& r) {
  Relation out(r.arity());
  for (const Tuple& t : r.tuples()) {
    if (!t.HasNull()) out.Add(t);
  }
  return out;
}

Result<Relation> CertainAnswersNaive(const RAExprPtr& e, const Database& db,
                                     WorldSemantics semantics, bool force,
                                     const EvalOptions& options) {
  if (!force && !NaiveEvaluationWorks(e, semantics)) {
    return Status::Unsupported(
        std::string("naive evaluation has no certain-answer guarantee for a ") +
        QueryClassName(Classify(e)) + " query under " +
        WorldSemanticsName(semantics));
  }
  INCDB_ASSIGN_OR_RETURN(Relation naive, EvalNaive(e, db, options));
  return DropNullTuples(naive);
}

Result<Relation> CertainObjectNaive(const RAExprPtr& e, const Database& db,
                                    const EvalOptions& options) {
  return EvalNaive(e, db, options);
}

Result<Relation> CertainAnswersEnum(const RAExprPtr& e, const Database& db,
                                    WorldSemantics semantics,
                                    const WorldEnumOptions& opts,
                                    const EvalOptions& options) {
  INCDB_ASSIGN_OR_RETURN(size_t arity, e->InferArity(db.schema()));

  if (semantics == WorldSemantics::kOpenWorld ||
      semantics == WorldSemantics::kWeakClosedWorld) {
    // Sound only for monotone queries: the intersection over all worlds then
    // equals the intersection over the minimal worlds v(D).
    if (!IsPositive(e)) {
      return Status::Unsupported(
          "certain answers under owa/wcwa by enumeration require a positive "
          "(monotone) query; got " +
          std::string(QueryClassName(Classify(e))));
    }
  }

  size_t cached_subplans = 0;
  INCDB_ASSIGN_OR_RETURN(RAExprPtr plan,
                         PrepareEnumPlan(e, db, options, &cached_subplans));
  const bool delta = DeltaEligible(plan, db, options);
  // Delta was requested but the plan is not differentiable (contains Δ):
  // count one fallback per world evaluated the classic way.
  const bool delta_fallback =
      options.delta_eval && !db.Nulls().empty() && !delta;

  if (ResolveNumThreads(options.num_threads) > 1 && !db.Nulls().empty()) {
    ForcePlanLiterals(plan);  // workers must only read literal lazy state
    const size_t chunks = ParallelChunkCount(
        options.num_threads, WorldDomain(db, opts).size(), /*grain=*/1);
    if (delta) {
      // Parallel delta driver: one Gray chain per worker. The worker seeds
      // its candidate set from its chain's first world and thereafter only
      // kills candidates reported removed by ApplyDelta — an incremental
      // intersection (a tuple absent from any earlier world of the chain
      // can never re-enter). Early exit matches the classic driver: an
      // empty worker set stops every worker.
      std::vector<DeltaWorker> workers(chunks);
      Status st = ForEachValuationGrayParallel(
          db, opts, options.num_threads,
          [&](const Valuation& v, const ValuationDelta& d, size_t wi) {
            DeltaWorker& w = workers[wi];
            Status s;
            if (!d.has_delta) {
              w.de = std::make_unique<DeltaEvaluator>();
              EvalOptions worker_options = options;
              worker_options.stats = &w.stats;
              s = w.de->Build(plan, db, worker_options);
              if (s.ok()) s = w.de->Initialize(v);
              if (!s.ok()) {
                w.error = s;
                return false;
              }
              const Relation out = w.de->Output();
              for (const Tuple& t : out.tuples()) w.alive.insert(t);
              w.started = true;
            } else {
              s = w.de->ApplyDelta(d);
              if (!s.ok()) {
                w.error = s;
                return false;
              }
              for (const Tuple& t : w.de->removed()) w.alive.erase(t);
            }
            w.stats.CountCacheHits(cached_subplans);
            return !w.alive.empty();
          });
      INCDB_RETURN_IF_ERROR(MergeDeltaWorkerStats(workers, options));
      INCDB_RETURN_IF_ERROR(st);
      bool any = false;
      Relation acc(arity);
      for (DeltaWorker& w : workers) {
        if (!w.started) continue;  // worker saw no world
        if (!any) {
          for (const Tuple& t : w.alive) acc.Add(t);
          any = true;
          continue;
        }
        Relation next(arity);
        for (const Tuple& t : acc.tuples()) {
          if (w.alive.count(t) > 0) next.Add(t);
        }
        acc = std::move(next);
      }
      return acc;
    }
    // Parallel driver: each worker intersects the answers of its own
    // sub-space; the final answer is the intersection of the per-worker
    // intersections, which equals the serial intersection over all worlds
    // (∩ is associative-commutative, and Relation is canonical, so the
    // result is bit-identical). Early exit: any empty worker intersection
    // forces the global answer empty, so it stops every worker.
    std::vector<WorkerAcc> workers(chunks);
    Status st = ForEachWorldCwaParallel(
        db, opts, options.num_threads,
        [&](const Database& world, size_t wi) {
          WorkerAcc& w = workers[wi];
          EvalOptions worker_options = options;
          worker_options.stats = &w.stats;
          auto ans = EvalComplete(plan, world, worker_options);
          if (!ans.ok()) {
            w.error = ans.status();
            return false;
          }
          w.stats.CountCacheHits(cached_subplans);
          if (delta_fallback) w.stats.CountDeltaFallbacks(1);
          if (w.first) {
            w.acc = *ans;
            w.first = false;
          } else {
            Relation next(arity);
            for (const Tuple& t : w.acc.tuples()) {
              if (ans->Contains(t)) next.Add(t);
            }
            w.acc = std::move(next);
          }
          return !w.acc.empty() || w.first;
        });
    INCDB_RETURN_IF_ERROR(MergeWorkerStats(workers, options));
    INCDB_RETURN_IF_ERROR(st);
    bool any = false;
    Relation acc(arity);
    for (WorkerAcc& w : workers) {
      if (w.first) continue;  // worker saw no world (stopped early / empty)
      if (!any) {
        acc = std::move(w.acc);
        any = true;
        continue;
      }
      Relation next(arity);
      for (const Tuple& t : acc.tuples()) {
        if (w.acc.Contains(t)) next.Add(t);
      }
      acc = std::move(next);
    }
    return acc;
  }

  if (delta) {
    // Serial delta driver: seed the candidate set from the chain's first
    // world, then kill candidates as ApplyDelta reports them removed.
    DeltaEvaluator de;
    INCDB_RETURN_IF_ERROR(de.Build(plan, db, options));
    std::unordered_set<Tuple, TupleHash> alive;
    bool started = false;
    Status eval_error = Status::OK();
    Status st = ForEachValuationGray(
        db, opts, [&](const Valuation& v, const ValuationDelta& d) {
          Status s;
          if (!d.has_delta) {
            s = de.Initialize(v);
            if (!s.ok()) {
              eval_error = s;
              return false;
            }
            if (!started) {
              const Relation out = de.Output();
              for (const Tuple& t : out.tuples()) alive.insert(t);
              started = true;
            } else {
              for (auto it = alive.begin(); it != alive.end();) {
                it = de.Contains(*it) ? std::next(it) : alive.erase(it);
              }
            }
          } else {
            s = de.ApplyDelta(d);
            if (!s.ok()) {
              eval_error = s;
              return false;
            }
            for (const Tuple& t : de.removed()) alive.erase(t);
          }
          if (options.stats != nullptr) {
            options.stats->CountCacheHits(cached_subplans);
          }
          // Early exit: an empty intersection can only stay empty.
          return !alive.empty();
        });
    if (options.stats != nullptr) {
      options.stats->CountDeltaApplied(de.deltas_applied());
      options.stats->CountDeltaFallbacks(de.node_fallbacks());
    }
    INCDB_RETURN_IF_ERROR(eval_error);
    INCDB_RETURN_IF_ERROR(st);
    Relation acc(arity);
    for (const Tuple& t : alive) acc.Add(t);
    return acc;
  }

  bool first = true;
  Relation acc(arity);
  Status eval_error = Status::OK();
  Status st = ForEachWorldCwa(db, opts, [&](const Database& world) {
    auto ans = EvalComplete(plan, world, options);
    if (!ans.ok()) {
      eval_error = ans.status();
      return false;
    }
    if (options.stats != nullptr) {
      options.stats->CountCacheHits(cached_subplans);
      if (delta_fallback) options.stats->CountDeltaFallbacks(1);
    }
    if (first) {
      acc = *ans;
      first = false;
    } else {
      Relation next(arity);
      for (const Tuple& t : acc.tuples()) {
        if (ans->Contains(t)) next.Add(t);
      }
      acc = std::move(next);
    }
    // Early exit: an empty intersection can only stay empty.
    return !acc.empty() || first;
  });
  INCDB_RETURN_IF_ERROR(eval_error);
  INCDB_RETURN_IF_ERROR(st);
  return acc;
}

Result<Relation> PossibleAnswersEnum(const RAExprPtr& e, const Database& db,
                                     const WorldEnumOptions& opts,
                                     const EvalOptions& options) {
  INCDB_ASSIGN_OR_RETURN(size_t arity, e->InferArity(db.schema()));
  size_t cached_subplans = 0;
  INCDB_ASSIGN_OR_RETURN(RAExprPtr plan,
                         PrepareEnumPlan(e, db, options, &cached_subplans));
  const bool delta = DeltaEligible(plan, db, options);
  const bool delta_fallback =
      options.delta_eval && !db.Nulls().empty() && !delta;
  if (ResolveNumThreads(options.num_threads) > 1 && !db.Nulls().empty()) {
    ForcePlanLiterals(plan);  // workers must only read literal lazy state
    const size_t chunks = ParallelChunkCount(
        options.num_threads, WorldDomain(db, opts).size(), /*grain=*/1);
    if (delta) {
      // Parallel delta driver: the union only grows, so each worker adds
      // its chain's first output once and thereafter only the tuples
      // ApplyDelta reports inserted.
      std::vector<DeltaWorker> workers(chunks);
      for (DeltaWorker& w : workers) w.acc = Relation(arity);
      Status st = ForEachValuationGrayParallel(
          db, opts, options.num_threads,
          [&](const Valuation& v, const ValuationDelta& d, size_t wi) {
            DeltaWorker& w = workers[wi];
            Status s;
            if (!d.has_delta) {
              w.de = std::make_unique<DeltaEvaluator>();
              EvalOptions worker_options = options;
              worker_options.stats = &w.stats;
              s = w.de->Build(plan, db, worker_options);
              if (s.ok()) s = w.de->Initialize(v);
              if (!s.ok()) {
                w.error = s;
                return false;
              }
              w.acc.AddAll(w.de->Output());
            } else {
              s = w.de->ApplyDelta(d);
              if (!s.ok()) {
                w.error = s;
                return false;
              }
              for (const Tuple& t : w.de->added()) w.acc.Add(t);
            }
            w.stats.CountCacheHits(cached_subplans);
            return true;
          });
      INCDB_RETURN_IF_ERROR(MergeDeltaWorkerStats(workers, options));
      INCDB_RETURN_IF_ERROR(st);
      Relation acc(arity);
      for (DeltaWorker& w : workers) acc.AddAll(w.acc);
      return acc;
    }
    // Parallel driver: per-worker unions merged at the end. Union is
    // associative-commutative and Relation canonicalizes, so the merged
    // result is bit-identical to the serial union.
    std::vector<WorkerAcc> workers(chunks);
    for (WorkerAcc& w : workers) w.acc = Relation(arity);
    Status st = ForEachWorldCwaParallel(
        db, opts, options.num_threads,
        [&](const Database& world, size_t wi) {
          WorkerAcc& w = workers[wi];
          EvalOptions worker_options = options;
          worker_options.stats = &w.stats;
          auto ans = EvalComplete(plan, world, worker_options);
          if (!ans.ok()) {
            w.error = ans.status();
            return false;
          }
          w.stats.CountCacheHits(cached_subplans);
          if (delta_fallback) w.stats.CountDeltaFallbacks(1);
          w.acc.AddAll(*ans);
          return true;
        });
    INCDB_RETURN_IF_ERROR(MergeWorkerStats(workers, options));
    INCDB_RETURN_IF_ERROR(st);
    Relation acc(arity);
    for (WorkerAcc& w : workers) acc.AddAll(w.acc);
    return acc;
  }
  if (delta) {
    // Serial delta driver: add the chain's first output, then only the
    // per-step insertions.
    DeltaEvaluator de;
    INCDB_RETURN_IF_ERROR(de.Build(plan, db, options));
    Relation acc(arity);
    Status eval_error = Status::OK();
    Status st = ForEachValuationGray(
        db, opts, [&](const Valuation& v, const ValuationDelta& d) {
          Status s;
          if (!d.has_delta) {
            s = de.Initialize(v);
            if (!s.ok()) {
              eval_error = s;
              return false;
            }
            acc.AddAll(de.Output());
          } else {
            s = de.ApplyDelta(d);
            if (!s.ok()) {
              eval_error = s;
              return false;
            }
            for (const Tuple& t : de.added()) acc.Add(t);
          }
          if (options.stats != nullptr) {
            options.stats->CountCacheHits(cached_subplans);
          }
          return true;
        });
    if (options.stats != nullptr) {
      options.stats->CountDeltaApplied(de.deltas_applied());
      options.stats->CountDeltaFallbacks(de.node_fallbacks());
    }
    INCDB_RETURN_IF_ERROR(eval_error);
    INCDB_RETURN_IF_ERROR(st);
    return acc;
  }
  Relation acc(arity);
  Status eval_error = Status::OK();
  Status st = ForEachWorldCwa(db, opts, [&](const Database& world) {
    auto ans = EvalComplete(plan, world, options);
    if (!ans.ok()) {
      eval_error = ans.status();
      return false;
    }
    if (options.stats != nullptr) {
      options.stats->CountCacheHits(cached_subplans);
      if (delta_fallback) options.stats->CountDeltaFallbacks(1);
    }
    acc.AddAll(*ans);
    return true;
  });
  INCDB_RETURN_IF_ERROR(eval_error);
  INCDB_RETURN_IF_ERROR(st);
  return acc;
}

}  // namespace incdb
