#include "algebra/eval.h"

#include <algorithm>
#include <vector>

#include "engine/kernels.h"
#include "engine/vectorized.h"

namespace incdb {
namespace {

// SplitForEquiJoin (the σ-over-× → hash-join peephole's key extraction)
// lives in engine/kernels.h, shared with the plan optimizer and the subplan
// cache's index pre-builder.

// Reference nested-loop division; kept as the semantics the hash kernel is
// property-tested against and used when hash kernels are disabled.
Result<Relation> DivideNestedLoop(const Relation& r, const Relation& s,
                                  EvalStats* stats) {
  if (s.arity() == 0 || s.arity() >= r.arity()) {
    return Status::InvalidArgument(
        "division requires 0 < arity(divisor) < arity(dividend); got " +
        std::to_string(s.arity()) + " and " + std::to_string(r.arity()));
  }
  OpScope scope(stats, EvalOp::kDivide);
  const size_t m = r.arity() - s.arity();
  std::vector<size_t> head(m);
  for (size_t i = 0; i < m; ++i) head[i] = i;
  Relation out(m);
  // Candidate heads: π_head(r).
  Relation heads(m);
  for (const Tuple& t : r.tuples()) heads.Add(t.Project(head));
  scope.CountIn(r.tuples().size() + s.tuples().size());
  uint64_t probes = 0;
  for (const Tuple& h : heads.tuples()) {
    bool all = true;
    for (const Tuple& sv : s.tuples()) {
      ++probes;
      if (!r.Contains(h.Concat(sv))) {
        all = false;
        break;
      }
    }
    if (all) out.Add(h);
  }
  scope.CountProbes(probes);
  scope.CountOut(out.tuples().size());
  return out;
}

struct Rec {
  const Database& db;
  const EvalOptions& options;
  EvalStats* stats;

  // Evaluates `e` without copying when it is a base-relation scan: the
  // returned pointer refers either to the database's relation (whose cached
  // hash index then survives across evaluations) or to `*storage`.
  Result<const Relation*> RunRef(const RAExprPtr& e, Relation* storage) {
    if (e->kind() == RAExpr::Kind::kScan) {
      OpScope scope(stats, EvalOp::kScan);
      const Relation& r = db.GetRelation(e->relation_name());
      scope.CountOut(r.size());
      return &r;
    }
    // Literals (including cached subplan results substituted by the subplan
    // cache) are used in place, so their hash and column indexes survive.
    if (e->kind() == RAExpr::Kind::kConstRel) return &e->literal();
    INCDB_ASSIGN_OR_RETURN(*storage, Run(e));
    return storage;
  }

  Result<Relation> Run(const RAExprPtr& e) {
    switch (e->kind()) {
      case RAExpr::Kind::kScan: {
        OpScope scope(stats, EvalOp::kScan);
        const Relation& r = db.GetRelation(e->relation_name());
        scope.CountOut(r.size());
        return r;
      }
      case RAExpr::Kind::kConstRel:
        return e->literal();
      case RAExpr::Kind::kSelect:
        return RunSelect(*e, /*projection=*/nullptr);
      case RAExpr::Kind::kProject: {
        // π over σ(l × r) fuses the projection into the join's emit.
        if (options.use_hash_kernels &&
            e->left()->kind() == RAExpr::Kind::kSelect &&
            e->left()->left()->kind() == RAExpr::Kind::kProduct) {
          return RunSelect(*e->left(), &e->columns());
        }
        Relation in_storage;
        INCDB_ASSIGN_OR_RETURN(const Relation* in,
                               RunRef(e->left(), &in_storage));
        OpScope scope(stats, EvalOp::kProject);
        Relation out(e->columns().size());
        for (const Tuple& t : in->tuples()) out.Add(t.Project(e->columns()));
        scope.CountIn(in->tuples().size());
        scope.CountOut(out.tuples().size());
        return out;
      }
      case RAExpr::Kind::kProduct: {
        Relation ls, rs;
        INCDB_ASSIGN_OR_RETURN(const Relation* l, RunRef(e->left(), &ls));
        INCDB_ASSIGN_OR_RETURN(const Relation* r, RunRef(e->right(), &rs));
        return Product(*l, *r);
      }
      case RAExpr::Kind::kUnion: {
        INCDB_ASSIGN_OR_RETURN(Relation l, Run(e->left()));
        Relation rs;
        INCDB_ASSIGN_OR_RETURN(const Relation* r, RunRef(e->right(), &rs));
        OpScope scope(stats, EvalOp::kUnion);
        scope.CountIn(l.tuples().size() + r->tuples().size());
        l.AddAll(*r);
        scope.CountOut(l.tuples().size());
        return l;
      }
      case RAExpr::Kind::kDiff: {
        Relation ls, rs;
        INCDB_ASSIGN_OR_RETURN(const Relation* l, RunRef(e->left(), &ls));
        INCDB_ASSIGN_OR_RETURN(const Relation* r, RunRef(e->right(), &rs));
        return HashDiff(*l, *r, options);
      }
      case RAExpr::Kind::kIntersect: {
        Relation ls, rs;
        INCDB_ASSIGN_OR_RETURN(const Relation* l, RunRef(e->left(), &ls));
        INCDB_ASSIGN_OR_RETURN(const Relation* r, RunRef(e->right(), &rs));
        return HashIntersect(*l, *r, options);
      }
      case RAExpr::Kind::kDivide: {
        Relation ls, rs;
        INCDB_ASSIGN_OR_RETURN(const Relation* l, RunRef(e->left(), &ls));
        INCDB_ASSIGN_OR_RETURN(const Relation* r, RunRef(e->right(), &rs));
        if (!options.use_hash_kernels) return DivideNestedLoop(*l, *r, stats);
        return HashDivide(*l, *r, options);
      }
      case RAExpr::Kind::kDelta: {
        OpScope scope(stats, EvalOp::kDelta);
        Relation out(2);
        for (const Value& v : db.ActiveDomain()) out.Add(Tuple{v, v});
        scope.CountOut(out.tuples().size());
        return out;
      }
    }
    return Status::Internal("unknown RA node kind");
  }

  // σ_pred(child), optionally under π_projection (projection == nullptr when
  // absent). When the child is a product and the predicate carries
  // cross-boundary equalities, the σ (and π) fuse into a hash join.
  Result<Relation> RunSelect(const RAExpr& sel,
                             const std::vector<size_t>* projection) {
    if (options.use_hash_kernels &&
        sel.left()->kind() == RAExpr::Kind::kProduct) {
      Relation ls, rs;
      INCDB_ASSIGN_OR_RETURN(const Relation* l,
                             RunRef(sel.left()->left(), &ls));
      INCDB_ASSIGN_OR_RETURN(const Relation* r,
                             RunRef(sel.left()->right(), &rs));
      JoinSplit split = SplitForEquiJoin(sel.predicate(), l->arity());
      if (!split.keys.empty()) {
        return HashJoin(*l, *r, split.keys, split.residual.get(), projection,
                        options);
      }
      INCDB_ASSIGN_OR_RETURN(Relation in, Product(*l, *r));
      return Filter(sel.predicate(), in, projection);
    }
    Relation in_storage;
    INCDB_ASSIGN_OR_RETURN(const Relation* in,
                           RunRef(sel.left(), &in_storage));
    return Filter(sel.predicate(), *in, projection);
  }

  Result<Relation> Product(const Relation& l, const Relation& r) {
    OpScope scope(stats, EvalOp::kProduct);
    Relation out(l.arity() + r.arity());
    for (const Tuple& a : l.tuples()) {
      for (const Tuple& b : r.tuples()) out.Add(a.Concat(b));
    }
    scope.CountIn(l.tuples().size() + r.tuples().size());
    scope.CountOut(out.tuples().size());
    return out;
  }

  Result<Relation> Filter(const PredicatePtr& pred, const Relation& in,
                          const std::vector<size_t>* projection) {
    OpScope scope(stats, EvalOp::kSelect);
    Relation out(projection != nullptr ? projection->size() : in.arity());
    for (const Tuple& t : in.tuples()) {
      if (!pred->EvalNaive(t)) continue;
      out.Add(projection != nullptr ? t.Project(*projection) : t);
    }
    scope.CountIn(in.tuples().size());
    scope.CountOut(out.tuples().size());
    return out;
  }
};

}  // namespace

Result<Relation> DivideRelations(const Relation& r, const Relation& s) {
  return HashDivide(r, s);
}

Result<Relation> EvalNaive(const RAExprPtr& e, const Database& db,
                           const EvalOptions& options) {
  // Batch-at-a-time evaluation over columnar storage; plan shapes and
  // answers are identical, only the inner loops differ.
  if (UseVectorizedEval(options)) return EvalVectorized(e, db, options);
  // Validate typing once at the root.
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());
  Rec rec{db, options, options.stats};
  return rec.Run(e);
}

Result<Relation> EvalNaive(const RAExprPtr& e, const Database& db) {
  return EvalNaive(e, db, EvalOptions{});
}

Result<Relation> EvalComplete(const RAExprPtr& e, const Database& db,
                              const EvalOptions& options) {
  if (!db.IsComplete()) {
    return Status::InvalidArgument(
        "EvalComplete called on a database with nulls");
  }
  return EvalNaive(e, db, options);
}

Result<Relation> EvalComplete(const RAExprPtr& e, const Database& db) {
  return EvalComplete(e, db, EvalOptions{});
}

}  // namespace incdb
