#include "algebra/eval.h"

#include <algorithm>

namespace incdb {

Relation DivideRelations(const Relation& r, const Relation& s) {
  INCDB_CHECK_MSG(s.arity() > 0 && s.arity() < r.arity(),
                  "division arity constraint violated");
  const size_t m = r.arity() - s.arity();
  std::vector<size_t> head(m);
  for (size_t i = 0; i < m; ++i) head[i] = i;
  Relation out(m);
  // Candidate heads: π_head(r).
  Relation heads(m);
  for (const Tuple& t : r.tuples()) heads.Add(t.Project(head));
  for (const Tuple& h : heads.tuples()) {
    bool all = true;
    for (const Tuple& sv : s.tuples()) {
      if (!r.Contains(h.Concat(sv))) {
        all = false;
        break;
      }
    }
    if (all) out.Add(h);
  }
  return out;
}

Result<Relation> EvalNaive(const RAExprPtr& e, const Database& db) {
  // Validate typing once at the root.
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());

  struct Rec {
    const Database& db;
    Relation Run(const RAExprPtr& e) {
      switch (e->kind()) {
        case RAExpr::Kind::kScan:
          return db.GetRelation(e->relation_name());
        case RAExpr::Kind::kConstRel:
          return e->literal();
        case RAExpr::Kind::kSelect: {
          Relation in = Run(e->left());
          Relation out(in.arity());
          for (const Tuple& t : in.tuples()) {
            if (e->predicate()->EvalNaive(t)) out.Add(t);
          }
          return out;
        }
        case RAExpr::Kind::kProject: {
          Relation in = Run(e->left());
          Relation out(e->columns().size());
          for (const Tuple& t : in.tuples()) out.Add(t.Project(e->columns()));
          return out;
        }
        case RAExpr::Kind::kProduct: {
          Relation l = Run(e->left());
          Relation r = Run(e->right());
          Relation out(l.arity() + r.arity());
          for (const Tuple& a : l.tuples()) {
            for (const Tuple& b : r.tuples()) out.Add(a.Concat(b));
          }
          return out;
        }
        case RAExpr::Kind::kUnion: {
          Relation l = Run(e->left());
          Relation r = Run(e->right());
          l.AddAll(r);
          return l;
        }
        case RAExpr::Kind::kDiff: {
          Relation l = Run(e->left());
          Relation r = Run(e->right());
          Relation out(l.arity());
          for (const Tuple& t : l.tuples()) {
            if (!r.Contains(t)) out.Add(t);
          }
          return out;
        }
        case RAExpr::Kind::kIntersect: {
          Relation l = Run(e->left());
          Relation r = Run(e->right());
          Relation out(l.arity());
          for (const Tuple& t : l.tuples()) {
            if (r.Contains(t)) out.Add(t);
          }
          return out;
        }
        case RAExpr::Kind::kDivide:
          return DivideRelations(Run(e->left()), Run(e->right()));
        case RAExpr::Kind::kDelta: {
          Relation out(2);
          for (const Value& v : db.ActiveDomain()) out.Add(Tuple{v, v});
          return out;
        }
      }
      return Relation(0);
    }
  };

  Rec rec{db};
  return rec.Run(e);
}

Result<Relation> EvalComplete(const RAExprPtr& e, const Database& db) {
  if (!db.IsComplete()) {
    return Status::InvalidArgument(
        "EvalComplete called on a database with nulls");
  }
  return EvalNaive(e, db);
}

}  // namespace incdb
