#include "algebra/parser.h"

#include <cctype>

#include "util/strings.h"

namespace incdb {
namespace {

class RAParser {
 public:
  explicit RAParser(const std::string& text) : text_(text) {}

  Result<RAExprPtr> Parse() {
    INCDB_ASSIGN_OR_RETURN(RAExprPtr e, Expr());
    SkipSpace();
    if (pos_ < text_.size()) {
      return Err("trailing input");
    }
    return e;
  }

 private:
  // Every recursive cycle in the grammar passes through Expr() or (for
  // predicates) PredNot(), so a shared depth counter at those two points
  // bounds the parse stack: pathologically nested input — e.g. thousands of
  // opening parens — fails with a parse error instead of overflowing.
  static constexpr int kMaxDepth = 200;
  struct DepthGuard {
    explicit DepthGuard(int& depth) : d(depth) { ++d; }
    ~DepthGuard() { --d; }
    int& d;
  };

  // expr := term (('U' | '-' | '&') term)*
  Result<RAExprPtr> Expr() {
    DepthGuard guard(depth_);
    if (depth_ > kMaxDepth) return Err("expression nested too deeply");
    INCDB_ASSIGN_OR_RETURN(RAExprPtr lhs, TermExpr());
    for (;;) {
      SkipSpace();
      if (AcceptWord("U") || AcceptWord("union")) {
        INCDB_ASSIGN_OR_RETURN(RAExprPtr rhs, TermExpr());
        lhs = RAExpr::Union(lhs, rhs);
      } else if (Accept('-')) {
        INCDB_ASSIGN_OR_RETURN(RAExprPtr rhs, TermExpr());
        lhs = RAExpr::Diff(lhs, rhs);
      } else if (Accept('&')) {
        INCDB_ASSIGN_OR_RETURN(RAExprPtr rhs, TermExpr());
        lhs = RAExpr::Intersect(lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  // term := factor (('x' | '/') factor)*
  Result<RAExprPtr> TermExpr() {
    INCDB_ASSIGN_OR_RETURN(RAExprPtr lhs, Factor());
    for (;;) {
      SkipSpace();
      if (AcceptWord("x")) {
        INCDB_ASSIGN_OR_RETURN(RAExprPtr rhs, Factor());
        lhs = RAExpr::Product(lhs, rhs);
      } else if (Accept('/')) {
        INCDB_ASSIGN_OR_RETURN(RAExprPtr rhs, Factor());
        lhs = RAExpr::Divide(lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<RAExprPtr> Factor() {
    SkipSpace();
    if (Accept('(')) {
      INCDB_ASSIGN_OR_RETURN(RAExprPtr e, Expr());
      INCDB_RETURN_IF_ERROR(Expect(')'));
      return e;
    }
    if (PeekNonSpace() == '{') return RelLiteral();
    INCDB_ASSIGN_OR_RETURN(std::string word, Identifier());
    const std::string lower = ToLower(word);
    if (lower == "delta") return RAExpr::Delta();
    // `sel` / `proj` act as operators only when followed by their bracket,
    // so relations named Sel or Proj still parse as scans.
    if (lower == "sel" && PeekNonSpace() == '[') {
      INCDB_RETURN_IF_ERROR(Expect('['));
      INCDB_ASSIGN_OR_RETURN(PredicatePtr p, PredOr());
      INCDB_RETURN_IF_ERROR(Expect(']'));
      INCDB_RETURN_IF_ERROR(Expect('('));
      INCDB_ASSIGN_OR_RETURN(RAExprPtr e, Expr());
      INCDB_RETURN_IF_ERROR(Expect(')'));
      return RAExpr::Select(p, e);
    }
    if (lower == "proj" && PeekNonSpace() == '{') {
      INCDB_RETURN_IF_ERROR(Expect('{'));
      std::vector<size_t> cols;
      SkipSpace();
      if (!Accept('}')) {
        for (;;) {
          INCDB_ASSIGN_OR_RETURN(int64_t n, Integer());
          if (n < 0) return Err("negative projection column");
          cols.push_back(static_cast<size_t>(n));
          SkipSpace();
          if (Accept('}')) break;
          INCDB_RETURN_IF_ERROR(Expect(','));
        }
      }
      INCDB_RETURN_IF_ERROR(Expect('('));
      INCDB_ASSIGN_OR_RETURN(RAExprPtr e, Expr());
      INCDB_RETURN_IF_ERROR(Expect(')'));
      return RAExpr::Project(std::move(cols), e);
    }
    // A relation name.
    return RAExpr::Scan(word);
  }

  // Relation literal, round-tripping Relation::ToString():
  //   literal := '{' [ tuple (',' tuple)* ] '}'
  //   tuple   := '(' value (',' value)* ')'
  //   value   := integer | 'string' | _k (marked null)
  // The empty literal `{}` has arity 0 (the Boolean false relation); empty
  // relations of higher arity have no literal syntax — name one in the
  // database instead.
  Result<RAExprPtr> RelLiteral() {
    INCDB_RETURN_IF_ERROR(Expect('{'));
    SkipSpace();
    if (Accept('}')) return RAExpr::ConstRel(Relation(0));
    std::vector<Tuple> tuples;
    size_t arity = 0;
    for (;;) {
      INCDB_RETURN_IF_ERROR(Expect('('));
      std::vector<Value> vals;
      for (;;) {
        INCDB_ASSIGN_OR_RETURN(Value v, LiteralValue());
        vals.push_back(std::move(v));
        SkipSpace();
        if (Accept(')')) break;
        INCDB_RETURN_IF_ERROR(Expect(','));
      }
      if (tuples.empty()) {
        arity = vals.size();
      } else if (vals.size() != arity) {
        return Err("relation literal tuples have mixed arities");
      }
      tuples.push_back(Tuple(std::move(vals)));
      SkipSpace();
      if (Accept('}')) break;
      INCDB_RETURN_IF_ERROR(Expect(','));
    }
    return RAExpr::ConstRel(Relation(arity, std::move(tuples)));
  }

  Result<Value> LiteralValue() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '_') {
      ++pos_;
      INCDB_ASSIGN_OR_RETURN(int64_t n, Integer());
      if (n < 0) return Err("negative null id");
      return Value::Null(static_cast<NullId>(n));
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '\'') s += text_[pos_++];
      INCDB_RETURN_IF_ERROR(Expect('\''));
      return Value::Str(std::move(s));
    }
    INCDB_ASSIGN_OR_RETURN(int64_t n, Integer());
    return Value::Int(n);
  }

  // --- predicates ---
  Result<PredicatePtr> PredOr() {
    INCDB_ASSIGN_OR_RETURN(PredicatePtr lhs, PredAnd());
    while (AcceptWordCI("OR")) {
      INCDB_ASSIGN_OR_RETURN(PredicatePtr rhs, PredAnd());
      lhs = Predicate::Or(lhs, rhs);
    }
    return lhs;
  }

  Result<PredicatePtr> PredAnd() {
    INCDB_ASSIGN_OR_RETURN(PredicatePtr lhs, PredNot());
    while (AcceptWordCI("AND")) {
      INCDB_ASSIGN_OR_RETURN(PredicatePtr rhs, PredNot());
      lhs = Predicate::And(lhs, rhs);
    }
    return lhs;
  }

  Result<PredicatePtr> PredNot() {
    DepthGuard guard(depth_);
    if (depth_ > kMaxDepth) return Err("predicate nested too deeply");
    if (AcceptWordCI("NOT")) {
      INCDB_ASSIGN_OR_RETURN(PredicatePtr p, PredNot());
      return Predicate::Not(p);
    }
    return PredPrimary();
  }

  Result<PredicatePtr> PredPrimary() {
    SkipSpace();
    if (Accept('(')) {
      INCDB_ASSIGN_OR_RETURN(PredicatePtr p, PredOr());
      INCDB_RETURN_IF_ERROR(Expect(')'));
      return p;
    }
    if (AcceptWordCI("TRUE")) return Predicate::True();
    if (AcceptWordCI("FALSE")) return Predicate::False();
    INCDB_ASSIGN_OR_RETURN(::incdb::Term lhs, PredTerm());
    if (AcceptWordCI("IS")) {
      const bool negated = AcceptWordCI("NOT");
      if (!AcceptWordCI("NULL")) return Err("expected NULL after IS");
      PredicatePtr p = Predicate::IsNull(lhs);
      return negated ? Predicate::Not(p) : p;
    }
    SkipSpace();
    CmpOp op;
    if (AcceptStr("<>") || AcceptStr("!=")) {
      op = CmpOp::kNe;
    } else if (AcceptStr("<=")) {
      op = CmpOp::kLe;
    } else if (AcceptStr(">=")) {
      op = CmpOp::kGe;
    } else if (Accept('=')) {
      op = CmpOp::kEq;
    } else if (Accept('<')) {
      op = CmpOp::kLt;
    } else if (Accept('>')) {
      op = CmpOp::kGt;
    } else {
      return Err("expected comparison operator");
    }
    INCDB_ASSIGN_OR_RETURN(::incdb::Term rhs, PredTerm());
    return Predicate::Cmp(op, lhs, rhs);
  }

  Result<::incdb::Term> PredTerm() {
    SkipSpace();
    if (Accept('#')) {
      INCDB_ASSIGN_OR_RETURN(int64_t n, Integer());
      if (n < 0) return Err("negative column index");
      return ::incdb::Term::Column(static_cast<size_t>(n));
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '\'') s += text_[pos_++];
      INCDB_RETURN_IF_ERROR(Expect('\''));
      return ::incdb::Term::Const(Value::Str(std::move(s)));
    }
    INCDB_ASSIGN_OR_RETURN(int64_t n, Integer());
    return ::incdb::Term::Const(Value::Int(n));
  }

  // --- lexing helpers ---
  char PeekNonSpace() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Accept(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptStr(const std::string& s) {
    SkipSpace();
    if (text_.compare(pos_, s.size(), s) == 0) {
      pos_ += s.size();
      return true;
    }
    return false;
  }
  // Word: must be delimited (not part of a longer identifier).
  bool AcceptWord(const std::string& w) {
    SkipSpace();
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    const size_t end = pos_ + w.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }
  bool AcceptWordCI(const std::string& w) {
    SkipSpace();
    if (pos_ + w.size() > text_.size()) return false;
    for (size_t i = 0; i < w.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::toupper(static_cast<unsigned char>(w[i]))) {
        return false;
      }
    }
    const size_t end = pos_ + w.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }
  Status Expect(char c) {
    if (Accept(c)) return Status::OK();
    return Err(std::string("expected '") + c + "'");
  }
  Result<std::string> Identifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected identifier");
    return text_.substr(start, pos_ - start);
  }
  Result<int64_t> Integer() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Err("expected integer");
    }
    return std::stoll(text_.substr(start, pos_ - start));
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_) +
                              " in RA expression");
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<RAExprPtr> ParseRA(const std::string& text) {
  RAParser p(text);
  return p.Parse();
}

}  // namespace incdb
