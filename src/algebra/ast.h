// Relational algebra expression trees.
//
// Operators: scan, literal relation, σ (select), π (project), × (product),
// ∪ (union), − (difference), ∩ (intersection), ÷ (division), and Δ — the
// diagonal { (a,a) | a ∈ adom(D) } used by the paper's RA_cwa fragment
// (Section 6.2). Columns are positional; attribute-name resolution lives in
// the SQL layer.

#ifndef INCDB_ALGEBRA_AST_H_
#define INCDB_ALGEBRA_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "core/database.h"
#include "core/relation.h"

namespace incdb {

class RAExpr;
using RAExprPtr = std::shared_ptr<const RAExpr>;

/// One node of a relational algebra expression.
class RAExpr {
 public:
  enum class Kind {
    kScan,      ///< base relation by name
    kConstRel,  ///< literal relation
    kSelect,    ///< σ_pred(child)
    kProject,   ///< π_cols(child)
    kProduct,   ///< left × right
    kUnion,     ///< left ∪ right
    kDiff,      ///< left − right
    kIntersect, ///< left ∩ right
    kDivide,    ///< left ÷ right (divides on the last arity(right) columns)
    kDelta,     ///< Δ = {(a,a) | a ∈ adom(D)}
  };

  Kind kind() const { return kind_; }
  const std::string& relation_name() const { return name_; }
  const Relation& literal() const { return literal_; }
  const PredicatePtr& predicate() const { return pred_; }
  const std::vector<size_t>& columns() const { return cols_; }
  const RAExprPtr& left() const { return left_; }
  const RAExprPtr& right() const { return right_; }

  /// Output arity given a schema (validates column/arity consistency).
  Result<size_t> InferArity(const Schema& schema) const;

  /// Algebra-style rendering, e.g. "π{0}(R − S)".
  std::string ToString() const;

  // Factories.
  static RAExprPtr Scan(std::string name);
  static RAExprPtr ConstRel(Relation r);
  static RAExprPtr Select(PredicatePtr pred, RAExprPtr child);
  static RAExprPtr Project(std::vector<size_t> cols, RAExprPtr child);
  static RAExprPtr Product(RAExprPtr l, RAExprPtr r);
  static RAExprPtr Union(RAExprPtr l, RAExprPtr r);
  static RAExprPtr Diff(RAExprPtr l, RAExprPtr r);
  static RAExprPtr Intersect(RAExprPtr l, RAExprPtr r);
  static RAExprPtr Divide(RAExprPtr l, RAExprPtr r);
  static RAExprPtr Delta();

  /// Rewrites ÷ into its σπ×− expansion:
  ///   R ÷ S = π_A(R) − π_A((π_A(R) × S) − R).
  /// Used by evaluators that do not implement division natively (c-tables).
  static RAExprPtr ExpandDivision(const RAExprPtr& e, const Schema& schema);

 private:
  explicit RAExpr(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  Relation literal_{0};
  PredicatePtr pred_;
  std::vector<size_t> cols_;
  RAExprPtr left_;
  RAExprPtr right_;
};

}  // namespace incdb

#endif  // INCDB_ALGEBRA_AST_H_
