// Selection predicates over tuples, with two evaluation modes:
//
//  * naïve   — nulls are treated as ordinary values; equality is syntactic
//              (⊥_3 = ⊥_3 holds, ⊥_3 = ⊥_4 and ⊥_3 = 5 do not). This is the
//              evaluation mode of the paper's "naïve evaluation" results.
//  * 3VL     — SQL's three-valued logic: any comparison touching a null is
//              UNKNOWN; AND/OR/NOT are Kleene; IS NULL never returns UNKNOWN.
//
// Order comparisons (<, <=, >, >=) between a null and anything use the total
// Value order under naïve evaluation; they are excluded from the positive
// fragment by the classifier, so no certain-answer guarantee ever depends on
// ordering nulls.

#ifndef INCDB_ALGEBRA_PREDICATE_H_
#define INCDB_ALGEBRA_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/tuple.h"
#include "util/status.h"

namespace incdb {

/// Kleene three-valued truth value (SQL's UNKNOWN is kUnknown).
enum class TruthValue { kFalse = 0, kUnknown = 1, kTrue = 2 };

TruthValue And3(TruthValue a, TruthValue b);
TruthValue Or3(TruthValue a, TruthValue b);
TruthValue Not3(TruthValue a);
const char* TruthValueName(TruthValue t);

/// A term in a comparison: a column of the input tuple or a constant.
struct Term {
  enum class Kind { kColumn, kConst };
  Kind kind = Kind::kColumn;
  size_t column = 0;  ///< valid when kind == kColumn
  Value constant;     ///< valid when kind == kConst

  static Term Column(size_t i) { return Term{Kind::kColumn, i, Value()}; }
  static Term Const(Value v) {
    return Term{Kind::kConst, 0, std::move(v)};
  }

  /// The term's value on `t`.
  const Value& Resolve(const Tuple& t) const;

  std::string ToString() const;
};

/// Comparison operators.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpSymbol(CmpOp op);

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

/// Immutable predicate AST node.
class Predicate {
 public:
  enum class Kind { kTrue, kFalse, kCmp, kAnd, kOr, kNot, kIsNull };

  Kind kind() const { return kind_; }
  CmpOp op() const { return op_; }
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }
  const PredicatePtr& left() const { return left_; }
  const PredicatePtr& right() const { return right_; }

  /// Largest column index mentioned (for arity validation); -1 if none.
  int MaxColumn() const;

  std::string ToString() const;

  // Factories.
  static PredicatePtr True();
  static PredicatePtr False();
  static PredicatePtr Cmp(CmpOp op, Term lhs, Term rhs);
  static PredicatePtr Eq(Term lhs, Term rhs);
  static PredicatePtr Ne(Term lhs, Term rhs);
  static PredicatePtr And(PredicatePtr a, PredicatePtr b);
  static PredicatePtr Or(PredicatePtr a, PredicatePtr b);
  static PredicatePtr Not(PredicatePtr a);
  static PredicatePtr IsNull(Term t);

  /// Naïve evaluation: nulls are values; two-valued.
  bool EvalNaive(const Tuple& t) const;

  /// SQL three-valued evaluation.
  TruthValue Eval3VL(const Tuple& t) const;

  /// True if the predicate is in the positive fragment: built from TRUE and
  /// equalities with AND/OR only (the selection conditions of UCQs).
  bool IsPositive() const;

  /// Rewrites column references by `shift` (used when predicates move across
  /// products).
  PredicatePtr ShiftColumns(int shift) const;

 private:
  Predicate(Kind kind) : kind_(kind) {}

  Kind kind_;
  CmpOp op_ = CmpOp::kEq;
  Term lhs_;
  Term rhs_;
  PredicatePtr left_;
  PredicatePtr right_;
};

}  // namespace incdb

#endif  // INCDB_ALGEBRA_PREDICATE_H_
