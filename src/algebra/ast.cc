#include "algebra/ast.h"

#include "util/strings.h"

namespace incdb {

Result<size_t> RAExpr::InferArity(const Schema& schema) const {
  switch (kind_) {
    case Kind::kScan:
      return schema.Arity(name_);
    case Kind::kConstRel:
      return literal_.arity();
    case Kind::kSelect: {
      INCDB_ASSIGN_OR_RETURN(size_t a, left_->InferArity(schema));
      if (pred_->MaxColumn() >= static_cast<int>(a)) {
        return Status::InvalidArgument(
            "selection predicate references column beyond arity " +
            std::to_string(a) + ": " + pred_->ToString());
      }
      return a;
    }
    case Kind::kProject: {
      INCDB_ASSIGN_OR_RETURN(size_t a, left_->InferArity(schema));
      for (size_t c : cols_) {
        if (c >= a) {
          return Status::InvalidArgument("projection column " +
                                         std::to_string(c) +
                                         " beyond arity " + std::to_string(a));
        }
      }
      return cols_.size();
    }
    case Kind::kProduct: {
      INCDB_ASSIGN_OR_RETURN(size_t a, left_->InferArity(schema));
      INCDB_ASSIGN_OR_RETURN(size_t b, right_->InferArity(schema));
      return a + b;
    }
    case Kind::kUnion:
    case Kind::kDiff:
    case Kind::kIntersect: {
      INCDB_ASSIGN_OR_RETURN(size_t a, left_->InferArity(schema));
      INCDB_ASSIGN_OR_RETURN(size_t b, right_->InferArity(schema));
      if (a != b) {
        return Status::InvalidArgument(
            "set operation on mismatched arities " + std::to_string(a) +
            " vs " + std::to_string(b));
      }
      return a;
    }
    case Kind::kDivide: {
      INCDB_ASSIGN_OR_RETURN(size_t a, left_->InferArity(schema));
      INCDB_ASSIGN_OR_RETURN(size_t b, right_->InferArity(schema));
      if (b == 0 || b >= a) {
        return Status::InvalidArgument(
            "division requires 0 < arity(divisor) < arity(dividend); got " +
            std::to_string(b) + " and " + std::to_string(a));
      }
      return a - b;
    }
    case Kind::kDelta:
      return size_t{2};
  }
  return Status::Internal("unknown RA node kind");
}

std::string RAExpr::ToString() const {
  switch (kind_) {
    case Kind::kScan:
      return name_;
    case Kind::kConstRel:
      return literal_.ToString();
    case Kind::kSelect:
      return "sel[" + pred_->ToString() + "](" + left_->ToString() + ")";
    case Kind::kProject: {
      std::vector<std::string> cs;
      cs.reserve(cols_.size());
      for (size_t c : cols_) cs.push_back(std::to_string(c));
      return "proj{" + Join(cs, ",") + "}(" + left_->ToString() + ")";
    }
    case Kind::kProduct:
      return "(" + left_->ToString() + " x " + right_->ToString() + ")";
    case Kind::kUnion:
      return "(" + left_->ToString() + " U " + right_->ToString() + ")";
    case Kind::kDiff:
      return "(" + left_->ToString() + " - " + right_->ToString() + ")";
    case Kind::kIntersect:
      return "(" + left_->ToString() + " & " + right_->ToString() + ")";
    case Kind::kDivide:
      return "(" + left_->ToString() + " / " + right_->ToString() + ")";
    case Kind::kDelta:
      return "DELTA";
  }
  return "?";
}

RAExprPtr RAExpr::Scan(std::string name) {
  auto* e = new RAExpr(Kind::kScan);
  e->name_ = std::move(name);
  return RAExprPtr(e);
}

RAExprPtr RAExpr::ConstRel(Relation r) {
  auto* e = new RAExpr(Kind::kConstRel);
  e->literal_ = std::move(r);
  return RAExprPtr(e);
}

RAExprPtr RAExpr::Select(PredicatePtr pred, RAExprPtr child) {
  auto* e = new RAExpr(Kind::kSelect);
  e->pred_ = std::move(pred);
  e->left_ = std::move(child);
  return RAExprPtr(e);
}

RAExprPtr RAExpr::Project(std::vector<size_t> cols, RAExprPtr child) {
  auto* e = new RAExpr(Kind::kProject);
  e->cols_ = std::move(cols);
  e->left_ = std::move(child);
  return RAExprPtr(e);
}

RAExprPtr RAExpr::Product(RAExprPtr l, RAExprPtr r) {
  auto* e = new RAExpr(Kind::kProduct);
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return RAExprPtr(e);
}
RAExprPtr RAExpr::Union(RAExprPtr l, RAExprPtr r) {
  auto* e = new RAExpr(Kind::kUnion);
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return RAExprPtr(e);
}
RAExprPtr RAExpr::Diff(RAExprPtr l, RAExprPtr r) {
  auto* e = new RAExpr(Kind::kDiff);
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return RAExprPtr(e);
}
RAExprPtr RAExpr::Intersect(RAExprPtr l, RAExprPtr r) {
  auto* e = new RAExpr(Kind::kIntersect);
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return RAExprPtr(e);
}
RAExprPtr RAExpr::Divide(RAExprPtr l, RAExprPtr r) {
  auto* e = new RAExpr(Kind::kDivide);
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return RAExprPtr(e);
}

RAExprPtr RAExpr::Delta() { return RAExprPtr(new RAExpr(Kind::kDelta)); }

RAExprPtr RAExpr::ExpandDivision(const RAExprPtr& e, const Schema& schema) {
  switch (e->kind()) {
    case Kind::kScan:
    case Kind::kConstRel:
    case Kind::kDelta:
      return e;
    case Kind::kSelect:
      return Select(e->predicate(), ExpandDivision(e->left(), schema));
    case Kind::kProject:
      return Project(e->columns(), ExpandDivision(e->left(), schema));
    case Kind::kProduct:
      return Product(ExpandDivision(e->left(), schema),
                     ExpandDivision(e->right(), schema));
    case Kind::kUnion:
      return Union(ExpandDivision(e->left(), schema),
                   ExpandDivision(e->right(), schema));
    case Kind::kDiff:
      return Diff(ExpandDivision(e->left(), schema),
                  ExpandDivision(e->right(), schema));
    case Kind::kIntersect:
      return Intersect(ExpandDivision(e->left(), schema),
                       ExpandDivision(e->right(), schema));
    case Kind::kDivide: {
      RAExprPtr r = ExpandDivision(e->left(), schema);
      RAExprPtr s = ExpandDivision(e->right(), schema);
      auto ra = r->InferArity(schema);
      auto sa = s->InferArity(schema);
      INCDB_CHECK_MSG(ra.ok() && sa.ok(), "division expansion on ill-typed AST");
      const size_t n = *ra;
      const size_t k = *sa;
      const size_t m = n - k;  // result arity
      std::vector<size_t> head(m);
      for (size_t i = 0; i < m; ++i) head[i] = i;
      // π_A(R)
      RAExprPtr pa = Project(head, r);
      // π_A(R) × S  (columns 0..m-1 from pa, m..n-1 from S)
      RAExprPtr cross = Product(pa, s);
      // (π_A(R) × S) − R
      RAExprPtr missing = Diff(cross, r);
      // π_A(...)
      RAExprPtr bad = Project(head, missing);
      // π_A(R) − bad
      return Diff(pa, bad);
    }
  }
  return e;
}

}  // namespace incdb
