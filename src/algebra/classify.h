// Static classification of relational algebra queries into the paper's
// fragments (Sections 2 and 6.2):
//
//  * kPositive — σπ×∪∩ with positive selection predicates (equalities under
//    AND/OR). Expressively: unions of conjunctive queries. Naïve evaluation
//    computes certain answers under both OWA and CWA.
//  * kRAcwa — positive algebra extended with guarded division Q ÷ Q' where
//    Q' ∈ RA(Δ, π, ×, ∪) (built from base relations and Δ by π, ×, ∪ only).
//    Equals Pos∀G; cwa-naïve evaluation works.
//  * kFullRA — anything else (uses −, unguarded ÷, negated/ordered
//    predicates, IS NULL). No naïve-evaluation guarantee; certain answers
//    are coNP-hard (CWA) / undecidable (OWA).

#ifndef INCDB_ALGEBRA_CLASSIFY_H_
#define INCDB_ALGEBRA_CLASSIFY_H_

#include "algebra/ast.h"
#include "core/valuation.h"

namespace incdb {

enum class QueryClass {
  kPositive = 0,
  kRAcwa = 1,
  kFullRA = 2,
};

const char* QueryClassName(QueryClass c);

/// True if `e` is a positive-algebra query (UCQ-expressible).
bool IsPositive(const RAExprPtr& e);

/// True if `e` is in RA(Δ, π, ×, ∪): base relations and Δ closed under
/// projection, product, and union (the admissible divisors of RA_cwa).
bool IsDeltaPiTimesUnion(const RAExprPtr& e);

/// True if `e` is in RA_cwa.
bool IsRAcwa(const RAExprPtr& e);

/// The most specific class containing `e`.
QueryClass Classify(const RAExprPtr& e);

/// Naïve-evaluation guarantee (equation (4) of the paper): does naïve
/// evaluation compute certain answers for `e` under `semantics`?
bool NaiveEvaluationWorks(const RAExprPtr& e, WorldSemantics semantics);

}  // namespace incdb

#endif  // INCDB_ALGEBRA_CLASSIFY_H_
