#include "algebra/classify.h"

#include "core/valuation.h"

namespace incdb {

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kPositive:
      return "positive";
    case QueryClass::kRAcwa:
      return "RA_cwa";
    case QueryClass::kFullRA:
      return "full_RA";
  }
  return "?";
}

bool IsPositive(const RAExprPtr& e) {
  switch (e->kind()) {
    case RAExpr::Kind::kScan:
      return true;
    case RAExpr::Kind::kConstRel:
      // A literal without nulls is a constant UCQ body; with nulls it still
      // evaluates monotonically, so we admit it.
      return true;
    case RAExpr::Kind::kDelta:
      // Δ is definable in positive RA over the active domain.
      return true;
    case RAExpr::Kind::kSelect:
      return e->predicate()->IsPositive() && IsPositive(e->left());
    case RAExpr::Kind::kProject:
      return IsPositive(e->left());
    case RAExpr::Kind::kProduct:
    case RAExpr::Kind::kUnion:
    case RAExpr::Kind::kIntersect:
      return IsPositive(e->left()) && IsPositive(e->right());
    case RAExpr::Kind::kDiff:
    case RAExpr::Kind::kDivide:
      return false;
  }
  return false;
}

bool IsDeltaPiTimesUnion(const RAExprPtr& e) {
  switch (e->kind()) {
    case RAExpr::Kind::kScan:
    case RAExpr::Kind::kDelta:
      return true;
    case RAExpr::Kind::kProject:
      return IsDeltaPiTimesUnion(e->left());
    case RAExpr::Kind::kProduct:
    case RAExpr::Kind::kUnion:
      return IsDeltaPiTimesUnion(e->left()) && IsDeltaPiTimesUnion(e->right());
    default:
      return false;
  }
}

bool IsRAcwa(const RAExprPtr& e) {
  switch (e->kind()) {
    case RAExpr::Kind::kScan:
    case RAExpr::Kind::kConstRel:
    case RAExpr::Kind::kDelta:
      return true;
    case RAExpr::Kind::kSelect:
      return e->predicate()->IsPositive() && IsRAcwa(e->left());
    case RAExpr::Kind::kProject:
      return IsRAcwa(e->left());
    case RAExpr::Kind::kProduct:
    case RAExpr::Kind::kUnion:
    case RAExpr::Kind::kIntersect:
      return IsRAcwa(e->left()) && IsRAcwa(e->right());
    case RAExpr::Kind::kDivide:
      return IsRAcwa(e->left()) && IsDeltaPiTimesUnion(e->right());
    case RAExpr::Kind::kDiff:
      return false;
  }
  return false;
}

QueryClass Classify(const RAExprPtr& e) {
  if (IsPositive(e)) return QueryClass::kPositive;
  if (IsRAcwa(e)) return QueryClass::kRAcwa;
  return QueryClass::kFullRA;
}

bool NaiveEvaluationWorks(const RAExprPtr& e, WorldSemantics semantics) {
  const QueryClass c = Classify(e);
  switch (semantics) {
    case WorldSemantics::kOpenWorld:
      // UCQs only; this is optimal for FO under OWA [51].
      return c == QueryClass::kPositive;
    case WorldSemantics::kClosedWorld:
      // Pos∀G = RA_cwa [32], which subsumes the positive fragment.
      return c == QueryClass::kPositive || c == QueryClass::kRAcwa;
    case WorldSemantics::kWeakClosedWorld:
      // Positive FO (no universal guards); positive algebra is safe.
      return c == QueryClass::kPositive;
  }
  return false;
}

}  // namespace incdb
