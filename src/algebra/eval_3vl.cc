#include "algebra/eval_3vl.h"

namespace incdb {

TruthValue TupleEquals3VL(const Tuple& a, const Tuple& b) {
  if (a.arity() != b.arity()) return TruthValue::kFalse;
  TruthValue acc = TruthValue::kTrue;
  for (size_t i = 0; i < a.arity(); ++i) {
    TruthValue eq;
    if (a[i].is_null() || b[i].is_null()) {
      eq = TruthValue::kUnknown;
    } else {
      eq = (a[i] == b[i]) ? TruthValue::kTrue : TruthValue::kFalse;
    }
    acc = And3(acc, eq);
    if (acc == TruthValue::kFalse) return acc;
  }
  return acc;
}

Result<Relation> Eval3VL(const RAExprPtr& e, const Database& db) {
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());

  struct Rec {
    const Database& db;
    Relation Run(const RAExprPtr& e) {
      switch (e->kind()) {
        case RAExpr::Kind::kScan:
          return db.GetRelation(e->relation_name());
        case RAExpr::Kind::kConstRel:
          return e->literal();
        case RAExpr::Kind::kSelect: {
          Relation in = Run(e->left());
          Relation out(in.arity());
          for (const Tuple& t : in.tuples()) {
            if (e->predicate()->Eval3VL(t) == TruthValue::kTrue) out.Add(t);
          }
          return out;
        }
        case RAExpr::Kind::kProject: {
          Relation in = Run(e->left());
          Relation out(e->columns().size());
          for (const Tuple& t : in.tuples()) out.Add(t.Project(e->columns()));
          return out;
        }
        case RAExpr::Kind::kProduct: {
          Relation l = Run(e->left());
          Relation r = Run(e->right());
          Relation out(l.arity() + r.arity());
          for (const Tuple& a : l.tuples()) {
            for (const Tuple& b : r.tuples()) out.Add(a.Concat(b));
          }
          return out;
        }
        case RAExpr::Kind::kUnion: {
          Relation l = Run(e->left());
          l.AddAll(Run(e->right()));
          return l;
        }
        case RAExpr::Kind::kDiff: {
          // SQL NOT IN: keep t iff t=s is FALSE for every s (no TRUE, no
          // UNKNOWN).
          Relation l = Run(e->left());
          Relation r = Run(e->right());
          Relation out(l.arity());
          for (const Tuple& t : l.tuples()) {
            bool keep = true;
            for (const Tuple& s : r.tuples()) {
              if (TupleEquals3VL(t, s) != TruthValue::kFalse) {
                keep = false;
                break;
              }
            }
            if (keep) out.Add(t);
          }
          return out;
        }
        case RAExpr::Kind::kIntersect: {
          // SQL IN: keep t iff some s compares TRUE.
          Relation l = Run(e->left());
          Relation r = Run(e->right());
          Relation out(l.arity());
          for (const Tuple& t : l.tuples()) {
            for (const Tuple& s : r.tuples()) {
              if (TupleEquals3VL(t, s) == TruthValue::kTrue) {
                out.Add(t);
                break;
              }
            }
          }
          return out;
        }
        case RAExpr::Kind::kDivide: {
          Relation r = Run(e->left());
          Relation s = Run(e->right());
          const size_t m = r.arity() - s.arity();
          std::vector<size_t> head(m);
          for (size_t i = 0; i < m; ++i) head[i] = i;
          Relation heads(m);
          for (const Tuple& t : r.tuples()) heads.Add(t.Project(head));
          Relation out(m);
          for (const Tuple& h : heads.tuples()) {
            bool all = true;
            for (const Tuple& sv : s.tuples()) {
              const Tuple want = h.Concat(sv);
              bool found = false;
              for (const Tuple& rt : r.tuples()) {
                if (TupleEquals3VL(rt, want) == TruthValue::kTrue) {
                  found = true;
                  break;
                }
              }
              if (!found) {
                all = false;
                break;
              }
            }
            if (all) out.Add(h);
          }
          return out;
        }
        case RAExpr::Kind::kDelta: {
          Relation out(2);
          for (const Value& v : db.ActiveDomain()) out.Add(Tuple{v, v});
          return out;
        }
      }
      return Relation(0);
    }
  };

  Rec rec{db};
  return rec.Run(e);
}

}  // namespace incdb
