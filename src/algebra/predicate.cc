#include "algebra/predicate.h"

#include <algorithm>

namespace incdb {

TruthValue And3(TruthValue a, TruthValue b) {
  return static_cast<TruthValue>(
      std::min(static_cast<int>(a), static_cast<int>(b)));
}

TruthValue Or3(TruthValue a, TruthValue b) {
  return static_cast<TruthValue>(
      std::max(static_cast<int>(a), static_cast<int>(b)));
}

TruthValue Not3(TruthValue a) {
  return static_cast<TruthValue>(2 - static_cast<int>(a));
}

const char* TruthValueName(TruthValue t) {
  switch (t) {
    case TruthValue::kFalse:
      return "false";
    case TruthValue::kUnknown:
      return "unknown";
    case TruthValue::kTrue:
      return "true";
  }
  return "?";
}

const Value& Term::Resolve(const Tuple& t) const {
  if (kind == Kind::kConst) return constant;
  INCDB_CHECK_MSG(column < t.arity(), "predicate column out of range");
  return t[column];
}

std::string Term::ToString() const {
  if (kind == Kind::kConst) return constant.ToString();
  return "#" + std::to_string(column);
}

const char* CmpOpSymbol(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool CompareValues(CmpOp op, const Value& a, const Value& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

int Predicate::MaxColumn() const {
  int m = -1;
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      break;
    case Kind::kCmp:
      if (lhs_.kind == Term::Kind::kColumn) {
        m = std::max(m, static_cast<int>(lhs_.column));
      }
      if (rhs_.kind == Term::Kind::kColumn) {
        m = std::max(m, static_cast<int>(rhs_.column));
      }
      break;
    case Kind::kIsNull:
      if (lhs_.kind == Term::Kind::kColumn) {
        m = std::max(m, static_cast<int>(lhs_.column));
      }
      break;
    case Kind::kAnd:
    case Kind::kOr:
      m = std::max(left_->MaxColumn(), right_->MaxColumn());
      break;
    case Kind::kNot:
      m = left_->MaxColumn();
      break;
  }
  return m;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kCmp:
      return lhs_.ToString() + " " + CmpOpSymbol(op_) + " " + rhs_.ToString();
    case Kind::kIsNull:
      return lhs_.ToString() + " IS NULL";
    case Kind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + left_->ToString() + ")";
  }
  return "?";
}

PredicatePtr Predicate::True() {
  return PredicatePtr(new Predicate(Kind::kTrue));
}

PredicatePtr Predicate::False() {
  return PredicatePtr(new Predicate(Kind::kFalse));
}

PredicatePtr Predicate::Cmp(CmpOp op, Term lhs, Term rhs) {
  auto* p = new Predicate(Kind::kCmp);
  p->op_ = op;
  p->lhs_ = std::move(lhs);
  p->rhs_ = std::move(rhs);
  return PredicatePtr(p);
}

PredicatePtr Predicate::Eq(Term lhs, Term rhs) {
  return Cmp(CmpOp::kEq, std::move(lhs), std::move(rhs));
}

PredicatePtr Predicate::Ne(Term lhs, Term rhs) {
  return Cmp(CmpOp::kNe, std::move(lhs), std::move(rhs));
}

PredicatePtr Predicate::And(PredicatePtr a, PredicatePtr b) {
  auto* p = new Predicate(Kind::kAnd);
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return PredicatePtr(p);
}

PredicatePtr Predicate::Or(PredicatePtr a, PredicatePtr b) {
  auto* p = new Predicate(Kind::kOr);
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return PredicatePtr(p);
}

PredicatePtr Predicate::Not(PredicatePtr a) {
  auto* p = new Predicate(Kind::kNot);
  p->left_ = std::move(a);
  return PredicatePtr(p);
}

PredicatePtr Predicate::IsNull(Term t) {
  auto* p = new Predicate(Kind::kIsNull);
  p->lhs_ = std::move(t);
  return PredicatePtr(p);
}

bool Predicate::EvalNaive(const Tuple& t) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kCmp:
      return CompareValues(op_, lhs_.Resolve(t), rhs_.Resolve(t));
    case Kind::kIsNull:
      return lhs_.Resolve(t).is_null();
    case Kind::kAnd:
      return left_->EvalNaive(t) && right_->EvalNaive(t);
    case Kind::kOr:
      return left_->EvalNaive(t) || right_->EvalNaive(t);
    case Kind::kNot:
      return !left_->EvalNaive(t);
  }
  return false;
}

TruthValue Predicate::Eval3VL(const Tuple& t) const {
  switch (kind_) {
    case Kind::kTrue:
      return TruthValue::kTrue;
    case Kind::kFalse:
      return TruthValue::kFalse;
    case Kind::kCmp: {
      const Value& a = lhs_.Resolve(t);
      const Value& b = rhs_.Resolve(t);
      if (a.is_null() || b.is_null()) return TruthValue::kUnknown;
      return CompareValues(op_, a, b) ? TruthValue::kTrue : TruthValue::kFalse;
    }
    case Kind::kIsNull:
      return lhs_.Resolve(t).is_null() ? TruthValue::kTrue
                                       : TruthValue::kFalse;
    case Kind::kAnd:
      return And3(left_->Eval3VL(t), right_->Eval3VL(t));
    case Kind::kOr:
      return Or3(left_->Eval3VL(t), right_->Eval3VL(t));
    case Kind::kNot:
      return Not3(left_->Eval3VL(t));
  }
  return TruthValue::kUnknown;
}

bool Predicate::IsPositive() const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kCmp:
      return op_ == CmpOp::kEq;
    case Kind::kIsNull:
      return false;
    case Kind::kAnd:
    case Kind::kOr:
      return left_->IsPositive() && right_->IsPositive();
    case Kind::kNot:
      return false;
  }
  return false;
}

PredicatePtr Predicate::ShiftColumns(int shift) const {
  auto shift_term = [&](const Term& t) -> Term {
    if (t.kind != Term::Kind::kColumn) return t;
    Term out = t;
    out.column = static_cast<size_t>(static_cast<int>(t.column) + shift);
    return out;
  };
  switch (kind_) {
    case Kind::kTrue:
      return True();
    case Kind::kFalse:
      return False();
    case Kind::kCmp:
      return Cmp(op_, shift_term(lhs_), shift_term(rhs_));
    case Kind::kIsNull:
      return IsNull(shift_term(lhs_));
    case Kind::kAnd:
      return And(left_->ShiftColumns(shift), right_->ShiftColumns(shift));
    case Kind::kOr:
      return Or(left_->ShiftColumns(shift), right_->ShiftColumns(shift));
    case Kind::kNot:
      return Not(left_->ShiftColumns(shift));
  }
  return True();
}

}  // namespace incdb
