#include "algebra/optimize.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "algebra/classify.h"
#include "util/status.h"

namespace incdb {
namespace {

// ---------------------------------------------------------------------------
// Predicate utilities.

void FlattenAnd(const PredicatePtr& p, std::vector<PredicatePtr>* out) {
  if (p->kind() == Predicate::Kind::kAnd) {
    FlattenAnd(p->left(), out);
    FlattenAnd(p->right(), out);
    return;
  }
  out->push_back(p);
}

PredicatePtr AndAll(const std::vector<PredicatePtr>& conjuncts) {
  if (conjuncts.empty()) return Predicate::True();
  PredicatePtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Predicate::And(acc, conjuncts[i]);
  }
  return acc;
}

void CollectColumns(const PredicatePtr& p, std::set<size_t>* out) {
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
    case Predicate::Kind::kFalse:
      return;
    case Predicate::Kind::kCmp:
      if (p->lhs().kind == Term::Kind::kColumn) out->insert(p->lhs().column);
      if (p->rhs().kind == Term::Kind::kColumn) out->insert(p->rhs().column);
      return;
    case Predicate::Kind::kIsNull:
      if (p->lhs().kind == Term::Kind::kColumn) out->insert(p->lhs().column);
      return;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      CollectColumns(p->left(), out);
      CollectColumns(p->right(), out);
      return;
    case Predicate::Kind::kNot:
      CollectColumns(p->left(), out);
      return;
  }
}

Term RemapTerm(const Term& t, const std::vector<size_t>& col_map) {
  if (t.kind != Term::Kind::kColumn) return t;
  INCDB_CHECK_MSG(t.column < col_map.size(), "remap column out of range");
  return Term::Column(col_map[t.column]);
}

// Rebuilds `p` with every column reference `c` replaced by `col_map[c]`.
PredicatePtr RemapColumns(const PredicatePtr& p,
                          const std::vector<size_t>& col_map) {
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
    case Predicate::Kind::kFalse:
      return p;
    case Predicate::Kind::kCmp:
      return Predicate::Cmp(p->op(), RemapTerm(p->lhs(), col_map),
                            RemapTerm(p->rhs(), col_map));
    case Predicate::Kind::kIsNull:
      return Predicate::IsNull(RemapTerm(p->lhs(), col_map));
    case Predicate::Kind::kAnd:
      return Predicate::And(RemapColumns(p->left(), col_map),
                            RemapColumns(p->right(), col_map));
    case Predicate::Kind::kOr:
      return Predicate::Or(RemapColumns(p->left(), col_map),
                           RemapColumns(p->right(), col_map));
    case Predicate::Kind::kNot:
      return Predicate::Not(RemapColumns(p->left(), col_map));
  }
  return p;
}

// ---------------------------------------------------------------------------
// The rewriter. One instance per Optimize() pass; methods recurse top-down
// so a pushed selection keeps pushing through whatever it lands on.

struct Rewriter {
  const Database& db;
  const OptimizerOptions& opts;
  OptimizerReport* report;

  size_t Arity(const RAExprPtr& e) const {
    auto a = e->InferArity(db.schema());
    INCDB_CHECK_MSG(a.ok(), "optimizer saw ill-typed subexpression");
    return *a;
  }

  RAExprPtr Opt(const RAExprPtr& e) {
    switch (e->kind()) {
      case RAExpr::Kind::kScan:
      case RAExpr::Kind::kConstRel:
      case RAExpr::Kind::kDelta:
        return e;
      case RAExpr::Kind::kSelect:
        if (!opts.push_selections) break;
        return OptSelect(e->predicate(), e->left());
      case RAExpr::Kind::kProject:
        if (!opts.push_projections) break;
        return OptProject(e->columns(), e->left());
      default:
        break;
    }
    // Structural recursion for everything else.
    switch (e->kind()) {
      case RAExpr::Kind::kSelect: {
        RAExprPtr c = Opt(e->left());
        return c == e->left() ? e : RAExpr::Select(e->predicate(), c);
      }
      case RAExpr::Kind::kProject: {
        RAExprPtr c = Opt(e->left());
        return c == e->left() ? e : RAExpr::Project(e->columns(), c);
      }
      case RAExpr::Kind::kProduct:
      case RAExpr::Kind::kUnion:
      case RAExpr::Kind::kDiff:
      case RAExpr::Kind::kIntersect:
      case RAExpr::Kind::kDivide: {
        RAExprPtr l = Opt(e->left());
        RAExprPtr r = Opt(e->right());
        if (l == e->left() && r == e->right()) return e;
        switch (e->kind()) {
          case RAExpr::Kind::kProduct:
            return RAExpr::Product(l, r);
          case RAExpr::Kind::kUnion:
            return RAExpr::Union(l, r);
          case RAExpr::Kind::kDiff:
            return RAExpr::Diff(l, r);
          case RAExpr::Kind::kIntersect:
            return RAExpr::Intersect(l, r);
          default:
            return RAExpr::Divide(l, r);
        }
      }
      default:
        return e;
    }
  }

  // σ_pred over `child` (child not yet optimized).
  RAExprPtr OptSelect(const PredicatePtr& pred, const RAExprPtr& child) {
    switch (child->kind()) {
      case RAExpr::Kind::kSelect:
        // σ_p(σ_q(x)) = σ_{q ∧ p}(x).
        ++report->selections_fused;
        return OptSelect(Predicate::And(child->predicate(), pred),
                         child->left());
      case RAExpr::Kind::kUnion:
        // σ distributes over both sides of ∪.
        ++report->selections_pushed;
        return RAExpr::Union(OptSelect(pred, child->left()),
                             OptSelect(pred, child->right()));
      case RAExpr::Kind::kIntersect:
        // σ_p(A ∩ B) = σ_p(A) ∩ B.
        ++report->selections_pushed;
        return RAExpr::Intersect(OptSelect(pred, child->left()),
                                 Opt(child->right()));
      case RAExpr::Kind::kDiff:
        // σ_p(A − B) = σ_p(A) − B.
        ++report->selections_pushed;
        return RAExpr::Diff(OptSelect(pred, child->left()),
                            Opt(child->right()));
      case RAExpr::Kind::kProduct:
        return ProductSelect(pred, child);
      default: {
        return RAExpr::Select(pred, Opt(child));
      }
    }
  }

  // σ over ×: one-sided conjuncts move into the factors; cross-boundary
  // conjuncts stay directly above the product (the hash-join shape); then
  // the σ/× spine is re-ordered if profitable.
  RAExprPtr ProductSelect(const PredicatePtr& pred, const RAExprPtr& product) {
    const size_t la = Arity(product->left());
    std::vector<PredicatePtr> conjuncts;
    FlattenAnd(pred, &conjuncts);
    std::vector<PredicatePtr> left_parts, right_parts, cross_parts;
    for (const PredicatePtr& c : conjuncts) {
      std::set<size_t> cols;
      CollectColumns(c, &cols);
      const bool any_left = !cols.empty() && *cols.begin() < la;
      const bool any_right = !cols.empty() && *cols.rbegin() >= la;
      if (!any_right) {
        left_parts.push_back(c);  // column-free conjuncts go left
      } else if (!any_left) {
        right_parts.push_back(c->ShiftColumns(-static_cast<int>(la)));
      } else {
        cross_parts.push_back(c);
      }
    }
    if (!left_parts.empty() && left_parts.size() < conjuncts.size()) {
      ++report->selections_pushed;
    }
    if (!right_parts.empty()) ++report->selections_pushed;

    RAExprPtr l = left_parts.empty() ? Opt(product->left())
                                     : OptSelect(AndAll(left_parts),
                                                 product->left());
    RAExprPtr r = right_parts.empty() ? Opt(product->right())
                                      : OptSelect(AndAll(right_parts),
                                                  product->right());
    RAExprPtr base = RAExpr::Product(l, r);
    RAExprPtr node = cross_parts.empty()
                         ? base
                         : RAExpr::Select(AndAll(cross_parts), base);
    if (opts.reorder_joins) {
      RAExprPtr reordered = TryReorder(node);
      if (reordered != nullptr) return reordered;
    }
    return node;
  }

  // π_cols over `child` (child not yet optimized).
  RAExprPtr OptProject(const std::vector<size_t>& cols,
                       const RAExprPtr& child) {
    const size_t child_arity = Arity(child);
    // Identity projection disappears.
    if (cols.size() == child_arity) {
      bool identity = true;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] != i) {
          identity = false;
          break;
        }
      }
      if (identity) {
        ++report->projections_pushed;
        return Opt(child);
      }
    }
    switch (child->kind()) {
      case RAExpr::Kind::kProject: {
        // π_a(π_b(x)) = π_{b∘a}(x).
        std::vector<size_t> composed(cols.size());
        for (size_t i = 0; i < cols.size(); ++i) {
          composed[i] = child->columns()[cols[i]];
        }
        ++report->projections_pushed;
        return OptProject(composed, child->left());
      }
      case RAExpr::Kind::kUnion:
        ++report->projections_pushed;
        return RAExpr::Union(OptProject(cols, child->left()),
                             OptProject(cols, child->right()));
      case RAExpr::Kind::kProduct: {
        // Block-wise split: a left-columns prefix followed by a
        // right-columns suffix (both non-empty) moves into the factors.
        const size_t la = Arity(child->left());
        size_t split = 0;
        while (split < cols.size() && cols[split] < la) ++split;
        bool rest_right = split > 0 && split < cols.size();
        for (size_t i = split; rest_right && i < cols.size(); ++i) {
          if (cols[i] < la) rest_right = false;
        }
        if (rest_right) {
          std::vector<size_t> lc(cols.begin(), cols.begin() + split);
          std::vector<size_t> rc;
          for (size_t i = split; i < cols.size(); ++i) {
            rc.push_back(cols[i] - la);
          }
          ++report->projections_pushed;
          return RAExpr::Product(OptProject(lc, child->left()),
                                 OptProject(rc, child->right()));
        }
        break;
      }
      default:
        break;
    }
    // π over σ is left intact: the evaluators fuse π(σ(l × r)) into the
    // hash join's emit, so splitting that shape would lose the fast path.
    RAExprPtr c = Opt(child);
    return RAExpr::Project(cols, c);
  }

  // ------------------------------------------------------------------
  // Greedy join ordering over a σ/× spine.

  struct Leaf {
    RAExprPtr expr;
    size_t offset;  // first column in the original layout
    size_t arity;
  };

  // A conjunct lifted to the spine's global column space.
  struct SpineConjunct {
    PredicatePtr pred;            // columns are original-global
    std::set<size_t> leaves;      // leaf ids it references
    bool attached = false;
  };

  void FlattenSpine(const RAExprPtr& e, size_t offset,
                    std::vector<Leaf>* leaves,
                    std::vector<PredicatePtr>* preds) {
    if (e->kind() == RAExpr::Kind::kProduct) {
      const size_t la = Arity(e->left());
      FlattenSpine(e->left(), offset, leaves, preds);
      FlattenSpine(e->right(), offset + la, leaves, preds);
      return;
    }
    if (e->kind() == RAExpr::Kind::kSelect) {
      std::vector<PredicatePtr> conjuncts;
      FlattenAnd(e->predicate(), &conjuncts);
      for (const PredicatePtr& c : conjuncts) {
        preds->push_back(offset == 0
                             ? c
                             : c->ShiftColumns(static_cast<int>(offset)));
      }
      FlattenSpine(e->left(), offset, leaves, preds);
      return;
    }
    leaves->push_back(Leaf{e, offset, Arity(e)});
  }

  // Returns the re-ordered plan, or nullptr when the greedy order is the
  // original one (nothing to gain).
  RAExprPtr TryReorder(const RAExprPtr& node) {
    std::vector<Leaf> leaves;
    std::vector<PredicatePtr> raw_preds;
    FlattenSpine(node, 0, &leaves, &raw_preds);
    if (leaves.size() < 3) return nullptr;

    const size_t k = leaves.size();
    const size_t total_arity = leaves.back().offset + leaves.back().arity;
    auto leaf_of = [&](size_t col) {
      for (size_t i = 0; i < k; ++i) {
        if (col >= leaves[i].offset && col < leaves[i].offset + leaves[i].arity)
          return i;
      }
      INCDB_CHECK_MSG(false, "spine column outside every leaf");
      return k;
    };
    std::vector<SpineConjunct> conjuncts;
    for (const PredicatePtr& p : raw_preds) {
      SpineConjunct sc;
      sc.pred = p;
      std::set<size_t> cols;
      CollectColumns(p, &cols);
      for (size_t c : cols) sc.leaves.insert(leaf_of(c));
      conjuncts.push_back(std::move(sc));
    }

    // Greedy order: cheapest leaf first, then the cheapest leaf connected to
    // the placed set by an equality conjunct; ties break on leaf id, which
    // keeps the result deterministic.
    std::vector<double> est(k);
    for (size_t i = 0; i < k; ++i) {
      est[i] = EstimateCardinality(leaves[i].expr, db);
    }
    std::vector<bool> placed(k, false);
    std::vector<size_t> order;
    auto pick = [&](bool require_connected) {
      size_t best = k;
      for (size_t i = 0; i < k; ++i) {
        if (placed[i]) continue;
        if (require_connected) {
          bool connected = false;
          for (const SpineConjunct& sc : conjuncts) {
            if (sc.leaves.size() < 2 || sc.leaves.count(i) == 0) continue;
            bool rest_placed = true;
            for (size_t l : sc.leaves) {
              if (l != i && !placed[l]) {
                rest_placed = false;
                break;
              }
            }
            if (rest_placed) {
              connected = true;
              break;
            }
          }
          if (!connected) continue;
        }
        if (best == k || est[i] < est[best]) best = i;
      }
      return best;
    };
    order.push_back(pick(/*require_connected=*/false));
    placed[order[0]] = true;
    while (order.size() < k) {
      size_t next = pick(/*require_connected=*/true);
      if (next == k) next = pick(/*require_connected=*/false);
      order.push_back(next);
      placed[next] = true;
    }

    bool identity = true;
    for (size_t i = 0; i < k; ++i) {
      if (order[i] != i) {
        identity = false;
        break;
      }
    }
    if (identity) return nullptr;
    ++report->joins_reordered;

    // New layout: order[j]'s columns are contiguous at position j.
    std::vector<size_t> new_col(total_arity);
    size_t cursor = 0;
    for (size_t j = 0; j < k; ++j) {
      const Leaf& lf = leaves[order[j]];
      for (size_t i = 0; i < lf.arity; ++i) new_col[lf.offset + i] = cursor++;
    }

    // Left-deep rebuild; each conjunct attaches at the lowest level that
    // covers all its leaves (so cross-boundary equalities sit directly above
    // a product, ready for hash-join fusion).
    std::fill(placed.begin(), placed.end(), false);
    RAExprPtr cur;
    for (size_t j = 0; j < k; ++j) {
      const Leaf& lf = leaves[order[j]];
      cur = j == 0 ? lf.expr : RAExpr::Product(cur, lf.expr);
      placed[order[j]] = true;
      std::vector<PredicatePtr> attach;
      for (SpineConjunct& sc : conjuncts) {
        if (sc.attached) continue;
        bool covered = true;
        for (size_t l : sc.leaves) {
          if (!placed[l]) {
            covered = false;
            break;
          }
        }
        if (covered) {
          sc.attached = true;
          attach.push_back(RemapColumns(sc.pred, new_col));
        }
      }
      if (!attach.empty()) cur = RAExpr::Select(AndAll(attach), cur);
    }
    for (const SpineConjunct& sc : conjuncts) {
      INCDB_CHECK_MSG(sc.attached, "join reorder dropped a conjunct");
    }

    // Restore the original column order: output column i lives at new
    // position new_col[i].
    return RAExpr::Project(new_col, cur);
  }
};

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

uint64_t RAFingerprint(const RAExprPtr& e) {
  uint64_t h = Mix(0x1cdb, static_cast<uint64_t>(e->kind()));
  switch (e->kind()) {
    case RAExpr::Kind::kScan:
      return Mix(h, HashString(e->relation_name()));
    case RAExpr::Kind::kConstRel: {
      h = Mix(h, e->literal().arity());
      for (const Tuple& t : e->literal().tuples()) h = Mix(h, t.Hash());
      return h;
    }
    case RAExpr::Kind::kSelect:
      h = Mix(h, HashString(e->predicate()->ToString()));
      return Mix(h, RAFingerprint(e->left()));
    case RAExpr::Kind::kProject:
      for (size_t c : e->columns()) h = Mix(h, c);
      return Mix(h, RAFingerprint(e->left()));
    case RAExpr::Kind::kProduct:
    case RAExpr::Kind::kUnion:
    case RAExpr::Kind::kDiff:
    case RAExpr::Kind::kIntersect:
    case RAExpr::Kind::kDivide:
      h = Mix(h, RAFingerprint(e->left()));
      return Mix(h, RAFingerprint(e->right()));
    case RAExpr::Kind::kDelta:
      return h;
  }
  return h;
}

double EstimateCardinality(const RAExprPtr& e, const Database& db) {
  switch (e->kind()) {
    case RAExpr::Kind::kScan:
      return static_cast<double>(db.GetRelation(e->relation_name()).size());
    case RAExpr::Kind::kConstRel:
      return static_cast<double>(e->literal().size());
    case RAExpr::Kind::kDelta:
      return static_cast<double>(db.ActiveDomain().size());
    case RAExpr::Kind::kSelect:
      return 0.25 * EstimateCardinality(e->left(), db);
    case RAExpr::Kind::kProject:
      return EstimateCardinality(e->left(), db);
    case RAExpr::Kind::kProduct:
      return EstimateCardinality(e->left(), db) *
             EstimateCardinality(e->right(), db);
    case RAExpr::Kind::kUnion:
      return EstimateCardinality(e->left(), db) +
             EstimateCardinality(e->right(), db);
    case RAExpr::Kind::kDiff:
      return EstimateCardinality(e->left(), db);
    case RAExpr::Kind::kIntersect:
      return std::min(EstimateCardinality(e->left(), db),
                      EstimateCardinality(e->right(), db));
    case RAExpr::Kind::kDivide: {
      const double l = EstimateCardinality(e->left(), db);
      const double r = EstimateCardinality(e->right(), db);
      return std::max(1.0, l / std::max(1.0, r));
    }
  }
  return 1.0;
}

RAExprPtr Optimize(const RAExprPtr& e, const Database& db,
                   const OptimizerOptions& options, OptimizerReport* report) {
  if (e == nullptr) return e;
  if (!e->InferArity(db.schema()).ok()) return e;  // evaluator reports it
  OptimizerReport local;
  Rewriter rw{db, options, report != nullptr ? report : &local};
  RAExprPtr out = e;
  uint64_t fp = RAFingerprint(out);
  // Rewrites cascade (a pushed σ exposes a π split, a reorder exposes a π∘π
  // composition), so iterate to a fixpoint; four passes always suffice in
  // practice and the bound keeps pathological plans cheap.
  for (int pass = 0; pass < 4; ++pass) {
    RAExprPtr next = rw.Opt(out);
    const uint64_t next_fp = RAFingerprint(next);
    out = next;
    if (next_fp == fp) break;
    fp = next_fp;
  }
  INCDB_CHECK_MSG(Classify(out) == Classify(e),
                  "optimizer must preserve the query fragment");
  return out;
}

}  // namespace incdb
