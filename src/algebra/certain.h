// Certain answers: the classical intersection-based notion (eq. (1) of the
// paper) and the naïve-evaluation shortcut (eq. (4)), plus a possible-world
// enumeration used as ground truth.
//
//   certain(Q, D) = ⋂ { Q(D') | D' ∈ ⟦D⟧ }
//
// * `CertainAnswersNaive` computes Q(D)_cmpl — the naïve answer with
//   null-containing tuples dropped. By the paper's Section 6 this equals
//   certain(Q, D) when `NaiveEvaluationWorks(Q, semantics)`; the function
//   errors (kUnsupported) outside that fragment unless `force` is set.
// * `CertainAnswersEnum` enumerates CWA worlds over the finite domain of
//   core/possible_worlds.h and intersects the answers. Under OWA it requires
//   a monotone (positive) query, for which the intersection over minimal
//   worlds v(D) equals the intersection over all worlds.
// * `CertainObjectNaive` returns the *object* certain answer certainO(Q,D) =
//   Q(D) (nulls retained), per eq. (9).

#ifndef INCDB_ALGEBRA_CERTAIN_H_
#define INCDB_ALGEBRA_CERTAIN_H_

#include "algebra/ast.h"
#include "algebra/classify.h"
#include "core/possible_worlds.h"
#include "core/valuation.h"
#include "engine/stats.h"

namespace incdb {

/// Drops tuples containing nulls (the ·_cmpl operation).
Relation DropNullTuples(const Relation& r);

/// Q(D)_cmpl, guarded by the fragment check (kUnsupported outside it unless
/// force=true — useful for measuring how wrong the shortcut is).
Result<Relation> CertainAnswersNaive(const RAExprPtr& e, const Database& db,
                                     WorldSemantics semantics,
                                     bool force = false,
                                     const EvalOptions& options = {});

/// certainO(Q, D) = Q(D): the naïve answer as an (incomplete) object.
Result<Relation> CertainObjectNaive(const RAExprPtr& e, const Database& db,
                                    const EvalOptions& options = {});

/// Ground-truth certain answers by world enumeration / monotonicity.
/// Exponential in the number of nulls (CWA); kUnsupported for non-positive
/// queries under OWA. EvalStats accumulate across all enumerated worlds.
/// When `options.num_threads` resolves above 1 the worlds are enumerated on
/// the thread pool (per-worker intersections merged at the end, per-worker
/// stats merged into `options.stats`); the answer is bit-identical to the
/// serial path at every thread count.
Result<Relation> CertainAnswersEnum(const RAExprPtr& e, const Database& db,
                                    WorldSemantics semantics,
                                    const WorldEnumOptions& opts = {},
                                    const EvalOptions& options = {});

/// Possible answers: ⋃ { Q(D') | D' ∈ ⟦D⟧_cwa } by enumeration. Useful for
/// "maybe" tuples in examples and tests. Parallelizes like
/// CertainAnswersEnum (per-worker unions), with bit-identical answers.
Result<Relation> PossibleAnswersEnum(const RAExprPtr& e, const Database& db,
                                     const WorldEnumOptions& opts = {},
                                     const EvalOptions& options = {});

}  // namespace incdb

#endif  // INCDB_ALGEBRA_CERTAIN_H_
