// Text syntax for relational algebra expressions, round-tripping
// RAExpr::ToString():
//
//   expr    := term ( ('U' | '-' | '&') term )*        left-assoc, same prec
//   term    := factor ( ('x' | '/') factor )*          product / division
//   factor  := Name | DELTA | literal
//            | sel[ pred ](expr) | proj{ i, j, ... }(expr) | ( expr )
//   literal := { (v, v), ... }                         relation constant
//              with v an integer, a 'string', or a marked null _k
//   pred    := disjunctions/conjunctions of comparisons over #col and
//              constants, with NOT and IS NULL:
//                #0 = 5, #1 <> #2, #0 < 3 AND (#1 = 'x' OR #2 IS NULL)
//
// Keywords are case-insensitive; `U`, `x` must be standalone tokens.

#ifndef INCDB_ALGEBRA_PARSER_H_
#define INCDB_ALGEBRA_PARSER_H_

#include <string>

#include "algebra/ast.h"
#include "util/status.h"

namespace incdb {

/// Parses an algebra expression.
Result<RAExprPtr> ParseRA(const std::string& text);

}  // namespace incdb

#endif  // INCDB_ALGEBRA_PARSER_H_
