// SQL-style three-valued-logic evaluation of relational algebra.
//
// This evaluator reproduces what a standard SQL engine computes on tables
// with (Codd) nulls — the behaviour the paper's introduction critiques:
//
//  * σ_p keeps a tuple only when p evaluates to TRUE (UNKNOWN is dropped);
//  * t ∈ R − S keeps t only when the 3VL row comparison t = s is FALSE for
//    *every* s ∈ S (the SQL `NOT IN` rule: one UNKNOWN poisons the test);
//  * t ∈ R ∩ S keeps t only when some s ∈ S compares TRUE to it (`IN`);
//  * R ÷ S keeps a head h when for every s̄ ∈ S some r ∈ R compares TRUE to
//    (h, s̄).
//
// Union, product and projection are null-agnostic and identical to naïve
// evaluation. Duplicate rows that are merely 3VL-possibly-equal (e.g. (1,⊥)
// vs (1,⊥')) are distinct tuples, as in SQL's set operations on distinct
// rows.

#ifndef INCDB_ALGEBRA_EVAL_3VL_H_
#define INCDB_ALGEBRA_EVAL_3VL_H_

#include "algebra/ast.h"
#include "core/database.h"

namespace incdb {

/// 3VL row comparison: AND over positions of component equality, where a
/// component involving a null is UNKNOWN.
TruthValue TupleEquals3VL(const Tuple& a, const Tuple& b);

/// Evaluates `e` on `db` under SQL's three-valued logic.
Result<Relation> Eval3VL(const RAExprPtr& e, const Database& db);

}  // namespace incdb

#endif  // INCDB_ALGEBRA_EVAL_3VL_H_
