// Naïve (and complete-database) evaluation of relational algebra.
//
// Naïve evaluation treats marked nulls as ordinary values: ⊥_3 joins with
// ⊥_3, not with ⊥_4 or any constant. On a complete database this is simply
// standard set-semantics query evaluation, so a single evaluator serves both
// roles. The paper's central positive results (Section 6) say exactly when
// the naïve answer — with or without its null-free restriction — is the
// right certain answer.
//
// Operator implementations are hash-indexed (engine/kernels.h): the
// evaluator fuses σ_{col=col}(l × r) patterns — optionally under a π — into
// a build/probe equi-join instead of materializing the product, and serves
// −, ∩ and ÷ with O(1)-probe indexes. Pass EvalOptions{.stats = &s} to
// collect per-operator counters, or .use_hash_kernels = false to force the
// straightforward nested-loop implementations (the reference semantics the
// kernels are tested against).

#ifndef INCDB_ALGEBRA_EVAL_H_
#define INCDB_ALGEBRA_EVAL_H_

#include "algebra/ast.h"
#include "core/database.h"
#include "engine/stats.h"

namespace incdb {

/// Evaluates `e` on `db` treating nulls as values. Errors on ill-typed
/// expressions (arity mismatches, unknown relations).
Result<Relation> EvalNaive(const RAExprPtr& e, const Database& db,
                           const EvalOptions& options);
Result<Relation> EvalNaive(const RAExprPtr& e, const Database& db);

/// Evaluates on a database required to be complete (checked).
Result<Relation> EvalComplete(const RAExprPtr& e, const Database& db,
                              const EvalOptions& options);
Result<Relation> EvalComplete(const RAExprPtr& e, const Database& db);

/// Division primitive: tuples t over the first arity(r)-arity(s) columns of
/// `r` such that (t, s̄) ∈ r for every s̄ ∈ s. Exposed for tests. Returns
/// InvalidArgument (instead of aborting) when the arity constraint
/// 0 < arity(s) < arity(r) is violated — reachable from user-supplied RA
/// text through the shell.
Result<Relation> DivideRelations(const Relation& r, const Relation& s);

}  // namespace incdb

#endif  // INCDB_ALGEBRA_EVAL_H_
