// Algebraic plan optimizer.
//
// Optimize() rewrites an RA expression into a cheaper equivalent plan:
//
//  * selection pushdown — σ moves through ∪ (both sides), ∩ and − (left
//    side), and × (conjuncts referencing one side only move into it);
//    stacked selections collapse into one conjunction;
//  * σ-over-× normalization — cross-boundary conjuncts settle directly
//    above the product they span, which is exactly the shape the hash-join
//    peephole in the evaluators fuses, so every evaluator (naïve, 3VL,
//    certain-enum) gets the equi-join fast path;
//  * projection pushdown — π∘π composes, π distributes through ∪, and a π
//    whose columns split block-wise over a bare × moves into both factors;
//    identity projections disappear;
//  * greedy join ordering — a σ/× spine of ≥ 3 leaves is re-ordered
//    left-deep from cheap cardinality estimates (smallest leaf first, then
//    connected-smallest), each conjunct re-attached at the lowest level
//    covering its columns, and a final π restores the original column
//    order.
//
// Every rewrite preserves semantics under both naïve and 3VL evaluation
// (answers are bit-identical) and preserves the paper's fragment
// classification — Classify(Optimize(e)) == Classify(e) is checked — so
// the naïve-evaluation certain-answer guarantees are untouched.

#ifndef INCDB_ALGEBRA_OPTIMIZE_H_
#define INCDB_ALGEBRA_OPTIMIZE_H_

#include <cstdint>

#include "algebra/ast.h"
#include "core/database.h"

namespace incdb {

/// Which rewrite families Optimize applies. All on by default.
struct OptimizerOptions {
  bool push_selections = true;
  bool push_projections = true;
  bool reorder_joins = true;
};

/// Counts of rewrites applied, for explain output and tests.
struct OptimizerReport {
  uint64_t selections_pushed = 0;   ///< σ moved through ∪ / ∩ / − / ×
  uint64_t selections_fused = 0;    ///< σ∘σ collapsed
  uint64_t projections_pushed = 0;  ///< π composed / distributed / dropped
  uint64_t joins_reordered = 0;     ///< σ/× spines re-ordered

  uint64_t Total() const {
    return selections_pushed + selections_fused + projections_pushed +
           joins_reordered;
  }
};

/// Rewrites `e` into an equivalent, usually cheaper plan against `db`'s
/// schema and statistics. Pure: `e` is never mutated. Ill-typed expressions
/// come back unchanged (the evaluator reports the typing error). The result
/// evaluates to a bit-identical relation under every evaluator and has the
/// same Classify() fragment as `e`.
RAExprPtr Optimize(const RAExprPtr& e, const Database& db,
                   const OptimizerOptions& options = {},
                   OptimizerReport* report = nullptr);

/// Structural fingerprint: equal trees hash equal; used for rewrite
/// fixpoint detection and as the subplan-cache key (collisions are guarded
/// by a structural comparison there).
uint64_t RAFingerprint(const RAExprPtr& e);

/// Cheap cardinality estimate used by the join-ordering heuristic: base
/// relations report their true size, operators apply fixed selectivities.
double EstimateCardinality(const RAExprPtr& e, const Database& db);

}  // namespace incdb

#endif  // INCDB_ALGEBRA_OPTIMIZE_H_
