// A small fixed-size thread pool and a chunked ParallelFor on top of it.
//
// This is the parallel substrate of the engine (possible-world enumeration,
// the partitioned hash kernels). Design constraints, in order:
//
//  * Determinism first. ParallelFor splits [0, n) into contiguous chunks
//    whose boundaries depend only on (n, num_threads, grain) — never on the
//    worker count of the pool or on scheduling — so callers that merge
//    per-chunk results in chunk order get bit-identical output on every run
//    and at every thread count.
//  * No work stealing, no task dependencies: chunks are independent, the
//    caller blocks until all chunks finish.
//  * No exceptions cross the API (the library-wide rule): a chunk body
//    returns Status, and anything it throws is captured and converted to a
//    kInternal Status. When several chunks fail, the error of the
//    lowest-indexed chunk is returned, again for determinism.
//  * No nested deadlock: ParallelFor called from inside a pool worker runs
//    its chunks inline on the calling thread, in chunk order.

#ifndef INCDB_UTIL_THREAD_POOL_H_
#define INCDB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace incdb {

/// Resolves a `num_threads` knob to an actual thread count: values >= 1 are
/// taken literally; 0 (the "auto" default used by EvalOptions) and negative
/// values resolve to std::thread::hardware_concurrency() (at least 1).
/// Thread-safe; O(1).
int ResolveNumThreads(int num_threads);

/// A fixed set of worker threads draining one FIFO task queue.
///
/// Thread-safe: Submit may be called from any thread, including pool
/// workers. Tasks must not block on other tasks (there is no work stealing
/// to rescue a blocked worker); ParallelFor respects this by running nested
/// parallel sections inline.
class ThreadPool {
 public:
  /// Starts `num_workers` (clamped to >= 1) threads immediately.
  explicit ThreadPool(int num_workers);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. The task runs exactly once, on some worker thread.
  /// Thread-safe; O(1) plus queue contention.
  void Submit(std::function<void()> task);

  /// The process-wide pool, created on first use with
  /// max(8, hardware_concurrency()) workers — the floor keeps thread-count
  /// sweeps above the core count meaningful on small machines. Never
  /// destroyed (workers exit with the process), so it is safe to use from
  /// static destructors.
  static ThreadPool& Global();

  /// True when the calling thread is a worker of any ThreadPool. Used by
  /// ParallelFor to degrade nested parallelism to inline execution.
  static bool InWorker();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(begin, end, chunk)` over a partition of [0, n) into at most
/// `num_threads` contiguous chunks of at least `grain` items (the last chunk
/// may be smaller). Chunk boundaries are a pure function of (n, num_threads,
/// grain); chunk indices are dense in [0, num_chunks).
///
/// Execution: chunks run concurrently on ThreadPool::Global() and the call
/// blocks until every chunk finished. The whole call runs inline (serially,
/// in chunk order) when the resolved thread count is 1, when a single chunk
/// covers the range, or when the caller is itself a pool worker.
///
/// Error handling: `body` returns Status; thrown exceptions are captured as
/// kInternal. All chunks run to completion even after a failure (there is no
/// cancellation at this layer — callers wanting early exit share an
/// std::atomic<bool> inside `body`); the Status of the lowest-indexed failed
/// chunk is returned.
///
/// `body` must be safe to call concurrently from distinct threads for
/// distinct chunks. Cost: O(n/num_threads) wall per chunk plus one
/// mutex/condvar rendezvous.
Status ParallelFor(int num_threads, size_t n, size_t grain,
                   const std::function<Status(size_t begin, size_t end,
                                              size_t chunk)>& body);

/// Number of chunks ParallelFor will use for (n, num_threads, grain) — for
/// callers that pre-size per-chunk accumulators. Deterministic; O(1).
size_t ParallelChunkCount(int num_threads, size_t n, size_t grain);

}  // namespace incdb

#endif  // INCDB_UTIL_THREAD_POOL_H_
