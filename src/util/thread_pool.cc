#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace incdb {
namespace {

// Set while a thread is executing ThreadPool::WorkerLoop. thread_local so
// ParallelFor can detect nesting without consulting any pool instance.
thread_local bool t_in_worker = false;

Status RunChunkBody(
    const std::function<Status(size_t, size_t, size_t)>& body, size_t begin,
    size_t end, size_t chunk) {
  try {
    return body(begin, end, chunk);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in parallel chunk: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-std exception in parallel chunk");
  }
}

}  // namespace

int ResolveNumThreads(int num_threads) {
  if (num_threads >= 1) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_workers) {
  const int n = std::max(1, num_workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: workers must outlive every static destructor that
  // might still evaluate queries. Sized to at least 8 so num_threads
  // requests above hardware_concurrency (thread-sweep benches, race tests
  // on small machines) still get real interleaving; idle workers only cost
  // a blocked thread each.
  static ThreadPool* pool = new ThreadPool(
      std::max(8, ResolveNumThreads(/*num_threads=*/0)));
  return *pool;
}

bool ThreadPool::InWorker() { return t_in_worker; }

size_t ParallelChunkCount(int num_threads, size_t n, size_t grain) {
  if (n == 0) return 0;
  const size_t threads =
      static_cast<size_t>(std::max(1, ResolveNumThreads(num_threads)));
  const size_t min_chunk = std::max<size_t>(1, grain);
  // Chunk size: even split over `threads`, but never below the grain.
  const size_t chunk_size = std::max(min_chunk, (n + threads - 1) / threads);
  return (n + chunk_size - 1) / chunk_size;
}

Status ParallelFor(int num_threads, size_t n, size_t grain,
                   const std::function<Status(size_t begin, size_t end,
                                              size_t chunk)>& body) {
  if (n == 0) return Status::OK();
  const size_t chunks = ParallelChunkCount(num_threads, n, grain);
  const size_t chunk_size = (n + chunks - 1) / chunks;

  if (chunks == 1 || ResolveNumThreads(num_threads) == 1 ||
      ThreadPool::InWorker()) {
    // Inline path: serial, in chunk order. Also the nested-parallelism path:
    // a pool worker must not block on tasks that need pool workers.
    for (size_t c = 0; c < chunks; ++c) {
      const size_t begin = c * chunk_size;
      const size_t end = std::min(n, begin + chunk_size);
      INCDB_RETURN_IF_ERROR(RunChunkBody(body, begin, end, c));
    }
    return Status::OK();
  }

  struct Rendezvous {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
  };
  Rendezvous rv;
  rv.remaining = chunks;
  std::vector<Status> statuses(chunks);

  ThreadPool& pool = ThreadPool::Global();
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    pool.Submit([&, begin, end, c] {
      Status st = RunChunkBody(body, begin, end, c);
      std::lock_guard<std::mutex> lock(rv.mu);
      statuses[c] = std::move(st);
      if (--rv.remaining == 0) rv.done.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(rv.mu);
    rv.done.wait(lock, [&] { return rv.remaining == 0; });
  }
  // Lowest-indexed failure wins, independent of completion order.
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace incdb
