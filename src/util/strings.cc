#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace incdb {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool EqualsIgnoreCase(const std::string& s, const std::string& t) {
  if (s.size() != t.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(t[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace incdb
