// Small string utilities shared across incdb modules.

#ifndef INCDB_UTIL_STRINGS_H_
#define INCDB_UTIL_STRINGS_H_

#include <string>
#include <vector>

namespace incdb {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(const std::string& s);
std::string ToUpper(const std::string& s);

/// True if `s` equals `t` ignoring ASCII case.
bool EqualsIgnoreCase(const std::string& s, const std::string& t);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

}  // namespace incdb

#endif  // INCDB_UTIL_STRINGS_H_
