#include "util/status.h"

namespace incdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

namespace internal {

void CheckFail(const char* file, int line, const char* expr,
               const std::string& message) {
  std::cerr << "incdb: CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) std::cerr << " (" << message << ")";
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace incdb
