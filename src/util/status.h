// Status / Result<T>: error handling primitives for incdb.
//
// Fallible public APIs (parsers, evaluators that can reject ill-typed input)
// return Status or Result<T>; internal invariant violations use INCDB_CHECK.
// No exceptions cross library boundaries.

#ifndef INCDB_UTIL_STATUS_H_
#define INCDB_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace incdb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed ill-formed input (bad arity, bad AST)
  kParseError,        ///< SQL / formula text failed to parse
  kUnsupported,       ///< operation outside the supported fragment
  kResourceExhausted, ///< enumeration bound exceeded
  kNotFound,          ///< named relation / attribute missing
  kInternal,          ///< library bug
};

/// Human-readable name of a status code.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or a non-OK Status explaining its absence.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::cerr << "incdb: Result accessed without value: "
                << status_.ToString() << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            const std::string& message);
}  // namespace internal

}  // namespace incdb

/// Aborts with a diagnostic if `cond` is false. For internal invariants only.
#define INCDB_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::incdb::internal::CheckFail(__FILE__, __LINE__, #cond, "");     \
    }                                                                  \
  } while (0)

#define INCDB_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::incdb::internal::CheckFail(__FILE__, __LINE__, #cond, (msg));  \
    }                                                                  \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define INCDB_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::incdb::Status _incdb_status = (expr);      \
    if (!_incdb_status.ok()) return _incdb_status; \
  } while (0)

/// Evaluates a Result<T> expression; on success binds it, else returns status.
#define INCDB_ASSIGN_OR_RETURN(lhs, expr)                   \
  INCDB_ASSIGN_OR_RETURN_IMPL_(                             \
      INCDB_STATUS_CONCAT_(_incdb_result, __LINE__), lhs, expr)
#define INCDB_STATUS_CONCAT_INNER_(a, b) a##b
#define INCDB_STATUS_CONCAT_(a, b) INCDB_STATUS_CONCAT_INNER_(a, b)
#define INCDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // INCDB_UTIL_STATUS_H_
