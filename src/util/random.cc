#include "util/random.h"

#include <cmath>

#include "util/status.h"

namespace incdb {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  s0_ = SplitMix64(&s);
  s1_ = SplitMix64(&s);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  // xorshift128+
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::Uniform(uint64_t bound) {
  INCDB_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return r % bound;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  INCDB_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  INCDB_CHECK(n > 0);
  if (s <= 0.0) return Uniform(n);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = acc;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= acc;
  }
  const double u = UniformDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0;
  size_t hi = zipf_cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace incdb
