// Deterministic PRNG used by workload generators and property tests.
//
// A fixed, engine-stable generator (splitmix64 seeded xorshift128+) so that
// benchmark workloads and property-test cases are reproducible across
// standard-library implementations (std::mt19937 streams are stable too, but
// std::uniform_int_distribution is not; we implement our own mapping).

#ifndef INCDB_UTIL_RANDOM_H_
#define INCDB_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace incdb {

/// Deterministic 64-bit PRNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses inverse-CDF over precomputed weights; intended for n <= ~1e6.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
  // Zipf cache: weights for the last (n, s) pair.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace incdb

#endif  // INCDB_UTIL_RANDOM_H_
