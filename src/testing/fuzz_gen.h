// Random RA-plan generation for the differential fuzzing harness.
//
// Plans are generated bottom-up against a concrete database (scans use its
// relation names and arities; selection constants are drawn from its value
// domain) and stratified by the paper's fragments: a requested
// QueryClass bounds the operator vocabulary —
//
//   kPositive: σ (positive predicates: =, AND, OR), π, ×, ∪, ∩, Δ
//   kRAcwa:    kPositive plus guarded division Q ÷ Q' with Q' ∈ RA(Δ,π,×,∪)
//   kFullRA:   everything — −, unguarded ÷, ≠ < ≤, NOT, IS NULL predicates
//
// Because the folding and the random draws may not use the extra operators,
// a plan requested at a larger fragment can land in a smaller one; the
// *actual* class is re-computed with algebra/classify.h and returned with
// the plan, and the oracle keys its checks off the actual class.

#ifndef INCDB_TESTING_FUZZ_GEN_H_
#define INCDB_TESTING_FUZZ_GEN_H_

#include <cstdint>
#include <vector>

#include "algebra/ast.h"
#include "algebra/classify.h"
#include "core/database.h"
#include "util/random.h"

namespace incdb {

/// Tunables for plan generation.
struct PlanGenConfig {
  /// Operator vocabulary bound (see header comment).
  QueryClass fragment = QueryClass::kFullRA;
  /// Maximum operator-tree depth above the scans.
  size_t max_depth = 3;
  /// Constants in predicates are drawn from [0, domain_size).
  int64_t domain_size = 4;
  /// Probability that a unary position adds a selection / projection rather
  /// than recursing into a binary operator.
  double unary_bias = 0.5;
};

/// A generated plan with its statically computed fragment label.
struct GeneratedPlan {
  RAExprPtr plan;
  QueryClass actual_class = QueryClass::kPositive;
};

/// Generates one random plan over `db`'s schema. Always returns a plan whose
/// InferArity succeeds on db.schema() (arity bookkeeping is done during
/// generation) and whose actual class is within the requested fragment.
GeneratedPlan RandomPlan(Rng& rng, const Database& db,
                         const PlanGenConfig& config);

}  // namespace incdb

#endif  // INCDB_TESTING_FUZZ_GEN_H_
