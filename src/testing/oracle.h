// DifferentialOracle: runs one (plan, database) pair through every evaluator
// configuration the engine offers and checks the relationships the paper
// proves between them.
//
// Equality checks (bit-identical Relation ==):
//  * CertainAnswersEnum under CWA across the full knob matrix — hash kernels
//    on/off × optimizer on/off × subplan cache on/off × delta evaluation
//    on/off × serial/parallel — against the nested-loop serial reference.
//  * PossibleAnswersEnum across the same matrix.
//  * QueryEngine::Run(kCertainEnum) against the direct driver (facade
//    faithfulness).
//  * service path: the same request through a shared IncDbService session
//    (service/service.h) — certain and possible answers must match the
//    direct drivers, on the cold run and again from the plan cache.
//  * CertainAnswersNaive == CertainAnswersEnum whenever
//    NaiveEvaluationWorks(plan, semantics) — equation (4): naïve evaluation
//    computes certain answers on UCQ/OWA and Pos∀G(=RA_cwa)/CWA.
//  * c-tables: Q evaluated on the lifted c-database, then grounded world by
//    world — v(Q(T)) must equal Q(v(D)) for every valuation v over the
//    enumeration domain (the strong representation property).
//  * c-table backend: CertainAnswersCTable / PossibleAnswersCTable (the
//    native pipeline — normalizing kernels + condition-level extraction,
//    no world ever materialized) against the enumeration reference, and
//    QueryEngine::Run on Backend::kCTable against both.
//  * probabilistic notion: exact per-tuple probabilities (both backends)
//    must report exactly the possible tuples with probability 1 exactly on
//    the certain tuples; forced-sampling tallies must be bit-identical
//    across backends and thread counts at a fixed seed, with every certain
//    tuple estimated at exactly 1 (only the sound directions are checked —
//    a sampled estimate of 1.0 does not imply certainty).
//
// Containment checks (sound-but-incomplete relationships):
//  * 3VL: null-free SQL answers ⊆ certain answers, on positive plans.
//  * certain ⊆ possible.
//
// Every violation is reported as a human-readable string naming the check
// and the two sides; an empty report means the case passed. Cases whose
// world space exceeds `max_worlds_per_case` are skipped (reported in
// `skipped`), as are evaluator kUnsupported refusals — only genuine
// disagreements count as violations.

#ifndef INCDB_TESTING_ORACLE_H_
#define INCDB_TESTING_ORACLE_H_

#include <string>
#include <vector>

#include "algebra/ast.h"
#include "core/database.h"
#include "core/valuation.h"

namespace incdb {

/// Oracle tunables.
struct OracleOptions {
  /// Cases with more CWA worlds than this are skipped, not evaluated.
  uint64_t max_worlds_per_case = 20'000;
  /// Threads for the parallel configurations.
  int num_threads = 4;
  /// Run the (expensive) per-world c-table grounding check.
  bool check_ctables = true;
  /// Cross-check the c-table-native certain/possible backend against the
  /// enumeration reference (kUnsupported refusals are skipped, e.g. order
  /// comparisons on nulls outside the c-table condition language).
  bool check_ctable_backend = true;
  /// Run the checks under OWA as well (positive plans only).
  bool check_owa = true;
  /// Include the batch-vectorized columnar configurations (serial and
  /// parallel, across the optimize/cache/delta ladder) in the equality
  /// matrix; they must be bit-identical to the nested-loop reference.
  bool check_vectorized = true;
  /// Cross-check the probabilistic notion (kCertainWithProbability): exact
  /// probabilities against the certain/possible ground truth, and
  /// forced-sampling tallies for backend/thread-count bit-identity at a
  /// fixed seed.
  bool check_sampling = true;
  /// Monte-Carlo samples per forced-sampling configuration.
  uint64_t sampling_samples = 1'000;
  /// Route the case through a shared IncDbService session (service/) and
  /// cross-check against the direct QueryEngine path — both the cold run
  /// and the plan-cache hit the repeated query must be served from.
  bool check_service = true;
  /// Test hook: corrupt the result of one non-reference configuration by
  /// injecting a bogus tuple, so the harness's catch-and-shrink path can be
  /// exercised without actually breaking a kernel. 0 = off.
  int inject_fault = 0;
};

/// Outcome of checking one case.
struct OracleReport {
  std::vector<std::string> violations;  ///< empty = case passed
  std::vector<std::string> skipped;     ///< checks not run, with reasons
  int configs_run = 0;                  ///< evaluator configurations compared

  bool ok() const { return violations.empty(); }
};

/// Cross-checks all evaluator configurations on (plan, db).
OracleReport CheckCase(const RAExprPtr& plan, const Database& db,
                       const OracleOptions& options = {});

}  // namespace incdb

#endif  // INCDB_TESTING_ORACLE_H_
