#include "testing/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "algebra/parser.h"
#include "core/io.h"
#include "util/strings.h"

namespace incdb {

std::string DumpFuzzCase(const FuzzCase& fuzz_case) {
  std::ostringstream out;
  out << "# incdb fuzz case\n";
  out << "query " << fuzz_case.plan->ToString() << "\n\n";
  out << DumpDatabase(fuzz_case.db);
  return out.str();
}

Result<FuzzCase> ParseFuzzCase(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string query_text;
  std::ostringstream db_text;
  size_t line_no = 0;
  size_t query_line = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.rfind("query ", 0) == 0) {
      if (!query_text.empty()) {
        return Status(StatusCode::kInvalidArgument,
                      "line " + std::to_string(line_no) +
                          ": duplicate query directive");
      }
      query_text = Trim(trimmed.substr(6));
      query_line = line_no;
      // Keep a blank placeholder so LoadDatabase line numbers stay aligned
      // with the original file.
      db_text << "\n";
      continue;
    }
    db_text << line << "\n";
  }
  if (query_text.empty()) {
    return Status(StatusCode::kInvalidArgument, "missing query directive");
  }
  FuzzCase out;
  auto plan = ParseRA(query_text);
  if (!plan.ok()) {
    return Status(plan.status().code(), "line " + std::to_string(query_line) +
                                            ": " + plan.status().message());
  }
  out.plan = std::move(plan).value();
  INCDB_ASSIGN_OR_RETURN(out.db, LoadDatabase(db_text.str()));
  return out;
}

Status WriteFuzzCaseFile(const FuzzCase& fuzz_case, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status(StatusCode::kInvalidArgument,
                  "cannot open for writing: " + path);
  }
  out << DumpFuzzCase(fuzz_case);
  out.close();
  if (!out) {
    return Status(StatusCode::kInternal, "write failed: " + path);
  }
  return Status::OK();
}

Result<FuzzCase> ReadFuzzCaseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kNotFound, "cannot open: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = ParseFuzzCase(buf.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

std::vector<std::string> ListCorpusFiles(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".inc") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace incdb
