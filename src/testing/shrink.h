// Greedy test-case shrinking for the differential fuzzing harness.
//
// Given a failing (plan, database) pair and a predicate that re-checks the
// failure, ShrinkCase repeatedly applies size-reducing transformations and
// keeps any candidate that still fails:
//
//   database: drop one tuple · merge two marked nulls (⊥_b := ⊥_a) ·
//             ground one null to a small constant
//   plan:     replace an operator node by one of its children (when the
//             whole plan still type-checks against the schema)
//
// Every accepted step strictly decreases (tuples + nulls + plan nodes), so
// the loop terminates; `max_attempts` additionally bounds the number of
// predicate evaluations since each one may enumerate worlds.

#ifndef INCDB_TESTING_SHRINK_H_
#define INCDB_TESTING_SHRINK_H_

#include <cstdint>
#include <functional>

#include "algebra/ast.h"
#include "core/database.h"

namespace incdb {

/// Re-checks a candidate case; true = the candidate still fails (and may be
/// adopted as the new, smaller case).
using FailurePredicate =
    std::function<bool(const RAExprPtr& plan, const Database& db)>;

struct ShrinkOptions {
  /// Cap on predicate evaluations across the whole shrink.
  size_t max_attempts = 2000;
};

struct ShrinkStats {
  size_t attempts = 0;        ///< predicate evaluations performed
  size_t accepted_steps = 0;  ///< transformations that kept the failure
};

/// Number of operator nodes in a plan (shrink size metric).
size_t PlanNodeCount(const RAExprPtr& plan);

/// Greedily minimizes (plan, db) under `still_fails`. The inputs must
/// satisfy the predicate; the returned pair does too.
void ShrinkCase(RAExprPtr* plan, Database* db,
                const FailurePredicate& still_fails,
                const ShrinkOptions& options = {},
                ShrinkStats* stats = nullptr);

}  // namespace incdb

#endif  // INCDB_TESTING_SHRINK_H_
