// Differential fuzzing driver: generate → cross-check → shrink → emit.
//
// Each iteration draws a random incomplete database and a random RA plan
// (stratified by fragment), runs the DifferentialOracle over every evaluator
// configuration, and — on a violation — greedily shrinks the case and writes
// it as a replayable .inc file into the corpus directory.
//
// Everything is driven by one Rng stream, so a (seed, config) pair
// reproduces the exact sequence of cases: `fuzz_incdb --seed=N` re-runs a
// failure from its reported seed.

#ifndef INCDB_TESTING_FUZZER_H_
#define INCDB_TESTING_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/corpus.h"
#include "testing/fuzz_gen.h"
#include "testing/oracle.h"
#include "workload/generators.h"

namespace incdb {

/// Fuzzing run configuration.
struct FuzzConfig {
  uint64_t seed = 1;
  /// Stop after this many iterations (0 = no iteration bound).
  uint64_t iterations = 500;
  /// Stop after this many seconds (0 = no time bound). At least one of
  /// `iterations` / `time_budget_s` must be set.
  double time_budget_s = 0;

  /// Which query fragments to draw plans from. Each iteration picks one
  /// uniformly; empty = all three.
  std::vector<QueryClass> fragments;

  /// Database shape knobs (nulls are additionally capped so world
  /// enumeration stays within the oracle budget).
  size_t num_relations = 2;
  size_t max_arity = 3;
  size_t max_tuples = 6;
  int64_t domain_size = 4;
  double null_density = 0.35;
  size_t max_nulls = 3;

  /// Directory for shrunk failing cases (empty = don't write files).
  std::string corpus_dir;
  /// Shrink failing cases before reporting/writing them.
  bool shrink = true;

  /// Oracle knobs (world budget, threads, fault injection test hook).
  OracleOptions oracle;
};

/// One failing case, post-shrink.
struct FuzzFailure {
  uint64_t iteration = 0;
  FuzzCase shrunk;
  std::vector<std::string> violations;
  std::string corpus_path;  ///< file written, empty if corpus_dir unset
};

/// Aggregate outcome of a fuzzing run.
struct FuzzSummary {
  uint64_t iterations_run = 0;
  uint64_t cases_skipped = 0;   ///< oracle skipped everything (world budget)
  uint64_t checks_skipped = 0;  ///< individual checks skipped across cases
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// Runs the fuzzing loop.
FuzzSummary RunFuzz(const FuzzConfig& config);

/// Re-checks one corpus case; returns the oracle report.
OracleReport ReplayCase(const FuzzCase& fuzz_case,
                        const OracleOptions& options = {});

/// Replays every *.inc file under `dir`. Parse failures count as violations
/// (a corpus file must stay loadable).
FuzzSummary ReplayCorpus(const std::string& dir,
                         const OracleOptions& options = {});

}  // namespace incdb

#endif  // INCDB_TESTING_FUZZER_H_
