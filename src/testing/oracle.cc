#include "testing/oracle.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algebra/certain.h"
#include "algebra/classify.h"
#include "algebra/eval.h"
#include "algebra/eval_3vl.h"
#include "core/possible_worlds.h"
#include "ctables/ctable.h"
#include "ctables/ctable_algebra.h"
#include "engine/query_engine.h"

namespace incdb {
namespace {

// One evaluator configuration in the cross-check matrix.
struct Config {
  std::string label;
  bool hash;
  bool optimize;
  bool cache;
  bool delta;
  int threads;  // 0 = use OracleOptions::num_threads
};

// The reference (index 0) is the nested-loop serial evaluator with every
// acceleration layer off; everything else must match it bit for bit.
const std::vector<Config>& ConfigMatrix() {
  static const std::vector<Config> kConfigs = [] {
    std::vector<Config> out;
    out.push_back(
        {"reference(nested-loop,serial)", false, false, false, false, 1});
    for (int opt = 0; opt <= 1; ++opt) {
      for (int cache = 0; cache <= 1; ++cache) {
        for (int delta = 0; delta <= 1; ++delta) {
          out.push_back({"hash,opt=" + std::to_string(opt) +
                             ",cache=" + std::to_string(cache) +
                             ",delta=" + std::to_string(delta) + ",serial",
                         true, opt != 0, cache != 0, delta != 0, 1});
        }
      }
    }
    out.push_back({"hash,opt=1,cache=1,delta=1,parallel", true, true, true,
                   true, 0});
    out.push_back({"hash,opt=0,cache=0,delta=0,parallel", true, false, false,
                   false, 0});
    return out;
  }();
  return kConfigs;
}

EvalOptions MakeEvalOptions(const Config& c, int num_threads) {
  EvalOptions o;
  o.use_hash_kernels = c.hash;
  o.optimize = c.optimize;
  o.cache_subplans = c.cache;
  o.delta_eval = c.delta;
  o.num_threads = c.threads == 0 ? num_threads : c.threads;
  // Force the partitioned-kernel code paths onto small inputs.
  o.parallel_row_threshold = 2;
  return o;
}

std::string Truncate(std::string s) {
  constexpr size_t kMax = 400;
  if (s.size() > kMax) s = s.substr(0, kMax) + "...";
  return s;
}

std::string DescribeSides(const Relation& want, const Relation& got) {
  return "reference=" + Truncate(want.ToString()) +
         " got=" + Truncate(got.ToString());
}

// Computes `driver` across the whole config matrix and reports any mismatch
// against the reference. Returns the reference answer when it exists.
template <typename Driver>
std::optional<Relation> CrossCheck(const std::string& what, Driver&& driver,
                                   const OracleOptions& options,
                                   OracleReport* report) {
  std::optional<Relation> reference;
  Status ref_status = Status::OK();
  int fault_countdown = options.inject_fault;
  const auto& matrix = ConfigMatrix();
  for (size_t i = 0; i < matrix.size(); ++i) {
    const Config& c = matrix[i];
    Result<Relation> r = driver(MakeEvalOptions(c, options.num_threads));
    ++report->configs_run;
    if (i == 0) {
      if (r.ok()) {
        reference = std::move(r).value();
      } else {
        ref_status = r.status();
        if (ref_status.code() == StatusCode::kUnsupported ||
            ref_status.code() == StatusCode::kResourceExhausted) {
          report->skipped.push_back(what + ": " + ref_status.ToString());
          return std::nullopt;
        }
      }
      continue;
    }
    if (!reference.has_value()) {
      // The reference errored; every configuration must agree on the code.
      if (r.ok() || r.status().code() != ref_status.code()) {
        report->violations.push_back(
            what + " [" + c.label + "]: reference failed with '" +
            ref_status.ToString() + "' but this config " +
            (r.ok() ? "succeeded" : "failed with '" + r.status().ToString() +
                                        "'"));
      }
      continue;
    }
    if (!r.ok()) {
      report->violations.push_back(what + " [" + c.label +
                                   "]: " + r.status().ToString() +
                                   " (reference succeeded)");
      continue;
    }
    Relation got = std::move(r).value();
    if (--fault_countdown == 0) {
      // Test hook: corrupt this configuration's answer.
      std::vector<Value> bogus(got.arity(), Value::Int(987654321));
      got.Add(Tuple(std::move(bogus)));
    }
    if (got != *reference) {
      report->violations.push_back(what + " [" + c.label + "] differs: " +
                                   DescribeSides(*reference, got));
    }
  }
  return reference;
}

}  // namespace

OracleReport CheckCase(const RAExprPtr& plan, const Database& db,
                       const OracleOptions& options) {
  OracleReport report;
  WorldEnumOptions world_opts;
  world_opts.max_worlds = options.max_worlds_per_case + 1;
  if (CountWorldsCwa(db, world_opts) > options.max_worlds_per_case) {
    report.skipped.push_back("case: world space exceeds max_worlds_per_case");
    return report;
  }
  const QueryClass cls = Classify(plan);

  // --- Certain answers under CWA: full matrix vs reference. ---
  std::optional<Relation> certain_cwa = CrossCheck(
      "certain/cwa",
      [&](const EvalOptions& eval) {
        return CertainAnswersEnum(plan, db, WorldSemantics::kClosedWorld,
                                  world_opts, eval);
      },
      options, &report);

  // --- Possible answers: full matrix vs reference. ---
  std::optional<Relation> possible = CrossCheck(
      "possible",
      [&](const EvalOptions& eval) {
        return PossibleAnswersEnum(plan, db, world_opts, eval);
      },
      options, &report);

  // --- certain ⊆ possible. ---
  if (certain_cwa && possible && !certain_cwa->empty() &&
      !certain_cwa->IsSubsetOf(*possible)) {
    report.violations.push_back("certain/cwa ⊄ possible: " +
                                DescribeSides(*possible, *certain_cwa));
  }

  // --- Equation (4): naïve evaluation inside its guaranteed fragment. ---
  if (certain_cwa &&
      NaiveEvaluationWorks(plan, WorldSemantics::kClosedWorld)) {
    Result<Relation> naive = CertainAnswersNaive(
        plan, db, WorldSemantics::kClosedWorld, /*force=*/false, {});
    if (!naive.ok()) {
      report.violations.push_back(
          "certain-naive/cwa refused inside its fragment: " +
          naive.status().ToString());
    } else if (*naive != *certain_cwa) {
      report.violations.push_back(std::string("certain-naive/cwa != ") +
                                  "certain-enum/cwa (" + QueryClassName(cls) +
                                  "): " + DescribeSides(*certain_cwa, *naive));
    }
  }

  // --- OWA: for positive plans the enum and naïve notions must agree. ---
  if (options.check_owa && cls == QueryClass::kPositive) {
    Result<Relation> owa_enum = CertainAnswersEnum(
        plan, db, WorldSemantics::kOpenWorld, world_opts, {});
    Result<Relation> owa_naive = CertainAnswersNaive(
        plan, db, WorldSemantics::kOpenWorld, /*force=*/false, {});
    if (owa_enum.ok() && owa_naive.ok()) {
      if (*owa_enum != *owa_naive) {
        report.violations.push_back("certain-naive/owa != certain-enum/owa: " +
                                    DescribeSides(*owa_enum, *owa_naive));
      }
    } else if (owa_enum.ok() != owa_naive.ok()) {
      report.violations.push_back(
          "certain/owa: one notion refused the positive plan: enum=" +
          owa_enum.status().ToString() +
          " naive=" + owa_naive.status().ToString());
    }
  }

  // --- Facade faithfulness: QueryEngine must match the direct driver. ---
  if (certain_cwa) {
    QueryEngine engine(db);
    QueryRequest req;
    req.input = QueryInput::Ra(plan);
    req.notion = AnswerNotion::kCertainEnum;
    req.semantics = WorldSemantics::kClosedWorld;
    req.world_options = world_opts;
    Result<QueryResponse> resp = engine.Run(req);
    if (!resp.ok()) {
      report.violations.push_back("QueryEngine(kCertainEnum) failed: " +
                                  resp.status().ToString());
    } else if (resp->relation != *certain_cwa) {
      report.violations.push_back("QueryEngine(kCertainEnum) differs: " +
                                  DescribeSides(*certain_cwa,
                                                resp->relation));
    }
  }

  // --- C-table-native backend: must be bit-identical to enumeration. ---
  if (options.check_ctable_backend) {
    auto check_backend = [&](const char* what,
                             const std::optional<Relation>& reference,
                             Result<Relation> native, AnswerNotion notion) {
      ++report.configs_run;
      if (!reference.has_value()) return;
      if (!native.ok()) {
        if (native.status().code() == StatusCode::kUnsupported) {
          report.skipped.push_back(std::string(what) + ": " +
                                    native.status().ToString());
        } else {
          report.violations.push_back(std::string(what) + ": " +
                                       native.status().ToString() +
                                       " (enumeration succeeded)");
        }
        return;
      }
      if (*native != *reference) {
        report.violations.push_back(std::string(what) + " differs: " +
                                     DescribeSides(*reference, *native));
        return;
      }
      // The engine facade on Backend::kCTable must agree too.
      QueryEngine engine(db);
      QueryRequest req;
      req.input = QueryInput::Ra(plan);
      req.backend = Backend::kCTable;
      req.notion = notion;
      req.semantics = WorldSemantics::kClosedWorld;
      req.world_options = world_opts;
      Result<QueryResponse> resp = engine.Run(req);
      if (!resp.ok()) {
        report.violations.push_back(std::string("QueryEngine(") + what +
                                     ") failed: " + resp.status().ToString());
      } else if (resp->relation != *reference) {
        report.violations.push_back(std::string("QueryEngine(") + what +
                                     ") differs: " +
                                     DescribeSides(*reference, resp->relation));
      }
    };
    check_backend("ctable-backend/certain", certain_cwa,
                  CertainAnswersCTable(plan, db, WorldSemantics::kClosedWorld,
                                       world_opts),
                  AnswerNotion::kCertainEnum);
    check_backend("ctable-backend/possible", possible,
                  PossibleAnswersCTable(plan, db, world_opts),
                  AnswerNotion::kPossible);
  }

  // --- 3VL soundness on positive plans: null-free 3VL rows are certain. ---
  if (certain_cwa && cls == QueryClass::kPositive) {
    Result<Relation> sql3vl = Eval3VL(plan, db);
    if (sql3vl.ok()) {
      const Relation grounded = DropNullTuples(*sql3vl);
      if (!grounded.IsSubsetOf(*certain_cwa)) {
        report.violations.push_back("3VL null-free answers ⊄ certain/cwa: " +
                                    DescribeSides(*certain_cwa, grounded));
      }
    }
  }

  // --- Strong representation: ground Q(T) world by world. ---
  if (options.check_ctables) {
    const CDatabase cdb = CDatabase::FromDatabase(db);
    Result<CTable> ct = EvalOnCTables(plan, cdb);
    if (!ct.ok()) {
      report.skipped.push_back("ctables: " + ct.status().ToString());
    } else {
      Status st = ForEachValuation(
          db, world_opts, [&](const Valuation& v) -> bool {
            bool global_ok = true;
            Relation grounded = ct->ApplyValuation(v, &global_ok);
            if (!global_ok) {
              report.violations.push_back(
                  "ctables: global condition false under valuation " +
                  v.ToString() + " (lifted database has no global guard)");
              return false;
            }
            Result<Relation> expected = EvalNaive(plan, v.Apply(db));
            if (!expected.ok()) {
              report.violations.push_back("ctables: world evaluation failed: " +
                                          expected.status().ToString());
              return false;
            }
            if (grounded != *expected) {
              report.violations.push_back(
                  "ctables: v(Q(T)) != Q(v(D)) under " + v.ToString() + ": " +
                  DescribeSides(*expected, grounded));
              return false;
            }
            return true;
          });
      if (st.code() == StatusCode::kResourceExhausted) {
        report.skipped.push_back("ctables: world budget exhausted");
      }
    }
  }

  return report;
}

}  // namespace incdb
