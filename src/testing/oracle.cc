#include "testing/oracle.h"

#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algebra/certain.h"
#include "algebra/classify.h"
#include "algebra/eval.h"
#include "algebra/eval_3vl.h"
#include "core/possible_worlds.h"
#include "counting/probabilistic.h"
#include "ctables/ctable.h"
#include "ctables/ctable_algebra.h"
#include "engine/query_engine.h"
#include "service/service.h"

namespace incdb {
namespace {

// One evaluator configuration in the cross-check matrix.
struct Config {
  std::string label;
  bool hash;
  bool optimize;
  bool cache;
  bool delta;
  int threads;       // 0 = use OracleOptions::num_threads
  bool vec = false;  // batch-vectorized columnar execution
};

// The reference (index 0) is the nested-loop serial evaluator with every
// acceleration layer off; everything else must match it bit for bit.
const std::vector<Config>& ConfigMatrix() {
  static const std::vector<Config> kConfigs = [] {
    std::vector<Config> out;
    out.push_back(
        {"reference(nested-loop,serial)", false, false, false, false, 1});
    for (int opt = 0; opt <= 1; ++opt) {
      for (int cache = 0; cache <= 1; ++cache) {
        for (int delta = 0; delta <= 1; ++delta) {
          out.push_back({"hash,opt=" + std::to_string(opt) +
                             ",cache=" + std::to_string(cache) +
                             ",delta=" + std::to_string(delta) + ",serial",
                         true, opt != 0, cache != 0, delta != 0, 1});
        }
      }
    }
    out.push_back({"hash,opt=1,cache=1,delta=1,parallel", true, true, true,
                   true, 0});
    out.push_back({"hash,opt=0,cache=0,delta=0,parallel", true, false, false,
                   false, 0});
    // Batch-vectorized columnar execution (engine/vectorized.h): the knob
    // ladder again with the batch kernels swapped in for the row kernels.
    out.push_back({"vec,opt=0,cache=0,delta=0,serial", true, false, false,
                   false, 1, true});
    out.push_back({"vec,opt=1,cache=0,delta=0,serial", true, true, false,
                   false, 1, true});
    out.push_back({"vec,opt=1,cache=1,delta=1,serial", true, true, true, true,
                   1, true});
    out.push_back({"vec,opt=1,cache=1,delta=1,parallel", true, true, true,
                   true, 0, true});
    return out;
  }();
  return kConfigs;
}

EvalOptions MakeEvalOptions(const Config& c, int num_threads) {
  EvalOptions o;
  o.use_hash_kernels = c.hash;
  o.optimize = c.optimize;
  o.cache_subplans = c.cache;
  o.delta_eval = c.delta;
  // `vectorize` defaults on; pin it so the row-path configs stay row-path
  // (and the reference stays the nested-loop oracle).
  o.vectorize = c.vec;
  o.num_threads = c.threads == 0 ? num_threads : c.threads;
  // Force the partitioned-kernel code paths onto small inputs.
  o.parallel_row_threshold = 2;
  return o;
}

std::string Truncate(std::string s) {
  constexpr size_t kMax = 400;
  if (s.size() > kMax) s = s.substr(0, kMax) + "...";
  return s;
}

std::string DescribeSides(const Relation& want, const Relation& got) {
  return "reference=" + Truncate(want.ToString()) +
         " got=" + Truncate(got.ToString());
}

// Computes `driver` across the whole config matrix and reports any mismatch
// against the reference. Returns the reference answer when it exists.
template <typename Driver>
std::optional<Relation> CrossCheck(const std::string& what, Driver&& driver,
                                   const OracleOptions& options,
                                   OracleReport* report) {
  std::optional<Relation> reference;
  Status ref_status = Status::OK();
  int fault_countdown = options.inject_fault;
  const auto& matrix = ConfigMatrix();
  for (size_t i = 0; i < matrix.size(); ++i) {
    const Config& c = matrix[i];
    if (c.vec && !options.check_vectorized) continue;
    Result<Relation> r = driver(MakeEvalOptions(c, options.num_threads));
    ++report->configs_run;
    if (i == 0) {
      if (r.ok()) {
        reference = std::move(r).value();
      } else {
        ref_status = r.status();
        if (ref_status.code() == StatusCode::kUnsupported ||
            ref_status.code() == StatusCode::kResourceExhausted) {
          report->skipped.push_back(what + ": " + ref_status.ToString());
          return std::nullopt;
        }
      }
      continue;
    }
    if (!reference.has_value()) {
      // The reference errored; every configuration must agree on the code.
      if (r.ok() || r.status().code() != ref_status.code()) {
        report->violations.push_back(
            what + " [" + c.label + "]: reference failed with '" +
            ref_status.ToString() + "' but this config " +
            (r.ok() ? "succeeded" : "failed with '" + r.status().ToString() +
                                        "'"));
      }
      continue;
    }
    if (!r.ok()) {
      report->violations.push_back(what + " [" + c.label +
                                   "]: " + r.status().ToString() +
                                   " (reference succeeded)");
      continue;
    }
    Relation got = std::move(r).value();
    if (--fault_countdown == 0) {
      // Test hook: corrupt this configuration's answer.
      std::vector<Value> bogus(got.arity(), Value::Int(987654321));
      got.Add(Tuple(std::move(bogus)));
    }
    if (got != *reference) {
      report->violations.push_back(what + " [" + c.label + "] differs: " +
                                   DescribeSides(*reference, got));
    }
  }
  return reference;
}

}  // namespace

OracleReport CheckCase(const RAExprPtr& plan, const Database& db,
                       const OracleOptions& options) {
  OracleReport report;
  WorldEnumOptions world_opts;
  world_opts.max_worlds = options.max_worlds_per_case + 1;
  if (CountWorldsCwa(db, world_opts) > options.max_worlds_per_case) {
    report.skipped.push_back("case: world space exceeds max_worlds_per_case");
    return report;
  }
  const QueryClass cls = Classify(plan);

  // --- Certain answers under CWA: full matrix vs reference. ---
  std::optional<Relation> certain_cwa = CrossCheck(
      "certain/cwa",
      [&](const EvalOptions& eval) {
        return CertainAnswersEnum(plan, db, WorldSemantics::kClosedWorld,
                                  world_opts, eval);
      },
      options, &report);

  // --- Possible answers: full matrix vs reference. ---
  std::optional<Relation> possible = CrossCheck(
      "possible",
      [&](const EvalOptions& eval) {
        return PossibleAnswersEnum(plan, db, world_opts, eval);
      },
      options, &report);

  // --- certain ⊆ possible. ---
  if (certain_cwa && possible && !certain_cwa->empty() &&
      !certain_cwa->IsSubsetOf(*possible)) {
    report.violations.push_back("certain/cwa ⊄ possible: " +
                                DescribeSides(*possible, *certain_cwa));
  }

  // --- Equation (4): naïve evaluation inside its guaranteed fragment. ---
  if (certain_cwa &&
      NaiveEvaluationWorks(plan, WorldSemantics::kClosedWorld)) {
    Result<Relation> naive = CertainAnswersNaive(
        plan, db, WorldSemantics::kClosedWorld, /*force=*/false, {});
    if (!naive.ok()) {
      report.violations.push_back(
          "certain-naive/cwa refused inside its fragment: " +
          naive.status().ToString());
    } else if (*naive != *certain_cwa) {
      report.violations.push_back(std::string("certain-naive/cwa != ") +
                                  "certain-enum/cwa (" + QueryClassName(cls) +
                                  "): " + DescribeSides(*certain_cwa, *naive));
    }
  }

  // --- OWA: for positive plans the enum and naïve notions must agree. ---
  if (options.check_owa && cls == QueryClass::kPositive) {
    Result<Relation> owa_enum = CertainAnswersEnum(
        plan, db, WorldSemantics::kOpenWorld, world_opts, {});
    Result<Relation> owa_naive = CertainAnswersNaive(
        plan, db, WorldSemantics::kOpenWorld, /*force=*/false, {});
    if (owa_enum.ok() && owa_naive.ok()) {
      if (*owa_enum != *owa_naive) {
        report.violations.push_back("certain-naive/owa != certain-enum/owa: " +
                                    DescribeSides(*owa_enum, *owa_naive));
      }
    } else if (owa_enum.ok() != owa_naive.ok()) {
      report.violations.push_back(
          "certain/owa: one notion refused the positive plan: enum=" +
          owa_enum.status().ToString() +
          " naive=" + owa_naive.status().ToString());
    }
  }

  // --- Facade faithfulness: QueryEngine must match the direct driver. ---
  if (certain_cwa) {
    QueryEngine engine(db);
    QueryRequest req;
    req.input = QueryInput::Ra(plan);
    req.notion = AnswerNotion::kCertainEnum;
    req.semantics = WorldSemantics::kClosedWorld;
    req.world_options = world_opts;
    Result<QueryResponse> resp = engine.Run(req);
    if (!resp.ok()) {
      report.violations.push_back("QueryEngine(kCertainEnum) failed: " +
                                  resp.status().ToString());
    } else if (resp->relation != *certain_cwa) {
      report.violations.push_back("QueryEngine(kCertainEnum) differs: " +
                                  DescribeSides(*certain_cwa,
                                                resp->relation));
    }
  }

  // --- Service path: a shared IncDbService session must agree with the
  // direct drivers — on the cold run, and again from the plan cache (the
  // repeated identical request must be served as a hit). ---
  if (options.check_service && (certain_cwa || possible)) {
    IncDbService service{Database(db)};
    Session session = service.OpenSession();
    auto check_service = [&](const char* what, AnswerNotion notion,
                             const std::optional<Relation>& reference) {
      if (!reference) return;
      QueryRequest req;
      req.input = QueryInput::Ra(plan);
      req.notion = notion;
      req.semantics = WorldSemantics::kClosedWorld;
      req.world_options = world_opts;
      req.eval.num_threads = options.num_threads;
      for (const bool expect_hit : {false, true}) {
        Result<ServiceResponse> resp = session.Run(req);
        ++report.configs_run;
        if (!resp.ok()) {
          report.violations.push_back(std::string("service(") + what +
                                      ") failed: " +
                                      resp.status().ToString());
          return;
        }
        if (resp->cache_hit != expect_hit) {
          report.violations.push_back(
              std::string("service(") + what +
              (expect_hit ? "): repeated query missed the plan cache"
                          : "): cold query reported a cache hit"));
        }
        if (resp->response.relation != *reference) {
          report.violations.push_back(
              std::string("service(") + what +
              (expect_hit ? ", cached)" : ", cold)") + " differs: " +
              DescribeSides(*reference, resp->response.relation));
          return;
        }
      }
    };
    check_service("kCertainEnum", AnswerNotion::kCertainEnum, certain_cwa);
    check_service("kPossible", AnswerNotion::kPossible, possible);
  }

  // --- C-table-native backend: must be bit-identical to enumeration. ---
  if (options.check_ctable_backend) {
    auto check_backend = [&](const char* what,
                             const std::optional<Relation>& reference,
                             Result<Relation> native, AnswerNotion notion) {
      ++report.configs_run;
      if (!reference.has_value()) return;
      if (!native.ok()) {
        if (native.status().code() == StatusCode::kUnsupported) {
          report.skipped.push_back(std::string(what) + ": " +
                                    native.status().ToString());
        } else {
          report.violations.push_back(std::string(what) + ": " +
                                       native.status().ToString() +
                                       " (enumeration succeeded)");
        }
        return;
      }
      if (*native != *reference) {
        report.violations.push_back(std::string(what) + " differs: " +
                                     DescribeSides(*reference, *native));
        return;
      }
      // The engine facade on Backend::kCTable must agree too.
      QueryEngine engine(db);
      QueryRequest req;
      req.input = QueryInput::Ra(plan);
      req.backend = Backend::kCTable;
      req.notion = notion;
      req.semantics = WorldSemantics::kClosedWorld;
      req.world_options = world_opts;
      Result<QueryResponse> resp = engine.Run(req);
      if (!resp.ok()) {
        report.violations.push_back(std::string("QueryEngine(") + what +
                                     ") failed: " + resp.status().ToString());
      } else if (resp->relation != *reference) {
        report.violations.push_back(std::string("QueryEngine(") + what +
                                     ") differs: " +
                                     DescribeSides(*reference, resp->relation));
      }
    };
    check_backend("ctable-backend/certain", certain_cwa,
                  CertainAnswersCTable(plan, db, WorldSemantics::kClosedWorld,
                                       world_opts),
                  AnswerNotion::kCertainEnum);
    check_backend("ctable-backend/possible", possible,
                  PossibleAnswersCTable(plan, db, world_opts),
                  AnswerNotion::kPossible);
  }

  // --- Probabilistic notion: counts, samples, and backends must agree. ---
  if (options.check_sampling && certain_cwa && possible) {
    auto same_set = [](const Relation& a, const Relation& b) {
      return a.IsSubsetOf(b) && b.IsSubsetOf(a);
    };
    auto describe_table = [](const std::vector<TupleProbability>& tab) {
      std::string s = "{";
      for (const TupleProbability& p : tab) {
        s += p.tuple.ToString() + ":" + std::to_string(p.probability) + " ";
      }
      return Truncate(s + "}");
    };
    // Sound in both modes: reported tuples are possible, certain tuples
    // carry probability exactly 1 (a certain tuple is in every world, so
    // even a sampled tally hits on every admitted sample), and the
    // threshold-1.0 relation therefore covers the certain answers. When
    // every row is exact the description is complete: reported == possible,
    // probability-1 set == certain, relation == certain.
    auto check_table = [&](const std::string& what, const Relation& rel,
                           const std::vector<TupleProbability>& tab) {
      Relation reported(possible->arity());
      Relation prob_one(possible->arity());
      bool all_exact = true;
      for (const TupleProbability& p : tab) {
        reported.Add(p.tuple);
        all_exact = all_exact && p.exact;
        if (p.probability == 1.0) prob_one.Add(p.tuple);
        // The Wilson interval contains the point estimate; allow FP slack
        // at the p = 1 boundary where the bound computes to 1 ± rounding.
        if (p.probability <= 0.0 || p.probability > 1.0 ||
            p.ci_low > p.probability + 1e-12 ||
            p.probability > p.ci_high + 1e-12) {
          report.violations.push_back(
              what + ": malformed probability row for " + p.tuple.ToString());
        }
      }
      if (!reported.IsSubsetOf(*possible)) {
        report.violations.push_back(what + ": reported tuples ⊄ possible: " +
                                    DescribeSides(*possible, reported));
      }
      if (!certain_cwa->IsSubsetOf(prob_one)) {
        report.violations.push_back(
            what + ": a certain tuple lacks probability 1: certain=" +
            Truncate(certain_cwa->ToString()) + " table=" +
            describe_table(tab));
      }
      if (!certain_cwa->IsSubsetOf(rel)) {
        report.violations.push_back(what +
                                    ": threshold-1.0 answer misses certain "
                                    "tuples: " +
                                    DescribeSides(*certain_cwa, rel));
      }
      if (all_exact) {
        if (!same_set(reported, *possible)) {
          report.violations.push_back(what + ": exact table != possible: " +
                                      DescribeSides(*possible, reported));
        }
        if (!same_set(prob_one, *certain_cwa)) {
          report.violations.push_back(
              what + ": exact probability-1 set != certain: " +
              DescribeSides(*certain_cwa, prob_one));
        }
        if (!same_set(rel, *certain_cwa)) {
          report.violations.push_back(
              what + ": exact threshold-1.0 answer != certain: " +
              DescribeSides(*certain_cwa, rel));
        }
      }
    };
    // Runs one driver configuration; kUnsupported / kResourceExhausted are
    // legitimate refusals (condition language, counting budget), anything
    // else is a violation because the enumeration reference succeeded.
    auto run_prob =
        [&](const std::string& what, bool ctable,
            const ProbabilisticOptions& popts,
            std::vector<TupleProbability>* tab) -> std::optional<Relation> {
      ++report.configs_run;
      Result<Relation> r =
          ctable ? CertainAnswersWithProbabilityCTable(
                       plan, db, WorldSemantics::kClosedWorld, popts,
                       world_opts, {}, tab)
                 : CertainAnswersWithProbabilityEnum(
                       plan, db, WorldSemantics::kClosedWorld, popts,
                       world_opts, {}, tab);
      if (r.ok()) return std::move(r).value();
      if (r.status().code() == StatusCode::kUnsupported ||
          r.status().code() == StatusCode::kResourceExhausted) {
        report.skipped.push_back(what + ": " + r.status().ToString());
      } else {
        report.violations.push_back(what + ": " + r.status().ToString() +
                                    " (enumeration succeeded)");
      }
      return std::nullopt;
    };
    auto tables_equal = [](const std::vector<TupleProbability>& a,
                           const std::vector<TupleProbability>& b) {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!(a[i].tuple == b[i].tuple) ||
            a[i].probability != b[i].probability ||
            a[i].ci_low != b[i].ci_low || a[i].ci_high != b[i].ci_high ||
            a[i].exact != b[i].exact) {
          return false;
        }
      }
      return true;
    };

    ProbabilisticOptions popts;
    popts.sampling.samples = options.sampling_samples;

    // Exact mode, both backends. Exact probabilities are the same rational
    // count/total on both sides, computed by different factorings — agree
    // up to FP rounding.
    std::vector<TupleProbability> exact_enum;
    std::optional<Relation> exact_enum_rel =
        run_prob("probability/exact-enum", /*ctable=*/false, popts,
                 &exact_enum);
    if (exact_enum_rel) {
      check_table("probability/exact-enum", *exact_enum_rel, exact_enum);
    }
    std::vector<TupleProbability> exact_ct;
    std::optional<Relation> exact_ct_rel =
        run_prob("probability/exact-ctable", /*ctable=*/true, popts,
                 &exact_ct);
    if (exact_ct_rel) {
      check_table("probability/exact-ctable", *exact_ct_rel, exact_ct);
    }
    if (exact_enum_rel && exact_ct_rel) {
      bool agree = exact_enum.size() == exact_ct.size();
      for (size_t i = 0; agree && i < exact_enum.size(); ++i) {
        agree = exact_enum[i].tuple == exact_ct[i].tuple &&
                (!exact_enum[i].exact || !exact_ct[i].exact ||
                 std::abs(exact_enum[i].probability -
                          exact_ct[i].probability) <= 1e-9);
      }
      if (!agree) {
        report.violations.push_back(
            "probability: exact-ctable != exact-enum: enum=" +
            describe_table(exact_enum) + " ctable=" +
            describe_table(exact_ct));
      }
    }

    // Facade faithfulness for the new notion.
    if (exact_enum_rel) {
      QueryEngine engine(db);
      QueryRequest req;
      req.input = QueryInput::Ra(plan);
      req.notion = AnswerNotion::kCertainWithProbability;
      req.semantics = WorldSemantics::kClosedWorld;
      req.world_options = world_opts;
      req.probability = popts;
      Result<QueryResponse> resp = engine.Run(req);
      ++report.configs_run;
      if (!resp.ok()) {
        report.violations.push_back(
            "QueryEngine(kCertainWithProbability) failed: " +
            resp.status().ToString());
      } else if (!tables_equal(resp->probabilities, exact_enum) ||
                 resp->relation != *exact_enum_rel) {
        report.violations.push_back(
            "QueryEngine(kCertainWithProbability) differs: engine=" +
            describe_table(resp->probabilities) + " direct=" +
            describe_table(exact_enum));
      }
    }

    // Forced sampling: both backends draw the same (seed, index) valuation
    // stream over the same domain, so the tallies — and the full tables —
    // must be bit-identical, at every thread count.
    ProbabilisticOptions sampled = popts;
    sampled.force_sampling = true;
    sampled.sampling.num_threads = 1;
    std::vector<TupleProbability> serial_enum;
    std::optional<Relation> serial_rel = run_prob(
        "probability/sampled-enum-serial", /*ctable=*/false, sampled,
        &serial_enum);
    if (serial_rel) {
      check_table("probability/sampled-enum-serial", *serial_rel,
                  serial_enum);
      sampled.sampling.num_threads = options.num_threads;
      std::vector<TupleProbability> parallel_enum;
      std::optional<Relation> parallel_rel = run_prob(
          "probability/sampled-enum-parallel", /*ctable=*/false, sampled,
          &parallel_enum);
      if (parallel_rel && !tables_equal(serial_enum, parallel_enum)) {
        report.violations.push_back(
            "probability: sampled tallies differ across thread counts: "
            "serial=" + describe_table(serial_enum) + " parallel=" +
            describe_table(parallel_enum));
      }
      std::vector<TupleProbability> sampled_ct;
      std::optional<Relation> sampled_ct_rel = run_prob(
          "probability/sampled-ctable", /*ctable=*/true, sampled,
          &sampled_ct);
      if (sampled_ct_rel && !tables_equal(serial_enum, sampled_ct)) {
        report.violations.push_back(
            "probability: sampled-ctable != sampled-enum at equal seed: "
            "enum=" + describe_table(serial_enum) + " ctable=" +
            describe_table(sampled_ct));
      }
    }
  }

  // --- 3VL soundness on positive plans: null-free 3VL rows are certain. ---
  if (certain_cwa && cls == QueryClass::kPositive) {
    Result<Relation> sql3vl = Eval3VL(plan, db);
    if (sql3vl.ok()) {
      const Relation grounded = DropNullTuples(*sql3vl);
      if (!grounded.IsSubsetOf(*certain_cwa)) {
        report.violations.push_back("3VL null-free answers ⊄ certain/cwa: " +
                                    DescribeSides(*certain_cwa, grounded));
      }
    }
  }

  // --- Strong representation: ground Q(T) world by world. ---
  if (options.check_ctables) {
    const CDatabase cdb = CDatabase::FromDatabase(db);
    Result<CTable> ct = EvalOnCTables(plan, cdb);
    if (!ct.ok()) {
      report.skipped.push_back("ctables: " + ct.status().ToString());
    } else {
      Status st = ForEachValuation(
          db, world_opts, [&](const Valuation& v) -> bool {
            bool global_ok = true;
            Relation grounded = ct->ApplyValuation(v, &global_ok);
            if (!global_ok) {
              report.violations.push_back(
                  "ctables: global condition false under valuation " +
                  v.ToString() + " (lifted database has no global guard)");
              return false;
            }
            Result<Relation> expected = EvalNaive(plan, v.Apply(db));
            if (!expected.ok()) {
              report.violations.push_back("ctables: world evaluation failed: " +
                                          expected.status().ToString());
              return false;
            }
            if (grounded != *expected) {
              report.violations.push_back(
                  "ctables: v(Q(T)) != Q(v(D)) under " + v.ToString() + ": " +
                  DescribeSides(*expected, grounded));
              return false;
            }
            return true;
          });
      if (st.code() == StatusCode::kResourceExhausted) {
        report.skipped.push_back("ctables: world budget exhausted");
      }
    }
  }

  return report;
}

}  // namespace incdb
