// Replayable fuzz-case corpus (.inc files).
//
// A corpus file is the core/io database dump format plus one `query`
// directive carrying the plan in algebra/parser RA text:
//
//   # incdb fuzz case
//   query proj{0}(sel[#0 = #1](R0 x R1))
//
//   table R0(c0, c1)
//   1, _0
//
//   table R1(c0)
//   2
//
// The directive may appear anywhere; everything else is fed to LoadDatabase
// unchanged, so corpus files are hand-editable with the same syntax as test
// fixtures. Shrunk failures are written as `caseNNN.inc` into the corpus
// directory and replayed deterministically by fuzz_smoke_test and
// `fuzz_incdb --replay`.

#ifndef INCDB_TESTING_CORPUS_H_
#define INCDB_TESTING_CORPUS_H_

#include <string>
#include <vector>

#include "algebra/ast.h"
#include "core/database.h"
#include "util/status.h"

namespace incdb {

/// One replayable fuzz case.
struct FuzzCase {
  RAExprPtr plan;
  Database db;
};

/// Renders a case in the .inc corpus format.
std::string DumpFuzzCase(const FuzzCase& fuzz_case);

/// Parses the corpus format. Errors carry 1-based line numbers.
Result<FuzzCase> ParseFuzzCase(const std::string& text);

/// File round-trip helpers.
Status WriteFuzzCaseFile(const FuzzCase& fuzz_case, const std::string& path);
Result<FuzzCase> ReadFuzzCaseFile(const std::string& path);

/// All *.inc files in `dir`, sorted by name (empty if the directory does not
/// exist).
std::vector<std::string> ListCorpusFiles(const std::string& dir);

}  // namespace incdb

#endif  // INCDB_TESTING_CORPUS_H_
