#include "testing/fuzz_gen.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/status.h"

namespace incdb {
namespace {

// Keeps generated tuples narrow enough that world enumeration stays cheap.
constexpr size_t kMaxArity = 5;

struct Gen {
  Rng& rng;
  const PlanGenConfig& config;
  std::vector<std::pair<std::string, size_t>> scans;  // name, arity

  // A plan plus its output arity, tracked during generation so the result
  // always type-checks.
  struct Typed {
    RAExprPtr expr;
    size_t arity;
  };

  bool full() const { return config.fragment == QueryClass::kFullRA; }
  bool cwa() const { return config.fragment != QueryClass::kPositive; }

  Value RandomConst() {
    return Value::Int(rng.UniformInt(0, config.domain_size - 1));
  }

  Term RandomTerm(size_t arity) {
    if (rng.Bernoulli(0.6)) {
      return Term::Column(static_cast<size_t>(rng.Uniform(arity)));
    }
    return Term::Const(RandomConst());
  }

  // A selection predicate over `arity` columns. Positive fragments get
  // equalities under AND/OR; full RA adds the negated/ordered comparisons,
  // NOT, and IS NULL.
  PredicatePtr RandomPredicate(size_t arity, size_t depth) {
    if (depth > 0 && rng.Bernoulli(0.4)) {
      PredicatePtr l = RandomPredicate(arity, depth - 1);
      PredicatePtr r = RandomPredicate(arity, depth - 1);
      if (full() && rng.Bernoulli(0.2)) return Predicate::Not(std::move(l));
      return rng.Bernoulli(0.5) ? Predicate::And(std::move(l), std::move(r))
                                : Predicate::Or(std::move(l), std::move(r));
    }
    if (full() && rng.Bernoulli(0.15)) {
      return Predicate::IsNull(Term::Column(rng.Uniform(arity)));
    }
    CmpOp op = CmpOp::kEq;
    if (full() && rng.Bernoulli(0.4)) {
      static constexpr CmpOp kOps[] = {CmpOp::kNe, CmpOp::kLt, CmpOp::kLe,
                                       CmpOp::kGt, CmpOp::kGe};
      op = kOps[rng.Uniform(5)];
    }
    return Predicate::Cmp(op, RandomTerm(arity), RandomTerm(arity));
  }

  std::vector<size_t> RandomColumns(size_t arity) {
    const size_t n = 1 + rng.Uniform(arity);
    std::vector<size_t> cols;
    cols.reserve(n);
    if (rng.Bernoulli(0.15)) {
      // Occasionally repeat columns: π{0,0} is legal and worth covering.
      for (size_t i = 0; i < n; ++i) cols.push_back(rng.Uniform(arity));
      return cols;
    }
    std::vector<size_t> all(arity);
    for (size_t i = 0; i < arity; ++i) all[i] = i;
    rng.Shuffle(&all);
    cols.assign(all.begin(), all.begin() + static_cast<long>(n));
    return cols;
  }

  Typed Leaf() {
    // Δ and small literals appear with low probability; scans dominate.
    if (rng.Bernoulli(0.1)) return Typed{RAExpr::Delta(), 2};
    if (rng.Bernoulli(0.08)) {
      // Non-empty literals only: an empty relation of arity > 0 has no
      // parseable rendering (see algebra/parser.h), and the corpus format
      // round-trips plans through RA text.
      const size_t arity = 1 + rng.Uniform(2);
      Relation lit(arity);
      const size_t rows = 1 + rng.Uniform(2);
      for (size_t i = 0; i < rows; ++i) {
        std::vector<Value> vals;
        for (size_t c = 0; c < arity; ++c) vals.push_back(RandomConst());
        lit.Add(Tuple(std::move(vals)));
      }
      return Typed{RAExpr::ConstRel(std::move(lit)), arity};
    }
    const auto& [name, arity] = scans[rng.Uniform(scans.size())];
    return Typed{RAExpr::Scan(name), arity};
  }

  // Adjusts `t` to the exact target arity: π onto a prefix when too wide,
  // pad with scans (then π) when too narrow.
  Typed Coerce(Typed t, size_t target) {
    while (t.arity < target) {
      Typed pad = Leaf();
      t = Typed{RAExpr::Product(std::move(t.expr), std::move(pad.expr)),
                t.arity + pad.arity};
    }
    if (t.arity > target) {
      std::vector<size_t> cols(target);
      for (size_t i = 0; i < target; ++i) cols[i] = i;
      t = Typed{RAExpr::Project(std::move(cols), std::move(t.expr)), target};
    }
    return t;
  }

  // Divisor in RA(Δ, π, ×, ∪) — the admissible guards of RA_cwa.
  Typed GuardedDivisor(size_t target, size_t depth) {
    Typed t;
    if (depth == 0 || rng.Bernoulli(0.4)) {
      t = rng.Bernoulli(0.2)
              ? Typed{RAExpr::Delta(), 2}
              : [&] {
                  const auto& [name, arity] = scans[rng.Uniform(scans.size())];
                  return Typed{RAExpr::Scan(name), arity};
                }();
    } else if (rng.Bernoulli(0.5)) {
      Typed l = GuardedDivisor(target, depth - 1);
      Typed r = GuardedDivisor(target, depth - 1);
      return Typed{RAExpr::Union(std::move(l.expr), std::move(r.expr)),
                   target};
    } else {
      Typed l = GuardedDivisor(1 + rng.Uniform(2), depth - 1);
      Typed r = GuardedDivisor(1 + rng.Uniform(2), depth - 1);
      t = Typed{RAExpr::Product(std::move(l.expr), std::move(r.expr)),
                l.arity + r.arity};
    }
    // Coerce with π only (× with arbitrary leaves could leave the guard
    // fragment via ConstRel; scans are fine but π-padding keeps it simple).
    while (t.arity < target) {
      const auto& [name, arity] = scans[rng.Uniform(scans.size())];
      t = Typed{RAExpr::Product(std::move(t.expr), RAExpr::Scan(name)),
                t.arity + arity};
    }
    if (t.arity > target) {
      std::vector<size_t> cols(target);
      for (size_t i = 0; i < target; ++i) cols[i] = i;
      t = Typed{RAExpr::Project(std::move(cols), std::move(t.expr)), target};
    }
    return t;
  }

  Typed Expr(size_t depth) {
    if (depth == 0) return Leaf();
    if (rng.Bernoulli(config.unary_bias)) {
      Typed child = Expr(depth - 1);
      if (rng.Bernoulli(0.5)) {
        return Typed{RAExpr::Select(RandomPredicate(child.arity, 1),
                                    std::move(child.expr)),
                     child.arity};
      }
      std::vector<size_t> cols = RandomColumns(child.arity);
      const size_t out = cols.size();
      return Typed{RAExpr::Project(std::move(cols), std::move(child.expr)),
                   out};
    }
    enum class Op { kProduct, kUnion, kIntersect, kDiff, kDivide };
    std::vector<Op> ops = {Op::kProduct, Op::kUnion, Op::kIntersect};
    if (full()) ops.push_back(Op::kDiff);
    if (cwa()) ops.push_back(Op::kDivide);
    const Op op = ops[rng.Uniform(ops.size())];
    switch (op) {
      case Op::kProduct: {
        Typed l = Expr(depth - 1);
        Typed r = Expr(depth - 1);
        Typed out{RAExpr::Product(std::move(l.expr), std::move(r.expr)),
                  l.arity + r.arity};
        return out.arity > kMaxArity ? Coerce(std::move(out), kMaxArity)
                                     : out;
      }
      case Op::kUnion:
      case Op::kIntersect:
      case Op::kDiff: {
        Typed l = Expr(depth - 1);
        Typed r = Coerce(Expr(depth - 1), l.arity);
        RAExprPtr e =
            op == Op::kUnion
                ? RAExpr::Union(std::move(l.expr), std::move(r.expr))
                : op == Op::kIntersect
                      ? RAExpr::Intersect(std::move(l.expr), std::move(r.expr))
                      : RAExpr::Diff(std::move(l.expr), std::move(r.expr));
        return Typed{std::move(e), l.arity};
      }
      case Op::kDivide: {
        Typed dividend = Expr(depth - 1);
        if (dividend.arity < 2) dividend = Coerce(std::move(dividend), 2);
        const size_t d = 1 + rng.Uniform(dividend.arity - 1);
        Typed divisor = full() && rng.Bernoulli(0.5)
                            ? Coerce(Expr(depth - 1), d)
                            : GuardedDivisor(d, depth - 1);
        return Typed{
            RAExpr::Divide(std::move(dividend.expr), std::move(divisor.expr)),
            dividend.arity - d};
      }
    }
    return Leaf();
  }
};

}  // namespace

GeneratedPlan RandomPlan(Rng& rng, const Database& db,
                         const PlanGenConfig& config) {
  Gen gen{rng, config, {}};
  for (const auto& [name, rel] : db.relations()) {
    gen.scans.emplace_back(name, rel.arity());
  }
  GeneratedPlan out;
  if (gen.scans.empty()) {
    out.plan = RAExpr::ConstRel(Relation(1));
  } else {
    out.plan = gen.Expr(config.max_depth).expr;
  }
  out.actual_class = Classify(out.plan);
  return out;
}

}  // namespace incdb
