#include "testing/shrink.h"

#include <utility>
#include <vector>

#include "core/valuation.h"
#include "util/status.h"

namespace incdb {
namespace {

// Rebuilds `node` with a replacement left / right child.
RAExprPtr WithLeft(const RAExprPtr& node, RAExprPtr l) {
  switch (node->kind()) {
    case RAExpr::Kind::kSelect:
      return RAExpr::Select(node->predicate(), std::move(l));
    case RAExpr::Kind::kProject:
      return RAExpr::Project(node->columns(), std::move(l));
    case RAExpr::Kind::kProduct:
      return RAExpr::Product(std::move(l), node->right());
    case RAExpr::Kind::kUnion:
      return RAExpr::Union(std::move(l), node->right());
    case RAExpr::Kind::kDiff:
      return RAExpr::Diff(std::move(l), node->right());
    case RAExpr::Kind::kIntersect:
      return RAExpr::Intersect(std::move(l), node->right());
    case RAExpr::Kind::kDivide:
      return RAExpr::Divide(std::move(l), node->right());
    default:
      return node;
  }
}

RAExprPtr WithRight(const RAExprPtr& node, RAExprPtr r) {
  switch (node->kind()) {
    case RAExpr::Kind::kProduct:
      return RAExpr::Product(node->left(), std::move(r));
    case RAExpr::Kind::kUnion:
      return RAExpr::Union(node->left(), std::move(r));
    case RAExpr::Kind::kDiff:
      return RAExpr::Diff(node->left(), std::move(r));
    case RAExpr::Kind::kIntersect:
      return RAExpr::Intersect(node->left(), std::move(r));
    case RAExpr::Kind::kDivide:
      return RAExpr::Divide(node->left(), std::move(r));
    default:
      return node;
  }
}

// Every plan obtained by replacing exactly one node with one of its
// children. Strictly smaller than the input; O(n²) candidates total.
std::vector<RAExprPtr> PlanVariants(const RAExprPtr& node) {
  std::vector<RAExprPtr> out;
  const RAExprPtr& l = node->left();
  const RAExprPtr& r = node->right();
  if (l != nullptr) out.push_back(l);
  if (r != nullptr) out.push_back(r);
  if (l != nullptr) {
    for (RAExprPtr& v : PlanVariants(l)) {
      out.push_back(WithLeft(node, std::move(v)));
    }
  }
  if (r != nullptr) {
    for (RAExprPtr& v : PlanVariants(r)) {
      out.push_back(WithRight(node, std::move(v)));
    }
  }
  return out;
}

// `db` with tuple `idx` of relation `name` removed.
Database RemoveTuple(const Database& db, const std::string& name, size_t idx) {
  Database out(db.schema());
  for (const auto& [rel_name, rel] : db.relations()) {
    if (rel_name != name) {
      *out.MutableRelation(rel_name, rel.arity()) = rel;
      continue;
    }
    std::vector<Tuple> kept;
    const std::vector<Tuple>& ts = rel.tuples();
    kept.reserve(ts.size() - 1);
    for (size_t i = 0; i < ts.size(); ++i) {
      if (i != idx) kept.push_back(ts[i]);
    }
    *out.MutableRelation(rel_name, rel.arity()) =
        Relation(rel.arity(), std::move(kept));
  }
  return out;
}

// `db` with every occurrence of ⊥_from replaced by ⊥_to.
Database MergeNulls(const Database& db, NullId from, NullId to) {
  Database out(db.schema());
  for (const auto& [name, rel] : db.relations()) {
    Relation* dst = out.MutableRelation(name, rel.arity());
    for (const Tuple& t : rel.tuples()) {
      std::vector<Value> vals;
      vals.reserve(t.arity());
      for (size_t i = 0; i < t.arity(); ++i) {
        vals.push_back(t[i].is_null() && t[i].null_id() == from
                           ? Value::Null(to)
                           : t[i]);
      }
      dst->Add(Tuple(std::move(vals)));
    }
  }
  return out;
}

}  // namespace

size_t PlanNodeCount(const RAExprPtr& plan) {
  if (plan == nullptr) return 0;
  return 1 + PlanNodeCount(plan->left()) + PlanNodeCount(plan->right());
}

void ShrinkCase(RAExprPtr* plan, Database* db,
                const FailurePredicate& still_fails,
                const ShrinkOptions& options, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats* s = stats != nullptr ? stats : &local;
  *s = ShrinkStats();

  auto try_adopt = [&](const RAExprPtr& cand_plan,
                       const Database& cand_db) -> bool {
    if (s->attempts >= options.max_attempts) return false;
    ++s->attempts;
    if (!still_fails(cand_plan, cand_db)) return false;
    *plan = cand_plan;
    *db = cand_db;
    ++s->accepted_steps;
    return true;
  };

  auto pass_tuples = [&]() -> bool {
    for (const auto& [name, rel] : db->relations()) {
      const size_t n = rel.tuples().size();
      for (size_t i = 0; i < n; ++i) {
        if (try_adopt(*plan, RemoveTuple(*db, name, i))) return true;
        if (s->attempts >= options.max_attempts) return false;
      }
    }
    return false;
  };

  auto pass_nulls = [&]() -> bool {
    const std::set<NullId> null_set = db->Nulls();
    const std::vector<NullId> nulls(null_set.begin(), null_set.end());
    // Merge ⊥_b into ⊥_a (a < b): fewer distinct nulls, smaller world space.
    for (size_t a = 0; a < nulls.size(); ++a) {
      for (size_t b = a + 1; b < nulls.size(); ++b) {
        if (try_adopt(*plan, MergeNulls(*db, nulls[b], nulls[a]))) return true;
        if (s->attempts >= options.max_attempts) return false;
      }
    }
    // Ground one null to a small constant.
    for (NullId n : nulls) {
      Valuation v;
      v.Bind(n, Value::Int(0));
      if (try_adopt(*plan, v.Apply(*db))) return true;
      if (s->attempts >= options.max_attempts) return false;
    }
    return false;
  };

  auto pass_plan = [&]() -> bool {
    for (const RAExprPtr& cand : PlanVariants(*plan)) {
      // Discard candidates that no longer type-check (e.g. a π dropped
      // under a ∪ of different arity) without spending a predicate call.
      if (!cand->InferArity(db->schema()).ok()) continue;
      if (try_adopt(cand, *db)) return true;
      if (s->attempts >= options.max_attempts) return false;
    }
    return false;
  };

  bool progress = true;
  while (progress && s->attempts < options.max_attempts) {
    progress = false;
    while (pass_tuples()) progress = true;
    while (pass_nulls()) progress = true;
    while (pass_plan()) progress = true;
  }
}

}  // namespace incdb
