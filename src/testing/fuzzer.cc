#include "testing/fuzzer.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "testing/shrink.h"

namespace incdb {
namespace {

RandomDbConfig MakeDbConfig(const FuzzConfig& config, Rng& rng) {
  RandomDbConfig db;
  db.arities.clear();
  const size_t n = config.num_relations > 0 ? config.num_relations : 1;
  for (size_t i = 0; i < n; ++i) {
    db.arities.push_back(1 + rng.Uniform(config.max_arity));
  }
  db.rows_per_relation = 1 + rng.Uniform(config.max_tuples);
  db.domain_size = config.domain_size;
  db.null_density = config.null_density;
  db.max_nulls = config.max_nulls;
  // Occasionally draw Codd databases (single-occurrence nulls) and strings.
  db.codd = rng.Bernoulli(0.25);
  db.null_reuse = rng.Bernoulli(0.5) ? 0.5 : 0.0;
  db.string_density = rng.Bernoulli(0.2) ? 0.15 : 0.0;
  return db;
}

QueryClass PickFragment(const FuzzConfig& config, Rng& rng) {
  static constexpr QueryClass kAll[] = {
      QueryClass::kPositive, QueryClass::kRAcwa, QueryClass::kFullRA};
  if (config.fragments.empty()) {
    return kAll[rng.Uniform(3)];
  }
  return config.fragments[rng.Uniform(config.fragments.size())];
}

std::string CorpusPath(const std::string& dir, size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "case%03zu.inc", index);
  return (std::filesystem::path(dir) / name).string();
}

}  // namespace

OracleReport ReplayCase(const FuzzCase& fuzz_case,
                        const OracleOptions& options) {
  return CheckCase(fuzz_case.plan, fuzz_case.db, options);
}

FuzzSummary RunFuzz(const FuzzConfig& config) {
  FuzzSummary summary;
  Rng rng(config.seed);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(config.time_budget_s));

  for (uint64_t iter = 0;; ++iter) {
    if (config.iterations > 0 && iter >= config.iterations) break;
    if (config.time_budget_s > 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    if (config.iterations == 0 && config.time_budget_s == 0) break;

    const RandomDbConfig db_config = MakeDbConfig(config, rng);
    Database db = MakeRandomDatabase(db_config, rng);

    PlanGenConfig plan_config;
    plan_config.fragment = PickFragment(config, rng);
    plan_config.max_depth = 1 + rng.Uniform(3);
    plan_config.domain_size = config.domain_size;
    GeneratedPlan generated = RandomPlan(rng, db, plan_config);

    OracleReport report = CheckCase(generated.plan, db, config.oracle);
    ++summary.iterations_run;
    summary.checks_skipped += report.skipped.size();
    if (report.configs_run == 0) ++summary.cases_skipped;
    if (report.ok()) continue;

    FuzzFailure failure;
    failure.iteration = iter;
    failure.shrunk.plan = generated.plan;
    failure.shrunk.db = db;
    failure.violations = report.violations;

    if (config.shrink) {
      const OracleOptions oracle = config.oracle;
      ShrinkCase(
          &failure.shrunk.plan, &failure.shrunk.db,
          [&oracle](const RAExprPtr& p, const Database& d) {
            return !CheckCase(p, d, oracle).ok();
          });
      failure.violations =
          CheckCase(failure.shrunk.plan, failure.shrunk.db, config.oracle)
              .violations;
    }

    if (!config.corpus_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(config.corpus_dir, ec);
      const std::string path =
          CorpusPath(config.corpus_dir, summary.failures.size());
      if (WriteFuzzCaseFile(failure.shrunk, path).ok()) {
        failure.corpus_path = path;
      }
    }
    summary.failures.push_back(std::move(failure));
  }
  return summary;
}

FuzzSummary ReplayCorpus(const std::string& dir,
                         const OracleOptions& options) {
  FuzzSummary summary;
  for (const std::string& path : ListCorpusFiles(dir)) {
    Result<FuzzCase> loaded = ReadFuzzCaseFile(path);
    ++summary.iterations_run;
    if (!loaded.ok()) {
      FuzzFailure failure;
      failure.iteration = summary.iterations_run - 1;
      failure.violations.push_back("corpus parse error: " +
                                   loaded.status().ToString());
      failure.corpus_path = path;
      summary.failures.push_back(std::move(failure));
      continue;
    }
    OracleReport report = ReplayCase(*loaded, options);
    summary.checks_skipped += report.skipped.size();
    if (report.configs_run == 0) ++summary.cases_skipped;
    if (!report.ok()) {
      FuzzFailure failure;
      failure.iteration = summary.iterations_run - 1;
      failure.shrunk = std::move(*loaded);
      failure.violations = report.violations;
      failure.corpus_path = path;
      summary.failures.push_back(std::move(failure));
    }
  }
  return summary;
}

}  // namespace incdb
