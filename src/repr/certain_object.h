// certainO: certainty represented as an object (paper, Section 5.3, eq. (7)).
//
// certainO(X) = ⋀ X, the greatest lower bound of a set of objects in the
// information ordering. Under ⪯_owa the glb of finitely many databases is
// their direct product (core/product.h); this module packages that for sets
// of query answers and provides the verification predicates used to check
// glb-hood under any of the orderings.

#ifndef INCDB_REPR_CERTAIN_OBJECT_H_
#define INCDB_REPR_CERTAIN_OBJECT_H_

#include <vector>

#include "core/database.h"
#include "core/ordering.h"
#include "core/product.h"

namespace incdb {

/// The glb under ⪯_owa of a nonempty set of databases (direct product).
Result<Database> CertainObjectOwa(const std::vector<Database>& dbs);

/// Convenience for single-relation answers: wraps relations into databases
/// over a one-relation schema named `rel_name`, products them, and returns
/// the result's relation.
Result<Relation> CertainObjectOwaRelations(const std::vector<Relation>& rels,
                                           const std::string& rel_name = "Ans");

/// Verifies that `candidate` is a glb of `xs` under `semantics`:
/// (a) candidate ⪯ x for every x ∈ xs, and
/// (b) every provided `lower_bounds` element y with y ⪯ all xs satisfies
///     y ⪯ candidate.
/// (b) is necessarily sampled — glb-hood over all objects is not decidable
/// by enumeration; callers supply the lower bounds they care about.
bool IsGreatestLowerBound(const Database& candidate,
                          const std::vector<Database>& xs,
                          const std::vector<Database>& lower_bounds,
                          WorldSemantics semantics);

}  // namespace incdb

#endif  // INCDB_REPR_CERTAIN_OBJECT_H_
