// certainK: certainty represented as knowledge (paper, Section 5.3, eqs.
// (6) and (8)).
//
// certainK(X) is a formula with Mod(certainK X) = Mod(Th(X)). For the
// relational representation systems of Section 5.2 the certain knowledge of
// a semantics set ⟦x⟧ is the diagram formula δ_x, and the certain knowledge
// of a query answer Q(⟦D⟧) is δ_{Q(D)} (eq. (10)) — computable by naïve
// evaluation for the right fragments.

#ifndef INCDB_REPR_CERTAIN_KNOWLEDGE_H_
#define INCDB_REPR_CERTAIN_KNOWLEDGE_H_

#include <vector>

#include "core/valuation.h"
#include "logic/diagram.h"
#include "logic/model_check.h"

namespace incdb {

/// certainK of ⟦d⟧ under the given semantics: δ_d^owa or δ_d^cwa.
FormulaPtr CertainKnowledgeOf(const Database& d, WorldSemantics semantics);

/// certainK of the answer space Q(⟦D⟧) represented by the naïve answer
/// relation: builds δ over a single-relation database named `rel_name`.
FormulaPtr CertainKnowledgeOfAnswer(const Relation& naive_answer,
                                    WorldSemantics semantics,
                                    const std::string& rel_name = "Ans");

/// Checks Mod(φ) ⊇ X on an explicit finite sample of complete objects:
/// every member of `worlds` must satisfy φ.
Result<bool> HoldsInAll(const FormulaPtr& formula,
                        const std::vector<Database>& worlds);

/// Checks that φ is at least as strong as ψ on a finite candidate universe:
/// every candidate satisfying φ satisfies ψ.
Result<bool> StrongerOn(const FormulaPtr& phi, const FormulaPtr& psi,
                        const std::vector<Database>& candidates);

}  // namespace incdb

#endif  // INCDB_REPR_CERTAIN_KNOWLEDGE_H_
