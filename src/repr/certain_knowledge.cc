#include "repr/certain_knowledge.h"

namespace incdb {

FormulaPtr CertainKnowledgeOf(const Database& d, WorldSemantics semantics) {
  switch (semantics) {
    case WorldSemantics::kOpenWorld:
      return DeltaOwa(d);
    case WorldSemantics::kClosedWorld:
      return DeltaCwa(d);
    case WorldSemantics::kWeakClosedWorld:
      // Positive-FO diagram: OWA diagram is the sound common core; the exact
      // wcwa diagram adds a domain-closure conjunct which we approximate by
      // the owa form (documented limitation).
      return DeltaOwa(d);
  }
  return DeltaOwa(d);
}

FormulaPtr CertainKnowledgeOfAnswer(const Relation& naive_answer,
                                    WorldSemantics semantics,
                                    const std::string& rel_name) {
  Database d;
  *d.MutableRelation(rel_name, naive_answer.arity()) = naive_answer;
  return CertainKnowledgeOf(d, semantics);
}

Result<bool> HoldsInAll(const FormulaPtr& formula,
                        const std::vector<Database>& worlds) {
  for (const Database& w : worlds) {
    INCDB_ASSIGN_OR_RETURN(bool sat, Satisfies(w, formula));
    if (!sat) return false;
  }
  return true;
}

Result<bool> StrongerOn(const FormulaPtr& phi, const FormulaPtr& psi,
                        const std::vector<Database>& candidates) {
  for (const Database& c : candidates) {
    INCDB_ASSIGN_OR_RETURN(bool sat_phi, Satisfies(c, phi));
    if (!sat_phi) continue;
    INCDB_ASSIGN_OR_RETURN(bool sat_psi, Satisfies(c, psi));
    if (!sat_psi) return false;
  }
  return true;
}

}  // namespace incdb
