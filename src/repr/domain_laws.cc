#include "repr/domain_laws.h"

#include "logic/diagram.h"

namespace incdb {

bool LawCompleteDenotesItself(const Database& c, WorldSemantics semantics) {
  INCDB_CHECK_MSG(c.IsComplete(), "law requires a complete database");
  return IsPossibleWorld(c, c, semantics);
}

Result<bool> LawWorldsAreMoreInformative(const Database& x,
                                         WorldSemantics semantics,
                                         const WorldEnumOptions& opts) {
  bool holds = true;
  Status st = ForEachWorldCwa(x, opts, [&](const Database& world) {
    // Every CWA world is in ⟦x⟧ under all three semantics (owa and wcwa are
    // supersets of cwa worlds).
    if (!Precedes(x, world, semantics)) {
      holds = false;
      return false;
    }
    return true;
  });
  INCDB_RETURN_IF_ERROR(st);
  return holds;
}

Result<bool> LawDiagramDefinesSemantics(
    const Database& x, WorldSemantics semantics,
    const std::vector<Database>& candidates) {
  const FormulaPtr delta = semantics == WorldSemantics::kClosedWorld
                               ? DeltaCwa(x)
                               : DeltaOwa(x);
  for (const Database& c : candidates) {
    if (!c.IsComplete()) {
      return Status::InvalidArgument("candidates must be complete databases");
    }
    INCDB_ASSIGN_OR_RETURN(bool sat, Satisfies(c, delta));
    const bool in_sem = IsPossibleWorld(x, c, semantics);
    if (sat != in_sem) return false;
  }
  return true;
}

Result<bool> LawUpwardClosure(const Database& x, const Database& y,
                              WorldSemantics semantics) {
  const FormulaPtr delta = semantics == WorldSemantics::kClosedWorld
                               ? DeltaCwa(x)
                               : DeltaOwa(x);
  const bool precedes = Precedes(x, y, semantics);
  INCDB_ASSIGN_OR_RETURN(bool sat, Satisfies(y, delta));
  // x ⪯ y ⇒ y ⊨ δ_x. (The converse holds for complete y; for incomplete y
  // the naïve reading of δ_x is exactly homomorphism existence for the OWA
  // diagram.)
  if (precedes && !sat) return false;
  return true;
}

}  // namespace incdb
