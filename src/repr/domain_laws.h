// Executable checks for the axioms of the paper's abstract representation
// systems ⟨D, C, ⟦·⟧, Iso⟩ (Section 5.1), instantiated to the relational
// domains. Property tests sweep these over random instances.

#ifndef INCDB_REPR_DOMAIN_LAWS_H_
#define INCDB_REPR_DOMAIN_LAWS_H_

#include <vector>

#include "core/database.h"
#include "core/ordering.h"
#include "core/possible_worlds.h"
#include "logic/model_check.h"

namespace incdb {

/// Axiom 1: a complete object denotes at least itself — c ∈ ⟦c⟧.
/// `c` must be complete.
bool LawCompleteDenotesItself(const Database& c, WorldSemantics semantics);

/// Axiom 2: if c ∈ ⟦x⟧ (c complete), then x ⪯ c.
/// Checked for every CWA world of `x` over the default finite domain.
Result<bool> LawWorldsAreMoreInformative(const Database& x,
                                         WorldSemantics semantics,
                                         const WorldEnumOptions& opts = {});

/// Representation-system condition: Mod_C(δ_x) = ⟦x⟧, verified on an
/// explicit finite candidate set of complete databases.
Result<bool> LawDiagramDefinesSemantics(
    const Database& x, WorldSemantics semantics,
    const std::vector<Database>& candidates);

/// Ordering/diagram compatibility: x ⪯ y implies y ⊨ δ_x (Mod(δ_x) = ↑x),
/// checked for a given pair.
Result<bool> LawUpwardClosure(const Database& x, const Database& y,
                              WorldSemantics semantics);

}  // namespace incdb

#endif  // INCDB_REPR_DOMAIN_LAWS_H_
