#include "repr/certain_object.h"

namespace incdb {

Result<Database> CertainObjectOwa(const std::vector<Database>& dbs) {
  return ProductOf(dbs);
}

Result<Relation> CertainObjectOwaRelations(const std::vector<Relation>& rels,
                                           const std::string& rel_name) {
  if (rels.empty()) {
    return Status::InvalidArgument("CertainObjectOwaRelations needs input");
  }
  std::vector<Database> dbs;
  dbs.reserve(rels.size());
  for (const Relation& r : rels) {
    Database d;
    *d.MutableRelation(rel_name, r.arity()) = r;
    dbs.push_back(std::move(d));
  }
  INCDB_ASSIGN_OR_RETURN(Database prod, ProductOf(dbs));
  return prod.GetRelation(rel_name);
}

bool IsGreatestLowerBound(const Database& candidate,
                          const std::vector<Database>& xs,
                          const std::vector<Database>& lower_bounds,
                          WorldSemantics semantics) {
  for (const Database& x : xs) {
    if (!Precedes(candidate, x, semantics)) return false;
  }
  for (const Database& y : lower_bounds) {
    bool is_lb = true;
    for (const Database& x : xs) {
      if (!Precedes(y, x, semantics)) {
        is_lb = false;
        break;
      }
    }
    if (is_lb && !Precedes(y, candidate, semantics)) return false;
  }
  return true;
}

}  // namespace incdb
