// Active-domain model checking of FO formulas on naïve databases.
//
// Quantifiers range over the active domain of the database plus the
// constants mentioned in the formula. On a complete database this is
// standard FO evaluation; on a database with nulls it is the naïve
// interpretation (nulls are just elements), which is what the duality
// results of Section 4 need: certain_owa(Q, D) for Boolean CQ Q is exactly
// D ⊨ Q under this naïve reading.

#ifndef INCDB_LOGIC_MODEL_CHECK_H_
#define INCDB_LOGIC_MODEL_CHECK_H_

#include <map>

#include "core/database.h"
#include "logic/formula.h"
#include "util/status.h"

namespace incdb {

/// Variable environment for model checking.
using VarEnv = std::map<VarId, Value>;

/// True iff db ⊨ φ[env] with active-domain quantifier semantics. The formula
/// must be a sentence modulo `env` (free variables must be bound by `env`).
Result<bool> Satisfies(const Database& db, const FormulaPtr& formula,
                       const VarEnv& env = {});

/// All assignments of `free_vars` (the formula's free variables, sorted) over
/// the active domain that satisfy the formula, as a relation with one column
/// per free variable in ascending VarId order.
Result<Relation> Answers(const Database& db, const FormulaPtr& formula);

}  // namespace incdb

#endif  // INCDB_LOGIC_MODEL_CHECK_H_
