#include "logic/containment.h"

#include <map>

namespace incdb {
namespace {

// Freezes a CQ's tableau: variables become reserved string constants that
// cannot collide with user data (they carry a \x01 prefix). Returns the
// frozen database and frozen head tuple.
void FreezeTableau(const ConjunctiveQuery& q, Database* frozen_db,
                   Tuple* frozen_head) {
  std::map<VarId, Value> frz;
  auto freeze_term = [&](const FoTerm& t) -> Value {
    if (!t.is_var()) return t.constant;
    auto it = frz.find(t.var);
    if (it != frz.end()) return it->second;
    Value c = Value::Str(std::string("\x01frz") + std::to_string(t.var));
    frz.emplace(t.var, c);
    return c;
  };
  for (const FoAtom& a : q.body) {
    std::vector<Value> vals;
    vals.reserve(a.terms.size());
    for (const FoTerm& t : a.terms) vals.push_back(freeze_term(t));
    frozen_db->AddTuple(a.relation, Tuple(std::move(vals)));
  }
  std::vector<Value> head_vals;
  head_vals.reserve(q.head.size());
  for (const FoTerm& t : q.head) head_vals.push_back(freeze_term(t));
  *frozen_head = Tuple(std::move(head_vals));
}

// Is the frozen canonical instance of q1 accepted by q2 with matching head?
Result<bool> FrozenAccepted(const ConjunctiveQuery& q1,
                            const ConjunctiveQuery& q2) {
  Database frozen;
  Tuple head;
  FreezeTableau(q1, &frozen, &head);
  INCDB_ASSIGN_OR_RETURN(Relation answers, EvalCQ(q2, frozen));
  return answers.Contains(head);
}

}  // namespace

Result<bool> CQContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2) {
  if (q1.head.size() != q2.head.size()) {
    return Status::InvalidArgument("containment requires equal head arities");
  }
  return FrozenAccepted(q1, q2);
}

Result<bool> UCQContained(const UnionOfCQs& q1, const UnionOfCQs& q2) {
  INCDB_ASSIGN_OR_RETURN(size_t a1, q1.HeadArity());
  INCDB_ASSIGN_OR_RETURN(size_t a2, q2.HeadArity());
  if (a1 != a2) {
    return Status::InvalidArgument("containment requires equal head arities");
  }
  for (const ConjunctiveQuery& d1 : q1.disjuncts) {
    bool contained = false;
    for (const ConjunctiveQuery& d2 : q2.disjuncts) {
      INCDB_ASSIGN_OR_RETURN(bool c, FrozenAccepted(d1, d2));
      if (c) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

Result<bool> CertainOwaBoolean(const ConjunctiveQuery& q, const Database& d) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("CertainOwaBoolean requires a Boolean CQ");
  }
  // Duality: certain_owa(Q, D) ⇔ Q_D ⊆ Q ⇔ D ⊨ Q naïvely.
  INCDB_ASSIGN_OR_RETURN(Relation r, EvalCQ(q, d));
  return !r.empty();
}

Result<bool> CertainOwaBoolean(const UnionOfCQs& q, const Database& d) {
  for (const ConjunctiveQuery& cq : q.disjuncts) {
    INCDB_ASSIGN_OR_RETURN(bool b, CertainOwaBoolean(cq, d));
    if (b) return true;
  }
  return false;
}

Result<Relation> CertainOwaAnswers(const UnionOfCQs& q, const Database& d) {
  INCDB_ASSIGN_OR_RETURN(Relation naive, EvalUCQ(q, d));
  Relation out(naive.arity());
  for (const Tuple& t : naive.tuples()) {
    if (!t.HasNull()) out.Add(t);
  }
  return out;
}

Result<ConjunctiveQuery> MinimizeCQ(const ConjunctiveQuery& q) {
  ConjunctiveQuery cur = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < cur.body.size(); ++i) {
      if (cur.body.size() == 1) break;  // keep at least one atom
      ConjunctiveQuery cand = cur;
      cand.body.erase(cand.body.begin() + static_cast<long>(i));
      // Removing atoms can only weaken: cur ⊆ cand always. Equivalent iff
      // cand ⊆ cur. Also reject candidates with unsafe heads.
      bool safe = true;
      {
        std::set<VarId> body_vars;
        for (const FoAtom& a : cand.body) {
          for (const FoTerm& t : a.terms) {
            if (t.is_var()) body_vars.insert(t.var);
          }
        }
        for (const FoTerm& t : cand.head) {
          if (t.is_var() && body_vars.count(t.var) == 0) safe = false;
        }
      }
      if (!safe) continue;
      INCDB_ASSIGN_OR_RETURN(bool equiv, CQContained(cand, cur));
      if (equiv) {
        cur = std::move(cand);
        changed = true;
        break;
      }
    }
  }
  return cur;
}

}  // namespace incdb
