// Diagram formulas: the logical-theory view of incomplete databases
// (paper, Sections 4 and 5.2).
//
// For an incomplete database D with Null(D) = {⊥_1, ..., ⊥_n}:
//
//   PosDiag(D)   — conjunction of all atoms of D with ⊥_i read as variable
//                  x_i (free).
//   δ_D^owa      — ∃ x̄ PosDiag(D); then Mod_C(δ_D^owa) = ⟦D⟧_owa.
//   δ_D^cwa      — ∃ x̄ ( PosDiag(D) ∧ ⋀_R ∀ȳ (R(ȳ) → ⋁_{t∈R^D} ȳ = t) );
//                  then Mod_C(δ_D^cwa) = ⟦D⟧_cwa. The closure conjunct uses
//                  guarded universals only, so δ_D^cwa ∈ Pos∀G.

#ifndef INCDB_LOGIC_DIAGRAM_H_
#define INCDB_LOGIC_DIAGRAM_H_

#include <map>

#include "core/database.h"
#include "logic/formula.h"

namespace incdb {

/// Mapping from the nulls of a database to the variables of its diagram.
/// Null ⊥_i maps to variable with the same numeric id.
inline VarId NullVar(NullId id) { return static_cast<VarId>(id); }

/// The positive diagram: conjunction of atoms, nulls as free variables.
/// Empty database yields True().
FormulaPtr PositiveDiagram(const Database& d);

/// δ_D for the OWA semantics.
FormulaPtr DeltaOwa(const Database& d);

/// δ_D for the CWA semantics (a Pos∀G sentence).
FormulaPtr DeltaCwa(const Database& d);

}  // namespace incdb

#endif  // INCDB_LOGIC_DIAGRAM_H_
