// Query containment and the certain-answer ↔ containment connection
// (paper, Section 4).
//
// Chandra–Merlin: Q1 ⊆ Q2 iff there is a homomorphism from the tableau of Q2
// into the tableau of Q1 mapping head to head. We reduce head preservation
// to plain database homomorphism by adding a reserved head relation holding
// the head tuple on both sides, and by *freezing* Q1's tableau (its
// variables become fresh constants) so the homomorphism may not move them.
//
// Certain answers under OWA then come for free: for a Boolean CQ (or UCQ) Q,
// certain_owa(Q, D) is true iff Q_D ⊆ Q iff D ⊨ Q naïvely.

#ifndef INCDB_LOGIC_CONTAINMENT_H_
#define INCDB_LOGIC_CONTAINMENT_H_

#include "logic/cq.h"

namespace incdb {

/// True iff Q1 ⊆ Q2 (over all complete databases). Head arities must match.
Result<bool> CQContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2);

/// UCQ containment: Q1 ⊆ Q2 iff every disjunct of Q1 is contained in Q2,
/// and a CQ is contained in a UCQ iff it is contained in some disjunct.
Result<bool> UCQContained(const UnionOfCQs& q1, const UnionOfCQs& q2);

/// Boolean certain answer under OWA via the duality: certain_owa(Q, D) is
/// true iff the canonical query of D is contained in Q iff D ⊨ Q naïvely.
Result<bool> CertainOwaBoolean(const ConjunctiveQuery& q, const Database& d);
Result<bool> CertainOwaBoolean(const UnionOfCQs& q, const Database& d);

/// Non-Boolean certain answers under OWA for (U)CQs: naïve evaluation with
/// null-containing tuples dropped — sound and complete for this fragment.
Result<Relation> CertainOwaAnswers(const UnionOfCQs& q, const Database& d);

/// Minimizes a Boolean CQ by computing its core (removing body atoms whose
/// removal keeps the query equivalent). Exposed because tableau cores are
/// the canonical representatives of ⪯_owa-equivalence classes.
Result<ConjunctiveQuery> MinimizeCQ(const ConjunctiveQuery& q);

}  // namespace incdb

#endif  // INCDB_LOGIC_CONTAINMENT_H_
