#include "logic/rule_parser.h"

#include <cctype>
#include <map>

#include "util/strings.h"

namespace incdb {
namespace {

// A tiny cursor-based tokenizer shared by the rule grammar.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Accept(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptStr(const std::string& s) {
    SkipSpace();
    if (text_.compare(pos_, s.size(), s) == 0) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (Accept(c)) return Status::OK();
    return Status::ParseError(std::string("expected '") + c + "' at offset " +
                              std::to_string(pos_) + " in rule");
  }

  Result<std::string> Identifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected identifier at offset " +
                                std::to_string(start));
    }
    return text_.substr(start, pos_ - start);
  }

  size_t pos() const { return pos_; }
  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  const std::string& text() const { return text_; }
  void Advance() { ++pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

class RuleParser {
 public:
  explicit RuleParser(const std::string& text) : cur_(text) {}

  Result<FoTerm> Term() {
    const char c = cur_.Peek();
    if (c == '\'') {
      cur_.Advance();
      std::string s;
      // Raw character read: spaces inside quotes are content.
      while (cur_.pos() < cur_.text().size() &&
             cur_.text()[cur_.pos()] != '\'') {
        s += cur_.text()[cur_.pos()];
        cur_.Advance();
      }
      INCDB_RETURN_IF_ERROR(cur_.Expect('\''));
      return FoTerm::Const(Value::Str(std::move(s)));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      std::string num;
      if (c == '-') {
        num += '-';
        cur_.Advance();
      }
      while (cur_.pos() < cur_.text().size() &&
             std::isdigit(static_cast<unsigned char>(
                 cur_.text()[cur_.pos()]))) {
        num += cur_.text()[cur_.pos()];
        cur_.Advance();
      }
      if (num.empty() || num == "-") {
        return Status::ParseError("bad number in rule");
      }
      return FoTerm::Const(Value::Int(std::stoll(num)));
    }
    INCDB_ASSIGN_OR_RETURN(std::string name, cur_.Identifier());
    return FoTerm::Var(VarOf(name));
  }

  Result<FoAtom> Atom() {
    FoAtom atom;
    INCDB_ASSIGN_OR_RETURN(atom.relation, cur_.Identifier());
    INCDB_RETURN_IF_ERROR(cur_.Expect('('));
    if (!cur_.Accept(')')) {
      for (;;) {
        INCDB_ASSIGN_OR_RETURN(FoTerm t, Term());
        atom.terms.push_back(std::move(t));
        if (cur_.Accept(')')) break;
        INCDB_RETURN_IF_ERROR(cur_.Expect(','));
      }
    }
    return atom;
  }

  Result<std::vector<FoAtom>> AtomList() {
    std::vector<FoAtom> atoms;
    for (;;) {
      INCDB_ASSIGN_OR_RETURN(FoAtom a, Atom());
      atoms.push_back(std::move(a));
      if (!cur_.Accept(',')) break;
    }
    return atoms;
  }

  Result<ConjunctiveQuery> CQ() {
    ConjunctiveQuery q;
    if (!cur_.AcceptStr(":-")) {
      // Head atom: name(terms) :- ...
      INCDB_ASSIGN_OR_RETURN(FoAtom head, Atom());
      q.head = std::move(head.terms);
      INCDB_RETURN_IF_ERROR(cur_.AcceptStr(":-")
                                ? Status::OK()
                                : Status::ParseError("expected ':-'"));
    }
    INCDB_ASSIGN_OR_RETURN(q.body, AtomList());
    if (!cur_.AtEnd()) {
      return Status::ParseError("trailing input after CQ body");
    }
    return q;
  }

  Result<Tgd> TgdRule() {
    Tgd tgd;
    INCDB_ASSIGN_OR_RETURN(tgd.body, AtomList());
    if (!cur_.AcceptStr("->")) {
      return Status::ParseError("expected '->' in tgd");
    }
    INCDB_ASSIGN_OR_RETURN(tgd.head, AtomList());
    if (!cur_.AtEnd()) {
      return Status::ParseError("trailing input after tgd head");
    }
    return tgd;
  }

 private:
  VarId VarOf(const std::string& name) {
    auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    const VarId id = static_cast<VarId>(vars_.size());
    vars_.emplace(name, id);
    return id;
  }

  Cursor cur_;
  std::map<std::string, VarId> vars_;
};

}  // namespace

Result<ConjunctiveQuery> ParseCQ(const std::string& text) {
  RuleParser p(text);
  return p.CQ();
}

Result<UnionOfCQs> ParseUCQ(const std::string& text) {
  UnionOfCQs out;
  for (const std::string& part : Split(text, ';')) {
    const std::string trimmed = Trim(part);
    if (trimmed.empty()) continue;
    INCDB_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseCQ(trimmed));
    out.disjuncts.push_back(std::move(q));
  }
  if (out.disjuncts.empty()) {
    return Status::ParseError("empty UCQ");
  }
  INCDB_RETURN_IF_ERROR(out.HeadArity().status());
  return out;
}

Result<Tgd> ParseTgd(const std::string& text) {
  RuleParser p(text);
  return p.TgdRule();
}

Result<SchemaMapping> ParseMapping(const std::string& text) {
  SchemaMapping m;
  for (const std::string& line : Split(text, '\n')) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    INCDB_ASSIGN_OR_RETURN(Tgd tgd, ParseTgd(trimmed));
    m.tgds.push_back(std::move(tgd));
  }
  INCDB_RETURN_IF_ERROR(m.Validate());
  return m;
}

}  // namespace incdb
