// First-order formulas over a relational vocabulary.
//
// The library uses FO formulas for the paper's logical-theory view of
// incompleteness (Section 4): an incomplete database *is* a formula (its
// positive diagram under OWA, its diagram-plus-closure under CWA), certain
// answers are implication, and fragments (existential positive = UCQ,
// positive, Pos∀G) determine when naïve evaluation is correct.
//
// Universally guarded quantification ∀x̄ (R(x̄) → φ) gets its own node kind so
// the Pos∀G classifier is purely syntactic, exactly as in the paper.

#ifndef INCDB_LOGIC_FORMULA_H_
#define INCDB_LOGIC_FORMULA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/value.h"

namespace incdb {

/// Logical variable identifier.
using VarId = uint32_t;

/// A term: a variable or a constant.
struct FoTerm {
  enum class Kind { kVar, kConst };
  Kind kind = Kind::kVar;
  VarId var = 0;
  Value constant;

  static FoTerm Var(VarId v) { return FoTerm{Kind::kVar, v, Value()}; }
  static FoTerm Const(Value c) {
    return FoTerm{Kind::kConst, 0, std::move(c)};
  }

  bool is_var() const { return kind == Kind::kVar; }
  bool operator==(const FoTerm& o) const;
  std::string ToString() const;
};

/// A relational atom R(t1, ..., tk).
struct FoAtom {
  std::string relation;
  std::vector<FoTerm> terms;

  std::string ToString() const;
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// Immutable FO formula node.
class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,           ///< R(t̄)
    kEq,             ///< t1 = t2
    kNot,
    kAnd,
    kOr,
    kExists,         ///< ∃ vars . φ
    kForall,         ///< ∀ vars . φ  (unguarded)
    kGuardedForall,  ///< ∀ x̄ (R(x̄) → φ)   with x̄ distinct variables
  };

  Kind kind() const { return kind_; }
  const FoAtom& atom() const { return atom_; }
  const FoTerm& lhs() const { return lhs_; }
  const FoTerm& rhs() const { return rhs_; }
  const std::vector<VarId>& vars() const { return vars_; }
  const std::vector<FormulaPtr>& children() const { return children_; }

  std::string ToString() const;

  /// Free variables of the formula, sorted.
  std::vector<VarId> FreeVars() const;

  // --- Fragment membership (syntactic) ---
  /// ∃, ∧, ∨ over atoms and equalities: existential positive (UCQ power).
  bool IsExistentialPositive() const;
  /// Adds ∀ (unguarded) to the above: positive FO.
  bool IsPositiveFO() const;
  /// Positive FO where every ∀ is relation-guarded: the Pos∀G class.
  bool IsPosForallG() const;

  // --- Factories ---
  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr Atom(FoAtom a);
  static FormulaPtr Atom(std::string relation, std::vector<FoTerm> terms);
  static FormulaPtr Eq(FoTerm l, FoTerm r);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  /// n-ary helpers; empty input yields True()/False() respectively.
  static FormulaPtr AndAll(std::vector<FormulaPtr> fs);
  static FormulaPtr OrAll(std::vector<FormulaPtr> fs);
  static FormulaPtr Exists(std::vector<VarId> vars, FormulaPtr f);
  static FormulaPtr Forall(std::vector<VarId> vars, FormulaPtr f);
  static FormulaPtr GuardedForall(FoAtom guard, FormulaPtr f);
  /// Sugar: a → b as ¬a ∨ b (leaves Pos∀G if used via GuardedForall only).
  static FormulaPtr Implies(FormulaPtr a, FormulaPtr b);

 private:
  explicit Formula(Kind kind) : kind_(kind) {}

  Kind kind_;
  FoAtom atom_;
  FoTerm lhs_;
  FoTerm rhs_;
  std::vector<VarId> vars_;
  std::vector<FormulaPtr> children_;
};

}  // namespace incdb

#endif  // INCDB_LOGIC_FORMULA_H_
