#include "logic/model_check.h"

#include <functional>
#include <vector>

namespace incdb {
namespace {

// Collects constants appearing inside a formula.
void CollectConstants(const Formula& f, std::set<Value>* out) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kAtom:
      for (const FoTerm& t : f.atom().terms) {
        if (!t.is_var()) out->insert(t.constant);
      }
      return;
    case Formula::Kind::kEq:
      if (!f.lhs().is_var()) out->insert(f.lhs().constant);
      if (!f.rhs().is_var()) out->insert(f.rhs().constant);
      return;
    case Formula::Kind::kGuardedForall:
      for (const FoTerm& t : f.atom().terms) {
        if (!t.is_var()) out->insert(t.constant);
      }
      CollectConstants(*f.children()[0], out);
      return;
    default:
      for (const FormulaPtr& c : f.children()) CollectConstants(*c, out);
      return;
  }
}

class Checker {
 public:
  Checker(const Database& db, const FormulaPtr& root) : db_(db) {
    auto adom = db.ActiveDomain();
    std::set<Value> consts;
    CollectConstants(*root, &consts);
    adom.insert(consts.begin(), consts.end());
    domain_.assign(adom.begin(), adom.end());
  }

  Result<bool> Eval(const Formula& f, VarEnv* env) {
    switch (f.kind()) {
      case Formula::Kind::kTrue:
        return true;
      case Formula::Kind::kFalse:
        return false;
      case Formula::Kind::kAtom: {
        INCDB_ASSIGN_OR_RETURN(Tuple t, Resolve(f.atom(), *env));
        return db_.GetRelation(f.atom().relation).Contains(t);
      }
      case Formula::Kind::kEq: {
        INCDB_ASSIGN_OR_RETURN(Value a, ResolveTerm(f.lhs(), *env));
        INCDB_ASSIGN_OR_RETURN(Value b, ResolveTerm(f.rhs(), *env));
        return a == b;
      }
      case Formula::Kind::kNot: {
        INCDB_ASSIGN_OR_RETURN(bool v, Eval(*f.children()[0], env));
        return !v;
      }
      case Formula::Kind::kAnd: {
        INCDB_ASSIGN_OR_RETURN(bool a, Eval(*f.children()[0], env));
        if (!a) return false;
        return Eval(*f.children()[1], env);
      }
      case Formula::Kind::kOr: {
        INCDB_ASSIGN_OR_RETURN(bool a, Eval(*f.children()[0], env));
        if (a) return true;
        return Eval(*f.children()[1], env);
      }
      case Formula::Kind::kExists:
        return Quantify(f, env, /*exists=*/true);
      case Formula::Kind::kForall:
        return Quantify(f, env, /*exists=*/false);
      case Formula::Kind::kGuardedForall: {
        // ∀ x̄ (R(x̄) → φ): iterate over the tuples of R only.
        const Relation& rel = db_.GetRelation(f.atom().relation);
        if (rel.arity() != f.atom().terms.size() && !rel.empty()) {
          return Status::InvalidArgument("guard arity mismatch on " +
                                         f.atom().relation);
        }
        for (const Tuple& t : rel.tuples()) {
          // Bind guard terms; constant terms in the guard filter tuples.
          std::vector<std::pair<VarId, bool>> bound;  // (var, had_old)
          std::vector<std::pair<VarId, Value>> old;
          bool match = true;
          for (size_t i = 0; i < f.atom().terms.size(); ++i) {
            const FoTerm& gt = f.atom().terms[i];
            if (!gt.is_var()) {
              if (gt.constant != t[i]) {
                match = false;
                break;
              }
              continue;
            }
            auto it = env->find(gt.var);
            if (it != env->end()) old.push_back({gt.var, it->second});
            (*env)[gt.var] = t[i];
            bound.push_back({gt.var, it != env->end()});
          }
          bool ok = true;
          if (match) {
            auto r = Eval(*f.children()[0], env);
            if (!r.ok()) return r;
            ok = *r;
          }
          // Restore environment.
          for (const auto& [v, had_old] : bound) {
            if (!had_old) env->erase(v);
          }
          for (const auto& [v, val] : old) (*env)[v] = val;
          if (match && !ok) return false;
        }
        return true;
      }
    }
    return Status::Internal("unknown formula kind");
  }

 private:
  Result<bool> Quantify(const Formula& f, VarEnv* env, bool exists) {
    const std::vector<VarId>& vars = f.vars();
    std::function<Result<bool>(size_t)> rec =
        [&](size_t i) -> Result<bool> {
      if (i == vars.size()) return Eval(*f.children()[0], env);
      const VarId v = vars[i];
      auto it = env->find(v);
      const bool had = it != env->end();
      const Value old = had ? it->second : Value();
      for (const Value& d : domain_) {
        (*env)[v] = d;
        INCDB_ASSIGN_OR_RETURN(bool r, rec(i + 1));
        if (exists && r) {
          RestoreVar(env, v, had, old);
          return true;
        }
        if (!exists && !r) {
          RestoreVar(env, v, had, old);
          return false;
        }
      }
      RestoreVar(env, v, had, old);
      return !exists;
    };
    return rec(0);
  }

  static void RestoreVar(VarEnv* env, VarId v, bool had, const Value& old) {
    if (had) {
      (*env)[v] = old;
    } else {
      env->erase(v);
    }
  }

  Result<Value> ResolveTerm(const FoTerm& t, const VarEnv& env) {
    if (!t.is_var()) return t.constant;
    auto it = env.find(t.var);
    if (it == env.end()) {
      return Status::InvalidArgument("unbound variable x" +
                                     std::to_string(t.var));
    }
    return it->second;
  }

  Result<Tuple> Resolve(const FoAtom& a, const VarEnv& env) {
    std::vector<Value> vals;
    vals.reserve(a.terms.size());
    for (const FoTerm& t : a.terms) {
      INCDB_ASSIGN_OR_RETURN(Value v, ResolveTerm(t, env));
      vals.push_back(std::move(v));
    }
    return Tuple(std::move(vals));
  }

  const Database& db_;
  std::vector<Value> domain_;
};

}  // namespace

Result<bool> Satisfies(const Database& db, const FormulaPtr& formula,
                       const VarEnv& env) {
  Checker checker(db, formula);
  VarEnv mutable_env = env;
  return checker.Eval(*formula, &mutable_env);
}

Result<Relation> Answers(const Database& db, const FormulaPtr& formula) {
  const std::vector<VarId> free = formula->FreeVars();
  Relation out(free.size());
  std::vector<Value> domain;
  {
    auto adom = db.ActiveDomain();
    domain.assign(adom.begin(), adom.end());
  }
  Checker checker(db, formula);
  std::vector<size_t> idx(free.size(), 0);
  if (free.empty()) {
    VarEnv env;
    INCDB_ASSIGN_OR_RETURN(bool v, checker.Eval(*formula, &env));
    if (v) out.Add(Tuple{});
    return out;
  }
  if (domain.empty()) return out;
  for (;;) {
    VarEnv env;
    std::vector<Value> vals;
    vals.reserve(free.size());
    for (size_t i = 0; i < free.size(); ++i) {
      env[free[i]] = domain[idx[i]];
      vals.push_back(domain[idx[i]]);
    }
    INCDB_ASSIGN_OR_RETURN(bool v, checker.Eval(*formula, &env));
    if (v) out.Add(Tuple(std::move(vals)));
    size_t pos = 0;
    while (pos < idx.size() && ++idx[pos] == domain.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == idx.size()) break;
  }
  return out;
}

}  // namespace incdb
