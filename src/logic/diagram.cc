#include "logic/diagram.h"

#include <algorithm>

namespace incdb {
namespace {

FoTerm ValueTerm(const Value& v) {
  if (v.is_null()) return FoTerm::Var(NullVar(v.null_id()));
  return FoTerm::Const(v);
}

std::vector<VarId> NullVarsOf(const Database& d) {
  std::vector<VarId> vars;
  for (NullId id : d.Nulls()) vars.push_back(NullVar(id));
  return vars;
}

}  // namespace

FormulaPtr PositiveDiagram(const Database& d) {
  std::vector<FormulaPtr> atoms;
  for (const auto& [name, rel] : d.relations()) {
    for (const Tuple& t : rel.tuples()) {
      std::vector<FoTerm> terms;
      terms.reserve(t.arity());
      for (const Value& v : t.values()) terms.push_back(ValueTerm(v));
      atoms.push_back(Formula::Atom(name, std::move(terms)));
    }
  }
  return Formula::AndAll(std::move(atoms));
}

FormulaPtr DeltaOwa(const Database& d) {
  return Formula::Exists(NullVarsOf(d), PositiveDiagram(d));
}

FormulaPtr DeltaCwa(const Database& d) {
  std::vector<FormulaPtr> parts;
  parts.push_back(PositiveDiagram(d));

  // Fresh variables for the universal guards, beyond all null variables.
  VarId next = 0;
  for (NullId id : d.Nulls()) next = std::max(next, NullVar(id) + 1);

  for (const auto& [name, rel] : d.relations()) {
    const size_t k = rel.arity();
    std::vector<FoTerm> guard_terms;
    std::vector<VarId> ys;
    for (size_t i = 0; i < k; ++i) {
      ys.push_back(next);
      guard_terms.push_back(FoTerm::Var(next));
      ++next;
    }
    // ⋁_{t ∈ R^D} ȳ = t
    std::vector<FormulaPtr> disjuncts;
    for (const Tuple& t : rel.tuples()) {
      std::vector<FormulaPtr> eqs;
      for (size_t i = 0; i < k; ++i) {
        eqs.push_back(Formula::Eq(FoTerm::Var(ys[i]), ValueTerm(t[i])));
      }
      disjuncts.push_back(Formula::AndAll(std::move(eqs)));
    }
    parts.push_back(Formula::GuardedForall(
        FoAtom{name, guard_terms}, Formula::OrAll(std::move(disjuncts))));
  }
  return Formula::Exists(NullVarsOf(d), Formula::AndAll(std::move(parts)));
}

}  // namespace incdb
