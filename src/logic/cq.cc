#include "logic/cq.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "util/strings.h"

namespace incdb {

std::vector<VarId> ConjunctiveQuery::Variables() const {
  std::set<VarId> vars;
  for (const FoTerm& t : head) {
    if (t.is_var()) vars.insert(t.var);
  }
  for (const FoAtom& a : body) {
    for (const FoTerm& t : a.terms) {
      if (t.is_var()) vars.insert(t.var);
    }
  }
  return std::vector<VarId>(vars.begin(), vars.end());
}

FormulaPtr ConjunctiveQuery::ToFormula() const {
  std::vector<FormulaPtr> atoms;
  atoms.reserve(body.size());
  for (const FoAtom& a : body) atoms.push_back(Formula::Atom(a));
  FormulaPtr conj = Formula::AndAll(std::move(atoms));
  // Existentially quantify body-only variables.
  std::set<VarId> head_vars;
  for (const FoTerm& t : head) {
    if (t.is_var()) head_vars.insert(t.var);
  }
  std::set<VarId> exist;
  for (const FoAtom& a : body) {
    for (const FoTerm& t : a.terms) {
      if (t.is_var() && head_vars.count(t.var) == 0) exist.insert(t.var);
    }
  }
  return Formula::Exists(std::vector<VarId>(exist.begin(), exist.end()),
                         conj);
}

std::string ConjunctiveQuery::ToString() const {
  std::vector<std::string> hs;
  for (const FoTerm& t : head) hs.push_back(t.ToString());
  std::vector<std::string> bs;
  for (const FoAtom& a : body) bs.push_back(a.ToString());
  return "ans(" + Join(hs, ", ") + ") :- " + Join(bs, ", ");
}

Result<size_t> UnionOfCQs::HeadArity() const {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("empty UCQ has no head arity");
  }
  const size_t arity = disjuncts[0].head.size();
  for (const ConjunctiveQuery& q : disjuncts) {
    if (q.head.size() != arity) {
      return Status::InvalidArgument("UCQ members have different head arities");
    }
  }
  return arity;
}

std::string UnionOfCQs::ToString() const {
  std::vector<std::string> parts;
  for (const ConjunctiveQuery& q : disjuncts) parts.push_back(q.ToString());
  return Join(parts, "  |  ");
}

ConjunctiveQuery CanonicalCQ(const Database& d) {
  ConjunctiveQuery q;
  for (const auto& [name, rel] : d.relations()) {
    for (const Tuple& t : rel.tuples()) {
      FoAtom a;
      a.relation = name;
      for (const Value& v : t.values()) {
        if (v.is_null()) {
          a.terms.push_back(FoTerm::Var(static_cast<VarId>(v.null_id())));
        } else {
          a.terms.push_back(FoTerm::Const(v));
        }
      }
      q.body.push_back(std::move(a));
    }
  }
  return q;
}

Database TableauOf(const ConjunctiveQuery& q, Tuple* head_tuple) {
  Database d;
  auto term_value = [](const FoTerm& t) -> Value {
    if (t.is_var()) return Value::Null(static_cast<NullId>(t.var));
    return t.constant;
  };
  for (const FoAtom& a : q.body) {
    std::vector<Value> vals;
    vals.reserve(a.terms.size());
    for (const FoTerm& t : a.terms) vals.push_back(term_value(t));
    d.AddTuple(a.relation, Tuple(std::move(vals)));
  }
  if (head_tuple != nullptr) {
    std::vector<Value> vals;
    vals.reserve(q.head.size());
    for (const FoTerm& t : q.head) vals.push_back(term_value(t));
    *head_tuple = Tuple(std::move(vals));
  }
  return d;
}

Result<Relation> EvalCQ(const ConjunctiveQuery& q, const Database& db) {
  // Backtracking join over the body atoms.
  for (const FoAtom& a : q.body) {
    if (db.schema().HasRelation(a.relation)) {
      INCDB_ASSIGN_OR_RETURN(size_t arity, db.schema().Arity(a.relation));
      if (arity != a.terms.size()) {
        return Status::InvalidArgument("atom arity mismatch on " + a.relation);
      }
    }
  }
  // Head variables must appear in the body (safety).
  {
    std::set<VarId> body_vars;
    for (const FoAtom& a : q.body) {
      for (const FoTerm& t : a.terms) {
        if (t.is_var()) body_vars.insert(t.var);
      }
    }
    for (const FoTerm& t : q.head) {
      if (t.is_var() && body_vars.count(t.var) == 0) {
        return Status::InvalidArgument("unsafe head variable x" +
                                       std::to_string(t.var));
      }
    }
  }

  Relation out(q.head.size());
  std::map<VarId, Value> env;

  // Boolean queries short-circuit on the first satisfying assignment —
  // this is what makes certain_owa checks (Section 4 duality) cheap in the
  // positive case.
  bool done = false;
  std::function<void(size_t)> rec = [&](size_t idx) {
    if (done) return;
    if (idx == q.body.size()) {
      std::vector<Value> vals;
      vals.reserve(q.head.size());
      for (const FoTerm& t : q.head) {
        vals.push_back(t.is_var() ? env.at(t.var) : t.constant);
      }
      out.Add(Tuple(std::move(vals)));
      if (q.head.empty()) done = true;
      return;
    }
    const FoAtom& a = q.body[idx];
    const Relation& rel = db.GetRelation(a.relation);
    for (const Tuple& t : rel.tuples()) {
      if (t.arity() != a.terms.size()) continue;
      std::vector<VarId> bound;
      bool ok = true;
      for (size_t i = 0; i < a.terms.size(); ++i) {
        const FoTerm& term = a.terms[i];
        if (!term.is_var()) {
          if (term.constant != t[i]) {
            ok = false;
            break;
          }
        } else {
          auto it = env.find(term.var);
          if (it != env.end()) {
            if (it->second != t[i]) {
              ok = false;
              break;
            }
          } else {
            env[term.var] = t[i];
            bound.push_back(term.var);
          }
        }
      }
      if (ok) rec(idx + 1);
      for (VarId v : bound) env.erase(v);
      if (done) return;
    }
  };
  rec(0);
  return out;
}

Result<Relation> EvalUCQ(const UnionOfCQs& q, const Database& db) {
  INCDB_ASSIGN_OR_RETURN(size_t arity, q.HeadArity());
  Relation out(arity);
  for (const ConjunctiveQuery& cq : q.disjuncts) {
    INCDB_ASSIGN_OR_RETURN(Relation r, EvalCQ(cq, db));
    out.AddAll(r);
  }
  return out;
}

}  // namespace incdb
