// Conjunctive queries and the query/database duality (paper, Section 4).
//
// A CQ is ans(x̄) :- A_1, ..., A_m with body atoms over variables and
// constants. The *tableau* of a Boolean CQ is the naïve database whose nulls
// are the query's variables; conversely every naïve database is the tableau
// of its canonical Boolean CQ — equation (5): Mod_C(Q_D) = ⟦D⟧_owa.

#ifndef INCDB_LOGIC_CQ_H_
#define INCDB_LOGIC_CQ_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "logic/formula.h"
#include "util/status.h"

namespace incdb {

/// A conjunctive query: head variables (possibly repeated) + body atoms.
struct ConjunctiveQuery {
  /// Head terms (the answer tuple); variables must occur in the body.
  std::vector<FoTerm> head;
  /// Body atoms; conjunction, all non-head variables existential.
  std::vector<FoAtom> body;

  bool IsBoolean() const { return head.empty(); }

  /// All variables occurring in head or body, sorted.
  std::vector<VarId> Variables() const;

  /// ∃-positive formula equivalent (head variables free).
  FormulaPtr ToFormula() const;

  /// "ans(x0) :- R(x0, x1), S(x1)"
  std::string ToString() const;
};

/// A union of conjunctive queries; all members must share head arity.
struct UnionOfCQs {
  std::vector<ConjunctiveQuery> disjuncts;

  Result<size_t> HeadArity() const;
  std::string ToString() const;
};

/// The canonical Boolean CQ of a naïve database: one atom per tuple, nulls
/// as existential variables (duality direction D ↦ Q_D).
ConjunctiveQuery CanonicalCQ(const Database& d);

/// The tableau of a CQ: body atoms as a naïve database with variables read
/// as nulls (duality direction Q ↦ D_Q). Also returns, via `head_tuple`, the
/// head with variables replaced by the same nulls. Constants stay put.
Database TableauOf(const ConjunctiveQuery& q, Tuple* head_tuple = nullptr);

/// Evaluates a CQ on a database naïvely (nulls as values): all head-tuple
/// bindings of homomorphisms from the body into db.
Result<Relation> EvalCQ(const ConjunctiveQuery& q, const Database& db);

/// Evaluates a UCQ (union of the members' answers).
Result<Relation> EvalUCQ(const UnionOfCQs& q, const Database& db);

}  // namespace incdb

#endif  // INCDB_LOGIC_CQ_H_
