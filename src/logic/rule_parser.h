// Text syntax for conjunctive queries, UCQs, and tgds — the rule notation
// the paper itself uses ("Order(i, p) → Cust(x), Pref(x, p)").
//
//   CQ   :   ans(x, p) :- Order(x, p), Pay(y, x, z)
//   Bool :   :- Order(x, p)                     (empty head)
//   UCQ  :   cq1 ; cq2 ; ...
//   TGD  :   Order(i, p) -> Cust(x), Pref(x, p)
//
// Terms: bare identifiers are variables; integers and 'quoted' strings are
// constants. Relation names are the identifiers in atom position. Variable
// identifiers are scoped per rule.

#ifndef INCDB_LOGIC_RULE_PARSER_H_
#define INCDB_LOGIC_RULE_PARSER_H_

#include <string>

#include "exchange/mapping.h"
#include "logic/cq.h"

namespace incdb {

/// Parses "head :- body" (head optional for Boolean queries).
Result<ConjunctiveQuery> ParseCQ(const std::string& text);

/// Parses ';'-separated CQs into a UCQ.
Result<UnionOfCQs> ParseUCQ(const std::string& text);

/// Parses "body -> head".
Result<Tgd> ParseTgd(const std::string& text);

/// Parses one tgd per non-empty line into a mapping.
Result<SchemaMapping> ParseMapping(const std::string& text);

}  // namespace incdb

#endif  // INCDB_LOGIC_RULE_PARSER_H_
