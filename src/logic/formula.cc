#include "logic/formula.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace incdb {

bool FoTerm::operator==(const FoTerm& o) const {
  if (kind != o.kind) return false;
  return kind == Kind::kVar ? var == o.var : constant == o.constant;
}

std::string FoTerm::ToString() const {
  if (kind == Kind::kVar) return "x" + std::to_string(var);
  return constant.ToString();
}

std::string FoAtom::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(terms.size());
  for (const FoTerm& t : terms) parts.push_back(t.ToString());
  return relation + "(" + Join(parts, ", ") + ")";
}

namespace {

void CollectFreeVars(const Formula& f, std::set<VarId>* bound,
                     std::set<VarId>* free) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kAtom:
      for (const FoTerm& t : f.atom().terms) {
        if (t.is_var() && bound->count(t.var) == 0) free->insert(t.var);
      }
      return;
    case Formula::Kind::kEq:
      if (f.lhs().is_var() && bound->count(f.lhs().var) == 0) {
        free->insert(f.lhs().var);
      }
      if (f.rhs().is_var() && bound->count(f.rhs().var) == 0) {
        free->insert(f.rhs().var);
      }
      return;
    case Formula::Kind::kNot:
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      for (const FormulaPtr& c : f.children()) {
        CollectFreeVars(*c, bound, free);
      }
      return;
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      std::vector<VarId> added;
      for (VarId v : f.vars()) {
        if (bound->insert(v).second) added.push_back(v);
      }
      CollectFreeVars(*f.children()[0], bound, free);
      for (VarId v : added) bound->erase(v);
      return;
    }
    case Formula::Kind::kGuardedForall: {
      std::vector<VarId> added;
      for (const FoTerm& t : f.atom().terms) {
        if (t.is_var() && bound->insert(t.var).second) added.push_back(t.var);
      }
      CollectFreeVars(*f.children()[0], bound, free);
      for (VarId v : added) bound->erase(v);
      return;
    }
  }
}

}  // namespace

std::vector<VarId> Formula::FreeVars() const {
  std::set<VarId> bound;
  std::set<VarId> free;
  CollectFreeVars(*this, &bound, &free);
  return std::vector<VarId>(free.begin(), free.end());
}

std::string Formula::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return atom_.ToString();
    case Kind::kEq:
      return lhs_.ToString() + " = " + rhs_.ToString();
    case Kind::kNot:
      return "~(" + children_[0]->ToString() + ")";
    case Kind::kAnd:
      return "(" + children_[0]->ToString() + " & " +
             children_[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children_[0]->ToString() + " | " +
             children_[1]->ToString() + ")";
    case Kind::kExists: {
      std::vector<std::string> vs;
      for (VarId v : vars_) vs.push_back("x" + std::to_string(v));
      return "E " + Join(vs, ",") + ". " + children_[0]->ToString();
    }
    case Kind::kForall: {
      std::vector<std::string> vs;
      for (VarId v : vars_) vs.push_back("x" + std::to_string(v));
      return "A " + Join(vs, ",") + ". " + children_[0]->ToString();
    }
    case Kind::kGuardedForall:
      return "A " + atom_.ToString() + " -> " + children_[0]->ToString();
  }
  return "?";
}

bool Formula::IsExistentialPositive() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
    case Kind::kEq:
      return true;
    case Kind::kAnd:
    case Kind::kOr:
      return children_[0]->IsExistentialPositive() &&
             children_[1]->IsExistentialPositive();
    case Kind::kExists:
      return children_[0]->IsExistentialPositive();
    case Kind::kNot:
    case Kind::kForall:
    case Kind::kGuardedForall:
      return false;
  }
  return false;
}

bool Formula::IsPositiveFO() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
    case Kind::kEq:
      return true;
    case Kind::kAnd:
    case Kind::kOr:
      return children_[0]->IsPositiveFO() && children_[1]->IsPositiveFO();
    case Kind::kExists:
    case Kind::kForall:
      return children_[0]->IsPositiveFO();
    case Kind::kGuardedForall:
      // A guarded ∀ uses an implication whose antecedent is an atom; the
      // class Pos∀G extends positive FO, so this node is not *plain*
      // positive.
      return false;
    case Kind::kNot:
      return false;
  }
  return false;
}

bool Formula::IsPosForallG() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
    case Kind::kEq:
      return true;
    case Kind::kAnd:
    case Kind::kOr:
      return children_[0]->IsPosForallG() && children_[1]->IsPosForallG();
    case Kind::kExists:
    case Kind::kForall:
      return children_[0]->IsPosForallG();
    case Kind::kGuardedForall: {
      // Guard variables must be distinct.
      std::set<VarId> seen;
      for (const FoTerm& t : atom_.terms) {
        if (!t.is_var()) return false;
        if (!seen.insert(t.var).second) return false;
      }
      return children_[0]->IsPosForallG();
    }
    case Kind::kNot:
      return false;
  }
  return false;
}

FormulaPtr Formula::True() { return FormulaPtr(new Formula(Kind::kTrue)); }
FormulaPtr Formula::False() { return FormulaPtr(new Formula(Kind::kFalse)); }

FormulaPtr Formula::Atom(FoAtom a) {
  auto* f = new Formula(Kind::kAtom);
  f->atom_ = std::move(a);
  return FormulaPtr(f);
}

FormulaPtr Formula::Atom(std::string relation, std::vector<FoTerm> terms) {
  return Atom(FoAtom{std::move(relation), std::move(terms)});
}

FormulaPtr Formula::Eq(FoTerm l, FoTerm r) {
  auto* f = new Formula(Kind::kEq);
  f->lhs_ = std::move(l);
  f->rhs_ = std::move(r);
  return FormulaPtr(f);
}

FormulaPtr Formula::Not(FormulaPtr a) {
  auto* f = new Formula(Kind::kNot);
  f->children_ = {std::move(a)};
  return FormulaPtr(f);
}

FormulaPtr Formula::And(FormulaPtr a, FormulaPtr b) {
  auto* f = new Formula(Kind::kAnd);
  f->children_ = {std::move(a), std::move(b)};
  return FormulaPtr(f);
}

FormulaPtr Formula::Or(FormulaPtr a, FormulaPtr b) {
  auto* f = new Formula(Kind::kOr);
  f->children_ = {std::move(a), std::move(b)};
  return FormulaPtr(f);
}

FormulaPtr Formula::AndAll(std::vector<FormulaPtr> fs) {
  if (fs.empty()) return True();
  FormulaPtr acc = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) acc = And(acc, fs[i]);
  return acc;
}

FormulaPtr Formula::OrAll(std::vector<FormulaPtr> fs) {
  if (fs.empty()) return False();
  FormulaPtr acc = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) acc = Or(acc, fs[i]);
  return acc;
}

FormulaPtr Formula::Exists(std::vector<VarId> vars, FormulaPtr f) {
  if (vars.empty()) return f;
  auto* out = new Formula(Kind::kExists);
  out->vars_ = std::move(vars);
  out->children_ = {std::move(f)};
  return FormulaPtr(out);
}

FormulaPtr Formula::Forall(std::vector<VarId> vars, FormulaPtr f) {
  if (vars.empty()) return f;
  auto* out = new Formula(Kind::kForall);
  out->vars_ = std::move(vars);
  out->children_ = {std::move(f)};
  return FormulaPtr(out);
}

FormulaPtr Formula::GuardedForall(FoAtom guard, FormulaPtr f) {
  auto* out = new Formula(Kind::kGuardedForall);
  out->atom_ = std::move(guard);
  out->children_ = {std::move(f)};
  return FormulaPtr(out);
}

FormulaPtr Formula::Implies(FormulaPtr a, FormulaPtr b) {
  return Or(Not(std::move(a)), std::move(b));
}

}  // namespace incdb
