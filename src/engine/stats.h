// Per-operator evaluation instrumentation.
//
// Every evaluator (naïve RA, SQL, c-tables, the certain-answer drivers)
// accepts an optional EvalOptions whose `stats` pointer, when set, receives
// per-operator counters: invocations, tuples in/out, hash probes, and
// self wall time (the operator's own loop work, excluding its children).
// Counting is off by default and costs nothing when disabled.
//
// The probe counters are the observable evidence that the hash kernels do
// sub-quadratic work: a hash join reports one probe per build-side lookup
// instead of |L|·|R| pair inspections, and indexed division reports
// |heads|·|S| probes instead of |heads|·|S| scans of R.

#ifndef INCDB_ENGINE_STATS_H_
#define INCDB_ENGINE_STATS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace incdb {

/// Operators instrumented across the evaluators.
enum class EvalOp {
  kScan = 0,        ///< base-relation access (naïve RA)
  kSelect,          ///< σ (unfused)
  kProject,         ///< π
  kProduct,         ///< × (unfused — no usable equi-join key)
  kHashJoin,        ///< fused σ_{eq}(l × r) build/probe kernel
  kUnion,           ///< ∪
  kDiff,            ///< − (hash-indexed probe per left tuple)
  kIntersect,       ///< ∩ (hash-indexed probe per left tuple)
  kDivide,          ///< ÷ (group-by-head index)
  kDelta,           ///< Δ
  kSqlBlock,        ///< one SELECT block (FROM loop; probes = index probes)
  kCTableProduct,   ///< c-table ×
  kCTableDiff,      ///< c-table − (indexed by ground tuple)
  kCTableIntersect, ///< c-table ∩ (indexed by ground tuple)
  kCTableJoin,      ///< fused c-table σ_{eq}(l × r) build/probe kernel
  kCTableExtract,   ///< certain/possible extraction from a result c-table
};

inline constexpr size_t kNumEvalOps = 16;

/// Printable operator name ("hash-join", "divide", ...).
const char* EvalOpName(EvalOp op);

/// Counters for one operator.
struct OpCounters {
  uint64_t calls = 0;       ///< operator invocations
  uint64_t tuples_in = 0;   ///< input tuples consumed (sum over children)
  uint64_t tuples_out = 0;  ///< output tuples produced (pre-dedup)
  uint64_t probes = 0;      ///< hash-table lookups performed
  uint64_t nanos = 0;       ///< self wall time (children excluded)

  void Merge(const OpCounters& o) {
    calls += o.calls;
    tuples_in += o.tuples_in;
    tuples_out += o.tuples_out;
    probes += o.probes;
    nanos += o.nanos;
  }
};

/// Per-operator counters for one (or several merged) evaluations.
class EvalStats {
 public:
  OpCounters& at(EvalOp op) { return ops_[static_cast<size_t>(op)]; }
  const OpCounters& at(EvalOp op) const {
    return ops_[static_cast<size_t>(op)];
  }

  void Merge(const EvalStats& o) {
    for (size_t i = 0; i < kNumEvalOps; ++i) ops_[i].Merge(o.ops_[i]);
    cache_hits_ += o.cache_hits_;
    cache_misses_ += o.cache_misses_;
    delta_applied_ += o.delta_applied_;
    delta_fallbacks_ += o.delta_fallbacks_;
    cond_simplified_ += o.cond_simplified_;
    unsat_pruned_ += o.unsat_pruned_;
    worlds_counted_ += o.worlds_counted_;
    samples_drawn_ += o.samples_drawn_;
    exact_count_hits_ += o.exact_count_hits_;
    batches_processed_ += o.batches_processed_;
    rows_vectorized_ += o.rows_vectorized_;
  }
  void Reset() { *this = EvalStats(); }

  uint64_t TotalProbes() const;
  uint64_t TotalTuplesIn() const;
  uint64_t TotalTuplesOut() const;
  uint64_t TotalNanos() const;

  /// World-invariant subplan cache: results reused instead of re-evaluated
  /// (one hit per cached subplan per additional world) / distinct subplans
  /// evaluated and stored.
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  void CountCacheHits(uint64_t n) { cache_hits_ += n; }
  void CountCacheMisses(uint64_t n) { cache_misses_ += n; }

  /// Differential enumeration: worlds answered by applying one single-null
  /// delta instead of re-evaluating the plan / full re-evaluations the delta
  /// path fell back to (node-level recomputes, plus one per world for plans
  /// the delta evaluator rejects, e.g. those containing Δ). The split
  /// between the two depends on how the Gray chains were partitioned, so
  /// totals can differ across `num_threads` settings — answers never do.
  uint64_t delta_applied() const { return delta_applied_; }
  uint64_t delta_fallbacks() const { return delta_fallbacks_; }
  void CountDeltaApplied(uint64_t n) { delta_applied_ += n; }
  void CountDeltaFallbacks(uint64_t n) { delta_fallbacks_ += n; }

  /// Condition normalizer (c-table backend): conditions whose canonical
  /// form came out strictly smaller / conjunctions the union-find check
  /// proved unsatisfiable (rows or search branches pruned outright).
  uint64_t cond_simplified() const { return cond_simplified_; }
  uint64_t unsat_pruned() const { return unsat_pruned_; }
  void CountCondSimplified(uint64_t n) { cond_simplified_ += n; }
  void CountUnsatPruned(uint64_t n) { unsat_pruned_ += n; }

  /// Probabilistic answers (counting/): valuations the exact counter
  /// enumerated / Monte-Carlo samples the sampler drew / candidate tuples
  /// whose probability came from an exact count rather than sampling.
  uint64_t worlds_counted() const { return worlds_counted_; }
  uint64_t samples_drawn() const { return samples_drawn_; }
  uint64_t exact_count_hits() const { return exact_count_hits_; }
  void CountWorldsCounted(uint64_t n) { worlds_counted_ += n; }
  void CountSamplesDrawn(uint64_t n) { samples_drawn_ += n; }
  void CountExactCountHits(uint64_t n) { exact_count_hits_ += n; }

  /// Vectorized execution (engine/vectorized.h): column batches a kernel
  /// loop consumed / input rows those batches covered. Zero when the
  /// vectorize knob is off or every operator fell back to the row path.
  uint64_t batches_processed() const { return batches_processed_; }
  uint64_t rows_vectorized() const { return rows_vectorized_; }
  void CountBatchesProcessed(uint64_t n) { batches_processed_ += n; }
  void CountRowsVectorized(uint64_t n) { rows_vectorized_ += n; }

  /// Multi-line table of the operators with non-zero counters.
  std::string ToString() const;

 private:
  std::array<OpCounters, kNumEvalOps> ops_{};
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t delta_applied_ = 0;
  uint64_t delta_fallbacks_ = 0;
  uint64_t cond_simplified_ = 0;
  uint64_t unsat_pruned_ = 0;
  uint64_t worlds_counted_ = 0;
  uint64_t samples_drawn_ = 0;
  uint64_t exact_count_hits_ = 0;
  uint64_t batches_processed_ = 0;
  uint64_t rows_vectorized_ = 0;
};

/// Options threaded through every evaluator.
///
/// The tuning knobs (`use_hash_kernels`, `num_threads`,
/// `parallel_row_threshold`) never change answers — only how they are
/// computed. See docs/TUTORIAL.md §"Tuning" for the one-stop description.
struct EvalOptions {
  /// When non-null, per-operator counters are accumulated here. Parallel
  /// evaluators give each worker a private EvalStats and merge them into
  /// this sink before returning, so totals stay correct (wall-time counters
  /// then sum the workers' self times, i.e. report CPU time, not elapsed).
  EvalStats* stats = nullptr;
  /// When false, evaluators use their straightforward nested-loop
  /// implementations (the reference semantics the kernels are property-
  /// tested against).
  bool use_hash_kernels = true;
  /// Worker threads for the parallel paths (world enumeration, partitioned
  /// kernel probes). 0 = auto (hardware_concurrency); 1 runs everything on
  /// the calling thread, preserving the pre-parallel behavior exactly.
  /// Results are bit-identical at every setting.
  int num_threads = 0;
  /// Kernels only parallelize when the probe side has at least this many
  /// rows; below it, fan-out costs more than the scan. Tests lower it to
  /// force the parallel code paths onto small inputs.
  size_t parallel_row_threshold = 4096;
  /// Run the algebraic plan optimizer (selection/projection pushdown, σσ
  /// collapse, greedy join ordering) before evaluating RA plans. Semantics-
  /// and fragment-preserving: answers are bit-identical either way.
  bool optimize = true;
  /// In the enumeration drivers (CertainAnswersEnum / PossibleAnswersEnum),
  /// evaluate world-invariant subplans — subtrees whose scans are all
  /// null-free relations — once, and share the results (with their hash
  /// indexes) across all worlds and workers. Answers are bit-identical
  /// either way; `stats` reports hits/misses.
  bool cache_subplans = true;
  /// In the enumeration drivers, walk the world space in Gray-code order
  /// and re-evaluate plans differentially — each single-null step patches
  /// every operator's materialized output instead of recomputing it
  /// (engine/delta_eval.h). Plans the delta evaluator rejects (those
  /// containing Δ) fall back to per-world evaluation. Answers are
  /// bit-identical either way; `stats` reports delta_applied /
  /// delta_fallbacks.
  bool delta_eval = true;
  /// Evaluate RA plans batch-at-a-time over dictionary-encoded columns
  /// (core/columnar.h + engine/vectorized.h) instead of tuple-at-a-time:
  /// selections run as predicate-over-column loops producing selection
  /// vectors, projections as column slicing, equi-joins as batched hash
  /// build/probe over key columns, and union/intersect/diff as sorted-run
  /// merges. Only takes effect together with `use_hash_kernels` (with
  /// kernels off the evaluator is the nested-loop reference oracle).
  /// Composes with optimize / cache_subplans / delta_eval; answers are
  /// bit-identical either way. `stats` reports batches_processed /
  /// rows_vectorized.
  bool vectorize = true;
};

/// RAII scope that attributes wall time and counters to one operator.
/// All methods are no-ops when constructed with a null EvalStats.
class OpScope {
 public:
  OpScope(EvalStats* stats, EvalOp op) : stats_(stats), op_(op) {
    if (stats_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~OpScope() {
    if (stats_ == nullptr) return;
    OpCounters& c = stats_->at(op_);
    c.calls += 1;
    c.tuples_in += in_;
    c.tuples_out += out_;
    c.probes += probes_;
    c.nanos += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  void CountIn(uint64_t n) { in_ += n; }
  void CountOut(uint64_t n) { out_ += n; }
  void CountProbes(uint64_t n) { probes_ += n; }

 private:
  EvalStats* stats_;
  EvalOp op_;
  std::chrono::steady_clock::time_point start_;
  uint64_t in_ = 0;
  uint64_t out_ = 0;
  uint64_t probes_ = 0;
};

}  // namespace incdb

#endif  // INCDB_ENGINE_STATS_H_
