// World-invariant subplan caching for the enumeration drivers.
//
// Certain/possible-answer enumeration evaluates the same plan against every
// CWA world v(D). A valuation only changes tuples that contain nulls, so any
// subtree whose leaves are null-free — complete base relations and literal
// relations, but never Δ, whose active domain varies per world — evaluates
// to the same relation in every world. PrepareWorldInvariantPlan() finds the
// maximal such subtrees, evaluates each once against D, and splices the
// results back in as literal ConstRel nodes. Relation's copy-on-write
// storage means every world and every parallel worker then shares one
// canonical tuple vector, one hash index, and (for join/division shapes
// detected in the prepared plan) one pre-built column index — built on the
// driver thread so workers only ever read.
//
// Identical subtrees are detected by structural fingerprint stamped with
// each scanned relation's (name, version, size, completeness), verified
// structurally against hash collisions, and evaluated once. Drivers report
// one cache hit per spliced subplan per world evaluated through
// EvalStats::CountCacheHits, and one miss per unique evaluation.

#ifndef INCDB_ENGINE_SUBPLAN_CACHE_H_
#define INCDB_ENGINE_SUBPLAN_CACHE_H_

#include <cstddef>
#include <cstdint>

#include "algebra/ast.h"
#include "core/database.h"
#include "engine/stats.h"
#include "util/status.h"

namespace incdb {

/// Result of PrepareWorldInvariantPlan.
struct PreparedPlan {
  /// The plan with every maximal world-invariant subtree replaced by a
  /// ConstRel holding its (pre-indexed) one-time evaluation result.
  RAExprPtr plan;
  /// Spliced subplan results in `plan`; each one saves a subtree evaluation
  /// in every world, so drivers count this many cache hits per world.
  size_t cached_subplans = 0;
  /// Distinct invariant subtrees actually evaluated (cache misses).
  uint64_t unique_evals = 0;
  /// Structurally identical subtrees that reused an already-evaluated
  /// result during preparation.
  uint64_t prepare_hits = 0;
  /// True when the whole plan is world-invariant (the per-world loop then
  /// evaluates a single literal; drivers still enumerate so the world
  /// budget is enforced identically).
  bool whole_plan_invariant = false;
};

/// Rewrites `e` for repeated evaluation over the worlds of `db` as described
/// above. The rewrite never changes answers: each spliced literal is exactly
/// the subtree's value in every world of `db`. Ill-typed plans come back
/// unchanged (the evaluator reports the error). The one-time evaluations run
/// with `options` (their operator counters land in options.stats once, not
/// per world).
Result<PreparedPlan> PrepareWorldInvariantPlan(const RAExprPtr& e,
                                               const Database& db,
                                               const EvalOptions& options);

/// Forces the lazy state (canonical tuples, hash index, completeness memo)
/// of every ConstRel literal in `e` on the calling thread. Parallel drivers
/// call this before fanning out so workers only read literals — including
/// user-written ones that never went through the subplan cache.
void ForcePlanLiterals(const RAExprPtr& e);

}  // namespace incdb

#endif  // INCDB_ENGINE_SUBPLAN_CACHE_H_
