// QueryEngine: the single entry point for answering a query over an
// incomplete database.
//
// The library exposes many free functions — naïve/3VL/SQL evaluation,
// certain answers by rewriting or by world enumeration, possible answers —
// each with its own signature and applicability conditions. QueryEngine
// bundles them behind one call: a QueryRequest names the query (in any of
// four input forms), the *answer notion* wanted, and the world semantics;
// Run picks the right evaluator, classifies the query into the paper's
// fragments, and reports per-operator EvalStats alongside the answer. The
// free functions remain available; the engine is a facade, not a
// replacement.

#ifndef INCDB_ENGINE_QUERY_ENGINE_H_
#define INCDB_ENGINE_QUERY_ENGINE_H_

#include <optional>
#include <string>

#include "algebra/ast.h"
#include "algebra/classify.h"
#include "core/database.h"
#include "core/possible_worlds.h"
#include "engine/stats.h"
#include "sql/ast.h"

namespace incdb {

/// What "the answer" to a query over incomplete data means.
enum class AnswerNotion {
  kNaive = 0,      ///< naïve evaluation: marked nulls as ordinary values
  k3VL,            ///< SQL's three-valued logic (what a SQL engine returns)
  kMaybe,          ///< Codd's MAYBE: rows whose condition is UNKNOWN (SQL only)
  kCertainNaive,   ///< certain answers via naïve eval + null-row filtering,
                   ///< guarded by the paper's fragment check (see `force`)
  kCertainEnum,    ///< ground-truth certain answers by world enumeration
  kCertainObject,  ///< certainO(Q,D) = Q(D): the certain answer as an object
  kPossible,       ///< possible answers: union over CWA worlds
};

/// Printable notion name ("naive", "certain-naive", ...).
const char* AnswerNotionName(AnswerNotion n);

/// One query to answer. Exactly one of the four input fields must be set:
/// RA or SQL, as text to parse or as a pre-built AST.
struct QueryRequest {
  std::string ra_text;   ///< RA concrete syntax for algebra/parser.h
  std::string sql_text;  ///< SQL text for sql/parser.h
  RAExprPtr ra;          ///< pre-built RA expression
  SqlQueryPtr sql;       ///< pre-built SQL query

  AnswerNotion notion = AnswerNotion::kNaive;
  /// World semantics for the certain-answer notions.
  WorldSemantics semantics = WorldSemantics::kClosedWorld;
  /// Evaluate kCertainNaive outside its guaranteed fragment (the result then
  /// carries no certainty guarantee — useful for measuring the gap).
  bool force = false;
  /// Enumeration bounds for kCertainEnum / kPossible.
  WorldEnumOptions world_options;
  /// Stats hook and kernel toggles, threaded through every evaluator. For
  /// kCertainEnum / kPossible this includes `eval.delta_eval` (differential
  /// world enumeration; the response's stats then report delta_applied /
  /// delta_fallbacks alongside the subplan-cache counters).
  EvalOptions eval;
};

/// The answer plus what the engine learned about the query.
struct QueryResponse {
  Relation relation;
  /// Fragment of the RA form of the query (unset when the SQL query has no
  /// RA translation — e.g. aggregates or correlated subqueries).
  std::optional<QueryClass> fragment;
  /// Whether naïve evaluation computes certain answers for this query under
  /// the requested semantics (equation (4) of the paper).
  bool naive_guarantee = false;
  /// The RA form of the query as written/translated (null when the SQL
  /// query has no RA translation).
  RAExprPtr plan;
  /// The plan actually executed after the algebraic optimizer ran (null
  /// when the query ran through the SQL evaluator or `eval.optimize` was
  /// off). Equal answers are guaranteed; `explain` prints both.
  RAExprPtr optimized_plan;
  /// Per-operator counters for this run (always collected).
  EvalStats stats;
};

/// Facade over the evaluators. Holds a reference to the database; the
/// database must outlive the engine.
class QueryEngine {
 public:
  explicit QueryEngine(const Database& db) : db_(db) {}

  /// Answers one request. Errors: InvalidArgument for malformed requests
  /// (wrong input count, bad division arity, ...), kUnsupported when the
  /// requested notion is not defined or not guaranteed for the query (e.g.
  /// kCertainNaive outside the fragment without `force`, kMaybe on RA
  /// input), parse errors from the respective parsers.
  Result<QueryResponse> Run(const QueryRequest& request) const;

  const Database& db() const { return db_; }

 private:
  const Database& db_;
};

}  // namespace incdb

#endif  // INCDB_ENGINE_QUERY_ENGINE_H_
