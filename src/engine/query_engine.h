// QueryEngine: the single entry point for answering a query over an
// incomplete database.
//
// The library exposes many free functions — naïve/3VL/SQL evaluation,
// certain answers by rewriting, by world enumeration, or natively on
// c-tables, possible answers — each with its own signature and
// applicability conditions. QueryEngine bundles them behind one call: a
// QueryRequest names the query (a typed QueryInput: RA or SQL, text or
// AST), the *answer notion* wanted, the world semantics, and the *backend*
// that should compute the world-quantified notions; Run picks the right
// evaluator, classifies the query into the paper's fragments, and reports
// per-operator EvalStats alongside the answer. The free functions remain
// available; the engine is a facade, not a replacement.

#ifndef INCDB_ENGINE_QUERY_ENGINE_H_
#define INCDB_ENGINE_QUERY_ENGINE_H_

#include <optional>
#include <string>
#include <utility>

#include "algebra/ast.h"
#include "algebra/classify.h"
#include "core/database.h"
#include "core/possible_worlds.h"
#include "counting/probabilistic.h"
#include "engine/stats.h"
#include "sql/ast.h"

namespace incdb {

/// What "the answer" to a query over incomplete data means.
enum class AnswerNotion {
  kNaive = 0,      ///< naïve evaluation: marked nulls as ordinary values
  k3VL,            ///< SQL's three-valued logic (what a SQL engine returns)
  kMaybe,          ///< Codd's MAYBE: rows whose condition is UNKNOWN (SQL only)
  kCertainNaive,   ///< certain answers via naïve eval + null-row filtering,
                   ///< guarded by the paper's fragment check (see `force`)
  kCertainEnum,    ///< ground-truth certain answers by world enumeration
  kCertainObject,  ///< certainO(Q,D) = Q(D): the certain answer as an object
  kPossible,       ///< possible answers: union over CWA worlds
  kCertainWithProbability,  ///< tuples with answer probability ≥ threshold,
                            ///< with per-tuple probability/CI in the response
                            ///< (counting/probabilistic.h; CWA only)
};

/// Printable notion name ("naive", "certain-naive", ...).
const char* AnswerNotionName(AnswerNotion n);

/// How the world-quantified notions (kCertainEnum, kPossible) are computed.
/// Both backends return bit-identical answers; they differ in cost shape.
enum class Backend {
  /// Enumerate the finite world space and intersect/union per-world
  /// answers (with the subplan-cache / delta-eval accelerations).
  /// Exponential in the number of nulls.
  kEnumeration = 0,
  /// Evaluate once on the c-table representation and extract the answer
  /// from the result table's conditions (ctables/ctable_algebra.h). Never
  /// enumerates worlds; polynomial for the common case and the only way to
  /// answer databases whose world count exceeds any enumeration budget.
  kCTable,
};

/// Printable backend name ("enumeration", "ctable").
const char* BackendName(Backend b);

/// Typed query input: RA or SQL, as text to parse or as a pre-built AST.
/// Replaces the former four mutually-exclusive QueryRequest fields with one
/// value that is exactly one of the four forms (or empty).
class QueryInput {
 public:
  enum class Kind { kNone = 0, kRaText, kSqlText, kRa, kSql };

  QueryInput() = default;

  static QueryInput RaText(std::string text) {
    QueryInput in;
    in.kind_ = Kind::kRaText;
    in.text_ = std::move(text);
    return in;
  }
  static QueryInput SqlText(std::string text) {
    QueryInput in;
    in.kind_ = Kind::kSqlText;
    in.text_ = std::move(text);
    return in;
  }
  static QueryInput Ra(RAExprPtr e) {
    QueryInput in;
    in.kind_ = Kind::kRa;
    in.ra_ = std::move(e);
    return in;
  }
  static QueryInput Sql(SqlQueryPtr q) {
    QueryInput in;
    in.kind_ = Kind::kSql;
    in.sql_ = std::move(q);
    return in;
  }

  Kind kind() const { return kind_; }
  bool empty() const { return kind_ == Kind::kNone; }
  /// The text form (valid for kRaText / kSqlText).
  const std::string& text() const { return text_; }
  /// The pre-built RA expression (valid for kRa).
  const RAExprPtr& ra() const { return ra_; }
  /// The pre-built SQL query (valid for kSql).
  const SqlQueryPtr& sql() const { return sql_; }

 private:
  Kind kind_ = Kind::kNone;
  std::string text_;
  RAExprPtr ra_;
  SqlQueryPtr sql_;
};

/// One query to answer: a QueryInput plus the notion, semantics, backend,
/// and evaluation knobs.
struct QueryRequest {
  /// The query. Must be set unless one of the deprecated fields below is.
  QueryInput input;
  /// Backend for the world-quantified notions (kCertainEnum, kPossible,
  /// kCertainWithProbability); other notions ignore it. The kCTable backend
  /// supports exactly those notions (kUnsupported otherwise) and answers
  /// them bit-identically to kEnumeration (sampled probabilities included —
  /// both backends tally the same seeded valuation stream).
  Backend backend = Backend::kEnumeration;

  // Deprecated input fields, kept as a shim for one release: exactly one
  // of them may be set *instead of* `input` (setting both styles is an
  // error). Migrate to QueryInput::RaText / SqlText / Ra / Sql — see
  // docs/TUTORIAL.md §"The query engine".
  std::string ra_text;   ///< \deprecated use QueryInput::RaText
  std::string sql_text;  ///< \deprecated use QueryInput::SqlText
  RAExprPtr ra;          ///< \deprecated use QueryInput::Ra
  SqlQueryPtr sql;       ///< \deprecated use QueryInput::Sql

  AnswerNotion notion = AnswerNotion::kNaive;
  /// World semantics for the certain-answer notions.
  WorldSemantics semantics = WorldSemantics::kClosedWorld;
  /// Evaluate kCertainNaive outside its guaranteed fragment (the result then
  /// carries no certainty guarantee — useful for measuring the gap).
  bool force = false;
  /// Enumeration bounds for kCertainEnum / kPossible. The kCTable backend
  /// reuses `world_options.max_worlds` as its satisfiability branch budget
  /// and the same world domain, which is what keeps answers bit-identical.
  WorldEnumOptions world_options;
  /// Stats hook and kernel toggles, threaded through every evaluator. For
  /// kCertainEnum / kPossible this includes `eval.delta_eval` (differential
  /// world enumeration; the response's stats then report delta_applied /
  /// delta_fallbacks alongside the subplan-cache counters).
  EvalOptions eval;
  /// Knobs for kCertainWithProbability: the answer threshold, the sampling
  /// seed/sample-count/z/threads, the exact-path gate. Other notions ignore
  /// it.
  ProbabilisticOptions probability;
};

/// Fluent construction of QueryRequests:
///
///   QueryRequestBuilder(QueryInput::SqlText("SELECT ..."))
///       .Notion(AnswerNotion::kCertainEnum)
///       .OnBackend(Backend::kCTable)
///       .Build()
class QueryRequestBuilder {
 public:
  explicit QueryRequestBuilder(QueryInput input) {
    req_.input = std::move(input);
  }

  QueryRequestBuilder& Notion(AnswerNotion n) {
    req_.notion = n;
    return *this;
  }
  QueryRequestBuilder& Semantics(WorldSemantics s) {
    req_.semantics = s;
    return *this;
  }
  QueryRequestBuilder& OnBackend(Backend b) {
    req_.backend = b;
    return *this;
  }
  QueryRequestBuilder& Force(bool force = true) {
    req_.force = force;
    return *this;
  }
  QueryRequestBuilder& Worlds(WorldEnumOptions opts) {
    req_.world_options = std::move(opts);
    return *this;
  }
  QueryRequestBuilder& Eval(EvalOptions opts) {
    req_.eval = opts;
    return *this;
  }
  QueryRequestBuilder& Probability(ProbabilisticOptions opts) {
    req_.probability = std::move(opts);
    return *this;
  }

  QueryRequest Build() const { return req_; }

 private:
  QueryRequest req_;
};

/// The answer plus what the engine learned about the query.
struct QueryResponse {
  Relation relation;
  /// Fragment of the RA form of the query (unset when the SQL query has no
  /// RA translation — e.g. aggregates or correlated subqueries).
  std::optional<QueryClass> fragment;
  /// Whether naïve evaluation computes certain answers for this query under
  /// the requested semantics (equation (4) of the paper).
  bool naive_guarantee = false;
  /// The RA form of the query as written/translated (null when the SQL
  /// query has no RA translation).
  RAExprPtr plan;
  /// The plan actually executed after the algebraic optimizer ran (null
  /// when the query ran through the SQL evaluator or `eval.optimize` was
  /// off). Equal answers are guaranteed; `explain` prints both.
  RAExprPtr optimized_plan;
  /// Per-operator counters for this run (always collected).
  EvalStats stats;
  /// Backend that produced the relation (echoes the request for the
  /// world-quantified notions; kEnumeration for everything else).
  Backend backend = Backend::kEnumeration;
  /// Condition-normalizer work on the kCTable backend (0 on kEnumeration):
  /// conditions simplified and conjunctions pruned as unsatisfiable.
  /// Mirrors stats.cond_simplified() / stats.unsat_pruned().
  uint64_t cond_simplified = 0;
  uint64_t unsat_pruned = 0;
  /// kCertainWithProbability only: the full probability table — every tuple
  /// with non-zero observed probability, in canonical tuple order, with its
  /// probability, Wilson CI bounds, and whether the value is an exact count
  /// or a Monte-Carlo estimate. `relation` is this table filtered by the
  /// requested threshold.
  std::vector<TupleProbability> probabilities;
  /// Probabilistic-layer work (0 for other notions): valuations counted
  /// exactly, Monte-Carlo samples drawn, tuples answered by exact counts.
  /// Mirror stats.worlds_counted() / samples_drawn() / exact_count_hits().
  uint64_t worlds_counted = 0;
  uint64_t samples_drawn = 0;
  uint64_t exact_count_hits = 0;
};

/// Facade over the evaluators. Holds a reference to the database; the
/// database must outlive the engine.
class QueryEngine {
 public:
  explicit QueryEngine(const Database& db) : db_(db) {}

  /// Answers one request. Errors: InvalidArgument for malformed requests
  /// (no input, both input styles, bad division arity, ...), kUnsupported
  /// when the requested notion is not defined or not guaranteed for the
  /// query (e.g. kCertainNaive outside the fragment without `force`,
  /// kMaybe on RA input, kCTable backend with a non-world-quantified
  /// notion), parse errors from the respective parsers.
  Result<QueryResponse> Run(const QueryRequest& request) const;

  const Database& db() const { return db_; }

 private:
  const Database& db_;
};

}  // namespace incdb

#endif  // INCDB_ENGINE_QUERY_ENGINE_H_
