// Differential evaluator implementation. The operator rules are documented
// in delta_eval.h; the representation here is one Node per plan operator,
// stored in postorder, each holding its counted output plus whatever state
// its delta rule probes (scan provenance, join key mirrors, division
// counters). σ-over-× (and π over either) is fused into one join node via
// SplitForEquiJoin, mirroring the full kernels' peephole, so products never
// pay per-pair work on a step.

#include "engine/delta_eval.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/predicate.h"
#include "core/relation.h"
#include "core/tuple.h"
#include "core/value.h"
#include "engine/kernels.h"
#include "util/status.h"

namespace incdb {

namespace {

/// Output tuple -> derivation count. Entries are erased when they reach
/// zero, so the key set IS the output set.
using Counts = std::unordered_map<Tuple, int64_t, TupleHash>;

/// Join-side mirror: HashColumns(key cols) -> tuples of one child's current
/// set (buckets hold distinct tuples; hash collisions resolved by
/// ColumnsEqual at probe time).
using Mirror = std::unordered_map<size_t, std::vector<Tuple>>;

/// Inserts (+) or removes (−) one tuple from a mirror bucket.
void MirrorApply(Mirror& m, size_t key, const Tuple& t, int sign) {
  std::vector<Tuple>& bucket = m[key];
  if (sign > 0) {
    bucket.push_back(t);
    return;
  }
  auto it = std::find(bucket.begin(), bucket.end(), t);
  if (it != bucket.end()) {
    std::swap(*it, bucket.back());
    bucket.pop_back();
  }
  if (bucket.empty()) m.erase(key);
}

}  // namespace

struct DeltaEvaluator::Node {
  enum class Kind {
    kScan,
    kConst,
    kSelect,
    kProject,
    kJoin,  // ×, with any directly enclosing σ / π fused in
    kUnion,
    kDiff,
    kIntersect,
    kDivide,
  };

  Kind kind;
  size_t arity = 0;
  Node* left = nullptr;
  Node* right = nullptr;
  // Keeps the source operator's predicate / literal alive.
  RAExprPtr expr;
  // Nulls occurring in this subtree's base relations: a step whose null is
  // not here cannot change the output, so the node is skipped wholesale.
  std::set<NullId> nulls;
  Counts counts;
  // Set-level transitions of the last step: one entry per tuple, +1
  // inserted / -1 removed.
  std::vector<std::pair<Tuple, int>> delta;

  // kScan / kConst: the base relation and (scans only) the null ->
  // supporting-row index into base->tuples().
  const Relation* base = nullptr;
  std::unordered_map<NullId, std::vector<uint32_t>> provenance;

  // kSelect.
  const Predicate* filter = nullptr;

  // kJoin: equi-join key columns (parallel lists, left relative to the left
  // child, right relative to the right child), the residual filter on the
  // concatenated tuple, the fused projection, and the two key-indexed
  // mirrors of the children's current sets.
  std::vector<size_t> left_key_cols, right_key_cols;
  PredicatePtr residual;
  bool has_projection = false;
  std::vector<size_t> projection;
  Mirror left_by_key, right_by_key;

  // kProject: projection columns. kDivide: head columns (cols) and divisor
  // columns (cols2) of the left input.
  std::vector<size_t> cols, cols2;

  // kDivide: head -> #left rows with that head / #divisor rows it matches.
  // Membership: head_count > 0 and match_count == |divisor|.
  Counts head_count, match_count;

  EvalOp op() const {
    switch (kind) {
      case Kind::kScan:
      case Kind::kConst:
        return EvalOp::kScan;
      case Kind::kSelect:
        return EvalOp::kSelect;
      case Kind::kProject:
        return EvalOp::kProject;
      case Kind::kJoin:
        return left_key_cols.empty() ? EvalOp::kProduct : EvalOp::kHashJoin;
      case Kind::kUnion:
        return EvalOp::kUnion;
      case Kind::kDiff:
        return EvalOp::kDiff;
      case Kind::kIntersect:
        return EvalOp::kIntersect;
      case Kind::kDivide:
        return EvalOp::kDivide;
    }
    return EvalOp::kScan;
  }

  bool In(const Tuple& t) const { return counts.find(t) != counts.end(); }

  /// Joins one (l, r) pair into `out` with the given sign, applying the
  /// residual filter and the fused projection.
  void EmitJoin(const Tuple& l, const Tuple& r, int64_t sign,
                Counts& out) const {
    Tuple joined = l.Concat(r);
    if (residual != nullptr && !residual->EvalNaive(joined)) return;
    if (has_projection) {
      out[joined.Project(projection)] += sign;
    } else {
      out[std::move(joined)] += sign;
    }
  }

  /// Folds derivation-count adjustments into `counts` and appends the
  /// resulting set-level transitions (zero crossings) to `delta`.
  void ApplyAdjustments(Counts& adj) {
    for (auto& kv : adj) {
      if (kv.second == 0) continue;
      auto it = counts.find(kv.first);
      const int64_t before = it == counts.end() ? 0 : it->second;
      const int64_t after = before + kv.second;
      if (after == 0) {
        if (it != counts.end()) counts.erase(it);
      } else if (it == counts.end()) {
        counts.emplace(kv.first, after);
      } else {
        it->second = after;
      }
      if (before <= 0 && after > 0) {
        delta.emplace_back(kv.first, +1);
      } else if (before > 0 && after <= 0) {
        delta.emplace_back(kv.first, -1);
      }
    }
  }
};

DeltaEvaluator::DeltaEvaluator() = default;
DeltaEvaluator::~DeltaEvaluator() = default;

Status DeltaEvaluator::Build(const RAExprPtr& plan, const Database& db,
                             const EvalOptions& options) {
  db_ = &db;
  options_ = options;
  postorder_.clear();
  initialized_ = false;
  added_.clear();
  removed_.clear();
  deltas_applied_ = 0;
  node_fallbacks_ = 0;
  INCDB_ASSIGN_OR_RETURN(Node * root, Compile(plan));
  (void)root;
  return Status::OK();
}

Result<DeltaEvaluator::Node*> DeltaEvaluator::Compile(const RAExprPtr& e) {
  using K = RAExpr::Kind;
  if (e->kind() == K::kDelta) {
    return Status::Unsupported(
        "delta evaluation: plan contains Δ, whose value is the world's "
        "active domain — a single-null step cannot patch it");
  }
  INCDB_ASSIGN_OR_RETURN(const size_t arity, e->InferArity(db_->schema()));

  // Detect the fusable join shapes π(σ(×)), σ(×), π(×), and bare ×.
  PredicatePtr sel;
  const std::vector<size_t>* proj = nullptr;
  const RAExpr* prod = nullptr;
  if (e->kind() == K::kProject && e->left()->kind() == K::kSelect &&
      e->left()->left()->kind() == K::kProduct) {
    proj = &e->columns();
    sel = e->left()->predicate();
    prod = e->left()->left().get();
  } else if (e->kind() == K::kProject && e->left()->kind() == K::kProduct) {
    proj = &e->columns();
    prod = e->left().get();
  } else if (e->kind() == K::kSelect && e->left()->kind() == K::kProduct) {
    sel = e->predicate();
    prod = e->left().get();
  } else if (e->kind() == K::kProduct) {
    prod = e.get();
  }

  auto node = std::make_unique<Node>();
  Node* n = node.get();
  n->arity = arity;
  n->expr = e;

  if (prod != nullptr) {
    n->kind = Node::Kind::kJoin;
    INCDB_ASSIGN_OR_RETURN(n->left, Compile(prod->left()));
    INCDB_ASSIGN_OR_RETURN(n->right, Compile(prod->right()));
    n->nulls = n->left->nulls;
    n->nulls.insert(n->right->nulls.begin(), n->right->nulls.end());
    if (sel != nullptr) {
      JoinSplit split = SplitForEquiJoin(sel, n->left->arity);
      for (const JoinKey& k : split.keys) {
        n->left_key_cols.push_back(k.left_col);
        n->right_key_cols.push_back(k.right_col);
      }
      n->residual = std::move(split.residual);
    }
    if (proj != nullptr) {
      n->has_projection = true;
      n->projection = *proj;
    }
    postorder_.push_back(std::move(node));
    return n;
  }

  switch (e->kind()) {
    case K::kScan: {
      n->kind = Node::Kind::kScan;
      n->base = &db_->GetRelation(e->relation_name());
      n->nulls = n->base->Nulls();
      const std::vector<Tuple>& rows = n->base->tuples();
      for (uint32_t i = 0; i < rows.size(); ++i) {
        for (const Value& v : rows[i].values()) {
          if (!v.is_null()) continue;
          std::vector<uint32_t>& rows_of = n->provenance[v.null_id()];
          if (rows_of.empty() || rows_of.back() != i) rows_of.push_back(i);
        }
      }
      break;
    }
    case K::kConstRel: {
      // Valuations never apply to literals (the subplan cache splices
      // world-invariant results here), so nulls stays empty and the node
      // never steps — matching the full evaluators, which use literals
      // as-is in every world.
      n->kind = Node::Kind::kConst;
      n->base = &e->literal();
      break;
    }
    case K::kSelect: {
      n->kind = Node::Kind::kSelect;
      n->filter = e->predicate().get();
      INCDB_ASSIGN_OR_RETURN(n->left, Compile(e->left()));
      n->nulls = n->left->nulls;
      break;
    }
    case K::kProject: {
      n->kind = Node::Kind::kProject;
      n->cols = e->columns();
      INCDB_ASSIGN_OR_RETURN(n->left, Compile(e->left()));
      n->nulls = n->left->nulls;
      break;
    }
    case K::kUnion:
    case K::kDiff:
    case K::kIntersect:
    case K::kDivide: {
      n->kind = e->kind() == K::kUnion        ? Node::Kind::kUnion
                : e->kind() == K::kDiff       ? Node::Kind::kDiff
                : e->kind() == K::kIntersect ? Node::Kind::kIntersect
                                             : Node::Kind::kDivide;
      INCDB_ASSIGN_OR_RETURN(n->left, Compile(e->left()));
      INCDB_ASSIGN_OR_RETURN(n->right, Compile(e->right()));
      n->nulls = n->left->nulls;
      n->nulls.insert(n->right->nulls.begin(), n->right->nulls.end());
      if (n->kind == Node::Kind::kDivide) {
        for (size_t c = 0; c < n->arity; ++c) n->cols.push_back(c);
        for (size_t c = n->arity; c < n->left->arity; ++c)
          n->cols2.push_back(c);
      }
      break;
    }
    case K::kProduct:
    case K::kDelta:
      return Status::Internal("delta evaluation: unreachable plan kind");
  }
  postorder_.push_back(std::move(node));
  return n;
}

Status DeltaEvaluator::Init(Node& n) {
  OpScope scope(options_.stats, n.op());
  n.counts.clear();
  switch (n.kind) {
    case Node::Kind::kScan: {
      scope.CountIn(n.base->tuples().size());
      for (const Tuple& t : n.base->tuples()) n.counts[cur_.Apply(t)] += 1;
      break;
    }
    case Node::Kind::kConst: {
      scope.CountIn(n.base->tuples().size());
      for (const Tuple& t : n.base->tuples()) n.counts[t] += 1;
      break;
    }
    case Node::Kind::kSelect: {
      scope.CountIn(n.left->counts.size());
      for (const auto& kv : n.left->counts) {
        if (n.filter->EvalNaive(kv.first)) n.counts.emplace(kv.first, 1);
      }
      break;
    }
    case Node::Kind::kProject: {
      scope.CountIn(n.left->counts.size());
      for (const auto& kv : n.left->counts) {
        n.counts[kv.first.Project(n.cols)] += 1;
      }
      break;
    }
    case Node::Kind::kJoin: {
      scope.CountIn(n.left->counts.size() + n.right->counts.size());
      n.left_by_key.clear();
      n.right_by_key.clear();
      for (const auto& kv : n.left->counts) {
        n.left_by_key[HashColumns(kv.first, n.left_key_cols)].push_back(
            kv.first);
      }
      for (const auto& kv : n.right->counts) {
        n.right_by_key[HashColumns(kv.first, n.right_key_cols)].push_back(
            kv.first);
      }
      for (const auto& kv : n.left->counts) {
        scope.CountProbes(1);
        auto it = n.right_by_key.find(HashColumns(kv.first, n.left_key_cols));
        if (it == n.right_by_key.end()) continue;
        for (const Tuple& r : it->second) {
          if (!ColumnsEqual(kv.first, n.left_key_cols, r, n.right_key_cols)) {
            continue;
          }
          n.EmitJoin(kv.first, r, +1, n.counts);
        }
      }
      // EmitJoin adds signed counts; drop residual-rejected zero entries.
      for (auto it = n.counts.begin(); it != n.counts.end();) {
        it = it->second == 0 ? n.counts.erase(it) : std::next(it);
      }
      break;
    }
    case Node::Kind::kUnion: {
      scope.CountIn(n.left->counts.size() + n.right->counts.size());
      for (const auto& kv : n.left->counts) n.counts[kv.first] += 1;
      for (const auto& kv : n.right->counts) n.counts[kv.first] += 1;
      break;
    }
    case Node::Kind::kDiff: {
      scope.CountIn(n.left->counts.size() + n.right->counts.size());
      for (const auto& kv : n.left->counts) {
        scope.CountProbes(1);
        if (!n.right->In(kv.first)) n.counts.emplace(kv.first, 1);
      }
      break;
    }
    case Node::Kind::kIntersect: {
      scope.CountIn(n.left->counts.size() + n.right->counts.size());
      for (const auto& kv : n.left->counts) {
        scope.CountProbes(1);
        if (n.right->In(kv.first)) n.counts.emplace(kv.first, 1);
      }
      break;
    }
    case Node::Kind::kDivide: {
      scope.CountIn(n.left->counts.size() + n.right->counts.size());
      n.head_count.clear();
      n.match_count.clear();
      const size_t s_size = n.right->counts.size();
      for (const auto& kv : n.left->counts) {
        scope.CountProbes(1);
        Tuple head = kv.first.Project(n.cols);
        if (n.right->In(kv.first.Project(n.cols2))) n.match_count[head] += 1;
        n.head_count[std::move(head)] += 1;
      }
      for (const auto& kv : n.head_count) {
        auto it = n.match_count.find(kv.first);
        const int64_t m = it == n.match_count.end() ? 0 : it->second;
        if (static_cast<uint64_t>(m) == s_size) n.counts.emplace(kv.first, 1);
      }
      break;
    }
  }
  scope.CountOut(n.counts.size());
  return Status::OK();
}

Status DeltaEvaluator::Initialize(const Valuation& v) {
  if (postorder_.empty()) return Status::Internal("Initialize before Build");
  cur_ = v;
  added_.clear();
  removed_.clear();
  for (auto& n : postorder_) {
    n->delta.clear();
    INCDB_RETURN_IF_ERROR(Init(*n));
  }
  initialized_ = true;
  return Status::OK();
}

Status DeltaEvaluator::Step(Node& n, const ValuationDelta& delta) {
  OpScope scope(options_.stats, n.op());
  if (n.left != nullptr) scope.CountIn(n.left->delta.size());
  if (n.right != nullptr) scope.CountIn(n.right->delta.size());
  Counts adj;
  switch (n.kind) {
    case Node::Kind::kConst:
      return Status::OK();  // unreachable: nulls is empty
    case Node::Kind::kScan: {
      auto it = n.provenance.find(delta.null_id);
      if (it == n.provenance.end()) return Status::OK();
      scope.CountIn(it->second.size());
      const std::vector<Tuple>& rows = n.base->tuples();
      for (uint32_t idx : it->second) {
        const Tuple& bt = rows[idx];
        // Retract the row's previous instance: the flipped null maps to its
        // old value, every other value through the (already updated)
        // current valuation, which agrees with the previous one elsewhere.
        std::vector<Value> old_vals;
        old_vals.reserve(bt.arity());
        for (const Value& v : bt.values()) {
          if (v.is_null() && v.null_id() == delta.null_id) {
            old_vals.push_back(delta.old_value);
          } else {
            old_vals.push_back(cur_.Apply(v));
          }
        }
        adj[Tuple(std::move(old_vals))] -= 1;
        adj[cur_.Apply(bt)] += 1;
      }
      break;
    }
    case Node::Kind::kSelect: {
      for (const auto& kv : n.left->delta) {
        if (n.filter->EvalNaive(kv.first)) adj[kv.first] += kv.second;
      }
      break;
    }
    case Node::Kind::kProject: {
      for (const auto& kv : n.left->delta) {
        adj[kv.first.Project(n.cols)] += kv.second;
      }
      break;
    }
    case Node::Kind::kJoin: {
      if (n.left->delta.size() + n.right->delta.size() >
          n.left->counts.size() + n.right->counts.size()) {
        return Recompute(n);
      }
      // Δ(L ⋈ R) = ΔL ⋈ R_old  +  L_new ⋈ ΔR: probe the right mirror
      // before folding ΔR into it, and fold ΔL into the left mirror before
      // probing it.
      for (const auto& kv : n.left->delta) {
        scope.CountProbes(1);
        auto it = n.right_by_key.find(HashColumns(kv.first, n.left_key_cols));
        if (it == n.right_by_key.end()) continue;
        for (const Tuple& r : it->second) {
          if (!ColumnsEqual(kv.first, n.left_key_cols, r, n.right_key_cols)) {
            continue;
          }
          n.EmitJoin(kv.first, r, kv.second, adj);
        }
      }
      for (const auto& kv : n.left->delta) {
        MirrorApply(n.left_by_key, HashColumns(kv.first, n.left_key_cols),
                    kv.first, kv.second);
      }
      for (const auto& kv : n.right->delta) {
        scope.CountProbes(1);
        auto it = n.left_by_key.find(HashColumns(kv.first, n.right_key_cols));
        if (it != n.left_by_key.end()) {
          for (const Tuple& l : it->second) {
            if (!ColumnsEqual(l, n.left_key_cols, kv.first,
                              n.right_key_cols)) {
              continue;
            }
            n.EmitJoin(l, kv.first, kv.second, adj);
          }
        }
        MirrorApply(n.right_by_key, HashColumns(kv.first, n.right_key_cols),
                    kv.first, kv.second);
      }
      break;
    }
    case Node::Kind::kUnion: {
      for (const auto& kv : n.left->delta) adj[kv.first] += kv.second;
      for (const auto& kv : n.right->delta) adj[kv.first] += kv.second;
      break;
    }
    case Node::Kind::kDiff:
    case Node::Kind::kIntersect: {
      // A child transition's sign encodes the tuple's old membership there
      // (+1 ⇒ was absent, −1 ⇒ was present); membership of unflipped
      // tuples is the same before and after.
      std::unordered_map<Tuple, int, TupleHash> lflip, rflip;
      for (const auto& kv : n.left->delta) lflip[kv.first] = kv.second;
      for (const auto& kv : n.right->delta) rflip[kv.first] = kv.second;
      const bool is_diff = n.kind == Node::Kind::kDiff;
      auto visit = [&](const Tuple& t) {
        auto lf = lflip.find(t);
        auto rf = rflip.find(t);
        const bool l_new = n.left->In(t);
        const bool r_new = n.right->In(t);
        const bool l_old = lf == lflip.end() ? l_new : lf->second < 0;
        const bool r_old = rf == rflip.end() ? r_new : rf->second < 0;
        const bool was = l_old && (is_diff ? !r_old : r_old);
        const bool now = l_new && (is_diff ? !r_new : r_new);
        if (was != now) adj[t] += now ? 1 : -1;
      };
      for (const auto& kv : lflip) {
        scope.CountProbes(1);
        visit(kv.first);
      }
      for (const auto& kv : rflip) {
        if (lflip.find(kv.first) != lflip.end()) continue;
        scope.CountProbes(1);
        visit(kv.first);
      }
      break;
    }
    case Node::Kind::kDivide: {
      // A changed divisor moves the match target for every head at once —
      // recompute rather than re-probing all heads.
      if (!n.right->delta.empty()) return Recompute(n);
      if (n.left->delta.size() > n.left->counts.size()) return Recompute(n);
      const size_t s_size = n.right->counts.size();
      Counts head_adj, match_adj;
      for (const auto& kv : n.left->delta) {
        scope.CountProbes(1);
        Tuple head = kv.first.Project(n.cols);
        if (n.right->In(kv.first.Project(n.cols2))) {
          match_adj[head] += kv.second;
        }
        head_adj[std::move(head)] += kv.second;
      }
      for (const auto& kv : head_adj) {
        const Tuple& head = kv.first;
        auto hit = n.head_count.find(head);
        auto mit = n.match_count.find(head);
        const int64_t h_old = hit == n.head_count.end() ? 0 : hit->second;
        const int64_t m_old = mit == n.match_count.end() ? 0 : mit->second;
        const int64_t h_new = h_old + kv.second;
        auto ma = match_adj.find(head);
        const int64_t m_new =
            m_old + (ma == match_adj.end() ? 0 : ma->second);
        if (h_new == 0) {
          if (hit != n.head_count.end()) n.head_count.erase(hit);
        } else if (hit == n.head_count.end()) {
          n.head_count.emplace(head, h_new);
        } else {
          hit->second = h_new;
        }
        if (m_new == 0) {
          if (mit != n.match_count.end()) n.match_count.erase(mit);
        } else if (mit == n.match_count.end()) {
          n.match_count.emplace(head, m_new);
        } else {
          mit->second = m_new;
        }
        const bool was = h_old > 0 && static_cast<uint64_t>(m_old) == s_size;
        const bool now = h_new > 0 && static_cast<uint64_t>(m_new) == s_size;
        if (was != now) adj[head] += now ? 1 : -1;
      }
      break;
    }
  }
  n.ApplyAdjustments(adj);
  scope.CountOut(n.delta.size());
  return Status::OK();
}

Status DeltaEvaluator::Recompute(Node& n) {
  ++node_fallbacks_;
  Counts old = std::move(n.counts);
  INCDB_RETURN_IF_ERROR(Init(n));
  for (const auto& kv : n.counts) {
    if (old.find(kv.first) == old.end()) n.delta.emplace_back(kv.first, +1);
  }
  for (const auto& kv : old) {
    if (n.counts.find(kv.first) == n.counts.end()) {
      n.delta.emplace_back(kv.first, -1);
    }
  }
  return Status::OK();
}

Status DeltaEvaluator::ApplyDelta(const ValuationDelta& delta) {
  if (!initialized_) return Status::Internal("ApplyDelta before Initialize");
  if (!delta.has_delta) {
    return Status::Internal("ApplyDelta requires a single-null delta");
  }
  added_.clear();
  removed_.clear();
  cur_.Bind(delta.null_id, delta.new_value);
  for (auto& n : postorder_) {
    n->delta.clear();
    if (n->nulls.find(delta.null_id) == n->nulls.end()) continue;
    INCDB_RETURN_IF_ERROR(Step(*n, delta));
  }
  for (const auto& kv : postorder_.back()->delta) {
    (kv.second > 0 ? added_ : removed_).push_back(kv.first);
  }
  ++deltas_applied_;
  return Status::OK();
}

Relation DeltaEvaluator::Output() const {
  if (postorder_.empty()) return Relation(0);
  const Node* root = postorder_.back().get();
  std::vector<Tuple> out;
  out.reserve(root->counts.size());
  for (const auto& kv : root->counts) out.push_back(kv.first);
  return Relation(root->arity, std::move(out));
}

bool DeltaEvaluator::Contains(const Tuple& t) const {
  return !postorder_.empty() && postorder_.back()->In(t);
}

}  // namespace incdb
