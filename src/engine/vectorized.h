// Batch-vectorized plan execution over dictionary-encoded columns.
//
// EvalVectorized is a drop-in alternative to the tuple-at-a-time tree
// walker in algebra/eval.cc: it evaluates the same (optimized) RA plans
// with the same naïve semantics — marked nulls are ordinary values, all
// comparisons use the total Value order — but batch-at-a-time over the
// ColumnarRelation form (core/columnar.h):
//
//   * selection runs as predicate-over-column loops producing selection
//     vectors (per-batch byte masks folded into kept-row lists); constants
//     are rank-resolved against the dictionary once, so the inner loops
//     compare 32-bit codes only;
//   * projection is column slicing plus a code-level sort/unique compact;
//   * σ-over-× with cross-boundary equalities fuses into a batched hash
//     equi-join: build/probe over key-code columns, candidate verification
//     and residual predicates evaluated on codes, the π fused into the
//     emit (mirroring the row kernel's plan shapes exactly);
//   * union / intersection / difference run as merge walks over sorted
//     code runs (rows are kept in canonical lexicographic order end to
//     end, so every binary operator sees two sorted inputs);
//   * division reuses the counting scheme of HashDivide over code rows.
//
// Cross-dictionary operators first merge the two sorted dictionaries and
// remap codes through the order-preserving translations of MergeDicts, so
// code comparisons stay valid across inputs. Intermediates never decode to
// Values; the final result is materialized to a canonical Relation, which
// is why the path is bit-identical to the row evaluator on every plan —
// the differential oracle and the vectorized property test machine-check
// that. Selected via EvalOptions::vectorize (plus use_hash_kernels); the
// nested-loop reference evaluator is untouched and remains the oracle.
//
// Large probe/filter loops chunk through util/thread_pool.h's ParallelFor
// above EvalOptions::parallel_row_threshold with per-chunk outputs merged
// in chunk order, so results are bit-identical at every thread count (and
// nested calls inside the enumeration drivers' workers run inline).

#ifndef INCDB_ENGINE_VECTORIZED_H_
#define INCDB_ENGINE_VECTORIZED_H_

#include "algebra/ast.h"
#include "core/database.h"
#include "engine/stats.h"
#include "util/status.h"

namespace incdb {

/// True when `options` select the vectorized path: the vectorize knob is
/// on and hash kernels are enabled (with kernels off the evaluator is the
/// nested-loop reference oracle and must stay tuple-at-a-time).
inline bool UseVectorizedEval(const EvalOptions& options) {
  return options.vectorize && options.use_hash_kernels;
}

/// Evaluates `e` against `db` batch-at-a-time over columnar storage.
/// Answers are bit-identical to the row-oriented EvalNaive; EvalOptions
/// stats receive the usual per-operator counters plus batches_processed /
/// rows_vectorized. Called by EvalNaive when UseVectorizedEval(options).
Result<Relation> EvalVectorized(const RAExprPtr& e, const Database& db,
                                const EvalOptions& options);

}  // namespace incdb

#endif  // INCDB_ENGINE_VECTORIZED_H_
