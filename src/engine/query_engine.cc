#include "engine/query_engine.h"

#include <utility>

#include "algebra/certain.h"
#include "algebra/eval.h"
#include "algebra/eval_3vl.h"
#include "algebra/optimize.h"
#include "algebra/parser.h"
#include "ctables/ctable_algebra.h"
#include "sql/eval.h"
#include "sql/parser.h"
#include "sql/rewrite.h"
#include "sql/to_algebra.h"

namespace incdb {
namespace {

// Lifts the deprecated four-field input style into a QueryInput, enforcing
// the exactly-one rule across both styles.
Result<QueryInput> ResolveInput(const QueryRequest& request) {
  const int legacy = (request.ra_text.empty() ? 0 : 1) +
                     (request.sql_text.empty() ? 0 : 1) +
                     (request.ra != nullptr ? 1 : 0) +
                     (request.sql != nullptr ? 1 : 0);
  if (!request.input.empty()) {
    if (legacy != 0) {
      return Status::InvalidArgument(
          "QueryRequest carries both the typed `input` and a deprecated "
          "input field; set exactly one");
    }
    return request.input;
  }
  if (legacy != 1) {
    return Status::InvalidArgument(
        "QueryRequest must carry exactly one input (QueryInput, or one of "
        "the deprecated ra_text/sql_text/ra/sql fields); got " +
        std::to_string(legacy));
  }
  if (!request.ra_text.empty()) return QueryInput::RaText(request.ra_text);
  if (!request.sql_text.empty()) return QueryInput::SqlText(request.sql_text);
  if (request.ra != nullptr) return QueryInput::Ra(request.ra);
  return QueryInput::Sql(request.sql);
}

}  // namespace

const char* AnswerNotionName(AnswerNotion n) {
  switch (n) {
    case AnswerNotion::kNaive:
      return "naive";
    case AnswerNotion::k3VL:
      return "3vl";
    case AnswerNotion::kMaybe:
      return "maybe";
    case AnswerNotion::kCertainNaive:
      return "certain-naive";
    case AnswerNotion::kCertainEnum:
      return "certain-enum";
    case AnswerNotion::kCertainObject:
      return "certain-object";
    case AnswerNotion::kPossible:
      return "possible";
    case AnswerNotion::kCertainWithProbability:
      return "certain-probability";
  }
  return "?";
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kEnumeration:
      return "enumeration";
    case Backend::kCTable:
      return "ctable";
  }
  return "?";
}

Result<QueryResponse> QueryEngine::Run(const QueryRequest& request) const {
  INCDB_ASSIGN_OR_RETURN(const QueryInput input, ResolveInput(request));

  QueryResponse resp;
  // Collect stats locally so the response always carries them; a caller-
  // provided sink receives a merged copy at the end.
  EvalOptions opts = request.eval;
  opts.stats = &resp.stats;

  RAExprPtr ra;
  SqlQuery parsed_sql;
  const SqlQuery* sql = nullptr;
  switch (input.kind()) {
    case QueryInput::Kind::kRa:
      ra = input.ra();
      break;
    case QueryInput::Kind::kSql:
      sql = input.sql().get();
      break;
    case QueryInput::Kind::kRaText: {
      INCDB_ASSIGN_OR_RETURN(ra, ParseRA(input.text()));
      break;
    }
    case QueryInput::Kind::kSqlText: {
      INCDB_ASSIGN_OR_RETURN(parsed_sql, ParseSql(input.text()));
      sql = &parsed_sql;
      break;
    }
    case QueryInput::Kind::kNone:
      return Status::Internal("ResolveInput admitted an empty input");
  }

  // Classify via the RA form; for SQL input, through the (partial) RA
  // translation when the query falls in its fragment.
  RAExprPtr ra_view = ra;
  if (ra_view == nullptr && sql != nullptr) {
    auto translated = SqlToAlgebra(*sql, db_.schema());
    if (translated.ok()) ra_view = *std::move(translated);
  }
  if (ra_view != nullptr) {
    resp.fragment = Classify(ra_view);
    resp.naive_guarantee = NaiveEvaluationWorks(ra_view, request.semantics);
    resp.plan = ra_view;
  }

  const bool world_quantified =
      request.notion == AnswerNotion::kCertainEnum ||
      request.notion == AnswerNotion::kPossible ||
      request.notion == AnswerNotion::kCertainWithProbability;
  if (world_quantified) resp.backend = request.backend;

  auto finish = [&](Result<Relation> r) -> Result<QueryResponse> {
    INCDB_ASSIGN_OR_RETURN(resp.relation, std::move(r));
    resp.cond_simplified = resp.stats.cond_simplified();
    resp.unsat_pruned = resp.stats.unsat_pruned();
    resp.worlds_counted = resp.stats.worlds_counted();
    resp.samples_drawn = resp.stats.samples_drawn();
    resp.exact_count_hits = resp.stats.exact_count_hits();
    if (request.eval.stats != nullptr) request.eval.stats->Merge(resp.stats);
    return resp;
  };

  if (request.backend == Backend::kCTable && !world_quantified) {
    return Status::Unsupported(
        std::string("the ctable backend computes certain-enum, possible, and "
                    "certain-probability answers; notion ") +
        AnswerNotionName(request.notion) + " runs on the enumeration backend");
  }

  if (sql != nullptr) {
    switch (request.notion) {
      case AnswerNotion::kNaive:
        return finish(EvalSql(*sql, db_, SqlEvalMode::kNaive, opts));
      case AnswerNotion::k3VL:
        return finish(EvalSql(*sql, db_, SqlEvalMode::kSql3VL, opts));
      case AnswerNotion::kMaybe:
        return finish(EvalSql(*sql, db_, SqlEvalMode::kSqlMaybe, opts));
      case AnswerNotion::kCertainNaive:
        return finish(EvalSqlCertain(*sql, db_, request.force, opts));
      case AnswerNotion::kCertainObject:
        // certainO(Q, D) = Q(D) naïvely, nulls retained (eq. (9)).
        return finish(EvalSql(*sql, db_, SqlEvalMode::kNaive, opts));
      case AnswerNotion::kCertainEnum:
      case AnswerNotion::kPossible:
      case AnswerNotion::kCertainWithProbability:
        // Both backends run on the RA translation; surface its error if the
        // query has none.
        if (ra_view == nullptr) {
          INCDB_ASSIGN_OR_RETURN(ra_view, SqlToAlgebra(*sql, db_.schema()));
        }
        ra = ra_view;
        break;
    }
  }

  // Optimize RA plans once here; the drivers (enumeration and c-table
  // alike) see `optimize = false` so they don't re-run the rewriter. The
  // optimized plan answers bit-identically (and classifies identically —
  // checked by Optimize), so the fragment/guarantee fields above still
  // describe it.
  if (ra != nullptr && opts.optimize) {
    resp.optimized_plan = Optimize(ra, db_);
    ra = resp.optimized_plan;
    opts.optimize = false;
  }

  if (request.backend == Backend::kCTable) {
    switch (request.notion) {
      case AnswerNotion::kCertainEnum:
        return finish(CertainAnswersCTable(ra, db_, request.semantics,
                                           request.world_options, opts));
      case AnswerNotion::kPossible:
        return finish(
            PossibleAnswersCTable(ra, db_, request.world_options, opts));
      case AnswerNotion::kCertainWithProbability:
        return finish(CertainAnswersWithProbabilityCTable(
            ra, db_, request.semantics, request.probability,
            request.world_options, opts, &resp.probabilities));
      default:
        return Status::Internal("non-world-quantified notion reached the "
                                "ctable backend dispatch");
    }
  }

  switch (request.notion) {
    case AnswerNotion::kNaive:
      return finish(EvalNaive(ra, db_, opts));
    case AnswerNotion::k3VL:
      return finish(Eval3VL(ra, db_));
    case AnswerNotion::kMaybe:
      return Status::Unsupported(
          "maybe answers (Codd's MAYBE operator) are defined on SQL queries; "
          "provide a QueryInput::Sql or SqlText input");
    case AnswerNotion::kCertainNaive:
      return finish(CertainAnswersNaive(ra, db_, request.semantics,
                                        request.force, opts));
    case AnswerNotion::kCertainEnum:
      return finish(CertainAnswersEnum(ra, db_, request.semantics,
                                       request.world_options, opts));
    case AnswerNotion::kCertainObject:
      return finish(CertainObjectNaive(ra, db_, opts));
    case AnswerNotion::kPossible:
      return finish(PossibleAnswersEnum(ra, db_, request.world_options, opts));
    case AnswerNotion::kCertainWithProbability:
      return finish(CertainAnswersWithProbabilityEnum(
          ra, db_, request.semantics, request.probability,
          request.world_options, opts, &resp.probabilities));
  }
  return Status::Internal("unknown answer notion");
}

}  // namespace incdb
