// Differential cross-world evaluation (the delta-eval layer).
//
// The enumeration drivers visit |domain|^#nulls worlds; with the Gray-code
// drivers (core/possible_worlds.h) consecutive worlds differ in exactly one
// null's binding. DeltaEvaluator exploits that: every plan node materializes
// its output once — as a map from output tuple to its *derivation count*
// (how many ways the node's inputs produce it), so the output set is exactly
// the keys — and each scan keeps a provenance index from NullId to the base
// rows containing that null. When a null flips, only the affected base rows
// are retracted/re-inserted, and the resulting set-level transitions (tuples
// whose count crosses zero) are propagated up through σ / π / × / ∪ / ∩ /
// − / ÷ by per-operator delta rules that probe the same hash structures the
// full kernels use:
//
//   scan   retract v_old(t) / insert v_new(t) for the provenance rows only
//   σ, π   filter / project the child's transitions
//   ×      compiled as a hash join (σ-over-× and π-over-σ-over-× fuse):
//          Δ(L ⋈ R) = ΔL ⋈ R_old + L_new ⋈ ΔR, probed against key-indexed
//          mirrors of the child sets
//   ∪      counts are additive ([t ∈ L] + [t ∈ R])
//   ∩, −   membership recomputation for the affected tuples only (the old
//          membership is derived by un-flipping the child transitions)
//   ÷      per-head derivation and divisor-match counters; a changing
//          divisor falls back to recomputing the node
//
// When a step's delta would cost more than recomputing a node from its
// children (or a rule does not apply, e.g. ÷ with a changed divisor), the
// node is recomputed in full and the old/new outputs are diffed — counted in
// `node_fallbacks()`. Plans containing Δ (the diagonal over the world's
// active domain, which a single-null step cannot patch) are rejected at
// Build time; the drivers then evaluate those plans per world as before.
//
// World-invariant subtrees spliced by the subplan cache arrive as ConstRel
// literals; valuations never apply to literals, so those nodes never produce
// deltas and the differential work is confined to the world-varying
// remainder of the plan — the two layers compose.
//
// Thread-compatibility: one DeltaEvaluator is single-threaded state. The
// parallel drivers build one per worker; Build/Initialize only read the
// (pre-forced) database relations and plan literals.

#ifndef INCDB_ENGINE_DELTA_EVAL_H_
#define INCDB_ENGINE_DELTA_EVAL_H_

#include <memory>
#include <vector>

#include "algebra/ast.h"
#include "core/database.h"
#include "core/possible_worlds.h"
#include "core/valuation.h"
#include "engine/stats.h"

namespace incdb {

/// Differential evaluator for one plan over one incomplete database across a
/// Gray chain of worlds. Usage: Build once, Initialize on the chain's first
/// valuation, ApplyDelta per single-null step; Output()/added()/removed()
/// expose the root relation and its per-step transitions.
class DeltaEvaluator {
 public:
  DeltaEvaluator();
  ~DeltaEvaluator();
  DeltaEvaluator(const DeltaEvaluator&) = delete;
  DeltaEvaluator& operator=(const DeltaEvaluator&) = delete;

  /// Compiles `plan` against `db` into a tree of differential operator
  /// states (no evaluation yet). Returns Unsupported for plans containing Δ.
  /// `db` and the plan's literals must outlive the evaluator.
  /// `options.stats`, when set, receives per-operator counters for the
  /// initialization and for every applied delta.
  Status Build(const RAExprPtr& plan, const Database& db,
               const EvalOptions& options);

  /// Fully evaluates the plan in the world `v`(D) — the first world of a
  /// Gray chain — materializing every node's counted output, the scans'
  /// null → supporting-rows provenance indexes, and the join key mirrors.
  /// May be called again to restart on a different chain.
  Status Initialize(const Valuation& v);

  /// Applies one single-null step: `delta` must be the Gray driver's
  /// transition from the previously evaluated world. Root-level set
  /// transitions are exposed via added()/removed() until the next call.
  Status ApplyDelta(const ValuationDelta& delta);

  /// The root output of the last Initialize/ApplyDelta as a canonical
  /// Relation (materialized on call — use added()/removed() on the hot
  /// path).
  Relation Output() const;

  /// Membership in the current root output (expected O(1)).
  bool Contains(const Tuple& t) const;

  /// Root-level transitions of the last ApplyDelta (empty after
  /// Initialize).
  const std::vector<Tuple>& added() const { return added_; }
  const std::vector<Tuple>& removed() const { return removed_; }

  /// Worlds answered by applying a single-null delta (i.e. ApplyDelta
  /// calls that completed differentially).
  uint64_t deltas_applied() const { return deltas_applied_; }
  /// Node-level full recomputations forced where the delta rule did not
  /// apply or would have cost more than re-deriving the node.
  uint64_t node_fallbacks() const { return node_fallbacks_; }

 private:
  struct Node;

  Result<Node*> Compile(const RAExprPtr& e);
  Status Init(Node& n);
  Status Step(Node& n, const ValuationDelta& delta);
  Status Recompute(Node& n);

  const Database* db_ = nullptr;
  EvalOptions options_;
  Valuation cur_;
  bool initialized_ = false;
  // Nodes in postorder (children before parents); the root is the last.
  std::vector<std::unique_ptr<Node>> postorder_;
  std::vector<Tuple> added_;
  std::vector<Tuple> removed_;
  uint64_t deltas_applied_ = 0;
  uint64_t node_fallbacks_ = 0;
};

}  // namespace incdb

#endif  // INCDB_ENGINE_DELTA_EVAL_H_
