#include "engine/subplan_cache.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/eval.h"
#include "algebra/optimize.h"
#include "engine/kernels.h"

namespace incdb {
namespace {

// Forces a relation's lazily-built shared state on the calling thread so
// parallel workers only read it.
void ForceRelation(const Relation& r) {
  r.tuples();
  r.HashIndex();
  r.IsComplete();
  r.Columnar();
}

uint64_t MixStamp(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

struct Preparer {
  const Database& db;
  const EvalOptions& options;
  PreparedPlan* out;

  // Per-node invariance memo (trees share subtrees via shared_ptr).
  std::unordered_map<const RAExpr*, bool> invariant_memo;
  // Stamped fingerprint → (structural signature, spliced node); the
  // signature guards against fingerprint collisions.
  std::unordered_map<uint64_t,
                     std::vector<std::pair<std::string, RAExprPtr>>>
      memo;

  // True when `e` evaluates identically in every world of db: all leaves
  // are null-free relations and Δ (whose value is the world's active
  // domain) does not occur.
  bool Invariant(const RAExprPtr& e) {
    auto it = invariant_memo.find(e.get());
    if (it != invariant_memo.end()) return it->second;
    bool inv = true;
    switch (e->kind()) {
      case RAExpr::Kind::kConstRel:
        // Valuations apply to the database, never to plan literals, so a
        // literal (even one containing nulls) is the same in every world.
        inv = true;
        break;
      case RAExpr::Kind::kScan:
        inv = db.GetRelation(e->relation_name()).IsComplete();
        break;
      case RAExpr::Kind::kDelta:
        inv = false;
        break;
      default:
        if (e->left() != nullptr && !Invariant(e->left())) inv = false;
        if (inv && e->right() != nullptr && !Invariant(e->right())) {
          inv = false;
        }
        break;
    }
    invariant_memo.emplace(e.get(), inv);
    return inv;
  }

  // Structural fingerprint stamped with the identity of every base relation
  // the subtree reads, so a reused cache never outlives a mutation.
  uint64_t StampKey(const RAExprPtr& e) {
    uint64_t h = RAFingerprint(e);
    return Stamp(e, h);
  }

  uint64_t Stamp(const RAExprPtr& e, uint64_t h) {
    if (e->kind() == RAExpr::Kind::kScan) {
      const Relation& r = db.GetRelation(e->relation_name());
      for (char c : e->relation_name()) {
        h = MixStamp(h, static_cast<unsigned char>(c));
      }
      h = MixStamp(h, r.version());
      h = MixStamp(h, r.size());
      h = MixStamp(h, r.IsComplete() ? 1 : 0);
      return h;
    }
    if (e->left() != nullptr) h = Stamp(e->left(), h);
    if (e->right() != nullptr) h = Stamp(e->right(), h);
    return h;
  }

  // Evaluates the invariant subtree once (memoized) and returns the literal
  // node carrying the shared result.
  Result<RAExprPtr> Materialize(const RAExprPtr& e) {
    const uint64_t key = StampKey(e);
    std::string sig = e->ToString();
    auto& bucket = memo[key];
    for (const auto& [stored_sig, node] : bucket) {
      if (stored_sig == sig) {
        ++out->prepare_hits;
        ++out->cached_subplans;
        return node;
      }
    }
    INCDB_ASSIGN_OR_RETURN(Relation r, EvalNaive(e, db, options));
    ForceRelation(r);
    RAExprPtr node = RAExpr::ConstRel(std::move(r));
    ++out->unique_evals;
    ++out->cached_subplans;
    bucket.emplace_back(std::move(sig), node);
    return node;
  }

  Result<RAExprPtr> Rewrite(const RAExprPtr& e) {
    if (Invariant(e)) {
      if (e->kind() == RAExpr::Kind::kConstRel) {
        // Already a literal: splicing would change nothing, but force its
        // lazy state so workers can read it.
        ForceRelation(e->literal());
        return e;
      }
      return Materialize(e);
    }
    switch (e->kind()) {
      case RAExpr::Kind::kSelect: {
        INCDB_ASSIGN_OR_RETURN(RAExprPtr c, Rewrite(e->left()));
        return c == e->left() ? e : RAExpr::Select(e->predicate(), c);
      }
      case RAExpr::Kind::kProject: {
        INCDB_ASSIGN_OR_RETURN(RAExprPtr c, Rewrite(e->left()));
        return c == e->left() ? e : RAExpr::Project(e->columns(), c);
      }
      case RAExpr::Kind::kProduct:
      case RAExpr::Kind::kUnion:
      case RAExpr::Kind::kDiff:
      case RAExpr::Kind::kIntersect:
      case RAExpr::Kind::kDivide: {
        INCDB_ASSIGN_OR_RETURN(RAExprPtr l, Rewrite(e->left()));
        INCDB_ASSIGN_OR_RETURN(RAExprPtr r, Rewrite(e->right()));
        if (l == e->left() && r == e->right()) return e;
        switch (e->kind()) {
          case RAExpr::Kind::kProduct:
            return RAExpr::Product(l, r);
          case RAExpr::Kind::kUnion:
            return RAExpr::Union(l, r);
          case RAExpr::Kind::kDiff:
            return RAExpr::Diff(l, r);
          case RAExpr::Kind::kIntersect:
            return RAExpr::Intersect(l, r);
          default:
            return RAExpr::Divide(l, r);
        }
      }
      default:
        return e;  // kScan / kDelta / kConstRel, not invariant here
    }
  }

  // Walks the prepared plan and pre-builds, on the driver thread, the
  // column indexes the kernels will probe: the equi-join keys of a σ over a
  // product with a literal build side, and the full-width index of a
  // literal divisor. Workers then find them via FindColumnIndex and skip
  // their per-world build phases.
  void PrebuildIndexes(const RAExprPtr& e) {
    if (e->kind() == RAExpr::Kind::kSelect &&
        e->left()->kind() == RAExpr::Kind::kProduct &&
        e->left()->right()->kind() == RAExpr::Kind::kConstRel &&
        options.use_hash_kernels) {
      const RAExprPtr& l = e->left()->left();
      const RAExprPtr& r = e->left()->right();
      auto la = l->InferArity(db.schema());
      if (la.ok()) {
        JoinSplit split = SplitForEquiJoin(e->predicate(), *la);
        if (!split.keys.empty()) {
          std::vector<size_t> r_cols;
          r_cols.reserve(split.keys.size());
          for (const JoinKey& k : split.keys) r_cols.push_back(k.right_col);
          r->literal().BuildColumnIndex(r_cols);
        }
      }
    }
    if (e->kind() == RAExpr::Kind::kDivide &&
        e->right()->kind() == RAExpr::Kind::kConstRel &&
        options.use_hash_kernels) {
      const Relation& s = e->right()->literal();
      std::vector<size_t> s_cols(s.arity());
      for (size_t i = 0; i < s.arity(); ++i) s_cols[i] = i;
      s.BuildColumnIndex(s_cols);
    }
    if (e->left() != nullptr) PrebuildIndexes(e->left());
    if (e->right() != nullptr) PrebuildIndexes(e->right());
  }
};

}  // namespace

Result<PreparedPlan> PrepareWorldInvariantPlan(const RAExprPtr& e,
                                               const Database& db,
                                               const EvalOptions& options) {
  PreparedPlan prepared;
  prepared.plan = e;
  if (e == nullptr || !e->InferArity(db.schema()).ok()) {
    return prepared;  // the evaluator reports the typing error
  }
  Preparer prep{db, options, &prepared};
  prepared.whole_plan_invariant = prep.Invariant(e);
  INCDB_ASSIGN_OR_RETURN(prepared.plan, prep.Rewrite(e));
  prep.PrebuildIndexes(prepared.plan);
  if (options.stats != nullptr) {
    options.stats->CountCacheMisses(prepared.unique_evals);
    options.stats->CountCacheHits(prepared.prepare_hits);
  }
  return prepared;
}

void ForcePlanLiterals(const RAExprPtr& e) {
  if (e == nullptr) return;
  if (e->kind() == RAExpr::Kind::kConstRel) ForceRelation(e->literal());
  if (e->left() != nullptr) ForcePlanLiterals(e->left());
  if (e->right() != nullptr) ForcePlanLiterals(e->right());
}

}  // namespace incdb
