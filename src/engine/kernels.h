// Hash-indexed evaluation kernels over core relations.
//
// These are the sub-quadratic operator implementations behind the naïve RA
// evaluator (and, via Relation::HashIndex, the SQL layer): a build/probe
// equi-join that replaces materializing σ_{col=col}(l × r), indexed set
// difference/intersection, and a group-by-head division kernel. Each kernel
// reports its probe counts through the optional EvalStats hook so callers
// can confirm the work done is proportional to input + matches, not to the
// cross product.
//
// Above `EvalOptions::parallel_row_threshold` probe-side rows (and with
// `num_threads` resolving above 1) the join and set-op kernels switch to a
// partitioned parallel plan: the build side is hash-partitioned and indexed
// by parallel workers, the probe side is split into contiguous chunks probed
// concurrently, and per-chunk outputs are merged in chunk order into the
// canonical Relation — so results are bit-identical to the serial plan at
// every thread count.
//
// Semantics are naïve throughout: marked nulls are ordinary values and join
// syntactically (⊥_3 matches ⊥_3 only). Every kernel is property-tested
// against the straightforward nested-loop reference implementation, and the
// parallel plans against the serial ones.

#ifndef INCDB_ENGINE_KERNELS_H_
#define INCDB_ENGINE_KERNELS_H_

#include <vector>

#include "algebra/predicate.h"
#include "core/relation.h"
#include "engine/stats.h"
#include "util/status.h"

namespace incdb {

/// One equi-join column pair: left column of the (virtual) concatenated
/// tuple and right column *relative to the right relation*.
struct JoinKey {
  size_t left_col;
  size_t right_col;
};

/// Partition of a selection predicate over a product whose left input has
/// arity `left_arity`: cross-boundary column equalities become join keys,
/// everything else is re-ANDed into the residual (null when empty).
struct JoinSplit {
  std::vector<JoinKey> keys;
  PredicatePtr residual;
};

/// Splits the top-level AND-conjuncts of `pred` for the equi-join kernel.
/// Shared by the evaluators' σ-over-× peephole, the plan optimizer, and the
/// subplan cache (which pre-builds the matching column index).
JoinSplit SplitForEquiJoin(const PredicatePtr& pred, size_t left_arity);

/// Build/probe hash equi-join: all tuples a ++ b with a ∈ l, b ∈ r,
/// a[k.left_col] == b[k.right_col] for every key (syntactic equality —
/// nulls are values), and `residual` (may be null: no further filter)
/// holding on a ++ b. When `projection` is non-null the output tuple is
/// (a ++ b).Project(*projection) — the π is fused into the emit and the
/// concatenation is never materialized for non-matching pairs.
///
/// Not thread-safe on shared mutable relations (canonicalizes l and r
/// lazily); distinct calls on distinct data may run concurrently. Expected
/// cost O(|r| + |l| + matches), divided by the worker count on the
/// partitioned parallel plan; probes counted = |l|.
Relation HashJoin(const Relation& l, const Relation& r,
                  const std::vector<JoinKey>& keys, const Predicate* residual,
                  const std::vector<size_t>* projection,
                  const EvalOptions& options = {});

/// l − r with O(1) membership probes against r's hash index. Thread-safety
/// and parallel plan as HashJoin; expected cost O(|l| + |r|).
Relation HashDiff(const Relation& l, const Relation& r,
                  const EvalOptions& options = {});

/// l ∩ r with O(1) membership probes against r's hash index. Thread-safety
/// and parallel plan as HashJoin; expected cost O(|l| + |r|).
Relation HashIntersect(const Relation& l, const Relation& r,
                       const EvalOptions& options = {});

/// r ÷ s by counting: the canonical (sorted) tuple order keeps each head's
/// tuples contiguous, so one pass over r probes each tuple's tail against a
/// hash index of the (deduplicated) divisor and a head divides s iff its
/// run matched |s| tails. Validates the division arity constraint
/// 0 < arity(s) < arity(r) instead of aborting. Always serial (the single
/// pass is already memory-bound); not thread-safe on shared mutable
/// relations.
///
/// Expected cost O(|r| + |s|); probes counted = |r|.
Result<Relation> HashDivide(const Relation& r, const Relation& s,
                            const EvalOptions& options = {});

}  // namespace incdb

#endif  // INCDB_ENGINE_KERNELS_H_
