// Hash-indexed evaluation kernels over core relations.
//
// These are the sub-quadratic operator implementations behind the naïve RA
// evaluator (and, via Relation::HashIndex, the SQL layer): a build/probe
// equi-join that replaces materializing σ_{col=col}(l × r), indexed set
// difference/intersection, and a group-by-head division kernel. Each kernel
// reports its probe counts through the optional EvalStats hook so callers
// can confirm the work done is proportional to input + matches, not to the
// cross product.
//
// Semantics are naïve throughout: marked nulls are ordinary values and join
// syntactically (⊥_3 matches ⊥_3 only). Every kernel is property-tested
// against the straightforward nested-loop reference implementation.

#ifndef INCDB_ENGINE_KERNELS_H_
#define INCDB_ENGINE_KERNELS_H_

#include <vector>

#include "algebra/predicate.h"
#include "core/relation.h"
#include "engine/stats.h"
#include "util/status.h"

namespace incdb {

/// One equi-join column pair: left column of the (virtual) concatenated
/// tuple and right column *relative to the right relation*.
struct JoinKey {
  size_t left_col;
  size_t right_col;
};

/// Build/probe hash equi-join: all tuples a ++ b with a ∈ l, b ∈ r,
/// a[k.left_col] == b[k.right_col] for every key (syntactic equality —
/// nulls are values), and `residual` (may be null: no further filter)
/// holding on a ++ b. When `projection` is non-null the output tuple is
/// (a ++ b).Project(*projection) — the π is fused into the emit and the
/// concatenation is never materialized for non-matching pairs.
///
/// Expected cost O(|r| + |l| + matches); probes counted = |l|.
Relation HashJoin(const Relation& l, const Relation& r,
                  const std::vector<JoinKey>& keys, const Predicate* residual,
                  const std::vector<size_t>* projection,
                  EvalStats* stats = nullptr);

/// l − r with O(1) membership probes against r's hash index.
Relation HashDiff(const Relation& l, const Relation& r,
                  EvalStats* stats = nullptr);

/// l ∩ r with O(1) membership probes against r's hash index.
Relation HashIntersect(const Relation& l, const Relation& r,
                       EvalStats* stats = nullptr);

/// r ÷ s by counting: the canonical (sorted) tuple order keeps each head's
/// tuples contiguous, so one pass over r probes each tuple's tail against a
/// hash index of the (deduplicated) divisor and a head divides s iff its
/// run matched |s| tails. Validates the division arity constraint
/// 0 < arity(s) < arity(r) instead of aborting.
///
/// Expected cost O(|r| + |s|); probes counted = |r|.
Result<Relation> HashDivide(const Relation& r, const Relation& s,
                            EvalStats* stats = nullptr);

}  // namespace incdb

#endif  // INCDB_ENGINE_KERNELS_H_
