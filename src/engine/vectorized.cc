#include "engine/vectorized.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/columnar.h"
#include "engine/kernels.h"
#include "util/thread_pool.h"

namespace incdb {
namespace {

// Rows a kernel loop consumes per batch (mask evaluation, probe chunking).
constexpr size_t kVecBatchRows = 2048;

// One in-flight columnar intermediate. Rows are always canonical: sorted
// lexicographically by code (== by value, the dictionary being sorted) and
// deduplicated. Either borrows the cached ColumnarRelation of a base/literal
// relation (`pin` keeps it alive, `source` exposes its cached column
// indexes) or owns its column vectors.
struct VecTable {
  size_t arity = 0;
  size_t rows = 0;
  std::shared_ptr<const ValueDict> dict;
  std::shared_ptr<const ColumnarRelation> pin;  // non-null when borrowed
  const Relation* source = nullptr;             // borrowed: the relation
  std::vector<std::vector<uint32_t>> owned;     // used when pin == nullptr

  const std::vector<uint32_t>& col(size_t c) const {
    return pin != nullptr ? pin->col(c) : owned[c];
  }

  static VecTable Borrow(const Relation& r) {
    VecTable t;
    t.pin = r.Columnar();
    t.source = &r;
    t.arity = t.pin->arity();
    t.rows = t.pin->rows();
    t.dict = t.pin->dict_ptr();
    return t;
  }

  static VecTable Own(size_t arity, size_t rows,
                      std::shared_ptr<const ValueDict> dict,
                      std::vector<std::vector<uint32_t>> cols) {
    VecTable t;
    t.arity = arity;
    t.rows = rows;
    t.dict = std::move(dict);
    t.owned = std::move(cols);
    return t;
  }
};

// Deterministic batch accounting: one kernel invocation over `rows` input
// rows counts ceil(rows / kVecBatchRows) batches regardless of how the rows
// were chunked across threads, so explain output is thread-count invariant.
void CountVectorized(EvalStats* stats, uint64_t rows) {
  if (stats == nullptr) return;
  stats->CountRowsVectorized(rows);
  stats->CountBatchesProcessed((rows + kVecBatchRows - 1) / kVecBatchRows);
}

// Read-only view of a table's columns remapped into a merged dictionary.
// `remapped` stays empty when the translation is the identity.
struct CodeView {
  const VecTable* t;
  std::vector<std::vector<uint32_t>> remapped;

  const std::vector<uint32_t>& col(size_t c) const {
    return remapped.empty() ? t->col(c) : remapped[c];
  }
};

CodeView RemapInto(const VecTable& t, const DictMerge& m,
                   const std::vector<uint32_t>& translate) {
  CodeView v{&t, {}};
  if (m.dict == t.dict) return v;  // shared dictionary: codes already agree
  v.remapped.resize(t.arity);
  for (size_t c = 0; c < t.arity; ++c) {
    const std::vector<uint32_t>& in = t.col(c);
    std::vector<uint32_t>& out = v.remapped[c];
    out.resize(in.size());
    for (size_t i = 0; i < in.size(); ++i) out[i] = translate[in[i]];
  }
  return v;
}

bool RowLess(const CodeView& a, size_t ai, const CodeView& b, size_t bi,
             size_t arity) {
  for (size_t c = 0; c < arity; ++c) {
    const uint32_t x = a.col(c)[ai];
    const uint32_t y = b.col(c)[bi];
    if (x != y) return x < y;
  }
  return false;
}

bool RowEq(const CodeView& a, size_t ai, const CodeView& b, size_t bi,
           size_t arity) {
  for (size_t c = 0; c < arity; ++c) {
    if (a.col(c)[ai] != b.col(c)[bi]) return false;
  }
  return true;
}

// Sorts `cols` rows lexicographically and drops duplicates, restoring the
// canonical-row invariant after projection and join emits.
void CompactRows(size_t arity, std::vector<std::vector<uint32_t>>* cols,
                 size_t* rows) {
  const size_t n = *rows;
  if (n <= 1) return;
  if (arity == 0) {  // all empty rows are equal
    *rows = 1;
    return;
  }
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    for (size_t c = 0; c < arity; ++c) {
      const uint32_t x = (*cols)[c][a];
      const uint32_t y = (*cols)[c][b];
      if (x != y) return x < y;
    }
    return false;
  });
  std::vector<uint32_t> kept;
  kept.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!kept.empty()) {
      bool eq = true;
      for (size_t c = 0; c < arity && eq; ++c) {
        eq = (*cols)[c][perm[i]] == (*cols)[c][kept.back()];
      }
      if (eq) continue;
    }
    kept.push_back(perm[i]);
  }
  std::vector<std::vector<uint32_t>> out(arity);
  for (size_t c = 0; c < arity; ++c) {
    out[c].reserve(kept.size());
    for (uint32_t id : kept) out[c].push_back((*cols)[c][id]);
  }
  *cols = std::move(out);
  *rows = kept.size();
}

bool CmpBool(CmpOp op, std::strong_ordering cmp) {
  switch (op) {
    case CmpOp::kEq: return cmp == 0;
    case CmpOp::kNe: return cmp != 0;
    case CmpOp::kLt: return cmp < 0;
    case CmpOp::kLe: return cmp <= 0;
    case CmpOp::kGt: return cmp > 0;
    case CmpOp::kGe: return cmp >= 0;
  }
  return false;
}

CmpOp MirrorOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // =, ≠ are symmetric
  }
}

// col OP const as a predicate over dictionary codes: the constant resolves
// to dictionary ranks once, the loop compares 32-bit codes. Valid because
// the dictionary is sorted by the total Value order — the same order the
// naïve row evaluator compares with.
void MaskCmpConst(CmpOp op, const uint32_t* codes, size_t n,
                  const ValueDict& dict, const Value& constant,
                  uint8_t* mask) {
  switch (op) {
    case CmpOp::kEq: {
      const uint32_t eq = dict.Find(constant);
      if (eq == ValueDict::kNotFound) {
        std::fill(mask, mask + n, uint8_t{0});
      } else {
        for (size_t i = 0; i < n; ++i) mask[i] = codes[i] == eq;
      }
      return;
    }
    case CmpOp::kNe: {
      const uint32_t eq = dict.Find(constant);
      if (eq == ValueDict::kNotFound) {
        std::fill(mask, mask + n, uint8_t{1});
      } else {
        for (size_t i = 0; i < n; ++i) mask[i] = codes[i] != eq;
      }
      return;
    }
    case CmpOp::kLt: {
      const uint32_t lb = dict.LowerBound(constant);
      for (size_t i = 0; i < n; ++i) mask[i] = codes[i] < lb;
      return;
    }
    case CmpOp::kLe: {
      const uint32_t ub = dict.UpperBound(constant);
      for (size_t i = 0; i < n; ++i) mask[i] = codes[i] < ub;
      return;
    }
    case CmpOp::kGt: {
      const uint32_t ub = dict.UpperBound(constant);
      for (size_t i = 0; i < n; ++i) mask[i] = codes[i] >= ub;
      return;
    }
    case CmpOp::kGe: {
      const uint32_t lb = dict.LowerBound(constant);
      for (size_t i = 0; i < n; ++i) mask[i] = codes[i] >= lb;
      return;
    }
  }
}

// Evaluates `p` (naïve two-valued semantics) over rows [begin, end) of `t`
// into `mask` (size end - begin).
void EvalMask(const Predicate& p, const VecTable& t, size_t begin, size_t end,
              std::vector<uint8_t>* mask) {
  const size_t n = end - begin;
  mask->resize(n);
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      std::fill(mask->begin(), mask->end(), uint8_t{1});
      return;
    case Predicate::Kind::kFalse:
      std::fill(mask->begin(), mask->end(), uint8_t{0});
      return;
    case Predicate::Kind::kAnd: {
      std::vector<uint8_t> rhs;
      EvalMask(*p.left(), t, begin, end, mask);
      EvalMask(*p.right(), t, begin, end, &rhs);
      for (size_t i = 0; i < n; ++i) (*mask)[i] &= rhs[i];
      return;
    }
    case Predicate::Kind::kOr: {
      std::vector<uint8_t> rhs;
      EvalMask(*p.left(), t, begin, end, mask);
      EvalMask(*p.right(), t, begin, end, &rhs);
      for (size_t i = 0; i < n; ++i) (*mask)[i] |= rhs[i];
      return;
    }
    case Predicate::Kind::kNot: {
      EvalMask(*p.left(), t, begin, end, mask);
      for (size_t i = 0; i < n; ++i) (*mask)[i] ^= uint8_t{1};
      return;
    }
    case Predicate::Kind::kIsNull: {
      if (p.lhs().kind == Term::Kind::kConst) {
        std::fill(mask->begin(), mask->end(),
                  static_cast<uint8_t>(p.lhs().constant.is_null()));
        return;
      }
      const uint32_t* codes = t.col(p.lhs().column).data() + begin;
      const uint32_t null_end = t.dict->null_end;
      for (size_t i = 0; i < n; ++i) (*mask)[i] = codes[i] < null_end;
      return;
    }
    case Predicate::Kind::kCmp: {
      const Term& l = p.lhs();
      const Term& r = p.rhs();
      const bool lc = l.kind == Term::Kind::kColumn;
      const bool rc = r.kind == Term::Kind::kColumn;
      if (lc && rc) {
        const uint32_t* a = t.col(l.column).data() + begin;
        const uint32_t* b = t.col(r.column).data() + begin;
        switch (p.op()) {
          case CmpOp::kEq:
            for (size_t i = 0; i < n; ++i) (*mask)[i] = a[i] == b[i];
            return;
          case CmpOp::kNe:
            for (size_t i = 0; i < n; ++i) (*mask)[i] = a[i] != b[i];
            return;
          case CmpOp::kLt:
            for (size_t i = 0; i < n; ++i) (*mask)[i] = a[i] < b[i];
            return;
          case CmpOp::kLe:
            for (size_t i = 0; i < n; ++i) (*mask)[i] = a[i] <= b[i];
            return;
          case CmpOp::kGt:
            for (size_t i = 0; i < n; ++i) (*mask)[i] = a[i] > b[i];
            return;
          case CmpOp::kGe:
            for (size_t i = 0; i < n; ++i) (*mask)[i] = a[i] >= b[i];
            return;
        }
        return;
      }
      if (!lc && !rc) {
        const bool v = CmpBool(p.op(), l.constant <=> r.constant);
        std::fill(mask->begin(), mask->end(), static_cast<uint8_t>(v));
        return;
      }
      const Term& colt = lc ? l : r;
      const Term& cnst = lc ? r : l;
      const CmpOp op = lc ? p.op() : MirrorOp(p.op());
      MaskCmpConst(op, t.col(colt.column).data() + begin, n, *t.dict,
                   cnst.constant, mask->data());
      return;
    }
  }
}

// Predicate-over-column selection: batched mask evaluation producing the
// kept-row selection vector. Chunks across threads above the parallel
// threshold; per-chunk vectors merge in chunk order, so the selection is
// bit-identical at every thread count.
std::vector<uint32_t> FilterRows(const Predicate& pred, const VecTable& t,
                                 const EvalOptions& options,
                                 EvalStats* stats) {
  CountVectorized(stats, t.rows);
  const bool parallel = t.rows >= options.parallel_row_threshold &&
                        ResolveNumThreads(options.num_threads) > 1;
  if (!parallel) {
    std::vector<uint32_t> keep;
    std::vector<uint8_t> mask;
    for (size_t b = 0; b < t.rows; b += kVecBatchRows) {
      const size_t e = std::min(t.rows, b + kVecBatchRows);
      EvalMask(pred, t, b, e, &mask);
      for (size_t i = b; i < e; ++i) {
        if (mask[i - b]) keep.push_back(static_cast<uint32_t>(i));
      }
    }
    return keep;
  }
  std::vector<std::vector<uint32_t>> chunks(
      ParallelChunkCount(options.num_threads, t.rows, kVecBatchRows));
  (void)ParallelFor(
      options.num_threads, t.rows, kVecBatchRows,
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        std::vector<uint32_t>& keep = chunks[chunk];
        std::vector<uint8_t> mask;
        for (size_t b = begin; b < end; b += kVecBatchRows) {
          const size_t e = std::min(end, b + kVecBatchRows);
          EvalMask(pred, t, b, e, &mask);
          for (size_t i = b; i < e; ++i) {
            if (mask[i - b]) keep.push_back(static_cast<uint32_t>(i));
          }
        }
        return Status::OK();
      });
  std::vector<uint32_t> keep;
  for (const std::vector<uint32_t>& c : chunks) {
    keep.insert(keep.end(), c.begin(), c.end());
  }
  return keep;
}

// Materializes the selected rows (ascending ids, so canonical order is
// preserved) into an owned table sharing the dictionary.
VecTable GatherRows(const VecTable& t, const std::vector<uint32_t>& keep) {
  std::vector<std::vector<uint32_t>> cols(t.arity);
  for (size_t c = 0; c < t.arity; ++c) {
    const std::vector<uint32_t>& in = t.col(c);
    cols[c].reserve(keep.size());
    for (uint32_t id : keep) cols[c].push_back(in[id]);
  }
  return VecTable::Own(t.arity, keep.size(), t.dict, std::move(cols));
}

// Projection as column slicing: copy the selected columns, then compact
// (projection can introduce duplicate rows).
VecTable ProjectCols(const VecTable& t, const std::vector<size_t>& cols) {
  std::vector<std::vector<uint32_t>> out(cols.size());
  for (size_t c = 0; c < cols.size(); ++c) out[c] = t.col(cols[c]);
  size_t rows = t.rows;
  CompactRows(cols.size(), &out, &rows);
  return VecTable::Own(cols.size(), rows, t.dict, std::move(out));
}

enum class SetKind { kUnion, kIntersect, kDiff };

// Union/intersection/difference as one merge walk over two sorted code
// runs (both sides canonical; cross-dictionary inputs are remapped into the
// merged dictionary first, which preserves sortedness).
VecTable SetOpVec(SetKind kind, const VecTable& l, const VecTable& r,
                  const EvalOptions& options, EvalStats* stats) {
  (void)options;
  CountVectorized(stats, l.rows + r.rows);
  DictMerge m = MergeDicts(l.dict, r.dict);
  const CodeView lv = RemapInto(l, m, m.from_a);
  const CodeView rv = RemapInto(r, m, m.from_b);
  const size_t arity = l.arity;
  std::vector<std::vector<uint32_t>> out(arity);
  size_t rows = 0;
  auto emit = [&](const CodeView& v, size_t i) {
    for (size_t c = 0; c < arity; ++c) out[c].push_back(v.col(c)[i]);
    ++rows;
  };
  size_t i = 0;
  size_t j = 0;
  while (i < l.rows && j < r.rows) {
    if (RowEq(lv, i, rv, j, arity)) {
      if (kind != SetKind::kDiff) emit(lv, i);
      ++i;
      ++j;
    } else if (RowLess(lv, i, rv, j, arity)) {
      if (kind != SetKind::kIntersect) emit(lv, i);
      ++i;
    } else {
      if (kind == SetKind::kUnion) emit(rv, j);
      ++j;
    }
  }
  for (; i < l.rows; ++i) {
    if (kind != SetKind::kIntersect) emit(lv, i);
  }
  if (kind == SetKind::kUnion) {
    for (; j < r.rows; ++j) emit(rv, j);
  }
  return VecTable::Own(arity, rows, std::move(m.dict), std::move(out));
}

// Unfused cross product; pairs come out in lexicographic order (left-major
// over two sorted inputs), so no compact is needed.
VecTable ProductVec(const VecTable& l, const VecTable& r, EvalStats* stats) {
  CountVectorized(stats, l.rows + r.rows);
  DictMerge m = MergeDicts(l.dict, r.dict);
  const CodeView lv = RemapInto(l, m, m.from_a);
  const CodeView rv = RemapInto(r, m, m.from_b);
  const size_t arity = l.arity + r.arity;
  std::vector<std::vector<uint32_t>> out(arity);
  const size_t rows = l.rows * r.rows;
  for (size_t c = 0; c < arity; ++c) out[c].reserve(rows);
  for (size_t c = 0; c < l.arity; ++c) {
    const std::vector<uint32_t>& in = lv.col(c);
    for (size_t i = 0; i < l.rows; ++i) {
      out[c].insert(out[c].end(), r.rows, in[i]);
    }
  }
  for (size_t c = 0; c < r.arity; ++c) {
    const std::vector<uint32_t>& in = rv.col(c);
    for (size_t i = 0; i < l.rows; ++i) {
      out[l.arity + c].insert(out[l.arity + c].end(), in.begin(), in.end());
    }
  }
  return VecTable::Own(arity, rows, std::move(m.dict), std::move(out));
}

// Mixes key codes the way Tuple::Hash mixes value hashes; internally
// consistent (build and probe use the same function), collisions are
// verified by code comparison.
uint64_t MixCodes(const CodeView& v, size_t row,
                  const std::vector<size_t>& cols) {
  uint64_t h = 0x345678;
  for (size_t c : cols) {
    h = h * 1000003 ^ v.col(c)[row];
  }
  return h ^ cols.size();
}

// HashColumns-compatible value hash of a key from dictionary hashes, so
// probes can reuse a cached TupleRowIndex built by BuildColumnIndex.
uint64_t HashKeyValues(const VecTable& t, size_t row,
                       const std::vector<size_t>& cols) {
  uint64_t h = 0x345678;
  for (size_t c : cols) {
    h = h * 1000003 ^ t.dict->hashes[t.col(c)[row]];
  }
  return h ^ cols.size();
}

// Fused equi-join: batched hash build over the right key columns, chunked
// probe over the left rows, residual and projection applied on codes. When
// the right side is a pinned relation with a matching cached column index
// (pre-built by the subplan cache), the build phase is skipped and probes
// go through the shared index by value hash.
VecTable HashJoinVec(const VecTable& l, const VecTable& r,
                     const std::vector<JoinKey>& keys,
                     const Predicate* residual,
                     const std::vector<size_t>* projection,
                     const EvalOptions& options, EvalStats* stats,
                     OpScope* scope) {
  CountVectorized(stats, l.rows + r.rows);
  DictMerge m = MergeDicts(l.dict, r.dict);
  const CodeView lv = RemapInto(l, m, m.from_a);
  const CodeView rv = RemapInto(r, m, m.from_b);
  std::vector<size_t> lcols;
  std::vector<size_t> rcols;
  lcols.reserve(keys.size());
  rcols.reserve(keys.size());
  for (const JoinKey& k : keys) {
    lcols.push_back(k.left_col);
    rcols.push_back(k.right_col);
  }

  const TupleRowIndex* cached =
      r.source != nullptr ? r.source->FindColumnIndex(rcols) : nullptr;
  std::unordered_map<uint64_t, std::vector<uint32_t>> local;
  if (cached == nullptr && l.rows > 0) {
    local.reserve(r.rows);
    for (size_t i = 0; i < r.rows; ++i) {
      local[MixCodes(rv, i, rcols)].push_back(static_cast<uint32_t>(i));
    }
  }

  // Verified key match via merged codes (collision- and cross-dict-safe).
  auto keys_match = [&](size_t li, size_t ri) {
    for (size_t k = 0; k < lcols.size(); ++k) {
      if (lv.col(lcols[k])[li] != rv.col(rcols[k])[ri]) return false;
    }
    return true;
  };
  auto probe_chunk = [&](size_t begin, size_t end,
                         std::vector<std::pair<uint32_t, uint32_t>>* out) {
    for (size_t i = begin; i < end; ++i) {
      const std::vector<uint32_t>* bucket = nullptr;
      if (cached != nullptr) {
        auto it = cached->find(HashKeyValues(l, i, lcols));
        if (it != cached->end()) bucket = &it->second;
      } else {
        auto it = local.find(MixCodes(lv, i, lcols));
        if (it != local.end()) bucket = &it->second;
      }
      if (bucket == nullptr) continue;
      for (uint32_t ri : *bucket) {
        if (keys_match(i, ri)) out->emplace_back(static_cast<uint32_t>(i), ri);
      }
    }
  };

  std::vector<std::pair<uint32_t, uint32_t>> matches;
  const bool parallel = l.rows >= options.parallel_row_threshold &&
                        ResolveNumThreads(options.num_threads) > 1;
  if (!parallel) {
    probe_chunk(0, l.rows, &matches);
  } else {
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> chunks(
        ParallelChunkCount(options.num_threads, l.rows, kVecBatchRows));
    (void)ParallelFor(options.num_threads, l.rows, kVecBatchRows,
                      [&](size_t begin, size_t end, size_t chunk) -> Status {
                        probe_chunk(begin, end, &chunks[chunk]);
                        return Status::OK();
                      });
    for (const auto& c : chunks) {
      matches.insert(matches.end(), c.begin(), c.end());
    }
  }
  if (scope != nullptr) scope->CountProbes(l.rows);

  // Emit the matched concatenations column by column.
  const size_t arity = l.arity + r.arity;
  std::vector<std::vector<uint32_t>> out(arity);
  for (size_t c = 0; c < l.arity; ++c) {
    const std::vector<uint32_t>& in = lv.col(c);
    out[c].reserve(matches.size());
    for (const auto& [li, ri] : matches) out[c].push_back(in[li]);
  }
  for (size_t c = 0; c < r.arity; ++c) {
    const std::vector<uint32_t>& in = rv.col(c);
    out[l.arity + c].reserve(matches.size());
    for (const auto& [li, ri] : matches) out[l.arity + c].push_back(in[ri]);
  }
  VecTable joined =
      VecTable::Own(arity, matches.size(), m.dict, std::move(out));

  if (residual != nullptr) {
    const std::vector<uint32_t> keep =
        FilterRows(*residual, joined, options, stats);
    joined = GatherRows(joined, keep);
  }
  if (projection != nullptr) return ProjectCols(joined, *projection);
  CompactRows(joined.arity, &joined.owned, &joined.rows);
  return joined;
}

// r ÷ s by counting over sorted code rows: head runs are contiguous in
// canonical order, each run's (distinct) tails probe the divisor by binary
// search, and a head divides s iff its run matched |s| tails — the same
// scheme as the row kernel HashDivide.
Result<VecTable> DivideVec(const VecTable& r, const VecTable& s,
                           const EvalOptions& options, EvalStats* stats) {
  (void)options;
  if (s.arity == 0 || s.arity >= r.arity) {
    return Status::InvalidArgument(
        "division requires 0 < arity(divisor) < arity(dividend); got " +
        std::to_string(s.arity) + " and " + std::to_string(r.arity));
  }
  CountVectorized(stats, r.rows + s.rows);
  DictMerge m = MergeDicts(r.dict, s.dict);
  const CodeView rv = RemapInto(r, m, m.from_a);
  const CodeView sv = RemapInto(s, m, m.from_b);
  const size_t head = r.arity - s.arity;

  // True when the tail of dividend row `ri` is a divisor row (binary search
  // over the sorted divisor).
  auto tail_in_s = [&](size_t ri) {
    size_t lo = 0;
    size_t hi = s.rows;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      std::strong_ordering cmp = std::strong_ordering::equal;
      for (size_t c = 0; c < s.arity; ++c) {
        const uint32_t x = sv.col(c)[mid];
        const uint32_t y = rv.col(head + c)[ri];
        if (x != y) {
          cmp = x < y ? std::strong_ordering::less
                      : std::strong_ordering::greater;
          break;
        }
      }
      if (cmp == 0) return true;
      if (cmp < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return false;
  };
  auto same_head = [&](size_t a, size_t b) {
    for (size_t c = 0; c < head; ++c) {
      if (rv.col(c)[a] != rv.col(c)[b]) return false;
    }
    return true;
  };

  std::vector<std::vector<uint32_t>> out(head);
  size_t rows = 0;
  size_t run_start = 0;
  size_t run_matches = 0;
  for (size_t i = 0; i < r.rows; ++i) {
    if (i > run_start && !same_head(i, run_start)) {
      run_start = i;
      run_matches = 0;
    }
    if (tail_in_s(i)) ++run_matches;
    const bool run_ends = i + 1 == r.rows || !same_head(i + 1, run_start);
    if (run_ends && run_matches == s.rows) {
      for (size_t c = 0; c < head; ++c) out[c].push_back(rv.col(c)[run_start]);
      ++rows;
    }
  }
  // Heads emerge in sorted order (runs are sorted) and once per run.
  return VecTable::Own(head, rows, std::move(m.dict), std::move(out));
}

// Δ = {(a, a) | a ∈ adom(D)}: the active domain is already a sorted set,
// so the diagonal is born canonical.
VecTable DeltaVec(const Database& db) {
  std::vector<Value> domain;
  for (const Value& v : db.ActiveDomain()) domain.push_back(v);
  const size_t n = domain.size();
  std::shared_ptr<const ValueDict> dict = ValueDict::Build(std::move(domain));
  std::vector<std::vector<uint32_t>> cols(2);
  cols[0].resize(n);
  for (uint32_t i = 0; i < n; ++i) cols[0][i] = i;
  cols[1] = cols[0];
  return VecTable::Own(2, n, std::move(dict), std::move(cols));
}

Relation MaterializeVec(const VecTable& t) {
  // A borrowed table is exactly its source relation; the copy shares the
  // canonical storage and every cached index.
  if (t.source != nullptr) return *t.source;
  if (t.pin != nullptr) return t.pin->ToRelation();
  std::vector<Tuple> rows;
  rows.reserve(t.rows);
  const std::vector<Value>& values = t.dict->values;
  for (size_t i = 0; i < t.rows; ++i) {
    std::vector<Value> vals;
    vals.reserve(t.arity);
    for (size_t c = 0; c < t.arity; ++c) {
      vals.push_back(values[t.owned[c][i]]);
    }
    rows.emplace_back(std::move(vals));
  }
  return Relation(t.arity, std::move(rows));
}

// The batch evaluator; mirrors algebra/eval.cc's Rec node by node,
// including the σ/π-over-× join fusion, so the two paths execute the same
// plan shapes and produce bit-identical relations.
struct VRec {
  const Database& db;
  const EvalOptions& options;
  EvalStats* stats;

  Result<VecTable> Run(const RAExprPtr& e) {
    switch (e->kind()) {
      case RAExpr::Kind::kScan: {
        OpScope scope(stats, EvalOp::kScan);
        VecTable t = VecTable::Borrow(db.GetRelation(e->relation_name()));
        scope.CountOut(t.rows);
        return t;
      }
      case RAExpr::Kind::kConstRel:
        return VecTable::Borrow(e->literal());
      case RAExpr::Kind::kSelect:
        return RunSelect(*e, /*projection=*/nullptr);
      case RAExpr::Kind::kProject: {
        // π over σ(l × r) fuses the projection into the join's emit.
        if (e->left()->kind() == RAExpr::Kind::kSelect &&
            e->left()->left()->kind() == RAExpr::Kind::kProduct) {
          return RunSelect(*e->left(), &e->columns());
        }
        INCDB_ASSIGN_OR_RETURN(VecTable in, Run(e->left()));
        OpScope scope(stats, EvalOp::kProject);
        scope.CountIn(in.rows);
        CountVectorized(stats, in.rows);
        VecTable out = ProjectCols(in, e->columns());
        scope.CountOut(out.rows);
        return out;
      }
      case RAExpr::Kind::kProduct: {
        INCDB_ASSIGN_OR_RETURN(VecTable l, Run(e->left()));
        INCDB_ASSIGN_OR_RETURN(VecTable r, Run(e->right()));
        OpScope scope(stats, EvalOp::kProduct);
        scope.CountIn(l.rows + r.rows);
        VecTable out = ProductVec(l, r, stats);
        scope.CountOut(out.rows);
        return out;
      }
      case RAExpr::Kind::kUnion:
        return RunSetOp(EvalOp::kUnion, SetKind::kUnion, e);
      case RAExpr::Kind::kDiff:
        return RunSetOp(EvalOp::kDiff, SetKind::kDiff, e);
      case RAExpr::Kind::kIntersect:
        return RunSetOp(EvalOp::kIntersect, SetKind::kIntersect, e);
      case RAExpr::Kind::kDivide: {
        INCDB_ASSIGN_OR_RETURN(VecTable l, Run(e->left()));
        INCDB_ASSIGN_OR_RETURN(VecTable r, Run(e->right()));
        OpScope scope(stats, EvalOp::kDivide);
        scope.CountIn(l.rows + r.rows);
        scope.CountProbes(l.rows);
        INCDB_ASSIGN_OR_RETURN(VecTable out, DivideVec(l, r, options, stats));
        scope.CountOut(out.rows);
        return out;
      }
      case RAExpr::Kind::kDelta: {
        OpScope scope(stats, EvalOp::kDelta);
        VecTable out = DeltaVec(db);
        scope.CountOut(out.rows);
        return out;
      }
    }
    return Status::Internal("unknown RA node kind");
  }

  Result<VecTable> RunSetOp(EvalOp op, SetKind kind, const RAExprPtr& e) {
    INCDB_ASSIGN_OR_RETURN(VecTable l, Run(e->left()));
    INCDB_ASSIGN_OR_RETURN(VecTable r, Run(e->right()));
    OpScope scope(stats, op);
    scope.CountIn(l.rows + r.rows);
    VecTable out = SetOpVec(kind, l, r, options, stats);
    scope.CountOut(out.rows);
    return out;
  }

  // σ_pred(child), optionally under π_projection. When the child is a
  // product and the predicate carries cross-boundary equalities, the σ
  // (and π) fuse into the batched hash join.
  Result<VecTable> RunSelect(const RAExpr& sel,
                             const std::vector<size_t>* projection) {
    if (sel.left()->kind() == RAExpr::Kind::kProduct) {
      INCDB_ASSIGN_OR_RETURN(VecTable l, Run(sel.left()->left()));
      INCDB_ASSIGN_OR_RETURN(VecTable r, Run(sel.left()->right()));
      JoinSplit split = SplitForEquiJoin(sel.predicate(), l.arity);
      if (!split.keys.empty()) {
        OpScope scope(stats, EvalOp::kHashJoin);
        scope.CountIn(l.rows + r.rows);
        VecTable out = HashJoinVec(l, r, split.keys, split.residual.get(),
                                   projection, options, stats, &scope);
        scope.CountOut(out.rows);
        return out;
      }
      OpScope pscope(stats, EvalOp::kProduct);
      pscope.CountIn(l.rows + r.rows);
      VecTable in = ProductVec(l, r, stats);
      pscope.CountOut(in.rows);
      return Filter(sel.predicate(), std::move(in), projection);
    }
    INCDB_ASSIGN_OR_RETURN(VecTable in, Run(sel.left()));
    return Filter(sel.predicate(), std::move(in), projection);
  }

  Result<VecTable> Filter(const PredicatePtr& pred, VecTable in,
                          const std::vector<size_t>* projection) {
    OpScope scope(stats, EvalOp::kSelect);
    scope.CountIn(in.rows);
    const std::vector<uint32_t> keep = FilterRows(*pred, in, options, stats);
    VecTable out = GatherRows(in, keep);
    if (projection != nullptr) out = ProjectCols(out, *projection);
    scope.CountOut(out.rows);
    return out;
  }
};

}  // namespace

Result<Relation> EvalVectorized(const RAExprPtr& e, const Database& db,
                                const EvalOptions& options) {
  // Validate typing once at the root (same contract as EvalNaive).
  INCDB_RETURN_IF_ERROR(e->InferArity(db.schema()).status());
  VRec rec{db, options, options.stats};
  INCDB_ASSIGN_OR_RETURN(VecTable t, rec.Run(e));
  return MaterializeVec(t);
}

}  // namespace incdb
