#include "engine/kernels.h"

#include <unordered_map>

namespace incdb {
namespace {

// Key of a tuple under a column list, hashed like a Tuple of the projected
// values (without materializing the projection for probes).
size_t HashColumns(const Tuple& t, const std::vector<size_t>& cols) {
  size_t h = 0x345678;
  for (size_t c : cols) {
    h = h * 1000003 ^ t[c].Hash();
  }
  return h ^ cols.size();
}

bool ColumnsEqual(const Tuple& a, const std::vector<size_t>& a_cols,
                  const Tuple& b, const std::vector<size_t>& b_cols) {
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (!(a[a_cols[i]] == b[b_cols[i]])) return false;
  }
  return true;
}

}  // namespace

Relation HashJoin(const Relation& l, const Relation& r,
                  const std::vector<JoinKey>& keys, const Predicate* residual,
                  const std::vector<size_t>* projection, EvalStats* stats) {
  OpScope scope(stats, EvalOp::kHashJoin);
  const size_t out_arity =
      projection != nullptr ? projection->size() : l.arity() + r.arity();
  Relation out(out_arity);

  std::vector<size_t> l_cols, r_cols;
  l_cols.reserve(keys.size());
  r_cols.reserve(keys.size());
  for (const JoinKey& k : keys) {
    l_cols.push_back(k.left_col);
    r_cols.push_back(k.right_col);
  }

  // Build on the smaller side? The probe loop concatenates a ++ b in l-then-r
  // order either way; build on r, probe with l (r is indexed once, matching
  // the canonical "build the inner" plan).
  const std::vector<Tuple>& build = r.tuples();
  std::unordered_map<size_t, std::vector<const Tuple*>> table;
  table.reserve(build.size());
  for (const Tuple& b : build) {
    table[HashColumns(b, r_cols)].push_back(&b);
  }

  scope.CountIn(l.tuples().size() + build.size());
  uint64_t probes = 0;
  uint64_t emitted = 0;
  for (const Tuple& a : l.tuples()) {
    ++probes;
    auto it = table.find(HashColumns(a, l_cols));
    if (it == table.end()) continue;
    for (const Tuple* b : it->second) {
      if (!ColumnsEqual(a, l_cols, *b, r_cols)) continue;  // hash collision
      Tuple joined = a.Concat(*b);
      if (residual != nullptr && !residual->EvalNaive(joined)) continue;
      ++emitted;
      if (projection != nullptr) {
        out.Add(joined.Project(*projection));
      } else {
        out.Add(std::move(joined));
      }
    }
  }
  scope.CountProbes(probes);
  scope.CountOut(emitted);
  return out;
}

Relation HashDiff(const Relation& l, const Relation& r, EvalStats* stats) {
  OpScope scope(stats, EvalOp::kDiff);
  const auto& index = r.HashIndex();
  Relation out(l.arity());
  scope.CountIn(l.tuples().size() + r.tuples().size());
  for (const Tuple& t : l.tuples()) {
    if (index.count(t) == 0) out.Add(t);
  }
  scope.CountProbes(l.tuples().size());
  scope.CountOut(out.tuples().size());
  return out;
}

Relation HashIntersect(const Relation& l, const Relation& r,
                       EvalStats* stats) {
  OpScope scope(stats, EvalOp::kIntersect);
  const auto& index = r.HashIndex();
  Relation out(l.arity());
  scope.CountIn(l.tuples().size() + r.tuples().size());
  for (const Tuple& t : l.tuples()) {
    if (index.count(t) > 0) out.Add(t);
  }
  scope.CountProbes(l.tuples().size());
  scope.CountOut(out.tuples().size());
  return out;
}

Result<Relation> HashDivide(const Relation& r, const Relation& s,
                            EvalStats* stats) {
  if (s.arity() == 0 || s.arity() >= r.arity()) {
    return Status::InvalidArgument(
        "division requires 0 < arity(divisor) < arity(dividend); got " +
        std::to_string(s.arity()) + " and " + std::to_string(r.arity()));
  }
  OpScope scope(stats, EvalOp::kDivide);
  const size_t m = r.arity() - s.arity();
  std::vector<size_t> head_cols(m), tail_cols(s.arity()), s_cols(s.arity());
  for (size_t i = 0; i < m; ++i) head_cols[i] = i;
  for (size_t i = 0; i < s.arity(); ++i) tail_cols[i] = m + i;
  for (size_t i = 0; i < s.arity(); ++i) s_cols[i] = i;

  // Counting division, one pass over r. tuples() is canonical — sorted
  // lexicographically and deduplicated — and the head is a tuple prefix, so
  // all tuples sharing a head are contiguous and every (head, tail) pair
  // occurs exactly once. Stream the head runs, probing each tail against a
  // hash index of the divisor: a head divides s iff its run contains |s|
  // divisor tails. No head table and no materialized projections on the way.
  const std::vector<Tuple>& divisor = s.tuples();  // canonical: deduplicated
  std::unordered_map<size_t, std::vector<const Tuple*>> divisor_index;
  divisor_index.reserve(divisor.size());
  for (const Tuple& d : divisor) {
    divisor_index[HashColumns(d, s_cols)].push_back(&d);
  }
  scope.CountIn(r.tuples().size() + divisor.size());

  const std::vector<Tuple>& rows = r.tuples();
  Relation out(m);
  uint64_t probes = 0;
  size_t i = 0;
  while (i < rows.size()) {
    size_t matched = 0;
    size_t j = i;
    for (; j < rows.size() &&
           ColumnsEqual(rows[j], head_cols, rows[i], head_cols);
         ++j) {
      ++probes;
      auto it = divisor_index.find(HashColumns(rows[j], tail_cols));
      if (it == divisor_index.end()) continue;
      for (const Tuple* d : it->second) {
        if (ColumnsEqual(rows[j], tail_cols, *d, s_cols)) {
          ++matched;
          break;
        }
      }
    }
    if (matched == divisor.size()) out.Add(rows[i].Project(head_cols));
    i = j;
  }
  scope.CountProbes(probes);
  scope.CountOut(out.tuples().size());
  return out;
}

}  // namespace incdb
