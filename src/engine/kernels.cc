#include "engine/kernels.h"

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "util/thread_pool.h"

namespace incdb {
namespace {

// HashColumns / ColumnsEqual live in core/tuple.h so that the column indexes
// cached on a Relation (BuildColumnIndex) hash exactly like the kernels'
// probes.

// Probe-side chunk grain for the parallel plans: small enough to balance,
// large enough that chunk bookkeeping is noise.
constexpr size_t kProbeGrain = 1024;

// True when `options` asks for the partitioned parallel plan over
// `probe_rows` probe-side rows.
bool UseParallelPlan(const EvalOptions& options, size_t probe_rows) {
  return probe_rows >= options.parallel_row_threshold &&
         ResolveNumThreads(options.num_threads) > 1;
}

// A hash table per build partition; partition of a key hash h is h % size().
using PartitionedIndex =
    std::vector<std::unordered_map<size_t, std::vector<const Tuple*>>>;

// Hash-partitions `build` into ResolveNumThreads(options) tables built by
// parallel workers. `hashes[i]` receives HashColumns(build[i], cols).
PartitionedIndex BuildPartitioned(const std::vector<Tuple>& build,
                                  const std::vector<size_t>& cols,
                                  const EvalOptions& options,
                                  std::vector<size_t>* hashes) {
  const size_t parts =
      static_cast<size_t>(ResolveNumThreads(options.num_threads));
  hashes->resize(build.size());
  // Hash every build row in parallel; writes are disjoint per chunk.
  (void)ParallelFor(options.num_threads, build.size(), kProbeGrain,
                    [&](size_t begin, size_t end, size_t) -> Status {
                      for (size_t i = begin; i < end; ++i) {
                        (*hashes)[i] = HashColumns(build[i], cols);
                      }
                      return Status::OK();
                    });
  // Serial scatter of row indices, then per-partition parallel build: each
  // partition's table is touched by exactly one worker.
  std::vector<std::vector<uint32_t>> rows_of(parts);
  for (size_t i = 0; i < build.size(); ++i) {
    rows_of[(*hashes)[i] % parts].push_back(static_cast<uint32_t>(i));
  }
  PartitionedIndex tables(parts);
  (void)ParallelFor(options.num_threads, parts, /*grain=*/1,
                    [&](size_t begin, size_t end, size_t) -> Status {
                      for (size_t p = begin; p < end; ++p) {
                        tables[p].reserve(rows_of[p].size());
                        for (uint32_t i : rows_of[p]) {
                          tables[p][(*hashes)[i]].push_back(&build[i]);
                        }
                      }
                      return Status::OK();
                    });
  return tables;
}

// Per-chunk output of a parallel probe: tuples plus the chunk's counters.
struct ProbeChunk {
  std::vector<Tuple> out;
  uint64_t probes = 0;
  uint64_t emitted = 0;
};

// Merges per-chunk outputs in chunk order (Relation canonicalizes, so the
// merged relation is bit-identical to the serial scan's) and accounts the
// summed counters to `scope`.
void MergeProbeChunks(std::vector<ProbeChunk>& chunks, Relation* out,
                      OpScope* scope) {
  for (ProbeChunk& c : chunks) {
    for (Tuple& t : c.out) out->Add(std::move(t));
    scope->CountProbes(c.probes);
    scope->CountOut(c.emitted);
  }
}

// Flattens the top-level AND spine of a predicate into conjuncts.
void FlattenAnd(const PredicatePtr& p, std::vector<PredicatePtr>* out) {
  if (p->kind() == Predicate::Kind::kAnd) {
    FlattenAnd(p->left(), out);
    FlattenAnd(p->right(), out);
    return;
  }
  out->push_back(p);
}

}  // namespace

JoinSplit SplitForEquiJoin(const PredicatePtr& pred, size_t left_arity) {
  std::vector<PredicatePtr> conjuncts;
  FlattenAnd(pred, &conjuncts);
  JoinSplit split;
  for (const PredicatePtr& c : conjuncts) {
    if (c->kind() == Predicate::Kind::kCmp && c->op() == CmpOp::kEq &&
        c->lhs().kind == Term::Kind::kColumn &&
        c->rhs().kind == Term::Kind::kColumn) {
      size_t a = c->lhs().column;
      size_t b = c->rhs().column;
      if (a > b) std::swap(a, b);
      if (a < left_arity && b >= left_arity) {
        split.keys.push_back(JoinKey{a, b - left_arity});
        continue;
      }
    }
    split.residual = split.residual ? Predicate::And(split.residual, c) : c;
  }
  return split;
}

Relation HashJoin(const Relation& l, const Relation& r,
                  const std::vector<JoinKey>& keys, const Predicate* residual,
                  const std::vector<size_t>* projection,
                  const EvalOptions& options) {
  EvalStats* stats = options.stats;
  OpScope scope(stats, EvalOp::kHashJoin);
  const size_t out_arity =
      projection != nullptr ? projection->size() : l.arity() + r.arity();
  Relation out(out_arity);

  std::vector<size_t> l_cols, r_cols;
  l_cols.reserve(keys.size());
  r_cols.reserve(keys.size());
  for (const JoinKey& k : keys) {
    l_cols.push_back(k.left_col);
    r_cols.push_back(k.right_col);
  }

  // Build on the smaller side? The probe loop concatenates a ++ b in l-then-r
  // order either way; build on r, probe with l (r is indexed once, matching
  // the canonical "build the inner" plan).
  const std::vector<Tuple>& build = r.tuples();
  const std::vector<Tuple>& probe = l.tuples();
  scope.CountIn(probe.size() + build.size());

  // A column index cached on the build relation (subplan cache: built once
  // on the driver thread, probed read-only here) replaces the per-call
  // build phase entirely. Row ids refer to r's canonical tuple vector.
  const TupleRowIndex* cached = r.FindColumnIndex(r_cols);

  // Tries a ++ b against the residual and emits into `c`.
  auto try_match = [&](const Tuple& a, const Tuple& b, ProbeChunk& c) {
    if (!ColumnsEqual(a, l_cols, b, r_cols)) return;  // hash collision
    Tuple joined = a.Concat(b);
    if (residual != nullptr && !residual->EvalNaive(joined)) return;
    ++c.emitted;
    c.out.push_back(projection != nullptr ? joined.Project(*projection)
                                          : std::move(joined));
  };

  if (UseParallelPlan(options, probe.size())) {
    // Partitioned build (skipped when a cached index exists) + parallel
    // probe. Both relations are canonical now (tuples() above ran on this
    // thread), so workers only read.
    std::vector<size_t> build_hashes;
    PartitionedIndex tables;
    if (cached == nullptr) {
      tables = BuildPartitioned(build, r_cols, options, &build_hashes);
    }
    const size_t parts = tables.size();
    std::vector<ProbeChunk> chunks(
        ParallelChunkCount(options.num_threads, probe.size(), kProbeGrain));
    (void)ParallelFor(
        options.num_threads, probe.size(), kProbeGrain,
        [&](size_t begin, size_t end, size_t ci) -> Status {
          ProbeChunk& c = chunks[ci];
          for (size_t i = begin; i < end; ++i) {
            const Tuple& a = probe[i];
            ++c.probes;
            const size_t h = HashColumns(a, l_cols);
            if (cached != nullptr) {
              auto it = cached->find(h);
              if (it == cached->end()) continue;
              for (uint32_t bi : it->second) try_match(a, build[bi], c);
            } else {
              const auto& table = tables[h % parts];
              auto it = table.find(h);
              if (it == table.end()) continue;
              for (const Tuple* b : it->second) try_match(a, *b, c);
            }
          }
          return Status::OK();
        });
    MergeProbeChunks(chunks, &out, &scope);
    return out;
  }

  std::unordered_map<size_t, std::vector<const Tuple*>> table;
  if (cached == nullptr) {
    table.reserve(build.size());
    for (const Tuple& b : build) {
      table[HashColumns(b, r_cols)].push_back(&b);
    }
  }

  ProbeChunk serial;
  for (const Tuple& a : probe) {
    ++serial.probes;
    const size_t h = HashColumns(a, l_cols);
    if (cached != nullptr) {
      auto it = cached->find(h);
      if (it == cached->end()) continue;
      for (uint32_t bi : it->second) try_match(a, build[bi], serial);
    } else {
      auto it = table.find(h);
      if (it == table.end()) continue;
      for (const Tuple* b : it->second) try_match(a, *b, serial);
    }
  }
  for (Tuple& t : serial.out) out.Add(std::move(t));
  scope.CountProbes(serial.probes);
  scope.CountOut(serial.emitted);
  return out;
}

namespace {

// Shared implementation of the indexed set ops: keeps l-tuples whose
// membership in r equals `keep_members`.
Relation HashSetOp(const Relation& l, const Relation& r, bool keep_members,
                   EvalOp op, const EvalOptions& options) {
  OpScope scope(options.stats, op);
  const auto& index = r.HashIndex();
  const std::vector<Tuple>& rows = l.tuples();
  Relation out(l.arity());
  scope.CountIn(rows.size() + r.tuples().size());

  if (UseParallelPlan(options, rows.size())) {
    // r's index and l's canonical form were built above on this thread;
    // workers perform read-only probes and fill disjoint chunks.
    std::vector<ProbeChunk> chunks(
        ParallelChunkCount(options.num_threads, rows.size(), kProbeGrain));
    (void)ParallelFor(options.num_threads, rows.size(), kProbeGrain,
                      [&](size_t begin, size_t end, size_t ci) -> Status {
                        ProbeChunk& c = chunks[ci];
                        for (size_t i = begin; i < end; ++i) {
                          ++c.probes;
                          if ((index.count(rows[i]) > 0) == keep_members) {
                            c.out.push_back(rows[i]);
                          }
                        }
                        return Status::OK();
                      });
    for (ProbeChunk& c : chunks) c.emitted = 0;  // CountOut from result size
    MergeProbeChunks(chunks, &out, &scope);
    scope.CountOut(out.tuples().size());
    return out;
  }

  for (const Tuple& t : rows) {
    if ((index.count(t) > 0) == keep_members) out.Add(t);
  }
  scope.CountProbes(rows.size());
  scope.CountOut(out.tuples().size());
  return out;
}

}  // namespace

Relation HashDiff(const Relation& l, const Relation& r,
                  const EvalOptions& options) {
  return HashSetOp(l, r, /*keep_members=*/false, EvalOp::kDiff, options);
}

Relation HashIntersect(const Relation& l, const Relation& r,
                       const EvalOptions& options) {
  return HashSetOp(l, r, /*keep_members=*/true, EvalOp::kIntersect, options);
}

Result<Relation> HashDivide(const Relation& r, const Relation& s,
                            const EvalOptions& options) {
  if (s.arity() == 0 || s.arity() >= r.arity()) {
    return Status::InvalidArgument(
        "division requires 0 < arity(divisor) < arity(dividend); got " +
        std::to_string(s.arity()) + " and " + std::to_string(r.arity()));
  }
  OpScope scope(options.stats, EvalOp::kDivide);
  const size_t m = r.arity() - s.arity();
  std::vector<size_t> head_cols(m), tail_cols(s.arity()), s_cols(s.arity());
  for (size_t i = 0; i < m; ++i) head_cols[i] = i;
  for (size_t i = 0; i < s.arity(); ++i) tail_cols[i] = m + i;
  for (size_t i = 0; i < s.arity(); ++i) s_cols[i] = i;

  // Counting division, one pass over r. tuples() is canonical — sorted
  // lexicographically and deduplicated — and the head is a tuple prefix, so
  // all tuples sharing a head are contiguous and every (head, tail) pair
  // occurs exactly once. Stream the head runs, probing each tail against a
  // hash index of the divisor: a head divides s iff its run contains |s|
  // divisor tails. No head table and no materialized projections on the way.
  const std::vector<Tuple>& divisor = s.tuples();  // canonical: deduplicated
  // A cached column index on the divisor (world-invariant subplan cache)
  // saves rebuilding the per-call index; row ids refer to `divisor`.
  const TupleRowIndex* cached = s.FindColumnIndex(s_cols);
  std::unordered_map<size_t, std::vector<const Tuple*>> divisor_index;
  if (cached == nullptr) {
    divisor_index.reserve(divisor.size());
    for (const Tuple& d : divisor) {
      divisor_index[HashColumns(d, s_cols)].push_back(&d);
    }
  }
  scope.CountIn(r.tuples().size() + divisor.size());

  // True when rows[j]'s tail appears in the divisor.
  auto tail_in_divisor = [&](const Tuple& row) {
    const size_t h = HashColumns(row, tail_cols);
    if (cached != nullptr) {
      auto it = cached->find(h);
      if (it == cached->end()) return false;
      for (uint32_t di : it->second) {
        if (ColumnsEqual(row, tail_cols, divisor[di], s_cols)) return true;
      }
      return false;
    }
    auto it = divisor_index.find(h);
    if (it == divisor_index.end()) return false;
    for (const Tuple* d : it->second) {
      if (ColumnsEqual(row, tail_cols, *d, s_cols)) return true;
    }
    return false;
  };

  const std::vector<Tuple>& rows = r.tuples();
  Relation out(m);
  uint64_t probes = 0;
  size_t i = 0;
  while (i < rows.size()) {
    size_t matched = 0;
    size_t j = i;
    for (; j < rows.size() &&
           ColumnsEqual(rows[j], head_cols, rows[i], head_cols);
         ++j) {
      ++probes;
      if (tail_in_divisor(rows[j])) ++matched;
    }
    if (matched == divisor.size()) out.Add(rows[i].Project(head_cols));
    i = j;
  }
  scope.CountProbes(probes);
  scope.CountOut(out.tuples().size());
  return out;
}

}  // namespace incdb
