#include "engine/stats.h"

#include <cstdio>

namespace incdb {

const char* EvalOpName(EvalOp op) {
  switch (op) {
    case EvalOp::kScan:
      return "scan";
    case EvalOp::kSelect:
      return "select";
    case EvalOp::kProject:
      return "project";
    case EvalOp::kProduct:
      return "product";
    case EvalOp::kHashJoin:
      return "hash-join";
    case EvalOp::kUnion:
      return "union";
    case EvalOp::kDiff:
      return "diff";
    case EvalOp::kIntersect:
      return "intersect";
    case EvalOp::kDivide:
      return "divide";
    case EvalOp::kDelta:
      return "delta";
    case EvalOp::kSqlBlock:
      return "sql-block";
    case EvalOp::kCTableProduct:
      return "ct-product";
    case EvalOp::kCTableDiff:
      return "ct-diff";
    case EvalOp::kCTableIntersect:
      return "ct-intersect";
    case EvalOp::kCTableJoin:
      return "ct-join";
    case EvalOp::kCTableExtract:
      return "ct-extract";
  }
  return "?";
}

uint64_t EvalStats::TotalProbes() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kNumEvalOps; ++i) {
    n += at(static_cast<EvalOp>(i)).probes;
  }
  return n;
}

uint64_t EvalStats::TotalTuplesIn() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kNumEvalOps; ++i) {
    n += at(static_cast<EvalOp>(i)).tuples_in;
  }
  return n;
}

uint64_t EvalStats::TotalTuplesOut() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kNumEvalOps; ++i) {
    n += at(static_cast<EvalOp>(i)).tuples_out;
  }
  return n;
}

uint64_t EvalStats::TotalNanos() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kNumEvalOps; ++i) {
    n += at(static_cast<EvalOp>(i)).nanos;
  }
  return n;
}

std::string EvalStats::ToString() const {
  std::string out =
      "  operator      calls         in        out     probes       us\n";
  char line[160];
  for (size_t i = 0; i < kNumEvalOps; ++i) {
    const OpCounters& c = at(static_cast<EvalOp>(i));
    if (c.calls == 0 && c.tuples_in == 0 && c.tuples_out == 0 &&
        c.probes == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  %-12s %6llu %10llu %10llu %10llu %8.1f\n",
                  EvalOpName(static_cast<EvalOp>(i)),
                  static_cast<unsigned long long>(c.calls),
                  static_cast<unsigned long long>(c.tuples_in),
                  static_cast<unsigned long long>(c.tuples_out),
                  static_cast<unsigned long long>(c.probes),
                  static_cast<double>(c.nanos) / 1e3);
    out += line;
  }
  if (cache_hits_ != 0 || cache_misses_ != 0) {
    std::snprintf(line, sizeof(line),
                  "  subplan-cache  hits %llu  misses %llu\n",
                  static_cast<unsigned long long>(cache_hits_),
                  static_cast<unsigned long long>(cache_misses_));
    out += line;
  }
  if (delta_applied_ != 0 || delta_fallbacks_ != 0) {
    std::snprintf(line, sizeof(line),
                  "  delta-eval     applied %llu  fallbacks %llu\n",
                  static_cast<unsigned long long>(delta_applied_),
                  static_cast<unsigned long long>(delta_fallbacks_));
    out += line;
  }
  if (cond_simplified_ != 0 || unsat_pruned_ != 0) {
    std::snprintf(line, sizeof(line),
                  "  cond-norm      simplified %llu  unsat-pruned %llu\n",
                  static_cast<unsigned long long>(cond_simplified_),
                  static_cast<unsigned long long>(unsat_pruned_));
    out += line;
  }
  if (worlds_counted_ != 0 || samples_drawn_ != 0 || exact_count_hits_ != 0) {
    std::snprintf(
        line, sizeof(line),
        "  counting       worlds %llu  samples %llu  exact-hits %llu\n",
        static_cast<unsigned long long>(worlds_counted_),
        static_cast<unsigned long long>(samples_drawn_),
        static_cast<unsigned long long>(exact_count_hits_));
    out += line;
  }
  if (batches_processed_ != 0 || rows_vectorized_ != 0) {
    std::snprintf(line, sizeof(line),
                  "  vectorized     batches %llu  rows %llu\n",
                  static_cast<unsigned long long>(batches_processed_),
                  static_cast<unsigned long long>(rows_vectorized_));
    out += line;
  }
  return out;
}

}  // namespace incdb
