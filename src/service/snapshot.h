// DatabaseSnapshot: an immutable, versioned, read-optimized view of a whole
// database instance — the unit the service layer shares between concurrent
// sessions.
//
// The core Relation is already copy-on-write: copies share one canonical
// tuple vector, hash index, columnar form and completeness memo, and
// mutators clone storage before writing. What a single-threaded caller gets
// for free, concurrent sessions do not: the shared caches are built lazily
// by const accessors, so two readers racing on a cold relation would both
// write the cache. DatabaseSnapshot::Make closes that gap by *forcing*
// every relation's lazy state on the publishing thread — after Make
// returns, every accessor a query evaluator touches is a read-only lookup,
// so any number of sessions can evaluate against the snapshot without
// synchronization. (Per-column join indexes are deliberately not forced:
// BuildColumnIndex fills a map shared by copies, so the subplan-cache layer
// builds those on private per-query literals instead.)
//
// A snapshot also carries the invalidation metadata the plan cache needs:
// its version (monotonically increasing across publishes), the version at
// which each relation last changed, and the version of the last publish
// that changed anything. Change detection reuses the CoW machinery —
// a relation is unchanged across a publish iff it still shares tuple
// storage with its previous incarnation (or both sides are empty; empty
// relations never share storage).

#ifndef INCDB_SERVICE_SNAPSHOT_H_
#define INCDB_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/database.h"

namespace incdb {

/// One published version of the database. Immutable after Make; always held
/// behind shared_ptr<const> so readers pin the version they started with.
class DatabaseSnapshot {
 public:
  /// Builds a snapshot of `db` at `version`, forcing every relation's lazy
  /// caches on the calling thread and diffing against `prev` (null for the
  /// seed snapshot) to update the last-changed map.
  static std::shared_ptr<const DatabaseSnapshot> Make(
      Database db, uint64_t version,
      const std::shared_ptr<const DatabaseSnapshot>& prev);

  const Database& db() const { return db_; }
  uint64_t version() const { return version_; }

  /// Version at which relation `name` last changed. 0 for relations that
  /// have been in place (or empty) since the seed snapshot.
  uint64_t LastChanged(const std::string& name) const;

  /// Version of the most recent publish that changed any relation (the seed
  /// version if nothing changed since). Whole-database dependents (plans
  /// with Δ, world-quantified notions) invalidate against this.
  uint64_t any_changed() const { return any_changed_; }

 private:
  DatabaseSnapshot(Database db, uint64_t version)
      : db_(std::move(db)), version_(version) {}

  Database db_;
  uint64_t version_;
  uint64_t any_changed_ = 0;
  std::map<std::string, uint64_t> last_changed_;
};

}  // namespace incdb

#endif  // INCDB_SERVICE_SNAPSHOT_H_
