#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <set>
#include <utility>

#include "algebra/optimize.h"
#include "algebra/parser.h"
#include "sql/parser.h"
#include "sql/to_algebra.h"

namespace incdb {

namespace {

// RAII admission gate over the in-flight counter. Rejection is immediate —
// the service never queues work it cannot start.
class InFlightGuard {
 public:
  InFlightGuard(std::atomic<int>* counter, int limit) : counter_(counter) {
    const int prev = counter_->fetch_add(1, std::memory_order_acq_rel);
    admitted_ = limit <= 0 || prev < limit;
    if (!admitted_) counter_->fetch_sub(1, std::memory_order_acq_rel);
  }
  ~InFlightGuard() {
    if (admitted_) counter_->fetch_sub(1, std::memory_order_acq_rel);
  }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

  bool admitted() const { return admitted_; }

 private:
  std::atomic<int>* counter_;
  bool admitted_ = false;
};

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

void CollectScans(const RAExprPtr& e, std::set<std::string>* scans,
                  bool* has_delta) {
  if (e == nullptr) return;
  if (e->kind() == RAExpr::Kind::kScan) scans->insert(e->relation_name());
  if (e->kind() == RAExpr::Kind::kDelta) *has_delta = true;
  CollectScans(e->left(), scans, has_delta);
  CollectScans(e->right(), scans, has_delta);
}

// The world-quantified notions range over valuations of the *whole*
// instance: the enumeration domain and null set change whenever any
// relation does, so their cached answers depend on everything.
bool NotionDependsOnWholeDatabase(AnswerNotion n) {
  return n == AnswerNotion::kCertainEnum || n == AnswerNotion::kPossible ||
         n == AnswerNotion::kCertainWithProbability;
}

// Digest of every request field besides the query that can change the
// answer or the reported counters. The engine's knobs preserve answers but
// not stats (e.g. the delta/fallback split varies with num_threads), and a
// hit returns the stored response verbatim — so all of them key the cache.
std::string OptionsIdentity(const QueryRequest& req) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "n%d s%d b%d f%d|w%d/%llu|e%d/%d/%zu/%d/%d/%d/%d|p%.17g/%llu/%llu/"
      "%.17g/%d/%d/%llu",
      static_cast<int>(req.notion), static_cast<int>(req.semantics),
      static_cast<int>(req.backend), req.force ? 1 : 0,
      req.world_options.fresh_constants,
      static_cast<unsigned long long>(req.world_options.max_worlds),
      req.eval.use_hash_kernels ? 1 : 0, req.eval.num_threads,
      req.eval.parallel_row_threshold, req.eval.optimize ? 1 : 0,
      req.eval.cache_subplans ? 1 : 0, req.eval.delta_eval ? 1 : 0,
      req.eval.vectorize ? 1 : 0, req.probability.threshold,
      static_cast<unsigned long long>(req.probability.sampling.samples),
      static_cast<unsigned long long>(req.probability.sampling.seed),
      req.probability.sampling.z, req.probability.sampling.num_threads,
      req.probability.force_sampling ? 1 : 0,
      static_cast<unsigned long long>(req.probability.max_exact_worlds));
  std::string out = buf;
  for (const Value& v : req.world_options.required_constants) {
    out += '|';
    out += v.ToString();
  }
  return out;
}

// How one request interacts with the cache.
struct CachePlan {
  bool cacheable = false;
  uint64_t key = 0;
  std::string identity;
  std::vector<std::string> scans;  // sorted unique
  bool depends_on_all = false;
  RAExprPtr parsed_ra;  // set when the service parsed RA text itself
};

Result<CachePlan> AnalyzeRequest(const QueryRequest& req) {
  CachePlan out;

  // Requests using the deprecated input shim pass through uncached; the
  // engine resolves (or rejects) them.
  const bool deprecated_used = !req.ra_text.empty() || !req.sql_text.empty() ||
                               req.ra != nullptr || req.sql != nullptr;
  if (deprecated_used) return out;

  RAExprPtr plan;
  switch (req.input.kind()) {
    case QueryInput::Kind::kRaText: {
      INCDB_ASSIGN_OR_RETURN(plan, ParseRA(req.input.text()));
      out.parsed_ra = plan;
      break;
    }
    case QueryInput::Kind::kRa:
      plan = req.input.ra();
      break;
    case QueryInput::Kind::kSqlText: {
      // SQL caches by text. Its evaluator reads whatever FROM clauses and
      // subqueries name, so the entry conservatively depends on everything.
      out.cacheable = true;
      out.key = Mix(std::hash<std::string>{}(req.input.text()), 0x53514cull);
      out.identity = "sql:" + req.input.text();
      out.depends_on_all = true;
      return out;
    }
    default:
      // kSql ASTs have no stable textual identity here; kNone errors in the
      // engine. Both pass through uncached.
      return out;
  }
  if (plan == nullptr) return out;

  std::set<std::string> scans;
  bool has_delta = false;
  CollectScans(plan, &scans, &has_delta);
  out.cacheable = true;
  out.key = RAFingerprint(plan);
  out.identity = "ra:" + plan->ToString();
  out.depends_on_all = has_delta || NotionDependsOnWholeDatabase(req.notion);
  if (!out.depends_on_all) {
    out.scans.assign(scans.begin(), scans.end());
  }
  return out;
}

}  // namespace

Result<ServiceResponse> Session::Run(const QueryRequest& request) {
  return service_->Run(request);
}

Result<uint64_t> Session::Ingest(const std::vector<IngestRow>& batch) {
  return service_->Ingest(batch);
}

uint64_t Session::SnapshotVersion() const {
  return service_->SnapshotVersion();
}

IncDbService::IncDbService(Database db, ServiceLimits limits)
    : limits_(limits), cache_(limits.plan_cache_capacity) {
  snapshot_ = DatabaseSnapshot::Make(std::move(db), 1, nullptr);
  version_.store(1, std::memory_order_release);
  snapshots_published_.store(1, std::memory_order_relaxed);
}

std::shared_ptr<const DatabaseSnapshot> IncDbService::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

Result<ServiceResponse> IncDbService::Run(const QueryRequest& request) {
  InFlightGuard guard(&in_flight_, limits_.max_in_flight);
  if (!guard.admitted()) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "service overloaded: too many in-flight queries");
  }
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Pin the snapshot for the whole evaluation: everything below sees one
  // version no matter how many publishes land meanwhile.
  const std::shared_ptr<const DatabaseSnapshot> snap = CurrentSnapshot();

  // Map the admission budgets onto the engine's knobs (clamp down only).
  QueryRequest req = request;
  if (limits_.max_worlds_per_query > 0) {
    req.world_options.max_worlds =
        std::min(req.world_options.max_worlds, limits_.max_worlds_per_query);
  }
  if (limits_.max_threads_per_query > 0) {
    auto clamp = [this](int n) {
      return n == 0 ? limits_.max_threads_per_query
                    : std::min(n, limits_.max_threads_per_query);
    };
    req.eval.num_threads = clamp(req.eval.num_threads);
    req.probability.sampling.num_threads =
        clamp(req.probability.sampling.num_threads);
  }

  // The cache key covers the *clamped* request, so equal effective requests
  // share an entry regardless of how they were phrased.
  INCDB_ASSIGN_OR_RETURN(CachePlan cp, AnalyzeRequest(req));
  if (cp.cacheable) {
    cp.key = Mix(cp.key, std::hash<std::string>{}(OptionsIdentity(req)));
    cp.identity += '\x1f';
    cp.identity += OptionsIdentity(req);
    if (auto entry = cache_.Lookup(cp.key, cp.identity, *snap)) {
      queries_.fetch_add(1, std::memory_order_relaxed);
      if (request.eval.stats != nullptr) {
        request.eval.stats->Merge(entry->response.stats);
      }
      ServiceResponse out;
      out.response = entry->response;
      out.snapshot_version = snap->version();
      out.cache_hit = true;
      out.seconds = elapsed();
      return out;
    }
  }

  // Cold path: evaluate against the pinned snapshot. Reuse the parse the
  // analysis already did.
  QueryRequest engine_req = req;
  if (cp.parsed_ra != nullptr) {
    engine_req.input = QueryInput::Ra(cp.parsed_ra);
  }
  const QueryEngine engine(snap->db());
  INCDB_ASSIGN_OR_RETURN(QueryResponse resp, engine.Run(engine_req));
  queries_.fetch_add(1, std::memory_order_relaxed);

  if (limits_.max_result_rows > 0 &&
      resp.relation.size() > limits_.max_result_rows) {
    rejected_budget_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("result exceeds the row budget");
  }
  if (limits_.max_query_seconds > 0 && elapsed() > limits_.max_query_seconds) {
    rejected_budget_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("query exceeded the time budget");
  }

  if (cp.cacheable) {
    auto entry = std::make_shared<PlanCacheEntry>();
    entry->identity = std::move(cp.identity);
    entry->response = resp;
    entry->scans = std::move(cp.scans);
    entry->depends_on_all = cp.depends_on_all;
    entry->snapshot_version = snap->version();
    // Force the stored relation's caches so hit-path copies are read-only.
    entry->response.relation.tuples();
    entry->response.relation.HashIndex();
    entry->response.relation.IsComplete();
    cache_.Insert(cp.key, std::move(entry));
  }

  ServiceResponse out;
  out.response = std::move(resp);
  out.snapshot_version = snap->version();
  out.cache_hit = false;
  out.seconds = elapsed();
  return out;
}

Result<uint64_t> IncDbService::Ingest(const std::vector<IngestRow>& batch) {
  std::lock_guard<std::mutex> writer(write_mu_);
  const std::shared_ptr<const DatabaseSnapshot> snap = CurrentSnapshot();

  // Validate up front: Relation::Add aborts on arity mismatches, and a
  // half-applied batch must never publish.
  for (const IngestRow& row : batch) {
    if (row.relation.empty()) {
      return Status::InvalidArgument("ingest: empty relation name");
    }
    size_t expected = row.tuple.arity();
    if (snap->db().HasRelation(row.relation)) {
      expected = snap->db().GetRelation(row.relation).arity();
    } else if (snap->db().schema().HasRelation(row.relation)) {
      expected = *snap->db().schema().Arity(row.relation);
    }
    if (row.tuple.arity() != expected) {
      return Status::InvalidArgument(
          "ingest: arity mismatch for relation " + row.relation);
    }
  }

  Database next = snap->db();  // CoW: untouched relations stay shared
  for (const IngestRow& row : batch) next.AddTuple(row.relation, row.tuple);
  return Publish(std::move(next));
}

Result<uint64_t> IncDbService::Replace(Database db) {
  std::lock_guard<std::mutex> writer(write_mu_);
  return Publish(std::move(db));
}

uint64_t IncDbService::Publish(Database next) {
  const std::shared_ptr<const DatabaseSnapshot> prev = CurrentSnapshot();
  const uint64_t v = prev->version() + 1;
  // Forcing and diffing happen here, on the writer thread, before anyone
  // can see the snapshot.
  auto snap = DatabaseSnapshot::Make(std::move(next), v, prev);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = snap;
  }
  version_.store(v, std::memory_order_release);
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  // Eager sweep reclaims capacity; correctness never depends on it (lookup
  // re-validates against the reader's snapshot).
  cache_.Sweep(*snap);
  return v;
}

ServiceStats IncDbService::Stats() const {
  ServiceStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_budget = rejected_budget_.load(std::memory_order_relaxed);
  s.snapshots_published = snapshots_published_.load(std::memory_order_relaxed);
  s.invalidated_entries = cache_.invalidated();
  s.cache_entries = cache_.size();
  return s;
}

}  // namespace incdb
