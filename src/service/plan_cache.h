// PlanCache: the service's prepared-plan/result cache.
//
// A query answered against snapshot version V is a pure function of
// (query, notion, semantics, backend, every answer-affecting knob, V) — the
// engine's knobs are all bit-identity-preserving, but the *stats* they
// report are not, so the cache key covers them too and a hit returns the
// stored cold-run QueryResponse verbatim: relation, plan, optimized plan,
// stats, probabilities, everything.
//
// Keys are RAFingerprint-derived (structural hash of the parsed plan mixed
// with a digest of the request options); fingerprint collisions are guarded
// by an exact identity string stored in the entry. Invalidation is
// dependency-based and checked at lookup time against the *reader's*
// snapshot: an entry computed at version E is valid for a snapshot S iff no
// relation the plan scans changed after E (per S's last-changed map).
// Plans containing Δ, the world-quantified notions (certain-enum, possible,
// probabilistic — their world domain and null set depend on the whole
// instance), and SQL with no RA translation depend on every relation and
// invalidate whenever anything changed. Lookup-time validation makes
// publish/insert races harmless: a stale entry can never serve, whatever
// order sweeps and inserts land in. Publishes additionally Sweep the cache
// eagerly so dead entries don't occupy LRU capacity.

#ifndef INCDB_SERVICE_PLAN_CACHE_H_
#define INCDB_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/query_engine.h"
#include "service/snapshot.h"

namespace incdb {

/// One cached prepared query.
struct PlanCacheEntry {
  /// Exact textual identity of (query, options); guards key collisions.
  std::string identity;
  /// The cold-run response served verbatim on every hit. Its relation's
  /// tuple storage and hash index are forced before insertion, so hit-path
  /// copies are read-only for any number of concurrent sessions.
  QueryResponse response;
  /// Base relations the plan scans (sorted, unique). Empty when
  /// depends_on_all.
  std::vector<std::string> scans;
  /// Whole-database dependency (Δ plans, world-quantified notions,
  /// untranslatable SQL).
  bool depends_on_all = false;
  /// Snapshot version the entry was computed against.
  uint64_t snapshot_version = 0;

  /// True when no dependency changed after snapshot_version, per `snap`.
  bool ValidFor(const DatabaseSnapshot& snap) const;
};

/// Thread-safe LRU map: key → PlanCacheEntry. Capacity 0 disables caching.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// The entry for `key` when present, identity-matching, and valid for
  /// `snap`; null otherwise. Invalid entries are dropped on sight.
  std::shared_ptr<const PlanCacheEntry> Lookup(uint64_t key,
                                               const std::string& identity,
                                               const DatabaseSnapshot& snap);

  /// Inserts (or refreshes) the entry for `key`, evicting LRU overflow.
  void Insert(uint64_t key, std::shared_ptr<const PlanCacheEntry> entry);

  /// Drops every entry invalid for `snap`; returns how many were dropped.
  size_t Sweep(const DatabaseSnapshot& snap);

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;
  /// Entries dropped by Sweep or by lookup-time validation.
  uint64_t invalidated() const;

 private:
  struct Slot {
    std::shared_ptr<const PlanCacheEntry> entry;
    std::list<uint64_t>::iterator lru_it;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::unordered_map<uint64_t, Slot> slots_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidated_ = 0;
};

}  // namespace incdb

#endif  // INCDB_SERVICE_PLAN_CACHE_H_
