// IncDbService: an embeddable, thread-safe, long-running query service over
// one incomplete database (ROADMAP item 4).
//
// The one-shot tools construct a Database, run one query, and exit. The
// service keeps the database resident and serves many concurrent sessions:
//
//  * Snapshot isolation. The instance lives in an immutable versioned
//    DatabaseSnapshot (service/snapshot.h). Every query pins the current
//    snapshot for its whole evaluation, so readers never observe a torn
//    write; writers build the next snapshot off to the side (CoW relation
//    copies make untouched relations free) and publish it atomically.
//  * Prepared-plan caching. Responses are cached by structural plan
//    fingerprint + options digest (service/plan_cache.h) with pre-forced
//    result indexes; ingestion invalidates exactly the entries whose
//    scanned relations changed.
//  * Admission control. ServiceLimits maps per-query budgets onto the
//    engine's existing knobs — max_worlds, eval/sampling thread counts —
//    and adds a bounded in-flight-query gate, a result-row budget, and a
//    best-effort wall-clock budget. Over-budget work is refused with
//    kResourceExhausted, never queued or silently truncated.
//
// Sessions are cheap value handles (OpenSession); any number may run
// concurrently, each from its own thread. tools/incdb_serve wraps the same
// API in a newline-delimited socket protocol (docs/SERVICE.md).

#ifndef INCDB_SERVICE_SERVICE_H_
#define INCDB_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/database.h"
#include "engine/query_engine.h"
#include "service/plan_cache.h"
#include "service/snapshot.h"
#include "util/status.h"

namespace incdb {

/// Per-query admission budgets and service sizing. Zero means "no limit"
/// for every field except plan_cache_capacity (0 disables caching).
struct ServiceLimits {
  /// Queries evaluated concurrently; excess calls are rejected with
  /// kResourceExhausted immediately instead of queueing.
  int max_in_flight = 64;
  /// Ceiling on world_options.max_worlds — per-request budgets are clamped
  /// down to this, never raised.
  uint64_t max_worlds_per_query = 0;
  /// Responses with more result rows are rejected (after evaluation; the
  /// world budget is the pre-evaluation lever).
  uint64_t max_result_rows = 0;
  /// Best-effort wall-clock budget: queries that finish over it are
  /// rejected post hoc and not cached. The world budget bounds the work
  /// actually done; this backstops mispriced queries.
  double max_query_seconds = 0.0;
  /// Ceiling on eval.num_threads and probability.sampling.num_threads;
  /// "auto" (0) requests are pinned to the ceiling.
  int max_threads_per_query = 0;
  /// Prepared-plan/result cache entries kept (LRU).
  size_t plan_cache_capacity = 256;
};

/// Monotone service counters (one consistent sample per Stats() call).
struct ServiceStats {
  uint64_t queries = 0;            ///< admitted Run calls
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t rejected_overload = 0;  ///< in-flight gate refusals
  uint64_t rejected_budget = 0;    ///< row/time budget refusals
  uint64_t snapshots_published = 0;
  uint64_t invalidated_entries = 0;
  uint64_t cache_entries = 0;      ///< current cache size (not monotone)
};

/// A QueryResponse plus the service-level context it was answered in.
struct ServiceResponse {
  QueryResponse response;
  /// Version of the snapshot the answer was computed against.
  uint64_t snapshot_version = 0;
  /// True when the response was served from the plan cache.
  bool cache_hit = false;
  /// Wall-clock seconds inside the service (≈0 on a hit).
  double seconds = 0.0;
};

/// One tuple destined for one relation in an ingestion batch.
struct IngestRow {
  std::string relation;
  Tuple tuple;
};

class IncDbService;

/// One client's handle on the service. Sessions are cheap value types; use
/// each from one thread at a time, any number of sessions concurrently.
class Session {
 public:
  /// Answers one query against the snapshot current at call time.
  Result<ServiceResponse> Run(const QueryRequest& request);

  /// Atomically ingests a batch; returns the published snapshot version.
  Result<uint64_t> Ingest(const std::vector<IngestRow>& batch);

  /// Version the next Run will (at least) see.
  uint64_t SnapshotVersion() const;

  uint64_t id() const { return id_; }

 private:
  friend class IncDbService;
  Session(IncDbService* service, uint64_t id) : service_(service), id_(id) {}

  IncDbService* service_;
  uint64_t id_;
};

/// The service. Thread-safe; construct once, share freely.
class IncDbService {
 public:
  /// Takes ownership of `db` and publishes it as snapshot version 1.
  explicit IncDbService(Database db, ServiceLimits limits = {});

  Session OpenSession() { return Session(this, next_session_id_++); }

  /// Session-independent entry points (Session forwards here).
  Result<ServiceResponse> Run(const QueryRequest& request);
  Result<uint64_t> Ingest(const std::vector<IngestRow>& batch);

  /// Replaces the whole instance with `db`, published as a new snapshot.
  Result<uint64_t> Replace(Database db);

  /// The currently published snapshot (readers pin it by holding the ptr).
  std::shared_ptr<const DatabaseSnapshot> CurrentSnapshot() const;

  /// Version of the currently published snapshot.
  uint64_t SnapshotVersion() const {
    return version_.load(std::memory_order_acquire);
  }

  ServiceStats Stats() const;
  const ServiceLimits& limits() const { return limits_; }

 private:
  // Publishes `next` as the successor of the current snapshot and sweeps
  // the plan cache. Caller must hold write_mu_.
  uint64_t Publish(Database next);

  ServiceLimits limits_;
  PlanCache cache_;

  mutable std::mutex snapshot_mu_;  // guards snapshot_ (pointer swap only)
  std::shared_ptr<const DatabaseSnapshot> snapshot_;
  std::mutex write_mu_;  // serializes Ingest/Replace
  std::atomic<uint64_t> version_{0};

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<int> in_flight_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> rejected_budget_{0};
  std::atomic<uint64_t> snapshots_published_{0};
};

}  // namespace incdb

#endif  // INCDB_SERVICE_SERVICE_H_
