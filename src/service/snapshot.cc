#include "service/snapshot.h"

#include <utility>

namespace incdb {

namespace {

// Forces the lazy per-relation caches that query evaluation touches, so
// every later accessor call from a reader session is a pure lookup.
// Untouched relations share already-built caches with the previous
// snapshot, so forcing them is a no-op (EnsureCanonical sees a clean copy,
// HashIndex/Columnar see a non-null shared snapshot).
void ForceRelation(const Relation& rel) {
  rel.tuples();
  rel.HashIndex();
  rel.Columnar();
  rel.IsComplete();
}

}  // namespace

std::shared_ptr<const DatabaseSnapshot> DatabaseSnapshot::Make(
    Database db, uint64_t version,
    const std::shared_ptr<const DatabaseSnapshot>& prev) {
  std::shared_ptr<DatabaseSnapshot> snap(
      new DatabaseSnapshot(std::move(db), version));
  for (const auto& [name, rel] : snap->db_.relations()) ForceRelation(rel);

  if (prev == nullptr) {
    // Seed snapshot: nothing to diff against; whole-database dependents
    // computed on it are valid until the first real change.
    snap->any_changed_ = version;
    return snap;
  }

  snap->last_changed_ = prev->last_changed_;
  snap->any_changed_ = prev->any_changed_;
  bool changed_any = false;
  for (const auto& [name, rel] : snap->db_.relations()) {
    const Relation& old = prev->db().GetRelation(name);
    const bool unchanged =
        rel.SharesStorageWith(old) || (rel.empty() && old.empty());
    if (!unchanged) {
      snap->last_changed_[name] = version;
      changed_any = true;
    }
  }
  // Relations present before but dropped (or absent) now changed too.
  for (const auto& [name, old] : prev->db().relations()) {
    if (!snap->db_.HasRelation(name) && !old.empty()) {
      snap->last_changed_[name] = version;
      changed_any = true;
    }
  }
  if (changed_any) snap->any_changed_ = version;
  return snap;
}

uint64_t DatabaseSnapshot::LastChanged(const std::string& name) const {
  auto it = last_changed_.find(name);
  return it == last_changed_.end() ? 0 : it->second;
}

}  // namespace incdb
