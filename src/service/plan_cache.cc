#include "service/plan_cache.h"

#include <utility>

namespace incdb {

bool PlanCacheEntry::ValidFor(const DatabaseSnapshot& snap) const {
  if (depends_on_all) return snapshot_version >= snap.any_changed();
  for (const std::string& name : scans) {
    if (snapshot_version < snap.LastChanged(name)) return false;
  }
  return true;
}

std::shared_ptr<const PlanCacheEntry> PlanCache::Lookup(
    uint64_t key, const std::string& identity, const DatabaseSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end() || it->second.entry->identity != identity) {
    ++misses_;
    return nullptr;
  }
  if (!it->second.entry->ValidFor(snap)) {
    lru_.erase(it->second.lru_it);
    slots_.erase(it);
    ++invalidated_;
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++hits_;
  return it->second.entry;
}

void PlanCache::Insert(uint64_t key,
                       std::shared_ptr<const PlanCacheEntry> entry) {
  if (capacity_ == 0 || entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  slots_.emplace(key, Slot{std::move(entry), lru_.begin()});
  while (slots_.size() > capacity_) {
    slots_.erase(lru_.back());
    lru_.pop_back();
  }
}

size_t PlanCache::Sweep(const DatabaseSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second.entry->ValidFor(snap)) {
      ++it;
      continue;
    }
    lru_.erase(it->second.lru_it);
    it = slots_.erase(it);
    ++dropped;
  }
  invalidated_ += dropped;
  return dropped;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t PlanCache::invalidated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalidated_;
}

}  // namespace incdb
