// incdb — umbrella header.
//
// A C++ library for querying incomplete databases with correct certain
// answers, implementing the framework of:
//
//   Leonid Libkin. "Incomplete Data: What Went Wrong, and How to Fix It."
//   PODS 2014.
//
// Layering (bottom-up):
//   util/     — Status/Result, strings, deterministic PRNG, thread pool
//   core/     — values, marked nulls, relations, databases, valuations,
//               OWA/CWA/WCWA semantics, homomorphisms, information
//               orderings, direct products, possible-world enumeration
//   algebra/  — relational algebra (σπ×∪−∩÷Δ), fragment classification,
//               naïve / SQL-3VL evaluation, certain answers
//   logic/    — FO formulas, model checking, diagram formulas δ_D,
//               conjunctive queries, tableau duality, containment
//   ctables/  — conditional tables and the Imieliński–Lipski algebra
//   counting/ — probabilistic answers: exact world counting by independence
//               factoring, seeded Monte-Carlo valuation sampling with
//               Wilson confidence intervals
//   sql/      — SQL subset: parser, 3VL & naïve evaluation, certain-answer
//               rewriting
//   exchange/ — st-tgd schema mappings and the naïve chase
//   repr/     — certainty as object (glb) and as knowledge (theory), domain
//               laws of the paper's abstract representation systems
//   service/  — long-running multi-session query service: versioned
//               database snapshots, prepared-plan cache, admission control
//   workload/ — deterministic workload generators (naïve and c-table)
//   testing/  — differential fuzzing harness: random plan generator,
//               multi-configuration oracle, case shrinking, .inc corpus

#ifndef INCDB_INCDB_H_
#define INCDB_INCDB_H_

#include "algebra/ast.h"
#include "algebra/certain.h"
#include "algebra/classify.h"
#include "algebra/eval.h"
#include "algebra/parser.h"
#include "algebra/eval_3vl.h"
#include "algebra/optimize.h"
#include "algebra/predicate.h"
#include "constraints/fd.h"
#include "core/core_of.h"
#include "core/database.h"
#include "core/homomorphism.h"
#include "core/io.h"
#include "core/ordering.h"
#include "core/possible_worlds.h"
#include "core/product.h"
#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "core/valuation.h"
#include "core/value.h"
#include "counting/probabilistic.h"
#include "counting/sampler.h"
#include "counting/world_count.h"
#include "ctables/cio.h"
#include "ctables/condition.h"
#include "ctables/ctable.h"
#include "ctables/ctable_algebra.h"
#include "cqa/repairs.h"
#include "engine/delta_eval.h"
#include "engine/kernels.h"
#include "engine/query_engine.h"
#include "engine/stats.h"
#include "engine/subplan_cache.h"
#include "exchange/chase.h"
#include "exchange/general_chase.h"
#include "exchange/mapping.h"
#include "logic/containment.h"
#include "logic/cq.h"
#include "logic/diagram.h"
#include "logic/formula.h"
#include "logic/model_check.h"
#include "logic/rule_parser.h"
#include "repr/certain_knowledge.h"
#include "repr/certain_object.h"
#include "repr/domain_laws.h"
#include "sql/aggregate_bounds.h"
#include "sql/eval.h"
#include "sql/parser.h"
#include "service/plan_cache.h"
#include "service/service.h"
#include "service/snapshot.h"
#include "sql/rewrite.h"
#include "sql/to_algebra.h"
#include "testing/corpus.h"
#include "testing/fuzz_gen.h"
#include "testing/fuzzer.h"
#include "testing/oracle.h"
#include "testing/shrink.h"
#include "views/views.h"
#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

#endif  // INCDB_INCDB_H_
