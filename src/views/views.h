// Certain answers using materialized views (paper, Section 1 and the
// applications of Section 7; classical references: answering queries using
// views [1, 39]).
//
// Given CQ-defined views V_i and their materialized extents, the *inverse
// rules* construction builds a canonical incomplete database: each view
// tuple re-generates its definition's body with fresh marked nulls for the
// non-head (projected-away) variables. The canonical instance represents
// under OWA exactly the databases consistent with the view extents (sound
// views), so certain answers to a UCQ are its naïve evaluation over the
// canonical instance with null rows dropped — the same machinery as
// everywhere else in this library, which is precisely the paper's point.

#ifndef INCDB_VIEWS_VIEWS_H_
#define INCDB_VIEWS_VIEWS_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "logic/cq.h"

namespace incdb {

/// A materialized view: name, CQ definition, and extent.
struct MaterializedView {
  std::string name;
  /// Definition over the base schema; head arity must equal the extent's.
  ConjunctiveQuery definition;
  Relation extent{0};
};

/// The canonical incomplete database of the view extents (inverse rules):
/// one body instantiation per view tuple, fresh nulls per projected-away
/// variable per tuple.
Result<Database> CanonicalInstanceFromViews(
    const std::vector<MaterializedView>& views);

/// Certain answers (OWA, sound views) of a UCQ over the base schema, given
/// only the view extents.
Result<Relation> CertainAnswersUsingViews(
    const UnionOfCQs& q, const std::vector<MaterializedView>& views);

/// Consistency check: does the canonical instance reproduce at least the
/// given extents when the views are re-applied? (Sound views always do;
/// exposed for testing exactness.)
Result<bool> ViewsReproduceExtents(const std::vector<MaterializedView>& views);

}  // namespace incdb

#endif  // INCDB_VIEWS_VIEWS_H_
