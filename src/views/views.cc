#include "views/views.h"

#include <map>
#include <set>

#include "logic/containment.h"

namespace incdb {

Result<Database> CanonicalInstanceFromViews(
    const std::vector<MaterializedView>& views) {
  Database out;
  NullId next_null = 0;
  for (const MaterializedView& view : views) {
    const size_t head_arity = view.definition.head.size();
    if (view.extent.arity() != head_arity) {
      return Status::InvalidArgument(
          "extent arity mismatch for view " + view.name + ": definition head "
          "has " + std::to_string(head_arity) + " columns");
    }
    // Head variables (by var id) -> head position.
    std::map<VarId, size_t> head_pos;
    for (size_t i = 0; i < head_arity; ++i) {
      const FoTerm& t = view.definition.head[i];
      if (!t.is_var()) {
        return Status::Unsupported(
            "constant head terms in view definitions are not supported");
      }
      head_pos.emplace(t.var, i);
    }
    for (const Tuple& vt : view.extent.tuples()) {
      // Fresh nulls for the existential (projected-away) variables, one set
      // per view tuple.
      std::map<VarId, Value> env;
      for (const FoAtom& atom : view.definition.body) {
        for (const FoTerm& t : atom.terms) {
          if (!t.is_var()) continue;
          if (env.count(t.var) > 0) continue;
          auto hp = head_pos.find(t.var);
          if (hp != head_pos.end()) {
            env[t.var] = vt[hp->second];
          } else {
            env[t.var] = Value::Null(next_null++);
          }
        }
      }
      for (const FoAtom& atom : view.definition.body) {
        std::vector<Value> vals;
        vals.reserve(atom.terms.size());
        for (const FoTerm& t : atom.terms) {
          vals.push_back(t.is_var() ? env.at(t.var) : t.constant);
        }
        out.AddTuple(atom.relation, Tuple(std::move(vals)));
      }
    }
  }
  return out;
}

Result<Relation> CertainAnswersUsingViews(
    const UnionOfCQs& q, const std::vector<MaterializedView>& views) {
  INCDB_ASSIGN_OR_RETURN(Database canonical,
                         CanonicalInstanceFromViews(views));
  return CertainOwaAnswers(q, canonical);
}

Result<bool> ViewsReproduceExtents(
    const std::vector<MaterializedView>& views) {
  INCDB_ASSIGN_OR_RETURN(Database canonical,
                         CanonicalInstanceFromViews(views));
  for (const MaterializedView& view : views) {
    INCDB_ASSIGN_OR_RETURN(Relation recomputed,
                           EvalCQ(view.definition, canonical));
    // Every extent tuple must reappear (the nulls may add more).
    for (const Tuple& t : view.extent.tuples()) {
      if (!recomputed.Contains(t)) return false;
    }
  }
  return true;
}

}  // namespace incdb
