// Schema mappings: source-to-target tuple-generating dependencies (st-tgds),
// the rules of the paper's data-interoperability motivation (Section 1):
//
//   Order(i, p) → Cust(x), Pref(x, p)
//
// formally ∀ī,p̄ ( body(ī,p̄) → ∃x̄ head(ī,p̄,x̄) ). Variables appearing only in
// the head are existential and produce marked nulls when chased.

#ifndef INCDB_EXCHANGE_MAPPING_H_
#define INCDB_EXCHANGE_MAPPING_H_

#include <string>
#include <vector>

#include "logic/cq.h"

namespace incdb {

/// One source-to-target tgd.
struct Tgd {
  std::vector<FoAtom> body;  ///< over the source schema
  std::vector<FoAtom> head;  ///< over the target schema

  /// Head variables not occurring in the body (the ∃-variables), sorted.
  std::vector<VarId> ExistentialVars() const;
  /// Body variables, sorted.
  std::vector<VarId> BodyVars() const;

  std::string ToString() const;
};

/// A schema mapping: a finite set of st-tgds.
struct SchemaMapping {
  std::vector<Tgd> tgds;

  /// Structural validation: nonempty bodies/heads, no body-only relations in
  /// heads sharing names with sources is allowed but flagged elsewhere.
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace incdb

#endif  // INCDB_EXCHANGE_MAPPING_H_
