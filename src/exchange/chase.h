// The naïve chase for st-tgd schema mappings.
//
// For every tgd and every homomorphism of its body into the source, the head
// is materialized in the target with fresh marked nulls for the existential
// variables (one per variable per trigger). The result is the canonical
// universal solution of the data-exchange setting — every other solution
// receives a homomorphism from it [Fagin-Kolaitis-Miller-Popa].

#ifndef INCDB_EXCHANGE_CHASE_H_
#define INCDB_EXCHANGE_CHASE_H_

#include "exchange/mapping.h"

namespace incdb {

/// Output of a chase run.
struct ChaseResult {
  Database target;
  size_t triggers_fired = 0;
  size_t nulls_created = 0;
};

/// Runs the naïve chase of `mapping` on `source`. The source may itself
/// contain nulls (they are treated as values by body matching). Fresh nulls
/// start above any null of the source.
Result<ChaseResult> ChaseStTgds(const Database& source,
                                const SchemaMapping& mapping);

/// True iff `candidate` is a solution: every tgd trigger in `source` has its
/// head satisfied in `candidate` (existential variables witnessed).
Result<bool> IsSolution(const Database& source, const SchemaMapping& mapping,
                        const Database& candidate);

/// True iff `universal` is a solution and maps homomorphically into
/// `other_solution` (the universality check, one solution at a time).
Result<bool> IsUniversalFor(const Database& source,
                            const SchemaMapping& mapping,
                            const Database& universal,
                            const Database& other_solution);

}  // namespace incdb

#endif  // INCDB_EXCHANGE_CHASE_H_
