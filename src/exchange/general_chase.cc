#include "exchange/general_chase.h"

#include <map>
#include <set>

#include "util/strings.h"

namespace incdb {
namespace {

// All bindings of `body` over `db`, columns in `vars` order.
Result<Relation> Matches(const std::vector<FoAtom>& body, const Database& db,
                         const std::vector<VarId>& vars) {
  ConjunctiveQuery q;
  q.body = body;
  for (VarId v : vars) q.head.push_back(FoTerm::Var(v));
  return EvalCQ(q, db);
}

std::vector<VarId> VarsOf(const std::vector<FoAtom>& atoms) {
  std::set<VarId> vars;
  for (const FoAtom& a : atoms) {
    for (const FoTerm& t : a.terms) {
      if (t.is_var()) vars.insert(t.var);
    }
  }
  return std::vector<VarId>(vars.begin(), vars.end());
}

// Is the tgd head satisfied for the given body binding? (standard chase
// trigger-activity test)
Result<bool> HeadSatisfied(const Tgd& tgd, const Database& db,
                           const std::vector<VarId>& body_vars,
                           const Tuple& binding) {
  ConjunctiveQuery q;
  std::map<VarId, Value> env;
  for (size_t i = 0; i < body_vars.size(); ++i) {
    env[body_vars[i]] = binding[i];
  }
  for (const FoAtom& atom : tgd.head) {
    FoAtom inst = atom;
    for (FoTerm& t : inst.terms) {
      if (t.is_var()) {
        auto it = env.find(t.var);
        if (it != env.end()) t = FoTerm::Const(it->second);
      }
    }
    q.body.push_back(std::move(inst));
  }
  INCDB_ASSIGN_OR_RETURN(Relation found, EvalCQ(q, db));
  return !found.empty();
}

// Substitutes value `from` by `to` everywhere in the instance.
Database SubstituteValue(const Database& db, const Value& from,
                         const Value& to) {
  Database out(db.schema());
  for (const auto& [name, rel] : db.relations()) {
    Relation* target = out.MutableRelation(name, rel.arity());
    for (const Tuple& t : rel.tuples()) {
      std::vector<Value> vals;
      vals.reserve(t.arity());
      for (const Value& v : t.values()) {
        vals.push_back(v == from ? to : v);
      }
      target->Add(Tuple(std::move(vals)));
    }
  }
  return out;
}

}  // namespace

std::string Egd::ToString() const {
  std::vector<std::string> bs;
  for (const FoAtom& a : body) bs.push_back(a.ToString());
  return Join(bs, ", ") + " -> x" + std::to_string(lhs) + " = x" +
         std::to_string(rhs);
}

Result<GeneralChaseResult> Chase(const Database& instance,
                                 const DependencySet& deps,
                                 const GeneralChaseOptions& options) {
  GeneralChaseResult result;
  result.instance = instance;
  NullId next_null = instance.FreshNullId();
  size_t steps = 0;

  bool changed = true;
  while (changed) {
    changed = false;

    // --- egd steps first (cheaper, and unification may kill tgd triggers).
    for (const Egd& egd : deps.egds) {
      const std::vector<VarId> vars = VarsOf(egd.body);
      // Map lhs/rhs to binding columns.
      size_t li = vars.size(), ri = vars.size();
      for (size_t i = 0; i < vars.size(); ++i) {
        if (vars[i] == egd.lhs) li = i;
        if (vars[i] == egd.rhs) ri = i;
      }
      if (li == vars.size() || ri == vars.size()) {
        return Status::InvalidArgument("egd equates variables not in body: " +
                                       egd.ToString());
      }
      bool fired = true;
      while (fired) {
        fired = false;
        INCDB_ASSIGN_OR_RETURN(Relation m,
                               Matches(egd.body, result.instance, vars));
        for (const Tuple& b : m.tuples()) {
          const Value& a = b[li];
          const Value& c = b[ri];
          if (a == c) continue;
          if (a.is_const() && c.is_const()) {
            result.failed = true;
            return result;  // hard violation: no solution exists
          }
          if (++steps > options.max_steps) {
            return Status::ResourceExhausted("chase exceeded max_steps");
          }
          ++result.egd_steps;
          // Prefer substituting a null by the other value.
          const Value& from = a.is_null() ? a : c;
          const Value& to = a.is_null() ? c : a;
          result.instance = SubstituteValue(result.instance, from, to);
          changed = true;
          fired = true;
          break;  // bindings are stale after substitution
        }
      }
    }

    // --- tgd steps (standard chase: fire only unsatisfied triggers).
    for (const Tgd& tgd : deps.tgds) {
      const std::vector<VarId> body_vars = tgd.BodyVars();
      const std::vector<VarId> exist_vars = tgd.ExistentialVars();
      INCDB_ASSIGN_OR_RETURN(Relation m,
                             Matches(tgd.body, result.instance, body_vars));
      for (const Tuple& binding : m.tuples()) {
        INCDB_ASSIGN_OR_RETURN(
            bool satisfied,
            HeadSatisfied(tgd, result.instance, body_vars, binding));
        if (satisfied) continue;
        if (++steps > options.max_steps) {
          return Status::ResourceExhausted("chase exceeded max_steps");
        }
        ++result.tgd_steps;
        std::map<VarId, Value> env;
        for (size_t i = 0; i < body_vars.size(); ++i) {
          env[body_vars[i]] = binding[i];
        }
        for (VarId v : exist_vars) env[v] = Value::Null(next_null++);
        for (const FoAtom& atom : tgd.head) {
          std::vector<Value> vals;
          vals.reserve(atom.terms.size());
          for (const FoTerm& t : atom.terms) {
            vals.push_back(t.is_var() ? env.at(t.var) : t.constant);
          }
          result.instance.AddTuple(atom.relation, Tuple(std::move(vals)));
        }
        changed = true;
      }
    }
  }
  return result;
}

bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds) {
  // Positions: (relation, column index).
  using Position = std::pair<std::string, size_t>;
  std::set<Position> positions;
  // Edges: regular and special.
  std::map<Position, std::set<Position>> regular;
  std::map<Position, std::set<Position>> special;

  auto positions_of = [&](const std::vector<FoAtom>& atoms, VarId v) {
    std::vector<Position> out;
    for (const FoAtom& a : atoms) {
      for (size_t i = 0; i < a.terms.size(); ++i) {
        if (a.terms[i].is_var() && a.terms[i].var == v) {
          out.push_back({a.relation, i});
        }
      }
    }
    return out;
  };

  for (const Tgd& tgd : tgds) {
    for (const FoAtom& a : tgd.body) {
      for (size_t i = 0; i < a.terms.size(); ++i) {
        positions.insert({a.relation, i});
      }
    }
    for (const FoAtom& a : tgd.head) {
      for (size_t i = 0; i < a.terms.size(); ++i) {
        positions.insert({a.relation, i});
      }
    }
    const std::vector<VarId> body_vars = tgd.BodyVars();
    const std::vector<VarId> exist_vars = tgd.ExistentialVars();
    const std::set<VarId> exist_set(exist_vars.begin(), exist_vars.end());
    for (VarId x : body_vars) {
      const auto from_positions = positions_of(tgd.body, x);
      // Regular edges: x propagated into the head.
      for (const Position& p : from_positions) {
        for (const Position& q : positions_of(tgd.head, x)) {
          regular[p].insert(q);
        }
        // Special edges: from every body position of x to every position of
        // every existential variable in the head.
        for (VarId y : exist_vars) {
          for (const Position& q : positions_of(tgd.head, y)) {
            special[p].insert(q);
          }
        }
      }
    }
    (void)exist_set;
  }

  // Weakly acyclic iff no cycle containing a special edge. Check: for each
  // special edge (u, v), v must not reach u through regular ∪ special edges.
  auto reaches = [&](const Position& from, const Position& to) {
    std::set<Position> seen;
    std::vector<Position> stack = {from};
    while (!stack.empty()) {
      Position cur = stack.back();
      stack.pop_back();
      if (cur == to) return true;
      if (!seen.insert(cur).second) continue;
      auto push_all = [&](const std::map<Position, std::set<Position>>& g) {
        auto it = g.find(cur);
        if (it == g.end()) return;
        for (const Position& n : it->second) stack.push_back(n);
      };
      push_all(regular);
      push_all(special);
    }
    return false;
  };

  for (const auto& [u, targets] : special) {
    for (const Position& v : targets) {
      if (reaches(v, u) || u == v) return false;
    }
  }
  return true;
}

}  // namespace incdb
