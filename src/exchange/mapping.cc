#include "exchange/mapping.h"

#include <set>

#include "util/strings.h"

namespace incdb {

std::vector<VarId> Tgd::BodyVars() const {
  std::set<VarId> vars;
  for (const FoAtom& a : body) {
    for (const FoTerm& t : a.terms) {
      if (t.is_var()) vars.insert(t.var);
    }
  }
  return std::vector<VarId>(vars.begin(), vars.end());
}

std::vector<VarId> Tgd::ExistentialVars() const {
  std::set<VarId> body_vars;
  for (const FoAtom& a : body) {
    for (const FoTerm& t : a.terms) {
      if (t.is_var()) body_vars.insert(t.var);
    }
  }
  std::set<VarId> exist;
  for (const FoAtom& a : head) {
    for (const FoTerm& t : a.terms) {
      if (t.is_var() && body_vars.count(t.var) == 0) exist.insert(t.var);
    }
  }
  return std::vector<VarId>(exist.begin(), exist.end());
}

std::string Tgd::ToString() const {
  std::vector<std::string> bs;
  for (const FoAtom& a : body) bs.push_back(a.ToString());
  std::vector<std::string> hs;
  for (const FoAtom& a : head) hs.push_back(a.ToString());
  return Join(bs, ", ") + " -> " + Join(hs, ", ");
}

Status SchemaMapping::Validate() const {
  for (const Tgd& tgd : tgds) {
    if (tgd.body.empty()) {
      return Status::InvalidArgument("tgd with empty body: " + tgd.ToString());
    }
    if (tgd.head.empty()) {
      return Status::InvalidArgument("tgd with empty head: " + tgd.ToString());
    }
  }
  return Status::OK();
}

std::string SchemaMapping::ToString() const {
  std::vector<std::string> parts;
  for (const Tgd& tgd : tgds) parts.push_back(tgd.ToString());
  return Join(parts, "\n");
}

}  // namespace incdb
