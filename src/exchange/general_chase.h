// The general chase: target tgds and egds over instances with marked nulls.
//
// Extends the source-to-target chase (chase.h) to full dependency sets:
//
//  * tgds ∀x̄ (φ(x̄) → ∃ȳ ψ(x̄,ȳ)) — the *standard* chase fires a trigger only
//    if the head is not already witnessed, so weakly acyclic sets terminate;
//  * egds ∀x̄ (φ(x̄) → x_i = x_j) — triggers unify values: null/constant and
//    null/null collapse (substituting throughout the instance), while
//    constant/constant conflicts fail the chase (no solution).
//
// Weak acyclicity (Fagin-Kolaitis-Miller-Popa) is checked by
// `IsWeaklyAcyclic`: the position graph must have no cycle through a
// special (existential) edge; chasing a weakly acyclic set always
// terminates. A step cap guards non-terminating sets.

#ifndef INCDB_EXCHANGE_GENERAL_CHASE_H_
#define INCDB_EXCHANGE_GENERAL_CHASE_H_

#include "exchange/mapping.h"

namespace incdb {

/// An equality-generating dependency: body → lhs_var = rhs_var.
struct Egd {
  std::vector<FoAtom> body;
  VarId lhs = 0;
  VarId rhs = 0;

  std::string ToString() const;
};

/// A dependency set for the general chase.
struct DependencySet {
  std::vector<Tgd> tgds;
  std::vector<Egd> egds;
};

/// Outcome of a general chase run.
struct GeneralChaseResult {
  Database instance;
  size_t tgd_steps = 0;
  size_t egd_steps = 0;
  /// True if an egd required equating two distinct constants: the
  /// dependencies are unsatisfiable over this instance (no solution).
  bool failed = false;
};

struct GeneralChaseOptions {
  /// Abort (kResourceExhausted) after this many chase steps.
  size_t max_steps = 100'000;
};

/// Chases `instance` with `deps` until no trigger is active, the chase
/// fails on an egd, or the step cap is hit.
Result<GeneralChaseResult> Chase(const Database& instance,
                                 const DependencySet& deps,
                                 const GeneralChaseOptions& options = {});

/// Weak acyclicity of the tgd set (egds never threaten termination).
bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds);

}  // namespace incdb

#endif  // INCDB_EXCHANGE_GENERAL_CHASE_H_
