#include "exchange/chase.h"

#include <map>

#include "core/homomorphism.h"

namespace incdb {
namespace {

// All bindings of a tgd body over `db`, one relation row per binding, with
// columns in BodyVars() order.
Result<Relation> BodyMatches(const Tgd& tgd, const Database& db,
                             const std::vector<VarId>& body_vars) {
  ConjunctiveQuery q;
  q.body = tgd.body;
  for (VarId v : body_vars) q.head.push_back(FoTerm::Var(v));
  return EvalCQ(q, db);
}

}  // namespace

Result<ChaseResult> ChaseStTgds(const Database& source,
                                const SchemaMapping& mapping) {
  INCDB_RETURN_IF_ERROR(mapping.Validate());
  ChaseResult result;
  NullId next_null = source.FreshNullId();

  for (const Tgd& tgd : mapping.tgds) {
    const std::vector<VarId> body_vars = tgd.BodyVars();
    const std::vector<VarId> exist_vars = tgd.ExistentialVars();
    INCDB_ASSIGN_OR_RETURN(Relation matches,
                           BodyMatches(tgd, source, body_vars));
    for (const Tuple& binding : matches.tuples()) {
      ++result.triggers_fired;
      // Environment: body vars from the binding, existential vars fresh.
      std::map<VarId, Value> env;
      for (size_t i = 0; i < body_vars.size(); ++i) {
        env[body_vars[i]] = binding[i];
      }
      for (VarId v : exist_vars) {
        env[v] = Value::Null(next_null++);
        ++result.nulls_created;
      }
      for (const FoAtom& atom : tgd.head) {
        std::vector<Value> vals;
        vals.reserve(atom.terms.size());
        for (const FoTerm& t : atom.terms) {
          vals.push_back(t.is_var() ? env.at(t.var) : t.constant);
        }
        result.target.AddTuple(atom.relation, Tuple(std::move(vals)));
      }
    }
  }
  return result;
}

Result<bool> IsSolution(const Database& source, const SchemaMapping& mapping,
                        const Database& candidate) {
  INCDB_RETURN_IF_ERROR(mapping.Validate());
  for (const Tgd& tgd : mapping.tgds) {
    const std::vector<VarId> body_vars = tgd.BodyVars();
    INCDB_ASSIGN_OR_RETURN(Relation matches,
                           BodyMatches(tgd, source, body_vars));
    for (const Tuple& binding : matches.tuples()) {
      // Build the Boolean CQ: head atoms with body vars substituted by the
      // binding; existential vars stay variables.
      ConjunctiveQuery q;
      std::map<VarId, Value> env;
      for (size_t i = 0; i < body_vars.size(); ++i) {
        env[body_vars[i]] = binding[i];
      }
      for (const FoAtom& atom : tgd.head) {
        FoAtom inst = atom;
        for (FoTerm& t : inst.terms) {
          if (t.is_var()) {
            auto it = env.find(t.var);
            if (it != env.end()) t = FoTerm::Const(it->second);
          }
        }
        q.body.push_back(std::move(inst));
      }
      INCDB_ASSIGN_OR_RETURN(Relation found, EvalCQ(q, candidate));
      if (found.empty()) return false;
    }
  }
  return true;
}

Result<bool> IsUniversalFor(const Database& source,
                            const SchemaMapping& mapping,
                            const Database& universal,
                            const Database& other_solution) {
  INCDB_ASSIGN_OR_RETURN(bool sol, IsSolution(source, mapping, universal));
  if (!sol) return false;
  INCDB_ASSIGN_OR_RETURN(bool other_sol,
                         IsSolution(source, mapping, other_solution));
  if (!other_sol) {
    return Status::InvalidArgument(
        "other_solution is not a solution of the mapping");
  }
  return HasHomomorphism(universal, other_solution);
}

}  // namespace incdb
