// fuzz_incdb — differential fuzzing harness for the incdb evaluators.
//
// Generates random incomplete databases and random RA plans, cross-checks
// every evaluator configuration through the DifferentialOracle, shrinks any
// failing case, and writes it as a replayable .inc corpus file.
//
//   fuzz_incdb --seed=1 --iterations=500                # bounded run
//   fuzz_incdb --time_budget_s=600 --corpus_dir=corpus  # nightly soak
//   fuzz_incdb --replay=tests/corpus                    # re-check corpus
//   fuzz_incdb --fragment=positive --iterations=200     # one fragment only
//
// Exit status: 0 = no violations, 1 = violations found, 2 = bad usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "incdb.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: fuzz_incdb [options]\n"
               "  --seed=N            PRNG seed (default 1)\n"
               "  --iterations=N      iteration budget (default 500; 0 = "
               "unbounded, needs --time_budget_s)\n"
               "  --time_budget_s=S   wall-clock budget in seconds (default "
               "off)\n"
               "  --fragment=F        positive | racwa | full (repeatable; "
               "default: all)\n"
               "  --max_worlds=N      skip cases with more CWA worlds "
               "(default 20000)\n"
               "  --threads=N         threads for parallel configs (default "
               "4)\n"
               "  --corpus_dir=DIR    write shrunk failing cases here\n"
               "  --replay=DIR        replay *.inc corpus instead of "
               "fuzzing\n"
               "  --no_shrink         report failures unshrunk\n"
               "  --no_ctables        skip the c-table grounding check\n"
               "  --no_ctable_backend skip the c-table-native certain/"
               "possible backend cross-check\n"
               "  --no_vectorize      skip the batch-vectorized columnar "
               "configurations\n"
               "  --no_service        skip the IncDbService session "
               "cross-check\n"
               "  --no_check_sampling skip the probabilistic-notion "
               "cross-check\n"
               "  --samples=N         Monte-Carlo samples per sampling "
               "cross-check (default 1000)\n");
}

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

void PrintSummary(const incdb::FuzzSummary& summary) {
  std::printf("cases run:      %llu\n",
              static_cast<unsigned long long>(summary.iterations_run));
  std::printf("cases skipped:  %llu (world budget)\n",
              static_cast<unsigned long long>(summary.cases_skipped));
  std::printf("checks skipped: %llu\n",
              static_cast<unsigned long long>(summary.checks_skipped));
  std::printf("failures:       %zu\n", summary.failures.size());
  for (const incdb::FuzzFailure& f : summary.failures) {
    std::printf("\n== failure at iteration %llu ==\n",
                static_cast<unsigned long long>(f.iteration));
    if (!f.corpus_path.empty()) {
      std::printf("corpus: %s\n", f.corpus_path.c_str());
    }
    for (const std::string& v : f.violations) {
      std::printf("  violation: %s\n", v.c_str());
    }
    if (f.shrunk.plan != nullptr) {
      std::printf("  query: %s\n", f.shrunk.plan->ToString().c_str());
      std::printf("%s", incdb::DumpDatabase(f.shrunk.db).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  incdb::FuzzConfig config;
  std::string replay_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--seed=")) {
      if (!ParseUint(v, &config.seed)) return Usage(), 2;
    } else if (const char* v = value("--iterations=")) {
      if (!ParseUint(v, &config.iterations)) return Usage(), 2;
    } else if (const char* v = value("--time_budget_s=")) {
      config.time_budget_s = std::atof(v);
    } else if (const char* v = value("--fragment=")) {
      const std::string f = incdb::ToLower(v);
      if (f == "positive" || f == "ucq") {
        config.fragments.push_back(incdb::QueryClass::kPositive);
      } else if (f == "racwa" || f == "pos_forall_g") {
        config.fragments.push_back(incdb::QueryClass::kRAcwa);
      } else if (f == "full" || f == "fullra") {
        config.fragments.push_back(incdb::QueryClass::kFullRA);
      } else {
        std::fprintf(stderr, "unknown fragment: %s\n", v);
        return Usage(), 2;
      }
    } else if (const char* v = value("--max_worlds=")) {
      if (!ParseUint(v, &config.oracle.max_worlds_per_case)) {
        return Usage(), 2;
      }
    } else if (const char* v = value("--threads=")) {
      config.oracle.num_threads = std::atoi(v);
    } else if (const char* v = value("--corpus_dir=")) {
      config.corpus_dir = v;
    } else if (const char* v = value("--replay=")) {
      replay_dir = v;
    } else if (arg == "--no_shrink") {
      config.shrink = false;
    } else if (arg == "--no_ctables") {
      config.oracle.check_ctables = false;
    } else if (arg == "--no_ctable_backend") {
      config.oracle.check_ctable_backend = false;
    } else if (arg == "--no_vectorize") {
      config.oracle.check_vectorized = false;
    } else if (arg == "--no_service") {
      config.oracle.check_service = false;
    } else if (arg == "--no_check_sampling") {
      config.oracle.check_sampling = false;
    } else if (const char* v = value("--samples=")) {
      if (!ParseUint(v, &config.oracle.sampling_samples)) return Usage(), 2;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(), 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(), 2;
    }
  }

  if (!replay_dir.empty()) {
    if (incdb::ListCorpusFiles(replay_dir).empty()) {
      std::fprintf(stderr, "no .inc files under %s\n", replay_dir.c_str());
      return 2;
    }
    std::printf("replaying corpus %s\n", replay_dir.c_str());
    const incdb::FuzzSummary summary =
        incdb::ReplayCorpus(replay_dir, config.oracle);
    PrintSummary(summary);
    return summary.ok() ? 0 : 1;
  }

  if (config.iterations == 0 && config.time_budget_s <= 0) {
    std::fprintf(stderr, "need --iterations or --time_budget_s\n");
    return Usage(), 2;
  }

  std::printf("fuzzing: seed=%llu iterations=%llu time_budget_s=%.0f\n",
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.iterations),
              config.time_budget_s);
  const incdb::FuzzSummary summary = incdb::RunFuzz(config);
  PrintSummary(summary);
  return summary.ok() ? 0 : 1;
}
