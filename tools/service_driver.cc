// service_driver — many-client load driver for incdb_serve.
//
//   service_driver --port=7433 --clients=16 --seconds=60
//
// Each client opens its own connection (= session), cycles through a query
// mix (defaults target the serve demo database; override with repeated
// --query= / --sql= flags), optionally interleaves ingestion batches, and
// validates every response against the protocol grammar. Reports
// throughput and latency percentiles.
//
// Exit status: 0 = clean run (admission-control rejections are protocol-
// conformant and only counted), 1 = protocol violation / connection
// failure / server-side error, 2 = bad usage.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: service_driver --port=N [options]\n"
               "  --host=ADDR         server address (default 127.0.0.1)\n"
               "  --clients=N         concurrent client connections "
               "(default 16)\n"
               "  --seconds=S         run duration (default 10)\n"
               "  --requests=N        per-client request cap (default 0 = "
               "until --seconds)\n"
               "  --ingest_every=K    every K-th request of each client is "
               "an ingest batch (default 0 = never)\n"
               "  --query=RA          add an RA query to the mix "
               "(repeatable; replaces the default demo mix)\n"
               "  --sql=SQL           add a SQL query to the mix "
               "(repeatable)\n");
}

// One entry of the workload mix: session-state lines to (re)send, then the
// timed query line.
struct WorkItem {
  std::vector<std::string> setup;
  std::string query;
};

std::vector<WorkItem> DemoMix() {
  // Targets the incdb_serve --demo schema: Order(o_id, product),
  // Pay(p_id, order_id, amount). The join is the paper's "products
  // certainly paid for".
  const std::string join = "proj{1}(sel[#0 = #3](Order x Pay))";
  return {
      {{"notion naive"}, "query proj{1}(Order)"},
      {{"notion certain-enum", "backend enumeration"}, "query " + join},
      {{"notion certain-enum", "backend ctable"}, "query " + join},
      {{"notion possible", "backend enumeration"}, "query " + join},
      {{"notion 3vl"}, "sql SELECT p_id FROM Pay WHERE amount > 50"},
      {{"notion certain-probability", "threshold 0.5"},
       "query " + join + " U proj{1}(Order)"},
  };
}

struct ClientResult {
  uint64_t queries = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  std::vector<double> latencies_ms;
  std::string first_error;
};

class Connection {
 public:
  bool Open(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
           0;
  }
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool SendLine(const std::string& line) {
    std::string data = line + "\n";
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* out) {
    out->clear();
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Reads one full response: any number of data lines then one terminator.
  // Returns "ok ..." / "error ..." or "" on protocol violation.
  std::string ReadResponse(std::string* violation) {
    std::string line;
    for (;;) {
      if (!ReadLine(&line)) {
        *violation = "connection closed mid-response";
        return "";
      }
      if (line.rfind("| ", 0) == 0 || line.rfind("p ", 0) == 0) continue;
      if (line.rfind("ok", 0) == 0 &&
          (line.size() == 2 || line[2] == ' ')) {
        return line;
      }
      if (line.rfind("error ", 0) == 0) return line;
      *violation = "unparseable response line: " + line;
      return "";
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct DriverConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  int clients = 16;
  double seconds = 10;
  uint64_t requests = 0;
  uint64_t ingest_every = 0;
  std::vector<WorkItem> mix;
};

void RunClient(const DriverConfig& config, int client_id,
               ClientResult* result) {
  Connection conn;
  if (!conn.Open(config.host, config.port)) {
    result->errors = 1;
    result->first_error = "connect failed";
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config.seconds));
  std::string violation;
  uint64_t sent = 0;
  auto fail = [&](const std::string& why) {
    ++result->errors;
    if (result->first_error.empty()) result->first_error = why;
  };
  // Exchanges one line for one response; false stops the client.
  auto exchange = [&](const std::string& line, std::string* terminator) {
    if (!conn.SendLine(line)) {
      fail("send failed");
      return false;
    }
    *terminator = conn.ReadResponse(&violation);
    if (terminator->empty()) {
      fail(violation);
      return false;
    }
    return true;
  };

  std::string term;
  while (std::chrono::steady_clock::now() < deadline &&
         (config.requests == 0 || sent < config.requests)) {
    const uint64_t n = sent++;
    if (config.ingest_every > 0 && n > 0 && n % config.ingest_every == 0) {
      // Complete tuples with client-unique ids: grows the instance without
      // growing the null count (world spaces stay bounded).
      const long long uid = 1000000 + 100000LL * client_id +
                            static_cast<long long>(n);
      if (!conn.SendLine("ingest 1")) return fail("send failed");
      if (!conn.SendLine("Pay " + std::to_string(uid) + " 1 55")) {
        return fail("send failed");
      }
      term = conn.ReadResponse(&violation);
      if (term.empty()) return fail(violation);
      if (term.rfind("error ", 0) == 0) return fail("ingest: " + term);
      continue;
    }
    const WorkItem& item = config.mix[n % config.mix.size()];
    for (const std::string& setup : item.setup) {
      if (!exchange(setup, &term)) return;
      if (term.rfind("error ", 0) == 0) return fail("setup: " + term);
    }
    const auto start = std::chrono::steady_clock::now();
    if (!exchange(item.query, &term)) return;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (term.rfind("ok", 0) == 0) {
      ++result->queries;
      result->latencies_ms.push_back(ms);
    } else if (term.find("RESOURCE_EXHAUSTED") != std::string::npos) {
      ++result->rejected;  // admission control working as specified
    } else {
      return fail("query: " + term);
    }
  }
  conn.SendLine("quit");
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  const size_t idx = std::min(
      sorted->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted->size())));
  return (*sorted)[idx];
}

}  // namespace

int main(int argc, char** argv) {
  DriverConfig config;
  std::vector<WorkItem> custom_mix;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--host=")) {
      config.host = v;
    } else if (const char* v = value("--port=")) {
      config.port = std::atoi(v);
    } else if (const char* v = value("--clients=")) {
      config.clients = std::atoi(v);
    } else if (const char* v = value("--seconds=")) {
      config.seconds = std::atof(v);
    } else if (const char* v = value("--requests=")) {
      config.requests = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--ingest_every=")) {
      config.ingest_every = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--query=")) {
      custom_mix.push_back({{}, std::string("query ") + v});
    } else if (const char* v = value("--sql=")) {
      custom_mix.push_back({{}, std::string("sql ") + v});
    } else if (arg == "--help" || arg == "-h") {
      return Usage(), 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(), 2;
    }
  }
  if (config.port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return Usage(), 2;
  }
  config.mix = custom_mix.empty() ? DemoMix() : std::move(custom_mix);

  const auto start = std::chrono::steady_clock::now();
  std::vector<ClientResult> results(
      static_cast<size_t>(std::max(1, config.clients)));
  std::vector<std::thread> threads;
  for (int c = 0; c < std::max(1, config.clients); ++c) {
    threads.emplace_back(RunClient, std::cref(config), c, &results[c]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  uint64_t queries = 0, rejected = 0, errors = 0;
  std::vector<double> latencies;
  std::string first_error;
  for (const ClientResult& r : results) {
    queries += r.queries;
    rejected += r.rejected;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    if (first_error.empty()) first_error = r.first_error;
  }
  std::sort(latencies.begin(), latencies.end());

  std::printf("clients:    %d\n", config.clients);
  std::printf("queries:    %llu (%.0f/s)\n",
              static_cast<unsigned long long>(queries),
              elapsed > 0 ? static_cast<double>(queries) / elapsed : 0.0);
  std::printf("rejected:   %llu\n", static_cast<unsigned long long>(rejected));
  std::printf("errors:     %llu\n", static_cast<unsigned long long>(errors));
  std::printf("latency ms: p50=%.3f p90=%.3f p99=%.3f\n",
              Percentile(&latencies, 0.50), Percentile(&latencies, 0.90),
              Percentile(&latencies, 0.99));
  if (errors > 0) {
    std::printf("first error: %s\n", first_error.c_str());
    return 1;
  }
  return 0;
}
