// incdb_serve — the IncDbService behind a newline-delimited text protocol
// on a local TCP socket (grammar in docs/SERVICE.md).
//
//   incdb_serve --demo --port=7433            # orders/payments demo db
//   incdb_serve --db=instance.txt --port=0    # ephemeral port, printed
//
// One connection = one Session. Requests are single lines; every response
// is zero or more data lines ("| <tuple>" result rows, "p <tuple> <prob>
// <lo> <hi> <exact>" probability rows) terminated by exactly one "ok ..."
// or "error <CODE> <message>" line.
//
// Exit status: 0 on clean shutdown, 2 on bad usage or startup failure.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "incdb.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop = true; }

void Usage() {
  std::fprintf(stderr,
               "usage: incdb_serve [options]\n"
               "  --port=N            listen port (default 0 = ephemeral; "
               "the chosen port is printed)\n"
               "  --db=FILE           load the instance from an io.h dump\n"
               "  --demo              orders/payments demo instance "
               "(default when --db is absent)\n"
               "  --demo_orders=N     demo size (default 12)\n"
               "  --runtime_s=S       exit after S seconds (default 0 = "
               "run until signalled)\n"
               "  --max_in_flight=N   concurrent-query gate (default 64)\n"
               "  --max_worlds=N      per-query world budget (default "
               "200000)\n"
               "  --max_rows=N        per-query result-row budget "
               "(default 0 = off)\n"
               "  --cache_capacity=N  plan-cache entries (default 256)\n");
}

// Buffered line reader over a socket fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // Reads one '\n'-terminated line (terminator stripped, trailing '\r'
  // too). False on EOF/error.
  bool ReadLine(std::string* out) {
    out->clear();
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (!out->empty() && out->back() == '\r') out->pop_back();
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Receive timeout (set per connection): lets blocked readers
        // notice shutdown instead of pinning join forever.
        if (g_stop) return false;
        continue;
      }
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

// Parses one ingest value token: _k marked null, integer, or (optionally
// quoted) string.
incdb::Value ParseValueToken(const std::string& raw) {
  const std::string t = incdb::Trim(raw);
  if (t.size() >= 2 && t[0] == '_') {
    char* end = nullptr;
    const unsigned long long k = std::strtoull(t.c_str() + 1, &end, 10);
    if (end != t.c_str() + 1 && *end == '\0') {
      return incdb::Value::Null(static_cast<incdb::NullId>(k));
    }
  }
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (!t.empty() && end != t.c_str() && *end == '\0') {
    return incdb::Value::Int(v);
  }
  if (t.size() >= 2 && t.front() == '\'' && t.back() == '\'') {
    return incdb::Value::Str(t.substr(1, t.size() - 2));
  }
  return incdb::Value::Str(t);
}

// Per-connection protocol state: the notion/backend/knob settings that
// shape subsequent query commands.
struct ConnState {
  incdb::AnswerNotion notion = incdb::AnswerNotion::kNaive;
  incdb::Backend backend = incdb::Backend::kEnumeration;
  incdb::WorldSemantics semantics = incdb::WorldSemantics::kClosedWorld;
  int threads = 0;
  uint64_t max_worlds = 0;  // 0 = engine default
  double threshold = 1.0;
};

bool ParseNotion(const std::string& s, incdb::AnswerNotion* out) {
  using incdb::AnswerNotion;
  static const struct {
    const char* name;
    AnswerNotion notion;
  } kNames[] = {
      {"naive", AnswerNotion::kNaive},
      {"3vl", AnswerNotion::k3VL},
      {"maybe", AnswerNotion::kMaybe},
      {"certain-naive", AnswerNotion::kCertainNaive},
      {"certain-enum", AnswerNotion::kCertainEnum},
      {"certain-object", AnswerNotion::kCertainObject},
      {"possible", AnswerNotion::kPossible},
      {"certain-probability", AnswerNotion::kCertainWithProbability},
  };
  for (const auto& entry : kNames) {
    if (incdb::EqualsIgnoreCase(s, entry.name)) {
      *out = entry.notion;
      return true;
    }
  }
  return false;
}

std::string ErrorLine(const incdb::Status& status) {
  return std::string("error ") + incdb::StatusCodeName(status.code()) + " " +
         OneLine(status.message()) + "\n";
}

std::string RunQuery(incdb::Session* session, const ConnState& state,
                     incdb::QueryInput input) {
  incdb::QueryRequest req;
  req.input = std::move(input);
  req.notion = state.notion;
  req.backend = state.backend;
  req.semantics = state.semantics;
  req.eval.num_threads = state.threads;
  if (state.max_worlds > 0) req.world_options.max_worlds = state.max_worlds;
  req.probability.threshold = state.threshold;
  auto resp = session->Run(req);
  if (!resp.ok()) return ErrorLine(resp.status());
  std::ostringstream out;
  for (const incdb::Tuple& t : resp->response.relation.tuples()) {
    out << "| " << t.ToString() << "\n";
  }
  for (const incdb::TupleProbability& p : resp->response.probabilities) {
    out << "p " << p.tuple.ToString() << " " << p.probability << " "
        << p.ci_low << " " << p.ci_high << " " << (p.exact ? 1 : 0) << "\n";
  }
  out << "ok rows=" << resp->response.relation.size()
      << " version=" << resp->snapshot_version
      << " cache=" << (resp->cache_hit ? "hit" : "miss")
      << " notion=" << incdb::AnswerNotionName(state.notion) << "\n";
  return out.str();
}

void ServeConnection(int fd, incdb::IncDbService* service) {
  timeval timeout{0, 200 * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  incdb::Session session = service->OpenSession();
  ConnState state;
  LineReader reader(fd);
  std::string line;
  while (!g_stop && reader.ReadLine(&line)) {
    const std::string trimmed = incdb::Trim(line);
    if (trimmed.empty()) continue;
    const size_t sp = trimmed.find(' ');
    const std::string cmd = incdb::ToLower(trimmed.substr(0, sp));
    const std::string rest =
        sp == std::string::npos ? "" : incdb::Trim(trimmed.substr(sp + 1));
    std::string reply;

    if (cmd == "ping") {
      reply = "ok pong\n";
    } else if (cmd == "quit") {
      WriteAll(fd, "ok bye\n");
      break;
    } else if (cmd == "notion") {
      reply = ParseNotion(rest, &state.notion)
                  ? "ok\n"
                  : "error INVALID_ARGUMENT unknown notion " + rest + "\n";
    } else if (cmd == "backend") {
      if (incdb::EqualsIgnoreCase(rest, "enumeration")) {
        state.backend = incdb::Backend::kEnumeration;
        reply = "ok\n";
      } else if (incdb::EqualsIgnoreCase(rest, "ctable")) {
        state.backend = incdb::Backend::kCTable;
        reply = "ok\n";
      } else {
        reply = "error INVALID_ARGUMENT unknown backend " + rest + "\n";
      }
    } else if (cmd == "semantics") {
      if (incdb::EqualsIgnoreCase(rest, "cwa")) {
        state.semantics = incdb::WorldSemantics::kClosedWorld;
        reply = "ok\n";
      } else if (incdb::EqualsIgnoreCase(rest, "owa")) {
        state.semantics = incdb::WorldSemantics::kOpenWorld;
        reply = "ok\n";
      } else if (incdb::EqualsIgnoreCase(rest, "wcwa")) {
        state.semantics = incdb::WorldSemantics::kWeakClosedWorld;
        reply = "ok\n";
      } else {
        reply = "error INVALID_ARGUMENT unknown semantics " + rest + "\n";
      }
    } else if (cmd == "threads") {
      state.threads = std::atoi(rest.c_str());
      reply = "ok\n";
    } else if (cmd == "max_worlds") {
      state.max_worlds = std::strtoull(rest.c_str(), nullptr, 10);
      reply = "ok\n";
    } else if (cmd == "threshold") {
      state.threshold = std::atof(rest.c_str());
      reply = "ok\n";
    } else if (cmd == "query") {
      reply = RunQuery(&session, state, incdb::QueryInput::RaText(rest));
    } else if (cmd == "sql") {
      reply = RunQuery(&session, state, incdb::QueryInput::SqlText(rest));
    } else if (cmd == "ingest") {
      // "ingest <n>" followed by n lines "<relation> <v1> <v2> ...".
      char* end = nullptr;
      const unsigned long long n = std::strtoull(rest.c_str(), &end, 10);
      if (rest.empty() || end == rest.c_str() || *end != '\0' || n > 100000) {
        reply = "error INVALID_ARGUMENT ingest needs a row count\n";
      } else {
        std::vector<incdb::IngestRow> batch;
        bool read_ok = true;
        for (unsigned long long i = 0; i < n && read_ok; ++i) {
          std::string row_line;
          read_ok = reader.ReadLine(&row_line);
          if (!read_ok) break;
          std::istringstream row(row_line);
          incdb::IngestRow ingest_row;
          row >> ingest_row.relation;
          std::vector<incdb::Value> values;
          std::string token;
          while (row >> token) values.push_back(ParseValueToken(token));
          ingest_row.tuple = incdb::Tuple(std::move(values));
          batch.push_back(std::move(ingest_row));
        }
        if (!read_ok) break;  // connection died mid-batch: nothing applied
        auto version = session.Ingest(batch);
        if (version.ok()) {
          reply = "ok version=" + std::to_string(*version) +
                  " rows=" + std::to_string(batch.size()) + "\n";
        } else {
          reply = ErrorLine(version.status());
        }
      }
    } else if (cmd == "version") {
      reply = "ok version=" + std::to_string(session.SnapshotVersion()) + "\n";
    } else if (cmd == "stats") {
      const incdb::ServiceStats s = service->Stats();
      std::ostringstream out;
      out << "ok queries=" << s.queries << " cache_hits=" << s.cache_hits
          << " cache_misses=" << s.cache_misses
          << " cache_entries=" << s.cache_entries
          << " invalidated=" << s.invalidated_entries
          << " rejected_overload=" << s.rejected_overload
          << " rejected_budget=" << s.rejected_budget
          << " snapshots=" << s.snapshots_published << "\n";
      reply = out.str();
    } else {
      reply = "error INVALID_ARGUMENT unknown command " + cmd + "\n";
    }
    if (!WriteAll(fd, reply)) break;
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::string db_file;
  bool demo = false;
  uint64_t demo_orders = 12;
  double runtime_s = 0;
  incdb::ServiceLimits limits;
  limits.max_worlds_per_query = 200'000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--port=")) {
      port = std::atoi(v);
    } else if (const char* v = value("--db=")) {
      db_file = v;
    } else if (arg == "--demo") {
      demo = true;
    } else if (const char* v = value("--demo_orders=")) {
      demo_orders = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--runtime_s=")) {
      runtime_s = std::atof(v);
    } else if (const char* v = value("--max_in_flight=")) {
      limits.max_in_flight = std::atoi(v);
    } else if (const char* v = value("--max_worlds=")) {
      limits.max_worlds_per_query = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--max_rows=")) {
      limits.max_result_rows = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--cache_capacity=")) {
      limits.plan_cache_capacity = std::strtoull(v, nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      return Usage(), 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(), 2;
    }
  }

  incdb::Database db;
  if (!db_file.empty()) {
    std::ifstream in(db_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", db_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto loaded = incdb::LoadDatabase(text.str());
    if (!loaded.ok()) {
      std::fprintf(stderr, "bad --db file: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    db = std::move(loaded).value();
  } else {
    demo = true;
  }
  if (demo && db_file.empty()) {
    // Small by design: the demo db keeps few enough nulls that even the
    // enumeration notions answer in microseconds, so a soak run measures
    // the service machinery, not world enumeration.
    incdb::OrdersPaymentsConfig config;
    config.n_orders = demo_orders;
    config.null_density = 0.15;
    db = incdb::MakeOrdersPayments(config).db;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 2;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    std::perror("bind");
    return 2;
  }
  if (::listen(listen_fd, 64) < 0) {
    std::perror("listen");
    return 2;
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  std::printf("listening on 127.0.0.1:%d\n", ntohs(addr.sin_port));
  std::fflush(stdout);

  incdb::IncDbService service(std::move(db), limits);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(runtime_s));
  std::vector<std::thread> connections;
  while (!g_stop) {
    if (runtime_s > 0 && std::chrono::steady_clock::now() >= deadline) break;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back(ServeConnection, fd, &service);
  }
  ::close(listen_fd);
  g_stop = true;  // wake blocked connection readers so join terminates
  for (std::thread& t : connections) t.join();
  const incdb::ServiceStats s = service.Stats();
  std::printf("served %llu queries (%llu cache hits, %llu rejected)\n",
              static_cast<unsigned long long>(s.queries),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.rejected_overload +
                                              s.rejected_budget));
  return 0;
}
