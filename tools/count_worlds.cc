// count_worlds — per-tuple answer probabilities from the command line.
//
// Loads a database dump (core/io format), answers a query under the
// kCertainWithProbability notion, and prints the probability table: one row
// per tuple with non-zero observed probability, its probability, the Wilson
// confidence interval, and whether the value is an exact world count or a
// Monte-Carlo estimate, followed by the counting-layer counters.
//
//   count_worlds --db=orders.inc --query='Order - PaidOrder'
//   count_worlds --demo --sql='SELECT o_id FROM Order' --backend=ctable
//   count_worlds --demo --samples=100000 --seed=7 --threshold=0.9
//
// Exit status: 0 = answered, 1 = evaluation error, 2 = bad usage.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "incdb.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: count_worlds [options]\n"
      "  --db=FILE            database dump (core/io format)\n"
      "  --demo               use the built-in orders/payments workload\n"
      "  --query=RA           relational algebra query text\n"
      "  --sql=SQL            SQL query text (alternative to --query)\n"
      "  --backend=B          enum | ctable (default ctable)\n"
      "  --threshold=P        answer threshold (default 1.0)\n"
      "  --samples=N          Monte-Carlo samples (default 10000)\n"
      "  --seed=N             sampling seed (default 1)\n"
      "  --threads=N          sampling threads (0 = auto; default 0)\n"
      "  --max_exact_worlds=N exact-enumeration gate (default 100000)\n"
      "  --force_sampling     skip the exact paths\n");
}

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  bool demo = false;
  std::string ra_text;
  std::string sql_text;
  incdb::Backend backend = incdb::Backend::kCTable;
  incdb::ProbabilisticOptions popts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--db=")) {
      db_path = v;
    } else if (arg == "--demo") {
      demo = true;
    } else if (const char* v = value("--query=")) {
      ra_text = v;
    } else if (const char* v = value("--sql=")) {
      sql_text = v;
    } else if (const char* v = value("--backend=")) {
      const std::string b = incdb::ToLower(v);
      if (b == "enum" || b == "enumeration") {
        backend = incdb::Backend::kEnumeration;
      } else if (b == "ctable") {
        backend = incdb::Backend::kCTable;
      } else {
        std::fprintf(stderr, "unknown backend: %s\n", v);
        return Usage(), 2;
      }
    } else if (const char* v = value("--threshold=")) {
      popts.threshold = std::atof(v);
    } else if (const char* v = value("--samples=")) {
      if (!ParseUint(v, &popts.sampling.samples)) return Usage(), 2;
    } else if (const char* v = value("--seed=")) {
      if (!ParseUint(v, &popts.sampling.seed)) return Usage(), 2;
    } else if (const char* v = value("--threads=")) {
      popts.sampling.num_threads = std::atoi(v);
    } else if (const char* v = value("--max_exact_worlds=")) {
      if (!ParseUint(v, &popts.max_exact_worlds)) return Usage(), 2;
    } else if (arg == "--force_sampling") {
      popts.force_sampling = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(), 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(), 2;
    }
  }

  if (demo != db_path.empty()) {
    std::fprintf(stderr, "need exactly one of --db / --demo\n");
    return Usage(), 2;
  }
  if (ra_text.empty() == sql_text.empty()) {
    std::fprintf(stderr, "need exactly one of --query / --sql\n");
    return Usage(), 2;
  }

  incdb::Database db;
  if (demo) {
    incdb::OrdersPaymentsConfig config;
    config.n_orders = 40;
    config.null_density = 0.3;
    db = incdb::MakeOrdersPayments(config).db;
  } else {
    std::ifstream in(db_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", db_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    incdb::Result<incdb::Database> loaded =
        incdb::LoadDatabase(text.str());
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s: %s\n", db_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = *std::move(loaded);
  }

  incdb::WorldEnumOptions wopts;
  std::printf("nulls: %zu   domain: %zu   worlds: ", db.Nulls().size(),
              incdb::WorldDomain(db, wopts).size());
  const uint64_t worlds = incdb::CountWorldsCwa(db, wopts);
  if (worlds == UINT64_MAX) {
    std::printf(">= 2^64\n");
  } else {
    std::printf("%llu\n", static_cast<unsigned long long>(worlds));
  }

  incdb::QueryEngine engine(db);
  const incdb::QueryRequest request =
      incdb::QueryRequestBuilder(
          ra_text.empty() ? incdb::QueryInput::SqlText(sql_text)
                          : incdb::QueryInput::RaText(ra_text))
          .Notion(incdb::AnswerNotion::kCertainWithProbability)
          .OnBackend(backend)
          .Probability(popts)
          .Build();

  const auto start = std::chrono::steady_clock::now();
  incdb::Result<incdb::QueryResponse> resp = engine.Run(request);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!resp.ok()) {
    std::fprintf(stderr, "error: %s\n", resp.status().ToString().c_str());
    return 1;
  }

  std::printf("backend: %s   threshold: %.4g   time: %.3fs\n",
              incdb::BackendName(resp->backend), popts.threshold, secs);
  std::printf("%-40s %-12s %-22s %s\n", "tuple", "probability", "95% CI",
              "mode");
  for (const incdb::TupleProbability& p : resp->probabilities) {
    std::printf("%-40s %-12.6f [%.6f, %.6f]    %s\n",
                p.tuple.ToString().c_str(), p.probability, p.ci_low, p.ci_high,
                p.exact ? "exact" : "sampled");
  }
  std::printf("answer tuples (p >= %.4g): %zu\n", popts.threshold,
              resp->relation.size());
  std::printf(
      "worlds_counted: %llu   samples_drawn: %llu   exact_count_hits: %llu\n",
      static_cast<unsigned long long>(resp->worlds_counted),
      static_cast<unsigned long long>(resp->samples_drawn),
      static_cast<unsigned long long>(resp->exact_count_hits));
  return 0;
}
