// A1 (ablation) — the effect of the most-constrained-first tuple ordering in
// the homomorphism search (DESIGN.md Section 2). On instances mixing
// constant-rich and null-only tuples, placing constrained tuples first
// prunes the candidate lists early.

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

// `from`: a null-chain plus a few constant anchor tuples that only match in
// one place of `to`; `to`: a random graph plus those anchors.
std::pair<Database, Database> MakeInstance(size_t chain, uint64_t seed) {
  Database from;
  for (size_t i = 0; i < chain; ++i) {
    from.AddTuple("R", Tuple{Value::Null(static_cast<NullId>(i)),
                             Value::Null(static_cast<NullId>(i + 1))});
  }
  // Anchors: force the chain's last null onto a specific node.
  from.AddTuple("R", Tuple{Value::Null(static_cast<NullId>(chain)),
                           Value::Int(900)});
  Database to = MakeRandomGraph(25, 100, seed);
  to.AddTuple("R", Tuple{Value::Int(3), Value::Int(900)});
  return {std::move(from), std::move(to)};
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "A1 (ablation): most-constrained-first ordering in hom search",
        "constant-bearing tuples first prunes the backtracking tree; both "
        "orders agree on the answer",
        " chain  with_heuristic  without  agree");
    for (size_t chain : {4, 8, 12}) {
      auto [from, to] = MakeInstance(chain, 5);
      HomSearchOptions with;
      HomSearchOptions without;
      without.most_constrained_first = false;
      const bool a =
          FindHomomorphism(from, to, HomKind::kPlain, with).has_value();
      const bool b =
          FindHomomorphism(from, to, HomKind::kPlain, without).has_value();
      std::printf("%6zu  %14s  %7s  %5s\n", chain, a ? "found" : "none",
                  b ? "found" : "none", a == b ? "yes" : "NO");
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_HomWithHeuristic(benchmark::State& state) {
  auto [from, to] = MakeInstance(static_cast<size_t>(state.range(0)), 5);
  HomSearchOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindHomomorphism(from, to, HomKind::kPlain, opts));
  }
}
BENCHMARK(BM_HomWithHeuristic)->Arg(4)->Arg(8)->Arg(12);

void BM_HomWithoutHeuristic(benchmark::State& state) {
  auto [from, to] = MakeInstance(static_cast<size_t>(state.range(0)), 5);
  HomSearchOptions opts;
  opts.most_constrained_first = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindHomomorphism(from, to, HomKind::kPlain, opts));
  }
}
BENCHMARK(BM_HomWithoutHeuristic)->Arg(4)->Arg(8)->Arg(12);

}  // namespace
