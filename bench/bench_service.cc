// bench_service — concurrent-service throughput (ROADMAP item 4).
//
// Claim: a repeated-query workload over many concurrent sessions is served
// at least 2x faster when the prepared-plan cache is on, because every hit
// returns the stored response without touching an evaluator; admission
// control and snapshot pinning cost only a pointer swap per query.
//
// Shape: one in-process IncDbService over the orders/payments demo
// database, 16 client threads each running the same small query mix
// (certain/possible answers over the o_id = order_id join). Args: cache
// capacity off (0) / on (1). Counters: qps, latency percentiles, cache
// hits per iteration.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "incdb.h"

namespace {

using incdb::AnswerNotion;
using incdb::IncDbService;
using incdb::QueryInput;
using incdb::QueryRequest;
using incdb::ServiceLimits;
using incdb::ServiceResponse;

constexpr int kClients = 16;
constexpr int kQueriesPerClientPerIteration = 8;

incdb::Database BenchDb() {
  incdb::OrdersPaymentsConfig config;
  config.n_orders = 48;
  config.pay_fraction = 0.8;
  config.null_density = 0.05;  // ~2 nulls: small, fixed world space
  config.seed = 7;
  return incdb::MakeOrdersPayments(config).db;
}

// The repeated mix: the paper's "products certainly/possibly paid for" join
// plus a cheap projection, all over the same plans so cache hits dominate
// once the cache is warm.
std::vector<QueryRequest> Mix() {
  const std::string join = "proj{1}(sel[#0 = #3](Order x Pay))";
  std::vector<QueryRequest> mix;
  for (AnswerNotion notion :
       {AnswerNotion::kCertainEnum, AnswerNotion::kPossible}) {
    QueryRequest req;
    req.input = QueryInput::RaText(join);
    req.notion = notion;
    req.eval.num_threads = 1;
    mix.push_back(req);
  }
  QueryRequest naive;
  naive.input = QueryInput::RaText("proj{1}(Order)");
  naive.notion = AnswerNotion::kNaive;
  naive.eval.num_threads = 1;
  mix.push_back(naive);
  return mix;
}

void BM_ServiceRepeatedQueries(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  ServiceLimits limits;
  limits.plan_cache_capacity = cache_on ? 256 : 0;
  limits.max_in_flight = kClients;
  IncDbService service(BenchDb(), limits);
  const std::vector<QueryRequest> mix = Mix();

  uint64_t total_queries = 0;
  double total_seconds = 0;
  std::vector<double> latencies_ms;

  for (auto _ : state) {
    std::vector<std::vector<double>> per_client(kClients);
    std::atomic<uint64_t> failures{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        incdb::Session session = service.OpenSession();
        for (int q = 0; q < kQueriesPerClientPerIteration; ++q) {
          const QueryRequest& req = mix[(c + q) % mix.size()];
          const auto t0 = std::chrono::steady_clock::now();
          const incdb::Result<ServiceResponse> resp = session.Run(req);
          per_client[c].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
          if (!resp.ok()) ++failures;
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (failures.load() != 0) {
      state.SkipWithError("service returned a non-OK status");
      return;
    }
    total_seconds += secs;
    total_queries +=
        static_cast<uint64_t>(kClients) * kQueriesPerClientPerIteration;
    for (const std::vector<double>& v : per_client) {
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    }
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto pct = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = std::min(
        latencies_ms.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_ms.size())));
    return latencies_ms[idx];
  };
  const incdb::ServiceStats stats = service.Stats();
  state.counters["cache"] = benchmark::Counter(cache_on ? 1 : 0);
  state.counters["qps"] = benchmark::Counter(
      total_seconds > 0 ? static_cast<double>(total_queries) / total_seconds
                        : 0);
  state.counters["p50_ms"] = benchmark::Counter(pct(0.50));
  state.counters["p95_ms"] = benchmark::Counter(pct(0.95));
  state.counters["p99_ms"] = benchmark::Counter(pct(0.99));
  state.counters["hits"] =
      benchmark::Counter(static_cast<double>(stats.cache_hits),
                         benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<int64_t>(total_queries));
}

BENCHMARK(BM_ServiceRepeatedQueries)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
