// E4 — cwa-naïve evaluation works for RA_cwa: division queries over
// incomplete data at plain query-evaluation cost (paper, Section 6.2).

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

// `max_nulls` bounds the number of distinct marked nulls injected so the
// enumeration ground truth stays feasible where it is used.
Database Workload(size_t employees, uint64_t seed, double null_density,
                  size_t max_nulls = SIZE_MAX) {
  DivisionConfig cfg;
  cfg.n_employees = employees;
  cfg.n_projects = 8;
  cfg.coverage = 0.2;
  cfg.assign_density = 0.5;
  cfg.seed = seed;
  Database db = MakeDivisionWorkload(cfg);
  if (null_density > 0) {
    // Replace some project values with fresh nulls.
    Rng rng(seed + 1);
    Relation* assign = db.MutableRelation("Assign", 2);
    Relation patched(2);
    NullId next = 0;
    for (const Tuple& t : assign->tuples()) {
      if (next < max_nulls && rng.Bernoulli(null_density)) {
        patched.Add(Tuple{t[0], Value::Null(next++)});
      } else {
        patched.Add(t);
      }
    }
    *assign = patched;
  }
  return db;
}

RAExprPtr Query() {
  return RAExpr::Divide(RAExpr::Scan("Assign"), RAExpr::Scan("Proj"));
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E4: division (RA_cwa) with nulls under CWA",
        "naive evaluation equals enumeration ground truth on small "
        "instances and scales to large ones",
        "   employees  nulls  |naive|  |enum|  match");
    auto q = Query();
    // Validation on small instances (enumeration feasible).
    for (size_t emp : {3, 4, 5}) {
      Database db = Workload(emp, 11, 0.3, /*max_nulls=*/4);
      auto naive = CertainAnswersNaive(q, db, WorldSemantics::kClosedWorld);
      WorldEnumOptions opts;
      opts.max_worlds = 5'000'000;
      auto truth = CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld,
                                      opts);
      if (!naive.ok()) continue;
      if (truth.ok()) {
        std::printf("%12zu  %5zu  %7zu  %6zu  %5s\n", emp, db.Nulls().size(),
                    naive->size(), truth->size(),
                    (*naive == *truth) ? "yes" : "NO");
      } else {
        std::printf("%12zu  %5zu  %7zu  %6s  %5s\n", emp, db.Nulls().size(),
                    naive->size(), "-", "skip");
      }
    }
    // Scale-out: naive only.
    for (size_t emp : {1000, 10000, 100000}) {
      Database db = Workload(emp, 11, 0.1);
      auto naive = CertainAnswersNaive(q, db, WorldSemantics::kClosedWorld);
      if (!naive.ok()) continue;
      std::printf("%12zu  %5zu  %7zu  %6s  %5s\n", emp, db.Nulls().size(),
                  naive->size(), "-", "-");
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void RunDivisionNaive(benchmark::State& state, bool use_hash_kernels) {
  Database db = Workload(static_cast<size_t>(state.range(0)), 11, 0.1);
  auto q = Query();
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  options.use_hash_kernels = use_hash_kernels;
  for (auto _ : state) {
    auto r = CertainAnswersNaive(q, db, WorldSemantics::kClosedWorld,
                                 /*force=*/false, options);
    benchmark::DoNotOptimize(r);
  }
  incdb_bench::ReportEvalStats(state, stats);
}

void BM_DivisionNaive(benchmark::State& state) {
  RunDivisionNaive(state, /*use_hash_kernels=*/true);
}
BENCHMARK(BM_DivisionNaive)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Pre-kernel nested-loop division, kept runnable for attribution.
void BM_DivisionNestedLoop(benchmark::State& state) {
  RunDivisionNaive(state, /*use_hash_kernels=*/false);
}
BENCHMARK(BM_DivisionNestedLoop)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_DivisionViaExpansion(benchmark::State& state) {
  Database db = Workload(static_cast<size_t>(state.range(0)), 11, 0.1);
  auto q = RAExpr::ExpandDivision(Query(), db.schema());
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  for (auto _ : state) {
    auto r = EvalNaive(q, db, options);
    benchmark::DoNotOptimize(r);
  }
  incdb_bench::ReportEvalStats(state, stats);
}
BENCHMARK(BM_DivisionViaExpansion)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_DivisionEnumerationSmall(benchmark::State& state) {
  // range(0) = number of injected nulls (the exponent of the world count).
  Database db = Workload(4, 11, 0.9, static_cast<size_t>(state.range(0)));
  auto q = Query();
  for (auto _ : state) {
    auto r = CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
}
BENCHMARK(BM_DivisionEnumerationSmall)->Arg(2)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);

// Thread sweep over the same division ground truth: four nulls, enumerated
// at num_threads ∈ {1, 2, 4, 8}. See BM_WorldEnumerationThreads (bench_e2)
// for how "speedup" is computed.
void BM_DivisionEnumerationThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Database db = Workload(4, 11, 0.9, /*max_nulls=*/4);
  auto q = Query();
  EvalOptions serial;
  serial.num_threads = 1;
  const double serial_seconds = incdb_bench::SecondsOf([&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {}, serial));
  });
  EvalOptions options;
  options.num_threads = threads;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(CertainAnswersEnum(
          q, db, WorldSemantics::kClosedWorld, {}, options));
    });
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
  incdb_bench::ReportThreadScaling(
      state, threads, serial_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DivisionEnumerationThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Optimizer/subplan-cache sweep for division with a computed world-invariant
// divisor: Assign ÷ π_{0}(σ_{#1=7}(ProjInfo)) — "employees assigned to every
// department-7 project". ProjInfo is 1500 complete (project, dept) rows;
// Assign is ~90 rows with one marked null. Per world the uncached plan
// re-runs the selection over all of ProjInfo and rebuilds the divisor's
// hash index; the cache evaluates the divisor subtree once and splices it
// with a prebuilt full-width index, leaving only the small dividend pass.
// Employee 100 covers all dept-7 projects with complete tuples, so the
// certain answer is non-empty and every world is evaluated.
Database DivisionDeptDb() {
  Database db;
  Relation* info = db.MutableRelation("ProjInfo", 2);
  for (int64_t p = 0; p < 1500; ++p) {
    info->Add(Tuple{Value::Int(p), Value::Int(p % 40)});
  }
  Relation* assign = db.MutableRelation("Assign", 2);
  for (int64_t p = 7; p < 1500; p += 40) {  // full dept-7 coverage
    assign->Add(Tuple{Value::Int(100), Value::Int(p)});
  }
  for (int64_t p = 7; p < 600; p += 40) {  // partial coverage
    assign->Add(Tuple{Value::Int(101), Value::Int(p)});
  }
  for (int64_t p = 0; p < 40; ++p) {  // one project per department
    assign->Add(Tuple{Value::Int(102), Value::Int(p)});
  }
  assign->Add(Tuple{Value::Int(103), Value::Null(0)});
  return db;
}

// args encode (optimize, cache_subplans); see BM_WorldEnumerationOptCache
// (bench_e2) for how "speedup" is computed.
void BM_DivisionOptCache(benchmark::State& state) {
  const bool optimize = state.range(0) != 0;
  const bool cache = state.range(1) != 0;
  Database db = DivisionDeptDb();
  auto q = RAExpr::Divide(
      RAExpr::Scan("Assign"),
      RAExpr::Project(
          {0},
          RAExpr::Select(
              Predicate::Eq(Term::Column(1), Term::Const(Value::Int(7))),
              RAExpr::Scan("ProjInfo"))));
  EvalOptions off;
  off.optimize = false;
  off.cache_subplans = false;
  off.num_threads = 1;
  auto run_off = [&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {}, off));
  };
  run_off();  // warm the lazy canonicalization before timing the baseline
  const double off_seconds = incdb_bench::SecondsOf(run_off);
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  options.optimize = optimize;
  options.cache_subplans = cache;
  options.num_threads = 1;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(
          CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {},
                             options));
    });
  }
  incdb_bench::ReportOptCacheSweep(
      state, optimize, cache, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DivisionOptCache)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// Delta-eval sweep for division. Values are kept inside a single 16-value
// domain (employee ids double as project ids) so two marked nulls give a
// tractable 18² worlds while the dividend stays ~150 rows: the classic
// driver re-runs the whole division per world, the differential path
// adjusts the per-head derivation/match counters of one tuple. Employee 0
// covers every project with complete tuples, so the certain answer stays
// non-empty and no world is skipped by the early-exit.
Database DeltaDivisionDb() {
  Database db;
  Relation* proj = db.MutableRelation("Proj", 1);
  for (int64_t p = 0; p < 12; ++p) proj->Add(Tuple{Value::Int(p)});
  Relation* assign = db.MutableRelation("Assign", 2);
  for (int64_t e = 0; e < 16; ++e) {
    for (int64_t p = 0; p < 12; ++p) {
      if (e == 0 || (e + p) % 5 != 0) {
        assign->Add(Tuple{Value::Int(e), Value::Int(p)});
      }
    }
  }
  assign->Add(Tuple{Value::Int(3), Value::Null(0)});
  assign->Add(Tuple{Value::Int(7), Value::Null(1)});
  return db;
}

// arg encodes delta_eval on/off; see BM_WorldEnumerationDelta (bench_e2)
// for how "speedup" is computed.
void BM_DivisionDelta(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  Database db = DeltaDivisionDb();
  auto q = Query();
  EvalOptions off;
  off.delta_eval = false;
  off.num_threads = 1;
  auto run_off = [&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {}, off));
  };
  run_off();  // warm the lazy canonicalization before timing the baseline
  const double off_seconds = incdb_bench::SecondsOf(run_off);
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  options.delta_eval = delta;
  options.num_threads = 1;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(
          CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {},
                             options));
    });
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
  incdb_bench::ReportDeltaSweep(
      state, delta, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DivisionDelta)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Backend sweep on division (expanded to the double-difference form before
// the conditional-algebra pipeline runs). args encode (ctable, #injected
// nulls); the enumeration baseline pays |domain|^#nulls per evaluation
// while the c-table backend normalizes the expanded plan's conditions once.
// "speedup" compares this run's mean iteration against an enumeration
// baseline timed inline just before the loop.
void BM_DivisionBackendSweep(benchmark::State& state) {
  const bool ctable = state.range(0) != 0;
  Database db = Workload(4, 11, 0.9, static_cast<size_t>(state.range(1)));
  auto q = Query();
  const double enum_seconds = incdb_bench::SecondsOf([&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld));
  });
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      if (ctable) {
        benchmark::DoNotOptimize(CertainAnswersCTable(
            q, db, WorldSemantics::kClosedWorld, {}, options));
      } else {
        benchmark::DoNotOptimize(CertainAnswersEnum(
            q, db, WorldSemantics::kClosedWorld, {}, options));
      }
    });
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
  incdb_bench::ReportBackendSweep(
      state, ctable, stats, enum_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DivisionBackendSweep)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 6})
    ->Args({1, 6})
    ->Unit(benchmark::kMillisecond);

// Probabilistic division at a null count far beyond exact enumeration:
// Monte-Carlo sampling on the enumeration backend, sweeping the sample
// budget and thread count. Division expands to a double difference, so the
// per-sample evaluation is the heaviest the suite samples — the thread
// rows show the sampler's scaling where it matters most. See
// BM_SamplingSweep (bench_e2) for counter semantics.
void BM_DivisionSamplingSweep(benchmark::State& state) {
  const uint64_t samples = static_cast<uint64_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Database db = Workload(16, 11, 0.6, /*max_nulls=*/20);
  QueryEngine engine(db);
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  ProbabilisticOptions popts;
  popts.sampling.samples = samples;
  popts.sampling.num_threads = threads;
  const QueryRequest req =
      QueryRequestBuilder(QueryInput::Ra(Query()))
          .Notion(AnswerNotion::kCertainWithProbability)
          .OnBackend(Backend::kEnumeration)
          .Probability(popts)
          .Eval(options)
          .Build();
  double ci_width = 0;
  for (auto _ : state) {
    auto r = engine.Run(req);
    benchmark::DoNotOptimize(r);
    if (r.ok() && !r->probabilities.empty()) {
      double w = 0;
      for (const TupleProbability& p : r->probabilities) {
        w += p.ci_high - p.ci_low;
      }
      ci_width = w / static_cast<double>(r->probabilities.size());
    }
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
  incdb_bench::ReportSamplingSweep(state, samples, threads, ci_width, stats);
}
BENCHMARK(BM_DivisionSamplingSweep)
    ->Args({1'000, 1})
    ->Args({4'000, 1})
    ->Args({4'000, 4})
    ->Unit(benchmark::kMillisecond);


// ---------------------------------------------------------------------------
// Vectorize sweep: batch-vectorized division against the row-oriented hash
// kernel on a large complete instance, serial. The dividend groups into
// head runs (code rows are sorted), and each run's tails binary-search into
// the remapped divisor. args encode (vectorize, dividend rows).

Database LargeDivisionDb(size_t rows) {
  Database db;
  Relation* assign = db.MutableRelation("Assign", 2);
  const size_t employees = rows / 10;
  for (size_t e = 0; e < employees; ++e) {
    for (int64_t p = 0; p < 10; ++p) {
      assign->Add(Tuple{Value::Int(static_cast<int64_t>(e)), Value::Int(p)});
    }
  }
  Relation* proj = db.MutableRelation("Proj", 1);
  for (int64_t p = 0; p < 5; ++p) proj->Add(Tuple{Value::Int(p)});
  return db;
}

void BM_DivisionVectorize(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  Database db = LargeDivisionDb(static_cast<size_t>(state.range(1)));
  auto q = Query();
  EvalOptions off;
  off.vectorize = false;
  off.num_threads = 1;
  EvalOptions options;
  options.vectorize = vec;
  options.num_threads = 1;
  // Warm every lazily-built cache (canonical order, indexes, columnar).
  benchmark::DoNotOptimize(EvalNaive(q, db, options));
  benchmark::DoNotOptimize(EvalNaive(q, db, off));
  const double off_seconds = incdb_bench::SecondsOf(
      [&] { benchmark::DoNotOptimize(EvalNaive(q, db, off)); });
  EvalStats stats;
  options.stats = &stats;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf(
        [&] { benchmark::DoNotOptimize(EvalNaive(q, db, options)); });
  }
  incdb_bench::ReportVectorizeSweep(
      state, vec, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DivisionVectorize)
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
