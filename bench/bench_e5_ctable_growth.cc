// E5 — c-tables are a strong representation system for full RA under CWA,
// at the price of condition growth under difference pipelines (paper,
// Section 2: "hardly meaningful to humans").

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

CDatabase MakeInput(size_t rows, size_t depth, uint64_t seed) {
  Rng rng(seed);
  CDatabase db;
  CTable* r = db.MutableTable("R", 1);
  NullId next = 0;
  for (size_t i = 0; i < rows; ++i) {
    r->AddRow(Tuple{Value::Int(static_cast<int64_t>(i))}, Condition::True());
  }
  for (size_t d = 0; d < depth; ++d) {
    CTable* s = db.MutableTable("S" + std::to_string(d), 1);
    for (size_t i = 0; i < rows / 2 + 1; ++i) {
      const Value v = rng.Bernoulli(0.5)
                          ? Value::Null(next++)
                          : Value::Int(rng.UniformInt(0, static_cast<int64_t>(
                                                             rows)));
      s->AddRow(Tuple{v}, Condition::True());
    }
  }
  return db;
}

RAExprPtr Pipeline(size_t depth) {
  RAExprPtr q = RAExpr::Scan("R");
  for (size_t d = 0; d < depth; ++d) {
    q = RAExpr::Diff(q, RAExpr::Scan("S" + std::to_string(d)));
  }
  return q;
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E5: c-table condition growth under iterated difference",
        "the strong representation system pays with condition size "
        "multiplying at each difference",
        " depth   rows_in  rows_out  cond_size  cond/row");
    for (size_t depth : {1, 2, 3, 4, 5, 6}) {
      CDatabase db = MakeInput(6, depth, 3);
      auto ct = EvalOnCTables(Pipeline(depth), db);
      if (!ct.ok()) continue;
      const size_t conds = ct->TotalConditionSize();
      std::printf("%6zu  %8u  %8zu  %9zu  %8.1f\n", depth, 6u,
                  ct->rows().size(), conds,
                  ct->rows().empty()
                      ? 0.0
                      : static_cast<double>(conds) / ct->rows().size());
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_CTableDiffPipeline(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  CDatabase db = MakeInput(8, depth, 3);
  auto q = Pipeline(depth);
  for (auto _ : state) {
    auto ct = EvalOnCTables(q, db);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_CTableDiffPipeline)->DenseRange(1, 6, 1);

void BM_CTableJoin(benchmark::State& state) {
  // Join growth (product × selection) instead of difference.
  CDatabase db = MakeInput(static_cast<size_t>(state.range(0)), 1, 3);
  auto q = RAExpr::Project(
      {0}, RAExpr::Select(Predicate::Eq(Term::Column(0), Term::Column(1)),
                          RAExpr::Product(RAExpr::Scan("R"),
                                          RAExpr::Scan("S0"))));
  for (auto _ : state) {
    auto ct = EvalOnCTables(q, db);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_CTableJoin)->Arg(8)->Arg(32)->Arg(128);

void BM_ConditionSatisfiability(benchmark::State& state) {
  // SAT cost on the conditions produced by a depth-3 pipeline.
  CDatabase db = MakeInput(6, 3, 3);
  auto ct = EvalOnCTables(Pipeline(3), db);
  if (!ct.ok() || ct->rows().empty()) {
    state.SkipWithError("no rows to test");
    return;
  }
  for (auto _ : state) {
    for (const CTableRow& row : ct->rows()) {
      benchmark::DoNotOptimize(IsSatisfiable(row.condition));
    }
  }
}
BENCHMARK(BM_ConditionSatisfiability)->Unit(benchmark::kMillisecond);

}  // namespace
