// E9 — deciding the information orderings: ⪯_owa (homomorphism) vs ⪯_cwa
// (strong onto homomorphism) vs ⪯_wcwa (onto homomorphism) across instance
// sizes and null densities (paper, Sections 5.2 and 6.1).

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

// A pair (D, v(D) + noise): D always precedes the image under all three
// orderings when noise = 0.
std::pair<Database, Database> MakePair(size_t rows, double null_density,
                                       uint64_t seed, size_t noise_tuples) {
  RandomDbConfig cfg;
  cfg.arities = {2};
  cfg.rows_per_relation = rows;
  cfg.domain_size = static_cast<int64_t>(rows);
  cfg.null_density = null_density;
  cfg.null_reuse = 0.3;
  cfg.seed = seed;
  Database d = MakeRandomDatabase(cfg);
  Valuation v;
  Rng rng(seed + 1);
  for (NullId id : d.Nulls()) {
    v.Bind(id, Value::Int(rng.UniformInt(0, static_cast<int64_t>(rows))));
  }
  Database image = v.Apply(d);
  for (size_t i = 0; i < noise_tuples; ++i) {
    image.AddTuple("R0", Tuple{Value::Int(1000 + static_cast<int64_t>(i)),
                               Value::Int(2000 + static_cast<int64_t>(i))});
  }
  return {std::move(d), std::move(image)};
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E9: information-ordering decisions",
        "D ⪯ v(D) always holds; adding tuples to the image keeps ⪯_owa but "
        "breaks ⪯_cwa (no strong onto hom)",
        "  rows  nulls  noise  owa  cwa  wcwa");
    for (size_t rows : {4, 8, 16}) {
      for (size_t noise : {0, 2}) {
        auto [d, img] = MakePair(rows, 0.3, 7, noise);
        std::printf("%6zu  %5zu  %5zu  %3s  %3s  %4s\n", rows,
                    d.Nulls().size(), noise,
                    PrecedesOwa(d, img) ? "yes" : "no",
                    PrecedesCwa(d, img) ? "yes" : "no",
                    PrecedesWcwa(d, img) ? "yes" : "no");
      }
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_PrecedesOwa(benchmark::State& state) {
  auto [d, img] = MakePair(static_cast<size_t>(state.range(0)), 0.3, 7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrecedesOwa(d, img));
  }
}
BENCHMARK(BM_PrecedesOwa)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PrecedesCwa(benchmark::State& state) {
  auto [d, img] = MakePair(static_cast<size_t>(state.range(0)), 0.3, 7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrecedesCwa(d, img));
  }
}
BENCHMARK(BM_PrecedesCwa)->Arg(4)->Arg(8)->Arg(16);

void BM_PrecedesWcwa(benchmark::State& state) {
  auto [d, img] = MakePair(static_cast<size_t>(state.range(0)), 0.3, 7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrecedesWcwa(d, img));
  }
}
BENCHMARK(BM_PrecedesWcwa)->Arg(4)->Arg(8)->Arg(16);

void BM_PrecedesCwaNegative(benchmark::State& state) {
  // Noise breaks strong-onto: the search must exhaust and reject.
  auto [d, img] = MakePair(static_cast<size_t>(state.range(0)), 0.3, 7, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrecedesCwa(d, img));
  }
}
BENCHMARK(BM_PrecedesCwaNegative)->Arg(4)->Arg(8);

void BM_InformationEquivalence(benchmark::State& state) {
  // Null-renamed copies are equivalent; both directions must find homs.
  const size_t rows = static_cast<size_t>(state.range(0));
  RandomDbConfig cfg;
  cfg.arities = {2};
  cfg.rows_per_relation = rows;
  cfg.null_density = 0.4;
  cfg.seed = 9;
  Database d = MakeRandomDatabase(cfg);
  NullSubstitution rename;
  for (NullId id : d.Nulls()) rename.Bind(id, Value::Null(id + 100));
  Database d2 = rename.Apply(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        InformationEquivalent(d, d2, WorldSemantics::kOpenWorld));
  }
}
BENCHMARK(BM_InformationEquivalence)->Arg(4)->Arg(8);

}  // namespace
