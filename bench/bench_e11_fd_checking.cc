// E11 — constraints as queries (paper, Section 7 "Handling constraints"):
// syntactic weak/strong FD satisfaction is quadratic in the relation, while
// the world-semantics ground truth is exponential in the nulls; on Codd
// tables they coincide.

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

Relation MakeEmpRelation(size_t rows, double null_density, uint64_t seed,
                         size_t max_nulls = SIZE_MAX) {
  Rng rng(seed);
  Relation r(2);
  NullId next = 0;
  for (size_t i = 0; i < rows; ++i) {
    const Value key = Value::Int(rng.UniformInt(0, static_cast<int64_t>(
                                                       rows / 2 + 1)));
    const Value dep = (next < max_nulls && rng.Bernoulli(null_density))
                          ? Value::Null(next++)
                          : Value::Int(rng.UniformInt(0, 3));
    r.Add(Tuple{key, dep});
  }
  return r;
}

const FunctionalDependency kFD{{0}, {1}};

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E11: FD satisfaction over incomplete relations",
        "syntactic weak/strong checks match possible/certain world "
        "semantics on Codd tables; enumeration is exponential",
        "  rows  nulls  weak  possible  strong  certain  weak=possible  "
        "strong=certain");
    for (size_t rows : {4, 6, 8}) {
      Relation r = MakeEmpRelation(rows, 0.5, 3, /*max_nulls=*/5);
      auto weak = WeaklySatisfiesFD(r, kFD);
      auto poss = PossiblySatisfiesFD(r, kFD);
      auto strong = StronglySatisfiesFD(r, kFD);
      auto cert = CertainlySatisfiesFD(r, kFD);
      if (!weak.ok() || !poss.ok() || !strong.ok() || !cert.ok()) continue;
      std::printf("%6zu  %5zu  %4s  %8s  %6s  %7s  %13s  %14s\n", rows,
                  r.Nulls().size(), *weak ? "yes" : "no",
                  *poss ? "yes" : "no", *strong ? "yes" : "no",
                  *cert ? "yes" : "no", (*weak == *poss) ? "yes" : "NO",
                  (*strong == *cert) ? "yes" : "NO");
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_WeakSyntactic(benchmark::State& state) {
  Relation r = MakeEmpRelation(static_cast<size_t>(state.range(0)), 0.2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeaklySatisfiesFD(r, kFD));
  }
}
BENCHMARK(BM_WeakSyntactic)->Arg(100)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMicrosecond);

void BM_StrongSyntactic(benchmark::State& state) {
  Relation r = MakeEmpRelation(static_cast<size_t>(state.range(0)), 0.2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StronglySatisfiesFD(r, kFD));
  }
}
BENCHMARK(BM_StrongSyntactic)->Arg(100)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMicrosecond);

void BM_CertainEnumeration(benchmark::State& state) {
  // range(0) = #nulls; world count is |domain|^nulls. Keys are unique so
  // the FD holds in EVERY world and the ∀-check cannot short-circuit.
  Relation r(2);
  const size_t nulls = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < 8; ++i) {
    const Value dep = (i < nulls) ? Value::Null(static_cast<NullId>(i))
                                  : Value::Int(static_cast<int64_t>(i));
    r.Add(Tuple{Value::Int(static_cast<int64_t>(i)), dep});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CertainlySatisfiesFD(r, kFD));
  }
  state.SetLabel("nulls=" + std::to_string(r.Nulls().size()));
}
BENCHMARK(BM_CertainEnumeration)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Unit(
    benchmark::kMillisecond);

}  // namespace
