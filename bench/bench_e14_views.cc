// E14 — answering queries using views (paper, Sections 1 and 7): the
// inverse-rules canonical instance materializes marked nulls per view tuple
// and certain answers follow by naïve evaluation — linear-time pipeline,
// versus the undecidable general view-based answering problem.

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

// Views over Teaches(prof, course), Enrolled(student, course):
//   VP(p, s) = ∃c Teaches(p, c) ∧ Enrolled(s, c)
std::vector<MaterializedView> MakeViews(size_t tuples, uint64_t seed) {
  Rng rng(seed);
  MaterializedView v;
  v.name = "VP";
  auto def = ParseCQ("v(p, s) :- Teaches(p, c), Enrolled(s, c)");
  v.definition = *def;
  Relation ext(2);
  for (size_t i = 0; i < tuples; ++i) {
    ext.Add(Tuple{Value::Int(rng.UniformInt(0, static_cast<int64_t>(
                                                   tuples / 4 + 1))),
                  Value::Int(1000 + rng.UniformInt(0, static_cast<int64_t>(
                                                          tuples / 2 + 1)))});
  }
  v.extent = std::move(ext);
  return {std::move(v)};
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E14: certain answers using views (inverse rules)",
        "the canonical instance grows linearly in the view extent (one "
        "marked null per projected variable per tuple); UCQ certain answers "
        "are naive evaluation over it",
        "  view_tuples  canonical_tuples  nulls  |certain profs|");
    for (size_t n : {10, 100, 1000}) {
      auto views = MakeViews(n, 23);
      auto canonical = CanonicalInstanceFromViews(views);
      if (!canonical.ok()) continue;
      auto q = ParseUCQ("ans(p) :- Teaches(p, c), Enrolled(s, c)");
      auto certain = CertainAnswersUsingViews(*q, views);
      std::printf("%13zu  %16zu  %5zu  %15zu\n", views[0].extent.size(),
                  canonical->TupleCount(), canonical->Nulls().size(),
                  certain.ok() ? certain->size() : 0);
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_CanonicalInstance(benchmark::State& state) {
  auto views = MakeViews(static_cast<size_t>(state.range(0)), 23);
  for (auto _ : state) {
    auto canonical = CanonicalInstanceFromViews(views);
    benchmark::DoNotOptimize(canonical);
  }
}
BENCHMARK(BM_CanonicalInstance)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

void BM_CertainAnswersUsingViews(benchmark::State& state) {
  auto views = MakeViews(static_cast<size_t>(state.range(0)), 23);
  auto q = ParseUCQ("ans(p) :- Teaches(p, c), Enrolled(s, c)");
  for (auto _ : state) {
    auto certain = CertainAnswersUsingViews(*q, views);
    benchmark::DoNotOptimize(certain);
  }
}
BENCHMARK(BM_CertainAnswersUsingViews)->Arg(100)->Arg(400)->Unit(
    benchmark::kMillisecond);

}  // namespace
