// E10 — the paper's "small, easily implementable change": certain-answer
// rewriting (naïve equality + IS NOT NULL filters) costs about as much as
// the original 3VL evaluation (paper, Sections 1 and 7).

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

constexpr const char* kJoinQuery =
    "SELECT product FROM Ord, Pay WHERE o_id = order_id";

Database MakeDb(size_t n, double p) {
  OrdersPaymentsConfig cfg;
  cfg.n_orders = n;
  cfg.null_density = p;
  cfg.seed = 13;
  auto w = MakeOrdersPayments(cfg);
  Schema s;
  (void)s.AddRelation("Ord", {"o_id", "product"});
  (void)s.AddRelation("Pay", {"p_id", "order_id", "amount"});
  Database db(s);
  for (const Tuple& t : w.db.GetRelation("Order").tuples()) {
    db.AddTuple("Ord", t);
  }
  for (const Tuple& t : w.db.GetRelation("Pay").tuples()) {
    db.AddTuple("Pay", t);
  }
  return db;
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E10: certain-answer rewriting overhead (positive join query)",
        "rewritten evaluation produces certain answers at ~the cost of the "
        "3VL original; answers differ only on null-dependent rows",
        "    n     p  |3VL|  |certain|  3vl_rows_certain");
    for (size_t n : {500, 2000}) {
      for (double p : {0.0, 0.1, 0.3}) {
        Database db = MakeDb(n, p);
        auto sql3vl = EvalSql(kJoinQuery, db, SqlEvalMode::kSql3VL);
        auto certain = EvalSqlCertain(kJoinQuery, db);
        if (!sql3vl.ok() || !certain.ok()) continue;
        // For positive queries 3VL is sound: all its rows are certain.
        bool sound = true;
        for (const Tuple& t : sql3vl->tuples()) {
          if (!t.HasNull() && !certain->Contains(t)) sound = false;
        }
        std::printf("%6zu  %.1f  %5zu  %9zu  %16s\n", n, p, sql3vl->size(),
                    certain->size(), sound ? "all" : "VIOLATION");
      }
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_Join3VL(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)), 0.1);
  auto q = ParseSql(kJoinQuery);
  for (auto _ : state) {
    auto r = EvalSql(*q, db, SqlEvalMode::kSql3VL);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Join3VL)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_JoinCertainRewrite(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)), 0.1);
  auto q = ParseSql(kJoinQuery);
  for (auto _ : state) {
    auto r = EvalSqlCertain(*q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JoinCertainRewrite)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

void BM_JoinRewriteThen3VL(benchmark::State& state) {
  // The literal "add IS NOT NULL to the WHERE clause" variant, evaluated by
  // the 3VL engine — what a DBA could deploy today.
  Database db = MakeDb(static_cast<size_t>(state.range(0)), 0.1);
  auto q = ParseSql(kJoinQuery);
  auto rewritten = RewriteWithNotNullFilters(*q);
  for (auto _ : state) {
    auto r = EvalSql(*rewritten, db, SqlEvalMode::kSql3VL);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JoinRewriteThen3VL)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

void BM_RewriteItself(benchmark::State& state) {
  auto q = ParseSql(kJoinQuery);
  for (auto _ : state) {
    auto r = RewriteWithNotNullFilters(*q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RewriteItself);

}  // namespace
