// E12 — aggregates over incomplete data: SQL's null-ignoring aggregates
// misreport relative to every possible world (COUNT(col) under-reports
// always; SUM drifts with null density), while certain intervals bound the
// truth. Extends the paper's critique (Sections 1 and 3) to aggregation.

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

// Emp(id, salary) with hidden ground truth; salaries in [50, 150].
struct AggWorkload {
  Database db;
  int64_t true_sum = 0;
  int64_t true_count = 0;
};

AggWorkload MakeWorkload(size_t rows, double null_density, uint64_t seed) {
  Rng rng(seed);
  AggWorkload w;
  Schema schema;
  (void)schema.AddRelation("Emp", {"id", "salary"});
  w.db = Database(schema);
  NullId next = 0;
  for (size_t i = 0; i < rows; ++i) {
    const int64_t salary = rng.UniformInt(50, 150);
    w.true_sum += salary;
    ++w.true_count;
    const Value visible = rng.Bernoulli(null_density)
                              ? Value::Null(next++)
                              : Value::Int(salary);
    w.db.AddTuple("Emp", Tuple{Value::Int(static_cast<int64_t>(i)), visible});
  }
  return w;
}

std::vector<Value> SalaryColumn(const Database& db) {
  std::vector<Value> col;
  for (const Tuple& t : db.GetRelation("Emp").tuples()) col.push_back(t[1]);
  return col;
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E12: aggregate misreporting and certain intervals",
        "SQL SUM/COUNT(col) ignore nulls and drift from the hidden truth as "
        "null density grows; the certain interval always brackets the truth",
        "  rows    p  sql_count  true_count  sql_sum  true_sum  "
        "certain_sum_interval  truth_in");
    for (size_t rows : {100, 1000}) {
      for (double p : {0.0, 0.1, 0.3}) {
        AggWorkload w = MakeWorkload(rows, p, 17);
        auto count = EvalSql("SELECT COUNT(salary) FROM Emp", w.db,
                             SqlEvalMode::kSql3VL);
        auto sum = EvalSql("SELECT SUM(salary) FROM Emp", w.db,
                           SqlEvalMode::kSql3VL);
        if (!count.ok() || !sum.ok()) continue;
        const int64_t sql_count = count->tuples()[0][0].as_int();
        const Value sql_sum_v = sum->tuples()[0][0];
        const int64_t sql_sum = sql_sum_v.is_int() ? sql_sum_v.as_int() : 0;
        auto interval = CertainAggregateInterval(
            SalaryColumn(w.db), AggFunc::kSum, NullDomain{50, 150});
        if (!interval.ok()) continue;
        std::printf("%6zu  %.1f  %9lld  %10lld  %7lld  %8lld  %20s  %8s\n",
                    rows, p, static_cast<long long>(sql_count),
                    static_cast<long long>(w.true_count),
                    static_cast<long long>(sql_sum),
                    static_cast<long long>(w.true_sum),
                    interval->ToString().c_str(),
                    interval->Contains(w.true_sum) ? "yes" : "NO");
      }
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_SqlAggregate(benchmark::State& state) {
  AggWorkload w = MakeWorkload(static_cast<size_t>(state.range(0)), 0.1, 17);
  auto q = ParseSql("SELECT COUNT(*), COUNT(salary), SUM(salary), "
                    "MIN(salary), MAX(salary) FROM Emp");
  for (auto _ : state) {
    auto r = EvalSql(*q, w.db, SqlEvalMode::kSql3VL);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlAggregate)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

void BM_GroupByAggregate(benchmark::State& state) {
  Rng rng(9);
  Schema schema;
  (void)schema.AddRelation("Emp", {"id", "dept", "salary"});
  Database db(schema);
  for (int64_t i = 0; i < state.range(0); ++i) {
    db.AddTuple("Emp", Tuple{Value::Int(i), Value::Int(rng.UniformInt(0, 20)),
                             Value::Int(rng.UniformInt(50, 150))});
  }
  auto q = ParseSql(
      "SELECT dept, COUNT(*), SUM(salary) FROM Emp GROUP BY dept");
  for (auto _ : state) {
    auto r = EvalSql(*q, db, SqlEvalMode::kSql3VL);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GroupByAggregate)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

void BM_CertainInterval(benchmark::State& state) {
  AggWorkload w = MakeWorkload(static_cast<size_t>(state.range(0)), 0.1, 17);
  std::vector<Value> col = SalaryColumn(w.db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CertainAggregateInterval(col, AggFunc::kSum, NullDomain{50, 150}));
  }
}
BENCHMARK(BM_CertainInterval)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

}  // namespace
