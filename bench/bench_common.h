// Shared helpers for the experiment harness (bench/).

#ifndef INCDB_BENCH_BENCH_COMMON_H_
#define INCDB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "incdb.h"

namespace incdb_bench {

/// Attaches the EvalStats counters accumulated over a benchmark run as
/// per-iteration benchmark counters, so reports show the work an iteration
/// does (probes, tuples in/out) next to its time. Call once after the timing
/// loop with the stats merged across all iterations.
inline void ReportEvalStats(benchmark::State& state,
                            const incdb::EvalStats& stats) {
  const auto rate = benchmark::Counter::kAvgIterations;
  state.counters["probes"] =
      benchmark::Counter(static_cast<double>(stats.TotalProbes()), rate);
  state.counters["tuples_in"] =
      benchmark::Counter(static_cast<double>(stats.TotalTuplesIn()), rate);
  state.counters["tuples_out"] =
      benchmark::Counter(static_cast<double>(stats.TotalTuplesOut()), rate);
}

/// Wall-clock seconds of one call to `fn`; used for the serial baselines of
/// the thread-sweep benchmarks.
template <typename Fn>
inline double SecondsOf(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Attaches the thread-sweep counters: the thread count and the speedup of
/// this run's mean iteration over the serial baseline (>1 means the
/// parallel path is faster; on a single-core host it hovers around 1).
inline void ReportThreadScaling(benchmark::State& state, int threads,
                                double serial_seconds,
                                double mean_parallel_seconds) {
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(threads));
  state.counters["speedup"] = benchmark::Counter(
      mean_parallel_seconds > 0 ? serial_seconds / mean_parallel_seconds : 0);
}

/// Attaches the optimizer/subplan-cache sweep counters: which knobs were on
/// (`opt`, `cache`), the subplan-cache hits per iteration, and the speedup of
/// this run's mean iteration over a both-knobs-off baseline timed inline just
/// before the loop (>1 means the knobs pay for themselves).
inline void ReportOptCacheSweep(benchmark::State& state, bool optimize,
                                bool cache, const incdb::EvalStats& stats,
                                double off_seconds, double mean_seconds) {
  state.counters["opt"] = benchmark::Counter(optimize ? 1 : 0);
  state.counters["cache"] = benchmark::Counter(cache ? 1 : 0);
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(stats.cache_hits()),
                         benchmark::Counter::kAvgIterations);
  state.counters["speedup"] = benchmark::Counter(
      mean_seconds > 0 ? off_seconds / mean_seconds : 0);
}

/// Attaches the delta-eval sweep counters: whether the knob was on
/// (`delta`), the worlds answered differentially and the fallbacks per
/// iteration, and the speedup of this run's mean iteration over a delta-off
/// baseline (optimizer + cache still on) timed inline just before the loop
/// (>1 means differential re-evaluation pays for itself).
inline void ReportDeltaSweep(benchmark::State& state, bool delta,
                             const incdb::EvalStats& stats, double off_seconds,
                             double mean_seconds) {
  const auto rate = benchmark::Counter::kAvgIterations;
  state.counters["delta"] = benchmark::Counter(delta ? 1 : 0);
  state.counters["delta_applied"] =
      benchmark::Counter(static_cast<double>(stats.delta_applied()), rate);
  state.counters["delta_fallbacks"] =
      benchmark::Counter(static_cast<double>(stats.delta_fallbacks()), rate);
  state.counters["speedup"] = benchmark::Counter(
      mean_seconds > 0 ? off_seconds / mean_seconds : 0);
}

/// Attaches the vectorize-sweep counters: whether the batch-vectorized
/// columnar path ran (`vec`), the column batches and input rows its kernel
/// loops consumed per iteration, and the speedup of this run's mean
/// iteration over a vectorize-off baseline (hash kernels on in both, so the
/// comparison isolates batch-over-columns vs tuple-at-a-time) timed inline
/// just before the loop (>1 means batching pays for itself).
inline void ReportVectorizeSweep(benchmark::State& state, bool vectorize,
                                 const incdb::EvalStats& stats,
                                 double off_seconds, double mean_seconds) {
  const auto rate = benchmark::Counter::kAvgIterations;
  state.counters["vec"] = benchmark::Counter(vectorize ? 1 : 0);
  state.counters["batches"] = benchmark::Counter(
      static_cast<double>(stats.batches_processed()), rate);
  state.counters["rows_vec"] = benchmark::Counter(
      static_cast<double>(stats.rows_vectorized()), rate);
  state.counters["speedup"] = benchmark::Counter(
      mean_seconds > 0 ? off_seconds / mean_seconds : 0);
}

/// Attaches the backend sweep counters: which backend ran (`ctable`), the
/// condition-normalizer work per iteration (`cond_simplified` rewrites,
/// `unsat_pruned` conditions collapsed to false), and the speedup of this
/// run's mean iteration over an enumeration-backend baseline timed inline
/// just before the loop (>1 means the c-table pipeline beats enumerating
/// worlds on this instance; it grows exponentially with the null count).
inline void ReportBackendSweep(benchmark::State& state, bool ctable,
                               const incdb::EvalStats& stats,
                               double enum_seconds, double mean_seconds) {
  const auto rate = benchmark::Counter::kAvgIterations;
  state.counters["ctable"] = benchmark::Counter(ctable ? 1 : 0);
  state.counters["cond_simplified"] =
      benchmark::Counter(static_cast<double>(stats.cond_simplified()), rate);
  state.counters["unsat_pruned"] =
      benchmark::Counter(static_cast<double>(stats.unsat_pruned()), rate);
  state.counters["speedup"] = benchmark::Counter(
      mean_seconds > 0 ? enum_seconds / mean_seconds : 0);
}

/// Attaches the sampling-sweep counters: the sample count and thread count
/// the run was configured with, the mean Wilson-CI width across reported
/// tuples (`ci_width`, the precision bought per sample budget — halves per
/// 4× samples), and the counting-layer work per iteration (valuations
/// `samples_drawn`, component assignments `worlds_counted`, candidates
/// resolved exactly `exact_hits`).
inline void ReportSamplingSweep(benchmark::State& state, uint64_t samples,
                                int threads, double mean_ci_width,
                                const incdb::EvalStats& stats) {
  const auto rate = benchmark::Counter::kAvgIterations;
  state.counters["samples"] =
      benchmark::Counter(static_cast<double>(samples));
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(threads));
  state.counters["ci_width"] = benchmark::Counter(mean_ci_width);
  state.counters["samples_drawn"] = benchmark::Counter(
      static_cast<double>(stats.samples_drawn()), rate);
  state.counters["worlds_counted"] = benchmark::Counter(
      static_cast<double>(stats.worlds_counted()), rate);
  state.counters["exact_hits"] = benchmark::Counter(
      static_cast<double>(stats.exact_count_hits()), rate);
}

/// Prints a header for the experiment's summary table. Summaries are
/// emitted once, before the timing benchmarks, from a global initializer.
inline void TableHeader(const char* experiment, const char* claim,
                        const char* columns) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("----------------------------------------------------------------"
              "\n");
  std::printf("%s\n", columns);
}

inline void TableFooter() {
  std::printf("==============================================================="
              "=\n\n");
}

}  // namespace incdb_bench

#endif  // INCDB_BENCH_BENCH_COMMON_H_
