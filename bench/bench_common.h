// Shared helpers for the experiment harness (bench/).

#ifndef INCDB_BENCH_BENCH_COMMON_H_
#define INCDB_BENCH_BENCH_COMMON_H_

#include <cstdio>

#include "incdb.h"

namespace incdb_bench {

/// Prints a header for the experiment's summary table. Summaries are
/// emitted once, before the timing benchmarks, from a global initializer.
inline void TableHeader(const char* experiment, const char* claim,
                        const char* columns) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("----------------------------------------------------------------"
              "\n");
  std::printf("%s\n", columns);
}

inline void TableFooter() {
  std::printf("==============================================================="
              "=\n\n");
}

}  // namespace incdb_bench

#endif  // INCDB_BENCH_BENCH_COMMON_H_
