// Shared helpers for the experiment harness (bench/).

#ifndef INCDB_BENCH_BENCH_COMMON_H_
#define INCDB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>

#include "incdb.h"

namespace incdb_bench {

/// Attaches the EvalStats counters accumulated over a benchmark run as
/// per-iteration benchmark counters, so reports show the work an iteration
/// does (probes, tuples in/out) next to its time. Call once after the timing
/// loop with the stats merged across all iterations.
inline void ReportEvalStats(benchmark::State& state,
                            const incdb::EvalStats& stats) {
  const auto rate = benchmark::Counter::kAvgIterations;
  state.counters["probes"] =
      benchmark::Counter(static_cast<double>(stats.TotalProbes()), rate);
  state.counters["tuples_in"] =
      benchmark::Counter(static_cast<double>(stats.TotalTuplesIn()), rate);
  state.counters["tuples_out"] =
      benchmark::Counter(static_cast<double>(stats.TotalTuplesOut()), rate);
}

/// Prints a header for the experiment's summary table. Summaries are
/// emitted once, before the timing benchmarks, from a global initializer.
inline void TableHeader(const char* experiment, const char* claim,
                        const char* columns) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("----------------------------------------------------------------"
              "\n");
  std::printf("%s\n", columns);
}

inline void TableFooter() {
  std::printf("==============================================================="
              "=\n\n");
}

}  // namespace incdb_bench

#endif  // INCDB_BENCH_BENCH_COMMON_H_
