// E6 — certainO as greatest lower bound: intersection is not the right
// notion of certainty; the direct-product glb retains partial tuples and
// its cost grows with the number and size of the factor answers (paper,
// Sections 5.3 and 6).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.h"

using namespace incdb;

namespace {

// k answer-worlds for the identity query on {R(1,2), R(2,⊥)} where ⊥ takes
// k distinct values, plus `extra` shared rows.
std::vector<Database> AnswerWorlds(size_t k, size_t extra) {
  std::vector<Database> worlds;
  for (size_t i = 0; i < k; ++i) {
    Database w;
    w.AddTuple("Ans", Tuple{Value::Int(1), Value::Int(2)});
    w.AddTuple("Ans",
               Tuple{Value::Int(2), Value::Int(100 + static_cast<int64_t>(i))});
    for (size_t e = 0; e < extra; ++e) {
      w.AddTuple("Ans", Tuple{Value::Int(static_cast<int64_t>(10 + e)),
                              Value::Int(static_cast<int64_t>(10 + e))});
    }
    worlds.push_back(std::move(w));
  }
  return worlds;
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E6: certainty as object — glb (product) vs intersection",
        "the glb keeps the partial tuple (2,_) that intersection discards; "
        "intersection is not even a cwa lower bound",
        " #worlds  |glb|  has_partial  |intersection|  glb_is_lb  inter_is_"
        "cwa_lb");
    for (size_t k : {2, 3, 4}) {
      auto worlds = AnswerWorlds(k, 2);
      auto glb = CertainObjectOwa(worlds);
      if (!glb.ok()) continue;
      // Intersection answer.
      Relation inter = worlds[0].GetRelation("Ans");
      for (size_t i = 1; i < worlds.size(); ++i) {
        Relation next(inter.arity());
        for (const Tuple& t : inter.tuples()) {
          if (worlds[i].GetRelation("Ans").Contains(t)) next.Add(t);
        }
        inter = next;
      }
      Database inter_db;
      *inter_db.MutableRelation("Ans", 2) = inter;

      bool has_partial = false;
      for (const Tuple& t : glb->GetRelation("Ans").tuples()) {
        if (t.HasNull()) has_partial = true;
      }
      bool glb_is_lb = true;
      bool inter_is_cwa_lb = true;
      for (const Database& w : worlds) {
        if (!PrecedesOwa(*glb, w)) glb_is_lb = false;
        if (!PrecedesCwa(inter_db, w)) inter_is_cwa_lb = false;
      }
      std::printf("%8zu  %5zu  %11s  %14zu  %9s  %15s\n", k,
                  glb->GetRelation("Ans").size(),
                  has_partial ? "yes" : "no", inter.size(),
                  glb_is_lb ? "yes" : "NO", inter_is_cwa_lb ? "yes" : "no");
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_ProductGlb(benchmark::State& state) {
  auto worlds = AnswerWorlds(static_cast<size_t>(state.range(0)),
                             static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto glb = CertainObjectOwa(worlds);
    benchmark::DoNotOptimize(glb);
  }
  state.SetLabel("worlds=" + std::to_string(state.range(0)) +
                 " extra_rows=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_ProductGlb)
    ->Args({2, 4})
    ->Args({3, 4})
    ->Args({4, 4})
    ->Args({2, 16})
    ->Args({3, 16});

void BM_GlbOrderingCheck(benchmark::State& state) {
  auto worlds = AnswerWorlds(3, static_cast<size_t>(state.range(0)));
  auto glb = CertainObjectOwa(worlds);
  for (auto _ : state) {
    bool all = true;
    for (const Database& w : worlds) {
      all = all && PrecedesOwa(*glb, w);
    }
    benchmark::DoNotOptimize(all);
  }
}
BENCHMARK(BM_GlbOrderingCheck)->Arg(2)->Arg(8);

// Thread sweep: the answer worlds feeding the glb come from the parallel
// world-enumeration driver (64 worlds: three nulls over a domain of four).
// The per-worker world lists are concatenated and sorted so the 4-world
// sample handed to CertainObjectOwa is identical at every thread count —
// the sweep isolates the enumeration, the glb cost is constant. "speedup"
// as in bench_e2's BM_WorldEnumerationThreads.
void BM_GlbFromEnumeratedWorlds(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Database db;
  db.AddTuple("Ans", Tuple{Value::Int(1), Value::Int(2)});
  db.AddTuple("Ans", Tuple{Value::Int(2), Value::Null(0)});
  db.AddTuple("Ans", Tuple{Value::Null(1), Value::Int(3)});
  db.AddTuple("Ans", Tuple{Value::Null(2), Value::Int(1)});
  WorldEnumOptions opts;
  opts.fresh_constants = 1;

  auto enumerate = [&](int n_threads) {
    std::vector<std::vector<Database>> per_worker(16);
    (void)ForEachWorldCwaParallel(db, opts, n_threads,
                                  [&](const Database& w, size_t wi) {
                                    per_worker[wi].push_back(w);
                                    return true;
                                  });
    std::vector<Database> worlds;
    for (auto& ws : per_worker) {
      for (auto& w : ws) worlds.push_back(std::move(w));
    }
    std::sort(worlds.begin(), worlds.end(),
              [](const Database& a, const Database& b) {
                return a.ToString() < b.ToString();
              });
    worlds.resize(std::min<size_t>(worlds.size(), 4));
    return worlds;
  };

  const double serial_seconds = incdb_bench::SecondsOf([&] {
    benchmark::DoNotOptimize(CertainObjectOwa(enumerate(1)));
  });
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(CertainObjectOwa(enumerate(threads)));
    });
  }
  incdb_bench::ReportThreadScaling(
      state, threads, serial_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_GlbFromEnumeratedWorlds)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
