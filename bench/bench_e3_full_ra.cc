// E3 — beyond the positive fragment: difference queries. Certain answers
// are coNP-hard under CWA (enumeration blows up) and naïve evaluation is
// unsound (paper, Sections 2-3).

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

Database SmallDb(uint64_t seed, size_t rows, double null_density) {
  RandomDbConfig cfg;
  cfg.arities = {2, 2};
  cfg.rows_per_relation = rows;
  cfg.domain_size = 3;
  cfg.null_density = null_density;
  cfg.null_reuse = 0.4;
  cfg.seed = seed;
  return MakeRandomDatabase(cfg);
}

RAExprPtr DiffQuery() {
  return RAExpr::Project(
      {0}, RAExpr::Diff(RAExpr::Scan("R0"), RAExpr::Scan("R1")));
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E3: full relational algebra (difference) under CWA",
        "forced naive evaluation is unsound for difference; the unsoundness "
        "rate grows with null density",
        " null_density   seeds   unsound  unsound%");
    auto q = DiffQuery();
    for (double p : {0.1, 0.2, 0.3, 0.5}) {
      size_t unsound = 0;
      const size_t kSeeds = 40;
      for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        Database db = SmallDb(seed, 3, p);
        auto naive =
            CertainAnswersNaive(q, db, WorldSemantics::kClosedWorld, true);
        auto truth = CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld);
        if (!naive.ok() || !truth.ok()) continue;
        if (!(*naive == *truth)) ++unsound;
      }
      std::printf("%13.1f  %6zu  %8zu  %7.1f%%\n", p, kSeeds, unsound,
                  100.0 * static_cast<double>(unsound) / kSeeds);
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_DiffCertainEnumeration(benchmark::State& state) {
  // Cost grows exponentially with instance nulls.
  Database db = SmallDb(3, static_cast<size_t>(state.range(0)), 0.3);
  auto q = DiffQuery();
  for (auto _ : state) {
    auto r = CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
}
BENCHMARK(BM_DiffCertainEnumeration)->DenseRange(2, 8, 1)->Unit(
    benchmark::kMillisecond);

void BM_DiffNaiveForced(benchmark::State& state) {
  Database db = SmallDb(3, static_cast<size_t>(state.range(0)), 0.3);
  auto q = DiffQuery();
  for (auto _ : state) {
    auto r = CertainAnswersNaive(q, db, WorldSemantics::kClosedWorld, true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DiffNaiveForced)->DenseRange(2, 8, 1);

}  // namespace
