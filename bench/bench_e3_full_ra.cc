// E3 — beyond the positive fragment: difference queries. Certain answers
// are coNP-hard under CWA (enumeration blows up) and naïve evaluation is
// unsound (paper, Sections 2-3).

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

Database SmallDb(uint64_t seed, size_t rows, double null_density) {
  RandomDbConfig cfg;
  cfg.arities = {2, 2};
  cfg.rows_per_relation = rows;
  cfg.domain_size = 3;
  cfg.null_density = null_density;
  cfg.null_reuse = 0.4;
  cfg.seed = seed;
  return MakeRandomDatabase(cfg);
}

RAExprPtr DiffQuery() {
  return RAExpr::Project(
      {0}, RAExpr::Diff(RAExpr::Scan("R0"), RAExpr::Scan("R1")));
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E3: full relational algebra (difference) under CWA",
        "forced naive evaluation is unsound for difference; the unsoundness "
        "rate grows with null density",
        " null_density   seeds   unsound  unsound%");
    auto q = DiffQuery();
    for (double p : {0.1, 0.2, 0.3, 0.5}) {
      size_t unsound = 0;
      const size_t kSeeds = 40;
      for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        Database db = SmallDb(seed, 3, p);
        auto naive =
            CertainAnswersNaive(q, db, WorldSemantics::kClosedWorld, true);
        auto truth = CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld);
        if (!naive.ok() || !truth.ok()) continue;
        if (!(*naive == *truth)) ++unsound;
      }
      std::printf("%13.1f  %6zu  %8zu  %7.1f%%\n", p, kSeeds, unsound,
                  100.0 * static_cast<double>(unsound) / kSeeds);
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_DiffCertainEnumeration(benchmark::State& state) {
  // Cost grows exponentially with instance nulls.
  Database db = SmallDb(3, static_cast<size_t>(state.range(0)), 0.3);
  auto q = DiffQuery();
  for (auto _ : state) {
    auto r = CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
}
BENCHMARK(BM_DiffCertainEnumeration)->DenseRange(2, 8, 1)->Unit(
    benchmark::kMillisecond);

void BM_DiffNaiveForced(benchmark::State& state) {
  Database db = SmallDb(3, static_cast<size_t>(state.range(0)), 0.3);
  auto q = DiffQuery();
  for (auto _ : state) {
    auto r = CertainAnswersNaive(q, db, WorldSemantics::kClosedWorld, true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DiffNaiveForced)->DenseRange(2, 8, 1);

// Thread sweep over the difference ground truth: same instance and query at
// num_threads ∈ {1, 2, 4, 8}. See BM_WorldEnumerationThreads (bench_e2) for
// how "speedup" is computed.
void BM_DiffCertainEnumerationThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Database db = SmallDb(3, 7, 0.3);
  auto q = DiffQuery();
  EvalOptions serial;
  serial.num_threads = 1;
  const double serial_seconds = incdb_bench::SecondsOf([&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {}, serial));
  });
  EvalOptions options;
  options.num_threads = threads;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(CertainAnswersEnum(
          q, db, WorldSemantics::kClosedWorld, {}, options));
    });
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
  incdb_bench::ReportThreadScaling(
      state, threads, serial_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DiffCertainEnumerationThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Optimizer/subplan-cache sweep for a difference query whose right side is
// an expensive world-invariant subtree: π_{0}(R0 − σ_{#0≠#1}(R1)) with a
// 5-row null-carrying R0 and a 1024-row complete R1. Per world the uncached
// plan re-runs the selection (~|R1| predicate evaluations plus rebuilding
// the result) and rebuilds its diff hash index; the cache splices σ(R1)
// once as a literal with its index forced, leaving only |R0| probes. Row
// (7, 7) of R0 never appears in σ_{#0≠#1}(R1), so the certain answer stays
// non-empty and no world is skipped by the early-exit.
Database AsymmetricDiffDb() {
  Database db;
  Relation* r0 = db.MutableRelation("R0", 2);
  r0->Add(Tuple{Value::Int(7), Value::Int(7)});
  r0->Add(Tuple{Value::Int(1), Value::Int(4)});
  r0->Add(Tuple{Value::Int(2), Value::Int(9)});
  r0->Add(Tuple{Value::Null(0), Value::Int(3)});
  r0->Add(Tuple{Value::Int(5), Value::Null(1)});
  Relation* r1 = db.MutableRelation("R1", 2);
  for (int64_t a = 0; a < 32; ++a) {
    for (int64_t b = 0; b < 32; ++b) {
      r1->Add(Tuple{Value::Int(a), Value::Int(b)});
    }
  }
  return db;
}

// args encode (optimize, cache_subplans); see BM_WorldEnumerationOptCache
// (bench_e2) for how "speedup" is computed.
void BM_DiffOptCache(benchmark::State& state) {
  const bool optimize = state.range(0) != 0;
  const bool cache = state.range(1) != 0;
  Database db = AsymmetricDiffDb();
  auto q = RAExpr::Project(
      {0},
      RAExpr::Diff(
          RAExpr::Scan("R0"),
          RAExpr::Select(Predicate::Ne(Term::Column(0), Term::Column(1)),
                         RAExpr::Scan("R1"))));
  EvalOptions off;
  off.optimize = false;
  off.cache_subplans = false;
  off.num_threads = 1;
  auto run_off = [&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {}, off));
  };
  run_off();  // warm the lazy canonicalization before timing the baseline
  const double off_seconds = incdb_bench::SecondsOf(run_off);
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  options.optimize = optimize;
  options.cache_subplans = cache;
  options.num_threads = 1;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(
          CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {},
                             options));
    });
  }
  incdb_bench::ReportOptCacheSweep(
      state, optimize, cache, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DiffOptCache)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// Delta-eval sweep: the asymmetric difference shape with a 200-row
// null-carrying left side. The subplan cache already splices the complete
// σ(R1) subtree, but the classic driver still re-runs the ~200-row diff in
// every world; the differential path adjusts only the tuple whose null
// changed. Two marked nulls over the 32-value domain give 34² worlds.
Database DeltaDiffDb() {
  Database db;
  Relation* r0 = db.MutableRelation("R0", 2);
  r0->Add(Tuple{Value::Int(7), Value::Int(7)});  // diagonal: always certain
  for (int64_t i = 0; i < 200; ++i) {
    r0->Add(Tuple{Value::Int(i % 32), Value::Int((i / 32) * 5 % 32)});
  }
  r0->Add(Tuple{Value::Null(0), Value::Int(3)});
  r0->Add(Tuple{Value::Int(5), Value::Null(1)});
  Relation* r1 = db.MutableRelation("R1", 2);
  for (int64_t a = 0; a < 32; ++a) {
    for (int64_t b = 0; b < 32; ++b) {
      r1->Add(Tuple{Value::Int(a), Value::Int(b)});
    }
  }
  return db;
}

// arg encodes delta_eval on/off; see BM_WorldEnumerationDelta (bench_e2)
// for how "speedup" is computed.
void BM_DiffDelta(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  Database db = DeltaDiffDb();
  auto q = RAExpr::Project(
      {0},
      RAExpr::Diff(
          RAExpr::Scan("R0"),
          RAExpr::Select(Predicate::Ne(Term::Column(0), Term::Column(1)),
                         RAExpr::Scan("R1"))));
  EvalOptions off;
  off.delta_eval = false;
  off.num_threads = 1;
  auto run_off = [&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {}, off));
  };
  run_off();  // warm the lazy canonicalization before timing the baseline
  const double off_seconds = incdb_bench::SecondsOf(run_off);
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  options.delta_eval = delta;
  options.num_threads = 1;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(
          CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {},
                             options));
    });
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
  incdb_bench::ReportDeltaSweep(
      state, delta, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DiffDelta)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Backend sweep on the difference query, where certain answers are
// coNP-hard and enumeration is the only other exact method. args encode
// (ctable, rows per relation); more rows mean more instance nulls at fixed
// density, so the enumeration baseline blows up while the c-table pipeline
// answers from one normalized conditional table. "speedup" compares this
// run's mean iteration against an enumeration baseline timed inline just
// before the loop; cond_simplified / unsat_pruned show the normalizer work
// that replaces world expansion.
void BM_DiffBackendSweep(benchmark::State& state) {
  const bool ctable = state.range(0) != 0;
  Database db = SmallDb(3, static_cast<size_t>(state.range(1)), 0.3);
  auto q = DiffQuery();
  const double enum_seconds = incdb_bench::SecondsOf([&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld));
  });
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      if (ctable) {
        benchmark::DoNotOptimize(CertainAnswersCTable(
            q, db, WorldSemantics::kClosedWorld, {}, options));
      } else {
        benchmark::DoNotOptimize(CertainAnswersEnum(
            q, db, WorldSemantics::kClosedWorld, {}, options));
      }
    });
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
  incdb_bench::ReportBackendSweep(
      state, ctable, stats, enum_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DiffBackendSweep)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 6})
    ->Args({1, 6})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond);


// ---------------------------------------------------------------------------
// Vectorize sweep: batch-vectorized columnar execution against the
// row-oriented hash kernels on a large complete difference, serial, naive
// evaluation of pi{0}(R0 - R1). The set-difference kernel becomes one merge
// walk over two sorted code columns. args encode (vectorize, R0 rows).

Database LargeDiffDb(size_t rows) {
  Database db;
  Relation* r0 = db.MutableRelation("R0", 2);
  Relation* r1 = db.MutableRelation("R1", 2);
  for (size_t i = 0; i < rows; ++i) {
    Tuple t{Value::Int(static_cast<int64_t>(i)),
            Value::Int(static_cast<int64_t>(i % 17))};
    r0->Add(t);
    if (i % 2 == 0) r1->Add(t);  // half of R0 survives the difference
  }
  return db;
}

void BM_DiffVectorize(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  Database db = LargeDiffDb(static_cast<size_t>(state.range(1)));
  auto q = DiffQuery();
  EvalOptions off;
  off.vectorize = false;
  off.num_threads = 1;
  EvalOptions options;
  options.vectorize = vec;
  options.num_threads = 1;
  // Warm every lazily-built cache (canonical order, indexes, columnar).
  benchmark::DoNotOptimize(EvalNaive(q, db, options));
  benchmark::DoNotOptimize(EvalNaive(q, db, off));
  const double off_seconds = incdb_bench::SecondsOf(
      [&] { benchmark::DoNotOptimize(EvalNaive(q, db, off)); });
  EvalStats stats;
  options.stats = &stats;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf(
        [&] { benchmark::DoNotOptimize(EvalNaive(q, db, options)); });
  }
  incdb_bench::ReportVectorizeSweep(
      state, vec, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DiffVectorize)
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
