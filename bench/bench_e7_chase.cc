// E7 — data exchange: the chase generates marked nulls at scale; UCQ
// certain answers over the chased target remain cheap (naïve evaluation)
// — the paper's Section 1 motivation operationalized.

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

Database MakeSource(size_t orders) {
  Rng rng(5);
  Database src;
  for (size_t i = 0; i < orders; ++i) {
    src.AddTuple("Order",
                 Tuple{Value::Int(static_cast<int64_t>(i)),
                       Value::Int(rng.UniformInt(0, 50))});
  }
  return src;
}

SchemaMapping IntroMapping() {
  SchemaMapping m;
  Tgd tgd;
  tgd.body = {FoAtom{"Order", {FoTerm::Var(0), FoTerm::Var(1)}}};
  tgd.head = {FoAtom{"Cust", {FoTerm::Var(2)}},
              FoAtom{"Pref", {FoTerm::Var(2), FoTerm::Var(1)}}};
  m.tgds.push_back(tgd);
  return m;
}

SchemaMapping JoinMapping() {
  // Order(i,p), Catalog(p,c) -> Pref2(x, c): join body, one ∃-var.
  SchemaMapping m;
  Tgd tgd;
  tgd.body = {FoAtom{"Order", {FoTerm::Var(0), FoTerm::Var(1)}},
              FoAtom{"Catalog", {FoTerm::Var(1), FoTerm::Var(2)}}};
  tgd.head = {FoAtom{"Pref2", {FoTerm::Var(3), FoTerm::Var(2)}}};
  m.tgds.push_back(tgd);
  return m;
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E7: chase scale-out and querying chased instances",
        "chase output grows linearly in triggers; UCQ certain answers over "
        "the marked-null target come from naive evaluation",
        "  orders  triggers   nulls  target_tuples  |certain prefs|");
    for (size_t n : {100, 1000, 10000}) {
      Database src = MakeSource(n);
      auto r = ChaseStTgds(src, IntroMapping());
      if (!r.ok()) continue;
      // Certain products: ans(p) :- Cust(x), Pref(x, p).
      ConjunctiveQuery q;
      q.head = {FoTerm::Var(1)};
      q.body = {FoAtom{"Cust", {FoTerm::Var(0)}},
                FoAtom{"Pref", {FoTerm::Var(0), FoTerm::Var(1)}}};
      UnionOfCQs u;
      u.disjuncts.push_back(q);
      auto certain = CertainOwaAnswers(u, r->target);
      std::printf("%8zu  %8zu  %6zu  %13zu  %15zu\n", n, r->triggers_fired,
                  r->nulls_created, r->target.TupleCount(),
                  certain.ok() ? certain->size() : 0);
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_ChaseSingleTgd(benchmark::State& state) {
  Database src = MakeSource(static_cast<size_t>(state.range(0)));
  SchemaMapping m = IntroMapping();
  for (auto _ : state) {
    auto r = ChaseStTgds(src, m);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChaseSingleTgd)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_ChaseJoinBody(benchmark::State& state) {
  Database src = MakeSource(static_cast<size_t>(state.range(0)));
  Rng rng(6);
  for (int64_t p = 0; p <= 50; ++p) {
    src.AddTuple("Catalog", Tuple{Value::Int(p),
                                  Value::Int(rng.UniformInt(0, 5))});
  }
  SchemaMapping m = JoinMapping();
  for (auto _ : state) {
    auto r = ChaseStTgds(src, m);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChaseJoinBody)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

void BM_QueryChasedTarget(benchmark::State& state) {
  Database src = MakeSource(static_cast<size_t>(state.range(0)));
  auto chased = ChaseStTgds(src, IntroMapping());
  ConjunctiveQuery q;
  q.head = {FoTerm::Var(1)};
  q.body = {FoAtom{"Cust", {FoTerm::Var(0)}},
            FoAtom{"Pref", {FoTerm::Var(0), FoTerm::Var(1)}}};
  UnionOfCQs u;
  u.disjuncts.push_back(q);
  for (auto _ : state) {
    auto certain = CertainOwaAnswers(u, chased->target);
    benchmark::DoNotOptimize(certain);
  }
}
BENCHMARK(BM_QueryChasedTarget)->Arg(300)->Arg(1000)->Unit(
    benchmark::kMillisecond);

}  // namespace
