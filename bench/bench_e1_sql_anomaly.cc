// E1 — SQL 3VL returns wrong answers to NOT IN queries; the wrong-answer
// rate grows with null density (paper, Section 1).
//
// Workload: orders/payments. The query is the introduction's unpaid-orders
// NOT IN query. We measure recall of the 3VL answer against the true set of
// unpaid orders in the hidden complete world, plus the behaviour of the
// naïve (possible-answer) evaluation.

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

constexpr const char* kQuery =
    "SELECT o_id FROM Ord WHERE o_id NOT IN (SELECT order_id FROM Pay)";

// Orders/payments with SQL-accessible schema (o_id ints).
OrdersPaymentsWorkload MakeWorkload(size_t n, double p, uint64_t seed) {
  OrdersPaymentsConfig cfg;
  cfg.n_orders = n;
  cfg.pay_fraction = 0.8;
  cfg.null_density = p;
  cfg.seed = seed;
  auto w = MakeOrdersPayments(cfg);
  // Rename relations for SQL (attribute names already set by the
  // generator: Order(o_id, product), Pay(p_id, order_id, amount)).
  Schema s;
  (void)s.AddRelation("Ord", {"o_id", "product"});
  (void)s.AddRelation("Pay", {"p_id", "order_id", "amount"});
  Database db(s);
  for (const Tuple& t : w.db.GetRelation("Order").tuples()) {
    db.AddTuple("Ord", t);
  }
  for (const Tuple& t : w.db.GetRelation("Pay").tuples()) {
    db.AddTuple("Pay", t);
  }
  w.db = std::move(db);
  return w;
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E1: the NOT IN anomaly at scale",
        "3VL recall of truly-unpaid orders collapses to 0 the moment any "
        "payment order-id is null",
        "    n      p  |truth|  |3VL|  recall3VL  |naive|  naive_recall");
    for (size_t n : {100, 1000, 5000}) {
      for (double p : {0.0, 0.01, 0.05, 0.10, 0.25}) {
        auto w = MakeWorkload(n, p, 42);
        auto sql3vl = EvalSql(kQuery, w.db, SqlEvalMode::kSql3VL);
        auto naive = EvalSql(kQuery, w.db, SqlEvalMode::kNaive);
        if (!sql3vl.ok() || !naive.ok()) continue;
        size_t hit3 = 0, hitn = 0;
        for (int64_t oid : w.truly_unpaid) {
          if (sql3vl->Contains(Tuple{Value::Int(oid)})) ++hit3;
          if (naive->Contains(Tuple{Value::Int(oid)})) ++hitn;
        }
        const double truth = static_cast<double>(w.truly_unpaid.size());
        std::printf("%6zu  %.2f  %7zu  %5zu  %9.2f  %7zu  %12.2f\n", n, p,
                    w.truly_unpaid.size(), sql3vl->size(),
                    truth > 0 ? hit3 / truth : 1.0, naive->size(),
                    truth > 0 ? hitn / truth : 1.0);
      }
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_NotIn3VL(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0, 42);
  auto q = ParseSql(kQuery);
  for (auto _ : state) {
    auto r = EvalSql(*q, w.db, SqlEvalMode::kSql3VL);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("n=" + std::to_string(state.range(0)) +
                 " p=" + std::to_string(state.range(1)) + "%");
}
BENCHMARK(BM_NotIn3VL)
    ->Args({100, 10})
    ->Args({1000, 10})
    ->Args({2000, 10})
    ->Args({1000, 0})
    ->Args({1000, 25})
    ->Unit(benchmark::kMillisecond);

void BM_NotInNaive(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)), 0.10, 42);
  auto q = ParseSql(kQuery);
  for (auto _ : state) {
    auto r = EvalSql(*q, w.db, SqlEvalMode::kNaive);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NotInNaive)->Arg(100)->Arg(1000)->Arg(2000)->Unit(
    benchmark::kMillisecond);

}  // namespace
