// E8 — certain answers under OWA for Boolean CQs are exactly naïve
// satisfaction / tableau homomorphism (paper, Section 4). This bench
// profiles the homomorphism check across query/instance shapes.

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E8: certain OWA answers = tableau homomorphism",
        "chain CQs embed into long paths and dense graphs; cost depends on "
        "shape, not on any possible-world enumeration",
        " query        instance          certain");
    struct Row {
      const char* qname;
      ConjunctiveQuery q;
      const char* iname;
      Database db;
    };
    std::vector<Row> rows;
    rows.push_back({"chain(4)", ChainCQ(4), "path(10)", MakePathDatabase(10)});
    rows.push_back({"chain(12)", ChainCQ(12), "path(10)",
                    MakePathDatabase(10)});
    rows.push_back({"chain(12)", ChainCQ(12), "graph(30,120)",
                    MakeRandomGraph(30, 120, 1)});
    rows.push_back({"star(6)", StarCQ(6), "graph(30,120)",
                    MakeRandomGraph(30, 120, 1)});
    for (auto& row : rows) {
      auto r = CertainOwaBoolean(row.q, row.db);
      std::printf(" %-12s %-16s  %s\n", row.qname, row.iname,
                  r.ok() ? (*r ? "yes" : "no") : "err");
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_ChainIntoPath(benchmark::State& state) {
  // Positive instance: chain embeds (path longer than chain).
  const size_t len = static_cast<size_t>(state.range(0));
  ConjunctiveQuery q = ChainCQ(len);
  Database db = MakePathDatabase(len + 5);
  for (auto _ : state) {
    auto r = CertainOwaBoolean(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChainIntoPath)->DenseRange(2, 14, 4);

void BM_ChainIntoShortPathNegative(benchmark::State& state) {
  // Negative instance: chain longer than path — must explore and fail.
  const size_t len = static_cast<size_t>(state.range(0));
  ConjunctiveQuery q = ChainCQ(len);
  Database db = MakePathDatabase(len - 1);
  for (auto _ : state) {
    auto r = CertainOwaBoolean(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChainIntoShortPathNegative)->DenseRange(4, 12, 4);

void BM_ChainIntoRandomGraph(benchmark::State& state) {
  ConjunctiveQuery q = ChainCQ(static_cast<size_t>(state.range(0)));
  Database db = MakeRandomGraph(50, 200, 2);
  for (auto _ : state) {
    auto r = CertainOwaBoolean(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChainIntoRandomGraph)->DenseRange(2, 10, 2);

void BM_StarIntoRandomGraph(benchmark::State& state) {
  ConjunctiveQuery q = StarCQ(static_cast<size_t>(state.range(0)));
  Database db = MakeRandomGraph(50, 200, 2);
  for (auto _ : state) {
    auto r = CertainOwaBoolean(q, db);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StarIntoRandomGraph)->DenseRange(2, 8, 2);

void BM_DatabaseHomomorphism(benchmark::State& state) {
  // Database-to-database homomorphism on null-chains.
  const size_t n = static_cast<size_t>(state.range(0));
  Database from;
  for (size_t i = 0; i < n; ++i) {
    from.AddTuple("R", Tuple{Value::Null(static_cast<NullId>(i)),
                             Value::Null(static_cast<NullId>(i + 1))});
  }
  Database to = MakeRandomGraph(20, 80, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HasHomomorphism(from, to));
  }
}
BENCHMARK(BM_DatabaseHomomorphism)->DenseRange(2, 10, 2);

}  // namespace
