// E2 — naïve evaluation computes certain answers for UCQs at plain query-
// evaluation cost, while possible-world enumeration is exponential in the
// number of nulls (paper, Sections 2 and 6).

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

Database DbWithNulls(size_t nulls, uint64_t seed) {
  RandomDbConfig cfg;
  cfg.arities = {2, 2};
  cfg.rows_per_relation = std::max<size_t>(4, nulls);
  // Grow the domain with the instance so join selectivity stays roughly
  // constant (output ~4 matches per row); at the world-enumeration sizes
  // (≤ 16 rows) this is the original fixed 4-value domain.
  cfg.domain_size =
      std::max<int64_t>(4, static_cast<int64_t>(cfg.rows_per_relation / 4));
  cfg.null_density = 0.0;
  cfg.seed = seed;
  Database db = MakeRandomDatabase(cfg);
  // Inject exactly `nulls` distinct marked nulls over R0's first column.
  Relation* r0 = db.MutableRelation("R0", 2);
  Relation patched(2);
  size_t injected = 0;
  for (const Tuple& t : r0->tuples()) {
    if (injected < nulls) {
      patched.Add(Tuple{Value::Null(static_cast<NullId>(injected++)), t[1]});
    } else {
      patched.Add(t);
    }
  }
  while (injected < nulls) {
    patched.Add(Tuple{Value::Null(static_cast<NullId>(injected++)),
                      Value::Int(0)});
  }
  *r0 = patched;
  return db;
}

// Join UCQ: π_{0,3}(σ_{#1=#2}(R0 × R1)) ∪ R1.
RAExprPtr JoinQuery() {
  auto join = RAExpr::Project(
      {0, 3},
      RAExpr::Select(Predicate::Eq(Term::Column(1), Term::Column(2)),
                     RAExpr::Product(RAExpr::Scan("R0"), RAExpr::Scan("R1"))));
  return RAExpr::Union(join, RAExpr::Scan("R1"));
}

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E2: naive evaluation vs possible-world enumeration (UCQ, CWA)",
        "both compute the same certain answers; enumeration cost is "
        "|domain|^#nulls, naive evaluation is flat",
        " #nulls     worlds   |certain|  match");
    auto q = JoinQuery();
    for (size_t nulls : {1, 2, 3, 4, 5}) {
      Database db = DbWithNulls(nulls, 7);
      WorldEnumOptions opts;
      const uint64_t worlds = CountWorldsCwa(db, opts);
      auto naive = CertainAnswersNaive(q, db, WorldSemantics::kClosedWorld);
      auto truth = CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld);
      if (!naive.ok() || !truth.ok()) continue;
      std::printf("%7zu  %9llu  %10zu  %5s\n", nulls,
                  static_cast<unsigned long long>(worlds), truth->size(),
                  (*naive == *truth) ? "yes" : "NO");
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void RunNaiveEvaluation(benchmark::State& state, bool use_hash_kernels) {
  Database db = DbWithNulls(static_cast<size_t>(state.range(0)), 7);
  auto q = JoinQuery();
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  options.use_hash_kernels = use_hash_kernels;
  for (auto _ : state) {
    auto r = CertainAnswersNaive(q, db, WorldSemantics::kClosedWorld,
                                 /*force=*/false, options);
    benchmark::DoNotOptimize(r);
  }
  incdb_bench::ReportEvalStats(state, stats);
}

void BM_NaiveEvaluation(benchmark::State& state) {
  RunNaiveEvaluation(state, /*use_hash_kernels=*/true);
}
// rows per relation = max(4, #nulls): past 12 the argument mostly scales
// the data so the join-kernel asymptotics show.
BENCHMARK(BM_NaiveEvaluation)->DenseRange(2, 12, 2)->Arg(32)->Arg(64)->Arg(
    128);

// The pre-kernel implementation (materialized product + filter), kept
// runnable so speedups are attributable: compare probes/tuples_in between
// the two variants at equal args.
void BM_NaiveEvaluationNestedLoop(benchmark::State& state) {
  RunNaiveEvaluation(state, /*use_hash_kernels=*/false);
}
BENCHMARK(BM_NaiveEvaluationNestedLoop)
    ->DenseRange(2, 12, 2)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128);

void BM_WorldEnumeration(benchmark::State& state) {
  Database db = DbWithNulls(static_cast<size_t>(state.range(0)), 7);
  auto q = JoinQuery();
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  for (auto _ : state) {
    auto r = CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {},
                                options);
    benchmark::DoNotOptimize(r);
  }
  incdb_bench::ReportEvalStats(state, stats);
}
// 5 nulls over a ~9-value domain is already ~6e4 worlds per evaluation;
// the curve is exponential, so stop there.
BENCHMARK(BM_WorldEnumeration)->DenseRange(2, 5, 1)->Unit(
    benchmark::kMillisecond);

// Thread sweep over the parallel enumeration driver: same instance and
// query at num_threads ∈ {1, 2, 4, 8}. "speedup" compares this run's mean
// iteration against a serial baseline timed just before the loop; on a
// single-core host it stays near 1 while still exercising the parallel
// splitting, budgeting, and merge paths.
void BM_WorldEnumerationThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Database db = DbWithNulls(4, 7);
  auto q = JoinQuery();
  EvalOptions serial;
  serial.num_threads = 1;
  const double serial_seconds = incdb_bench::SecondsOf([&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {}, serial));
  });
  EvalOptions options;
  options.num_threads = threads;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(CertainAnswersEnum(
          q, db, WorldSemantics::kClosedWorld, {}, options));
    });
  }
  incdb_bench::ReportThreadScaling(
      state, threads, serial_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_WorldEnumerationThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Optimizer/subplan-cache sweep: a 5-row null-carrying probe side (R0, two
// marked nulls) equi-joined on both columns against a 1024-row complete
// build side (R1, the full 32×32 grid — so each probe matches exactly one
// row and the join output stays tiny). Per world the uncached plan rebuilds
// R1's join hash table (~|R1| inserts); with the cache the complete scan is
// spliced once as a literal carrying a prebuilt column index, leaving only
// the |R0|-row probe. The complete row (1, 2) of R0 always matches, so the
// running intersection never empties and every world is actually evaluated.
Database AsymmetricJoinDb() {
  Database db;
  Relation* r0 = db.MutableRelation("R0", 2);
  r0->Add(Tuple{Value::Int(1), Value::Int(2)});
  r0->Add(Tuple{Value::Int(3), Value::Int(4)});
  r0->Add(Tuple{Value::Int(5), Value::Int(31)});
  r0->Add(Tuple{Value::Null(0), Value::Int(7)});
  r0->Add(Tuple{Value::Int(6), Value::Null(1)});
  Relation* r1 = db.MutableRelation("R1", 2);
  for (int64_t a = 0; a < 32; ++a) {
    for (int64_t b = 0; b < 32; ++b) {
      r1->Add(Tuple{Value::Int(a), Value::Int(b)});
    }
  }
  return db;
}

// args encode (optimize, cache_subplans); the "speedup" counter compares
// this run's mean iteration against a both-knobs-off baseline.
void BM_WorldEnumerationOptCache(benchmark::State& state) {
  const bool optimize = state.range(0) != 0;
  const bool cache = state.range(1) != 0;
  Database db = AsymmetricJoinDb();
  auto q = RAExpr::Project(
      {0, 1},
      RAExpr::Select(
          Predicate::And(Predicate::Eq(Term::Column(0), Term::Column(2)),
                         Predicate::Eq(Term::Column(1), Term::Column(3))),
          RAExpr::Product(RAExpr::Scan("R0"), RAExpr::Scan("R1"))));
  EvalOptions off;
  off.optimize = false;
  off.cache_subplans = false;
  off.num_threads = 1;
  auto run_off = [&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {}, off));
  };
  run_off();  // warm the lazy canonicalization before timing the baseline
  const double off_seconds = incdb_bench::SecondsOf(run_off);
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  options.optimize = optimize;
  options.cache_subplans = cache;
  options.num_threads = 1;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(
          CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {},
                             options));
    });
  }
  incdb_bench::ReportOptCacheSweep(
      state, optimize, cache, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_WorldEnumerationOptCache)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// Delta-eval sweep: the same asymmetric equi-join shape, but with a 200-row
// null-carrying probe side. Even with the optimizer and subplan cache on,
// the classic driver re-probes all ~200 R0 rows in every world; the
// differential path re-derives only the single tuple whose null changed.
// Two marked nulls over the 32-value domain give 34² worlds per iteration.
Database DeltaJoinDb() {
  Database db;
  Relation* r0 = db.MutableRelation("R0", 2);
  for (int64_t i = 0; i < 200; ++i) {
    // (i mod 32, 5·(i div 32) mod 32): 200 distinct grid points.
    r0->Add(Tuple{Value::Int(i % 32), Value::Int((i / 32) * 5 % 32)});
  }
  r0->Add(Tuple{Value::Null(0), Value::Int(3)});
  r0->Add(Tuple{Value::Int(6), Value::Null(1)});
  Relation* r1 = db.MutableRelation("R1", 2);
  for (int64_t a = 0; a < 32; ++a) {
    for (int64_t b = 0; b < 32; ++b) {
      r1->Add(Tuple{Value::Int(a), Value::Int(b)});
    }
  }
  return db;
}

// arg encodes delta_eval on/off; the "speedup" counter compares this run's
// mean iteration against a delta-off baseline (optimizer + cache still on)
// timed inline just before the loop.
void BM_WorldEnumerationDelta(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  Database db = DeltaJoinDb();
  auto q = RAExpr::Project(
      {0, 1},
      RAExpr::Select(
          Predicate::And(Predicate::Eq(Term::Column(0), Term::Column(2)),
                         Predicate::Eq(Term::Column(1), Term::Column(3))),
          RAExpr::Product(RAExpr::Scan("R0"), RAExpr::Scan("R1"))));
  EvalOptions off;
  off.delta_eval = false;
  off.num_threads = 1;
  auto run_off = [&] {
    benchmark::DoNotOptimize(
        CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {}, off));
  };
  run_off();  // warm the lazy canonicalization before timing the baseline
  const double off_seconds = incdb_bench::SecondsOf(run_off);
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  options.delta_eval = delta;
  options.num_threads = 1;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf([&] {
      benchmark::DoNotOptimize(
          CertainAnswersEnum(q, db, WorldSemantics::kClosedWorld, {},
                             options));
    });
  }
  state.SetLabel("nulls=" + std::to_string(db.Nulls().size()));
  incdb_bench::ReportDeltaSweep(
      state, delta, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_WorldEnumerationDelta)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

// Backend sweep through the QueryEngine facade: the same certain-answer
// request on Backend::kEnumeration vs Backend::kCTable at increasing null
// counts. args encode (ctable, #nulls); the "speedup" counter compares this
// run's mean iteration against an enumeration-backend baseline timed inline
// just before the loop, so the ctable=1 rows show how far the conditional-
// algebra pipeline pulls ahead as |domain|^#nulls grows.
void BM_CertainBackendSweep(benchmark::State& state) {
  const bool ctable = state.range(0) != 0;
  const size_t nulls = static_cast<size_t>(state.range(1));
  Database db = DbWithNulls(nulls, 7);
  QueryEngine engine(db);
  const QueryRequest enum_req =
      QueryRequestBuilder(QueryInput::Ra(JoinQuery()))
          .Notion(AnswerNotion::kCertainEnum)
          .OnBackend(Backend::kEnumeration)
          .Build();
  const double enum_seconds = incdb_bench::SecondsOf(
      [&] { benchmark::DoNotOptimize(engine.Run(enum_req)); });
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  QueryRequest req = QueryRequestBuilder(QueryInput::Ra(JoinQuery()))
                         .Notion(AnswerNotion::kCertainEnum)
                         .OnBackend(ctable ? Backend::kCTable
                                           : Backend::kEnumeration)
                         .Eval(options)
                         .Build();
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf(
        [&] { benchmark::DoNotOptimize(engine.Run(req)); });
  }
  incdb_bench::ReportBackendSweep(
      state, ctable, stats, enum_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
// 6 nulls over the 4-value base domain is already ~10^6 worlds per
// enumeration-backend evaluation; the c-table backend stays flat.
BENCHMARK(BM_CertainBackendSweep)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 6})
    ->Args({1, 6})
    ->Unit(benchmark::kMillisecond);

// Sampling sweep for the probabilistic notion at 20 nulls — far beyond the
// exact-enumeration gate (|domain|^20 worlds), so the enumeration backend
// Monte-Carlo samples. args encode (samples, threads); the `ci_width`
// counter shows the precision bought per sample budget (halving per 4×
// samples) and the thread rows show the sampler's scaling at a fixed
// budget. Tallies are bit-identical across the thread rows by design.
void BM_SamplingSweep(benchmark::State& state) {
  const uint64_t samples = static_cast<uint64_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Database db = DbWithNulls(20, 7);
  QueryEngine engine(db);
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  ProbabilisticOptions popts;
  popts.sampling.samples = samples;
  popts.sampling.num_threads = threads;
  const QueryRequest req =
      QueryRequestBuilder(QueryInput::Ra(JoinQuery()))
          .Notion(AnswerNotion::kCertainWithProbability)
          .OnBackend(Backend::kEnumeration)
          .Probability(popts)
          .Eval(options)
          .Build();
  double ci_width = 0;
  for (auto _ : state) {
    auto r = engine.Run(req);
    benchmark::DoNotOptimize(r);
    if (r.ok() && !r->probabilities.empty()) {
      double w = 0;
      for (const TupleProbability& p : r->probabilities) {
        w += p.ci_high - p.ci_low;
      }
      ci_width = w / static_cast<double>(r->probabilities.size());
    }
  }
  incdb_bench::ReportSamplingSweep(state, samples, threads, ci_width, stats);
}
BENCHMARK(BM_SamplingSweep)
    ->Args({1'000, 1})
    ->Args({4'000, 1})
    ->Args({16'000, 1})
    ->Args({16'000, 4})
    ->Unit(benchmark::kMillisecond);

// The same 20-null instance answered *exactly* on the c-table backend:
// independence factoring counts satisfying valuations per candidate
// without enumerating the |domain|^20 world space. This is the acceptance
// row for the counting layer — compare against BM_WorldEnumeration at far
// smaller null counts.
void BM_SamplingExactCTable(benchmark::State& state) {
  Database db = DbWithNulls(static_cast<size_t>(state.range(0)), 7);
  QueryEngine engine(db);
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  const QueryRequest req =
      QueryRequestBuilder(QueryInput::Ra(JoinQuery()))
          .Notion(AnswerNotion::kCertainWithProbability)
          .OnBackend(Backend::kCTable)
          .Eval(options)
          .Build();
  for (auto _ : state) {
    auto r = engine.Run(req);
    benchmark::DoNotOptimize(r);
  }
  incdb_bench::ReportSamplingSweep(state, 0, 1, 0.0, stats);
}
BENCHMARK(BM_SamplingExactCTable)
    ->Arg(8)
    ->Arg(14)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);


// Vectorize sweep: batch-vectorized columnar execution against the
// row-oriented hash kernels on one large complete instance — plain naive
// evaluation (one world) at num_threads = 1, so the row kernels' partitioned
// parallelism does not mask the batching effect. The columnar snapshots and
// hash indexes of the scans are warmed before timing, as in steady-state
// service. args encode (vectorize, R0 rows); "speedup" compares this run's
// mean iteration against a vectorize-off baseline timed inline just before
// the loop.
Database LargeCompleteDb(size_t rows) {
  Database db;
  Relation* r0 = db.MutableRelation("R0", 2);
  for (size_t i = 0; i < rows; ++i) {
    // b spreads over [0, 1000) in a scrambled order.
    r0->Add(Tuple{Value::Int(static_cast<int64_t>(i)),
                  Value::Int(static_cast<int64_t>(i * 2654435761u % 1000))});
  }
  Relation* r1 = db.MutableRelation("R1", 2);
  for (int64_t i = 0; i < 1000; ++i) {
    r1->Add(Tuple{Value::Int(i), Value::Int(i % 7)});
  }
  return db;
}

// Selection/projection-heavy plan: pi{0}(sigma_{#1 < 100}(R0)), ~10%
// selectivity over the large scan.
void BM_NaiveSelectionVectorize(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  Database db = LargeCompleteDb(static_cast<size_t>(state.range(1)));
  auto q = RAExpr::Project(
      {0}, RAExpr::Select(Predicate::Cmp(CmpOp::kLt, Term::Column(1),
                                         Term::Const(Value::Int(100))),
                          RAExpr::Scan("R0")));
  EvalOptions off;
  off.vectorize = false;
  off.num_threads = 1;
  EvalOptions options;
  options.vectorize = vec;
  options.num_threads = 1;
  // Warm every lazily-built cache (canonical order, indexes, columnar).
  benchmark::DoNotOptimize(EvalNaive(q, db, options));
  benchmark::DoNotOptimize(EvalNaive(q, db, off));
  const double off_seconds = incdb_bench::SecondsOf(
      [&] { benchmark::DoNotOptimize(EvalNaive(q, db, off)); });
  EvalStats stats;
  options.stats = &stats;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf(
        [&] { benchmark::DoNotOptimize(EvalNaive(q, db, options)); });
  }
  incdb_bench::ReportVectorizeSweep(
      state, vec, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_NaiveSelectionVectorize)
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Unit(benchmark::kMicrosecond);

// Join-heavy plan: the E2 join UCQ over the large instance; every R0 row
// matches exactly one R1 row through the fused equi-join.
void BM_NaiveJoinVectorize(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  Database db = LargeCompleteDb(static_cast<size_t>(state.range(1)));
  auto q = JoinQuery();
  EvalOptions off;
  off.vectorize = false;
  off.num_threads = 1;
  EvalOptions options;
  options.vectorize = vec;
  options.num_threads = 1;
  benchmark::DoNotOptimize(EvalNaive(q, db, options));
  benchmark::DoNotOptimize(EvalNaive(q, db, off));
  const double off_seconds = incdb_bench::SecondsOf(
      [&] { benchmark::DoNotOptimize(EvalNaive(q, db, off)); });
  EvalStats stats;
  options.stats = &stats;
  double total_seconds = 0;
  for (auto _ : state) {
    total_seconds += incdb_bench::SecondsOf(
        [&] { benchmark::DoNotOptimize(EvalNaive(q, db, options)); });
  }
  incdb_bench::ReportVectorizeSweep(
      state, vec, stats, off_seconds,
      total_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_NaiveJoinVectorize)
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
