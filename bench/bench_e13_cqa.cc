// E13 — consistent query answering: repairs as possible worlds. The number
// of repairs is exponential in the number of independent conflicts, and
// consistent answers shrink as inconsistency grows — certain answers over
// repairs behave exactly like certain answers over ⟦D⟧ (paper, Section 7).

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace incdb;

namespace {

// Emp(id, salary): `conflicts` keys get two salaries, the rest one.
Database MakeInconsistent(size_t rows, size_t conflicts, uint64_t seed) {
  Rng rng(seed);
  Database db;
  for (size_t i = 0; i < rows; ++i) {
    const int64_t id = static_cast<int64_t>(i);
    db.AddTuple("Emp", Tuple{Value::Int(id), Value::Int(rng.UniformInt(50, 150))});
    if (i < conflicts) {
      db.AddTuple("Emp",
                  Tuple{Value::Int(id), Value::Int(rng.UniformInt(151, 250))});
    }
  }
  return db;
}

FdSet KeyFd() { return {{"Emp", {FunctionalDependency{{0}, {1}}}}}; }

struct Summary {
  Summary() {
    incdb_bench::TableHeader(
        "E13: consistent query answering over FD-violating databases",
        "repairs double per independent conflict; consistent full-tuple "
        "answers exclude every conflicting tuple",
        "  rows  conflicts  repairs  |consistent|  |naive|");
    for (size_t conflicts : {0, 2, 4, 8}) {
      Database db = MakeInconsistent(12, conflicts, 3);
      size_t repair_count = 0;
      Status st = ForEachRepair(db, KeyFd(), [&](const Database&) {
        ++repair_count;
        return true;
      });
      if (!st.ok()) continue;
      auto q = RAExpr::Scan("Emp");
      auto consistent = ConsistentAnswers(q, db, KeyFd());
      auto naive = EvalNaive(q, db);
      if (!consistent.ok() || !naive.ok()) continue;
      std::printf("%6u  %9zu  %7zu  %12zu  %7zu\n", 12u, conflicts,
                  repair_count, consistent->size(), naive->size());
    }
    incdb_bench::TableFooter();
  }
};
const Summary kSummary;

void BM_RepairEnumeration(benchmark::State& state) {
  Database db = MakeInconsistent(16, static_cast<size_t>(state.range(0)), 3);
  FdSet fds = KeyFd();
  for (auto _ : state) {
    size_t count = 0;
    Status st = ForEachRepair(db, fds, [&](const Database&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(count);
  }
  state.SetLabel("repairs=" + std::to_string(1ull << state.range(0)));
}
BENCHMARK(BM_RepairEnumeration)->DenseRange(1, 9, 2)->Unit(
    benchmark::kMillisecond);

void BM_ConsistentAnswers(benchmark::State& state) {
  Database db = MakeInconsistent(16, static_cast<size_t>(state.range(0)), 3);
  FdSet fds = KeyFd();
  auto q = RAExpr::Project({0}, RAExpr::Scan("Emp"));
  for (auto _ : state) {
    auto r = ConsistentAnswers(q, db, fds);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ConsistentAnswers)->DenseRange(1, 9, 2)->Unit(
    benchmark::kMillisecond);

void BM_ConflictGraphOnly(benchmark::State& state) {
  // Conflict detection is only quadratic — the exponential part is the
  // repair space, not finding the conflicts.
  Database db = MakeInconsistent(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(0)) / 4, 3);
  FdSet fds = KeyFd();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountConflicts(db, fds));
  }
}
BENCHMARK(BM_ConflictGraphOnly)->Arg(100)->Arg(400)->Arg(1600)->Unit(
    benchmark::kMicrosecond);

}  // namespace
